// Halo3D: the paper's Figure 8 workload as a standalone program.
//
// Runs the 6-face halo exchange over a chosen topology/speed under both
// transports; bandwidth-heavy, so the RVMA advantage is smaller than
// Sweep3D's but grows as links get faster and fixed per-message overheads
// dominate.
//
// Run with: go run ./examples/halo3d [-nodes 128] [-gbps 400] [-topology hyperx]
package main

import (
	"flag"
	"fmt"
	"log"

	"rvma/internal/fabric"
	"rvma/internal/motif"
	"rvma/internal/sim"
	"rvma/internal/stats"
	"rvma/internal/topology"
)

func main() {
	nodes := flag.Int("nodes", 128, "minimum node count")
	gbps := flag.Float64("gbps", 400, "link speed in Gbps")
	topoName := flag.String("topology", "hyperx", "topology family")
	routing := flag.String("routing", "static", "routing: static (DOR), adaptive, valiant")
	flag.Parse()

	topo, err := topology.ForNodeCount(topology.Kind(*topoName), *nodes)
	if err != nil {
		log.Fatal(err)
	}
	var route fabric.RoutingMode
	switch *routing {
	case "static":
		route = fabric.RouteStatic
	case "adaptive":
		route = fabric.RouteAdaptive
	case "valiant":
		route = fabric.RouteValiant
	default:
		log.Fatalf("unknown routing %q", *routing)
	}

	hcfg := motif.DefaultHalo3DConfig(topo.NumNodes())
	fmt.Printf("Halo3D on %s (%s routing) at %s: %dx%dx%d ranks, %dB x-faces, %d iterations\n",
		topo.Name(), route, stats.FormatGbps(*gbps), hcfg.Px, hcfg.Py, hcfg.Pz,
		hcfg.Ny*hcfg.Nz*hcfg.Vars*8, hcfg.Iterations)

	run := func(kind motif.TransportKind) sim.Time {
		cfg := motif.DefaultClusterConfig(topo, kind)
		cfg.Routing = route
		cfg.ApplyLinkSpeed(*gbps)
		c, err := motif.NewCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t, err := motif.RunHalo3D(c, hcfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s makespan %-12v (%.1f MB moved, mean network latency %v)\n",
			kind, t, float64(c.Net.Stats.BytesDelivered)/1e6, c.Net.MeanPacketLatency())
		return t
	}

	rv := run(motif.KindRVMA)
	rd := run(motif.KindRDMA)
	fmt.Printf("RVMA speedup: %.2fx\n", stats.Speedup(rd.Seconds(), rv.Seconds()))
}
