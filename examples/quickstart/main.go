// Quickstart: the smallest complete RVMA program.
//
// Two simulated nodes are wired through one switch. The receiver opens a
// window on mailbox 0x11FF0011 with a byte-counted completion threshold
// and posts a buffer; the sender puts a message to that mailbox knowing
// nothing but (node, mailbox) — no physical address, no handshake. The
// receiver's NIC counts arriving bytes and, at the threshold, writes the
// buffer's address and length to the completion pointer, waking the
// Monitor/MWait watcher.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"rvma/internal/fabric"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/rvma"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

func main() {
	// Simulation substrate: engine, one-switch network, two NICs.
	eng := sim.NewEngine(1)
	net, err := fabric.New(eng, topology.NewSingleSwitch(2), fabric.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	prof := nic.DefaultProfile()
	sender := rvma.NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), rvma.DefaultConfig())
	receiver := rvma.NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), rvma.DefaultConfig())

	// Receiver: open a window on the mailbox, threshold = message size in
	// bytes, and post one buffer. This is RVMA_Init_window +
	// RVMA_Post_buffer from the paper's API (§III-C).
	const mailbox rvma.VAddr = 0x11FF0011
	const msgSize = 1024
	win, err := receiver.InitWindow(mailbox, msgSize, rvma.EpochBytes)
	if err != nil {
		log.Fatal(err)
	}
	buf, err := win.PostBuffer(msgSize)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("receiver: window on mailbox %#x, buffer at %#x, completion pointer at %#x\n",
		win.VAddr(), buf.Region.Base, buf.NotificationAddr())

	// The message: the sender needs only (node 1, mailbox) — that is the
	// whole point of virtual addresses.
	payload := make([]byte, msgSize)
	for i := range payload {
		payload[i] = byte(i % 251)
	}

	eng.Spawn("sender", func(p *sim.Process) {
		fmt.Printf("[%v] sender: putting %d bytes to node 1, mailbox %#x (no handshake!)\n",
			p.Now(), msgSize, mailbox)
		op := sender.Put(1, mailbox, 0, payload)
		p.Wait(op.Local)
		fmt.Printf("[%v] sender: local completion — send buffer reusable\n", p.Now())
	})

	eng.Spawn("receiver", func(p *sim.Process) {
		// Arm Monitor/MWait on the completion pointer and sleep until the
		// NIC's completion unit writes it.
		n := receiver.WatchBuffer(buf)
		p.Wait(n.Done)
		head, length := buf.Cell.Get()
		fmt.Printf("[%v] receiver: completion pointer = (head %#x, len %d), epoch now %d\n",
			p.Now(), head, length, win.Epoch())
		got := receiver.Memory().Read(head, length)
		ok := true
		for i := range got {
			if got[i] != payload[i] {
				ok = false
				break
			}
		}
		fmt.Printf("[%v] receiver: payload intact: %v\n", p.Now(), ok)
	})

	eng.Run()
	fmt.Printf("simulation finished at %v after %d events\n", eng.Now(), eng.EventsExecuted())
}
