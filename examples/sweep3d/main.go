// Sweep3D: the paper's Figure 7 workload as a standalone program.
//
// Runs the wavefront-sweep motif over a chosen topology at a chosen link
// speed under both transports and reports the RVMA speedup, explaining
// where the time goes.
//
// Run with: go run ./examples/sweep3d [-nodes 128] [-gbps 400] [-topology dragonfly]
package main

import (
	"flag"
	"fmt"
	"log"

	"rvma/internal/motif"
	"rvma/internal/sim"
	"rvma/internal/stats"
	"rvma/internal/topology"
)

func main() {
	nodes := flag.Int("nodes", 128, "minimum node count")
	gbps := flag.Float64("gbps", 400, "link speed in Gbps")
	topoName := flag.String("topology", "dragonfly", "topology family")
	flag.Parse()

	topo, err := topology.ForNodeCount(topology.Kind(*topoName), *nodes)
	if err != nil {
		log.Fatal(err)
	}
	scfg := motif.DefaultSweep3DConfig(topo.NumNodes())
	fmt.Printf("Sweep3D on %s at %s: %dx%d rank grid, %d z-blocks of %d planes, %dB x-messages\n",
		topo.Name(), stats.FormatGbps(*gbps), scfg.Px, scfg.Py, scfg.Nz/scfg.KBA, scfg.KBA,
		scfg.Ny*scfg.KBA*scfg.Vars*8)

	run := func(kind motif.TransportKind) sim.Time {
		cfg := motif.DefaultClusterConfig(topo, kind)
		cfg.ApplyLinkSpeed(*gbps)
		c, err := motif.NewCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t, err := motif.RunSweep3D(c, scfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s makespan %-12v (%d packets, mean network latency %v)\n",
			kind, t, c.Net.Stats.PacketsDelivered, c.Net.MeanPacketLatency())
		return t
	}

	rv := run(motif.KindRVMA)
	rd := run(motif.KindRDMA)
	fmt.Printf("RVMA speedup: %.2fx\n", stats.Speedup(rd.Seconds(), rv.Seconds()))
	fmt.Println("\nwhy: every wavefront hop needs target-side completion. RVMA's NIC")
	fmt.Println("counts the expected operation and writes the completion pointer; RDMA")
	fmt.Println("must send a separate ordered send/recv after each put and interlock")
	fmt.Println("buffer reuse with credits, both on the critical path of the wave.")
}
