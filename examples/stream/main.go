// Byte streams over Receiver-Managed RVMA (paper §IV-B): a tiny
// request/response service written like sockets code, with no RDMA-style
// buffer negotiation anywhere.
//
// The client writes length-prefixed requests; the server reads them like a
// TCP service and streams back responses. When a response is smaller than
// the stream's segment threshold, the reader claims the partial segment
// with RVMA_Win_inc_epoch — visible in the EarlyClaims counter.
//
// Run with: go run ./examples/stream
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"rvma/internal/fabric"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/rstream"
	"rvma/internal/rvma"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

func main() {
	eng := sim.NewEngine(21)
	fcfg := fabric.DefaultConfig()
	fcfg.Routing = fabric.RouteStatic // streams need byte order, like TCP on one path
	net, err := fabric.New(eng, topology.NewSingleSwitch(2), fcfg)
	if err != nil {
		log.Fatal(err)
	}
	prof := nic.DefaultProfile()
	clientEP := rvma.NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), rvma.DefaultConfig())
	serverEP := rvma.NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), rvma.DefaultConfig())

	client, server, err := rstream.Pair(clientEP, serverEP, 1, rstream.Config{SegmentBytes: 1024})
	if err != nil {
		log.Fatal(err)
	}

	requests := []string{"GET /status", "GET /metrics", "POST /rewind?epoch=3"}

	// readFrame reads a 4-byte length prefix then the body.
	readFrame := func(p *sim.Process, c *rstream.Conn) string {
		f, err := c.Read(4)
		if err != nil {
			log.Fatal(err)
		}
		p.Wait(f)
		n := int(binary.LittleEndian.Uint32(f.Value().([]byte)))
		f, err = c.Read(n)
		if err != nil {
			log.Fatal(err)
		}
		p.Wait(f)
		return string(f.Value().([]byte))
	}
	writeFrame := func(c *rstream.Conn, s string) {
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(s)))
		if _, err := c.Write(append(hdr[:], s...)); err != nil {
			log.Fatal(err)
		}
	}

	eng.Spawn("client", func(p *sim.Process) {
		for _, req := range requests {
			writeFrame(client, req)
			resp := readFrame(p, client)
			fmt.Printf("[%v] client: %q -> %q\n", p.Now(), req, resp)
		}
	})
	eng.Spawn("server", func(p *sim.Process) {
		for range requests {
			req := readFrame(p, server)
			writeFrame(server, "200 OK: "+req)
		}
	})
	eng.Run()

	fmt.Printf("\nserver stream: %d bytes in, %d partial-segment claims (IncEpoch)\n",
		server.BytesConsumed, server.EarlyClaims)
	fmt.Printf("client stream: %d bytes in, %d partial-segment claims\n",
		client.BytesConsumed, client.EarlyClaims)
	fmt.Println("no buffer negotiation, no registration keys — mailboxes only")
}
