// MPI-RMA over RVMA: the paper's §IV-E/§IV-F story as a small 1-D stencil.
//
// Four ranks run a BSP loop: each epoch, every rank puts a stamped halo
// value into both neighbors' windows, then fences (MPI_Win_fence —
// implemented with RVMA's hardware-counted control mailboxes, no software
// completion tracking). After all epochs, a fault is "detected" and the
// window is rolled back two epochs with the paper's proposed MPIX_Rewind,
// recovered from the RVMA NIC's buffer history rather than any software
// checkpoint.
//
// Run with: go run ./examples/mpirma
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"rvma/internal/fabric"
	"rvma/internal/mpirma"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/rvma"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

const (
	ranks  = 4
	epochs = 5
)

// stamp encodes (epoch, rank) so any slot identifies its writer.
func stamp(epoch, rank int) uint64 { return uint64(epoch*1000 + rank) }

func main() {
	eng := sim.NewEngine(11)
	net, err := fabric.New(eng, topology.NewSingleSwitch(ranks), fabric.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	prof := nic.DefaultProfile()
	eps := make([]*rvma.Endpoint, ranks)
	ecfg := rvma.DefaultConfig()
	ecfg.HistoryDepth = 8
	for i := range eps {
		eps[i] = rvma.NewEndpoint(nic.New(eng, net, i, pcie.Gen4x16(), prof), ecfg)
	}
	comm, err := mpirma.NewComm(eps)
	if err != nil {
		log.Fatal(err)
	}
	// Window layout per rank: slot 0 (bytes 0-7) = value from the left
	// neighbor, slot 1 (bytes 8-15) = value from the right neighbor.
	win, err := mpirma.CreateWin(comm, mpirma.WinConfig{Size: 16, Shadows: 6})
	if err != nil {
		log.Fatal(err)
	}

	for rank := 0; rank < ranks; rank++ {
		rank := rank
		eng.Spawn(fmt.Sprintf("rank%d", rank), func(p *sim.Process) {
			for e := 1; e <= epochs; e++ {
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], stamp(e, rank))
				if left := rank - 1; left >= 0 {
					// My value is the left neighbor's right-halo slot.
					if _, err := win.Put(rank, left, 8, b[:]); err != nil {
						log.Fatal(err)
					}
				}
				if right := rank + 1; right < ranks {
					if _, err := win.Put(rank, right, 0, b[:]); err != nil {
						log.Fatal(err)
					}
				}
				if err := win.Fence(p, rank); err != nil {
					log.Fatalf("rank %d fence: %v", rank, err)
				}
				// "Compute" on the received halos.
				p.Sleep(2 * sim.Microsecond)
			}

			if rank == 1 {
				fmt.Printf("[%v] rank 1: finished %d epochs (window epoch counter = %d)\n",
					p.Now(), epochs, win.Epoch(rank))
				// Fault detected: rewind the communication state. k=1 is the
				// final epoch; k=3 reaches two timesteps earlier.
				for _, k := range []int{1, 3} {
					data, err := win.Rewind(rank, k)
					if err != nil {
						log.Fatalf("rewind(%d): %v", k, err)
					}
					leftVal := binary.LittleEndian.Uint64(data[0:8])
					rightVal := binary.LittleEndian.Uint64(data[8:16])
					fmt.Printf("[%v] rank 1: MPIX_Rewind(%d) -> halos from epoch %d: left=%d right=%d\n",
						p.Now(), k, epochs-k+1, leftVal, rightVal)
					wantLeft := stamp(epochs-k+1, 0)
					wantRight := stamp(epochs-k+1, 2)
					if leftVal != wantLeft || rightVal != wantRight {
						log.Fatalf("rollback mismatch: got (%d,%d), want (%d,%d)",
							leftVal, rightVal, wantLeft, wantRight)
					}
				}
				fmt.Println("rank 1: rolled-back halos are byte-exact — no software checkpointing involved")
			}
		})
	}
	eng.Run()
	fmt.Printf("simulation finished at %v\n", eng.Now())
}
