// Fault tolerance: hardware communication rollback with RVMA's multi-epoch
// buffers (paper §IV-F).
//
// A producer streams one buffer of simulation state per "timestep" to a
// consumer's mailbox. The consumer's window retains completed buffers per
// epoch (the "bucket of buffers"). When a failure is injected mid-run, the
// consumer rewinds the window — the MPIX_Rewind(MPI_Win) operation the
// paper sketches — recovering the last known-good timestep's buffer
// directly from the NIC's history, with no software logging.
//
// Run with: go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"

	"rvma/internal/fabric"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/rvma"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

const (
	stateBytes = 4096
	timesteps  = 6
	failAt     = 4 // the timestep whose transfer is interrupted
)

func main() {
	eng := sim.NewEngine(7)
	net, err := fabric.New(eng, topology.NewSingleSwitch(2), fabric.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	prof := nic.DefaultProfile()
	producer := rvma.NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), rvma.DefaultConfig())

	ccfg := rvma.DefaultConfig()
	ccfg.HistoryDepth = timesteps // retain every epoch for rewind
	consumer := rvma.NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), ccfg)

	const mailbox rvma.VAddr = 0xFA17
	win, err := consumer.InitWindow(mailbox, stateBytes, rvma.EpochBytes)
	if err != nil {
		log.Fatal(err)
	}
	// Keep a bucket of buffers posted: one per timestep.
	for i := 0; i < timesteps; i++ {
		if _, err := win.PostBuffer(stateBytes); err != nil {
			log.Fatal(err)
		}
	}

	// stateFor fabricates timestep t's payload; byte 0 identifies it.
	stateFor := func(t int) []byte {
		b := make([]byte, stateBytes)
		for i := range b {
			b[i] = byte(t*31 + i%97)
		}
		b[0] = byte(t)
		return b
	}

	eng.Spawn("producer", func(p *sim.Process) {
		for t := 1; t <= timesteps; t++ {
			if t == failAt {
				// Failure injection: the producer dies mid-transfer — only
				// the first half of the timestep's state goes out, so the
				// consumer's buffer for epoch failAt never completes.
				fmt.Printf("[%v] producer: timestep %d: FAILURE after half the state\n", p.Now(), t)
				producer.Put(1, mailbox, 0, stateFor(t)[:stateBytes/2])
				return
			}
			op := producer.Put(1, mailbox, 0, stateFor(t))
			p.Wait(op.Local)
			fmt.Printf("[%v] producer: timestep %d sent\n", p.Now(), t)
			p.Sleep(5 * sim.Microsecond) // compute for the next step
		}
	})

	eng.Spawn("consumer", func(p *sim.Process) {
		for t := 1; t < failAt; t++ {
			f := win.NextCompletion()
			p.Wait(f)
			buf := f.Value().(*rvma.Buffer)
			fmt.Printf("[%v] consumer: timestep %d complete in buffer %#x (epoch %d)\n",
				p.Now(), consumer.Memory().Read(buf.Region.Base, 1)[0], buf.Region.Base, win.Epoch())
		}

		// The next completion never comes. Detect the failure by timeout.
		p.Sleep(200 * sim.Microsecond)
		fmt.Printf("[%v] consumer: timestep %d never completed — node failure detected\n",
			p.Now(), failAt)

		// Hardware rollback: fetch the last completed epoch's buffer from
		// the NIC's history ring (no software log was ever kept).
		good, err := win.Rewind(1)
		if err != nil {
			log.Fatalf("rewind: %v", err)
		}
		recovered := consumer.Memory().Read(good.Region.Base, stateBytes)
		fmt.Printf("[%v] consumer: MPIX_Rewind-style recovery -> epoch %d buffer %#x holds timestep %d\n",
			p.Now(), good.Epoch, good.Region.Base, recovered[0])

		want := stateFor(failAt - 1)
		intact := true
		for i := range want {
			if recovered[i] != want[i] {
				intact = false
				break
			}
		}
		fmt.Printf("[%v] consumer: recovered state byte-identical to timestep %d: %v\n",
			p.Now(), failAt-1, intact)

		// Deeper rewind also works while history lasts.
		if older, err := win.Rewind(2); err == nil {
			fmt.Printf("[%v] consumer: Rewind(2) reaches timestep %d as well\n",
				p.Now(), consumer.Memory().Read(older.Region.Base, 1)[0])
		}
	})

	eng.Run()
	fmt.Printf("simulation finished at %v\n", eng.Now())
}
