// Incast: the many-to-one scenario from the paper's abstract — "RDMA
// unattractive for use in many-to-one communication models such as those
// found in public internet client-server situations".
//
// Part 1 contrasts resource footprints: an RVMA server exposes ONE mailbox
// that all clients target (the NIC steers each message into the next
// posted buffer), while an RDMA server must negotiate and pin a dedicated
// buffer per client for an unbounded time.
//
// Part 2 shows receiver-side resource control: the server closes its
// mailbox, late traffic is NACKed back to the senders (or silently
// dropped when NACKs are disabled for DoS protection), and a catch-all
// mailbox can absorb strays.
//
// Run with: go run ./examples/incast [-clients 32]
package main

import (
	"flag"
	"fmt"
	"log"

	"rvma/internal/fabric"
	"rvma/internal/motif"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/rvma"
	"rvma/internal/sim"
	"rvma/internal/stats"
	"rvma/internal/topology"
)

func main() {
	clients := flag.Int("clients", 32, "number of client nodes")
	flag.Parse()

	fmt.Println("== part 1: many-to-one throughput, RVMA vs RDMA ==")
	topo := topology.NewSingleSwitch(*clients + 1)
	icfg := motif.IncastConfig{Messages: 8, MsgBytes: 4096}
	run := func(kind motif.TransportKind) sim.Time {
		cfg := motif.DefaultClusterConfig(topo, kind)
		c, err := motif.NewCluster(cfg)
		if err != nil {
			log.Fatal(err)
		}
		t, err := motif.RunIncast(c, icfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-4s: %d clients x %d messages consumed in %v\n",
			kind, *clients, icfg.Messages, t)
		return t
	}
	rv := run(motif.KindRVMA)
	rd := run(motif.KindRDMA)
	fmt.Printf("  RVMA speedup %.2fx; RDMA also pinned %d dedicated buffers (%s) indefinitely\n",
		stats.Speedup(rd.Seconds(), rv.Seconds()), *clients,
		stats.FormatBytes(*clients*icfg.MsgBytes))

	fmt.Println("\n== part 2: receiver-side resource control ==")
	eng := sim.NewEngine(3)
	net, err := fabric.New(eng, topology.NewSingleSwitch(3), fabric.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	prof := nic.DefaultProfile()
	server := rvma.NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), rvma.DefaultConfig())
	client := rvma.NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), rvma.DefaultConfig())
	straggler := rvma.NewEndpoint(nic.New(eng, net, 2, pcie.Gen4x16(), prof), rvma.DefaultConfig())

	const service rvma.VAddr = 0x5E41
	win, err := server.InitWindow(service, 512, rvma.EpochBytes)
	if err != nil {
		log.Fatal(err)
	}
	win.PostBuffer(512)

	catch, err := server.InitWindow(0xCA7C4, 1<<20, rvma.EpochBytes)
	if err != nil {
		log.Fatal(err)
	}
	catch.PostBuffer(64 * 1024)

	eng.Spawn("scenario", func(p *sim.Process) {
		// A normal request is served.
		op := client.Put(0, service, 0, make([]byte, 512))
		p.Wait(op.Local)
		p.Sleep(5 * sim.Microsecond)
		fmt.Printf("[%v] request served: service epoch = %d\n", p.Now(), win.Epoch())

		// The server shuts the mailbox (RVMA_Close_win); a late client is
		// NACKed — the receiver controls its own resources.
		win.Close()
		late := straggler.Put(0, service, 0, make([]byte, 512))
		p.Wait(late.Nack)
		fmt.Printf("[%v] late request NACKed: %v\n", p.Now(), late.Nack.Value())

		// With a catch-all installed, strays are steered there instead.
		server.SetCatchAll(catch)
		stray := client.Put(0, 0xD00D, 0, make([]byte, 256))
		p.Wait(stray.Local)
		p.Sleep(5 * sim.Microsecond)
		fmt.Printf("[%v] stray put landed in catch-all (hits: %d)\n",
			p.Now(), server.Stats.CatchAllHits)
	})
	eng.Run()
	fmt.Printf("server stats: %d drops, %d NACKs, %d catch-all hits\n",
		server.Stats.Drops, server.Stats.Nacks, server.Stats.CatchAllHits)
}
