// Command rvmabench regenerates the paper's evaluation tables and figures.
//
// Usage:
//
//	rvmabench [flags] [experiment...]
//
// Experiments: fig4 fig5 fig6 fig7 fig8 incast collectives matchengine
// faults kv summary ablations all
// (default: all; "faults" — the loss-rate × transport recovery sweep — and
// "kv" — the keyed-mailbox dataplane skew × load × transport sweep — run
// only when named explicitly).
//
// Examples:
//
//	rvmabench fig4
//	rvmabench -nodes 1024 fig7
//	rvmabench -paper all        # paper-scale settings (slow)
//	rvmabench -csv fig6 > fig6.csv
//	rvmabench -json-out BENCH_sim.json fig7   # per-cell perf trajectory
//	rvmabench -telemetry-dir ts/ fig7         # per-cell time-series CSVs
//	rvmabench -ledger-dir led/ fig7           # per-cell execution ledgers
//	rvmabench -workers 4 fig7                 # parallel cells, same bytes out
//	rvmabench -shards 4 -nodes 1024 fig7      # sharded engine, same bytes out
//	rvmabench faults                          # loss sweep at default rates
//	rvmabench -drop-rate 0.05 -retry-budget 4 faults   # one rate, tight budget
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"rvma/internal/harness"
)

func main() {
	var (
		nodes       = flag.Int("nodes", 0, "motif system size in nodes (0 = default 128; paper used 8192)")
		iters       = flag.Int("iters", 0, "ping-pong iterations per run (0 = default 200)")
		runs        = flag.Int("runs", 0, "independent runs per latency point (0 = default 10)")
		seed        = flag.Uint64("seed", 0, "simulation seed (0 = default 42)")
		paper       = flag.Bool("paper", false, "use paper-scale settings (8192 nodes, 1000 iterations; slow)")
		csv         = flag.Bool("csv", false, "emit CSV instead of aligned text")
		jsonOut     = flag.String("json-out", "", "write per-cell perf records (wall time, sim time, events/sec) as JSON to this file")
		telDir      = flag.String("telemetry-dir", "", "write one in-sim time-series CSV per motif cell into this directory")
		ledgerDir   = flag.String("ledger-dir", "", "write one execution-ledger JSON per motif cell into this directory (compare with simdiff)")
		workers     = flag.Int("workers", 0, "concurrent figure cells (0 = one per CPU); output is identical at any worker count")
		shards      = flag.Int("shards", 0, "partition each cell's simulation into N lookahead-synchronized shards (0 = single event heap); output is identical at any shard count")
		dropRates   = flag.String("drop-rate", "", "comma-separated drop probabilities for the faults sweep (default 0.01,0.02,0.05,0.1)")
		retryBudget = flag.Int("retry-budget", 0, "max retransmits per op in the faults sweep (0 = recovery default)")
		tailK       = flag.Int("tail-k", 0, "worst-K depth of the latency-attribution tail exchange per cell (0 = default 8)")
	)
	flag.Parse()

	opt := harness.DefaultOptions()
	if *paper {
		opt = harness.PaperOptions()
	}
	if *nodes > 0 {
		opt.Nodes = *nodes
	}
	if *iters > 0 {
		opt.Iters = *iters
	}
	if *runs > 0 {
		opt.Runs = *runs
	}
	if *seed > 0 {
		opt.Seed = *seed
	}
	if *telDir != "" {
		if err := os.MkdirAll(*telDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rvmabench: %v\n", err)
			os.Exit(1)
		}
		opt.TelemetryDir = *telDir
	}
	if *ledgerDir != "" {
		if err := os.MkdirAll(*ledgerDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "rvmabench: %v\n", err)
			os.Exit(1)
		}
		opt.LedgerDir = *ledgerDir
	}
	if *workers > 0 {
		opt.Workers = *workers
	}
	if *shards > 0 {
		opt.Shards = *shards
	}
	if *dropRates != "" {
		for _, field := range strings.Split(*dropRates, ",") {
			rate, err := strconv.ParseFloat(strings.TrimSpace(field), 64)
			if err != nil || rate < 0 || rate > 1 {
				fmt.Fprintf(os.Stderr, "rvmabench: bad -drop-rate entry %q (want a probability in [0, 1])\n", field)
				os.Exit(1)
			}
			opt.FaultRates = append(opt.FaultRates, rate)
		}
	}
	if *retryBudget > 0 {
		opt.RetryBudget = *retryBudget
	}
	if *tailK > 0 {
		opt.TailK = *tailK
	}
	if *jsonOut != "" {
		effective := opt.Workers
		if effective == 0 {
			effective = runtime.NumCPU()
		}
		opt.Bench = &harness.BenchLog{Workers: effective}
	}

	experiments := flag.Args()
	if len(experiments) == 0 {
		experiments = []string{"all"}
	}
	started := time.Now()

	var run func(name string) bool
	run = func(name string) bool {
		var tables []*harness.Table
		switch name {
		case "fig4":
			tables = []*harness.Table{harness.Fig4(opt)}
		case "fig5":
			tables = []*harness.Table{harness.Fig5(opt)}
		case "fig6":
			tables = []*harness.Table{harness.Fig6(opt)}
		case "fig7":
			tables = []*harness.Table{harness.Fig7(opt)}
		case "fig8":
			tables = []*harness.Table{harness.Fig8(opt)}
		case "incast":
			tables = []*harness.Table{harness.IncastTable(opt)}
		case "summary":
			tables = []*harness.Table{harness.MicroSummary(opt), harness.MotifSummary(opt)}
		case "collectives":
			tables = []*harness.Table{harness.CollectivesTable(opt)}
		case "matchengine":
			tables = []*harness.Table{harness.MatchEngineTable(opt)}
		case "faults":
			tables = []*harness.Table{harness.FaultSweep(opt)}
		case "kv":
			tables = []*harness.Table{harness.KVTable(opt)}
		case "ablations":
			tables = []*harness.Table{
				harness.NotifyAblation(opt),
				harness.PCIeAblation(opt),
				harness.RDMABuffersAblation(opt),
				harness.LastByteCheatAblation(opt),
			}
		case "all":
			return run("fig4") && run("fig5") && run("fig6") &&
				run("fig7") && run("fig8") && run("incast") &&
				run("collectives") && run("matchengine") &&
				run("summary") && run("ablations")
		default:
			fmt.Fprintf(os.Stderr, "rvmabench: unknown experiment %q\n", name)
			fmt.Fprintln(os.Stderr, "experiments: fig4 fig5 fig6 fig7 fig8 incast collectives matchengine faults kv summary ablations all")
			return false
		}
		for _, t := range tables {
			if *csv {
				t.CSV(os.Stdout)
			} else {
				t.Fprint(os.Stdout)
			}
		}
		return true
	}

	for _, name := range experiments {
		if !run(name) {
			os.Exit(2)
		}
	}

	if *jsonOut != "" {
		opt.Bench.Elapsed = time.Since(started)
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rvmabench: %v\n", err)
			os.Exit(1)
		}
		if err := opt.Bench.WriteJSON(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "rvmabench: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "rvmabench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "rvmabench: wrote %d cell records to %s\n",
			len(opt.Bench.Records), *jsonOut)
	}
}
