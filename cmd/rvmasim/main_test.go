package main

import (
	"flag"
	"reflect"
	"testing"
)

// TestFlagRegistryCoversEveryFlag is the audit-generation guard: every
// rvmasim flag must be declared through a flagTable row (which forces an
// explicit replica/shard classification), rows must be unique, and every
// row must actually register the flag it names. A new flag added via a
// bare flag.String in main would fail here; a new row automatically
// lands in the generated replicaUnsupported/shardUnsupported lists the
// matrix tests drive.
func TestFlagRegistryCoversEveryFlag(t *testing.T) {
	fs := flag.NewFlagSet("rvmasim", flag.ContinueOnError)
	declareFlags(fs)
	registered := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { registered[f.Name] = true })
	seen := map[string]bool{}
	for _, row := range flagTable {
		if seen[row.name] {
			t.Errorf("duplicate registry row %q", row.name)
		}
		seen[row.name] = true
		if !registered[row.name] {
			t.Errorf("registry row %q does not register a flag of that name", row.name)
		}
	}
	for name := range registered {
		if !seen[name] {
			t.Errorf("flag -%s is registered outside the registry table", name)
		}
	}
	if len(registered) != len(flagTable) {
		t.Errorf("%d flags registered, %d registry rows", len(registered), len(flagTable))
	}
}

// TestReplicaIncompatibleMatrix pins the replica-mode flag audit: every
// observer flag is rejected when explicitly set alongside -seeds, including
// the ones the old value-based check silently ignored (-flight-recorder,
// -sample-interval, -tail-k) and the ledger flags.
func TestReplicaIncompatibleMatrix(t *testing.T) {
	cases := []struct {
		name string
		set  map[string]bool
		want []string
	}{
		{"none set", map[string]bool{}, nil},
		{"replica flags only", map[string]bool{"seeds": true, "workers": true, "gbps": true}, nil},
		{
			"kv workload knobs pass",
			map[string]bool{"seeds": true, "kv-skew": true, "kv-gap": true, "kv-servers": true,
				"kv-clients": true, "kv-keys": true, "kv-ops": true, "kv-window": true},
			nil,
		},
		{"trace", map[string]bool{"trace": true}, []string{"trace"}},
		{"spans", map[string]bool{"spans": true}, []string{"spans"}},
		{"metrics-out", map[string]bool{"metrics-out": true}, []string{"metrics-out"}},
		{"perfetto-out", map[string]bool{"perfetto-out": true}, []string{"perfetto-out"}},
		{"attrib-out", map[string]bool{"attrib-out": true}, []string{"attrib-out"}},
		{"timeseries-out", map[string]bool{"timeseries-out": true}, []string{"timeseries-out"}},
		{"heatmap-out", map[string]bool{"heatmap-out": true}, []string{"heatmap-out"}},
		{"nack-burst", map[string]bool{"nack-burst": true}, []string{"nack-burst"}},
		// Previously silently ignored in replica mode.
		{"flight-recorder", map[string]bool{"flight-recorder": true}, []string{"flight-recorder"}},
		{"sample-interval", map[string]bool{"sample-interval": true}, []string{"sample-interval"}},
		{"tail-k", map[string]bool{"tail-k": true}, []string{"tail-k"}},
		// Ledger flags are observers too.
		{"ledger-out", map[string]bool{"ledger-out": true}, []string{"ledger-out"}},
		{"ledger-epoch", map[string]bool{"ledger-epoch": true}, []string{"ledger-epoch"}},
		{"shard-plan-out", map[string]bool{"shard-plan-out": true}, []string{"shard-plan-out"}},
		// Sharding binds the run to one engine group; replicas each need
		// their own, so replica mode rejects it (and the canary knob).
		{"shards", map[string]bool{"shards": true}, []string{"shards"}},
		{"unsafe-lookahead-scale", map[string]bool{"unsafe-lookahead-scale": true}, []string{"unsafe-lookahead-scale"}},
		{
			"several at once, declaration order",
			map[string]bool{"ledger-out": true, "trace": true, "sample-interval": true, "seeds": true},
			[]string{"trace", "sample-interval", "ledger-out"},
		},
		{
			"shards with observers, declaration order",
			map[string]bool{"shards": true, "timeseries-out": true, "seeds": true},
			[]string{"timeseries-out", "shards"},
		},
	}
	for _, tc := range cases {
		if got := replicaIncompatible(tc.set); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: replicaIncompatible = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestReplicaUnsupportedCoversAllObserverFlags guards against a new
// observer flag being added without a replica-mode audit entry: every flag
// name in the list must be unique, and the known observer set must be a
// subset of the list.
func TestReplicaUnsupportedCoversAllObserverFlags(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range replicaUnsupported {
		if seen[name] {
			t.Errorf("duplicate entry %q in replicaUnsupported", name)
		}
		seen[name] = true
	}
	for _, name := range []string{
		"trace", "spans", "metrics-out", "perfetto-out", "attrib-out",
		"tail-k", "timeseries-out", "heatmap-out", "sample-interval",
		"flight-recorder", "nack-burst", "ledger-out", "ledger-epoch",
		"shard-plan-out", "shards", "unsafe-lookahead-scale",
	} {
		if !seen[name] {
			t.Errorf("observer flag %q missing from replicaUnsupported", name)
		}
	}
}

// TestShardIncompatibleMatrix pins the sharded-mode flag audit: the
// single-heap observers are rejected, the shard-aware ones pass through.
func TestShardIncompatibleMatrix(t *testing.T) {
	cases := []struct {
		name string
		set  map[string]bool
		want []string
	}{
		{"none set", map[string]bool{}, nil},
		{
			"kv workload knobs pass",
			map[string]bool{"shards": true, "kv-skew": true, "kv-gap": true, "kv-ops": true},
			nil,
		},
		{
			"shard-aware observers pass",
			map[string]bool{
				"shards": true, "metrics-out": true, "ledger-out": true,
				"ledger-epoch": true, "shard-plan-out": true,
				"timeseries-out": true, "heatmap-out": true, "sample-interval": true,
				"unsafe-lookahead-scale": true,
			},
			nil,
		},
		{"trace", map[string]bool{"shards": true, "trace": true}, []string{"trace"}},
		{"spans", map[string]bool{"shards": true, "spans": true}, []string{"spans"}},
		{"perfetto-out", map[string]bool{"shards": true, "perfetto-out": true}, []string{"perfetto-out"}},
		{"attrib-out", map[string]bool{"shards": true, "attrib-out": true}, []string{"attrib-out"}},
		{"tail-k", map[string]bool{"shards": true, "tail-k": true}, []string{"tail-k"}},
		{"flight-recorder", map[string]bool{"shards": true, "flight-recorder": true}, []string{"flight-recorder"}},
		{"nack-burst", map[string]bool{"shards": true, "nack-burst": true}, []string{"nack-burst"}},
		{
			"several at once, declaration order",
			map[string]bool{"flight-recorder": true, "spans": true, "trace": true},
			[]string{"trace", "spans", "flight-recorder"},
		},
	}
	for _, tc := range cases {
		if got := shardIncompatible(tc.set); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: shardIncompatible = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestReplayableSpec pins which flag shapes embed a replayable RunSpec in
// -ledger-out files and which fall back to epoch-only localization.
func TestReplayableSpec(t *testing.T) {
	rs, ok := replayableSpec("sweep3d", "rvma", "dragonfly", "adaptive",
		64, 100, 7, 1, 4, "", 0, 0, false, 0)
	if !ok {
		t.Fatal("default knobs should be replayable")
	}
	if rs.Motif != "sweep3d" || rs.Transport != "rvma" || rs.Network != "dragonfly/adaptive" ||
		rs.Nodes != 64 || rs.Seed != 7 || rs.Spans || rs.Recover || rs.Shards != 0 {
		t.Fatalf("unexpected spec: %+v", rs)
	}

	rs, ok = replayableSpec("halo3d", "rdma", "hyperx", "static",
		64, 200, 3, 1, 4, "", 0.01, 5, true, 0)
	if !ok {
		t.Fatal("drop-rate run should be replayable")
	}
	if !rs.Recover || rs.RetryBudget != 5 || rs.Drop != 0.01 || !rs.Spans {
		t.Fatalf("unexpected fault spec: %+v", rs)
	}

	rs, ok = replayableSpec("sweep3d", "rvma", "dragonfly", "adaptive",
		64, 100, 7, 1, 4, "", 0, 0, false, 4)
	if !ok {
		t.Fatal("sharded run with default knobs should be replayable")
	}
	if rs.Shards != 4 || rs.Spans {
		t.Fatalf("unexpected sharded spec: %+v", rs)
	}

	for _, tc := range []struct {
		name                string
		rdmaBufs, rvmaDepth int
		faultPlan           string
		retryBudget         int
	}{
		{"non-default rdma buffers", 2, 4, "", 0},
		{"non-default rvma depth", 1, 8, "", 0},
		{"structured fault plan", 1, 4, "drop=0.01,burst=3", 0},
		{"recovery disabled", 1, 4, "", -1},
	} {
		if _, ok := replayableSpec("sweep3d", "rvma", "dragonfly", "adaptive",
			64, 100, 1, tc.rdmaBufs, tc.rvmaDepth, tc.faultPlan, 0, tc.retryBudget, false, 0); ok {
			t.Errorf("%s: expected not replayable", tc.name)
		}
	}
}
