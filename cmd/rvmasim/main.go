// Command rvmasim runs a single motif simulation with explicit parameters,
// for exploring points outside the paper's sweeps.
//
// Usage:
//
//	rvmasim -motif sweep3d -transport rvma -topology dragonfly \
//	        -routing adaptive -nodes 128 -gbps 400
//
// It prints the simulated makespan and fabric statistics.
//
// Observability flags:
//
//	-trace             attach a tracer to every layer (fabric, NIC,
//	                   protocol endpoints) and print counters, series and
//	                   the tail of the event log after the run
//	-spans             track every message through its pipeline stages and
//	                   print the per-stage latency table (count, mean, p50,
//	                   p99, max)
//	-metrics-out F     write the full metrics snapshot (counters, gauges,
//	                   histograms) as indented JSON to F
//	-perfetto-out F    write a Chrome trace-event timeline to F; open it at
//	                   ui.perfetto.dev (each node renders as a process,
//	                   each span scope as a thread)
package main

import (
	"flag"
	"fmt"
	"os"

	"rvma/internal/fabric"
	"rvma/internal/harness"
	"rvma/internal/metrics"
	"rvma/internal/motif"
	"rvma/internal/sim"
	"rvma/internal/topology"
	"rvma/internal/trace"
)

func main() {
	var (
		motifName = flag.String("motif", "sweep3d", "motif: sweep3d, halo3d, incast")
		transport = flag.String("transport", "rvma", "transport: rvma, rdma")
		topoName  = flag.String("topology", "dragonfly", "topology: single, torus3d, fattree, dragonfly, hyperx")
		routing   = flag.String("routing", "adaptive", "routing: static, adaptive, valiant")
		nodes     = flag.Int("nodes", 128, "minimum node count")
		gbps      = flag.Float64("gbps", 100, "link speed in Gbps")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		rdmaBufs  = flag.Int("rdma-buffers", 1, "negotiated buffers per pair (RDMA transport)")
		rvmaDepth = flag.Int("rvma-depth", 4, "posted buffer depth per mailbox (RVMA transport)")
		doTrace    = flag.Bool("trace", false, "collect and print trace counters/series from every layer")
		doSpans    = flag.Bool("spans", false, "track per-message pipeline spans and print the latency table")
		metricsOut = flag.String("metrics-out", "", "write metrics snapshot JSON to this file")
		perfOut    = flag.String("perfetto-out", "", "write Chrome/Perfetto trace-event JSON to this file")
	)
	flag.Parse()

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "rvmasim: "+format+"\n", args...)
		os.Exit(2)
	}

	var kind motif.TransportKind
	switch *transport {
	case "rvma":
		kind = motif.KindRVMA
	case "rdma":
		kind = motif.KindRDMA
	default:
		fail("unknown transport %q", *transport)
	}

	var route fabric.RoutingMode
	switch *routing {
	case "static":
		route = fabric.RouteStatic
	case "adaptive":
		route = fabric.RouteAdaptive
	case "valiant":
		route = fabric.RouteValiant
	default:
		fail("unknown routing %q", *routing)
	}

	topo, err := topology.ForNodeCount(topology.Kind(*topoName), *nodes)
	if err != nil {
		fail("%v", err)
	}

	cfg := motif.DefaultClusterConfig(topo, kind)
	cfg.Routing = route
	cfg.Seed = *seed
	cfg.RDMABuffers = *rdmaBufs
	cfg.RVMADepth = *rvmaDepth
	cfg.ApplyLinkSpeed(*gbps)
	cluster, err := motif.NewCluster(cfg)
	if err != nil {
		fail("%v", err)
	}
	var tr *trace.Tracer
	if *doTrace {
		tr = trace.New(cluster.Eng, 64) // counters/series plus a small event ring
		tr.EnableAll()
		cluster.SetTracer(tr)
	}
	var reg *metrics.Registry
	if *doSpans || *metricsOut != "" || *perfOut != "" {
		reg = metrics.NewRegistry()
		if *doSpans || *perfOut != "" {
			reg.EnableSpans()
		}
		if *perfOut != "" {
			reg.EnableTimeline(0)
		}
		cluster.SetMetrics(reg)
		// Sample collector-backed gauges periodically so queue depths and
		// utilization show their mid-run values, not just the final state.
		cluster.Eng.SetHeartbeat(4096, reg.Collect)
	}

	var makespan sim.Time
	switch harness.MotifName(*motifName) {
	case harness.MotifSweep3D:
		makespan, err = motif.RunSweep3D(cluster, motif.DefaultSweep3DConfig(topo.NumNodes()))
	case harness.MotifHalo3D:
		makespan, err = motif.RunHalo3D(cluster, motif.DefaultHalo3DConfig(topo.NumNodes()))
	case harness.MotifIncast:
		makespan, err = motif.RunIncast(cluster, motif.DefaultIncastConfig())
	default:
		fail("unknown motif %q", *motifName)
	}
	if err != nil {
		fail("%v", err)
	}

	fmt.Printf("motif:      %s\n", *motifName)
	fmt.Printf("transport:  %s\n", kind)
	fmt.Printf("network:    %s, %s routing, %g Gbps links\n", topo.Name(), route, *gbps)
	fmt.Printf("makespan:   %v\n", makespan)
	fmt.Printf("events:     %d executed\n", cluster.Eng.EventsExecuted())
	st := cluster.Net.Stats
	fmt.Printf("fabric:     %d packets delivered, %.0f MB, mean latency %v, mean hops %.2f\n",
		st.PacketsDelivered, float64(st.BytesDelivered)/1e6,
		cluster.Net.MeanPacketLatency(), cluster.Net.MeanHops())
	if st.ValiantDetours > 0 {
		fmt.Printf("routing:    %d Valiant detours\n", st.ValiantDetours)
	}
	if *doSpans {
		fmt.Println("\nper-message stage latency:")
		reg.FprintSpans(os.Stdout)
		if open := reg.OpenSpans(); open > 0 {
			fmt.Printf("spans still open at end of run: %d\n", open)
		}
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fail("%v", err)
		}
		if err := reg.WriteJSON(f, cluster.Eng.Now()); err != nil {
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Printf("metrics:    snapshot written to %s\n", *metricsOut)
	}
	if *perfOut != "" {
		f, err := os.Create(*perfOut)
		if err != nil {
			fail("%v", err)
		}
		if err := reg.Timeline().WritePerfetto(f); err != nil {
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		recorded, dropped := reg.Timeline().Events()
		fmt.Printf("timeline:   %d events written to %s (%d dropped at cap); open at ui.perfetto.dev\n",
			recorded, *perfOut, dropped)
	}
	if tr != nil {
		fmt.Println("\ntrace:")
		tr.Dump(os.Stdout)
	}
}
