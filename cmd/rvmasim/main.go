// Command rvmasim runs a single motif simulation with explicit parameters,
// for exploring points outside the paper's sweeps.
//
// Usage:
//
//	rvmasim -motif sweep3d -transport rvma -topology dragonfly \
//	        -routing adaptive -nodes 128 -gbps 400
//
// It prints the simulated makespan and fabric statistics.
//
// Observability flags:
//
//	-trace             attach a tracer to every layer (fabric, NIC,
//	                   protocol endpoints) and print counters, series and
//	                   the tail of the event log after the run
//	-spans             track every message through its pipeline stages and
//	                   print the per-stage latency table (count, mean, p50,
//	                   p99, max)
//	-metrics-out F     write the full metrics snapshot (counters, gauges,
//	                   histograms) as indented JSON to F
//	-perfetto-out F    write a Chrome trace-event timeline to F; open it at
//	                   ui.perfetto.dev (each node renders as a process,
//	                   each span scope as a thread)
//	-attrib-out F      decompose every message's end-to-end latency into
//	                   per-stage wait vs service components, print the blame
//	                   table and worst-K tail forensics, and write the full
//	                   attribution report JSON to F
//	-tail-k N          worst-K depth of the attribution tail exchange
//	                   (default 8)
//
// Determinism-forensics flags (see internal/ledger and cmd/simdiff):
//
//	-ledger-out F      record the deterministic execution ledger (hash
//	                   chain over every model event pop) and write it to F;
//	                   compare two ledgers with simdiff
//	-ledger-epoch N    ledger epoch size in events (0 = default 65536)
//	-shard-plan-out F  record the per-component host-time profile and
//	                   write the shard-planner report to F (.csv suffix
//	                   selects CSV, anything else JSON)
//
// Time-resolved telemetry flags:
//
//	-timeseries-out F  attach the in-sim sampler and write the columnar
//	                   time-series CSV (one row per sample, sorted columns)
//	-heatmap-out F     write the per-switch × time utilization matrix CSV
//	-sample-interval D sampler cadence in sim time (default 10µs); the
//	                   interval doubles automatically if the row cap is hit
//	-flight-recorder N keep a causal ring of the last N model events and
//	                   dump it to stderr when a simdebug invariant trips, a
//	                   NACK burst exceeds -nack-burst, or the run is
//	                   interrupted (SIGINT)
//	-nack-burst N      NACK-burst dump threshold per sample window
//
// Fault-injection flags (see internal/fabric.FaultPlan and
// internal/recovery):
//
//	-drop-rate P       drop each delivered packet with probability P
//	                   (shorthand for -fault-plan drop=P)
//	-fault-plan S      full plan spec "drop=RATE,burst=N,
//	                   window=NODE:FROM:TO:RATE" (NODE may be "all";
//	                   times take ns/us/ms/s suffixes)
//	-retry-budget N    max retransmits per operation when faults are
//	                   active (0 = recovery default, -1 = disable the
//	                   recovery layer entirely — lossy runs then deadlock)
//
// KV dataplane flags (see internal/motif's RunKV; active with -motif kv):
//
//	-kv-servers N      server ranks holding the keyed mailbox store
//	                   (0 = scale with node count)
//	-kv-clients N      simulated client population aggregated at the edge
//	                   proxies (0 = default 2^20); per-client state stays
//	                   bounded at the proxies regardless of N
//	-kv-keys N         keyspace size (0 = default 4096)
//	-kv-ops N          operations issued per proxy (0 = default 32)
//	-kv-window N       outstanding-op window per proxy (0 = default 4)
//	-kv-skew S         zipfian key-popularity exponent (0 = uniform;
//	                   default 0.99)
//	-kv-gap D          mean per-proxy issue gap; smaller = higher offered
//	                   load (default 2µs)
//
// Parallel-execution flags (see internal/sim's ShardGroup):
//
//	-shards N          partition the simulation into N lookahead-
//	                   synchronized shards, one event heap per core; output
//	                   (makespan, metrics, telemetry, canonical ledger
//	                   chain head) is byte-identical at any shard count.
//	                   Incompatible with the single-heap observers (-trace,
//	                   -spans, -perfetto-out, -attrib-out, -flight-recorder)
//	-unsafe-lookahead-scale F
//	                   multiply the lookahead by F; F > 1 deliberately
//	                   breaks conservatism. Exists only as the CI divergence
//	                   canary: simdebug builds panic, release builds
//	                   silently diverge and the execution ledger pins the
//	                   first divergent event
//
// Replica flags:
//
//	-seeds N           run N independent replicas (seed, seed+1, ...) and
//	                   print per-seed makespans plus the mean; replicas run
//	                   concurrently on -workers goroutines, each with its
//	                   own engine, and results print in seed order
//	-workers N         replica concurrency (0 = one per CPU)
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"

	"rvma/internal/attrib"
	"rvma/internal/fabric"
	"rvma/internal/harness"
	"rvma/internal/ledger"
	"rvma/internal/metrics"
	"rvma/internal/motif"
	"rvma/internal/recovery"
	"rvma/internal/sim"
	"rvma/internal/stats"
	"rvma/internal/telemetry"
	"rvma/internal/topology"
	"rvma/internal/trace"
)

func main() {
	v := declareFlags(flag.CommandLine)
	flag.Parse()
	// Aliases into the registry-bound values; see flags.go for the table.
	motifName, transport, topoName, routing := v.motifName, v.transport, v.topoName, v.routing
	nodes, gbps, seed := v.nodes, v.gbps, v.seed
	rdmaBufs, rvmaDepth := v.rdmaBufs, v.rvmaDepth
	doTrace, doSpans := v.doTrace, v.doSpans
	metricsOut, perfOut, tsOut, heatOut := v.metricsOut, v.perfOut, v.tsOut, v.heatOut
	sampleIvl, recDepth, nackBurst := v.sampleIvl, v.recDepth, v.nackBurst
	attribOut, tailK := v.attribOut, v.tailK
	ledgerOut, ledgerEpoch, shardOut := v.ledgerOut, v.ledgerEpoch, v.shardOut
	seeds, workers := v.seeds, v.workers
	dropRate, faultPlan, retryBudget := v.dropRate, v.faultPlan, v.retryBudget
	shards, unsafeScale := v.shards, v.unsafeScale

	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "rvmasim: "+format+"\n", args...)
		os.Exit(2)
	}

	var kind motif.TransportKind
	switch *transport {
	case "rvma":
		kind = motif.KindRVMA
	case "rdma":
		kind = motif.KindRDMA
	default:
		fail("unknown transport %q", *transport)
	}

	var route fabric.RoutingMode
	switch *routing {
	case "static":
		route = fabric.RouteStatic
	case "adaptive":
		route = fabric.RouteAdaptive
	case "valiant":
		route = fabric.RouteValiant
	default:
		fail("unknown routing %q", *routing)
	}

	topo, err := topology.ForNodeCount(topology.Kind(*topoName), *nodes)
	if err != nil {
		fail("%v", err)
	}

	// KV workload knobs resolve against the topology-rounded rank count;
	// the other motifs ignore them.
	kvp := harness.KVParams{Skew: *v.kvSkew, GapNs: float64(v.kvGap.Nanoseconds()),
		Ops: *v.kvOps, Servers: *v.kvServers, Clients: *v.kvClients,
		Keys: *v.kvKeys, Window: *v.kvWindow}
	isKV := harness.MotifName(*motifName) == harness.MotifKV
	var kvCfg motif.KVConfig
	if isKV {
		kvCfg = kvp.Config(topo.NumNodes(), *seed)
	}

	// Fault plan: -fault-plan gives the full spec, -drop-rate layers a
	// uniform rate on top (or stands alone as the common case).
	plan, err := fabric.ParseFaultPlan(*faultPlan)
	if err != nil {
		fail("%v", err)
	}
	if *dropRate > 0 {
		if plan == nil {
			plan = &fabric.FaultPlan{}
		}
		plan.DropRate = *dropRate
	}
	if plan != nil {
		if err := plan.Validate(); err != nil {
			fail("%v", err)
		}
	}
	// The recovery layer rides along whenever faults are active; -retry-budget
	// -1 runs the lossy fabric bare (which deadlocks at any real loss rate —
	// useful as the control).
	var recCfg *recovery.Config
	if plan != nil && *retryBudget >= 0 {
		rc := recovery.DefaultConfig()
		if *retryBudget > 0 {
			rc.MaxRetries = *retryBudget
		}
		recCfg = &rc
	}

	// Replica mode: N independent seeds on a worker pool, one engine per
	// replica, printed in seed order. The observability flags attach to a
	// single engine, so they require a single run; every one of them is
	// rejected here (explicitly-set defaults included) rather than silently
	// ignored.
	if *seeds > 1 {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if bad := replicaIncompatible(set); len(bad) > 0 {
			fail("flag(s) -%s attach observers to a single engine and are incompatible with -seeds; drop them or set -seeds 1",
				strings.Join(bad, ", -"))
		}
		rep := replicaConfig{
			motifName: *motifName, kind: kind, topoName: *topoName,
			route: route, nodes: *nodes, gbps: *gbps,
			rdmaBufs: *rdmaBufs, rvmaDepth: *rvmaDepth,
			faults: plan, recovery: recCfg, kvp: kvp,
		}
		fmt.Printf("motif:      %s\n", *motifName)
		fmt.Printf("transport:  %s\n", kind)
		fmt.Printf("network:    %s, %s routing, %g Gbps links\n", topo.Name(), route, *gbps)
		runSeedReplicas(rep, *seed, *seeds, *workers, fail)
		return
	}

	// Sharded mode: the observer flags that bind to a single event heap are
	// rejected (explicitly-set only, like the replica audit); everything
	// else switches to its shard-aware implementation below.
	if *shards > 0 {
		set := map[string]bool{}
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if bad := shardIncompatible(set); len(bad) > 0 {
			fail("flag(s) -%s bind to a single event heap and are incompatible with -shards; drop them or set -shards 0",
				strings.Join(bad, ", -"))
		}
	} else if *unsafeScale != 1 {
		fail("-unsafe-lookahead-scale only applies to sharded runs; set -shards")
	}

	cfg := motif.DefaultClusterConfig(topo, kind)
	cfg.Routing = route
	cfg.Seed = *seed
	cfg.RDMABuffers = *rdmaBufs
	cfg.RVMADepth = *rvmaDepth
	cfg.Faults = plan
	cfg.Recovery = recCfg
	cfg.Shards = *shards
	cfg.ApplyLinkSpeed(*gbps)
	cluster, err := motif.NewCluster(cfg)
	if err != nil {
		fail("%v", err)
	}

	// The CI divergence canary: deliberately widen the claimed-safe window
	// past what cross-shard latencies justify, so shards execute past
	// handoffs they have not received. simdebug builds refuse to run this;
	// release builds silently diverge, which is exactly what the execution
	// ledger must catch.
	if *unsafeScale != 1 {
		cluster.Group.UnsafeScaleLookahead(*unsafeScale)
		fmt.Fprintf(os.Stderr,
			"rvmasim: WARNING: lookahead scaled by %g — conservatism deliberately broken, results are untrustworthy\n",
			*unsafeScale)
	}

	// Execution ledger / shard-plan profile. The recorder is a pure observer
	// on the engine's pop loop — attaching it cannot change the simulation.
	// Sharded runs use the canonical recorder, whose chain is a pure
	// function of the model (identical at every shard count, including 1);
	// single-heap runs keep the raw pop-order chain. The two modes are
	// never comparable, and simdiff refuses to try.
	spansOn := *doSpans || *perfOut != "" || *attribOut != ""
	var ledRec *ledger.Recorder
	var canonRec *ledger.CanonicalRecorder
	if *ledgerOut != "" || *shardOut != "" {
		lo := ledger.Options{EpochEvents: *ledgerEpoch, Profile: *shardOut != ""}
		if rs, ok := replayableSpec(*motifName, *transport, *topoName, *routing,
			*nodes, *gbps, *seed, *rdmaBufs, *rvmaDepth,
			*faultPlan, *dropRate, *retryBudget, spansOn, *shards); ok {
			if isKV {
				// Embed the resolved KV knobs so simdiff's replay rebuilds the
				// identical proxy plans (skew and gap are meaningful at zero).
				rs.KVSkew = kvCfg.Skew
				rs.KVGapNs = kvCfg.Gap.Nanoseconds()
				rs.KVOps = kvCfg.OpsPerProxy
				rs.KVServers = kvCfg.Servers
				rs.KVClients = kvCfg.Clients
				rs.KVKeys = kvCfg.Keys
				rs.KVWindow = kvCfg.Window
			}
			if *unsafeScale != 1 {
				// Canary runs embed the broken scale so simdiff's replay
				// reproduces the divergent chain and pins the first event.
				rs.UnsafeLookaheadScale = *unsafeScale
			}
			lo.Run = &rs
		}
		if cluster.Group != nil {
			canonRec = ledger.NewCanonicalRecorder(lo)
			canonRec.AttachGroup(cluster.Group)
		} else {
			ledRec = ledger.NewRecorder(lo)
			ledRec.Attach(cluster.Eng)
		}
	}

	var tr *trace.Tracer
	if *doTrace {
		tr = trace.New(cluster.Eng, 64) // counters/series plus a small event ring
		tr.EnableAll()
		cluster.SetTracer(tr)
	}

	// Flight recorder: a bounded causal ring of recent model events, dumped
	// with context when the run fails. It reuses the trace layer; with
	// -trace also set the explicit tracer doubles as the recorder ring.
	var rec *telemetry.FlightRecorder
	if *recDepth > 0 && cluster.Group == nil {
		rtr := tr
		if rtr == nil {
			rtr = trace.New(cluster.Eng, *recDepth)
			rtr.EnableAll()
			cluster.SetTracer(rtr)
		}
		rec = telemetry.NewFlightRecorder(rtr, os.Stderr)
		rec.Arm() // dump on any simdebug invariant violation
		defer rec.Disarm()
	}

	// In-sim sampler: a deterministic telemetry process on the engine. A
	// sharded cluster samples through a ShardSet instead — one daemon per
	// shard reading only shard-owned state, merged into the same columnar
	// CSV after the run.
	var sampler *telemetry.Sampler
	var shardSet *telemetry.ShardSet
	if *tsOut != "" || *heatOut != "" || (*nackBurst > 0 && rec != nil) {
		ivl := sim.FromNanos(float64(sampleIvl.Nanoseconds()))
		if cluster.Group != nil {
			shardSet = telemetry.NewShardSet(cluster.Group, ivl)
			cluster.RegisterTelemetryShards(shardSet)
			shardSet.Start()
		} else {
			sampler = telemetry.New(cluster.Eng, ivl)
			cluster.RegisterTelemetry(sampler)
			if *nackBurst > 0 && rec != nil {
				rec.WatchNACKBurst(sampler, func() float64 { return float64(cluster.NACKTotal()) }, *nackBurst)
			}
			sampler.Start()
		}
	}

	// A cancelled run still yields its recent history: dump the recorder
	// on SIGINT, then exit with the conventional interrupted status.
	if rec != nil {
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, os.Interrupt)
		go func() {
			<-sigc
			rec.Dump("run cancelled (SIGINT)")
			os.Exit(130)
		}()
	}
	var reg *metrics.Registry
	var attribCol *attrib.Collector
	if *doSpans || *metricsOut != "" || *perfOut != "" || *attribOut != "" {
		reg = metrics.NewRegistry()
		if *doSpans || *perfOut != "" || *attribOut != "" {
			reg.EnableSpans()
		}
		if *perfOut != "" {
			reg.EnableTimeline(0)
		}
		cluster.AttachShardMetrics(reg)
		if *attribOut != "" {
			attribCol = attrib.NewCollector(*tailK)
			cluster.AttachAttribution(reg, attribCol)
		}
		if cluster.Group == nil {
			// Sample collector-backed gauges periodically so queue depths and
			// utilization show their mid-run values, not just the final state.
			// Sharded runs fold per-shard shadows after the run instead.
			cluster.Eng.SetHeartbeat(4096, reg.Collect)
		}
	}

	var makespan sim.Time
	var kvRes *motif.KVResult
	switch harness.MotifName(*motifName) {
	case harness.MotifSweep3D:
		makespan, err = motif.RunSweep3D(cluster, motif.DefaultSweep3DConfig(topo.NumNodes()))
	case harness.MotifHalo3D:
		makespan, err = motif.RunHalo3D(cluster, motif.DefaultHalo3DConfig(topo.NumNodes()))
	case harness.MotifIncast:
		makespan, err = motif.RunIncast(cluster, motif.DefaultIncastConfig())
	case harness.MotifKV:
		makespan, kvRes, err = motif.RunKV(cluster, kvCfg)
	default:
		fail("unknown motif %q", *motifName)
	}
	if err != nil {
		// A wedged KV run still accounts for what it abandoned — print the
		// accounting before failing so CI can assert it.
		if kvRes != nil && kvRes.Issued > 0 {
			fmt.Printf("kv:         %d/%d ops completed (%.1f%%), %d abandoned\n",
				kvRes.Completed, kvRes.Issued,
				100*float64(kvRes.Completed)/float64(kvRes.Issued),
				kvRes.Issued-kvRes.Completed)
		}
		fail("%v", err)
	}

	cluster.FinishMetrics(reg)

	fmt.Printf("motif:      %s\n", *motifName)
	fmt.Printf("transport:  %s\n", kind)
	fmt.Printf("network:    %s, %s routing, %g Gbps links\n", topo.Name(), route, *gbps)
	if cluster.Group != nil {
		fmt.Printf("shards:     %d (lookahead %v)\n", cluster.Group.Shards(), cluster.Group.Lookahead())
	}
	fmt.Printf("makespan:   %v\n", makespan)
	fmt.Printf("events:     %d executed\n", cluster.EventsExecuted())
	st := cluster.Net.TotalStats()
	fmt.Printf("fabric:     %d packets delivered, %.0f MB, mean latency %v, mean hops %.2f\n",
		st.PacketsDelivered, float64(st.BytesDelivered)/1e6,
		cluster.Net.MeanPacketLatency(), cluster.Net.MeanHops())
	if st.ValiantDetours > 0 {
		fmt.Printf("routing:    %d Valiant detours\n", st.ValiantDetours)
	}
	if plan != nil {
		fmt.Printf("faults:     %d packets dropped (%.1f kB)\n",
			st.PacketsDropped, float64(st.BytesDropped)/1e3)
		if recCfg != nil {
			rs := cluster.RecoveryStats()
			fmt.Printf("recovery:   %d/%d ops completed (%d recovered), %d retransmits, %d timeouts, %d nack-retries, %d exhausted, %d reclaims\n",
				rs.OpsCompleted, rs.OpsStarted, rs.Recovered, rs.Retransmits,
				rs.Timeouts, rs.NackRetries, rs.Exhausted, rs.Reclaims)
		}
	}
	if kvRes != nil {
		fmt.Printf("kv:         %d/%d ops completed (%.1f%%), %d simulated clients via %d proxies (%d touched)\n",
			kvRes.Completed, kvRes.Issued,
			100*float64(kvRes.Completed)/float64(kvRes.Issued),
			kvRes.SimulatedClients, kvRes.Proxies, kvRes.DistinctClients)
		goodput := 0.0
		if secs := makespan.Seconds(); secs > 0 {
			goodput = float64(kvRes.PayloadBytes) * 8 / secs / 1e9
		}
		fmt.Printf("kv latency: p50 %v, p99 %v, p99.9 %v; goodput %s; cas-conflicts %d/%d\n",
			sim.FromNanos(kvRes.Lat.Quantile(0.50)),
			sim.FromNanos(kvRes.Lat.Quantile(0.99)),
			sim.FromNanos(kvRes.Lat.Quantile(0.999)),
			stats.FormatGbps(goodput), kvRes.CASFail, kvRes.CASFail+kvRes.CASOK)
	}
	if *doSpans {
		fmt.Println("\nper-message stage latency:")
		reg.FprintSpans(os.Stdout)
		if open := reg.OpenSpans(); open > 0 {
			fmt.Printf("spans still open at end of run: %d\n", open)
		}
	}
	if *attribOut != "" {
		f, err := os.Create(*attribOut)
		if err != nil {
			fail("%v", err)
		}
		if err := attribCol.WriteJSON(f); err != nil {
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Println("\nlatency attribution (wait vs service, per stage):")
		attribCol.FprintBlame(os.Stdout)
		attribCol.FprintTail(os.Stdout)
		fmt.Printf("attribution: report written to %s (conservation violations: %d, open spans: %d)\n",
			*attribOut, attribCol.Violations(), attribCol.Open())
	}
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fail("%v", err)
		}
		if err := reg.WriteJSON(f, cluster.Eng.Now()); err != nil {
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Printf("metrics:    snapshot written to %s\n", *metricsOut)
	}
	if *perfOut != "" {
		f, err := os.Create(*perfOut)
		if err != nil {
			fail("%v", err)
		}
		if err := reg.Timeline().WritePerfetto(f); err != nil {
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		recorded, dropped := reg.Timeline().Events()
		fmt.Printf("timeline:   %d events written to %s (%d dropped at cap); open at ui.perfetto.dev\n",
			recorded, *perfOut, dropped)
	}
	if *tsOut != "" {
		f, err := os.Create(*tsOut)
		if err != nil {
			fail("%v", err)
		}
		if shardSet != nil {
			err = shardSet.WriteCSV(f)
		} else {
			err = sampler.WriteCSV(f)
		}
		if err != nil {
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		if shardSet != nil {
			fmt.Printf("telemetry:  %d samples merged from %d shards written to %s\n",
				shardSet.Samples(), shardSet.Shards(), *tsOut)
		} else {
			fmt.Printf("telemetry:  %d samples x %d columns written to %s (interval %v, %d rows downsampled)\n",
				sampler.Samples(), len(sampler.Columns()), *tsOut, sampler.Interval(), sampler.Dropped())
		}
	}
	if *heatOut != "" {
		f, err := os.Create(*heatOut)
		if err != nil {
			fail("%v", err)
		}
		if shardSet != nil {
			err = shardSet.WriteHeatmapCSV(f, fabric.TelemetryHeatmapPrefix)
		} else {
			err = sampler.WriteHeatmapCSV(f, fabric.TelemetryHeatmapPrefix)
		}
		if err != nil {
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Printf("heatmap:    per-switch utilization matrix written to %s\n", *heatOut)
	}
	if *ledgerOut != "" {
		var led *ledger.Ledger
		if canonRec != nil {
			led = canonRec.Finalize()
		} else {
			led = ledRec.Finalize()
		}
		if err := led.WriteFile(*ledgerOut); err != nil {
			fail("%v", err)
		}
		replayNote := ""
		if led.Run == nil {
			replayNote = "; no replayable run spec (non-default knobs), simdiff will localize to epoch only"
		}
		fmt.Printf("ledger:     %d events in %d epochs, chain head %s, written to %s%s\n",
			led.Events, len(led.Epochs), led.ChainHead, *ledgerOut, replayNote)
	}
	if *shardOut != "" {
		var prof *ledger.ProfileReport
		if canonRec != nil {
			prof = canonRec.Profile()
		} else {
			prof = ledRec.Profile()
		}
		f, err := os.Create(*shardOut)
		if err != nil {
			fail("%v", err)
		}
		if strings.HasSuffix(*shardOut, ".csv") {
			err = prof.WriteCSV(f)
		} else {
			err = prof.WriteJSON(f)
		}
		if err != nil {
			fail("%v", err)
		}
		if err := f.Close(); err != nil {
			fail("%v", err)
		}
		fmt.Printf("shard plan: %d components over %d events written to %s\n",
			len(prof.Components), prof.TotalEvents, *shardOut)
	}
	if tr != nil {
		fmt.Println("\ntrace:")
		tr.Dump(os.Stdout)
	}
}

// replayableSpec builds the RunSpec embedded in -ledger-out files so
// cmd/simdiff can replay the run for event-level divergence resolution.
// Replay goes through the harness cell runner, which only reproduces runs
// whose knobs match the harness defaults; anything it cannot express —
// non-default transport buffer depths, structured fault plans, disabled
// recovery — yields ok=false and the ledger is written without a spec
// (epoch-level localization still works, replay does not).
func replayableSpec(motifName, transport, topoName, routing string,
	nodes int, gbps float64, seed uint64, rdmaBufs, rvmaDepth int,
	faultPlan string, dropRate float64, retryBudget int, spans bool, shards int) (ledger.RunSpec, bool) {
	if rdmaBufs != 1 || rvmaDepth != 4 || faultPlan != "" || retryBudget < 0 {
		return ledger.RunSpec{}, false
	}
	rs := ledger.RunSpec{
		Motif:     motifName,
		Transport: transport,
		Topology:  topoName,
		Routing:   routing,
		Network:   topoName + "/" + routing,
		Nodes:     nodes,
		Gbps:      gbps,
		Seed:      seed,
		Spans:     spans && shards == 0, // sharded cells run without spans
		Drop:      dropRate,
		Shards:    shards,
	}
	if dropRate > 0 {
		rs.Recover = true
		if retryBudget > 0 {
			rs.RetryBudget = retryBudget
		}
	}
	return rs, true
}

// replicaConfig is one -seeds replica's experiment point (everything but
// the seed itself).
type replicaConfig struct {
	motifName string
	kind      motif.TransportKind
	topoName  string
	route     fabric.RoutingMode
	nodes     int
	gbps      float64
	rdmaBufs  int
	rvmaDepth int
	faults    *fabric.FaultPlan
	recovery  *recovery.Config
	kvp       harness.KVParams
}

// runReplica builds a private topology, cluster and engine for one seed
// and runs the motif to completion. It shares nothing with other replicas.
func runReplica(rep replicaConfig, seed uint64) (sim.Time, uint64, error) {
	topo, err := topology.ForNodeCount(topology.Kind(rep.topoName), rep.nodes)
	if err != nil {
		return 0, 0, err
	}
	cfg := motif.DefaultClusterConfig(topo, rep.kind)
	cfg.Routing = rep.route
	cfg.Seed = seed
	cfg.RDMABuffers = rep.rdmaBufs
	cfg.RVMADepth = rep.rvmaDepth
	cfg.Faults = rep.faults
	cfg.Recovery = rep.recovery
	cfg.ApplyLinkSpeed(rep.gbps)
	cluster, err := motif.NewCluster(cfg)
	if err != nil {
		return 0, 0, err
	}
	var makespan sim.Time
	switch harness.MotifName(rep.motifName) {
	case harness.MotifSweep3D:
		makespan, err = motif.RunSweep3D(cluster, motif.DefaultSweep3DConfig(topo.NumNodes()))
	case harness.MotifHalo3D:
		makespan, err = motif.RunHalo3D(cluster, motif.DefaultHalo3DConfig(topo.NumNodes()))
	case harness.MotifIncast:
		makespan, err = motif.RunIncast(cluster, motif.DefaultIncastConfig())
	case harness.MotifKV:
		makespan, _, err = motif.RunKV(cluster, rep.kvp.Config(topo.NumNodes(), seed))
	default:
		err = fmt.Errorf("unknown motif %q", rep.motifName)
	}
	if err != nil {
		return 0, 0, err
	}
	return makespan, cluster.Eng.EventsExecuted(), nil
}

// runSeedReplicas fans seeds base..base+n-1 over a worker pool and prints
// the per-seed makespans in seed order, then the mean and spread. The
// output is identical at any worker count because results land in a
// pre-sized slice indexed by seed offset.
func runSeedReplicas(rep replicaConfig, base uint64, n, workers int, fail func(string, ...any)) {
	type result struct {
		makespan sim.Time
		events   uint64
		err      error
	}
	out := make([]result, n)
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				m, ev, err := runReplica(rep, base+uint64(i))
				out[i] = result{makespan: m, events: ev, err: err}
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	fmt.Printf("replicas:   %d seeds on %d workers\n\n", n, workers)
	fmt.Printf("%-8s %-16s %s\n", "seed", "makespan", "events")
	var sumNS, minNS, maxNS float64
	for i, r := range out {
		if r.err != nil {
			fail("seed %d: %v", base+uint64(i), r.err)
		}
		ns := r.makespan.Nanoseconds()
		sumNS += ns
		if i == 0 || ns < minNS {
			minNS = ns
		}
		if ns > maxNS {
			maxNS = ns
		}
		fmt.Printf("%-8d %-16v %d\n", base+uint64(i), r.makespan, r.events)
	}
	fmt.Printf("\nmean:       %v (min %v, max %v)\n",
		sim.FromNanos(sumNS/float64(n)), sim.FromNanos(minNS), sim.FromNanos(maxNS))
}
