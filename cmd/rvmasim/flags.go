package main

import (
	"flag"
	"time"
)

// This file is the flag registry: the single table every rvmasim flag is
// declared through, carrying its mode classification alongside its
// definition. The replica (-seeds) and shard (-shards) incompatibility
// audits used to be hand-maintained name lists that silently drifted when
// a flag was added; now they are generated from this table, and the
// registry test fails any flag that is registered outside it (or any
// table row that registers nothing), so a new flag cannot ship without an
// explicit replica/shard classification.

// simFlags holds every parsed flag value. Fields are populated by
// declareFlags via the registry rows.
type simFlags struct {
	motifName   *string
	transport   *string
	topoName    *string
	routing     *string
	nodes       *int
	gbps        *float64
	seed        *uint64
	rdmaBufs    *int
	rvmaDepth   *int
	doTrace     *bool
	doSpans     *bool
	metricsOut  *string
	perfOut     *string
	tsOut       *string
	heatOut     *string
	sampleIvl   *time.Duration
	recDepth    *int
	nackBurst   *float64
	attribOut   *string
	tailK       *int
	ledgerOut   *string
	ledgerEpoch *uint64
	shardOut    *string
	seeds       *int
	workers     *int
	dropRate    *float64
	faultPlan   *string
	retryBudget *int
	shards      *int
	unsafeScale *float64
	kvServers   *int
	kvClients   *int
	kvKeys      *int
	kvOps       *int
	kvWindow    *int
	kvSkew      *float64
	kvGap       *time.Duration
}

// flagSpec is one registry row: the flag's name, whether it is usable
// alongside -seeds N>1 (replicaOK) and -shards N>0 (shardOK), and the
// closure that registers it. Classification is part of the declaration —
// there is no way to add a flag without deciding both.
type flagSpec struct {
	name      string
	replicaOK bool
	shardOK   bool
	register  func(fs *flag.FlagSet, v *simFlags)
}

// flagTable is the registry, in declaration order. The generated audit
// lists preserve this order, which the error messages and their tests
// rely on. Observer flags (anything that binds a tracer, registry,
// sampler, recorder or ledger to a single engine) are replicaOK=false;
// the subset that has no shard-aware implementation (per-message spans,
// the tracer/flight-recorder ring) is also shardOK=false.
var flagTable = []flagSpec{
	{"motif", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.motifName = fs.String("motif", "sweep3d", "motif: sweep3d, halo3d, incast, kv")
	}},
	{"transport", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.transport = fs.String("transport", "rvma", "transport: rvma, rdma")
	}},
	{"topology", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.topoName = fs.String("topology", "dragonfly", "topology: single, torus3d, fattree, dragonfly, hyperx")
	}},
	{"routing", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.routing = fs.String("routing", "adaptive", "routing: static, adaptive, valiant")
	}},
	{"nodes", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.nodes = fs.Int("nodes", 128, "minimum node count")
	}},
	{"gbps", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.gbps = fs.Float64("gbps", 100, "link speed in Gbps")
	}},
	{"seed", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.seed = fs.Uint64("seed", 1, "simulation seed")
	}},
	{"rdma-buffers", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.rdmaBufs = fs.Int("rdma-buffers", 1, "negotiated buffers per pair (RDMA transport)")
	}},
	{"rvma-depth", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.rvmaDepth = fs.Int("rvma-depth", 4, "posted buffer depth per mailbox (RVMA transport)")
	}},
	{"trace", false, false, func(fs *flag.FlagSet, v *simFlags) {
		v.doTrace = fs.Bool("trace", false, "collect and print trace counters/series from every layer")
	}},
	{"spans", false, false, func(fs *flag.FlagSet, v *simFlags) {
		v.doSpans = fs.Bool("spans", false, "track per-message pipeline spans and print the latency table")
	}},
	{"metrics-out", false, true, func(fs *flag.FlagSet, v *simFlags) {
		v.metricsOut = fs.String("metrics-out", "", "write metrics snapshot JSON to this file")
	}},
	{"perfetto-out", false, false, func(fs *flag.FlagSet, v *simFlags) {
		v.perfOut = fs.String("perfetto-out", "", "write Chrome/Perfetto trace-event JSON to this file")
	}},
	{"timeseries-out", false, true, func(fs *flag.FlagSet, v *simFlags) {
		v.tsOut = fs.String("timeseries-out", "", "write sampled time-series CSV to this file")
	}},
	{"heatmap-out", false, true, func(fs *flag.FlagSet, v *simFlags) {
		v.heatOut = fs.String("heatmap-out", "", "write per-switch × time utilization matrix CSV to this file")
	}},
	{"sample-interval", false, true, func(fs *flag.FlagSet, v *simFlags) {
		v.sampleIvl = fs.Duration("sample-interval", 10*time.Microsecond, "telemetry sampling interval (sim time)")
	}},
	{"flight-recorder", false, false, func(fs *flag.FlagSet, v *simFlags) {
		v.recDepth = fs.Int("flight-recorder", 256, "flight recorder depth in events (0 disables)")
	}},
	{"nack-burst", false, false, func(fs *flag.FlagSet, v *simFlags) {
		v.nackBurst = fs.Float64("nack-burst", 0, "dump flight recorder when NACKs per sample window reach this (0 disables)")
	}},
	{"attrib-out", false, false, func(fs *flag.FlagSet, v *simFlags) {
		v.attribOut = fs.String("attrib-out", "", "write the latency-attribution report JSON to this file and print the blame table")
	}},
	{"tail-k", false, false, func(fs *flag.FlagSet, v *simFlags) {
		v.tailK = fs.Int("tail-k", 8, "worst-K depth of the latency-attribution tail exchange")
	}},
	{"ledger-out", false, true, func(fs *flag.FlagSet, v *simFlags) {
		v.ledgerOut = fs.String("ledger-out", "", "write the deterministic execution-ledger JSON to this file (compare with simdiff)")
	}},
	{"ledger-epoch", false, true, func(fs *flag.FlagSet, v *simFlags) {
		v.ledgerEpoch = fs.Uint64("ledger-epoch", 0, "ledger epoch size in events (0 = default 65536)")
	}},
	{"shard-plan-out", false, true, func(fs *flag.FlagSet, v *simFlags) {
		v.shardOut = fs.String("shard-plan-out", "", "write the per-component host-time profile (shard-planner report) to this file; .csv selects CSV, else JSON")
	}},
	{"seeds", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.seeds = fs.Int("seeds", 1, "run this many seed replicas (seed, seed+1, ...) and report each plus the mean")
	}},
	{"workers", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.workers = fs.Int("workers", 0, "replica concurrency for -seeds (0 = one per CPU)")
	}},
	{"drop-rate", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.dropRate = fs.Float64("drop-rate", 0, "uniform per-packet drop probability (shorthand for -fault-plan drop=P)")
	}},
	{"fault-plan", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.faultPlan = fs.String("fault-plan", "", "fault plan spec: drop=RATE,burst=N,window=NODE:FROM:TO:RATE")
	}},
	{"retry-budget", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.retryBudget = fs.Int("retry-budget", 0, "max retransmits per op under faults (0 = recovery default, -1 = disable recovery)")
	}},
	{"shards", false, true, func(fs *flag.FlagSet, v *simFlags) {
		v.shards = fs.Int("shards", 0, "partition the simulation into N lookahead-synchronized shards (0 = single event heap); output is byte-identical at any shard count")
	}},
	{"unsafe-lookahead-scale", false, true, func(fs *flag.FlagSet, v *simFlags) {
		v.unsafeScale = fs.Float64("unsafe-lookahead-scale", 1, "multiply the shard lookahead by this factor; >1 deliberately breaks conservatism (CI divergence canary — do not use)")
	}},
	// KV dataplane knobs (see -motif kv): pure workload parameters, safe in
	// every mode.
	{"kv-servers", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.kvServers = fs.Int("kv-servers", 0, "server ranks holding the keyed mailbox store (0 = scale with node count)")
	}},
	{"kv-clients", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.kvClients = fs.Int("kv-clients", 0, "simulated client population aggregated at the edge proxies (0 = default 2^20)")
	}},
	{"kv-keys", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.kvKeys = fs.Int("kv-keys", 0, "keyspace size (0 = default 4096)")
	}},
	{"kv-ops", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.kvOps = fs.Int("kv-ops", 0, "operations issued per proxy (0 = default 32)")
	}},
	{"kv-window", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.kvWindow = fs.Int("kv-window", 0, "outstanding-op window per proxy (0 = default 4)")
	}},
	{"kv-skew", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.kvSkew = fs.Float64("kv-skew", 0.99, "zipfian key-popularity exponent (0 = uniform keyspace)")
	}},
	{"kv-gap", true, true, func(fs *flag.FlagSet, v *simFlags) {
		v.kvGap = fs.Duration("kv-gap", 2*time.Microsecond, "mean per-proxy issue gap; smaller = higher offered load (0 = default 2µs)")
	}},
}

// declareFlags registers every row of the registry on fs and returns the
// bound values.
func declareFlags(fs *flag.FlagSet) *simFlags {
	v := &simFlags{}
	for _, f := range flagTable {
		f.register(fs, v)
	}
	return v
}

// auditNames generates an audit list from the registry in declaration
// order.
func auditNames(bad func(flagSpec) bool) []string {
	var names []string
	for _, f := range flagTable {
		if bad(f) {
			names = append(names, f.name)
		}
	}
	return names
}

// replicaUnsupported is the generated list of flags rejected alongside
// -seeds N>1: every observer binds to a single engine, and sharding binds
// the run to one engine group. Defaults do not trigger the audit — only
// flags the user actually set on the command line count.
var replicaUnsupported = auditNames(func(f flagSpec) bool { return !f.replicaOK })

// shardUnsupported is the generated list of flags rejected alongside
// -shards N>0: the observers that bind to a single event heap and have no
// shard-aware equivalent.
var shardUnsupported = auditNames(func(f flagSpec) bool { return !f.shardOK })

// replicaIncompatible returns, in declaration order, the replica-unsupported
// flags present in set (the explicitly-set flag names from flag.Visit).
func replicaIncompatible(set map[string]bool) []string {
	var bad []string
	for _, name := range replicaUnsupported {
		if set[name] {
			bad = append(bad, name)
		}
	}
	return bad
}

// shardIncompatible returns, in declaration order, the shard-unsupported
// flags present in set.
func shardIncompatible(set map[string]bool) []string {
	var bad []string
	for _, name := range shardUnsupported {
		if set[name] {
			bad = append(bad, name)
		}
	}
	return bad
}
