// Command simdiff compares two runs' artifacts for divergence forensics:
// execution ledgers (.ledger.json), metric snapshots (JSON), and telemetry
// time-series (CSV).
//
// For ledgers it goes beyond byte equality: epoch chains are binary-
// searched for the first divergent epoch, and — when both ledgers embed a
// RunSpec — the runs are replayed in-process with a full-resolution
// capture window over that epoch, pinning the divergence to the exact
// first differing event (pop index, sequence number, timestamp, priority,
// component label).
//
// Exit status: 0 identical, 1 divergent, 2 usage or I/O error.
//
// Usage:
//
//	simdiff [-kind auto|ledger|metrics|telemetry] [-no-replay] A B
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"rvma/internal/harness"
	"rvma/internal/ledger"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errw *os.File) int {
	fs := flag.NewFlagSet("simdiff", flag.ContinueOnError)
	fs.SetOutput(errw)
	kind := fs.String("kind", "auto", "artifact kind: auto, ledger, metrics, telemetry")
	noReplay := fs.Bool("no-replay", false, "on ledger divergence, skip the in-process replay that pins the exact event")
	fs.Usage = func() {
		fmt.Fprintf(errw, "usage: simdiff [flags] A B\n\ncompares two run artifacts; exits 0 when identical, 1 on divergence, 2 on error\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	pathA, pathB := fs.Arg(0), fs.Arg(1)
	k := *kind
	if k == "auto" {
		k = detectKind(pathA)
		if k2 := detectKind(pathB); k2 != k {
			fmt.Fprintf(errw, "simdiff: cannot auto-detect a common kind (%s is %s, %s is %s); pass -kind\n", pathA, k, pathB, k2)
			return 2
		}
	}
	switch k {
	case "ledger":
		return diffLedgers(out, errw, pathA, pathB, !*noReplay)
	case "metrics":
		return diffMetrics(out, errw, pathA, pathB)
	case "telemetry":
		return diffTelemetry(out, errw, pathA, pathB)
	default:
		fmt.Fprintf(errw, "simdiff: unknown kind %q\n", k)
		return 2
	}
}

// detectKind guesses the artifact kind from the file name.
func detectKind(path string) string {
	switch {
	case strings.HasSuffix(path, ".ledger.json"):
		return "ledger"
	case strings.HasSuffix(path, ".csv"):
		return "telemetry"
	default:
		return "metrics"
	}
}

// diffLedgers compares two execution ledgers, localizing any divergence to
// an epoch and (when replay is possible) to the exact first divergent pop.
func diffLedgers(out, errw *os.File, pathA, pathB string, replay bool) int {
	la, err := ledger.ReadFile(pathA)
	if err != nil {
		fmt.Fprintf(errw, "simdiff: %v\n", err)
		return 2
	}
	lb, err := ledger.ReadFile(pathB)
	if err != nil {
		fmt.Fprintf(errw, "simdiff: %v\n", err)
		return 2
	}
	d := ledger.Compare(la, lb)
	if d.Identical {
		fmt.Fprintf(out, "identical: %d events, chain head %s\n", la.Events, la.ChainHead)
		return 0
	}
	if !d.Comparable {
		fmt.Fprintf(errw, "simdiff: %s\n", d.Reason)
		return 2
	}
	fmt.Fprintf(out, "DIVERGENT: %s\n", d.Reason)
	fmt.Fprintf(out, "first divergent epoch: %d (pops %d..%d)\n", d.FirstDivergentEpoch, d.FromPop, d.ToPop-1)
	if !replay {
		return 1
	}
	if la.Run == nil || lb.Run == nil {
		fmt.Fprintf(out, "no run spec embedded; cannot replay for event-level resolution\n")
		return 1
	}
	div, err := replayWindow(la, lb, d)
	if err != nil {
		fmt.Fprintf(errw, "simdiff: replay: %v\n", err)
		return 1
	}
	if div == nil {
		fmt.Fprintf(out, "replay windows agree over the divergent epoch (divergence did not reproduce)\n")
		return 1
	}
	fmt.Fprintf(out, "first divergent event: pop %d\n", div.Pop)
	fmt.Fprintf(out, "first-divergence seq: A=%d B=%d\n", div.SeqA, div.SeqB)
	printRec := func(side string, r *ledger.WindowRecord) {
		if r == nil {
			fmt.Fprintf(out, "  %s: <run drained>\n", side)
			return
		}
		fmt.Fprintf(out, "  %s: seq=%d t=%dps pri=%d label=%s\n", side, r.Seq, r.TimePS, r.Pri, r.Label)
	}
	printRec("A", div.A)
	printRec("B", div.B)
	return 1
}

// replayWindow re-runs both ledgers' RunSpecs with full-resolution capture
// over the divergent window and compares the captures pop by pop.
func replayWindow(la, lb *ledger.Ledger, d ledger.Diff) (*ledger.WindowDivergence, error) {
	ro := harness.ReplayOptions{EpochEvents: la.EpochEvents, WindowFrom: d.FromPop, WindowTo: d.ToPop}
	ra, _, err := harness.ReplaySpec(*la.Run, ro)
	if err != nil {
		return nil, fmt.Errorf("run A: %w", err)
	}
	if ra.ChainHead != la.ChainHead {
		return nil, fmt.Errorf("run A replay did not reproduce (chain %s vs recorded %s)", ra.ChainHead, la.ChainHead)
	}
	rb, _, err := harness.ReplaySpec(*lb.Run, ro)
	if err != nil {
		return nil, fmt.Errorf("run B: %w", err)
	}
	if rb.ChainHead != lb.ChainHead {
		return nil, fmt.Errorf("run B replay did not reproduce (chain %s vs recorded %s)", rb.ChainHead, lb.ChainHead)
	}
	return ledger.CompareWindows(ra.Window, rb.Window)
}

// diffMetrics compares two JSON metric snapshots structurally and reports
// the first differing path (in sorted-key order, so output is stable).
func diffMetrics(out, errw *os.File, pathA, pathB string) int {
	va, err := readJSON(pathA)
	if err != nil {
		fmt.Fprintf(errw, "simdiff: %v\n", err)
		return 2
	}
	vb, err := readJSON(pathB)
	if err != nil {
		fmt.Fprintf(errw, "simdiff: %v\n", err)
		return 2
	}
	if path, a, b, ok := firstJSONDiff("$", va, vb); ok {
		fmt.Fprintf(out, "DIVERGENT: first differing path %s\n  A: %v\n  B: %v\n", path, a, b)
		return 1
	}
	fmt.Fprintln(out, "identical: metric snapshots match")
	return 0
}

func readJSON(path string) (any, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var v any
	if err := json.Unmarshal(b, &v); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return v, nil
}

// firstJSONDiff walks two decoded JSON values and returns the first
// differing path, comparing object keys in sorted order.
func firstJSONDiff(path string, a, b any) (string, any, any, bool) {
	switch av := a.(type) {
	case map[string]any:
		bv, ok := b.(map[string]any)
		if !ok {
			return path, a, b, true
		}
		keys := map[string]bool{}
		for k := range av {
			keys[k] = true
		}
		for k := range bv {
			keys[k] = true
		}
		sorted := make([]string, 0, len(keys))
		for k := range keys {
			sorted = append(sorted, k)
		}
		sort.Strings(sorted)
		for _, k := range sorted {
			x, okA := av[k]
			y, okB := bv[k]
			if !okA {
				return path + "." + k, "<absent>", y, true
			}
			if !okB {
				return path + "." + k, x, "<absent>", true
			}
			if p, xa, xb, diff := firstJSONDiff(path+"."+k, x, y); diff {
				return p, xa, xb, true
			}
		}
		return "", nil, nil, false
	case []any:
		bv, ok := b.([]any)
		if !ok {
			return path, a, b, true
		}
		n := len(av)
		if len(bv) < n {
			n = len(bv)
		}
		for i := 0; i < n; i++ {
			if p, xa, xb, diff := firstJSONDiff(fmt.Sprintf("%s[%d]", path, i), av[i], bv[i]); diff {
				return p, xa, xb, true
			}
		}
		if len(av) != len(bv) {
			return path, fmt.Sprintf("len %d", len(av)), fmt.Sprintf("len %d", len(bv)), true
		}
		return "", nil, nil, false
	default:
		if a != b {
			return path, a, b, true
		}
		return "", nil, nil, false
	}
}

// diffTelemetry compares two telemetry CSVs line by line and reports the
// first differing line and column.
func diffTelemetry(out, errw *os.File, pathA, pathB string) int {
	ba, err := os.ReadFile(pathA)
	if err != nil {
		fmt.Fprintf(errw, "simdiff: %v\n", err)
		return 2
	}
	bb, err := os.ReadFile(pathB)
	if err != nil {
		fmt.Fprintf(errw, "simdiff: %v\n", err)
		return 2
	}
	if string(ba) == string(bb) {
		fmt.Fprintln(out, "identical: telemetry matches")
		return 0
	}
	linesA := strings.Split(string(ba), "\n")
	linesB := strings.Split(string(bb), "\n")
	n := len(linesA)
	if len(linesB) < n {
		n = len(linesB)
	}
	for i := 0; i < n; i++ {
		if linesA[i] == linesB[i] {
			continue
		}
		colsA := strings.Split(linesA[i], ",")
		colsB := strings.Split(linesB[i], ",")
		col := 0
		for col < len(colsA) && col < len(colsB) && colsA[col] == colsB[col] {
			col++
		}
		fmt.Fprintf(out, "DIVERGENT: line %d column %d\n  A: %s\n  B: %s\n", i+1, col+1, linesA[i], linesB[i])
		return 1
	}
	fmt.Fprintf(out, "DIVERGENT: line counts differ (%d vs %d); shared prefix matches\n", len(linesA), len(linesB))
	return 1
}
