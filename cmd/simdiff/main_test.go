package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rvma/internal/ledger"
	"rvma/internal/sim"
)

// runSimdiff invokes run() with capture files and returns (exit, stdout,
// stderr).
func runSimdiff(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	dir := t.TempDir()
	outF, err := os.Create(filepath.Join(dir, "out"))
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.Create(filepath.Join(dir, "err"))
	if err != nil {
		t.Fatal(err)
	}
	code := run(args, outF, errF)
	outF.Close()
	errF.Close()
	out, _ := os.ReadFile(outF.Name())
	errb, _ := os.ReadFile(errF.Name())
	return code, string(out), string(errb)
}

func TestLedgerIdenticalGolden(t *testing.T) {
	code, out, _ := runSimdiff(t, "testdata/base.ledger.json", "testdata/base.ledger.json")
	if code != 0 {
		t.Fatalf("exit %d, want 0; out=%q", code, out)
	}
	want := "identical: 32 events, chain head 00000000000000b2\n"
	if out != want {
		t.Fatalf("output %q, want %q", out, want)
	}
}

func TestLedgerDivergentGolden(t *testing.T) {
	code, out, _ := runSimdiff(t, "testdata/base.ledger.json", "testdata/perturbed.ledger.json")
	if code != 1 {
		t.Fatalf("exit %d, want 1; out=%q", code, out)
	}
	want := "DIVERGENT: epoch 1 digest mismatch (00000000000000b1 vs 00000000000000c1)\n" +
		"first divergent epoch: 1 (pops 16..31)\n" +
		"no run spec embedded; cannot replay for event-level resolution\n"
	if out != want {
		t.Fatalf("output:\n%s\nwant:\n%s", out, want)
	}
}

func TestMetricsGolden(t *testing.T) {
	code, out, _ := runSimdiff(t, "testdata/metrics_a.json", "testdata/metrics_b.json")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(out, "$.counters.nacks") || !strings.Contains(out, "A: 3") || !strings.Contains(out, "B: 4") {
		t.Fatalf("unexpected metrics diff output:\n%s", out)
	}
	code, out, _ = runSimdiff(t, "testdata/metrics_a.json", "testdata/metrics_a.json")
	if code != 0 || !strings.Contains(out, "identical") {
		t.Fatalf("identical metrics: exit %d out %q", code, out)
	}
}

func TestTelemetryGolden(t *testing.T) {
	code, out, _ := runSimdiff(t, "testdata/ts_a.csv", "testdata/ts_b.csv")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	want := "DIVERGENT: line 4 column 2\n  A: 20,7,250\n  B: 20,9,250\n"
	if out != want {
		t.Fatalf("output %q, want %q", out, want)
	}
	code, _, _ = runSimdiff(t, "testdata/ts_a.csv", "testdata/ts_a.csv")
	if code != 0 {
		t.Fatalf("identical telemetry: exit %d", code)
	}
}

func TestKindMismatchRejected(t *testing.T) {
	code, _, errOut := runSimdiff(t, "testdata/base.ledger.json", "testdata/ts_a.csv")
	if code != 2 || !strings.Contains(errOut, "cannot auto-detect") {
		t.Fatalf("exit %d err %q", code, errOut)
	}
}

func TestUsageError(t *testing.T) {
	code, _, errOut := runSimdiff(t, "onlyone")
	if code != 2 || !strings.Contains(errOut, "usage:") {
		t.Fatalf("exit %d err %q", code, errOut)
	}
}

// TestReplayPinsExactSeq builds two real diverging ledgers (with embedded
// replayable RunSpecs this test cannot use — so it checks the pure-ledger
// path end to end with recorder-built files instead of hand fixtures).
func TestRecorderBuiltLedgers(t *testing.T) {
	dir := t.TempDir()
	mk := func(seed uint64, name string) string {
		rec := ledger.NewRecorder(ledger.Options{EpochEvents: 8})
		eng := sim.NewEngine(seed)
		tag := eng.Tag("comp")
		rec.Attach(eng)
		var step func(i int)
		step = func(i int) {
			if i >= 100 {
				return
			}
			tag.Schedule(sim.Time(1+eng.RNG().Intn(3))*sim.Nanosecond, func() { step(i + 1) })
		}
		eng.Schedule(0, func() { step(0) })
		eng.Run()
		path := filepath.Join(dir, name)
		if err := rec.Finalize().WriteFile(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	a := mk(1, "a.ledger.json")
	b := mk(2, "b.ledger.json")
	code, out, _ := runSimdiff(t, a, a)
	if code != 0 {
		t.Fatalf("same ledger: exit %d out %q", code, out)
	}
	code, out, _ = runSimdiff(t, "-no-replay", a, b)
	if code != 1 || !strings.Contains(out, "first divergent epoch:") {
		t.Fatalf("diverging ledgers: exit %d out %q", code, out)
	}
}
