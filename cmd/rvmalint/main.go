// Command rvmalint is the repository's determinism and protocol-
// invariant linter (see internal/lint). It enforces the rules the
// simulation kernel's reproducibility depends on: no wall-clock time or
// ambient randomness in model packages, no order-sensitive work inside
// map iteration, sim-time hygiene around Engine scheduling, no
// goroutines escaping the engine, and — via the dataflow layer in
// internal/lint/flow — no laundered nondeterminism reaching schedulers
// (detaint), no leaked or double-ended metrics spans (spanleak), no
// heap allocations on //rvmalint:hot paths (hotalloc), and no unit
// mixups between integer nanoseconds and picoseconds (psunits).
//
// Standalone (the common path):
//
//	go run ./cmd/rvmalint ./...
//	go run ./cmd/rvmalint -json ./...   # machine-readable findings on stdout
//
// As a vet tool (one package variant per invocation, driven by the go
// command's unit-checker protocol):
//
//	go build -o /tmp/rvmalint ./cmd/rvmalint
//	go vet -vettool=/tmp/rvmalint ./...
//
// Exit status is 1 when any diagnostic is reported. Only model packages
// (lint.ModelPackages) are checked; host-side code (cmd/, harness) may
// legitimately read the wall clock, e.g. to time real executions.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"rvma/internal/lint"
)

func main() {
	args := os.Args[1:]

	// Vet-tool protocol, part 1: the go command probes the tool's
	// version to key its action cache.
	if len(args) == 1 && args[0] == "-V=full" {
		fmt.Println("rvmalint version v1.0.0")
		return
	}
	// The go command also probes `-flags` for the tool's flag set, which
	// it parses as JSON. This tool takes no vet-level flags.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	// Vet-tool protocol, part 2: a single *.cfg argument describes one
	// package unit (files, import map, export data).
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}

	jsonOut := false
	if len(args) > 0 && args[0] == "-json" {
		jsonOut = true
		args = args[1:]
	}

	patterns := args
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		if !lint.IsModelPackage(pkg.PkgPath) {
			continue
		}
		diags, err := lint.RunAnalyzers(pkg, lint.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		for _, d := range diags {
			all = append(all, d)
			if !jsonOut {
				fmt.Println(d)
			}
		}
	}
	if jsonOut {
		printJSON(all)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "rvmalint: %d violation(s)\n", len(all))
		os.Exit(1)
	}
}

// jsonDiag is the machine-readable finding shape CI archives.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// printJSON writes the findings as a JSON array on stdout — always an
// array, so a clean run emits [] and downstream tooling never special-
// cases the empty result.
func printJSON(diags []lint.Diagnostic) {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}

// vetConfig is the subset of the go command's unit-checker config this
// tool consumes.
type vetConfig struct {
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit handles one unit-checker invocation and returns the exit
// code. The facts output file must exist even on the no-op paths or the
// go command reports a tool failure.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "rvmalint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		// This tool exports no facts; an empty file satisfies the driver.
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
	}
	if cfg.VetxOnly || !lint.IsModelPackage(cfg.ImportPath) {
		return 0
	}
	pkg, err := lint.CheckFiles(cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.ImportMap, cfg.PackageFile)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	diags, err := lint.RunAnalyzers(pkg, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, d := range diags {
		// Relative paths read better in vet output.
		if rel, err := filepath.Rel(cfg.Dir, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
