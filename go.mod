module rvma

go 1.22
