package kv

import (
	"math"
	"sort"

	"rvma/internal/sim"
)

// Zipf draws ranks [0, n) with probability proportional to
// 1/(rank+1)^skew by inverse-transform sampling on a precomputed CDF.
// skew 0 degenerates to uniform; rank 0 is always the hottest key, so
// every proxy contends on the same hot keys — exactly the skew the KV
// tables sweep.
//
// The table is built once at setup time, before any engine event runs,
// and sampling consumes exactly one RNG draw, so a proxy's key sequence
// is a pure function of its seeded substream regardless of shard or
// worker count. math.Pow is pure Go (no platform-dependent hardware
// paths), so the table itself is bit-identical everywhere.
type Zipf struct {
	cdf []float64
}

// NewZipf builds the sampler for n keys at the given skew exponent.
// It panics on n <= 0 or negative skew — those are configuration bugs.
func NewZipf(n int, skew float64) *Zipf {
	if n <= 0 {
		panic("kv: zipf needs at least one key")
	}
	if skew < 0 {
		panic("kv: negative zipf skew")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += math.Pow(float64(i+1), -skew)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	cdf[n-1] = 1 // exact, despite rounding in the division
	return &Zipf{cdf: cdf}
}

// Sample draws one rank using a single uniform draw from rng.
func (z *Zipf) Sample(rng *sim.RNG) int {
	u := rng.Float64()
	return sort.Search(len(z.cdf), func(i int) bool { return z.cdf[i] > u })
}
