// Package kv models the server side of the transactional key-value
// dataplane built on RVMA mailboxes (ROADMAP item 2): a versioned keyed
// store that clients reach with get/put/CAS requests. The package holds
// only the pure data-structure logic — which server owns a key, what a
// request does to it, what the reply says. Wire transport, pacing,
// client aggregation and retry live in internal/motif (RunKV); this
// package must stay deterministic because Apply runs inside server-side
// engine events.
//
// Keys are dense integers [0, Keys) partitioned round-robin across
// servers: server s owns every key k with k % servers == s, stored
// slice-indexed at k / servers. Slices rather than maps keep the store
// free of map-iteration hazards and make state size obvious: one version
// counter per owned key.
package kv

import "fmt"

// OpKind is the request verb.
type OpKind uint8

const (
	// OpGet reads the key's current version.
	OpGet OpKind = iota
	// OpPut unconditionally overwrites, bumping the version.
	OpPut
	// OpCAS overwrites only when the caller's expected version matches
	// the stored one — the read-modify-write op whose acknowledgement
	// semantics the KV tables measure under contention.
	OpCAS
)

func (k OpKind) String() string {
	switch k {
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpCAS:
		return "cas"
	default:
		return fmt.Sprintf("opkind(%d)", uint8(k))
	}
}

// Request is one client operation as it crosses the wire. Expect is only
// meaningful for OpCAS: the version the caller believes the key holds.
type Request struct {
	Key    int
	Kind   OpKind
	Expect uint64
}

// Reply is the server's answer. Version is the key's version after the
// op (for a failed CAS: the current version, so the caller can refresh
// its cache). OK is false only for a CAS that lost the race.
type Reply struct {
	Version uint64
	OK      bool
}

// ServerFor returns the rank-local server index owning key.
func ServerFor(key, servers int) int { return key % servers }

// Store is one server's shard of the keyspace. It is single-writer: only
// the owning server rank applies requests, so all fields are plain.
type Store struct {
	servers int
	index   int
	// versions[k/servers] is the write count of owned key k; version 0
	// means never written.
	versions []uint64

	gets, puts, casOK, casFail uint64
}

// NewStore builds server index's shard of a keys-wide keyspace split
// across servers.
func NewStore(keys, servers, index int) *Store {
	owned := keys / servers
	if index < keys%servers {
		owned++
	}
	return &Store{servers: servers, index: index, versions: make([]uint64, owned)}
}

// Apply executes one request against the store and returns the reply.
// It panics if the key is not owned by this store — routing bugs must be
// loud, not silently absorbed into another key's slot.
func (s *Store) Apply(req Request) Reply {
	if req.Key%s.servers != s.index {
		panic(fmt.Sprintf("kv: key %d routed to server %d (owner %d)", req.Key, s.index, req.Key%s.servers))
	}
	slot := req.Key / s.servers
	switch req.Kind {
	case OpGet:
		s.gets++
		return Reply{Version: s.versions[slot], OK: true}
	case OpPut:
		s.puts++
		s.versions[slot]++
		return Reply{Version: s.versions[slot], OK: true}
	case OpCAS:
		if s.versions[slot] == req.Expect {
			s.casOK++
			s.versions[slot]++
			return Reply{Version: s.versions[slot], OK: true}
		}
		s.casFail++
		return Reply{Version: s.versions[slot], OK: false}
	default:
		panic(fmt.Sprintf("kv: unknown op kind %d", req.Kind))
	}
}

// Version returns the current version of an owned key.
func (s *Store) Version(key int) uint64 {
	return s.versions[key/s.servers]
}

// Gets returns the number of get requests applied.
func (s *Store) Gets() uint64 { return s.gets }

// Puts returns the number of put requests applied.
func (s *Store) Puts() uint64 { return s.puts }

// CASApplied returns the number of CAS requests that succeeded.
func (s *Store) CASApplied() uint64 { return s.casOK }

// CASFailed returns the number of CAS requests rejected on a stale
// expected version — the hot-key contention signal.
func (s *Store) CASFailed() uint64 { return s.casFail }

// Applied returns the total number of requests applied.
func (s *Store) Applied() uint64 { return s.gets + s.puts + s.casOK + s.casFail }
