package kv

import (
	"testing"

	"rvma/internal/sim"
)

func TestStorePartitionAndVersions(t *testing.T) {
	const keys, servers = 10, 3
	stores := make([]*Store, servers)
	owned := 0
	for s := range stores {
		stores[s] = NewStore(keys, servers, s)
		owned += len(stores[s].versions)
	}
	if owned != keys {
		t.Fatalf("stores own %d keys in total, want %d", owned, keys)
	}
	for k := 0; k < keys; k++ {
		s := stores[ServerFor(k, servers)]
		if got := s.Apply(Request{Key: k, Kind: OpGet}); got.Version != 0 || !got.OK {
			t.Fatalf("fresh get key %d = %+v, want version 0 ok", k, got)
		}
		if got := s.Apply(Request{Key: k, Kind: OpPut}); got.Version != 1 || !got.OK {
			t.Fatalf("first put key %d = %+v, want version 1 ok", k, got)
		}
		if got := s.Version(k); got != 1 {
			t.Fatalf("key %d version = %d after put, want 1", k, got)
		}
	}
}

func TestStoreCAS(t *testing.T) {
	s := NewStore(4, 1, 0)
	s.Apply(Request{Key: 2, Kind: OpPut}) // version 1
	if got := s.Apply(Request{Key: 2, Kind: OpCAS, Expect: 0}); got.OK {
		t.Fatalf("stale CAS succeeded: %+v", got)
	} else if got.Version != 1 {
		t.Fatalf("failed CAS reply version = %d, want current 1", got.Version)
	}
	if got := s.Apply(Request{Key: 2, Kind: OpCAS, Expect: 1}); !got.OK || got.Version != 2 {
		t.Fatalf("matching CAS = %+v, want ok version 2", got)
	}
	if s.CASApplied() != 1 || s.CASFailed() != 1 || s.Applied() != 3 {
		t.Fatalf("stats = casOK %d casFail %d applied %d, want 1/1/3",
			s.CASApplied(), s.CASFailed(), s.Applied())
	}
}

func TestStoreRejectsForeignKey(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("applying a foreign key should panic")
		}
	}()
	NewStore(8, 2, 0).Apply(Request{Key: 3, Kind: OpGet})
}

func TestZipfDeterministicAndInRange(t *testing.T) {
	const n = 64
	z := NewZipf(n, 0.99)
	a, b := sim.NewRNG(7), sim.NewRNG(7)
	for i := 0; i < 2000; i++ {
		x, y := z.Sample(a), z.Sample(b)
		if x != y {
			t.Fatalf("draw %d: same seed diverged (%d vs %d)", i, x, y)
		}
		if x < 0 || x >= n {
			t.Fatalf("draw %d: rank %d out of [0, %d)", i, x, n)
		}
	}
}

func TestZipfSkewConcentratesMass(t *testing.T) {
	const n, draws = 256, 20000
	hot := func(skew float64) int {
		z := NewZipf(n, skew)
		rng := sim.NewRNG(42)
		count := 0
		for i := 0; i < draws; i++ {
			if z.Sample(rng) == 0 {
				count++
			}
		}
		return count
	}
	uniform, skewed, hotter := hot(0), hot(0.99), hot(1.2)
	if uniform < draws/n/4 || uniform > draws/n*4 {
		t.Fatalf("uniform hot-key count %d far from expected %d", uniform, draws/n)
	}
	if !(uniform < skewed && skewed < hotter) {
		t.Fatalf("hot-key mass should grow with skew: uniform %d, 0.99 %d, 1.2 %d",
			uniform, skewed, hotter)
	}
}
