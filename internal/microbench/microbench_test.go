package microbench

import (
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/hostif"
	"rvma/internal/stats"
)

// quickCfg keeps unit-test runtimes small.
func quickCfg(prof hostif.Profile, size int) LatencyConfig {
	return LatencyConfig{Profile: prof, Size: size, Iters: 50, Runs: 3, Seed: 7}
}

func TestTransportNames(t *testing.T) {
	if TransportRVMA.String() != "RVMA" {
		t.Fatal(TransportRVMA.String())
	}
	if TransportRDMAStatic.String() == TransportRDMAAdaptive.String() {
		t.Fatal("distinct transports must print distinctly")
	}
}

func TestLatencyOrderingVerbs(t *testing.T) {
	// The core Figure 4 invariant: RVMA <= RDMA-static < RDMA-adaptive.
	cfg := quickCfg(hostif.Verbs(), 64)
	rv := MeasureLatency(cfg, TransportRVMA)
	rs := MeasureLatency(cfg, TransportRDMAStatic)
	ra := MeasureLatency(cfg, TransportRDMAAdaptive)
	if !(rv.Summary.Mean <= rs.Summary.Mean) {
		t.Fatalf("RVMA (%.0fns) should not lose to RDMA-static (%.0fns)", rv.Summary.Mean, rs.Summary.Mean)
	}
	if !(rs.Summary.Mean < ra.Summary.Mean) {
		t.Fatalf("RDMA-adaptive (%.0fns) must cost more than static (%.0fns)", ra.Summary.Mean, rs.Summary.Mean)
	}
}

func TestHeadlineReductions(t *testing.T) {
	// Paper: up to 65.8% (Verbs) and 45.8% (UCX) latency reduction. The
	// reproduction must land in the same band and preserve Verbs > UCX.
	small := func(prof hostif.Profile) float64 {
		cfg := quickCfg(prof, 2)
		rv := MeasureLatency(cfg, TransportRVMA)
		ra := MeasureLatency(cfg, TransportRDMAAdaptive)
		return stats.Reduction(ra.Summary.Mean, rv.Summary.Mean)
	}
	verbs := small(hostif.Verbs())
	ucx := small(hostif.UCX())
	if verbs < 0.50 || verbs > 0.75 {
		t.Fatalf("verbs reduction %.1f%%, want in the 50-75%% band around the paper's 65.8%%", 100*verbs)
	}
	if ucx < 0.35 || ucx > 0.55 {
		t.Fatalf("ucx reduction %.1f%%, want in the 35-55%% band around the paper's 45.8%%", 100*ucx)
	}
	if verbs <= ucx {
		t.Fatalf("verbs reduction (%.1f%%) must exceed ucx (%.1f%%) as in the paper", 100*verbs, 100*ucx)
	}
}

func TestReductionShrinksWithSize(t *testing.T) {
	// The latency curves converge at large sizes: the fixed completion
	// overhead amortizes against serialization.
	red := func(size int) float64 {
		cfg := quickCfg(hostif.Verbs(), size)
		rv := MeasureLatency(cfg, TransportRVMA)
		ra := MeasureLatency(cfg, TransportRDMAAdaptive)
		return stats.Reduction(ra.Summary.Mean, rv.Summary.Mean)
	}
	if small, big := red(2), red(65536); big >= small {
		t.Fatalf("reduction should shrink with size: %.1f%% @2B vs %.1f%% @64KiB", 100*small, 100*big)
	}
}

func TestRunNoiseProducesErrorBars(t *testing.T) {
	cfg := quickCfg(hostif.UCX(), 1024)
	cfg.Runs = 6
	if res := MeasureLatency(cfg, TransportRVMA); res.Summary.Stddev > 1e-6 {
		t.Fatalf("no noise should mean (numerically) zero stddev, got %v", res.Summary.Stddev)
	}
	cfg.RunNoise = 0.05
	if res := MeasureLatency(cfg, TransportRVMA); res.Summary.Stddev < 1 {
		t.Fatalf("run noise should produce visible inter-run stddev, got %v", res.Summary.Stddev)
	}
}

func TestMeasureLatencyDeterministic(t *testing.T) {
	cfg := quickCfg(hostif.Verbs(), 256)
	a := MeasureLatency(cfg, TransportRDMAAdaptive)
	b := MeasureLatency(cfg, TransportRDMAAdaptive)
	if a.Summary.Mean != b.Summary.Mean {
		t.Fatalf("same seed must reproduce: %v vs %v", a.Summary.Mean, b.Summary.Mean)
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config should panic")
		}
	}()
	MeasureLatency(LatencyConfig{Profile: hostif.Verbs()}, TransportRVMA)
}

func TestSetupCost(t *testing.T) {
	prof := hostif.UCX()
	small := SetupCost(prof, 4096, fabric.RouteStatic, 1)
	big := SetupCost(prof, 1<<22, fabric.RouteStatic, 1)
	if small <= 0 {
		t.Fatal("setup cost must be positive")
	}
	if big <= small {
		t.Fatalf("registering 4MiB (%v) must cost more than 4KiB (%v): page pinning", big, small)
	}
}

func TestAmortization(t *testing.T) {
	prof := hostif.UCX()
	small := Amortization(prof, 64, TransportRDMAAdaptive, 0.03, 1)
	big := Amortization(prof, 65536, TransportRDMAAdaptive, 0.03, 1)
	if small.Exchanges < 10 {
		t.Fatalf("small messages need many exchanges to amortize setup, got %d", small.Exchanges)
	}
	if big.Exchanges >= small.Exchanges {
		t.Fatalf("amortization count must fall with size: %d @64B vs %d @64KiB",
			small.Exchanges, big.Exchanges)
	}
	// Cross-check the formula: N-1 exchanges must NOT satisfy the bound.
	n := small.Exchanges
	overhead := func(k int) float64 {
		return (small.SetupNanos + float64(k)*small.LatencyNanos) / (float64(k) * small.LatencyNanos)
	}
	if overhead(n) > 1.03 {
		t.Fatalf("N=%d does not satisfy the 3%% bound", n)
	}
	if n > 1 && overhead(n-1) <= 1.03 {
		t.Fatalf("N=%d is not minimal", n)
	}
}

func TestAmortizationStaticNeedsMoreExchanges(t *testing.T) {
	// Static-routing latency is lower, so the same setup cost takes MORE
	// exchanges to amortize — the visible gap between Figure 6's curves.
	prof := hostif.UCX()
	st := Amortization(prof, 1024, TransportRDMAStatic, 0.03, 1)
	ad := Amortization(prof, 1024, TransportRDMAAdaptive, 0.03, 1)
	if st.Exchanges <= ad.Exchanges {
		t.Fatalf("static N (%d) should exceed adaptive N (%d)", st.Exchanges, ad.Exchanges)
	}
}

func TestAmortizationBadTolerancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero tolerance should panic")
		}
	}()
	Amortization(hostif.UCX(), 64, TransportRVMA, 0, 1)
}
