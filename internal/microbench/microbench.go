// Package microbench reproduces the paper's "real world testing" (§V-A):
// ping-pong latency measurements in the style of OFED perftest, comparing
//
//   - RVMA: put completed by the NIC's threshold counter + completion
//     pointer (no extra network traffic);
//   - RDMA (static routing): put completed by polling the last byte of the
//     receive buffer — the fast-but-noncompliant idiom;
//   - RDMA (adaptive routing): put followed by the 1-byte send/recv the
//     InfiniBand specification requires when byte ordering is unavailable
//     (the paper's modified perftest).
//
// It also measures the RDMA buffer-setup handshake and computes the
// amortization analysis of Figure 6: how many data exchanges are needed
// before setup cost falls within 3% of steady-state latency.
package microbench

import (
	"fmt"

	"rvma/internal/fabric"
	"rvma/internal/hostif"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/rdma"
	"rvma/internal/rvma"
	"rvma/internal/sim"
	"rvma/internal/stats"
	"rvma/internal/topology"
)

// Transport selects the data-transfer + completion stack under test.
type Transport int

const (
	// TransportRVMA is an RVMA put with hardware threshold completion.
	TransportRVMA Transport = iota
	// TransportRDMAStatic is an RDMA put with last-byte polling, valid only
	// because static routing preserves byte order.
	TransportRDMAStatic
	// TransportRDMAAdaptive is an RDMA put plus the specification-required
	// trailing send/recv, as needed on adaptively routed networks.
	TransportRDMAAdaptive
)

// String returns the transport's report name.
func (tr Transport) String() string {
	switch tr {
	case TransportRVMA:
		return "RVMA"
	case TransportRDMAStatic:
		return "RDMA-static(last-byte)"
	case TransportRDMAAdaptive:
		return "RDMA-adaptive(send/recv)"
	default:
		return fmt.Sprintf("transport(%d)", int(tr))
	}
}

// LatencyConfig parameterizes a latency measurement.
type LatencyConfig struct {
	Profile hostif.Profile
	Size    int // message payload bytes
	Iters   int // ping-pong iterations per run
	Runs    int // independent runs (the paper averages 10)
	Seed    uint64
	// RunNoise is the stddev of a per-run multiplicative scale applied to
	// host-software overheads, modeling run-to-run system noise; it
	// produces the error bars in Figure 5. Zero disables it.
	RunNoise float64
	// Notification is the RVMA host observation mechanism (MWait default).
	Notification rvma.NotifyMode
}

// LatencyResult is the outcome of one (transport, size) measurement.
type LatencyResult struct {
	Transport Transport
	Size      int
	// PerRunNanos holds each run's mean one-way latency in nanoseconds.
	PerRunNanos []float64
	// Summary summarizes PerRunNanos.
	Summary stats.Summary
}

// routingFor returns the fabric routing mode a transport runs under.
func routingFor(tr Transport) fabric.RoutingMode {
	if tr == TransportRDMAStatic {
		return fabric.RouteStatic
	}
	return fabric.RouteAdaptive
}

// MeasureLatency runs the configured ping-pong and returns per-run means.
func MeasureLatency(cfg LatencyConfig, tr Transport) LatencyResult {
	if cfg.Iters <= 0 || cfg.Runs <= 0 || cfg.Size <= 0 {
		panic("microbench: invalid latency configuration")
	}
	res := LatencyResult{Transport: tr, Size: cfg.Size}
	noise := sim.NewRNG(cfg.Seed ^ 0x9E3779B97F4A7C15)
	for run := 0; run < cfg.Runs; run++ {
		prof := cfg.Profile
		if cfg.RunNoise > 0 {
			scale := noise.Normal(1, cfg.RunNoise)
			if scale < 0.5 {
				scale = 0.5
			}
			prof = prof.Scale(scale)
		}
		oneWay := runPingPong(prof, tr, cfg, cfg.Seed+uint64(run)*1000003)
		res.PerRunNanos = append(res.PerRunNanos, oneWay.Nanoseconds())
	}
	res.Summary = stats.Summarize(res.PerRunNanos)
	return res
}

// runPingPong executes one run and returns the mean one-way latency.
func runPingPong(prof hostif.Profile, tr Transport, cfg LatencyConfig, seed uint64) sim.Time {
	eng := sim.NewEngine(seed)
	fcfg := prof.Fabric
	fcfg.Routing = routingFor(tr)
	net, err := fabric.New(eng, topology.NewSingleSwitch(2), fcfg)
	if err != nil {
		panic(err)
	}
	nicA := nic.New(eng, net, 0, pcie.Gen4x16(), prof.NIC)
	nicB := nic.New(eng, net, 1, pcie.Gen4x16(), prof.NIC)

	switch tr {
	case TransportRVMA:
		return rvmaPingPong(eng, nicA, nicB, cfg)
	default:
		return rdmaPingPong(eng, nicA, nicB, cfg, tr)
	}
}

// rvmaPingPong: both sides expose one mailbox (EPOCH_OPS, threshold 1 — a
// message size known a priori needs exactly one operation), keep a buffer
// posted, and bounce a message back and forth. No handshake precedes the
// first put.
func rvmaPingPong(eng *sim.Engine, nicA, nicB *nic.NIC, cfg LatencyConfig) sim.Time {
	rcfg := rvma.DefaultConfig()
	rcfg.CarryData = false
	rcfg.Notification = cfg.Notification
	a := rvma.NewEndpoint(nicA, rcfg)
	b := rvma.NewEndpoint(nicB, rcfg)

	const mboxA, mboxB = rvma.VAddr(0xA), rvma.VAddr(0xB)
	winA, err := a.InitWindow(mboxA, 1, rvma.EpochOps)
	if err != nil {
		panic(err)
	}
	winB, err := b.InitWindow(mboxB, 1, rvma.EpochOps)
	if err != nil {
		panic(err)
	}

	var start, end sim.Time
	eng.Spawn("A", func(p *sim.Process) {
		start = p.Now()
		for i := 0; i < cfg.Iters; i++ {
			buf, err := winA.PostBuffer(cfg.Size)
			if err != nil {
				panic(err)
			}
			n := a.WatchBuffer(buf)
			a.PutN(1, mboxB, 0, cfg.Size)
			p.Wait(n.Done)
		}
		end = p.Now()
	})
	eng.Spawn("B", func(p *sim.Process) {
		for i := 0; i < cfg.Iters; i++ {
			buf, err := winB.PostBuffer(cfg.Size)
			if err != nil {
				panic(err)
			}
			n := b.WatchBuffer(buf)
			p.Wait(n.Done)
			b.PutN(0, mboxA, 0, cfg.Size)
		}
	})
	eng.Run()
	return (end - start) / sim.Time(2*cfg.Iters)
}

// rdmaPingPong: buffers are negotiated once (Figure 1) outside the timed
// region, then the ping-pong runs with the transport's completion scheme.
func rdmaPingPong(eng *sim.Engine, nicA, nicB *nic.NIC, cfg LatencyConfig, tr Transport) sim.Time {
	dcfg := rdma.DefaultConfig()
	dcfg.CarryData = false
	dcfg.PipelinedFence = cfg.Profile.PipelinedFence
	a := rdma.NewEndpoint(nicA, dcfg)
	b := rdma.NewEndpoint(nicB, dcfg)

	// Untimed setup handshakes, one per direction.
	var rbOnB, rbOnA rdma.RemoteBuffer
	opAB := a.RequestRemoteBuffer(1, cfg.Size)
	opBA := b.RequestRemoteBuffer(0, cfg.Size)
	eng.Run()
	if !opAB.Done.Done() || !opBA.Done.Done() {
		panic("microbench: setup handshake did not complete")
	}
	rbOnB = opAB.Done.Value().(rdma.RemoteBuffer)
	rbOnA = opBA.Done.Value().(rdma.RemoteBuffer)
	mrOnB := regionOf(b, rbOnB)
	mrOnA := regionOf(a, rbOnA)

	scheme := rdma.CompleteSendRecv
	if tr == TransportRDMAStatic {
		scheme = rdma.CompleteLastByte
	}

	wait := func(p *sim.Process, ep *rdma.Endpoint, mr *rdma.MemoryRegion) {
		switch scheme {
		case rdma.CompleteLastByte:
			w := ep.WaitLastByte(mr, cfg.Size)
			p.Wait(w.Done)
		case rdma.CompleteSendRecv:
			r := ep.PostRecv(1-ep.Node(), rdma.FenceQP)
			p.Wait(r.Done)
		}
	}

	var start, end sim.Time
	eng.Spawn("A", func(p *sim.Process) {
		start = p.Now()
		for i := 0; i < cfg.Iters; i++ {
			a.PutN(rbOnB, 0, cfg.Size, scheme)
			wait(p, a, mrOnA)
		}
		end = p.Now()
	})
	eng.Spawn("B", func(p *sim.Process) {
		for i := 0; i < cfg.Iters; i++ {
			wait(p, b, mrOnB)
			b.PutN(rbOnA, 0, cfg.Size, scheme)
		}
	})
	eng.Run()
	return (end - start) / sim.Time(2*cfg.Iters)
}

// regionOf finds the endpoint's registered region matching a handle.
func regionOf(ep *rdma.Endpoint, rb rdma.RemoteBuffer) *rdma.MemoryRegion {
	mr := ep.RegionByKey(rb.RKey)
	if mr == nil {
		panic("microbench: remote buffer has no local region")
	}
	return mr
}

// SetupCost measures the Figure 1 handshake cost for a buffer of the given
// size under the profile's fabric with the given routing mode: the time
// from the initiator's request until the (addr, len, key) reply is in hand.
func SetupCost(prof hostif.Profile, size int, routing fabric.RoutingMode, seed uint64) sim.Time {
	eng := sim.NewEngine(seed)
	fcfg := prof.Fabric
	fcfg.Routing = routing
	net, err := fabric.New(eng, topology.NewSingleSwitch(2), fcfg)
	if err != nil {
		panic(err)
	}
	dcfg := rdma.DefaultConfig()
	dcfg.CarryData = false
	a := rdma.NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof.NIC), dcfg)
	rdma.NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof.NIC), dcfg)
	op := a.RequestRemoteBuffer(1, size)
	eng.Run()
	if !op.Done.Done() {
		panic("microbench: setup never completed")
	}
	return op.Done.CompletedAt()
}

// AmortizationPoint is one Figure 6 sample: for a message size and routing
// mode, the number of exchanges after which RDMA's setup overhead is
// amortized to within the tolerance of steady-state latency.
type AmortizationPoint struct {
	Size         int
	Routing      fabric.RoutingMode
	SetupNanos   float64
	LatencyNanos float64
	Exchanges    int
}

// Amortization computes Figure 6's curve: the smallest N such that
// (setup + N*latency) / (N*latency) <= 1 + tolerance, i.e.
// N >= setup / (tolerance * latency). The paper uses tolerance = 3%, "the
// margin of error for our latency tests".
func Amortization(prof hostif.Profile, size int, tr Transport, tolerance float64, seed uint64) AmortizationPoint {
	if tolerance <= 0 {
		panic("microbench: tolerance must be positive")
	}
	routing := routingFor(tr)
	setup := SetupCost(prof, size, routing, seed)
	lat := runPingPong(prof, tr, LatencyConfig{Size: size, Iters: 200, Runs: 1, Profile: prof}, seed)
	n := int(float64(setup)/(tolerance*float64(lat))) + 1
	if n < 1 {
		n = 1
	}
	return AmortizationPoint{
		Size:         size,
		Routing:      routing,
		SetupNanos:   setup.Nanoseconds(),
		LatencyNanos: lat.Nanoseconds(),
		Exchanges:    n,
	}
}
