package microbench

// Model validation, in the spirit of the paper's §V-B ("The models are
// validated against performance results from existing RDMA solutions"):
// we cannot validate against the authors' hardware, but we can — and do —
// validate the simulator against itself analytically: the measured
// end-to-end latency of a minimal transfer must equal the sum of its
// modeled components, term by term. A model whose measurements cannot be
// decomposed into its own constants is mis-wired; this catches double
// charging and dropped stages.

import (
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/hostif"
	"rvma/internal/memory"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/rvma"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

// TestRVMALatencyDecomposition reconstructs a single 1-packet put's
// one-way latency from first principles and compares against simulation.
func TestRVMALatencyDecomposition(t *testing.T) {
	prof := hostif.Verbs()
	busCfg := pcie.Gen4x16()
	const size = 512

	eng := sim.NewEngine(1)
	fcfg := prof.Fabric
	fcfg.Routing = fabric.RouteStatic
	net, err := fabric.New(eng, topology.NewSingleSwitch(2), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg := rvma.DefaultConfig()
	rcfg.CarryData = false
	src := rvma.NewEndpoint(nic.New(eng, net, 0, busCfg, prof.NIC), rcfg)
	dst := rvma.NewEndpoint(nic.New(eng, net, 1, busCfg, prof.NIC), rcfg)

	win, err := dst.InitWindow(1, size, rvma.EpochBytes)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := win.PostBuffer(size)
	if err != nil {
		t.Fatal(err)
	}

	var observed sim.Time
	eng.Schedule(0, func() {
		n := dst.WatchBuffer(buf)
		n.Done.OnComplete(func() { observed = eng.Now() })
		src.PutN(1, 1, 0, size)
	})
	eng.Run()
	if observed == 0 {
		t.Fatal("completion never observed")
	}

	// Analytic reconstruction, stage by stage. The bus data path is idle
	// throughout, so each transfer's cost is its serialization + latency.
	busTime := func(bytes int) sim.Time {
		return sim.SerializationTime(bytes, busCfg.GBps*8) + busCfg.Latency
	}
	wire := size + fabric.HeaderBytes
	ser := sim.SerializationTime(wire, fcfg.LinkGbps)
	xbar := sim.SerializationTime(wire, fcfg.LinkGbps*fcfg.XbarFactor)

	expected := prof.NIC.HostPostOverhead + // software post
		busTime(prof.NIC.DoorbellBytes) + // doorbell MMIO
		// payload DMA read: its bus occupancy starts after the doorbell's
		// serialization (trivial), so it completes at doorbell-ser +
		// payload-ser + latency; relative to the doorbell completion the
		// extra is payload-ser + latency - ... easier: absolute times:
		0
	// Build the absolute timeline instead of a sum, mirroring the models.
	tPost := prof.NIC.HostPostOverhead
	tDoorbellSer := tPost + sim.SerializationTime(prof.NIC.DoorbellBytes, busCfg.GBps*8)
	tDoorbell := tDoorbellSer + busCfg.Latency
	tDMA := tDoorbellSer + sim.SerializationTime(size, busCfg.GBps*8) + busCfg.Latency
	if tDMA < tDoorbell {
		tDMA = tDoorbell
	}
	tSendProc := tDMA + prof.NIC.SendPacketProc
	tHostSer := tSendProc + ser
	tAtSwitch := tHostSer + fcfg.LinkLatency
	tXbar := tAtSwitch + xbar
	tOutSer := tXbar + fcfg.SwitchLatency + ser
	tArrive := tOutSer + fcfg.LinkLatency
	tHandler := tArrive + prof.NIC.RecvPacketProc + prof.NIC.LookupLatency
	// Data DMA is issued, then the completion-pointer write queues behind
	// it on the bus.
	tDataSer := tHandler + sim.SerializationTime(size, busCfg.GBps*8)
	tCellWrite := tDataSer + sim.SerializationTime(16, busCfg.GBps*8) + busCfg.Latency
	tWake := tCellWrite + prof.NIC.MWaitWake + prof.NIC.HostCompletionOverhead
	expected = tWake

	if observed != expected {
		t.Fatalf("one-way latency decomposition mismatch:\n  simulated  %v\n  analytic   %v\n  delta      %v",
			observed, expected, observed-expected)
	}
}

// TestRDMAAdaptivePenaltyDecomposition verifies the structural identity
// behind Figures 4/5: the RDMA-adaptive completion observed at the target
// happens strictly after (a) all data landed and (b) one extra wire
// crossing, and the penalty versus RVMA is positive at every size.
func TestRDMAAdaptivePenaltyDecomposition(t *testing.T) {
	prof := hostif.Verbs()
	for _, size := range []int{2, 512, 8192, 65536} {
		cfg := LatencyConfig{Profile: prof, Size: size, Iters: 20, Runs: 1, Seed: 3}
		rv := MeasureLatency(cfg, TransportRVMA)
		ra := MeasureLatency(cfg, TransportRDMAAdaptive)
		penalty := ra.Summary.Mean - rv.Summary.Mean
		if penalty <= 0 {
			t.Fatalf("size %d: non-positive adaptive penalty %.1fns", size, penalty)
		}
		// The penalty must exceed one link crossing of a 1-byte message
		// (the fence send's irreducible wire time) at every size.
		minPenalty := (prof.Fabric.LinkLatency * 2).Nanoseconds()
		if penalty < minPenalty {
			t.Fatalf("size %d: penalty %.1fns below the irreducible fence cost %.1fns",
				size, penalty, minPenalty)
		}
	}
}

// TestWatcherObservesExactCellWrite ties the memory layer into the
// validation: the MWait watcher must observe the exact (head, len) pair
// the completion unit wrote, never a torn or stale value.
func TestWatcherObservesExactCellWrite(t *testing.T) {
	mem := memory.New()
	cell := memory.NewCompletionCell(mem)
	var seen [][2]uint64
	mem.Watch(cell.Addr(), func(memory.Addr, int) {
		h, l := cell.Get()
		seen = append(seen, [2]uint64{uint64(h), uint64(l)})
	})
	cell.Set(0xAAA0, 111)
	cell.Set(0xBBB0, 222)
	if len(seen) != 2 || seen[0] != [2]uint64{0xAAA0, 111} || seen[1] != [2]uint64{0xBBB0, 222} {
		t.Fatalf("watcher observations: %v", seen)
	}
}
