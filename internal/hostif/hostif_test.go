package hostif

import (
	"testing"

	"rvma/internal/sim"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"verbs", "ucx"} {
		p, err := ByName(name)
		if err != nil || p.Name != name {
			t.Fatalf("ByName(%q) = %+v, %v", name, p.Name, err)
		}
	}
	if _, err := ByName("tcp"); err == nil {
		t.Fatal("unknown profile should error")
	}
}

func TestProfilesDifferAsTestbedsDid(t *testing.T) {
	v, u := Verbs(), UCX()
	if u.NIC.HostPostOverhead <= v.NIC.HostPostOverhead {
		t.Fatal("UCX's protocol layer must cost more per post than raw verbs")
	}
	if u.NIC.CQProcessOverhead <= v.NIC.CQProcessOverhead {
		t.Fatal("UCX progress-engine CQ reap must cost more than verbs CQ poll")
	}
	if v.PipelinedFence || !u.PipelinedFence {
		t.Fatal("verbs waits for the write ACK; UCX pipelines the fence send")
	}
	if v.Fabric.LinkGbps != 100 || u.Fabric.LinkGbps != 100 {
		t.Fatal("both testbeds ran 100 Gbps networks")
	}
}

func TestScale(t *testing.T) {
	p := Verbs()
	s := p.Scale(2)
	if s.NIC.HostPostOverhead != 2*p.NIC.HostPostOverhead {
		t.Fatalf("scale(2) post overhead = %v", s.NIC.HostPostOverhead)
	}
	if s.NIC.CQProcessOverhead != 2*p.NIC.CQProcessOverhead {
		t.Fatalf("scale(2) CQ overhead = %v", s.NIC.CQProcessOverhead)
	}
	// MWait wake and fabric are architectural, not noise-scaled.
	if s.NIC.MWaitWake != p.NIC.MWaitWake {
		t.Fatal("MWait wake should not scale")
	}
	if s.Fabric.LinkGbps != p.Fabric.LinkGbps {
		t.Fatal("fabric should not scale")
	}
	// Identity scale changes nothing.
	id := p.Scale(1)
	if id.NIC.HostPostOverhead != p.NIC.HostPostOverhead {
		t.Fatal("scale(1) must be identity")
	}
}

func TestProfileTimesArePositive(t *testing.T) {
	for _, p := range []Profile{Verbs(), UCX()} {
		for name, v := range map[string]sim.Time{
			"HostPostOverhead":       p.NIC.HostPostOverhead,
			"HostCompletionOverhead": p.NIC.HostCompletionOverhead,
			"CQProcessOverhead":      p.NIC.CQProcessOverhead,
			"SendPacketProc":         p.NIC.SendPacketProc,
			"RecvPacketProc":         p.NIC.RecvPacketProc,
			"LookupLatency":          p.NIC.LookupLatency,
			"PollInterval":           p.NIC.PollInterval,
			"MWaitWake":              p.NIC.MWaitWake,
			"RegistrationBase":       p.NIC.RegistrationBase,
		} {
			if v <= 0 {
				t.Errorf("%s.%s = %v, want positive", p.Name, name, v)
			}
		}
		if err := p.Fabric.Validate(); err != nil {
			t.Errorf("%s fabric: %v", p.Name, err)
		}
	}
}
