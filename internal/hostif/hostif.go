// Package hostif defines the host-interface timing profiles behind the
// paper's two "real world" testbeds (§V-A):
//
//   - Verbs: OFED perftest over native IB Verbs on Intel OmniPath 100 Gbps
//     with Skylake (Platinum 8160) hosts — Figure 4;
//   - UCX: UCP over Mellanox ConnectX-5 EDR on ARM ThunderX2 hosts,
//     UCX 1.9.0 — Figure 5.
//
// We cannot run on that hardware, so each testbed becomes a timing profile
// (host posting cost, completion-path cost, NIC pipeline costs) applied to
// the shared simulation substrate. The paper's comparison is structural —
// with versus without the trailing send/recv and the setup handshake — so
// reproducing the published *shape* requires only that the profiles sit in
// the right regime: microsecond-scale small-message latencies, with UCX
// carrying more host software overhead than raw Verbs (its protocol layer)
// on slower cores.
package hostif

import (
	"fmt"

	"rvma/internal/fabric"
	"rvma/internal/nic"
	"rvma/internal/sim"
)

// Profile bundles a NIC/host timing profile with the fabric settings of
// the corresponding testbed.
type Profile struct {
	Name   string
	NIC    nic.Profile
	Fabric fabric.Config
	// PipelinedFence selects the runtime's send-after-put discipline for
	// RDMA on adaptive networks: perftest over raw Verbs reaps the write
	// completion before posting the send (false), while UCX's progress
	// engine pipelines the send behind the data (true). This is why the
	// paper's measured RDMA penalty is larger on Verbs (65.8%% reduction)
	// than on UCX (45.8%%).
	PipelinedFence bool
}

// Verbs returns the Figure 4 testbed profile: lean host software (native
// verbs on fast x86 cores), 100 Gbps links.
func Verbs() Profile {
	p := nic.Profile{
		Name:                   "verbs",
		HostPostOverhead:       160 * sim.Nanosecond,
		HostCompletionOverhead: 150 * sim.Nanosecond,
		CQProcessOverhead:      320 * sim.Nanosecond,
		SendPacketProc:         50 * sim.Nanosecond,
		RecvPacketProc:         50 * sim.Nanosecond,
		LookupLatency:          25 * sim.Nanosecond,
		PollInterval:           40 * sim.Nanosecond,
		MWaitWake:              5 * sim.Nanosecond,
		RegistrationBase:       1500 * sim.Nanosecond,
		RegistrationPerPage:    20 * sim.Nanosecond,
		DoorbellBytes:          8,
	}
	f := fabric.DefaultConfig()
	f.LinkGbps = 100
	f.LinkLatency = 120 * sim.Nanosecond // OmniPath-class switch+cable path
	f.SwitchLatency = 110 * sim.Nanosecond
	f.MTU = 2048
	return Profile{Name: "verbs", NIC: p, Fabric: f, PipelinedFence: false}
}

// UCX returns the Figure 5 testbed profile: the UCP protocol layer adds
// host software cost, and ThunderX2 cores process the completion path more
// slowly; ConnectX-5 EDR runs at 100 Gbps.
func UCX() Profile {
	p := nic.Profile{
		Name:                   "ucx",
		HostPostOverhead:       260 * sim.Nanosecond,
		HostCompletionOverhead: 250 * sim.Nanosecond,
		CQProcessOverhead:      1050 * sim.Nanosecond,
		SendPacketProc:         60 * sim.Nanosecond,
		RecvPacketProc:         60 * sim.Nanosecond,
		LookupLatency:          25 * sim.Nanosecond,
		PollInterval:           60 * sim.Nanosecond,
		MWaitWake:              8 * sim.Nanosecond,
		RegistrationBase:       2200 * sim.Nanosecond,
		RegistrationPerPage:    25 * sim.Nanosecond,
		DoorbellBytes:          8,
	}
	f := fabric.DefaultConfig()
	f.LinkGbps = 100
	f.LinkLatency = 150 * sim.Nanosecond
	f.SwitchLatency = 120 * sim.Nanosecond
	f.MTU = 2048
	return Profile{Name: "ucx", NIC: p, Fabric: f, PipelinedFence: true}
}

// ByName resolves a profile for the CLI.
func ByName(name string) (Profile, error) {
	switch name {
	case "verbs":
		return Verbs(), nil
	case "ucx":
		return UCX(), nil
	default:
		return Profile{}, fmt.Errorf("hostif: unknown profile %q (want verbs or ucx)", name)
	}
}

// Scale returns a copy of p with every host-software and NIC-pipeline
// duration multiplied by factor. The microbenchmarks use it to model
// run-to-run variation (thermal/noise effects on the host), producing the
// error bars Figure 5 reports.
func (p Profile) Scale(factor float64) Profile {
	s := p
	mul := func(t sim.Time) sim.Time { return sim.ScaleF(t, factor) }
	s.NIC.HostPostOverhead = mul(p.NIC.HostPostOverhead)
	s.NIC.HostCompletionOverhead = mul(p.NIC.HostCompletionOverhead)
	s.NIC.CQProcessOverhead = mul(p.NIC.CQProcessOverhead)
	s.NIC.SendPacketProc = mul(p.NIC.SendPacketProc)
	s.NIC.RecvPacketProc = mul(p.NIC.RecvPacketProc)
	s.NIC.LookupLatency = mul(p.NIC.LookupLatency)
	s.NIC.PollInterval = mul(p.NIC.PollInterval)
	s.NIC.RegistrationBase = mul(p.NIC.RegistrationBase)
	return s
}
