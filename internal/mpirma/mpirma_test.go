package mpirma

import (
	"bytes"
	"encoding/binary"
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/rvma"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

// newComm builds an n-rank communicator on a one-switch network.
func newComm(t *testing.T, n int, seed uint64) *Comm {
	t.Helper()
	eng := sim.NewEngine(seed)
	net, err := fabric.New(eng, topology.NewSingleSwitch(n), fabric.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prof := nic.DefaultProfile()
	eps := make([]*rvma.Endpoint, n)
	cfg := rvma.DefaultConfig()
	cfg.HistoryDepth = 8
	for i := 0; i < n; i++ {
		eps[i] = rvma.NewEndpoint(nic.New(eng, net, i, pcie.Gen4x16(), prof), cfg)
	}
	c, err := NewComm(eps)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runRanks spawns body(rank) as one process per rank and runs to quiet.
func runRanks(t *testing.T, c *Comm, body func(p *sim.Process, rank int)) {
	t.Helper()
	done := 0
	for rank := 0; rank < c.Size(); rank++ {
		rank := rank
		c.Engine().Spawn("rank", func(p *sim.Process) {
			body(p, rank)
			done++
		})
	}
	c.Engine().Run()
	if done != c.Size() {
		t.Fatalf("only %d of %d ranks finished (fence deadlock?)", done, c.Size())
	}
}

func TestPutFenceVisibility(t *testing.T) {
	c := newComm(t, 4, 1)
	win, err := CreateWin(c, WinConfig{Size: 256})
	if err != nil {
		t.Fatal(err)
	}
	runRanks(t, c, func(p *sim.Process, rank int) {
		// Everyone writes its rank id into slot 8*rank of rank 0's window.
		if rank != 0 {
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(rank))
			if _, err := win.Put(rank, 0, 8*rank, b[:]); err != nil {
				t.Error(err)
			}
		}
		if err := win.Fence(p, rank); err != nil {
			t.Errorf("rank %d fence: %v", rank, err)
		}
		if rank == 0 {
			// After the fence, all puts of the epoch are visible — in the
			// retired epoch's region (epoch regions are per-epoch buffers).
			data, err := win.Rewind(0+rank, 1)
			if err != nil {
				t.Errorf("rewind: %v", err)
				return
			}
			for r := 1; r < 4; r++ {
				got := binary.LittleEndian.Uint64(data[8*r : 8*r+8])
				if got != uint64(r) {
					t.Errorf("slot %d = %d, want %d", r, got, r)
				}
			}
		}
	})
}

func TestMultipleEpochs(t *testing.T) {
	c := newComm(t, 3, 2)
	win, err := CreateWin(c, WinConfig{Size: 64, Shadows: 5})
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 4
	runRanks(t, c, func(p *sim.Process, rank int) {
		for e := 1; e <= epochs; e++ {
			// Ring pattern: each rank stamps (epoch, rank) into its right
			// neighbor's window.
			right := (rank + 1) % 3
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], uint64(e*100+rank))
			if _, err := win.Put(rank, right, 0, b[:]); err != nil {
				t.Error(err)
			}
			if err := win.Fence(p, rank); err != nil {
				t.Errorf("rank %d epoch %d: %v", rank, e, err)
				return
			}
			// The just-retired epoch holds the left neighbor's stamp.
			left := (rank + 2) % 3
			data, err := win.Rewind(rank, 1)
			if err != nil {
				t.Errorf("rank %d rewind: %v", rank, err)
				return
			}
			got := binary.LittleEndian.Uint64(data[:8])
			if got != uint64(e*100+left) {
				t.Errorf("rank %d epoch %d: got stamp %d, want %d", rank, e, got, e*100+left)
			}
		}
	})
	for rank := 0; rank < 3; rank++ {
		if win.Epoch(rank) != epochs {
			t.Fatalf("rank %d epoch = %d, want %d", rank, win.Epoch(rank), epochs)
		}
	}
}

func TestRewindDepth(t *testing.T) {
	c := newComm(t, 2, 3)
	win, err := CreateWin(c, WinConfig{Size: 16, Shadows: 5}) // safe depth 3
	if err != nil {
		t.Fatal(err)
	}
	runRanks(t, c, func(p *sim.Process, rank int) {
		for e := 1; e <= 4; e++ {
			if rank == 0 {
				payload := bytes.Repeat([]byte{byte(e)}, 16)
				if _, err := win.Put(0, 1, 0, payload); err != nil {
					t.Error(err)
				}
			}
			if err := win.Fence(p, rank); err != nil {
				t.Errorf("fence: %v", err)
				return
			}
		}
		if rank == 1 {
			// Rewind(1..3) must return epochs 4, 3, 2 byte-exact.
			for k := 1; k <= 3; k++ {
				data, err := win.Rewind(1, k)
				if err != nil {
					t.Errorf("Rewind(%d): %v", k, err)
					continue
				}
				want := byte(5 - k)
				if data[0] != want {
					t.Errorf("Rewind(%d) = epoch %d data, want %d", k, data[0], want)
				}
			}
			// Depth 4 exceeds the shadow guarantee.
			if _, err := win.Rewind(1, 4); err == nil {
				t.Error("Rewind(4) should fail: region reused by rotation")
			}
		}
	})
}

func TestGetThroughWindow(t *testing.T) {
	c := newComm(t, 2, 4)
	win, err := CreateWin(c, WinConfig{Size: 128})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-load rank 1's active region directly (local initialization).
	content := bytes.Repeat([]byte{0x5C}, 128)
	r1 := win.ranks[1]
	c.eps[1].Memory().Write(r1.shadows[r1.curShadow].Base, content)

	runRanks(t, c, func(p *sim.Process, rank int) {
		if rank == 0 {
			f, err := win.Get(0, 1, 32, 64)
			if err != nil {
				t.Error(err)
				return
			}
			p.Wait(f)
			got := f.Value().([]byte)
			if !bytes.Equal(got, content[32:96]) {
				t.Error("get returned wrong bytes")
			}
		}
	})
}

func TestFenceWithNoTraffic(t *testing.T) {
	// A fence in an epoch with zero puts must still synchronize.
	c := newComm(t, 4, 5)
	win, err := CreateWin(c, WinConfig{Size: 32})
	if err != nil {
		t.Fatal(err)
	}
	runRanks(t, c, func(p *sim.Process, rank int) {
		for e := 0; e < 3; e++ {
			if err := win.Fence(p, rank); err != nil {
				t.Errorf("rank %d: %v", rank, err)
				return
			}
		}
	})
}

func TestSingleRankComm(t *testing.T) {
	c := newComm(t, 1, 6)
	win, err := CreateWin(c, WinConfig{Size: 32})
	if err != nil {
		t.Fatal(err)
	}
	runRanks(t, c, func(p *sim.Process, rank int) {
		if err := win.Fence(p, rank); err != nil {
			t.Error(err)
		}
	})
	if win.Epoch(0) != 1 {
		t.Fatalf("epoch = %d", win.Epoch(0))
	}
}

func TestManyPutsPerEpoch(t *testing.T) {
	// Stress the count-report path: many puts from every rank to rank 0.
	c := newComm(t, 4, 7)
	win, err := CreateWin(c, WinConfig{Size: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const putsPerRank = 16
	runRanks(t, c, func(p *sim.Process, rank int) {
		if rank != 0 {
			for i := 0; i < putsPerRank; i++ {
				off := (rank-1)*putsPerRank*8 + i*8
				var b [8]byte
				binary.LittleEndian.PutUint64(b[:], uint64(rank*1000+i))
				if _, err := win.Put(rank, 0, off, b[:]); err != nil {
					t.Error(err)
				}
			}
		}
		if err := win.Fence(p, rank); err != nil {
			t.Errorf("rank %d: %v", rank, err)
		}
	})
	data, err := win.Rewind(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for rank := 1; rank < 4; rank++ {
		for i := 0; i < putsPerRank; i++ {
			off := (rank-1)*putsPerRank*8 + i*8
			got := binary.LittleEndian.Uint64(data[off : off+8])
			if got != uint64(rank*1000+i) {
				t.Fatalf("slot (%d,%d) = %d", rank, i, got)
			}
		}
	}
}

func TestWinValidation(t *testing.T) {
	c := newComm(t, 2, 8)
	if _, err := CreateWin(c, WinConfig{Size: 0}); err == nil {
		t.Fatal("zero size should fail")
	}
	if _, err := CreateWin(c, WinConfig{Size: 8, Shadows: 2}); err == nil {
		t.Fatal("too few shadows should fail")
	}
	win, err := CreateWin(c, WinConfig{Size: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := win.Put(0, 1, 4, make([]byte, 8)); err == nil {
		t.Fatal("overflowing put should fail")
	}
	if _, err := win.Get(0, 1, 0, 9); err == nil {
		t.Fatal("overflowing get should fail")
	}
}

func TestNewCommValidation(t *testing.T) {
	if _, err := NewComm(nil); err == nil {
		t.Fatal("empty comm should fail")
	}
	eng := sim.NewEngine(1)
	net, _ := fabric.New(eng, topology.NewSingleSwitch(2), fabric.DefaultConfig())
	cfg := rvma.DefaultConfig()
	cfg.CarryData = false
	ep := rvma.NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), nic.DefaultProfile()), cfg)
	if _, err := NewComm([]*rvma.Endpoint{ep}); err == nil {
		t.Fatal("timing-only endpoints should fail")
	}
}
