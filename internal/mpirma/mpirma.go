// Package mpirma layers MPI-style one-sided (RMA) communication on top of
// RVMA, demonstrating the paper's §IV-E claim that "RVMA fundamentally
// includes the concept of a RMA epoch" and its §IV-F proposal of an
// MPIX_Rewind(MPI_Win) call for hardware-level communication rollback.
//
// An mpirma.Win is an MPI window: every rank exposes a same-sized region
// addressed remotely as (rank, offset). Epochs are delimited by Fence, the
// BSP-style MPI_Win_fence. RVMA makes the fence cheap:
//
//   - puts during the epoch go straight to the target's data mailbox — no
//     per-op acknowledgments;
//   - at the fence each rank writes its per-target op count into one slot
//     of every target's *control* mailbox (offset = 8 x sender rank, a
//     steered RVMA put), and the control window's byte threshold fires
//     exactly when all peers have reported — a hardware-counted barrier;
//   - the rank then knows how many data messages to expect, waits for
//     them, and hands the epoch's buffer over with IncEpoch, which also
//     retires it into the NIC's history ring.
//
// Because each epoch runs in a different shadow region (rotating through
// Win's bucket of buffers), MPIX_Rewind(k) can return the intact contents
// of a previous epoch straight from the window history — the paper's
// hardware fault tolerance, with the documented caveat that the
// application must not have overwritten retired buffers.
package mpirma

import (
	"encoding/binary"
	"fmt"

	"rvma/internal/memory"
	"rvma/internal/metrics"
	"rvma/internal/rvma"
	"rvma/internal/sim"
)

// Comm is a communicator: one RVMA endpoint per rank (rank == node id).
type Comm struct {
	eps []*rvma.Endpoint
	eng *sim.Engine
}

// NewComm wraps a set of endpoints as a communicator. All endpoints must
// share one engine and carry real data (mpirma moves bytes).
func NewComm(eps []*rvma.Endpoint) (*Comm, error) {
	if len(eps) == 0 {
		return nil, fmt.Errorf("mpirma: empty communicator")
	}
	for i, ep := range eps {
		if ep.Node() != i {
			return nil, fmt.Errorf("mpirma: endpoint %d is node %d; ranks must equal node ids", i, ep.Node())
		}
		if !ep.Config().CarryData {
			return nil, fmt.Errorf("mpirma: endpoint %d does not carry data", i)
		}
	}
	return &Comm{eps: eps, eng: eps[0].Engine()}, nil
}

// Size returns the communicator size.
func (c *Comm) Size() int { return len(c.eps) }

// Engine returns the simulation engine.
func (c *Comm) Engine() *sim.Engine { return c.eng }

// WinConfig parameterizes window creation.
type WinConfig struct {
	// Size is the exposed region size per rank, in bytes.
	Size int
	// Shadows is the number of rotating epoch regions per rank. Two are
	// always posted (active + next); retired regions stay intact — and
	// Rewind-able — until the rotation reuses them, so the safe rollback
	// depth is Shadows-2. Defaults to 4 (rollback depth 2).
	Shadows int
	// PollInterval is the fence's op-count polling cadence; defaults to
	// the endpoint profile's interval.
	PollInterval sim.Time
}

// Win is an MPI RMA window over RVMA mailboxes.
type Win struct {
	comm *Comm
	cfg  WinConfig
	id   uint64

	ranks []*winRank

	// Metric handles (nil when no registry is attached).
	mFence   *metrics.Histogram // per-rank fence latency, ns
	mRewinds *metrics.Counter
}

// SetMetrics attaches a metrics registry to the window: fence latency
// histogram, rewind counter, and a per-rank epoch gauge sampled at
// snapshot time. A nil registry detaches.
func (w *Win) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		w.mFence, w.mRewinds = nil, nil
		return
	}
	w.mFence = reg.Histogram("mpirma.fence_ns")
	w.mRewinds = reg.Counter("mpirma.rewinds")
	reg.AddCollector(func() {
		for _, r := range w.ranks {
			reg.Gauge(fmt.Sprintf("mpirma.rank%d.epoch", r.rank)).Set(float64(r.epoch))
		}
	})
}

// winRank is one rank's local state.
type winRank struct {
	rank      int
	dataWin   *rvma.Window
	shadows   []*memory.Region
	curShadow int

	// Two control windows implement the fence's two rounds: entry (op
	// counts) and exit (epoch-closed barrier). Each runs a pump that
	// banks completions and immediately reposts the completed region, so
	// a peer ahead by one fence can never have its slot write dropped.
	ctrlIn  *ctrlChannel
	ctrlOut *ctrlChannel

	epoch         int64
	opsSentTo     []uint64 // this epoch, per target
	expectedTotal uint64   // cumulative data messages expected (all epochs)
}

// ctrlChannel is a completion-banked control mailbox with two rotating
// slot regions (one per in-flight epoch).
type ctrlChannel struct {
	win       *rvma.Window
	regions   [2]*memory.Region
	readIdx   int // region holding the oldest unconsumed epoch's slots
	available int
	waiters   []*sim.Future
	eng       *sim.Engine
}

// newCtrlChannel builds the window, posts both regions, and arms the pump.
func newCtrlChannel(ep *rvma.Endpoint, mbox rvma.VAddr, peers int) (*ctrlChannel, error) {
	win, err := ep.InitWindow(mbox, int64(8*peers), rvma.EpochBytes)
	if err != nil {
		return nil, err
	}
	c := &ctrlChannel{win: win, eng: ep.Engine()}
	slots := 8 * (peers + 1) // one slot per rank, including self (unused)
	for i := range c.regions {
		c.regions[i] = ep.Memory().Alloc(slots)
		if _, err := win.PostBufferRegion(c.regions[i]); err != nil {
			return nil, err
		}
	}
	win.SetCompletionHandler(func(buf *rvma.Buffer) {
		// Recycle the retired region right away; its slot values stay
		// readable until the *next* completion, which cannot happen before
		// this rank itself contributes to the following epoch.
		if _, err := win.PostBufferRegion(buf.Region); err != nil {
			panic(err)
		}
		if len(c.waiters) > 0 {
			f := c.waiters[0]
			c.waiters = c.waiters[1:]
			f.Complete(c.eng, nil)
			return
		}
		c.available++
	})
	return c, nil
}

// wait resolves when the channel's next epoch completes (all peers wrote).
func (c *ctrlChannel) wait() *sim.Future {
	f := sim.NewFuture()
	if c.available > 0 {
		c.available--
		f.Complete(c.eng, nil)
		return f
	}
	c.waiters = append(c.waiters, f)
	return f
}

// consume returns the oldest unconsumed epoch's slot region and rotates.
func (c *ctrlChannel) consume() *memory.Region {
	r := c.regions[c.readIdx]
	c.readIdx = (c.readIdx + 1) % len(c.regions)
	return r
}

// window ids partition the mailbox space: data mailboxes live at
// winID<<20 | 0, the fence-entry control at | 1, fence-exit at | 2.
var nextWinID uint64 = 1

func (w *Win) dataMbox() rvma.VAddr    { return rvma.VAddr(w.id<<20 | 0) }
func (w *Win) ctrlInMbox() rvma.VAddr  { return rvma.VAddr(w.id<<20 | 1) }
func (w *Win) ctrlOutMbox() rvma.VAddr { return rvma.VAddr(w.id<<20 | 2) }

// CreateWin collectively creates a window of cfg.Size bytes per rank.
// Must be called once, before the simulation manipulates the window.
func CreateWin(c *Comm, cfg WinConfig) (*Win, error) {
	if cfg.Size <= 0 {
		return nil, fmt.Errorf("mpirma: window size %d", cfg.Size)
	}
	if cfg.Shadows == 0 {
		cfg.Shadows = 4
	}
	if cfg.Shadows < 3 {
		return nil, fmt.Errorf("mpirma: need >= 3 shadow regions (2 posted + >= 1 rollback)")
	}
	w := &Win{comm: c, cfg: cfg, id: nextWinID}
	nextWinID++

	n := c.Size()
	for rank := 0; rank < n; rank++ {
		ep := c.eps[rank]
		// Data window: effectively unbounded threshold; epochs end via
		// IncEpoch at the fence (op counts are not known when posting).
		dataWin, err := ep.InitWindow(w.dataMbox(), 1<<62, rvma.EpochBytes)
		if err != nil {
			return nil, err
		}
		r := &winRank{
			rank:      rank,
			dataWin:   dataWin,
			opsSentTo: make([]uint64, n),
		}
		// Control channels: one 8-byte slot per peer; the byte threshold
		// fires exactly when all n-1 peers have written. Single-rank
		// communicators need no control traffic.
		if n > 1 {
			if r.ctrlIn, err = newCtrlChannel(ep, w.ctrlInMbox(), n-1); err != nil {
				return nil, err
			}
			if r.ctrlOut, err = newCtrlChannel(ep, w.ctrlOutMbox(), n-1); err != nil {
				return nil, err
			}
		}
		for i := 0; i < cfg.Shadows; i++ {
			r.shadows = append(r.shadows, ep.Memory().Alloc(cfg.Size))
		}
		// Keep two regions posted at all times: the active epoch and the
		// next one. Rotation at a fence then never leaves the mailbox
		// without a buffer, so an early put from a peer that exited its
		// fence first is never dropped.
		if _, err := dataWin.PostBufferRegion(r.shadows[0]); err != nil {
			return nil, err
		}
		if _, err := dataWin.PostBufferRegion(r.shadows[1]); err != nil {
			return nil, err
		}
		w.ranks = append(w.ranks, r)
	}
	return w, nil
}

// Size returns the per-rank window size.
func (w *Win) Size() int { return w.cfg.Size }

// Epoch returns rank's current epoch number.
func (w *Win) Epoch(rank int) int64 { return w.ranks[rank].epoch }

// Data returns rank's *current epoch* exposed region contents.
func (w *Win) Data(rank int) []byte {
	r := w.ranks[rank]
	region := r.shadows[r.curShadow]
	return w.comm.eps[rank].Memory().Read(region.Base, region.Size())
}

// Put initiates an MPI_Put from origin into target's window at offset.
// It is nonblocking; completion at the target is established by the next
// Fence. The returned future is local completion (origin buffer reuse).
func (w *Win) Put(origin, target, offset int, data []byte) (*sim.Future, error) {
	if offset < 0 || offset+len(data) > w.cfg.Size {
		return nil, fmt.Errorf("mpirma: put [%d,%d) outside window of %d", offset, offset+len(data), w.cfg.Size)
	}
	r := w.ranks[origin]
	r.opsSentTo[target]++
	op := w.comm.eps[origin].Put(target, w.dataMbox(), offset, data)
	return op.Local, nil
}

// Get fetches n bytes at offset from target's current window region.
// The future resolves with the []byte.
func (w *Win) Get(origin, target, offset, n int) (*sim.Future, error) {
	if offset < 0 || offset+n > w.cfg.Size {
		return nil, fmt.Errorf("mpirma: get [%d,%d) outside window of %d", offset, offset+n, w.cfg.Size)
	}
	op := w.comm.eps[origin].Get(target, w.dataMbox(), offset, n)
	return op.Done, nil
}

// Fence is the collective epoch boundary (MPI_Win_fence). Every rank must
// call it from its own simulation process. On return at a rank:
//
//   - all puts targeting that rank in the closing epoch have landed,
//   - the epoch's region is retired to the NIC history (Rewind-able),
//   - the next epoch's shadow region is exposed.
func (w *Win) Fence(p *sim.Process, rank int) error {
	start := w.comm.eng.Now()
	err := w.fence(p, rank)
	w.mFence.ObserveTime(w.comm.eng.Now() - start)
	return err
}

func (w *Win) fence(p *sim.Process, rank int) error {
	r := w.ranks[rank]
	ep := w.comm.eps[rank]
	n := w.comm.Size()

	if n == 1 {
		return w.rotate(p, r, ep)
	}

	// 1. Entry round: report this epoch's op counts into slot 8*rank of
	// every peer's entry-control mailbox.
	for t := 0; t < n; t++ {
		if t == rank {
			continue
		}
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], r.opsSentTo[t])
		ep.Put(t, w.ctrlInMbox(), 8*rank, b[:])
		r.opsSentTo[t] = 0
	}

	// 2. The entry window's byte threshold fires when all n-1 peers have
	// reported — the NIC counter is the barrier.
	p.Wait(r.ctrlIn.wait())

	// 3. Sum the reported counts and wait until that many data messages
	// have been placed over this window's lifetime.
	slots := r.ctrlIn.consume()
	counts := ep.Memory().Read(slots.Base, slots.Size())
	var incoming uint64
	for t := 0; t < n; t++ {
		if t == rank {
			continue
		}
		incoming += binary.LittleEndian.Uint64(counts[8*t : 8*t+8])
	}
	r.expectedTotal += incoming

	interval := w.cfg.PollInterval
	if interval == 0 {
		interval = ep.NIC().Profile().PollInterval
	}
	p.Wait(r.dataWin.WhenPlaced(r.expectedTotal, interval))

	// 4. Retire the epoch and expose the next shadow region.
	if err := w.rotate(p, r, ep); err != nil {
		return err
	}

	// 5. Exit round: no rank may leave the fence (and start next-epoch
	// puts) before every rank has rotated, or early puts would land in a
	// peer's still-open previous epoch.
	for t := 0; t < n; t++ {
		if t == rank {
			continue
		}
		var b [8]byte
		ep.Put(t, w.ctrlOutMbox(), 8*rank, b[:])
	}
	p.Wait(r.ctrlOut.wait())
	r.ctrlOut.consume()
	return nil
}

// rotate retires the epoch's data buffer (IncEpoch -> history) so the
// already-posted next shadow becomes the active region, then posts the
// shadow after that to restore the two-deep queue.
//
// Epoch regions are independent accumulation buffers: a new epoch starts
// zeroed rather than inheriting the previous epoch's bytes. (Classic
// MPI_Win_fence exposes one persistent region; the shadow scheme trades
// that for the paper's §IV-F property — retired epochs stay intact and
// Rewind-able. Applications that need carry-over state read the previous
// epoch via Data/Rewind and re-put it.)
func (w *Win) rotate(p *sim.Process, r *winRank, ep *rvma.Endpoint) error {
	f, err := r.dataWin.IncEpoch()
	if err != nil {
		return err
	}
	r.curShadow = (r.curShadow + 1) % len(r.shadows)
	refill := r.shadows[(r.curShadow+1)%len(r.shadows)]
	ep.Memory().Fill(refill.Base, 0, refill.Size()) // reused region starts clean
	if _, err := r.dataWin.PostBufferRegion(refill); err != nil {
		return err
	}
	p.Wait(f)
	r.epoch++
	return nil
}

// Rewind implements the paper's MPIX_Rewind(MPI_Win): return the intact
// contents of rank's window as of k epochs ago (k=1 is the last completed
// epoch), retrieved from the RVMA NIC's buffer history. It fails if the
// history no longer reaches that epoch (bounded by the endpoint's
// HistoryDepth) or if shadow rotation has already reused the region.
func (w *Win) Rewind(rank, k int) ([]byte, error) {
	r := w.ranks[rank]
	if k > len(r.shadows)-2 {
		return nil, fmt.Errorf("mpirma: rewind depth %d exceeds safe depth %d (region reused by rotation)",
			k, len(r.shadows)-2)
	}
	buf, err := r.dataWin.Rewind(k)
	if err != nil {
		return nil, err
	}
	w.mRewinds.Add(1)
	return w.comm.eps[rank].Memory().Read(buf.Region.Base, buf.Region.Size()), nil
}
