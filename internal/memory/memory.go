// Package memory models a node's host DRAM as seen by a NIC's DMA engine
// and by host software.
//
// The model is functional as well as temporal: writes carry real bytes, so
// tests can assert that out-of-order packet placement still yields byte-
// identical buffers (the property RVMA's offset-based placement relies on,
// paper §IV-D). Completion notification is modeled with cache-line
// watchers, which is how the paper's Monitor/MWait wake-on-write mechanism
// observes the NIC's completion-pointer write (§IV-C).
package memory

import (
	"fmt"
	"sort"

	"rvma/internal/sim"
)

// Addr is a host physical address in the simulated memory.
type Addr uint64

// CacheLineSize is the coherence granularity: Monitor/MWait watchers fire
// on any write that touches the watched address's cache line.
const CacheLineSize = 64

// lineOf returns the cache line index containing a.
func lineOf(a Addr) Addr { return a / CacheLineSize }

// Region is an allocated span of simulated host memory.
type Region struct {
	Base Addr
	Data []byte
}

// Size returns the region length in bytes.
func (r *Region) Size() int { return len(r.Data) }

// End returns the first address past the region.
func (r *Region) End() Addr { return r.Base + Addr(len(r.Data)) }

// Contains reports whether [a, a+n) lies entirely within the region.
func (r *Region) Contains(a Addr, n int) bool {
	return a >= r.Base && a+Addr(n) <= r.End() && n >= 0
}

// Watcher observes writes to a single cache line, modeling a hardware
// thread parked in MWait on that line.
type Watcher struct {
	line Addr
	fn   func(addr Addr, n int)
	mem  *Memory
	dead bool
}

// Cancel deregisters the watcher; subsequent writes no longer invoke it.
func (w *Watcher) Cancel() {
	if w.dead {
		return
	}
	w.dead = true
	ws := w.mem.watchers[w.line]
	for i, other := range ws {
		if other == w {
			w.mem.watchers[w.line] = append(ws[:i], ws[i+1:]...)
			break
		}
	}
	if len(w.mem.watchers[w.line]) == 0 {
		delete(w.mem.watchers, w.line)
	}
}

// Memory is one node's host memory. Allocation is a simple bump allocator:
// the simulation never frees host memory (buffers are reused at the model
// level, mirroring how registered buffers behave in real RDMA stacks).
type Memory struct {
	next     Addr
	regions  []*Region // sorted by Base
	watchers map[Addr][]*Watcher

	// Stats for experiment reports.
	BytesWritten uint64
	BytesRead    uint64
	Writes       uint64
	Reads        uint64
}

// New returns an empty memory. The address space starts at a nonzero base
// so that Addr(0) can serve as a null sentinel.
func New() *Memory {
	return &Memory{next: 0x1000, watchers: make(map[Addr][]*Watcher)}
}

// Alloc carves out a new cache-line-aligned region of the given size.
func (m *Memory) Alloc(size int) *Region {
	if size < 0 {
		panic("memory: negative allocation")
	}
	// Align base to a cache line, as real allocators for DMA targets do.
	base := (m.next + CacheLineSize - 1) / CacheLineSize * CacheLineSize
	r := &Region{Base: base, Data: make([]byte, size)}
	m.next = base + Addr(size)
	m.regions = append(m.regions, r)
	return r
}

// regionFor locates the region containing [a, a+n), or nil.
func (m *Memory) regionFor(a Addr, n int) *Region {
	i := sort.Search(len(m.regions), func(i int) bool {
		return m.regions[i].End() > a
	})
	if i < len(m.regions) && m.regions[i].Contains(a, n) {
		return m.regions[i]
	}
	return nil
}

// Write stores p at address a. It panics on an out-of-bounds access: the
// models compute every DMA target address, so a bad address is a model bug,
// not a recoverable condition. Watchers on any touched cache line fire
// after the bytes land.
func (m *Memory) Write(a Addr, p []byte) {
	if len(p) == 0 {
		return
	}
	r := m.regionFor(a, len(p))
	if r == nil {
		panic(fmt.Sprintf("memory: write of %d bytes at %#x outside any region", len(p), a))
	}
	copy(r.Data[a-r.Base:], p)
	m.Writes++
	m.BytesWritten += uint64(len(p))
	m.notify(a, len(p))
}

// Fill stores n copies of byte b starting at a, with watcher semantics
// identical to Write. It avoids materializing large payload slices when the
// content doesn't matter to a test.
func (m *Memory) Fill(a Addr, b byte, n int) {
	if n == 0 {
		return
	}
	r := m.regionFor(a, n)
	if r == nil {
		panic(fmt.Sprintf("memory: fill of %d bytes at %#x outside any region", n, a))
	}
	d := r.Data[a-r.Base : a-r.Base+Addr(n)]
	for i := range d {
		d[i] = b
	}
	m.Writes++
	m.BytesWritten += uint64(n)
	m.notify(a, n)
}

// Read copies n bytes starting at a into a fresh slice.
func (m *Memory) Read(a Addr, n int) []byte {
	r := m.regionFor(a, n)
	if r == nil {
		panic(fmt.Sprintf("memory: read of %d bytes at %#x outside any region", n, a))
	}
	m.Reads++
	m.BytesRead += uint64(n)
	out := make([]byte, n)
	copy(out, r.Data[a-r.Base:])
	return out
}

// notify fires watchers registered on any cache line overlapped by the
// write [a, a+n). Watchers may cancel themselves (or others) from inside
// the callback, so iteration works on a snapshot.
func (m *Memory) notify(a Addr, n int) {
	if len(m.watchers) == 0 {
		return
	}
	first, last := lineOf(a), lineOf(a+Addr(n)-1)
	for line := first; line <= last; line++ {
		ws := m.watchers[line]
		if len(ws) == 0 {
			continue
		}
		snapshot := make([]*Watcher, len(ws))
		copy(snapshot, ws)
		for _, w := range snapshot {
			if !w.dead {
				w.fn(a, n)
			}
		}
	}
}

// Watch registers fn to be invoked whenever a write touches the cache line
// containing a. This models arming Monitor/MWait on the completion cell:
// the paper notes wake-up happens in as little as one clock cycle, so the
// simulation treats the callback as free and leaves any modeled wake
// latency to the caller.
func (m *Memory) Watch(a Addr, fn func(addr Addr, n int)) *Watcher {
	w := &Watcher{line: lineOf(a), fn: fn, mem: m}
	m.watchers[w.line] = append(m.watchers[w.line], w)
	return w
}

// WatcherCount returns the number of live watchers (for leak tests).
func (m *Memory) WatcherCount() int {
	n := 0
	for _, ws := range m.watchers {
		n += len(ws)
	}
	return n
}

// CompletionCell is a cache-line-aligned pair of u64 slots in host memory:
// the completed buffer's head address and its completed length. This is
// precisely the layout the paper prescribes for RVMA completion
// notification ("typically these two completion addresses will be
// consecutive and be aligned to a single cache line", §III-B).
type CompletionCell struct {
	mem *Memory
	reg *Region
}

// NewCompletionCell allocates and zeroes a completion cell.
func NewCompletionCell(m *Memory) *CompletionCell {
	// A full cache line so the cell never shares a line with another cell:
	// false sharing would make MWait wake-ups ambiguous.
	r := m.Alloc(CacheLineSize)
	return &CompletionCell{mem: m, reg: r}
}

// Addr returns the cell's address (the completion pointer address handed to
// the NIC when a buffer is posted).
func (c *CompletionCell) Addr() Addr { return c.reg.Base }

// Set writes (bufferHead, length) into the cell. In the model this is the
// NIC's PCIe write; watchers on the line observe it.
func (c *CompletionCell) Set(head Addr, length int) {
	var b [16]byte
	putU64(b[0:8], uint64(head))
	putU64(b[8:16], uint64(length))
	c.mem.Write(c.reg.Base, b[:])
}

// Get reads the cell, returning the last completed buffer's head address
// and length. A zero head means "no completion yet this epoch".
func (c *CompletionCell) Get() (head Addr, length int) {
	b := c.mem.Read(c.reg.Base, 16)
	return Addr(getU64(b[0:8])), int(getU64(b[8:16]))
}

// Clear zeroes the cell (used when re-arming a buffer for a new epoch).
func (c *CompletionCell) Clear() { c.Set(0, 0) }

func putU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getU64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

// Poller models host software polling a memory location at a fixed
// interval, the fallback notification scheme for architectures without
// MWait (§IV-C: "the memory location can be polled for change; this
// provides a similarly low latency but expends more energy"). It invokes
// check every interval until check returns true or the poller is stopped,
// then calls done with the completion time.
type Poller struct {
	stopped bool
	Polls   int
}

// StartPoller begins polling. The first check happens one interval from
// now (the poller was presumably checked synchronously before arming).
// The tick events carry the caller's component label, so poll traffic is
// attributed to the endpoint that armed the poller, not to this package.
func StartPoller(e sim.Tagged, interval sim.Time, check func() bool, done func()) *Poller {
	if interval <= 0 {
		panic("memory: poll interval must be positive")
	}
	p := &Poller{}
	var tick func()
	tick = func() {
		if p.stopped {
			return
		}
		p.Polls++
		if check() {
			done()
			return
		}
		e.Schedule(interval, tick)
	}
	e.Schedule(interval, tick)
	return p
}

// Stop cancels future polls.
func (p *Poller) Stop() { p.stopped = true }
