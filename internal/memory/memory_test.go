package memory

import (
	"bytes"
	"testing"
	"testing/quick"

	"rvma/internal/sim"
)

func TestAllocAlignment(t *testing.T) {
	m := New()
	for i := 0; i < 20; i++ {
		r := m.Alloc(i*7 + 1)
		if r.Base%CacheLineSize != 0 {
			t.Fatalf("region %d base %#x not cache-line aligned", i, r.Base)
		}
	}
}

func TestAllocDisjoint(t *testing.T) {
	m := New()
	a := m.Alloc(100)
	b := m.Alloc(100)
	if a.End() > b.Base {
		t.Fatalf("regions overlap: a=[%#x,%#x) b=[%#x,%#x)", a.Base, a.End(), b.Base, b.End())
	}
}

func TestWriteRead(t *testing.T) {
	m := New()
	r := m.Alloc(256)
	payload := []byte("remote virtual memory access")
	m.Write(r.Base+13, payload)
	got := m.Read(r.Base+13, len(payload))
	if !bytes.Equal(got, payload) {
		t.Fatalf("read back %q, want %q", got, payload)
	}
	if m.Writes != 1 || m.BytesWritten != uint64(len(payload)) {
		t.Fatalf("stats: writes=%d bytes=%d", m.Writes, m.BytesWritten)
	}
}

func TestFill(t *testing.T) {
	m := New()
	r := m.Alloc(64)
	m.Fill(r.Base+8, 0xAB, 16)
	got := m.Read(r.Base+8, 16)
	for _, b := range got {
		if b != 0xAB {
			t.Fatalf("fill byte = %#x, want 0xAB", b)
		}
	}
	if m.Read(r.Base, 8)[7] != 0 {
		t.Fatal("fill bled outside its range")
	}
}

func TestOutOfBoundsWritePanics(t *testing.T) {
	m := New()
	r := m.Alloc(16)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds write should panic")
		}
	}()
	m.Write(r.End()-4, make([]byte, 8))
}

func TestOutOfBoundsReadPanics(t *testing.T) {
	m := New()
	m.Alloc(16)
	defer func() {
		if recover() == nil {
			t.Fatal("read outside any region should panic")
		}
	}()
	m.Read(0x10, 4)
}

func TestRegionContains(t *testing.T) {
	r := &Region{Base: 0x100, Data: make([]byte, 64)}
	if !r.Contains(0x100, 64) {
		t.Fatal("full-span Contains failed")
	}
	if r.Contains(0x100, 65) {
		t.Fatal("Contains allowed overflow")
	}
	if r.Contains(0xFF, 1) {
		t.Fatal("Contains allowed underflow")
	}
	if r.Contains(0x100, -1) {
		t.Fatal("Contains allowed negative length")
	}
}

func TestWatcherFiresOnLineTouch(t *testing.T) {
	m := New()
	r := m.Alloc(256)
	fired := 0
	m.Watch(r.Base+64, func(a Addr, n int) { fired++ })
	m.Write(r.Base+64, []byte{1})       // exact address
	m.Write(r.Base+100, []byte{1})      // same line (64..127)
	m.Write(r.Base, []byte{1})          // different line
	m.Write(r.Base+128, []byte{1})      // different line
	m.Write(r.Base+60, make([]byte, 8)) // straddles into watched line
	if fired != 3 {
		t.Fatalf("watcher fired %d times, want 3", fired)
	}
}

func TestWatcherCancel(t *testing.T) {
	m := New()
	r := m.Alloc(64)
	fired := 0
	w := m.Watch(r.Base, func(a Addr, n int) { fired++ })
	m.Write(r.Base, []byte{1})
	w.Cancel()
	m.Write(r.Base, []byte{1})
	w.Cancel() // idempotent
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if m.WatcherCount() != 0 {
		t.Fatalf("watcher leaked: count = %d", m.WatcherCount())
	}
}

func TestWatcherSelfCancelDuringCallback(t *testing.T) {
	m := New()
	r := m.Alloc(64)
	fired := 0
	var w *Watcher
	w = m.Watch(r.Base, func(a Addr, n int) {
		fired++
		w.Cancel()
	})
	m.Write(r.Base, []byte{1})
	m.Write(r.Base, []byte{1})
	if fired != 1 {
		t.Fatalf("self-canceling watcher fired %d times, want 1", fired)
	}
}

func TestMultipleWatchersOneLine(t *testing.T) {
	m := New()
	r := m.Alloc(64)
	count := 0
	m.Watch(r.Base, func(Addr, int) { count++ })
	m.Watch(r.Base+8, func(Addr, int) { count++ })
	m.Write(r.Base+4, []byte{9})
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
}

func TestCompletionCell(t *testing.T) {
	m := New()
	c := NewCompletionCell(m)
	if c.Addr()%CacheLineSize != 0 {
		t.Fatal("completion cell must be cache-line aligned")
	}
	if h, l := c.Get(); h != 0 || l != 0 {
		t.Fatalf("fresh cell = (%#x, %d), want zero", h, l)
	}
	c.Set(0xDEAD0, 4096)
	h, l := c.Get()
	if h != 0xDEAD0 || l != 4096 {
		t.Fatalf("cell = (%#x, %d), want (0xDEAD0, 4096)", h, l)
	}
	c.Clear()
	if h, l := c.Get(); h != 0 || l != 0 {
		t.Fatalf("cleared cell = (%#x, %d)", h, l)
	}
}

func TestCompletionCellWatch(t *testing.T) {
	m := New()
	c := NewCompletionCell(m)
	var seen Addr
	m.Watch(c.Addr(), func(Addr, int) {
		h, _ := c.Get()
		seen = h
	})
	c.Set(0xBEEF00, 128)
	if seen != 0xBEEF00 {
		t.Fatalf("watcher observed head %#x, want 0xBEEF00", seen)
	}
}

func TestCompletionCellsDontShareLines(t *testing.T) {
	m := New()
	a := NewCompletionCell(m)
	b := NewCompletionCell(m)
	fired := false
	m.Watch(a.Addr(), func(Addr, int) { fired = true })
	b.Set(1, 1)
	if fired {
		t.Fatal("write to cell B woke watcher on cell A (false sharing)")
	}
}

// Property: a write followed by a read of the same span returns the same
// bytes, for arbitrary offsets and payloads within a region.
func TestWriteReadRoundTripProperty(t *testing.T) {
	m := New()
	r := m.Alloc(1 << 16)
	f := func(off uint16, payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		a := r.Base + Addr(off)
		if !r.Contains(a, len(payload)) {
			return true // out of range inputs are skipped, not failures
		}
		m.Write(a, payload)
		return bytes.Equal(m.Read(a, len(payload)), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: writing non-overlapping chunks in any order produces the same
// final contents — the foundation of RVMA's claim that offset-based
// placement tolerates arbitrary packet arrival order (§IV-D).
func TestOutOfOrderPlacementProperty(t *testing.T) {
	f := func(seed uint64) bool {
		const chunk, n = 64, 32
		build := func(order []int) []byte {
			m := New()
			r := m.Alloc(chunk * n)
			for _, idx := range order {
				payload := make([]byte, chunk)
				for j := range payload {
					payload[j] = byte(idx*31 + j)
				}
				m.Write(r.Base+Addr(idx*chunk), payload)
			}
			return m.Read(r.Base, chunk*n)
		}
		inOrder := make([]int, n)
		shuffled := make([]int, n)
		for i := 0; i < n; i++ {
			inOrder[i] = i
			shuffled[i] = i
		}
		rng := sim.NewRNG(seed)
		rng.Shuffle(n, func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		return bytes.Equal(build(inOrder), build(shuffled))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPoller(t *testing.T) {
	e := sim.NewEngine(1)
	ready := false
	var doneAt sim.Time
	p := StartPoller(e.Tag("test"), 100*sim.Nanosecond, func() bool { return ready }, func() { doneAt = e.Now() })
	e.Schedule(450*sim.Nanosecond, func() { ready = true })
	e.Run()
	// Polls at 100,200,300,400 miss; the poll at 500 sees ready.
	if doneAt != 500*sim.Nanosecond {
		t.Fatalf("poller completed at %v, want 500ns", doneAt)
	}
	if p.Polls != 5 {
		t.Fatalf("polls = %d, want 5", p.Polls)
	}
}

func TestPollerStop(t *testing.T) {
	e := sim.NewEngine(1)
	p := StartPoller(e.Tag("test"), 10*sim.Nanosecond, func() bool { return false }, func() {})
	e.Schedule(35*sim.Nanosecond, func() { p.Stop() })
	e.RunUntil(sim.Microsecond)
	if p.Polls != 3 {
		t.Fatalf("polls before stop = %d, want 3", p.Polls)
	}
}

func TestPollerZeroIntervalPanics(t *testing.T) {
	e := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero interval should panic")
		}
	}()
	StartPoller(e.Tag("test"), 0, func() bool { return true }, func() {})
}

// TestWatcherNotifyOrderDeterministic pins the notify ordering contract:
// a write spanning several cache lines fires watchers in ascending line
// order, and within one line in registration order. Wake-up order is
// observable model behavior (a waiter may schedule events from its
// callback), so it must not depend on map iteration or any other
// randomized order.
func TestWatcherNotifyOrderDeterministic(t *testing.T) {
	m := New()
	r := m.Alloc(4 * CacheLineSize)

	var fired []int
	watch := func(id int, line Addr) {
		m.Watch(r.Base+line*CacheLineSize, func(Addr, int) {
			fired = append(fired, id)
		})
	}
	// Register out of line order, with two watchers on line 1.
	watch(0, 2)
	watch(1, 0)
	watch(2, 3)
	watch(3, 1)
	watch(4, 1)

	// One write covering all four lines.
	m.Write(r.Base, make([]byte, 4*CacheLineSize))

	want := []int{1, 3, 4, 0, 2} // line 0, line 1 (reg order), line 2, line 3
	if len(fired) != len(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired %v, want %v", fired, want)
		}
	}
}
