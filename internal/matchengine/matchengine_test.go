package matchengine

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestEntryMatching(t *testing.T) {
	e := &Entry{Source: 3, Bits: 0xAB00, Ignore: 0x00FF}
	cases := []struct {
		src  int
		tag  MatchBits
		want bool
	}{
		{3, 0xAB00, true},
		{3, 0xAB42, true},  // wildcarded low byte
		{3, 0xAC00, false}, // non-ignored bit differs
		{4, 0xAB00, false}, // wrong source
	}
	for _, c := range cases {
		if got := e.Matches(c.src, c.tag); got != c.want {
			t.Errorf("Matches(%d, %#x) = %v, want %v", c.src, c.tag, got, c.want)
		}
	}
	any := &Entry{Source: AnySource, Bits: 7, Ignore: 0}
	if !any.Matches(99, 7) {
		t.Error("AnySource must match every sender")
	}
}

func TestListFIFOPriority(t *testing.T) {
	// MPI semantics: among multiple potential matches, the earliest posted
	// wins — "resolves multiple potential matches to a single message by
	// the order in which the potential matches were posted" (§II).
	l := &List{}
	l.Append(&Entry{Source: AnySource, Bits: 5, Ignore: 0, Payload: "first", UseOnce: true})
	l.Append(&Entry{Source: AnySource, Bits: 5, Ignore: 0, Payload: "second", UseOnce: true})
	e, _ := l.Match(0, 5)
	if e == nil || e.Payload != "first" {
		t.Fatalf("first match = %v", e)
	}
	e, _ = l.Match(0, 5)
	if e == nil || e.Payload != "second" {
		t.Fatalf("second match = %v", e)
	}
	if e, _ := l.Match(0, 5); e != nil {
		t.Fatal("exhausted list should miss")
	}
}

func TestListPersistentEntry(t *testing.T) {
	l := &List{}
	l.Append(&Entry{Source: AnySource, Bits: 9, Payload: "p"})
	for i := 0; i < 3; i++ {
		if e, _ := l.Match(1, 9); e == nil {
			t.Fatalf("persistent entry vanished on match %d", i)
		}
	}
	if l.Len() != 1 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestListWalkLength(t *testing.T) {
	l := &List{}
	for i := 0; i < 100; i++ {
		l.Append(&Entry{Source: i, Bits: MatchBits(i), Payload: i})
	}
	_, walked := l.Match(99, 99)
	if walked != 100 {
		t.Fatalf("deep match walked %d elements, want 100", walked)
	}
	_, walked = l.Match(0, 0)
	if walked != 1 {
		t.Fatalf("head match walked %d, want 1", walked)
	}
	if _, walked = l.Match(200, 5); walked != 100 {
		t.Fatalf("miss walked %d, want full list", walked)
	}
}

func TestTableSingleLookup(t *testing.T) {
	tab := NewTable()
	tab.Install(0x11FF0011, "win")
	if p, ok := tab.Lookup(0x11FF0011); !ok || p != "win" {
		t.Fatal("lookup failed")
	}
	if _, ok := tab.Lookup(0xDEAD); ok {
		t.Fatal("missing vaddr should miss")
	}
	tab.Remove(0x11FF0011)
	if _, ok := tab.Lookup(0x11FF0011); ok {
		t.Fatal("removed vaddr should miss")
	}
	if tab.Lookups != 3 {
		t.Fatalf("lookups = %d", tab.Lookups)
	}
}

func TestTableFootprint(t *testing.T) {
	tab := NewTable()
	for i := 0; i < 1000; i++ {
		tab.Install(uint64(i), i)
	}
	// The paper's LUT sizing: 24 bytes per entry (§IV-A).
	if got := tab.BytesOnNIC(); got != 24000 {
		t.Fatalf("footprint = %d, want 24000", got)
	}
}

func TestCostModelScaling(t *testing.T) {
	m := DefaultCostModel()
	if m.TableLookupTime() != m.ListMatchTime(2) {
		t.Fatalf("defaults: table %v vs 2-element list %v", m.TableLookupTime(), m.ListMatchTime(2))
	}
	// The paper's point: table cost is flat, list cost grows with depth.
	if m.ListMatchTime(1000) <= m.TableLookupTime() {
		t.Fatal("a deep list walk must cost more than a table lookup")
	}
	if m.ListMatchTime(0) != m.ListMatchTime(1) {
		t.Fatal("a miss on an empty list still costs one element check")
	}
}

// Property: ignore-bit semantics — flipping only ignored bits never
// changes the match result.
func TestIgnoreBitsProperty(t *testing.T) {
	f := func(bits, ignore, noise uint64, src uint8) bool {
		e := &Entry{Source: AnySource, Bits: MatchBits(bits), Ignore: MatchBits(ignore)}
		base := MatchBits(bits)                       // always matches
		noisy := base ^ (MatchBits(noise) & e.Ignore) // perturb ignored bits only
		return e.Matches(int(src), base) && e.Matches(int(src), noisy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: a table lookup hits exactly the installed keys.
func TestTableProperty(t *testing.T) {
	f := func(keys []uint64, probe uint64) bool {
		tab := NewTable()
		set := map[uint64]bool{}
		for _, k := range keys {
			tab.Install(k, k)
			set[k] = true
		}
		_, ok := tab.Lookup(probe)
		return ok == set[probe]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Benchmarks: the software analogues of the two steering designs. The
// table stays flat as postings grow; the list walk scales linearly — the
// §IV-A hardware-complexity argument, measurable.

func BenchmarkTableLookup(b *testing.B) {
	for _, n := range []int{16, 256, 4096, 65536} {
		b.Run(fmt.Sprintf("entries-%d", n), func(b *testing.B) {
			tab := NewTable()
			for i := 0; i < n; i++ {
				tab.Install(uint64(i)*2654435761, i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tab.Lookup(uint64(i%n) * 2654435761)
			}
		})
	}
}

func BenchmarkListMatch(b *testing.B) {
	for _, n := range []int{16, 256, 4096, 65536} {
		b.Run(fmt.Sprintf("entries-%d", n), func(b *testing.B) {
			l := &List{}
			for i := 0; i < n; i++ {
				l.Append(&Entry{Source: i, Bits: MatchBits(i), Payload: i})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				l.Match(i%n, MatchBits(i%n)) // persistent entries: average walk n/2
			}
		})
	}
}
