// Package matchengine models the two receive-side steering designs the
// paper contrasts in §III-A and §IV-A:
//
//   - RVMA's lookup table: "a simple lookup table ... RVMA does not allow
//     wildcards in the lookup, meaning that it always has a single-lookup
//     response (item found or no item found)";
//   - Portals-style list matching: "rich matching based on matching
//     elements that have source network addresses and a special matching
//     tag bit for each posted buffer ... allows wildcards, mask bits for
//     matching tags and then resolves multiple potential matches to a
//     single message by the order in which the potential matches were
//     posted" — MPI matching semantics.
//
// Both are functional here (tests verify MPI-style wildcard/ignore-bit
// semantics) and both expose a hardware cost model so the repository can
// quantify the paper's argument that single-lookup steering is the
// simpler, constant-time unit. Go benchmarks in this package compare the
// software analogues directly.
package matchengine

import "rvma/internal/sim"

// MatchBits is the 64-bit match tag (Portals match_bits).
type MatchBits uint64

// AnySource matches a posting against every source rank.
const AnySource = -1

// Entry is one posted match-list element.
type Entry struct {
	// Source restricts matching to one sender, or AnySource.
	Source int
	// Bits and Ignore implement tag matching: an incoming tag t matches
	// when (t ^ Bits) &^ Ignore == 0 — Ignore's set bits are wildcards.
	Bits   MatchBits
	Ignore MatchBits
	// Payload identifies the posting (a buffer descriptor in hardware).
	Payload any
	// UseOnce removes the entry on first match (Portals PTL_USE_ONCE /
	// MPI receive semantics).
	UseOnce bool

	dead bool
}

// Matches reports whether a message from src with the given tag matches.
func (e *Entry) Matches(src int, tag MatchBits) bool {
	if e.dead {
		return false
	}
	if e.Source != AnySource && e.Source != src {
		return false
	}
	return (tag^e.Bits)&^e.Ignore == 0
}

// List is a Portals-style priority match list: entries are searched in
// posting order, and the first match wins (MPI's posted-receive queue).
type List struct {
	entries []*Entry

	// Searches/Traversed drive the cost model: hardware walks the list
	// element by element until a hit.
	Searches  uint64
	Traversed uint64
}

// Len returns the number of live entries.
func (l *List) Len() int {
	n := 0
	for _, e := range l.entries {
		if !e.dead {
			n++
		}
	}
	return n
}

// Append posts an entry at the tail (lowest priority).
func (l *List) Append(e *Entry) { l.entries = append(l.entries, e) }

// Match finds the first (oldest-posted) entry matching (src, tag),
// removing it if UseOnce. It returns the entry and the number of elements
// traversed, or nil if no entry matches — in which case hardware would
// fall through to an overflow/unexpected path.
func (l *List) Match(src int, tag MatchBits) (*Entry, int) {
	l.Searches++
	walked := 0
	for i, e := range l.entries {
		if e.dead {
			continue
		}
		walked++
		l.Traversed += 1
		if e.Matches(src, tag) {
			if e.UseOnce {
				e.dead = true
				l.compactAt(i)
			}
			return e, walked
		}
	}
	return nil, walked
}

// compactAt trims dead entries when they accumulate at the head so list
// walks stay proportional to live entries.
func (l *List) compactAt(i int) {
	if i == 0 {
		j := 0
		for j < len(l.entries) && l.entries[j].dead {
			j++
		}
		l.entries = l.entries[j:]
	}
}

// CostModel prices the two designs in NIC clock cycles, following the
// paper's qualitative claims: a wildcard-free table resolves in one
// lookup; a match list walks entries (in hardware, possibly several per
// cycle) until the first hit.
type CostModel struct {
	// CycleTime is one NIC clock.
	CycleTime sim.Time
	// TableLookupCycles is the fixed cost of the RVMA LUT lookup.
	TableLookupCycles int
	// ListElementCycles is the per-element cost of a match-list walk.
	ListElementCycles int
}

// DefaultCostModel uses a 1 GHz NIC clock, a 2-cycle table lookup (hash +
// read) and 1 cycle per match-list element — generous to the list.
func DefaultCostModel() CostModel {
	return CostModel{
		CycleTime:         sim.Nanosecond,
		TableLookupCycles: 2,
		ListElementCycles: 1,
	}
}

// TableLookupTime is the modeled RVMA LUT lookup latency — independent of
// table occupancy.
func (m CostModel) TableLookupTime() sim.Time {
	return sim.Time(m.TableLookupCycles) * m.CycleTime
}

// ListMatchTime is the modeled match-list latency for a walk that
// traversed n elements before hitting (or exhausting the list).
func (m CostModel) ListMatchTime(n int) sim.Time {
	if n < 1 {
		n = 1
	}
	return sim.Time(n*m.ListElementCycles) * m.CycleTime
}

// Table is the RVMA-style single-lookup steering structure: a map from
// 64-bit virtual address to payload, no wildcards, no ordering.
type Table struct {
	m map[uint64]any

	Lookups uint64
}

// NewTable returns an empty table.
func NewTable() *Table { return &Table{m: make(map[uint64]any)} }

// Len returns the number of installed entries. The paper sizes each at 24
// bytes of NIC memory (§IV-A).
func (t *Table) Len() int { return len(t.m) }

// BytesOnNIC returns the modeled NIC memory footprint (24 B/entry, §IV-A).
func (t *Table) BytesOnNIC() int { return 24 * len(t.m) }

// Install binds a virtual address to a payload.
func (t *Table) Install(vaddr uint64, payload any) { t.m[vaddr] = payload }

// Remove deletes a binding.
func (t *Table) Remove(vaddr uint64) { delete(t.m, vaddr) }

// Lookup resolves a virtual address: "item found or no item found".
func (t *Table) Lookup(vaddr uint64) (any, bool) {
	t.Lookups++
	p, ok := t.m[vaddr]
	return p, ok
}
