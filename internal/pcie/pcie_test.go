package pcie

import (
	"testing"
	"testing/quick"

	"rvma/internal/sim"
)

func TestGenerations(t *testing.T) {
	g4 := Gen4x16()
	g6 := Gen6x16()
	if g4.Latency != 150*sim.Nanosecond {
		t.Fatalf("Gen4/5 latency = %v, want the paper's 150ns", g4.Latency)
	}
	if g6.Latency >= g4.Latency {
		t.Fatal("Gen6 latency must be lower ('10 of ns vs 200 today')")
	}
	if g6.GBps <= g4.GBps {
		t.Fatal("Gen6 bandwidth must exceed Gen4")
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config should panic")
		}
	}()
	New(Config{Latency: -1, GBps: 1})
}

func TestDoorbellCostsLatencyOnly(t *testing.T) {
	eng := sim.NewEngine(1)
	b := New(Gen4x16())
	var done sim.Time
	eng.Schedule(0, func() {
		b.Transfer(eng, 0, func() { done = eng.Now() })
	})
	eng.Run()
	if done != 150*sim.Nanosecond {
		t.Fatalf("zero-byte transfer completed at %v, want 150ns", done)
	}
	if b.Transactions != 1 || b.Bytes != 0 {
		t.Fatalf("stats: %d transactions, %d bytes", b.Transactions, b.Bytes)
	}
}

func TestTransferBandwidthTerm(t *testing.T) {
	eng := sim.NewEngine(1)
	b := New(Config{Latency: 100 * sim.Nanosecond, GBps: 25})
	var done sim.Time
	eng.Schedule(0, func() {
		// 25 GB/s = 200 Gbit/s; 250,000 bytes = 2,000,000 bits = 10 us.
		b.Transfer(eng, 250000, func() { done = eng.Now() })
	})
	eng.Run()
	want := 10*sim.Microsecond + 100*sim.Nanosecond
	if done != want {
		t.Fatalf("transfer completed at %v, want %v", done, want)
	}
}

func TestBusSerializesTransfers(t *testing.T) {
	eng := sim.NewEngine(1)
	b := New(Config{Latency: 10 * sim.Nanosecond, GBps: 1}) // 8 Gbit/s
	var first, second sim.Time
	eng.Schedule(0, func() {
		b.Transfer(eng, 1000, func() { first = eng.Now() })  // 1us + 10ns
		b.Transfer(eng, 1000, func() { second = eng.Now() }) // queued behind
	})
	eng.Run()
	if first != sim.Microsecond+10*sim.Nanosecond {
		t.Fatalf("first = %v", first)
	}
	if second != 2*sim.Microsecond+10*sim.Nanosecond {
		t.Fatalf("second = %v, want data paths serialized", second)
	}
}

func TestNegativeTransferPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	b := New(Gen4x16())
	defer func() {
		if recover() == nil {
			t.Fatal("negative size should panic")
		}
	}()
	b.Transfer(eng, -1, func() {})
}

// Property: Gen6 always completes a transfer no later than Gen4.
func TestGen6NeverSlowerProperty(t *testing.T) {
	run := func(cfg Config, size int) sim.Time {
		eng := sim.NewEngine(1)
		b := New(cfg)
		var done sim.Time
		eng.Schedule(0, func() { b.Transfer(eng, size, func() { done = eng.Now() }) })
		eng.Run()
		return done
	}
	f := func(sizeRaw uint16) bool {
		size := int(sizeRaw)
		return run(Gen6x16(), size) <= run(Gen4x16(), size)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
