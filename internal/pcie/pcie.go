// Package pcie models the host bus between a NIC and host memory.
//
// The paper makes PCIe latency an explicit, first-class parameter of its
// simulations: "Both models use a PCIe latency of 150ns, meant to balance
// bus latencies between PCIe Gen 4 and Gen 5", and notes that Gen 6 will
// drop round-trip latencies to tens of nanoseconds, shrinking (among other
// things) the penalty for spilling RVMA counters to host memory (§III-B,
// §V-B). This package reproduces that model: a fixed per-transaction
// latency plus a bandwidth term for payload movement.
package pcie

import "rvma/internal/sim"

// Bus is one node's PCIe connection between NIC and host memory. DMA
// transactions serialize on the bus's data path; each also pays the
// generation's fixed latency.
type Bus struct {
	cfg  Config
	data *sim.Resource

	// Stats.
	Transactions uint64
	Bytes        uint64
}

// Config selects the modeled PCIe generation.
type Config struct {
	// Latency is the one-way transaction latency (DLLP+PHY+host path).
	Latency sim.Time
	// GBps is the usable data bandwidth in gigabytes per second.
	GBps float64
}

// Gen4x16 is the paper's baseline: 150 ns latency balancing Gen 4/Gen 5,
// ~25 GB/s usable on x16.
func Gen4x16() Config { return Config{Latency: 150 * sim.Nanosecond, GBps: 25} }

// Gen6x16 is the paper's forward-looking configuration: tens of
// nanoseconds of latency ("10s of ns vs 200 today"), ~100 GB/s usable.
func Gen6x16() Config { return Config{Latency: 20 * sim.Nanosecond, GBps: 100} }

// New returns a bus with the given configuration.
func New(cfg Config) *Bus {
	if cfg.Latency < 0 || cfg.GBps <= 0 {
		panic("pcie: invalid configuration")
	}
	return &Bus{cfg: cfg, data: sim.NewResource("pcie")}
}

// Latency returns the configured per-transaction latency.
func (b *Bus) Latency() sim.Time { return b.cfg.Latency }

// Transfer models moving size bytes across the bus starting now, calling
// done at the simulated completion time. A zero-byte transfer (a doorbell
// or a pure header write) still pays the transaction latency.
func (b *Bus) Transfer(e *sim.Engine, size int, done func()) {
	finish := b.occupy(e, size)
	b.Transactions++
	b.Bytes += uint64(size)
	e.At(finish, done)
}

// TransferTime returns when a transfer of size bytes issued now would
// complete, occupying the bus, without scheduling a callback. NIC models
// use it when they chain several timed steps into one event.
func (b *Bus) TransferTime(e *sim.Engine, size int) sim.Time {
	b.Transactions++
	b.Bytes += uint64(size)
	return b.occupy(e, size)
}

func (b *Bus) occupy(e *sim.Engine, size int) sim.Time {
	if size < 0 {
		panic("pcie: negative transfer size")
	}
	hold := sim.SerializationTime(size, b.cfg.GBps*8) // GB/s -> Gbit/s
	end := b.data.Acquire(e, hold)
	return end + b.cfg.Latency
}

// Utilization reports the data path's busy fraction so far.
func (b *Bus) Utilization(e *sim.Engine) float64 { return b.data.Utilization(e) }

// Backlog returns how long a DMA issued now would wait for the data path —
// the bus's in-flight queue expressed as time. Telemetry samples it as the
// "in-flight DMA" probe.
func (b *Bus) Backlog(e *sim.Engine) sim.Time { return b.data.Backlog(e) }

// BusyTime returns the data path's accumulated occupied time.
func (b *Bus) BusyTime() sim.Time { return b.data.BusyTime() }
