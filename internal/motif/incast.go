package motif

import (
	"fmt"

	"rvma/internal/sim"
)

// IncastConfig parameterizes the many-to-one motif: every rank except the
// server streams Messages messages of MsgBytes to rank 0. This is the
// "many-to-one communication models such as those found in public
// internet client-server situations" the paper's abstract motivates:
// RDMA needs a dedicated negotiated buffer per client held for unbounded
// time, while an RVMA server steers all clients into receiver-managed
// mailboxes.
type IncastConfig struct {
	Messages int
	MsgBytes int
}

// DefaultIncastConfig returns a modest client burst.
func DefaultIncastConfig() IncastConfig {
	return IncastConfig{Messages: 8, MsgBytes: 4096}
}

// RunIncast executes the motif and returns the simulated makespan (server
// consumed every message).
func RunIncast(c *Cluster, cfg IncastConfig) (sim.Time, error) {
	ranks := len(c.Transports)
	if ranks < 2 {
		return 0, fmt.Errorf("incast: need at least 2 ranks")
	}
	if cfg.Messages <= 0 || cfg.MsgBytes <= 0 {
		return 0, fmt.Errorf("incast: non-positive parameter")
	}

	fin := newFinishLine(ranks)

	server := c.Transports[0]
	clients := make([]int, 0, ranks-1)
	for r := 1; r < ranks; r++ {
		clients = append(clients, r)
	}
	srvTag := c.TagFor(0)
	srvTag.Spawn("incast-server", func(p *sim.Process) {
		p.Wait(server.Prepare(clients, nil, cfg.MsgBytes))
		// Consume messages round-robin across clients; per-pair FIFO makes
		// this deterministic regardless of cross-client arrival order.
		for m := 0; m < cfg.Messages; m++ {
			for _, cl := range clients {
				p.Wait(server.Recv(cl, cfg.MsgBytes))
			}
		}
		fin.arrive(0, srvTag.Now())
	})
	for _, cl := range clients {
		tp := c.Transports[cl]
		tag := c.TagFor(cl)
		tag.Spawn(fmt.Sprintf("incast-c%d", cl), func(p *sim.Process) {
			p.Wait(tp.Prepare(nil, []int{0}, cfg.MsgBytes))
			for m := 0; m < cfg.Messages; m++ {
				p.Wait(tp.Send(0, cfg.MsgBytes))
			}
			fin.arrive(cl, tag.Now())
		})
	}
	c.run()
	if !fin.allDone() {
		return 0, fmt.Errorf("incast: deadlock")
	}
	return fin.finishTime(), nil
}
