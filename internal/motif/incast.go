package motif

import (
	"fmt"

	"rvma/internal/sim"
)

// IncastConfig parameterizes the many-to-one motif: every rank except the
// server streams Messages messages of MsgBytes to rank 0. This is the
// "many-to-one communication models such as those found in public
// internet client-server situations" the paper's abstract motivates:
// RDMA needs a dedicated negotiated buffer per client held for unbounded
// time, while an RVMA server steers all clients into receiver-managed
// mailboxes.
type IncastConfig struct {
	Messages int
	MsgBytes int
}

// DefaultIncastConfig returns a modest client burst.
func DefaultIncastConfig() IncastConfig {
	return IncastConfig{Messages: 8, MsgBytes: 4096}
}

// RunIncast executes the motif and returns the simulated makespan (server
// consumed every message).
func RunIncast(c *Cluster, cfg IncastConfig) (sim.Time, error) {
	ranks := len(c.Transports)
	if ranks < 2 {
		return 0, fmt.Errorf("incast: need at least 2 ranks")
	}
	if cfg.Messages <= 0 || cfg.MsgBytes <= 0 {
		return 0, fmt.Errorf("incast: non-positive parameter")
	}

	var finished sim.Time
	done := sim.NewGate(c.Eng, ranks)
	done.Future().OnComplete(func() { finished = c.Eng.Now() })

	server := c.Transports[0]
	clients := make([]int, 0, ranks-1)
	for r := 1; r < ranks; r++ {
		clients = append(clients, r)
	}
	c.Tag.Spawn("incast-server", func(p *sim.Process) {
		p.Wait(server.Prepare(clients, nil, cfg.MsgBytes))
		// Consume messages round-robin across clients; per-pair FIFO makes
		// this deterministic regardless of cross-client arrival order.
		for m := 0; m < cfg.Messages; m++ {
			for _, cl := range clients {
				p.Wait(server.Recv(cl, cfg.MsgBytes))
			}
		}
		done.Arrive(c.Eng)
	})
	for _, cl := range clients {
		tp := c.Transports[cl]
		c.Tag.Spawn(fmt.Sprintf("incast-c%d", cl), func(p *sim.Process) {
			p.Wait(tp.Prepare(nil, []int{0}, cfg.MsgBytes))
			for m := 0; m < cfg.Messages; m++ {
				p.Wait(tp.Send(0, cfg.MsgBytes))
			}
			done.Arrive(c.Eng)
		})
	}
	c.Eng.Run()
	if !done.Future().Done() {
		return 0, fmt.Errorf("incast: deadlock")
	}
	return finished, nil
}
