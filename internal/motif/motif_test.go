package motif

import (
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/sim"
	"rvma/internal/stats"
	"rvma/internal/topology"
)

// smallTopo returns a compact dragonfly for motif tests.
func smallTopo(t *testing.T, nodes int) topology.Topology {
	t.Helper()
	topo, err := topology.ForNodeCount(topology.KindDragonfly, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func runSweep(t *testing.T, kind TransportKind, routing fabric.RoutingMode, nodes int) sim.Time {
	t.Helper()
	topo := smallTopo(t, nodes)
	cfg := DefaultClusterConfig(topo, kind)
	cfg.Routing = routing
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := RunSweep3D(c, DefaultSweep3DConfig(topo.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func runHalo(t *testing.T, kind TransportKind, routing fabric.RoutingMode, nodes int) sim.Time {
	t.Helper()
	topo := smallTopo(t, nodes)
	cfg := DefaultClusterConfig(topo, kind)
	cfg.Routing = routing
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := RunHalo3D(c, DefaultHalo3DConfig(topo.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

func TestSweep3DCompletesAllTransports(t *testing.T) {
	for _, kind := range []TransportKind{KindRVMA, KindRDMA} {
		for _, routing := range []fabric.RoutingMode{fabric.RouteStatic, fabric.RouteAdaptive, fabric.RouteValiant} {
			if tm := runSweep(t, kind, routing, 32); tm <= 0 {
				t.Fatalf("%v/%v: zero makespan", kind, routing)
			}
		}
	}
}

func TestHalo3DCompletesAllTransports(t *testing.T) {
	for _, kind := range []TransportKind{KindRVMA, KindRDMA} {
		for _, routing := range []fabric.RoutingMode{fabric.RouteStatic, fabric.RouteAdaptive} {
			if tm := runHalo(t, kind, routing, 32); tm <= 0 {
				t.Fatalf("%v/%v: zero makespan", kind, routing)
			}
		}
	}
}

func TestIncastCompletes(t *testing.T) {
	for _, kind := range []TransportKind{KindRVMA, KindRDMA} {
		topo := smallTopo(t, 32)
		cfg := DefaultClusterConfig(topo, kind)
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := RunIncast(c, DefaultIncastConfig())
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if tm <= 0 {
			t.Fatalf("%v: zero makespan", kind)
		}
	}
}

// The paper's central Figure 7 claim, in miniature: RVMA beats RDMA on
// Sweep3D under adaptive routing, and the advantage grows with link speed.
func TestSweepRVMABeatsRDMAAdaptive(t *testing.T) {
	speedupAt := func(gbps float64) float64 {
		topo := smallTopo(t, 64)
		times := map[TransportKind]sim.Time{}
		for _, kind := range []TransportKind{KindRVMA, KindRDMA} {
			cfg := DefaultClusterConfig(topo, kind)
			cfg.Routing = fabric.RouteAdaptive
			cfg.ApplyLinkSpeed(gbps)
			c, err := NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			tm, err := RunSweep3D(c, DefaultSweep3DConfig(topo.NumNodes()))
			if err != nil {
				t.Fatal(err)
			}
			times[kind] = tm
		}
		return stats.Speedup(times[KindRDMA].Seconds(), times[KindRVMA].Seconds())
	}
	slow := speedupAt(100)
	fast := speedupAt(2000)
	if slow <= 1.1 {
		t.Fatalf("speedup at 100G = %.2f, want RVMA clearly ahead", slow)
	}
	if fast <= slow {
		t.Fatalf("speedup must grow with link speed: %.2f @100G vs %.2f @2T", slow, fast)
	}
	if fast < 2 {
		t.Fatalf("speedup at 2T = %.2f, want >= 2x (paper: 4.4x at scale)", fast)
	}
}

// Halo3D: RVMA also wins, by a smaller factor (paper Figure 8).
func TestHaloRVMABeatsRDMA(t *testing.T) {
	rv := runHalo(t, KindRVMA, fabric.RouteAdaptive, 64)
	rd := runHalo(t, KindRDMA, fabric.RouteAdaptive, 64)
	sp := stats.Speedup(rd.Seconds(), rv.Seconds())
	if sp <= 1.0 {
		t.Fatalf("halo speedup = %.2f, want > 1", sp)
	}
	swRv := runSweep(t, KindRVMA, fabric.RouteAdaptive, 64)
	swRd := runSweep(t, KindRDMA, fabric.RouteAdaptive, 64)
	if stats.Speedup(swRd.Seconds(), swRv.Seconds()) <= sp {
		t.Fatalf("latency-bound sweep3d should benefit more than bandwidth-bound halo3d")
	}
}

// Determinism: identical configuration and seed reproduce identical
// makespans — the property a discrete-event simulation must keep.
func TestMotifDeterminism(t *testing.T) {
	a := runSweep(t, KindRVMA, fabric.RouteAdaptive, 32)
	b := runSweep(t, KindRVMA, fabric.RouteAdaptive, 32)
	if a != b {
		t.Fatalf("same seed produced %v then %v", a, b)
	}
}

// Different seeds may differ (adaptive tie-breaks), but must still finish.
func TestMotifSeedVariation(t *testing.T) {
	topo := smallTopo(t, 32)
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := DefaultClusterConfig(topo, KindRVMA)
		cfg.Seed = seed
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunSweep3D(c, DefaultSweep3DConfig(topo.NumNodes())); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestRDMAMoreBuffersHelps(t *testing.T) {
	topo := smallTopo(t, 64)
	run := func(bufs int) sim.Time {
		cfg := DefaultClusterConfig(topo, KindRDMA)
		cfg.RDMABuffers = bufs
		cfg.ApplyLinkSpeed(400)
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tm, err := RunSweep3D(c, DefaultSweep3DConfig(topo.NumNodes()))
		if err != nil {
			t.Fatal(err)
		}
		return tm
	}
	one, four := run(1), run(4)
	if four >= one {
		t.Fatalf("deeper credit pipelining should help RDMA: 1buf=%v 4buf=%v", one, four)
	}
	// But it must not erase RVMA's advantage (the completion send remains).
	cfg := DefaultClusterConfig(topo, KindRVMA)
	cfg.ApplyLinkSpeed(400)
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := RunSweep3D(c, DefaultSweep3DConfig(topo.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	if rv >= four {
		t.Fatalf("RVMA (%v) should still beat 4-buffer RDMA (%v)", rv, four)
	}
}

func TestSweepConfigValidation(t *testing.T) {
	cfg := DefaultSweep3DConfig(16)
	if err := cfg.Validate(16); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(15); err == nil {
		t.Fatal("grid/rank mismatch should fail")
	}
	bad := cfg
	bad.KBA = 7 // does not divide Nz=64
	if err := bad.Validate(16); err == nil {
		t.Fatal("non-dividing KBA should fail")
	}
	bad = cfg
	bad.Vars = 0
	if err := bad.Validate(16); err == nil {
		t.Fatal("zero vars should fail")
	}
}

func TestHaloConfigValidation(t *testing.T) {
	cfg := DefaultHalo3DConfig(27)
	if cfg.Px*cfg.Py*cfg.Pz != 27 {
		t.Fatalf("cubest(27) gave %dx%dx%d", cfg.Px, cfg.Py, cfg.Pz)
	}
	if err := cfg.Validate(27); err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(26); err == nil {
		t.Fatal("mismatch should fail")
	}
}

func TestIncastConfigValidation(t *testing.T) {
	topo := topology.NewSingleSwitch(1)
	cfg := DefaultClusterConfig(topo, KindRVMA)
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunIncast(c, DefaultIncastConfig()); err == nil {
		t.Fatal("single-node incast should fail")
	}
}

func TestSquarestAndCubest(t *testing.T) {
	if a, b := squarest(72); a*b != 72 || a > b {
		t.Fatalf("squarest(72) = %d,%d", a, b)
	}
	if a, b := squarest(64); a != 8 || b != 8 {
		t.Fatalf("squarest(64) = %d,%d", a, b)
	}
	if a, b, c := cubest(64); a != 4 || b != 4 || c != 4 {
		t.Fatalf("cubest(64) = %d,%d,%d", a, b, c)
	}
	if a, b, c := cubest(30); a*b*c != 30 {
		t.Fatalf("cubest(30) = %d,%d,%d", a, b, c)
	}
}

func TestApplyLinkSpeedScalesSubstrate(t *testing.T) {
	topo := topology.NewSingleSwitch(2)
	cfg := DefaultClusterConfig(topo, KindRVMA)
	baseProc := cfg.NIC.RecvPacketProc
	cfg.ApplyLinkSpeed(2000)
	if cfg.Fabric.LinkGbps != 2000 {
		t.Fatal("link speed not applied")
	}
	if cfg.NIC.RecvPacketProc >= baseProc {
		t.Fatal("NIC pipeline must speed up with the link")
	}
	if cfg.PCIe.GBps < 2000/8*1.5 {
		t.Fatalf("bus bandwidth %v GB/s cannot feed a 2Tbps link", cfg.PCIe.GBps)
	}
}

func TestApplyLinkSpeedInvalidPanics(t *testing.T) {
	cfg := DefaultClusterConfig(topology.NewSingleSwitch(2), KindRVMA)
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive speed should panic")
		}
	}()
	cfg.ApplyLinkSpeed(0)
}
