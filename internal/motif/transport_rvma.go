package motif

import (
	"fmt"

	"rvma/internal/rvma"
	"rvma/internal/sim"
)

// rvmaTransport maps each in-neighbor to one mailbox (virtual address =
// the sender's rank), configured as an EPOCH_OPS window with threshold 1:
// the number of operations per message is known a priori (exactly one),
// which is the case the paper's Sweep3D analysis highlights — "the number
// of expected incoming operations is known a priori" (§V-B1).
//
// The transport keeps `depth` buffers posted per mailbox and reposts on
// every completion, which is precisely the pattern RVMA_Win_get_epoch is
// designed for ("system software may want to guarantee that a constant
// number of buffers are always posted", §III-C). Senders never wait for
// anything: receiver-managed buffering removes all per-message
// coordination.
type rvmaTransport struct {
	ep    *rvma.Endpoint
	ranks int
	depth int
	boxes map[int]*mailboxState
}

// mailboxState tracks one in-neighbor's window and its consumption queue.
type mailboxState struct {
	win *rvma.Window
	// available counts completed-but-unconsumed messages; waiters are
	// Recv futures waiting for the next completion, FIFO.
	available int
	waiters   []*sim.Future
	maxMsg    int
}

func newRVMATransport(ep *rvma.Endpoint, ranks, depth int) *rvmaTransport {
	return &rvmaTransport{ep: ep, ranks: ranks, depth: depth, boxes: make(map[int]*mailboxState)}
}

// Rank implements Transport.
func (t *rvmaTransport) Rank() int { return t.ep.Node() }

// Ranks implements Transport.
func (t *rvmaTransport) Ranks() int { return t.ranks }

// Prepare implements Transport: create one window per in-neighbor and
// keep `depth` buffers posted. RVMA senders need no preparation at all —
// that is the point of virtual addressing.
func (t *rvmaTransport) Prepare(inPeers, outPeers []int, maxMsg int) *sim.Future {
	f := sim.NewFuture()
	for _, src := range inPeers {
		if _, ok := t.boxes[src]; ok {
			continue
		}
		win, err := t.ep.InitWindow(rvma.VAddr(src), 1, rvma.EpochOps)
		if err != nil {
			panic(fmt.Sprintf("motif: rank %d window for src %d: %v", t.Rank(), src, err))
		}
		box := &mailboxState{win: win, maxMsg: maxMsg}
		t.boxes[src] = box
		for i := 0; i < t.depth; i++ {
			t.postOne(box)
		}
		// Observe every epoch completion: repost a buffer to keep the
		// posted depth constant, then hand the message to a waiting Recv
		// (or bank it). SetCompletionHandler cannot miss back-to-back
		// completions, unlike re-arming one-shot waiters.
		win.SetCompletionHandler(func(*rvma.Buffer) {
			t.postOne(box)
			if len(box.waiters) > 0 {
				w := box.waiters[0]
				box.waiters = box.waiters[1:]
				w.Complete(t.ep.Engine(), nil)
			} else {
				box.available++
			}
		})
	}
	f.Complete(t.ep.Engine(), nil)
	return f
}

// postOne posts a fresh buffer to the mailbox.
func (t *rvmaTransport) postOne(box *mailboxState) {
	if _, err := box.win.PostBuffer(box.maxMsg); err != nil {
		panic(fmt.Sprintf("motif: rank %d post: %v", t.Rank(), err))
	}
}

// Send implements Transport: a bare put to the receiver's mailbox for this
// sender's rank. No credit, no handshake, no completion message. If the
// receiver's mailbox is momentarily out of posted buffers the put is
// NACKed (§III-C) and the initiator retries after a backoff — the
// receiver stays in control of its resources, and a temporarily
// overwhelmed mailbox costs the *sender* time rather than wedging the
// receiver.
func (t *rvmaTransport) Send(dst, size int) *sim.Future {
	op := t.ep.PutN(dst, rvma.VAddr(t.Rank()), 0, size)
	t.retryOnNack(op, dst, size)
	return op.Local
}

// retryOnNack arms a single retry for a NACKed put; retries rearm.
func (t *rvmaTransport) retryOnNack(op *rvma.PutOp, dst, size int) {
	op.Nack.OnComplete(func() {
		eng := t.ep.Engine()
		backoff := eng.RNG().Jitter(2*sim.Microsecond, 0.5)
		eng.Schedule(backoff, func() {
			retry := t.ep.PutN(dst, rvma.VAddr(t.Rank()), 0, size)
			t.retryOnNack(retry, dst, size)
		})
	})
}

// Recv implements Transport: consume the next completed epoch on the
// mailbox for src. The completion was observed by the host through the
// buffer's completion pointer (the NextCompletion future resolves at the
// NIC's cell write); consuming an already-banked completion is free.
func (t *rvmaTransport) Recv(src, size int) *sim.Future {
	box := t.boxes[src]
	if box == nil {
		panic(fmt.Sprintf("motif: rank %d Recv from unprepared src %d", t.Rank(), src))
	}
	if size > box.maxMsg {
		panic(fmt.Sprintf("motif: rank %d Recv size %d exceeds prepared max %d", t.Rank(), size, box.maxMsg))
	}
	f := sim.NewFuture()
	if box.available > 0 {
		box.available--
		f.Complete(t.ep.Engine(), nil)
		return f
	}
	box.waiters = append(box.waiters, f)
	return f
}
