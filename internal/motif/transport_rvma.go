package motif

import (
	"fmt"

	"rvma/internal/recovery"
	"rvma/internal/rvma"
	"rvma/internal/sim"
)

// rvmaTransport maps each in-neighbor to one mailbox (virtual address =
// the sender's rank), configured as an EPOCH_OPS window with threshold 1:
// the number of operations per message is known a priori (exactly one),
// which is the case the paper's Sweep3D analysis highlights — "the number
// of expected incoming operations is known a priori" (§V-B1).
//
// The transport keeps `depth` buffers posted per mailbox and reposts on
// every completion, which is precisely the pattern RVMA_Win_get_epoch is
// designed for ("system software may want to guarantee that a constant
// number of buffers are always posted", §III-C). Senders never wait for
// anything: receiver-managed buffering removes all per-message
// coordination.
type rvmaTransport struct {
	ep    *rvma.Endpoint
	ranks int
	depth int
	boxes map[int]*mailboxState
	// rec, when non-nil, puts every Send under the recovery layer's
	// timeout/retransmit policy (acked puts instead of fire-and-forget)
	// and arms receiver-side window guards on Recv.
	rec *recovery.Manager
	// rng, when non-nil, supplies NACK-retry backoff from a rank-private
	// stream instead of the engine's shared stream, so the backoff sequence
	// depends only on this rank's own NACKs and survives resharding.
	rng *sim.RNG
}

// mailboxState tracks one in-neighbor's window and its consumption queue.
type mailboxState struct {
	win *rvma.Window
	// guard reclaims holed buffers past the sender's retry horizon
	// (non-nil only under recovery).
	guard *recovery.WindowGuard
	// available counts completed-but-unconsumed messages; waiters are
	// Recv futures waiting for the next completion, FIFO.
	available int
	waiters   []*sim.Future
	maxMsg    int
}

func newRVMATransport(ep *rvma.Endpoint, ranks, depth int, rec *recovery.Manager) *rvmaTransport {
	return &rvmaTransport{ep: ep, ranks: ranks, depth: depth, boxes: make(map[int]*mailboxState), rec: rec}
}

// Rank implements Transport.
func (t *rvmaTransport) Rank() int { return t.ep.Node() }

// Ranks implements Transport.
func (t *rvmaTransport) Ranks() int { return t.ranks }

// Prepare implements Transport: create one window per in-neighbor and
// keep `depth` buffers posted. RVMA senders need no preparation at all —
// that is the point of virtual addressing.
func (t *rvmaTransport) Prepare(inPeers, outPeers []int, maxMsg int) *sim.Future {
	f := sim.NewFuture()
	for _, src := range inPeers {
		if _, ok := t.boxes[src]; ok {
			continue
		}
		win, err := t.ep.InitWindow(rvma.VAddr(src), 1, rvma.EpochOps)
		if err != nil {
			panic(fmt.Sprintf("motif: rank %d window for src %d: %v", t.Rank(), src, err))
		}
		box := &mailboxState{win: win, maxMsg: maxMsg}
		if t.rec != nil {
			box.guard = t.rec.GuardWindow(win)
		}
		t.boxes[src] = box
		for i := 0; i < t.depth; i++ {
			t.postOne(box)
		}
		// Observe every epoch completion: repost a buffer to keep the
		// posted depth constant, then hand the message to a waiting Recv
		// (or bank it). SetCompletionHandler cannot miss back-to-back
		// completions, unlike re-arming one-shot waiters.
		win.SetCompletionHandler(func(b *rvma.Buffer) {
			t.postOne(box)
			if b.Count < win.Threshold() {
				// A guard reclaim (IncEpoch on a holed buffer): the buffer
				// was salvaged and reposted, but no message completed, so
				// there is nothing to deliver to a Recv.
				return
			}
			if len(box.waiters) > 0 {
				w := box.waiters[0]
				box.waiters = box.waiters[1:]
				w.Complete(t.ep.Engine(), nil)
			} else {
				box.available++
			}
		})
	}
	f.Complete(t.ep.Engine(), nil)
	return f
}

// postOne posts a fresh buffer to the mailbox.
func (t *rvmaTransport) postOne(box *mailboxState) {
	if _, err := box.win.PostBuffer(box.maxMsg); err != nil {
		panic(fmt.Sprintf("motif: rank %d post: %v", t.Rank(), err))
	}
}

// Send implements Transport: a bare put to the receiver's mailbox for this
// sender's rank. No credit, no handshake, no completion message. If the
// receiver's mailbox is momentarily out of posted buffers the put is
// NACKed (§III-C) and the initiator retries after a backoff — the
// receiver stays in control of its resources, and a temporarily
// overwhelmed mailbox costs the *sender* time rather than wedging the
// receiver.
func (t *rvmaTransport) Send(dst, size int) *sim.Future {
	if t.rec != nil {
		return t.sendReliable(dst, size)
	}
	op := t.ep.PutN(dst, rvma.VAddr(t.Rank()), 0, size)
	t.retryOnNack(op, dst, size)
	return op.Local
}

// sendReliable puts the message under the recovery layer: an acked put
// whose NACKs (closed mailbox, no posted buffer) and ack timeouts both
// feed the same bounded-backoff retransmit loop. The returned future
// keeps Send's local-completion semantics — it resolves when the first
// attempt leaves the NIC, not at the ack.
func (t *rvmaTransport) sendReliable(dst, size int) *sim.Future {
	eng := t.ep.Engine()
	local := sim.NewFuture()
	var rp *rvma.ReliablePut
	t.rec.Run(func(try int) recovery.Attempt {
		var at *rvma.PutAttempt
		if try == 0 {
			rp, at = t.ep.PutNAcked(dst, rvma.VAddr(t.Rank()), 0, size)
			at.Local.OnComplete(func() {
				if !local.Done() {
					local.Complete(eng, nil)
				}
			})
		} else {
			at = t.ep.Retransmit(rp)
		}
		return recovery.Attempt{Acked: at.Acked, Nack: at.Nack}
	}, func() { t.ep.AbandonPut(rp) })
	return local
}

// retryOnNack arms a single retry for a NACKed put; retries rearm.
func (t *rvmaTransport) retryOnNack(op *rvma.PutOp, dst, size int) {
	op.Nack.OnComplete(func() {
		eng := t.ep.Engine().Tag("motif")
		rng := t.rng
		if rng == nil {
			rng = eng.RNG()
		}
		backoff := rng.Jitter(2*sim.Microsecond, 0.5)
		eng.Schedule(backoff, func() {
			retry := t.ep.PutN(dst, rvma.VAddr(t.Rank()), 0, size)
			t.retryOnNack(retry, dst, size)
		})
	})
}

// Recv implements Transport: consume the next completed epoch on the
// mailbox for src. The completion was observed by the host through the
// buffer's completion pointer (the NextCompletion future resolves at the
// NIC's cell write); consuming an already-banked completion is free.
func (t *rvmaTransport) Recv(src, size int) *sim.Future {
	box := t.boxes[src]
	if box == nil {
		panic(fmt.Sprintf("motif: rank %d Recv from unprepared src %d", t.Rank(), src))
	}
	if size > box.maxMsg {
		panic(fmt.Sprintf("motif: rank %d Recv size %d exceeds prepared max %d", t.Rank(), size, box.maxMsg))
	}
	if box.guard != nil {
		// Every expected message arms one reclaim deadline for the epoch
		// open right now; epochs that complete in time make it a no-op.
		box.guard.Expect()
	}
	f := sim.NewFuture()
	if box.available > 0 {
		box.available--
		f.Complete(t.ep.Engine(), nil)
		return f
	}
	box.waiters = append(box.waiters, f)
	return f
}
