package motif

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"rvma/internal/metrics"
	"rvma/internal/topology"
	"rvma/internal/trace"
)

// runInstrumented runs a small Sweep3D under the given transport with a
// fully enabled registry attached and returns the registry.
func runInstrumented(t *testing.T, kind TransportKind) (*Cluster, *metrics.Registry) {
	t.Helper()
	topo, err := topology.ForNodeCount(topology.KindSingleSwitch, 8)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClusterConfig(topo, kind)
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	reg.EnableSpans()
	reg.EnableTimeline(0)
	c.SetMetrics(reg)
	if _, err := RunSweep3D(c, DefaultSweep3DConfig(topo.NumNodes())); err != nil {
		t.Fatal(err)
	}
	return c, reg
}

// TestInstrumentedMotifSpans is the acceptance check for the span layer:
// both transports must populate per-stage latency histograms, and the
// printed breakdown must carry the stages.
func TestInstrumentedMotifSpans(t *testing.T) {
	cases := []struct {
		kind   TransportKind
		stages []string
	}{
		{KindRVMA, []string{
			"span.rvma.put/host_post", "span.rvma.put/nic_tx",
			"span.rvma.put/wire", "span.rvma.put/place",
			"span.rvma.put/complete", "span.rvma.put/total",
		}},
		{KindRDMA, []string{
			"span.rdma.put/host_post", "span.rdma.put/nic_tx",
			"span.rdma.put/wire", "span.rdma.put/place",
			"span.rdma.put/total",
			"span.rdma.handshake/total", "span.rdma.registration/total",
			"span.rdma.put/fence_hold",
		}},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			_, reg := runInstrumented(t, tc.kind)
			for _, name := range tc.stages {
				h := reg.Histogram(name)
				if h.Count() == 0 {
					t.Errorf("histogram %q empty, want samples", name)
				}
				if h.Quantile(0.99) < h.Quantile(0.5) {
					t.Errorf("%q: p99 %v < p50 %v", name, h.Quantile(0.99), h.Quantile(0.5))
				}
			}
			if open := reg.OpenSpans(); open != 0 {
				t.Errorf("spans still open after run: %d", open)
			}
			var sb strings.Builder
			reg.FprintSpans(&sb)
			out := sb.String()
			for _, want := range []string{"stage", "count", "mean", "p50", "p99"} {
				if !strings.Contains(out, want) {
					t.Fatalf("span table missing %q:\n%s", want, out)
				}
			}
		})
	}
}

// TestInstrumentedMotifPerfetto asserts the -perfetto-out acceptance
// criterion: the timeline export is valid trace-event JSON with a
// non-empty traceEvents array.
func TestInstrumentedMotifPerfetto(t *testing.T) {
	for _, kind := range []TransportKind{KindRVMA, KindRDMA} {
		t.Run(kind.String(), func(t *testing.T) {
			_, reg := runInstrumented(t, kind)
			var buf bytes.Buffer
			if err := reg.Timeline().WritePerfetto(&buf); err != nil {
				t.Fatal(err)
			}
			var f struct {
				TraceEvents []struct {
					Name string  `json:"name"`
					Ph   string  `json:"ph"`
					TS   float64 `json:"ts"`
					PID  int     `json:"pid"`
				} `json:"traceEvents"`
				DisplayTimeUnit string `json:"displayTimeUnit"`
			}
			if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
				t.Fatalf("perfetto output is not valid JSON: %v", err)
			}
			if len(f.TraceEvents) == 0 {
				t.Fatal("traceEvents is empty")
			}
			slices := 0
			for _, ev := range f.TraceEvents {
				if ev.Ph == "X" {
					slices++
				}
			}
			if slices == 0 {
				t.Fatal("no complete ('X') slices in timeline")
			}
		})
	}
}

// TestInstrumentedMotifJSONSnapshot asserts the -metrics-out path: the
// snapshot parses and carries fabric, NIC and protocol metrics.
func TestInstrumentedMotifJSONSnapshot(t *testing.T) {
	c, reg := runInstrumented(t, KindRVMA)
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf, c.Eng.Now()); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]uint64         `json:"counters"`
		Gauges     map[string]map[string]any `json:"gauges"`
		Histograms map[string]map[string]any `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("metrics snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["nic.messages_sent"] == 0 {
		t.Error("nic.messages_sent counter empty")
	}
	if _, ok := snap.Histograms["fabric.packet_latency_ns"]; !ok {
		t.Error("fabric.packet_latency_ns histogram missing")
	}
	if _, ok := snap.Gauges["sim.events_executed"]; !ok {
		t.Error("sim.events_executed gauge missing (cluster collector not attached)")
	}
}

// TestClusterSetTracer checks the cmd/rvmasim -trace wiring target: one
// tracer attached at cluster level sees fabric, NIC and protocol events.
func TestClusterSetTracer(t *testing.T) {
	topo, err := topology.ForNodeCount(topology.KindSingleSwitch, 8)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(DefaultClusterConfig(topo, KindRVMA))
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(c.Eng, 64)
	tr.EnableAll()
	c.SetTracer(tr)
	if _, err := RunSweep3D(c, DefaultSweep3DConfig(topo.NumNodes())); err != nil {
		t.Fatal(err)
	}
	seen := map[trace.Category]bool{}
	for _, ev := range tr.Events() {
		seen[ev.Cat] = true
	}
	if !seen[trace.CatNIC] {
		t.Error("no CatNIC events recorded through cluster tracer")
	}
	if tr.Counter("fabric.packets_delivered") == 0 && !seen[trace.CatPacket] {
		t.Error("no fabric activity visible through cluster tracer")
	}
}
