package motif

import (
	"fmt"
	"sort"

	"rvma/internal/rdma"
	"rvma/internal/recovery"
	"rvma/internal/sim"
)

// creditQP is the control queue pair carrying buffer-reuse credits.
const creditQP = 1

// rdmaTransport is the baseline: each (sender, receiver) pair negotiates a
// fixed set of buffers up front (Figure 1) and then must coordinate every
// reuse. A sender holds one credit per negotiated buffer; each message
// consumes a credit, and the receiver returns it (a 1-byte control send)
// once the message has been consumed. Completion at the receiver follows
// the routing mode: cumulative last-byte polling under static routing, or
// the trailing send/recv fence under adaptive routing.
//
// This is the "tight coordination" the paper's Sweep3D discussion blames
// for RDMA's slowdown: where RVMA's receiver-managed mailboxes let a
// sender "simply send the data when it is available", the RDMA sender
// must interlock with the receiver on every buffer reuse, and on adaptive
// networks every message drags a completion send behind it (§V-B1).
type rdmaTransport struct {
	ep    *rdma.Endpoint
	ranks int
	// ordered reports whether the network preserves byte order (static
	// routing), enabling last-byte completion; otherwise every put drags
	// a send/recv fence.
	ordered bool
	nbufs   int
	out     map[int]*sendState
	in      map[int]*recvState
	// rec, when non-nil, puts the handshake, every data put, the fence
	// send and every credit return under the recovery layer's
	// timeout/retransmit policy, riding the protocol's own opPutAck path.
	rec *recovery.Manager
}

// sendState is the per-destination sender bookkeeping.
type sendState struct {
	dst     int
	ready   bool // handshakes finished
	bufs    []rdma.RemoteBuffer
	rr      int // round-robin buffer cursor
	credits int
	queue   []*sendReq
}

type sendReq struct {
	size int
	done *sim.Future
}

// recvState is the per-source receiver bookkeeping.
type recvState struct {
	src      int
	consumed uint64 // cumulative bytes of consumed messages (WaitBytes target)
	pending  []*sim.Future
}

func newRDMATransport(ep *rdma.Endpoint, ranks int, ordered bool, nbufs int, rec *recovery.Manager) *rdmaTransport {
	return &rdmaTransport{
		ep:      ep,
		ranks:   ranks,
		ordered: ordered,
		nbufs:   nbufs,
		out:     make(map[int]*sendState),
		in:      make(map[int]*recvState),
		rec:     rec,
	}
}

// Rank implements Transport.
func (t *rdmaTransport) Rank() int { return t.ep.Node() }

// Ranks implements Transport.
func (t *rdmaTransport) Ranks() int { return t.ranks }

// Prepare implements Transport: run the Figure 1 handshake for every
// out-neighbor (nbufs buffers each) before any data can move — the setup
// RVMA does not have. In-neighbors need only local state.
func (t *rdmaTransport) Prepare(inPeers, outPeers []int, maxMsg int) *sim.Future {
	for _, src := range inPeers {
		if _, ok := t.in[src]; !ok {
			t.in[src] = &recvState{src: src}
		}
	}
	eng := t.ep.Engine()
	f := sim.NewFuture()
	remaining := 0
	for _, dst := range outPeers {
		if _, ok := t.out[dst]; ok {
			continue
		}
		st := &sendState{dst: dst, credits: t.nbufs}
		t.out[dst] = st
		for i := 0; i < t.nbufs; i++ {
			remaining++
			hs := t.handshake(dst, maxMsg)
			hs.OnComplete(func() {
				st.bufs = append(st.bufs, hs.Value().(rdma.RemoteBuffer))
				remaining--
				if remaining == 0 {
					// Drain in sorted-destination order: drain schedules
					// wire events, and map-range order would make the event
					// sequence (and thus tie-breaking downstream) depend on
					// Go's map iteration randomization.
					dsts := make([]int, 0, len(t.out))
					for d, s2 := range t.out {
						s2.ready = true
						dsts = append(dsts, d)
					}
					sort.Ints(dsts)
					f.Complete(eng, nil)
					for _, d := range dsts {
						t.drain(t.out[d])
					}
				}
			})
		}
	}
	if remaining == 0 {
		f.Complete(eng, nil)
	}
	return f
}

// handshake runs one Figure 1 buffer negotiation, retried under the
// recovery policy when enabled: a timed-out request is simply reissued
// with a fresh message id. If the *reply* (not the request) was lost, the
// retry makes the target register a second buffer and the first leaks —
// the stale-registration garbage a real system would clean up out of
// band, harmless here.
func (t *rdmaTransport) handshake(dst, size int) *sim.Future {
	if t.rec == nil {
		return t.ep.RequestRemoteBuffer(dst, size).Done
	}
	eng := t.ep.Engine()
	done := sim.NewFuture()
	t.rec.Run(func(try int) recovery.Attempt {
		op := t.ep.RequestRemoteBuffer(dst, size)
		op.Done.OnComplete(func() {
			if !done.Done() {
				done.Complete(eng, op.Done.Value())
			}
		})
		return recovery.Attempt{Acked: op.Done}
	}, nil)
	return done
}

// Send implements Transport: queue the message; it goes to the wire when
// a negotiated buffer credit is available.
func (t *rdmaTransport) Send(dst, size int) *sim.Future {
	st := t.out[dst]
	if st == nil {
		panic(fmt.Sprintf("motif: rank %d Send to unprepared dst %d", t.Rank(), dst))
	}
	req := &sendReq{size: size, done: sim.NewFuture()}
	st.queue = append(st.queue, req)
	t.drain(st)
	return req.done
}

// drain issues queued sends while credits last.
func (t *rdmaTransport) drain(st *sendState) {
	for st.ready && st.credits > 0 && len(st.queue) > 0 {
		req := st.queue[0]
		st.queue = st.queue[1:]
		st.credits--
		rb := st.bufs[st.rr]
		st.rr = (st.rr + 1) % len(st.bufs)

		if t.rec != nil {
			t.sendReliable(st, rb, req)
		} else {
			scheme := rdma.CompleteSendRecv
			if t.ordered {
				scheme = rdma.CompleteNone // receiver uses cumulative last-byte polling
			}
			op := t.ep.PutN(rb, 0, req.size, scheme)
			done := req.done
			op.Local.OnComplete(func() { done.Complete(t.ep.Engine(), nil) })
		}

		// Arm the credit return for this buffer.
		credit := t.ep.PostRecv(st.dst, creditQP)
		credit.Done.OnComplete(func() {
			st.credits++
			t.drain(st)
		})
	}
}

// sendReliable issues one message under the recovery layer: an acked put,
// plus (under adaptive routing) the trailing fence send the completion
// scheme requires — itself acked and retried, with the fence ledger
// captured once so retransmits wait for exactly the bytes the original
// did. The put and the fence recover independently; the receiver's dedup
// guarantees neither double-counts bytes nor double-delivers the fence.
func (t *rdmaTransport) sendReliable(st *sendState, rb rdma.RemoteBuffer, req *sendReq) {
	eng := t.ep.Engine()
	var rp *rdma.ReliablePut
	t.rec.Run(func(try int) recovery.Attempt {
		var at *rdma.Attempt
		if try == 0 {
			rp, at = t.ep.PutNReliable(rb, 0, req.size)
			done := req.done
			at.Local.OnComplete(func() {
				if !done.Done() {
					done.Complete(eng, nil)
				}
			})
		} else {
			at = t.ep.RetransmitPut(rp)
		}
		return recovery.Attempt{Acked: at.Acked}
	}, func() { t.ep.AbandonReliable(rp.MsgID()) })
	if !t.ordered {
		t.reliableSend(st.dst, rdma.FenceQP)
	}
}

// reliableSend issues a 1-byte control send (fence or credit) under the
// recovery policy.
func (t *rdmaTransport) reliableSend(dst, qp int) {
	var rs *rdma.ReliableSend
	t.rec.Run(func(try int) recovery.Attempt {
		var at *rdma.Attempt
		if try == 0 {
			rs, at = t.ep.SendReliable(dst, qp, 1)
		} else {
			at = t.ep.RetransmitSend(rs)
		}
		return recovery.Attempt{Acked: at.Acked}
	}, func() { t.ep.AbandonReliable(rs.MsgID()) })
}

// Recv implements Transport: observe the next message from src per the
// kind's completion scheme, then return the buffer credit.
func (t *rdmaTransport) Recv(src, size int) *sim.Future {
	st := t.in[src]
	if st == nil {
		panic(fmt.Sprintf("motif: rank %d Recv from unprepared src %d", t.Rank(), src))
	}
	var completed *sim.Future
	if t.ordered {
		st.consumed += uint64(size)
		completed = t.ep.WaitBytes(src, st.consumed)
	} else {
		completed = t.ep.PostRecv(src, rdma.FenceQP).Done
	}
	f := sim.NewFuture()
	eng := t.ep.Engine()
	completed.OnComplete(func() {
		// Message consumed: hand the buffer back to the sender. A lost
		// credit wedges the sender forever, so under recovery it is acked
		// and retried like any data message.
		if t.rec != nil {
			t.reliableSend(src, creditQP)
		} else {
			t.ep.Send(src, creditQP, 1)
		}
		f.Complete(eng, nil)
	})
	return f
}
