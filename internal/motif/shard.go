// Sharded cluster support: placement-aware spawning, per-shard metric
// registries with an exact post-run merge, and the shard-set telemetry
// registration that mirrors RegisterTelemetry column for column. The rule
// throughout is single-writer state: every probe and every handle is owned
// by the shard that owns the node, and aggregation happens either in
// integer arithmetic (order-free) or after the group is quiescent.
package motif

import (
	"fmt"

	"rvma/internal/metrics"
	"rvma/internal/sim"
	"rvma/internal/telemetry"
)

// TagFor returns the "motif" handle bound to the engine that owns rank's
// node. Rank processes must spawn through it so their events execute
// inside the owning shard's windows; in legacy mode it is simply Tag.
func (c *Cluster) TagFor(rank int) sim.Tagged {
	if c.Group == nil {
		return c.Tag
	}
	return c.Tags[c.Net.NodeShard(rank)]
}

// run executes the simulation to completion in whichever mode the cluster
// was built for.
func (c *Cluster) run() {
	if c.Group != nil {
		c.Group.Run()
		return
	}
	c.Eng.Run()
}

// EventsExecuted returns the executed-event count across the whole
// simulation, whichever mode it ran in.
func (c *Cluster) EventsExecuted() uint64 {
	if c.Group != nil {
		return c.Group.TotalExecuted()
	}
	return c.Eng.EventsExecuted()
}

// finishLine replaces a completion Gate for motif jobs: each rank records
// its completion time in its own slot (single-writer, so ranks on
// different shards never touch shared state), and the job's finish time is
// the maximum, read after the run when every shard is quiescent. Both
// arrive and the reads are synchronous bookkeeping — no events — so using
// it on a single heap leaves the event stream exactly as a Gate did.
type finishLine struct {
	done []bool
	at   []sim.Time
}

func newFinishLine(ranks int) *finishLine {
	return &finishLine{done: make([]bool, ranks), at: make([]sim.Time, ranks)}
}

// arrive records rank's completion at its engine's current time.
func (f *finishLine) arrive(rank int, now sim.Time) {
	f.done[rank] = true
	f.at[rank] = now
}

// allDone reports whether every rank arrived; false after a run means the
// motif deadlocked.
func (f *finishLine) allDone() bool {
	for _, d := range f.done {
		if !d {
			return false
		}
	}
	return true
}

// finishTime returns the last arrival time — the motif's makespan.
func (f *finishLine) finishTime() sim.Time {
	var t sim.Time
	for _, a := range f.at {
		if a > t {
			t = a
		}
	}
	return t
}

// AttachShardMetrics attaches metrics in either mode: a single-heap
// cluster gets SetMetrics(primary) unchanged, a sharded cluster gets one
// private shadow registry per shard (each node's layers write the shadow
// of the node's owning shard) plus aggregate collectors on the primary.
// FinishMetrics folds the shadows into the primary after the run.
func (c *Cluster) AttachShardMetrics(primary *metrics.Registry) {
	g := c.Group
	if g == nil {
		c.SetMetrics(primary)
		return
	}
	if primary == nil {
		return
	}
	c.shadowRegs = make([]*metrics.Registry, g.Shards())
	for i := range c.shadowRegs {
		c.shadowRegs[i] = metrics.NewRegistry()
	}
	c.Net.SetMetricsSharded(primary, c.shadowRegs)
	shadowOf := func(node int) *metrics.Registry {
		return c.shadowRegs[c.Net.NodeShard(node)]
	}
	for node, nc := range c.nics {
		nc.SetMetrics(shadowOf(node))
	}
	for _, ep := range c.rvmaEPs {
		ep.SetMetrics(shadowOf(ep.Node()))
	}
	for _, ep := range c.rdmaEPs {
		ep.SetMetrics(shadowOf(ep.Node()))
	}
	for node, m := range c.recMgrs {
		m.SetMetrics(shadowOf(node), node) // managers are built per node, in node order
	}
	primary.AddCollector(func() {
		primary.Gauge("sim.queue_depth").Set(float64(g.TotalPending()))
		primary.Gauge("sim.events_executed").Set(float64(g.TotalExecuted()))
	})
}

// FinishMetrics folds the per-shard shadow registries into the primary:
// counters add, histograms merge their integer counts and picosecond sums
// exactly, per-node gauges copy over (each lives in exactly one shadow).
// Call after the run and before the primary's snapshot; a no-op on
// single-heap clusters, so harness code can call it unconditionally.
func (c *Cluster) FinishMetrics(primary *metrics.Registry) {
	if c.Group == nil || primary == nil {
		return
	}
	for _, sh := range c.shadowRegs {
		sh.Collect()
		primary.MergeFrom(sh)
	}
}

// RegisterTelemetryShards registers the same columns RegisterTelemetry
// does, as shard-set columns: every probe reads only the nodes its shard
// owns, and the declared merge kinds (integer sums, picosecond sums) make
// the merged CSV a pure function of the model, identical at any shard
// count. Call before ShardSet.Start.
func (c *Cluster) RegisterTelemetryShards(ss *telemetry.ShardSet) {
	if ss == nil {
		return
	}
	g := c.Group
	if g == nil {
		panic("motif: RegisterTelemetryShards on a single-heap cluster; use RegisterTelemetry")
	}
	ss.Register("sim.queue_depth", telemetry.KindSum, func(shard int) float64 {
		// Own heap plus own outbox: every pending event is in exactly one
		// of these containers, so the sum matches the single heap's depth.
		return float64(g.Shard(shard).Pending() + g.OutboxCount(shard))
	})
	ss.Register("sim.events_executed", telemetry.KindSum, func(shard int) float64 {
		return float64(g.Shard(shard).EventsExecuted())
	})
	c.Net.RegisterTelemetrySharded(ss)

	nodesBy := make([][]int, g.Shards())
	for node := range c.nics {
		s := c.Net.NodeShard(node)
		nodesBy[s] = append(nodesBy[s], node)
	}
	ss.Register("nic.send_backlog_ns_total", telemetry.KindSumPS, func(shard int) float64 {
		var t sim.Time
		for _, node := range nodesBy[shard] {
			t += c.nics[node].SendBacklog()
		}
		return t.Picoseconds()
	})
	ss.Register("nic.recv_backlog_ns_total", telemetry.KindSumPS, func(shard int) float64 {
		var t sim.Time
		for _, node := range nodesBy[shard] {
			t += c.nics[node].RecvBacklog()
		}
		return t.Picoseconds()
	})
	ss.Register("nic.dma_backlog_ns_total", telemetry.KindSumPS, func(shard int) float64 {
		var t sim.Time
		for _, node := range nodesBy[shard] {
			t += c.nics[node].DMABacklog()
		}
		return t.Picoseconds()
	})
	perNode := len(c.nics) <= maxPerNodeProbes

	if len(c.rvmaEPs) > 0 {
		ss.Register("rvma.posted_buffers_total", telemetry.KindSum, func(shard int) float64 {
			total := 0
			for _, node := range nodesBy[shard] {
				total += c.rvmaEPs[node].PostedBuffers()
			}
			return float64(total)
		})
		ss.Register("rvma.counter_progress_total", telemetry.KindSum, func(shard int) float64 {
			var total int64
			for _, node := range nodesBy[shard] {
				total += c.rvmaEPs[node].CounterProgress()
			}
			return float64(total)
		})
		ss.Register("rvma.epochs_total", telemetry.KindSum, func(shard int) float64 {
			var total int64
			for _, node := range nodesBy[shard] {
				total += c.rvmaEPs[node].EpochTotal()
			}
			return float64(total)
		})
		ss.Register("rvma.nacks_total", telemetry.KindSum, func(shard int) float64 {
			var total uint64
			for _, node := range nodesBy[shard] {
				total += c.rvmaEPs[node].Stats.Nacks
			}
			return float64(total)
		})
		ss.Register("rvma.rewinds_total", telemetry.KindSum, func(shard int) float64 {
			var total uint64
			for _, node := range nodesBy[shard] {
				total += c.rvmaEPs[node].Stats.Rewinds
			}
			return float64(total)
		})
		ss.Register("rvma.drops_total", telemetry.KindSum, func(shard int) float64 {
			var total uint64
			for _, node := range nodesBy[shard] {
				total += c.rvmaEPs[node].Stats.Drops
			}
			return float64(total)
		})
		if perNode {
			for _, ep := range c.rvmaEPs {
				ep := ep
				ss.RegisterLocal(fmt.Sprintf("rvma.posted_buffers.n%03d", ep.Node()),
					c.Net.NodeShard(ep.Node()), func() float64 {
						return float64(ep.PostedBuffers())
					})
			}
		}
	}
	if len(c.recMgrs) > 0 {
		ss.Register("recovery.retransmits_total", telemetry.KindSum, func(shard int) float64 {
			var total uint64
			for _, node := range nodesBy[shard] {
				total += c.recMgrs[node].Stats.Retransmits
			}
			return float64(total)
		})
		ss.Register("recovery.timeouts_total", telemetry.KindSum, func(shard int) float64 {
			var total uint64
			for _, node := range nodesBy[shard] {
				total += c.recMgrs[node].Stats.Timeouts
			}
			return float64(total)
		})
		ss.Register("recovery.exhausted_total", telemetry.KindSum, func(shard int) float64 {
			var total uint64
			for _, node := range nodesBy[shard] {
				total += c.recMgrs[node].Stats.Exhausted
			}
			return float64(total)
		})
	}
	if len(c.rdmaEPs) > 0 {
		ss.Register("rdma.pending_registrations_total", telemetry.KindSum, func(shard int) float64 {
			total := 0
			for _, node := range nodesBy[shard] {
				total += c.rdmaEPs[node].PendingRegistrations()
			}
			return float64(total)
		})
		ss.Register("rdma.handshakes_total", telemetry.KindSum, func(shard int) float64 {
			var total uint64
			for _, node := range nodesBy[shard] {
				total += c.rdmaEPs[node].Stats.Handshakes
			}
			return float64(total)
		})
		ss.Register("rdma.sends_held_total", telemetry.KindSum, func(shard int) float64 {
			total := 0
			for _, node := range nodesBy[shard] {
				total += c.rdmaEPs[node].PendingSendsHeld()
			}
			return float64(total)
		})
	}
}
