package motif

import (
	"testing"

	"rvma/internal/attrib"
	"rvma/internal/metrics"
)

// attribCluster builds a lossy (or lossless) recovery cluster with spans
// and the attribution collector attached.
func attribCluster(t *testing.T, kind TransportKind, drop float64) (*Cluster, *metrics.Registry, *attrib.Collector) {
	t.Helper()
	var cfg ClusterConfig
	if drop > 0 {
		cfg = lossyClusterConfig(kind, drop, true)
	} else {
		cfg = lossyClusterConfig(kind, 0, true)
		cfg.Faults = nil
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	reg.EnableSpans()
	c.SetMetrics(reg)
	col := attrib.NewCollector(8)
	c.AttachAttribution(reg, col)
	return c, reg, col
}

// TestSpanLifecycleUnderFaults is the span-hygiene acceptance check: with
// a FaultPlan active and the recovery layer retransmitting, every span that
// starts ends exactly once — completed, nacked or abandoned — so the
// in-flight table drains and stage conservation holds for every message.
// Under -tags simdebug the same invariants are additionally hard asserts
// inside the span and attribution layers.
func TestSpanLifecycleUnderFaults(t *testing.T) {
	for _, kind := range []TransportKind{KindRVMA, KindRDMA} {
		t.Run(kind.String(), func(t *testing.T) {
			c, reg, col := attribCluster(t, kind, 0.05)
			if _, err := RunIncast(c, DefaultIncastConfig()); err != nil {
				t.Fatal(err)
			}
			if open := reg.OpenSpans(); open != 0 {
				t.Errorf("registry has %d spans still open", open)
			}
			if open := col.Open(); open != 0 {
				t.Errorf("collector has %d messages still in flight", open)
			}
			if v := col.Violations(); v != 0 {
				t.Errorf("stage-conservation violations: %d", v)
			}
			for _, scope := range col.Scopes() {
				s := col.Summary(scope)
				if ended := s.Completed + s.Nacked + s.Abandoned; ended != s.Messages {
					t.Errorf("%s: %d messages but %d endings (%d completed, %d nacked, %d abandoned)",
						scope, s.Messages, ended, s.Completed, s.Nacked, s.Abandoned)
				}
				if s.Messages == 0 {
					t.Errorf("%s: no messages attributed", scope)
				}
			}
			// The recovery layer retransmitted (5% drop guarantees it), and
			// those retransmits must ride their original spans as extra
			// attempts, not orphan or duplicate them.
			if c.RecoveryStats().Retransmits == 0 {
				t.Fatal("no retransmits at 5% drop — faults not active?")
			}
			var retried uint64
			for _, scope := range col.Scopes() {
				retried += col.Summary(scope).Retried
			}
			if retried == 0 {
				t.Error("retransmits happened but no message shows more than one attempt")
			}
		})
	}
}

// TestSpanLifecycleLossless pins the no-fault baseline: every span
// completes (nothing nacked or abandoned, nothing retried) and
// conservation still holds.
func TestSpanLifecycleLossless(t *testing.T) {
	for _, kind := range []TransportKind{KindRVMA, KindRDMA} {
		t.Run(kind.String(), func(t *testing.T) {
			c, reg, col := attribCluster(t, kind, 0)
			if _, err := RunIncast(c, DefaultIncastConfig()); err != nil {
				t.Fatal(err)
			}
			if open := reg.OpenSpans(); open != 0 {
				t.Errorf("registry has %d spans still open", open)
			}
			if v := col.Violations(); v != 0 {
				t.Errorf("stage-conservation violations: %d", v)
			}
			for _, scope := range col.Scopes() {
				s := col.Summary(scope)
				if s.Completed != s.Messages || s.Retried != 0 {
					t.Errorf("%s: lossless run shows %d/%d completed, %d retried",
						scope, s.Completed, s.Messages, s.Retried)
				}
			}
		})
	}
}

// TestAbandonedSpansClose exercises the exhaustion path: a drop rate the
// one-retry budget cannot beat deadlocks the collective, but every span
// the recovery layer gave up on must still close as abandoned — the
// attribution layer never leaks spans for ops that died.
func TestAbandonedSpansClose(t *testing.T) {
	for _, kind := range []TransportKind{KindRVMA, KindRDMA} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := lossyClusterConfig(kind, 0.25, true)
			cfg.Recovery.MaxRetries = 1
			c, err := NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			reg := metrics.NewRegistry()
			reg.EnableSpans()
			c.SetMetrics(reg)
			col := attrib.NewCollector(8)
			c.AttachAttribution(reg, col)
			if _, err := RunIncast(c, DefaultIncastConfig()); err == nil {
				t.Skip("run survived the tight budget; no exhaustion to check")
			}
			if c.RecoveryStats().Exhausted == 0 {
				t.Skip("deadlock without exhaustion; nothing abandoned")
			}
			if v := col.Violations(); v != 0 {
				t.Errorf("stage-conservation violations: %d", v)
			}
			// Even in a run that died, no span may leak: everything that
			// started ended exactly once (completed, nacked or abandoned).
			if open := reg.OpenSpans(); open != 0 {
				t.Errorf("deadlocked run leaked %d open spans", open)
			}
			if open := col.Open(); open != 0 {
				t.Errorf("collector holds %d messages still in flight", open)
			}
			var abandoned uint64
			for _, scope := range col.Scopes() {
				abandoned += col.Summary(scope).Abandoned
			}
			// Every RVMA recovery op is a spanned put, so exhaustion there
			// must surface as abandoned spans. RDMA also recovers unspanned
			// sends (and an exhausted put whose data actually placed ends
			// completed), so its abandoned count may legitimately be zero.
			if kind == KindRVMA && abandoned == 0 {
				t.Error("ops exhausted their budget but no span ended abandoned")
			}
		})
	}
}
