// Package motif implements the paper's large-scale workloads (§V-B1):
// behavioral representations of HPC communication patterns, run over
// either the RVMA or the RDMA model on the simulated fabric.
//
//   - Sweep3D: a 2-D process decomposition of a 3-D domain performing
//     wavefront sweeps from all 8 corners, latency-sensitive (Figure 7);
//   - Halo3D: a 3-D decomposition exchanging the 6 faces of each block
//     every iteration, bandwidth-sensitive (Figure 8);
//   - Incast: the many-to-one client/server pattern that motivates RVMA's
//     receiver-managed resources in the introduction.
//
// Each rank runs as a simulation process over a Transport. The RVMA
// transport keeps a bucket of buffers posted per in-neighbor and needs no
// per-message coordination; the RDMA transports negotiate buffers up
// front (Figure 1) and must both notify completion (per the routing
// mode's scheme) and return a credit before a buffer can be reused — the
// "tight coordination" the paper's Sweep3D analysis blames for RDMA's
// slowdown.
package motif

import (
	"fmt"

	"rvma/internal/attrib"
	"rvma/internal/fabric"
	"rvma/internal/metrics"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/rdma"
	"rvma/internal/recovery"
	"rvma/internal/rvma"
	"rvma/internal/sim"
	"rvma/internal/telemetry"
	"rvma/internal/topology"
	"rvma/internal/trace"
)

// TransportKind selects the communication model a motif runs on. The
// routing mode is a separate axis (ClusterConfig.Routing): RVMA's
// threshold completion works identically under any routing, while RDMA's
// completion scheme is forced by it — last-byte polling is only sound on
// byte-ordered (static) networks, so under adaptive or Valiant routing
// the RDMA transport must fall back to trailing send/recv completion.
type TransportKind int

const (
	// KindRVMA uses mailboxes with EPOCH_OPS threshold-1 windows and a
	// posted-buffer depth maintained by the transport.
	KindRVMA TransportKind = iota
	// KindRDMA uses negotiated buffers with per-reuse credits; the
	// completion scheme follows the routing mode.
	KindRDMA
)

// String returns the kind's report name.
func (k TransportKind) String() string {
	switch k {
	case KindRVMA:
		return "RVMA"
	case KindRDMA:
		return "RDMA"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Transport is the rank-level communication interface motifs drive.
// Message streams between a pair of ranks are FIFO; the motifs' data
// dependencies provide all higher-level ordering.
type Transport interface {
	// Rank is this endpoint's rank (== node id).
	Rank() int
	// Ranks is the total number of ranks in the job.
	Ranks() int
	// Prepare establishes receive-side resources for messages arriving
	// from each of inPeers, up to maxMsg bytes each, and send-side
	// resources toward each of outPeers. It returns a future resolving
	// when setup is complete (RVMA: immediate; RDMA: after handshakes).
	Prepare(inPeers, outPeers []int, maxMsg int) *sim.Future
	// Send transfers size bytes to dst. The future resolves at local send
	// completion (safe to reuse the send buffer); delivery is observed by
	// the peer's Recv.
	Send(dst, size int) *sim.Future
	// Recv resolves when the next not-yet-consumed message from src has
	// fully arrived and its completion has been observed by host software.
	// size is the expected message size (motifs always know it), which
	// byte-counted completion schemes need.
	Recv(src, size int) *sim.Future
}

// Cluster is a set of rank transports over one simulated network.
type Cluster struct {
	Eng        *sim.Engine
	Tag        sim.Tagged // "motif"-labeled handle; rank processes spawn through it
	Net        *fabric.Network
	Transports []Transport
	Kind       TransportKind

	// Group is non-nil when the cluster executes sharded (ClusterConfig.
	// Shards > 0): every rank's components live on the shard owning its
	// node, Eng aliases shard 0, and Tags holds one "motif" handle per
	// shard. Motifs spawn through TagFor and run through run() so the same
	// code drives both modes.
	Group *sim.ShardGroup
	Tags  []sim.Tagged

	// Component references retained for observability attachment.
	nics    []*nic.NIC
	rvmaEPs []*rvma.Endpoint
	rdmaEPs []*rdma.Endpoint
	recMgrs []*recovery.Manager

	// shadowRegs are the per-shard metric registries of a sharded run
	// (AttachShardMetrics); FinishMetrics folds them into the primary.
	shadowRegs []*metrics.Registry
}

// SetTracer attaches one tracer to every layer of the cluster: the fabric
// (trace.CatPacket), each NIC (trace.CatNIC) and each protocol endpoint
// (trace.CatRVMA / trace.CatRDMA). A nil tracer detaches all of them.
func (c *Cluster) SetTracer(t *trace.Tracer) {
	c.Net.SetTracer(t)
	for _, n := range c.nics {
		n.SetTracer(t)
	}
	for _, ep := range c.rvmaEPs {
		ep.SetTracer(t)
	}
	for _, ep := range c.rdmaEPs {
		ep.SetTracer(t)
	}
}

// SetMetrics attaches one registry to every layer of the cluster, so one
// snapshot holds fabric, NIC and protocol state for a run. Enable spans on
// the registry before the run to get per-message stage latencies. A nil
// registry detaches all hooks.
func (c *Cluster) SetMetrics(reg *metrics.Registry) {
	if c.Group != nil && reg != nil {
		panic("motif: SetMetrics on a sharded cluster; use AttachShardMetrics")
	}
	c.Net.SetMetrics(reg)
	for _, n := range c.nics {
		n.SetMetrics(reg)
	}
	for _, ep := range c.rvmaEPs {
		ep.SetMetrics(reg)
	}
	for _, ep := range c.rdmaEPs {
		ep.SetMetrics(reg)
	}
	for i, m := range c.recMgrs {
		m.SetMetrics(reg, i) // managers are built per node, in node order
	}
	if reg != nil {
		reg.AddCollector(func() {
			reg.Gauge("sim.queue_depth").Set(float64(c.Eng.Pending()))
			reg.Gauge("sim.events_executed").Set(float64(c.Eng.EventsExecuted()))
		})
	}
}

// AttachAttribution wires the latency-attribution collector into the
// cluster: it becomes the registry's span observer (spans must be enabled
// for it to see anything) and gains causal-context probes over the
// cluster's recovery, NACK/rewind and fabric-congestion state, which it
// samples whenever an operation enters the worst-K tail exchange. Call
// after SetMetrics and before the run.
func (c *Cluster) AttachAttribution(reg *metrics.Registry, col *attrib.Collector) {
	if reg == nil || col == nil {
		return
	}
	reg.SetSpanObserver(col)
	col.AddContext("nacks_total", func() float64 { return float64(c.NACKTotal()) })
	col.AddContext("rewinds_total", func() float64 { return float64(c.RewindTotal()) })
	col.AddContext("retransmits_total", func() float64 { return float64(c.RecoveryStats().Retransmits) })
	col.AddContext("timeouts_total", func() float64 { return float64(c.RecoveryStats().Timeouts) })
	col.AddContext("fabric_max_queue_ns", func() float64 { return c.Net.MaxQueueBacklog().Nanoseconds() })
	col.AddContext("fabric_packets_dropped", func() float64 { return float64(c.Net.TotalStats().PacketsDropped) })
}

// maxPerNodeProbes caps per-node telemetry columns: beyond this many nodes
// only cluster-wide aggregates are registered, mirroring the per-switch
// gauge cap, so time-series width stays bounded on large runs.
const maxPerNodeProbes = 16

// RegisterTelemetry registers every layer's time-series probes on s:
// engine queue depth, fabric queue/utilization (including the per-switch
// heatmap columns), NIC pipeline and DMA backlogs, RVMA posted-buffer
// occupancy / counter progress / NACK and drop counts, and RDMA handshake
// and outstanding-registration counts. Aggregates are always registered;
// per-node columns only up to maxPerNodeProbes nodes. Call before
// Sampler.Start. A nil sampler is a no-op.
func (c *Cluster) RegisterTelemetry(s *telemetry.Sampler) {
	if s == nil {
		return
	}
	if c.Group != nil {
		panic("motif: RegisterTelemetry on a sharded cluster; use RegisterTelemetryShards")
	}
	s.Bind(c.Eng)
	s.Register("sim.queue_depth", func() float64 { return float64(c.Eng.Pending()) })
	s.Register("sim.events_executed", func() float64 { return float64(c.Eng.EventsExecuted()) })
	c.Net.RegisterTelemetry(s)

	s.Register("nic.send_backlog_ns_total", func() float64 {
		var t sim.Time
		for _, n := range c.nics {
			t += n.SendBacklog()
		}
		return t.Nanoseconds()
	})
	s.Register("nic.recv_backlog_ns_total", func() float64 {
		var t sim.Time
		for _, n := range c.nics {
			t += n.RecvBacklog()
		}
		return t.Nanoseconds()
	})
	s.Register("nic.dma_backlog_ns_total", func() float64 {
		var t sim.Time
		for _, n := range c.nics {
			t += n.DMABacklog()
		}
		return t.Nanoseconds()
	})
	perNode := len(c.nics) <= maxPerNodeProbes

	if len(c.rvmaEPs) > 0 {
		s.Register("rvma.posted_buffers_total", func() float64 {
			total := 0
			for _, ep := range c.rvmaEPs {
				total += ep.PostedBuffers()
			}
			return float64(total)
		})
		s.Register("rvma.counter_progress_total", func() float64 {
			var total int64
			for _, ep := range c.rvmaEPs {
				total += ep.CounterProgress()
			}
			return float64(total)
		})
		s.Register("rvma.epochs_total", func() float64 {
			var total int64
			for _, ep := range c.rvmaEPs {
				total += ep.EpochTotal()
			}
			return float64(total)
		})
		s.Register("rvma.nacks_total", func() float64 { return float64(c.NACKTotal()) })
		s.Register("rvma.rewinds_total", func() float64 { return float64(c.RewindTotal()) })
		s.Register("rvma.drops_total", func() float64 {
			var total uint64
			for _, ep := range c.rvmaEPs {
				total += ep.Stats.Drops
			}
			return float64(total)
		})
		if perNode {
			for _, ep := range c.rvmaEPs {
				ep := ep
				s.Register(fmt.Sprintf("rvma.posted_buffers.n%03d", ep.Node()), func() float64 {
					return float64(ep.PostedBuffers())
				})
			}
		}
	}
	if len(c.recMgrs) > 0 {
		s.Register("recovery.retransmits_total", func() float64 {
			return float64(c.RecoveryStats().Retransmits)
		})
		s.Register("recovery.timeouts_total", func() float64 {
			return float64(c.RecoveryStats().Timeouts)
		})
		s.Register("recovery.exhausted_total", func() float64 {
			return float64(c.RecoveryStats().Exhausted)
		})
	}
	if len(c.rdmaEPs) > 0 {
		s.Register("rdma.pending_registrations_total", func() float64 {
			total := 0
			for _, ep := range c.rdmaEPs {
				total += ep.PendingRegistrations()
			}
			return float64(total)
		})
		s.Register("rdma.handshakes_total", func() float64 {
			var total uint64
			for _, ep := range c.rdmaEPs {
				total += ep.Stats.Handshakes
			}
			return float64(total)
		})
		s.Register("rdma.sends_held_total", func() float64 {
			total := 0
			for _, ep := range c.rdmaEPs {
				total += ep.PendingSendsHeld()
			}
			return float64(total)
		})
	}
}

// NACKTotal returns the cumulative NACK count across every RVMA endpoint
// (zero on RDMA clusters). The flight recorder's NACK-burst watcher polls
// it between samples.
func (c *Cluster) NACKTotal() uint64 {
	var total uint64
	for _, ep := range c.rvmaEPs {
		total += ep.Stats.Nacks
	}
	return total
}

// ClusterConfig parameterizes cluster construction.
type ClusterConfig struct {
	Topology topology.Topology
	Fabric   fabric.Config // Fabric.Routing is overridden by Routing below
	Routing  fabric.RoutingMode
	NIC      nic.Profile
	PCIe     pcie.Config
	Kind     TransportKind
	Seed     uint64
	// Shards > 0 partitions the cluster across that many event heaps
	// (sim.ShardGroup) with the fabric's minimum link delay as lookahead;
	// 0 keeps the single-heap engine. Outputs are byte-identical at any
	// positive shard count (shards=1 is the comparison baseline); spans,
	// tracing and the Perfetto timeline are unavailable when sharded.
	Shards int
	// RDMABuffers is the number of buffers negotiated per (sender,
	// receiver) pair for the RDMA transports; 1 is the paper's static
	// single-buffer model, larger values ablate credit pipelining.
	RDMABuffers int
	// RDMALastBytePoll lets the RDMA transport use last-byte polling when
	// the routing mode preserves byte order. It is the specification-
	// violating idiom the paper's §V-A measures on real hardware; the
	// large-scale simulations (and this package's default) model
	// specification-compliant RDMA, which pays the trailing send/recv
	// completion under every routing mode.
	RDMALastBytePoll bool
	// RVMADepth is the posted-buffer depth the RVMA transport maintains
	// per in-neighbor mailbox.
	RVMADepth int
	// Faults injects packet loss at receiver ingress (fabric.FaultPlan);
	// nil keeps the default lossless fabric.
	Faults *fabric.FaultPlan
	// Recovery, when non-nil, enables the sender-side reliability layer
	// on both transports: acked operations with timeout/retransmit under
	// this policy, plus receiver-side window guards on RVMA. Nil keeps
	// the original fire-and-forget model (which deadlocks under loss).
	Recovery *recovery.Config
}

// DefaultClusterConfig returns the motif defaults: paper fabric settings,
// default NIC profile, PCIe Gen 4/5 (150 ns), single-buffer RDMA, depth-4
// RVMA mailboxes.
func DefaultClusterConfig(topo topology.Topology, kind TransportKind) ClusterConfig {
	return ClusterConfig{
		Topology:    topo,
		Fabric:      fabric.DefaultConfig(),
		Routing:     fabric.RouteAdaptive,
		NIC:         nic.DefaultProfile(),
		PCIe:        pcie.Gen4x16(),
		Kind:        kind,
		Seed:        1,
		RDMABuffers: 1,
		RVMADepth:   4,
	}
}

// ApplyLinkSpeed configures the cluster for a link data rate, scaling the
// parts of the substrate the paper holds non-constraining: "For each of
// the bandwidths ... the corresponding switch crossbar bandwidths have
// been scaled as well. Crossbar bandwidth is always 50% greater than link
// bandwidth. Host bus bandwidth is always sufficient to keep the NIC/link
// supplied with data at line rate" (§V-B1). Concretely: the crossbar
// follows automatically (XbarFactor), the NIC packet pipelines speed up
// proportionally so packet processing sustains line rate, and the PCIe
// data path is kept at >= 1.5x line rate.
func (cfg *ClusterConfig) ApplyLinkSpeed(gbps float64) {
	if gbps <= 0 {
		panic("motif: non-positive link speed")
	}
	base := cfg.Fabric.LinkGbps
	if base <= 0 {
		base = 100
	}
	cfg.Fabric.LinkGbps = gbps
	if gbps > base {
		scale := base / gbps
		mul := func(t sim.Time) sim.Time {
			out := sim.ScaleF(t, scale)
			if out < sim.Nanosecond {
				out = sim.Nanosecond
			}
			return out
		}
		cfg.NIC.SendPacketProc = mul(cfg.NIC.SendPacketProc)
		cfg.NIC.RecvPacketProc = mul(cfg.NIC.RecvPacketProc)
		cfg.NIC.LookupLatency = mul(cfg.NIC.LookupLatency)
	}
	if minGBps := gbps / 8 * 1.5; cfg.PCIe.GBps < minGBps {
		cfg.PCIe.GBps = minGBps
	}
}

// NewCluster builds the engine, fabric and one transport per node.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.RDMABuffers < 1 {
		cfg.RDMABuffers = 1
	}
	if cfg.RVMADepth < 1 {
		cfg.RVMADepth = 1
	}
	fcfg := cfg.Fabric
	fcfg.Routing = cfg.Routing
	if cfg.Faults != nil {
		fcfg.Faults = cfg.Faults
	}
	var (
		eng *sim.Engine
		net *fabric.Network
		g   *sim.ShardGroup
		err error
	)
	if cfg.Shards > 0 {
		la, lerr := fabric.LookaheadFor(fcfg)
		if lerr != nil {
			return nil, lerr
		}
		g = sim.NewShardGroup(cfg.Seed, cfg.Shards, la)
		net, err = fabric.NewSharded(g, cfg.Topology, fcfg, cfg.Seed)
		eng = g.Shard(0)
	} else {
		eng = sim.NewEngine(cfg.Seed)
		net, err = fabric.New(eng, cfg.Topology, fcfg)
	}
	if err != nil {
		return nil, err
	}
	n := cfg.Topology.NumNodes()
	c := &Cluster{Eng: eng, Tag: eng.Tag("motif"), Net: net, Group: g, Kind: cfg.Kind, Transports: make([]Transport, n)}
	if g != nil {
		c.Tags = make([]sim.Tagged, g.Shards())
		for i := range c.Tags {
			c.Tags[i] = g.Shard(i).Tag("motif")
		}
		c.Tag = c.Tags[0]
	}
	for node := 0; node < n; node++ {
		// Every per-node component lives on the engine that owns the node's
		// shard, so its events execute inside that shard's windows; in
		// legacy mode that is simply the one engine.
		neng := eng
		if g != nil {
			neng = g.Shard(net.NodeShard(node))
		}
		nc := nic.New(neng, net, node, cfg.PCIe, cfg.NIC)
		c.nics = append(c.nics, nc)
		// One recovery manager per node: retry state is per-endpoint, stats
		// aggregate via RecoveryStats.
		var rec *recovery.Manager
		if cfg.Recovery != nil {
			rec = recovery.NewManager(neng, *cfg.Recovery)
			if g != nil {
				// Backoff jitter must depend only on this node's retries,
				// not on whatever else shares its engine's stream.
				rec.SeedBackoff(sim.NewRNG(sim.SeedFor(cfg.Seed, "recovery", node)))
			}
			c.recMgrs = append(c.recMgrs, rec)
		}
		switch cfg.Kind {
		case KindRVMA:
			rcfg := rvma.DefaultConfig()
			rcfg.CarryData = false
			rcfg.HistoryDepth = 0 // motifs don't rewind; avoid retaining buffers
			if rec != nil {
				// The window guard's reclaim retrieves the holed buffer
				// through Rewind, which needs retained history (§IV-F).
				rcfg.HistoryDepth = 2
			}
			ep := rvma.NewEndpoint(nc, rcfg)
			c.rvmaEPs = append(c.rvmaEPs, ep)
			tp := newRVMATransport(ep, n, cfg.RVMADepth, rec)
			if g != nil {
				tp.rng = sim.NewRNG(sim.SeedFor(cfg.Seed, "rank", node))
			}
			c.Transports[node] = tp
		case KindRDMA:
			dcfg := rdma.DefaultConfig()
			dcfg.CarryData = false
			lastByte := cfg.RDMALastBytePoll && cfg.Routing.Ordered()
			ep := rdma.NewEndpoint(nc, dcfg)
			c.rdmaEPs = append(c.rdmaEPs, ep)
			c.Transports[node] = newRDMATransport(ep, n, lastByte, cfg.RDMABuffers, rec)
		default:
			return nil, fmt.Errorf("motif: unknown transport kind %v", cfg.Kind)
		}
	}
	return c, nil
}

// RecoveryStats sums the per-node recovery managers' counters; the zero
// value when recovery is disabled.
func (c *Cluster) RecoveryStats() recovery.Stats {
	var s recovery.Stats
	for _, m := range c.recMgrs {
		s.OpsStarted += m.Stats.OpsStarted
		s.OpsCompleted += m.Stats.OpsCompleted
		s.Retransmits += m.Stats.Retransmits
		s.Timeouts += m.Stats.Timeouts
		s.NackRetries += m.Stats.NackRetries
		s.Exhausted += m.Stats.Exhausted
		s.Recovered += m.Stats.Recovered
		s.Reclaims += m.Stats.Reclaims
	}
	return s
}

// RewindTotal returns the cumulative Rewind count across every RVMA
// endpoint (zero on RDMA clusters): buffers retrieved by the recovery
// guard's reclaim path.
func (c *Cluster) RewindTotal() uint64 {
	var total uint64
	for _, ep := range c.rvmaEPs {
		total += ep.Stats.Rewinds
	}
	return total
}
