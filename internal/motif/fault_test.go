package motif

import (
	"fmt"
	"strings"
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/recovery"
	"rvma/internal/topology"
)

// lossyClusterConfig builds an incast-sized cluster config with receiver-
// ingress loss at the given rate, recovery optional.
func lossyClusterConfig(kind TransportKind, rate float64, rec bool) ClusterConfig {
	cfg := DefaultClusterConfig(topology.NewSingleSwitch(8), kind)
	cfg.Faults = &fabric.FaultPlan{DropRate: rate}
	if rec {
		rc := recovery.DefaultConfig()
		cfg.Recovery = &rc
	}
	return cfg
}

// TestIncastCompletesUnderLossWithRecovery is the tentpole's acceptance
// check: at 5% receiver-ingress drop, both transports deliver every
// message within the retry budget — the run finishes, every recovery
// operation completes, nothing exhausts.
func TestIncastCompletesUnderLossWithRecovery(t *testing.T) {
	for _, kind := range []TransportKind{KindRVMA, KindRDMA} {
		t.Run(kind.String(), func(t *testing.T) {
			c, err := NewCluster(lossyClusterConfig(kind, 0.05, true))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := RunIncast(c, DefaultIncastConfig()); err != nil {
				t.Fatalf("incast under loss with recovery: %v", err)
			}
			s := c.RecoveryStats()
			if s.OpsStarted == 0 {
				t.Fatal("recovery layer saw no operations")
			}
			if s.OpsCompleted != s.OpsStarted {
				t.Fatalf("completed %d of %d recovery ops", s.OpsCompleted, s.OpsStarted)
			}
			if s.Exhausted != 0 {
				t.Fatalf("%d ops exhausted the retry budget", s.Exhausted)
			}
			if s.Retransmits == 0 {
				t.Fatal("5%% drop produced zero retransmits — faults not reaching the wire?")
			}
			if c.Net.Stats.PacketsDropped == 0 {
				t.Fatal("fabric dropped nothing at 5%% rate")
			}
		})
	}
}

// TestIncastDeadlocksUnderLossWithoutRecovery pins the counterfactual the
// sweep table reports: the same loss without the recovery layer wedges
// both transports (a lost message, ack, fence, credit or handshake leaves
// some rank waiting forever).
func TestIncastDeadlocksUnderLossWithoutRecovery(t *testing.T) {
	for _, kind := range []TransportKind{KindRVMA, KindRDMA} {
		t.Run(kind.String(), func(t *testing.T) {
			c, err := NewCluster(lossyClusterConfig(kind, 0.05, false))
			if err != nil {
				t.Fatal(err)
			}
			_, err = RunIncast(c, DefaultIncastConfig())
			if err == nil || !strings.Contains(err.Error(), "deadlock") {
				t.Fatalf("err = %v, want deadlock", err)
			}
		})
	}
}

// TestRecoveryHarmlessOnLosslessFabric checks the recovery layer is pure
// overheadless machinery when nothing drops: no retransmits, no timeouts
// firing into retries, no reclaims, and the run completes.
func TestRecoveryHarmlessOnLosslessFabric(t *testing.T) {
	for _, kind := range []TransportKind{KindRVMA, KindRDMA} {
		t.Run(kind.String(), func(t *testing.T) {
			cfg := DefaultClusterConfig(topology.NewSingleSwitch(8), kind)
			rc := recovery.DefaultConfig()
			cfg.Recovery = &rc
			c, err := NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := RunIncast(c, DefaultIncastConfig()); err != nil {
				t.Fatal(err)
			}
			s := c.RecoveryStats()
			if s.Retransmits != 0 || s.Exhausted != 0 || s.Reclaims != 0 {
				t.Fatalf("lossless run paid recovery work: %+v", s)
			}
			if s.OpsCompleted != s.OpsStarted {
				t.Fatalf("completed %d of %d ops", s.OpsCompleted, s.OpsStarted)
			}
		})
	}
}

// TestIncastUnderLossDeterministic re-runs a lossy recovery incast and
// requires identical makespan and stats: drops, backoff jitter and
// retransmit schedules all replay exactly.
func TestIncastUnderLossDeterministic(t *testing.T) {
	for _, kind := range []TransportKind{KindRVMA, KindRDMA} {
		t.Run(kind.String(), func(t *testing.T) {
			run := func() (string, error) {
				c, err := NewCluster(lossyClusterConfig(kind, 0.05, true))
				if err != nil {
					return "", err
				}
				mk, err := RunIncast(c, DefaultIncastConfig())
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("%d %+v %d", mk, c.RecoveryStats(), c.Net.Stats.PacketsDropped), nil
			}
			a, err := run()
			if err != nil {
				t.Fatal(err)
			}
			b, err := run()
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("nondeterministic lossy run:\n%s\n%s", a, b)
			}
		})
	}
}
