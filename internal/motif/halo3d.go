package motif

import (
	"fmt"

	"rvma/internal/sim"
)

// Halo3DConfig parameterizes the Halo3D motif: a 3-D decomposition
// (Px x Py x Pz ranks) where each rank holds an Nx x Ny x Nz block and
// exchanges its six faces with its neighbors every iteration, then
// computes. "Halo3D communication exchanges benefit from high bandwidth
// and a low number of network hops" (§V-B1, Figure 8).
type Halo3DConfig struct {
	Px, Py, Pz     int
	Nx, Ny, Nz     int
	Vars           int
	ComputePerCell sim.Time
	Iterations     int
}

// DefaultHalo3DConfig sizes the motif for a rank count with a near-cubic
// decomposition and ember-like block sizes (medium-to-large messages).
func DefaultHalo3DConfig(ranks int) Halo3DConfig {
	px, py, pz := cubest(ranks)
	return Halo3DConfig{
		Px: px, Py: py, Pz: pz,
		Nx: 24, Ny: 24, Nz: 24,
		Vars:           4,
		ComputePerCell: 10 * sim.Picosecond,
		Iterations:     10,
	}
}

// Validate reports configuration errors.
func (c Halo3DConfig) Validate(ranks int) error {
	if c.Px*c.Py*c.Pz != ranks {
		return fmt.Errorf("halo3d: grid %dx%dx%d does not match %d ranks", c.Px, c.Py, c.Pz, ranks)
	}
	if c.Nx <= 0 || c.Ny <= 0 || c.Nz <= 0 || c.Vars <= 0 || c.Iterations <= 0 {
		return fmt.Errorf("halo3d: non-positive parameter")
	}
	return nil
}

// Face sizes in bytes (8-byte variables).
func (c Halo3DConfig) xFaceBytes() int { return c.Ny * c.Nz * c.Vars * 8 }
func (c Halo3DConfig) yFaceBytes() int { return c.Nx * c.Nz * c.Vars * 8 }
func (c Halo3DConfig) zFaceBytes() int { return c.Nx * c.Ny * c.Vars * 8 }

// iterComputeTime is the per-iteration computation.
func (c Halo3DConfig) iterComputeTime() sim.Time {
	return sim.Scale(c.Nx*c.Ny*c.Nz, c.ComputePerCell)
}

// RunHalo3D executes the motif and returns the simulated makespan.
func RunHalo3D(c *Cluster, cfg Halo3DConfig) (sim.Time, error) {
	ranks := len(c.Transports)
	if err := cfg.Validate(ranks); err != nil {
		return 0, err
	}
	maxMsg := cfg.xFaceBytes()
	for _, s := range []int{cfg.yFaceBytes(), cfg.zFaceBytes()} {
		if s > maxMsg {
			maxMsg = s
		}
	}

	fin := newFinishLine(ranks)

	type face struct {
		peer int
		size int
	}
	for rank := 0; rank < ranks; rank++ {
		tp := c.Transports[rank]
		x := rank % cfg.Px
		y := (rank / cfg.Px) % cfg.Py
		z := rank / (cfg.Px * cfg.Py)
		var faces []face
		add := func(nx, ny, nz, size int) {
			if nx < 0 || nx >= cfg.Px || ny < 0 || ny >= cfg.Py || nz < 0 || nz >= cfg.Pz {
				return
			}
			faces = append(faces, face{peer: nx + cfg.Px*(ny+cfg.Py*nz), size: size})
		}
		add(x-1, y, z, cfg.xFaceBytes())
		add(x+1, y, z, cfg.xFaceBytes())
		add(x, y-1, z, cfg.yFaceBytes())
		add(x, y+1, z, cfg.yFaceBytes())
		add(x, y, z-1, cfg.zFaceBytes())
		add(x, y, z+1, cfg.zFaceBytes())

		peers := make([]int, len(faces))
		for i, f := range faces {
			peers[i] = f.peer
		}
		tag := c.TagFor(rank)
		tag.Spawn(fmt.Sprintf("halo-r%d", rank), func(p *sim.Process) {
			p.Wait(tp.Prepare(peers, peers, maxMsg))
			for iter := 0; iter < cfg.Iterations; iter++ {
				p.Sleep(cfg.iterComputeTime())
				// Post all sends, then consume all receives. Sends are
				// nonblocking at this level; the transports enforce their
				// own flow control.
				sends := make([]*sim.Future, len(faces))
				for i, f := range faces {
					sends[i] = tp.Send(f.peer, f.size)
				}
				for _, f := range faces {
					p.Wait(tp.Recv(f.peer, f.size))
				}
				p.WaitAll(sends...)
			}
			fin.arrive(rank, tag.Now())
		})
	}
	c.run()
	if !fin.allDone() {
		return 0, fmt.Errorf("halo3d: deadlock — ranks never finished")
	}
	return fin.finishTime(), nil
}

// cubest factors n into the most-cubic (a, b, c) with a*b*c = n.
func cubest(n int) (int, int, int) {
	bestA, bestB, bestC := 1, 1, n
	bestScore := n * n
	for a := 1; a*a*a <= n; a++ {
		if n%a != 0 {
			continue
		}
		m := n / a
		for b := a; b*b <= m; b++ {
			if m%b != 0 {
				continue
			}
			c := m / b
			score := c - a // spread; smaller is more cubic
			if score < bestScore {
				bestScore = score
				bestA, bestB, bestC = a, b, c
			}
		}
	}
	return bestA, bestB, bestC
}
