package motif

import (
	"testing"

	"rvma/internal/attrib"
	"rvma/internal/metrics"
	"rvma/internal/recovery"
	"rvma/internal/topology"
)

// TestKVExhaustedOpsCloseSpans is the KV-side span-hygiene check for the
// exhaustion path: a drop rate a one-retry budget cannot beat kills part
// of the keyed-mailbox dataplane, but every span the recovery layer gave
// up on must still end exactly once — the retry storm may abandon ops,
// never leak them.
func TestKVExhaustedOpsCloseSpans(t *testing.T) {
	for _, kind := range []TransportKind{KindRVMA, KindRDMA} {
		t.Run(kind.String(), func(t *testing.T) {
			topo, err := topology.ForNodeCount(topology.KindDragonfly, 16)
			if err != nil {
				t.Fatal(err)
			}
			cfg := lossyClusterConfig(kind, 0.25, true)
			cfg.Topology = topo
			rc := recovery.DefaultConfig()
			rc.MaxRetries = 1
			cfg.Recovery = &rc
			c, err := NewCluster(cfg)
			if err != nil {
				t.Fatal(err)
			}
			reg := metrics.NewRegistry()
			reg.EnableSpans()
			c.SetMetrics(reg)
			col := attrib.NewCollector(8)
			c.AttachAttribution(reg, col)

			kcfg := DefaultKVConfig(topo.NumNodes())
			kcfg.Seed = cfg.Seed
			kcfg.OpsPerProxy = 24
			_, _, runErr := RunKV(c, kcfg)
			if runErr == nil {
				t.Skip("run survived the tight budget; no exhaustion to check")
			}
			if c.RecoveryStats().Exhausted == 0 {
				t.Skip("deadlock without exhaustion; nothing abandoned")
			}
			if open := reg.OpenSpans(); open != 0 {
				t.Errorf("deadlocked KV run leaked %d open spans", open)
			}
			if open := col.Open(); open != 0 {
				t.Errorf("collector holds %d messages still in flight", open)
			}
			if v := col.Violations(); v != 0 {
				t.Errorf("stage-conservation violations: %d", v)
			}
			var abandoned uint64
			for _, scope := range col.Scopes() {
				abandoned += col.Summary(scope).Abandoned
			}
			// RVMA recovery ops are spanned puts, so exhaustion must show
			// up as abandoned spans; RDMA's unspanned sends may legitimately
			// exhaust without an abandoned span (see TestAbandonedSpansClose).
			if kind == KindRVMA && abandoned == 0 {
				t.Error("ops exhausted their budget but no span ended abandoned")
			}
		})
	}
}
