// The KV motif: a transactional get/put/CAS dataplane over the cluster's
// transports, shaped like a public-facing storage service rather than an
// HPC job (ROADMAP item 2). The first Servers ranks run keyed stores
// (internal/kv); every remaining rank is a client-aggregation proxy at an
// edge switch, multiplexing a slice of the simulated client population
// onto one transport endpoint.
//
// Client aggregation is what makes millions of clients tractable for
// both the protocol and the simulator: servers hold per-PROXY receive
// state (an RVMA mailbox or an RDMA buffer negotiation each), never
// per-client state, so fan-in grows the client population without
// growing any table. The proxy in turn keeps only aggregate state for
// its clients — a shared version cache (one word per key) and a
// presence bit per client — the way an edge cache collapses its
// downstream population. CAS requests carry the proxy cache's expected
// version; under hot-key skew many proxies race on the same keys with
// mutually stale caches, so the CAS failure rate is the contention
// signal the KV tables sweep.
//
// Determinism across shard and worker counts follows from two rules.
// First, every random draw happens at setup time: each proxy's entire
// operation sequence (key, verb, pacing gap) is materialized from its
// own seeded substream before the engine runs, so the workload is a pure
// function of the seed no matter how ranks are partitioned. Second, the
// wire carries only sizes; request and reply contents travel in per-pair
// FIFO queues written by the sender at issue time and read by the
// receiver at arrival time. Arrival is at least one fabric traversal —
// and therefore at least one conservative-lookahead window — after the
// push, so the shard barrier orders every push before its pop.
package motif

import (
	"fmt"

	"rvma/internal/kv"
	"rvma/internal/metrics"
	"rvma/internal/sim"
)

// kvHdrBytes is the fixed per-message envelope: verb, key, version,
// routing. Requests and replies are fixed-size slots (value space is
// always reserved) so byte-counted completion schemes see identical
// wire sizes for every op; goodput accounting charges only the payload
// that was semantically useful.
const kvHdrBytes = 64

// kvCASBytes is the useful payload of a CAS: the compared and swapped
// version words.
const kvCASBytes = 16

// KVConfig parameterizes the KV dataplane motif.
type KVConfig struct {
	// Servers is the number of store ranks (ranks [0, Servers)); every
	// other rank is a client-aggregation proxy.
	Servers int
	// Clients is the simulated client population, spread evenly across
	// the proxies. Per-client protocol state exists nowhere: only the
	// proxies' aggregate caches and presence bits scale with it.
	Clients int
	// Keys is the keyspace size, partitioned round-robin across servers.
	Keys int
	// Skew is the zipfian exponent of the key popularity distribution;
	// 0 is uniform, 0.99 the classic YCSB-like skew.
	Skew float64
	// OpsPerProxy is the number of operations each proxy issues.
	OpsPerProxy int
	// Window is the per-proxy cap on outstanding operations.
	Window int
	// Gap is the proxy's mean inter-issue gap (jittered ±50%): the
	// offered-load axis. Smaller gap = more aggregate client load per
	// edge switch.
	Gap sim.Time
	// GetFrac and PutFrac split the op mix; the remainder is CAS.
	GetFrac, PutFrac float64
	// ValBytes is the value size carried by puts and get replies.
	ValBytes int
	// Seed derives the per-proxy workload substreams. The cluster seed
	// is the natural choice; harness code sets it from the run seed.
	Seed uint64
}

// DefaultKVConfig returns the service-shaped defaults for a cluster of
// the given rank count: a handful of servers, a ~10^6 simulated client
// population behind the remaining proxies, YCSB-like 0.99 skew and a
// 70/20/10 get/put/CAS mix.
func DefaultKVConfig(ranks int) KVConfig {
	servers := ranks / 16
	if servers < 1 {
		servers = 1
	}
	if servers > 8 {
		servers = 8
	}
	return KVConfig{
		Servers:     servers,
		Clients:     1 << 20,
		Keys:        4096,
		Skew:        0.99,
		OpsPerProxy: 32,
		Window:      4,
		Gap:         2 * sim.Microsecond,
		GetFrac:     0.70,
		PutFrac:     0.20,
		ValBytes:    512,
	}
}

func (cfg KVConfig) reqBytes() int  { return kvHdrBytes + cfg.ValBytes }
func (cfg KVConfig) respBytes() int { return kvHdrBytes + cfg.ValBytes }

// KVResult aggregates the motif's application-level outcome. Proxy stats
// merge in rank order and server stats in server order after the run, so
// the result is byte-identical at any shard or worker count.
type KVResult struct {
	Proxies         int
	ClientsPerProxy int
	// SimulatedClients is the population actually configured
	// (Proxies × ClientsPerProxy >= cfg.Clients).
	SimulatedClients int
	// DistinctClients is how many distinct simulated clients issued at
	// least one op — the observable fan-in.
	DistinctClients int

	Issued    uint64
	Completed uint64
	Gets      uint64
	Puts      uint64
	CASOK     uint64
	CASFail   uint64
	// PayloadBytes is the semantically useful bytes moved by completed
	// ops (values for get/put, version words for CAS) — the goodput
	// numerator. Envelope and padding bytes are excluded.
	PayloadBytes uint64

	// ServerApplied is the total ops applied by the stores; equals
	// Completed on a clean run (every reply that was applied came back).
	ServerApplied uint64

	// Lat is the end-to-end issue-to-reply latency of every completed
	// op; the per-verb histograms split it.
	Lat, GetLat, PutLat, CASLat *metrics.Histogram
}

// kvOp is one planned operation: fully determined at setup except for
// the issue timestamp and the CAS expectation, which the proxy fills at
// issue time (single-writer: only the owning proxy's rank touches it).
type kvOp struct {
	key    int
	kind   kv.OpKind
	server int
	client int
	gap    sim.Time
	issued sim.Time
}

// kvFifo is a single-producer single-consumer descriptor queue for one
// (proxy, server) direction. Capacity is preallocated to the pair's
// planned op count so the run never grows it.
type kvFifo[T any] struct {
	items []T
	head  int
}

func (q *kvFifo[T]) push(v T) { q.items = append(q.items, v) }

func (q *kvFifo[T]) pop() T {
	v := q.items[q.head]
	q.head++
	return v
}

// kvWindow is a proxy's outstanding-op limiter. All accesses happen on
// the proxy's own rank (sender acquires, receivers release), hence on
// one shard.
type kvWindow struct {
	avail  int
	waiter *sim.Future
}

func (w *kvWindow) acquire(p *sim.Process) {
	if w.avail == 0 {
		f := sim.NewFuture()
		w.waiter = f
		p.Wait(f)
	}
	w.avail--
}

func (w *kvWindow) release(eng *sim.Engine) {
	w.avail++
	if w.waiter != nil {
		f := w.waiter
		w.waiter = nil
		f.Complete(eng, nil)
	}
}

// kvProxyStats is one proxy's single-writer scoreboard, merged after the
// run in rank order.
type kvProxyStats struct {
	issued, completed           uint64
	gets, puts                  uint64
	casOK, casFail              uint64
	payloadBytes                uint64
	lat, getLat, putLat, casLat metrics.Histogram
	clientSeen                  []bool
}

// RunKV executes the motif and returns the simulated makespan plus the
// application-level result. On deadlock (abandoned ops wedging a pair's
// stream) the result still carries whatever completed, so callers can
// report accounted abandonment.
func RunKV(c *Cluster, cfg KVConfig) (sim.Time, *KVResult, error) {
	ranks := len(c.Transports)
	if cfg.Servers < 1 || cfg.Servers >= ranks {
		return 0, nil, fmt.Errorf("kv: need 1 <= servers (%d) < ranks (%d)", cfg.Servers, ranks)
	}
	if cfg.Keys < cfg.Servers {
		return 0, nil, fmt.Errorf("kv: fewer keys (%d) than servers (%d)", cfg.Keys, cfg.Servers)
	}
	if cfg.OpsPerProxy < 1 || cfg.Window < 1 || cfg.ValBytes < 0 || cfg.Clients < 1 {
		return 0, nil, fmt.Errorf("kv: non-positive parameter")
	}
	if cfg.GetFrac < 0 || cfg.PutFrac < 0 || cfg.GetFrac+cfg.PutFrac > 1 {
		return 0, nil, fmt.Errorf("kv: bad op mix get=%v put=%v", cfg.GetFrac, cfg.PutFrac)
	}
	proxies := ranks - cfg.Servers
	cpp := (cfg.Clients + proxies - 1) / proxies

	// Materialize every proxy's full op sequence from its own substream.
	// This is the determinism anchor: no RNG is consulted once the
	// engine starts, so the workload is identical at any partitioning.
	zipf := kv.NewZipf(cfg.Keys, cfg.Skew)
	plans := make([][]kvOp, proxies)
	for pi := 0; pi < proxies; pi++ {
		rng := sim.NewRNG(sim.SeedFor(cfg.Seed, "kv-proxy", pi))
		plan := make([]kvOp, cfg.OpsPerProxy)
		for i := range plan {
			key := zipf.Sample(rng)
			mix := rng.Float64()
			kind := kv.OpCAS
			if mix < cfg.GetFrac {
				kind = kv.OpGet
			} else if mix < cfg.GetFrac+cfg.PutFrac {
				kind = kv.OpPut
			}
			plan[i] = kvOp{
				key:    key,
				kind:   kind,
				server: kv.ServerFor(key, cfg.Servers),
				client: rng.Intn(cpp),
				gap:    rng.Jitter(cfg.Gap, 0.5),
			}
		}
		plans[pi] = plan
	}

	// Pair traffic counts, known to both sides up front — servers expect
	// exactly the planned number of requests per proxy, so no
	// termination protocol rides the wire.
	pairCount := make([][]int, proxies) // [proxy][server]
	for pi, plan := range plans {
		pairCount[pi] = make([]int, cfg.Servers)
		for i := range plan {
			pairCount[pi][plan[i].server]++
		}
	}

	// Per-pair descriptor queues (see the package comment for why this
	// cross-shard handoff is safe). reqQ carries requests proxy→server,
	// respQ replies server→proxy; capacities preallocated from the plan.
	reqQ := make([][]kvFifo[kv.Request], proxies)
	respQ := make([][]kvFifo[kv.Reply], cfg.Servers)
	for pi := range reqQ {
		reqQ[pi] = make([]kvFifo[kv.Request], cfg.Servers)
		for s := range reqQ[pi] {
			if n := pairCount[pi][s]; n > 0 {
				reqQ[pi][s].items = make([]kv.Request, 0, n)
			}
		}
	}
	for s := range respQ {
		respQ[s] = make([]kvFifo[kv.Reply], proxies)
		for pi := range respQ[s] {
			if n := pairCount[pi][s]; n > 0 {
				respQ[s][pi].items = make([]kv.Reply, 0, n)
			}
		}
	}

	stores := make([]*kv.Store, cfg.Servers)
	for s := range stores {
		stores[s] = kv.NewStore(cfg.Keys, cfg.Servers, s)
	}
	prStats := make([]*kvProxyStats, proxies)
	for pi := range prStats {
		prStats[pi] = &kvProxyStats{clientSeen: make([]bool, cpp)}
	}

	fin := newFinishLine(ranks)
	maxMsg := cfg.reqBytes()
	if cfg.respBytes() > maxMsg {
		maxMsg = cfg.respBytes()
	}

	// Servers: one main process Prepares, then one handler per active
	// proxy works the pair's request stream. Receive-side state is per
	// proxy — never per client — which is the aggregation claim.
	for s := 0; s < cfg.Servers; s++ {
		s := s
		tp := c.Transports[s]
		tag := c.TagFor(s)
		store := stores[s]
		active := make([]int, 0, proxies)
		for pi := 0; pi < proxies; pi++ {
			if pairCount[pi][s] > 0 {
				active = append(active, pi)
			}
		}
		tag.Spawn(fmt.Sprintf("kv-server%d", s), func(p *sim.Process) {
			peers := make([]int, len(active))
			for i, pi := range active {
				peers[i] = cfg.Servers + pi
			}
			p.Wait(tp.Prepare(peers, peers, maxMsg))
			if len(active) == 0 {
				fin.arrive(s, tag.Now())
				return
			}
			left := len(active)
			for _, pi := range active {
				pi := pi
				count := pairCount[pi][s]
				tag.Spawn(fmt.Sprintf("kv-server%d-p%d", s, pi), func(p *sim.Process) {
					prox := cfg.Servers + pi
					for i := 0; i < count; i++ {
						p.Wait(tp.Recv(prox, cfg.reqBytes()))
						req := reqQ[pi][s].pop()
						rep := store.Apply(req)
						respQ[s][pi].push(rep)
						p.Wait(tp.Send(prox, cfg.respBytes()))
					}
					left--
					if left == 0 {
						fin.arrive(s, tag.Now())
					}
				})
			}
		})
	}

	// Proxies: one main process Prepares and paces the plan through the
	// window; one receiver per active server consumes replies in that
	// pair's issue order, measures latency, refreshes the version cache
	// and releases window credit.
	for pi := 0; pi < proxies; pi++ {
		pi := pi
		rank := cfg.Servers + pi
		tp := c.Transports[rank]
		tag := c.TagFor(rank)
		plan := plans[pi]
		st := prStats[pi]
		win := &kvWindow{avail: cfg.Window}
		cache := make([]uint64, cfg.Keys) // shared across the proxy's clients
		// Per-server subsequences of the plan, in issue order: receiver
		// i's pair stream is exactly these ops.
		seq := make([][]int, cfg.Servers)
		for i := range plan {
			seq[plan[i].server] = append(seq[plan[i].server], i)
		}
		tag.Spawn(fmt.Sprintf("kv-proxy%d", pi), func(p *sim.Process) {
			active := make([]int, 0, cfg.Servers)
			for s := 0; s < cfg.Servers; s++ {
				if len(seq[s]) > 0 {
					active = append(active, s)
				}
			}
			p.Wait(tp.Prepare(active, active, maxMsg))
			procs := 1 + len(active)
			finish := func() {
				procs--
				if procs == 0 {
					fin.arrive(rank, tag.Now())
				}
			}
			for _, s := range active {
				s := s
				idxs := seq[s]
				tag.Spawn(fmt.Sprintf("kv-proxy%d-s%d", pi, s), func(p *sim.Process) {
					for _, idx := range idxs {
						p.Wait(tp.Recv(s, cfg.respBytes()))
						rep := respQ[s][pi].pop()
						op := &plan[idx]
						st.completed++
						st.lat.ObserveTime(tag.Now() - op.issued)
						switch op.kind {
						case kv.OpGet:
							st.gets++
							st.getLat.ObserveTime(tag.Now() - op.issued)
							st.payloadBytes += uint64(cfg.ValBytes)
						case kv.OpPut:
							st.puts++
							st.putLat.ObserveTime(tag.Now() - op.issued)
							st.payloadBytes += uint64(cfg.ValBytes)
						case kv.OpCAS:
							st.casLat.ObserveTime(tag.Now() - op.issued)
							if rep.OK {
								st.casOK++
							} else {
								st.casFail++
							}
							st.payloadBytes += kvCASBytes
						}
						// Every reply carries the key's current version:
						// the aggregate cache refresh that keeps CAS
						// expectations only as stale as the last contact.
						cache[op.key] = rep.Version
						win.release(p.Engine())
					}
					finish()
				})
			}
			for i := range plan {
				op := &plan[i]
				p.Sleep(op.gap)
				win.acquire(p)
				st.issued++
				st.clientSeen[op.client] = true
				req := kv.Request{Key: op.key, Kind: op.kind}
				if op.kind == kv.OpCAS {
					req.Expect = cache[op.key]
				}
				reqQ[pi][op.server].push(req)
				op.issued = tag.Now()
				p.Wait(tp.Send(op.server, cfg.reqBytes()))
			}
			finish()
		})
	}

	c.run()

	res := &KVResult{
		Proxies:          proxies,
		ClientsPerProxy:  cpp,
		SimulatedClients: proxies * cpp,
		Lat:              &metrics.Histogram{},
		GetLat:           &metrics.Histogram{},
		PutLat:           &metrics.Histogram{},
		CASLat:           &metrics.Histogram{},
	}
	// Merge in fixed rank order after every shard is quiescent: integer
	// counters and picosecond histogram sums make this exact.
	for _, st := range prStats {
		res.Issued += st.issued
		res.Completed += st.completed
		res.Gets += st.gets
		res.Puts += st.puts
		res.CASOK += st.casOK
		res.CASFail += st.casFail
		res.PayloadBytes += st.payloadBytes
		res.Lat.Merge(&st.lat)
		res.GetLat.Merge(&st.getLat)
		res.PutLat.Merge(&st.putLat)
		res.CASLat.Merge(&st.casLat)
		for _, seen := range st.clientSeen {
			if seen {
				res.DistinctClients++
			}
		}
	}
	for _, store := range stores {
		res.ServerApplied += store.Applied()
	}

	if !fin.allDone() {
		return 0, res, fmt.Errorf("kv: deadlock (%d/%d ops completed)", res.Completed, res.Issued)
	}
	if res.Completed != res.Issued || res.ServerApplied != res.Completed {
		return 0, res, fmt.Errorf("kv: accounting mismatch: issued %d completed %d applied %d",
			res.Issued, res.Completed, res.ServerApplied)
	}
	return fin.finishTime(), res, nil
}
