package motif

import (
	"fmt"
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/metrics"
	"rvma/internal/recovery"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

// runKVOnce runs a 16-rank KV cell on a dragonfly and returns the
// makespan, result and executed-event count.
func runKVOnce(t *testing.T, kind TransportKind, shards int, drop float64, skew float64) (sim.Time, *KVResult, uint64) {
	t.Helper()
	topo, err := topology.ForNodeCount(topology.KindDragonfly, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClusterConfig(topo, kind)
	cfg.Shards = shards
	if drop > 0 {
		cfg.Faults = &fabric.FaultPlan{DropRate: drop}
		rc := recovery.DefaultConfig()
		cfg.Recovery = &rc
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kcfg := DefaultKVConfig(topo.NumNodes())
	kcfg.Seed = cfg.Seed
	kcfg.Skew = skew
	kcfg.OpsPerProxy = 24
	mk, res, err := RunKV(c, kcfg)
	if err != nil {
		t.Fatalf("RunKV: %v", err)
	}
	return mk, res, c.EventsExecuted()
}

func TestKVCompletesAndAccounts(t *testing.T) {
	for _, kind := range []TransportKind{KindRVMA, KindRDMA} {
		t.Run(kind.String(), func(t *testing.T) {
			mk, res, _ := runKVOnce(t, kind, 0, 0, 0.99)
			if mk <= 0 {
				t.Fatal("non-positive makespan")
			}
			proxies := res.Proxies
			want := uint64(proxies * 24)
			if res.Issued != want || res.Completed != want {
				t.Fatalf("issued %d completed %d, want %d", res.Issued, res.Completed, want)
			}
			if res.ServerApplied != res.Completed {
				t.Fatalf("servers applied %d, proxies completed %d", res.ServerApplied, res.Completed)
			}
			if res.Gets+res.Puts+res.CASOK+res.CASFail != res.Completed {
				t.Fatalf("verb counts %d+%d+%d+%d do not sum to completed %d",
					res.Gets, res.Puts, res.CASOK, res.CASFail, res.Completed)
			}
			if res.SimulatedClients < 1<<20 {
				t.Fatalf("simulated clients %d, want >= 2^20", res.SimulatedClients)
			}
			if res.DistinctClients < proxies || res.PayloadBytes == 0 {
				t.Fatalf("distinct clients %d payload %d: fan-in not observable",
					res.DistinctClients, res.PayloadBytes)
			}
			if res.Lat.Count() != res.Completed {
				t.Fatalf("latency samples %d, want %d", res.Lat.Count(), res.Completed)
			}
		})
	}
}

// TestKVHotKeySkewRaisesCASConflicts checks the contention signal: with
// every proxy hammering the same hot keys through stale shared caches,
// CAS failures must be more frequent than under a uniform keyspace.
func TestKVHotKeySkewRaisesCASConflicts(t *testing.T) {
	_, uniform, _ := runKVOnce(t, KindRVMA, 0, 0, 0)
	_, skewed, _ := runKVOnce(t, KindRVMA, 0, 0, 1.2)
	uf := float64(uniform.CASFail) / float64(uniform.CASFail+uniform.CASOK+1)
	sf := float64(skewed.CASFail) / float64(skewed.CASFail+skewed.CASOK+1)
	if sf <= uf {
		t.Fatalf("CAS conflict rate should rise with skew: uniform %.3f, skewed %.3f", uf, sf)
	}
}

// kvResString renders every observable field of a KVResult by value
// (histograms as count/mean/quantiles, not pointers) for byte comparison.
func kvResString(r *KVResult) string {
	h := func(h *metrics.Histogram) string {
		return fmt.Sprintf("[n%d mean%v p50:%v p99:%v p999:%v max%v]",
			h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Quantile(0.999), h.Max())
	}
	return fmt.Sprintf("prox%d cpp%d sim%d distinct%d iss%d comp%d get%d put%d casok%d casfail%d pay%d applied%d lat%s get%s put%s cas%s",
		r.Proxies, r.ClientsPerProxy, r.SimulatedClients, r.DistinctClients,
		r.Issued, r.Completed, r.Gets, r.Puts, r.CASOK, r.CASFail,
		r.PayloadBytes, r.ServerApplied, h(r.Lat), h(r.GetLat), h(r.PutLat), h(r.CASLat))
}

// TestKVShardCountInvariant is the motif-level determinism check: the
// makespan, executed-event count and full application-level result must
// be byte-identical at shards 1 and 4, for both transports, with and
// without loss + recovery.
func TestKVShardCountInvariant(t *testing.T) {
	for _, kind := range []TransportKind{KindRVMA, KindRDMA} {
		for _, drop := range []float64{0, 0.05} {
			t.Run(fmt.Sprintf("%s/drop=%v", kind, drop), func(t *testing.T) {
				mk1, res1, ev1 := runKVOnce(t, kind, 1, drop, 0.99)
				mk4, res4, ev4 := runKVOnce(t, kind, 4, drop, 0.99)
				if mk1 != mk4 {
					t.Fatalf("makespan differs: shards=1 %v, shards=4 %v", mk1, mk4)
				}
				if ev1 != ev4 {
					t.Fatalf("event count differs: shards=1 %d, shards=4 %d", ev1, ev4)
				}
				s1, s4 := kvResString(res1), kvResString(res4)
				if s1 != s4 {
					t.Fatalf("results differ across shard counts:\n s1: %s\n s4: %s", s1, s4)
				}
			})
		}
	}
}

// TestKVSingleHeapMatchesSharded pins the stronger property the KV motif
// can offer because it never uses spans during the run: the single-heap
// engine and the sharded engine produce identical application results.
func TestKVSingleHeapMatchesSharded(t *testing.T) {
	mk0, res0, _ := runKVOnce(t, KindRVMA, 0, 0, 0.99)
	mk1, res1, _ := runKVOnce(t, KindRVMA, 1, 0, 0.99)
	if mk0 != mk1 {
		t.Fatalf("makespan differs: single-heap %v, shards=1 %v", mk0, mk1)
	}
	s0, s1 := kvResString(res0), kvResString(res1)
	if s0 != s1 {
		t.Fatalf("results differ:\n heap: %s\n s1:   %s", s0, s1)
	}
}
