package motif

import (
	"bytes"
	"fmt"
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/metrics"
	"rvma/internal/recovery"
	"rvma/internal/sim"
	"rvma/internal/telemetry"
	"rvma/internal/topology"
)

// shardRunOut captures every observable output of one sharded motif run;
// byte-identity across shard counts is the package's core guarantee.
type shardRunOut struct {
	makespan sim.Time
	events   uint64
	stats    fabric.Stats
	snapshot string
	csv      string
}

// runShardedSweep runs a 16-rank Sweep3D on a dragonfly at the given shard
// count with full sharded instrumentation attached.
func runShardedSweep(t *testing.T, kind TransportKind, shards int, faults bool) shardRunOut {
	t.Helper()
	topo, err := topology.ForNodeCount(topology.KindDragonfly, 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultClusterConfig(topo, kind)
	cfg.Shards = shards
	if faults {
		cfg.Faults = &fabric.FaultPlan{DropRate: 0.05}
		rc := recovery.DefaultConfig()
		cfg.Recovery = &rc
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	c.AttachShardMetrics(reg)
	ss := telemetry.NewShardSet(c.Group, 10*sim.Microsecond)
	c.RegisterTelemetryShards(ss)
	ss.Start()
	mk, err := RunSweep3D(c, DefaultSweep3DConfig(topo.NumNodes()))
	if err != nil {
		t.Fatal(err)
	}
	c.FinishMetrics(reg)
	var mbuf, cbuf bytes.Buffer
	if err := reg.WriteJSON(&mbuf, mk); err != nil {
		t.Fatal(err)
	}
	if err := ss.WriteCSV(&cbuf); err != nil {
		t.Fatal(err)
	}
	return shardRunOut{
		makespan: mk,
		events:   c.EventsExecuted(),
		stats:    c.Net.TotalStats(),
		snapshot: mbuf.String(),
		csv:      cbuf.String(),
	}
}

// TestShardedClusterByteIdentical is the motif-level acceptance check for
// the sharded engine: makespan, executed-event count, fabric counters, the
// merged metrics snapshot and the merged telemetry CSV must be
// byte-identical at any shard count, for both transports, with and without
// fault injection + recovery.
func TestShardedClusterByteIdentical(t *testing.T) {
	for _, kind := range []TransportKind{KindRVMA, KindRDMA} {
		for _, faults := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/faults=%v", kind, faults), func(t *testing.T) {
				base := runShardedSweep(t, kind, 1, faults)
				if base.events == 0 || base.stats.PacketsDelivered == 0 {
					t.Fatalf("baseline ran nothing: %+v", base.stats)
				}
				for _, shards := range []int{2, 4} {
					got := runShardedSweep(t, kind, shards, faults)
					if got.makespan != base.makespan {
						t.Errorf("shards=%d makespan %v, want %v", shards, got.makespan, base.makespan)
					}
					if got.events != base.events {
						t.Errorf("shards=%d executed %d events, want %d", shards, got.events, base.events)
					}
					if got.stats != base.stats {
						t.Errorf("shards=%d stats %+v, want %+v", shards, got.stats, base.stats)
					}
					if got.snapshot != base.snapshot {
						t.Errorf("shards=%d metrics snapshot diverged from shards=1", shards)
					}
					if got.csv != base.csv {
						t.Errorf("shards=%d telemetry CSV diverged from shards=1", shards)
					}
				}
			})
		}
	}
}
