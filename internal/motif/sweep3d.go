package motif

import (
	"fmt"

	"rvma/internal/sim"
)

// Sweep3DConfig parameterizes the Sweep3D motif: a 2-D decomposition
// (Px x Py ranks) of a 3-D domain, swept as pipelined wavefronts from all
// 8 corners (4 diagonal directions x 2 z-orders). The domain is blocked
// in z with depth KBA (the Koch-Baker-Alcouffe pipeline), so each rank
// exchanges Nz/KBA messages with each downstream neighbor per corner.
// This is the latency-sensitive workload of the paper's Figure 7: "a
// 'wave' of communication happening over all of the processes ... mostly
// latency sensitive" (§V-B1).
type Sweep3DConfig struct {
	Px, Py     int // process grid
	Nx, Ny, Nz int // per-rank local cells
	KBA        int // z-block depth
	Vars       int // variables per cell (8 bytes each on the wire)
	// ComputePerCell is the per-cell computation time; the paper uses
	// "minimal compute to compare the impact of communication".
	ComputePerCell sim.Time
	Iterations     int
}

// DefaultSweep3DConfig sizes the motif for a given rank count (choosing
// the most square Px x Py decomposition), with ember-like defaults.
func DefaultSweep3DConfig(ranks int) Sweep3DConfig {
	px, py := squarest(ranks)
	return Sweep3DConfig{
		Px: px, Py: py,
		Nx: 16, Ny: 16, Nz: 64,
		KBA:            8,
		Vars:           4,
		ComputePerCell: 25 * sim.Picosecond,
		Iterations:     1,
	}
}

// Validate reports configuration errors.
func (c Sweep3DConfig) Validate(ranks int) error {
	if c.Px*c.Py != ranks {
		return fmt.Errorf("sweep3d: grid %dx%d does not match %d ranks", c.Px, c.Py, ranks)
	}
	if c.Nx <= 0 || c.Ny <= 0 || c.Nz <= 0 || c.KBA <= 0 || c.Vars <= 0 || c.Iterations <= 0 {
		return fmt.Errorf("sweep3d: non-positive parameter")
	}
	if c.Nz%c.KBA != 0 {
		return fmt.Errorf("sweep3d: Nz %d not divisible by KBA %d", c.Nz, c.KBA)
	}
	return nil
}

// xMsgBytes is the size of a message to an x-neighbor: one y-z face slab
// of the current z-block.
func (c Sweep3DConfig) xMsgBytes() int { return c.Ny * c.KBA * c.Vars * 8 }

// yMsgBytes is the size of a message to a y-neighbor.
func (c Sweep3DConfig) yMsgBytes() int { return c.Nx * c.KBA * c.Vars * 8 }

// blockComputeTime is the per-block computation.
func (c Sweep3DConfig) blockComputeTime() sim.Time {
	return sim.Scale(c.Nx*c.Ny*c.KBA*c.Vars, c.ComputePerCell)
}

// sweepCorners are the 8 sweep directions: 4 (dx, dy) quadrants, each
// swept twice (once per z direction — same communication pattern).
var sweepCorners = [8][2]int{
	{+1, +1}, {+1, +1},
	{+1, -1}, {+1, -1},
	{-1, +1}, {-1, +1},
	{-1, -1}, {-1, -1},
}

// RunSweep3D executes the motif on the cluster and returns the simulated
// makespan (all ranks finished).
func RunSweep3D(c *Cluster, cfg Sweep3DConfig) (sim.Time, error) {
	ranks := len(c.Transports)
	if err := cfg.Validate(ranks); err != nil {
		return 0, err
	}
	maxMsg := cfg.xMsgBytes()
	if y := cfg.yMsgBytes(); y > maxMsg {
		maxMsg = y
	}
	nBlocks := cfg.Nz / cfg.KBA

	fin := newFinishLine(ranks)

	for rank := 0; rank < ranks; rank++ {
		tp := c.Transports[rank]
		tag := c.TagFor(rank)
		i, j := rank%cfg.Px, rank/cfg.Px
		// All four lateral neighbors participate across the 8 corners.
		var peers []int
		for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			ni, nj := i+d[0], j+d[1]
			if ni >= 0 && ni < cfg.Px && nj >= 0 && nj < cfg.Py {
				peers = append(peers, nj*cfg.Px+ni)
			}
		}
		tag.Spawn(fmt.Sprintf("sweep-r%d", rank), func(p *sim.Process) {
			p.Wait(tp.Prepare(peers, peers, maxMsg))
			for iter := 0; iter < cfg.Iterations; iter++ {
				for _, corner := range sweepCorners {
					dx, dy := corner[0], corner[1]
					upX, hasUpX := gridNeighbor(i, j, -dx, 0, cfg.Px, cfg.Py)
					upY, hasUpY := gridNeighbor(i, j, 0, -dy, cfg.Px, cfg.Py)
					downX, hasDownX := gridNeighbor(i, j, dx, 0, cfg.Px, cfg.Py)
					downY, hasDownY := gridNeighbor(i, j, 0, dy, cfg.Px, cfg.Py)
					for blk := 0; blk < nBlocks; blk++ {
						if hasUpX {
							p.Wait(tp.Recv(upX, cfg.xMsgBytes()))
						}
						if hasUpY {
							p.Wait(tp.Recv(upY, cfg.yMsgBytes()))
						}
						p.Sleep(cfg.blockComputeTime())
						if hasDownX {
							tp.Send(downX, cfg.xMsgBytes())
						}
						if hasDownY {
							tp.Send(downY, cfg.yMsgBytes())
						}
					}
				}
			}
			fin.arrive(rank, tag.Now())
		})
	}
	c.run()
	if !fin.allDone() {
		return 0, fmt.Errorf("sweep3d: deadlock — %d ranks never finished", ranks)
	}
	return fin.finishTime(), nil
}

// gridNeighbor returns the rank at (i+di, j+dj) if it exists.
func gridNeighbor(i, j, di, dj, px, py int) (int, bool) {
	ni, nj := i+di, j+dj
	if ni < 0 || ni >= px || nj < 0 || nj >= py {
		return 0, false
	}
	return nj*px + ni, true
}

// squarest factors n into the most-square (a, b) with a*b = n and a <= b.
func squarest(n int) (int, int) {
	best := 1
	for a := 1; a*a <= n; a++ {
		if n%a == 0 {
			best = a
		}
	}
	return best, n / best
}
