package harness

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"rvma/internal/attrib"
	"rvma/internal/ledger"
	"rvma/internal/metrics"
	"rvma/internal/motif"
	"rvma/internal/recovery"
	"rvma/internal/sim"
	"rvma/internal/telemetry"
)

// This file is the harness's worker-pool cell runner. A figure sweep is
// hundreds of independent simulations; the runner executes them on
// Options.Workers goroutines and hands the results back in the order the
// cells were specified, so the tables, bench records and telemetry files a
// sweep produces are byte-identical at any worker count.
//
// The pool is host-side orchestration, not model code: each cell builds
// its own sim.Engine, metrics.Registry and telemetry.Sampler inside its
// worker, shares no mutable state with any other cell, and performs no
// file I/O — cells render into buffers, and the (serial) merge phase does
// all writing. The determinism lint's one-goroutine rule applies to model
// packages; the harness is exempt precisely because the goroutines here
// never touch an engine that another goroutine can see.

// cellSpec names one figure cell: a (motif, transport, network, link
// speed) point of a sweep, optionally under fault injection.
type cellSpec struct {
	M    MotifName
	Kind motif.TransportKind
	NC   NetConfig
	Gbps float64
	// Fault configures loss injection and recovery for this cell; the
	// zero value is the default lossless run.
	Fault faultSpec
	// KV parameterizes the KV dataplane workload; consulted only when M is
	// MotifKV.
	KV KVParams
}

// faultSpec is a cell's loss/recovery configuration.
type faultSpec struct {
	// Drop is the uniform receiver-ingress drop probability.
	Drop float64
	// Recover enables the recovery layer (timeout/retransmit).
	Recover bool
	// Budget overrides recovery.DefaultConfig's MaxRetries when > 0.
	Budget int
}

// cellName labels the spec for bench records and telemetry file names.
func (s cellSpec) cellName() string {
	name := cellName(s.M, s.NC, s.Kind, s.Gbps)
	if s.M == MotifKV {
		name += fmt.Sprintf("|skew%g|gap%gns", s.KV.Skew, s.KV.GapNs)
	}
	if s.Fault.Drop > 0 {
		name += fmt.Sprintf("|drop%g", s.Fault.Drop)
		if s.Fault.Recover {
			name += "|rec"
		}
	}
	return name
}

// cellOutput is everything one cell run produces. Side-effect-free: the
// telemetry CSV is rendered to memory and the bench record is detached,
// so the merge phase can apply them in canonical order.
type cellOutput struct {
	Spec     cellSpec
	Makespan sim.Time
	Err      error
	Reg      *metrics.Registry
	// Telemetry is the rendered per-cell time-series CSV (nil unless
	// Options.TelemetryDir is set).
	Telemetry []byte
	// Bench is the cell's perf sample (nil unless Options.Bench is set).
	Bench *BenchRecord
	// Recovery aggregates the cell's recovery-layer counters (zero when
	// recovery was disabled). Populated even when the run errored, so a
	// deadlocked cell still reports what it managed.
	Recovery recovery.Stats
	// Ranks is the cluster size actually built (topology rounding can
	// exceed Options.Nodes); fault tables derive goodput from it.
	Ranks int
	// PacketsDropped is the fabric's drop count for the cell.
	PacketsDropped uint64
	// Attrib is the cell's latency-attribution collector (spans decomposed
	// into per-stage wait/service); the figure sweeps merge these in spec
	// order into per-transport blame sections.
	Attrib *attrib.Collector
	// Ledger is the rendered execution-ledger JSON (nil unless
	// Options.LedgerDir is set). Like Telemetry, it is rendered in the
	// worker and written during the serial merge phase.
	Ledger []byte
	// KV is the application-level outcome of a KV cell (nil for other
	// motifs). Populated even when the run errored, so a wedged overload
	// cell still reports what completed.
	KV *motif.KVResult
}

// runOneCell executes a single cell against the given registry with the
// instrumentation the options ask for. It opens no files and touches no
// state outside its arguments.
func runOneCell(o Options, spec cellSpec, reg *metrics.Registry) cellOutput {
	out := cellOutput{Spec: spec, Reg: reg}
	inst := cellInstr{reg: reg, cell: spec.cellName(), shards: o.Shards}
	if reg.SpansEnabled() {
		out.Attrib = attrib.NewCollector(o.TailK)
		inst.attrib = out.Attrib
	}
	var local *BenchLog
	if o.Bench != nil {
		local = &BenchLog{}
		inst.bench = local
	}
	if o.TelemetryDir != "" {
		if o.Shards > 0 {
			inst.wantShardSet = true
		} else {
			inst.sampler = telemetry.NewUnbound(cellSampleInterval)
		}
	}
	if o.LedgerDir != "" {
		rs := runSpecFor(spec, o)
		if o.Shards > 0 {
			inst.canon = ledger.NewCanonicalRecorder(ledger.Options{Run: &rs})
		} else {
			inst.ledger = ledger.NewRecorder(ledger.Options{Run: &rs})
		}
	}
	var c *motif.Cluster
	out.Makespan, c, out.Err = runMotifPoint(spec, o.Nodes, o.Seed, &inst)
	out.KV = inst.kvResult
	if c != nil {
		out.Recovery = c.RecoveryStats()
		out.Ranks = len(c.Transports)
		out.PacketsDropped = c.Net.TotalStats().PacketsDropped
	}
	if out.Err != nil {
		return out
	}
	if inst.sampler != nil {
		var buf bytes.Buffer
		if err := inst.sampler.WriteCSV(&buf); err != nil {
			out.Err = err
			return out
		}
		out.Telemetry = buf.Bytes()
	}
	if inst.shardSet != nil {
		var buf bytes.Buffer
		if err := inst.shardSet.WriteCSV(&buf); err != nil {
			out.Err = err
			return out
		}
		out.Telemetry = buf.Bytes()
	}
	if local != nil && len(local.Records) > 0 {
		rec := local.Records[0]
		out.Bench = &rec
	}
	if inst.ledger != nil {
		b, err := inst.ledger.Finalize().Marshal()
		if err != nil {
			out.Err = err
			return out
		}
		out.Ledger = b
	}
	if inst.canon != nil {
		b, err := inst.canon.Finalize().Marshal()
		if err != nil {
			out.Err = err
			return out
		}
		out.Ledger = b
	}
	return out
}

// runCells executes every spec — each with its own engine, registry and
// sampler — on Options.workerCount() goroutines and returns the outputs
// indexed like specs, independent of completion order. With one worker
// (or one cell) it runs inline; the outputs are identical either way.
func runCells(o Options, specs []cellSpec) []cellOutput {
	out := make([]cellOutput, len(specs))
	workers := o.workerCount()
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i, s := range specs {
			out[i] = runOneCell(o, s, newCellRegistry(o.Shards))
		}
		return out
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = runOneCell(o, specs[i], newCellRegistry(o.Shards))
			}
		}()
	}
	for i := range specs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// flushCellOutput applies one successful cell's deferred side effects —
// the bench record and the telemetry file — during the serial merge
// phase. This is the only place cell telemetry touches the filesystem.
func flushCellOutput(o Options, out cellOutput) error {
	if out.Err != nil {
		return out.Err
	}
	if out.Bench != nil && o.Bench != nil {
		o.Bench.Append(*out.Bench)
	}
	if out.Telemetry != nil {
		name := telemetryFileName(out.Spec.cellName())
		if err := os.WriteFile(filepath.Join(o.TelemetryDir, name), out.Telemetry, 0o644); err != nil {
			return err
		}
	}
	if out.Ledger != nil {
		name := ledgerFileName(out.Spec.cellName())
		if err := os.WriteFile(filepath.Join(o.LedgerDir, name), out.Ledger, 0o644); err != nil {
			return err
		}
	}
	return nil
}

// telemetryFileName flattens a cell name into a file name.
func telemetryFileName(cell string) string {
	return strings.NewReplacer("/", "-", "|", "_").Replace(cell) + ".csv"
}

// ledgerFileName flattens a cell name into a ledger file name.
func ledgerFileName(cell string) string {
	return strings.NewReplacer("/", "-", "|", "_").Replace(cell) + ".ledger.json"
}
