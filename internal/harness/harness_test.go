package harness

import (
	"strconv"
	"strings"
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/motif"
	"rvma/internal/topology"
)

// tinyOptions keep harness tests fast.
func tinyOptions() Options {
	o := DefaultOptions()
	o.Sizes = []int{2, 4096}
	o.Iters = 30
	o.Runs = 2
	o.Nodes = 32
	o.LinkGbps = []float64{100, 2000}
	return o
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")
	tab.AddNote("n%d", 1)
	var sb strings.Builder
	tab.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"== T ==", "a", "bb", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Header: []string{"a", "b"}}
	tab.AddRow(`x,y`, `q"z`)
	var sb strings.Builder
	tab.CSV(&sb)
	want := "a,b\n\"x,y\",\"q\"\"z\"\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}

func TestFig4Shape(t *testing.T) {
	tab := Fig4(tinyOptions())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want one per size", len(tab.Rows))
	}
	// Reduction column must be a positive percentage at the small size.
	red := strings.TrimSuffix(tab.Rows[0][len(tab.Rows[0])-1], "%")
	v, err := strconv.ParseFloat(red, 64)
	if err != nil || v <= 0 {
		t.Fatalf("reduction cell %q not a positive percentage", red)
	}
}

func TestFig6Shape(t *testing.T) {
	tab := Fig6(tinyOptions())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	nSmall, _ := strconv.Atoi(tab.Rows[0][3])
	nBig, _ := strconv.Atoi(tab.Rows[1][3])
	if nSmall <= nBig {
		t.Fatalf("amortization count must fall with size: %d then %d", nSmall, nBig)
	}
}

func TestRunMotifPoint(t *testing.T) {
	nc := NetConfig{Name: "t", Kind: topology.KindHyperX, Routing: fabric.RouteStatic}
	tm, err := RunMotifPoint(MotifSweep3D, motif.KindRVMA, nc, 16, 100, 1)
	if err != nil || tm <= 0 {
		t.Fatalf("point: %v, %v", tm, err)
	}
	if _, err := RunMotifPoint("nosuch", motif.KindRVMA, nc, 16, 100, 1); err == nil {
		t.Fatal("unknown motif should error")
	}
}

func TestFig7Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("motif sweep in -short mode")
	}
	o := tinyOptions()
	o.LinkGbps = []float64{100}
	tab := Fig7(o)
	if len(tab.Rows) != len(motifNetworks()) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(motifNetworks()))
	}
	// Every speedup cell parses and is positive.
	for _, row := range tab.Rows {
		sp := strings.TrimSuffix(row[len(row)-1], "x")
		v, err := strconv.ParseFloat(sp, 64)
		if err != nil || v <= 0 {
			t.Fatalf("bad speedup cell %q", row[len(row)-1])
		}
	}
}

func TestNotifyAblationOrdering(t *testing.T) {
	tab := NotifyAblation(tinyOptions())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	mwait, _ := strconv.ParseFloat(tab.Rows[0][1], 64)
	poll, _ := strconv.ParseFloat(tab.Rows[1][1], 64)
	if mwait > poll {
		t.Fatalf("MWait (%v) should be no slower than polling (%v)", mwait, poll)
	}
}

func TestPCIeAblation(t *testing.T) {
	tab := PCIeAblation(tinyOptions())
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if !strings.Contains(tab.Rows[0][2], "300") {
		t.Fatalf("Gen4/5 spill penalty should be 300ns (2 x 150ns), got %q", tab.Rows[0][2])
	}
}

func TestMicroSummary(t *testing.T) {
	o := tinyOptions()
	tab := MicroSummary(o)
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if !strings.HasSuffix(row[2], "%") {
			t.Fatalf("measured cell %q should be a percentage", row[2])
		}
	}
}

func TestExtensionTables(t *testing.T) {
	o := tinyOptions()
	me := MatchEngineTable(o)
	if len(me.Rows) != 4 {
		t.Fatalf("matchengine rows = %d", len(me.Rows))
	}
	if me.Rows[0][1] != me.Rows[3][1] {
		t.Fatal("LUT lookup must be flat across entry counts")
	}
	coll := CollectivesTable(o)
	if len(coll.Rows) != 4 {
		t.Fatalf("collectives rows = %d (notes: %v)", len(coll.Rows), coll.Notes)
	}
	for _, row := range coll.Rows {
		sp := strings.TrimSuffix(row[3], "x")
		v, err := strconv.ParseFloat(sp, 64)
		if err != nil || v <= 1.0 {
			t.Fatalf("collective %s speedup %q should exceed 1x", row[0], row[3])
		}
	}
	lb := LastByteCheatAblation(o)
	if len(lb.Rows) != 3 {
		t.Fatalf("last-byte ablation rows = %d (notes: %v)", len(lb.Rows), lb.Notes)
	}
}
