package harness

import (
	"fmt"
	"strings"

	"rvma/internal/fabric"
	"rvma/internal/motif"
	"rvma/internal/recovery"
	"rvma/internal/stats"
	"rvma/internal/topology"
)

// defaultFaultRates are the receiver-ingress drop probabilities the
// FaultSweep table covers when Options.FaultRates is empty. 0.05 is the
// acceptance point: both transports must complete 100% of their operations
// under recovery there.
var defaultFaultRates = []float64{0.01, 0.02, 0.05, 0.1}

// FaultSweep runs the incast motif under uniform packet loss, with and
// without the recovery layer, for both transports. Each (rate, transport)
// row pairs a recovered run (makespan, completion rate, retransmit work,
// goodput) with the fate of the identical run without recovery — which
// deadlocks at any meaningful loss rate, since both transports' completion
// semantics assume a lossless fabric. Cells run on the worker pool like
// every other figure; the table is byte-identical at any worker count.
func FaultSweep(o Options) *Table {
	t := &Table{
		Title: "Fault sweep: incast under uniform loss (dragonfly/adaptive)",
		Header: []string{"transport", "drop", "makespan", "complete", "rexmit",
			"timeouts", "reclaims", "goodput", "no-recovery"},
	}
	rates := o.FaultRates
	if len(rates) == 0 {
		rates = defaultFaultRates
	}
	// The sweep varies loss rate, not link speed: it runs at the first
	// configured speed only.
	if len(o.LinkGbps) == 0 {
		o.LinkGbps = []float64{100}
	}
	nc := NetConfig{"dragonfly/adaptive", topology.KindDragonfly, fabric.RouteAdaptive}
	var specs []cellSpec
	for _, rate := range rates {
		for _, kind := range []motif.TransportKind{motif.KindRVMA, motif.KindRDMA} {
			specs = append(specs,
				cellSpec{M: MotifIncast, Kind: kind, NC: nc, Gbps: o.LinkGbps[0],
					Fault: faultSpec{Drop: rate, Recover: true, Budget: o.RetryBudget}},
				cellSpec{M: MotifIncast, Kind: kind, NC: nc, Gbps: o.LinkGbps[0],
					Fault: faultSpec{Drop: rate}})
		}
	}
	outs := runCells(o, specs)
	ic := motif.DefaultIncastConfig()
	for i := 0; i < len(outs); i += 2 {
		rec, bare := outs[i], outs[i+1]
		spec := rec.Spec
		if bare.Err == nil {
			if err := flushCellOutput(o, bare); err != nil {
				t.AddNote("FAILED %s: %v", bare.Spec.cellName(), err)
			}
		}
		if err := flushCellOutput(o, rec); err != nil {
			t.AddRow(spec.Kind.String(), fmt.Sprintf("%g", spec.Fault.Drop),
				"FAILED", "-", "-", "-", "-", "-", bareStatus(bare))
			t.AddNote("FAILED %s: %v", spec.cellName(), err)
			continue
		}
		rs := rec.Recovery
		completion := "-"
		if rs.OpsStarted > 0 {
			completion = fmt.Sprintf("%.1f%%", 100*float64(rs.OpsCompleted)/float64(rs.OpsStarted))
		}
		// Incast payload: every non-root rank sends Messages x MsgBytes to
		// the root; goodput is that payload over the recovered makespan.
		goodput := "-"
		if secs := rec.Makespan.Seconds(); secs > 0 && rec.Ranks > 1 {
			bits := float64(rec.Ranks-1) * float64(ic.Messages) * float64(ic.MsgBytes) * 8
			goodput = stats.FormatGbps(bits / secs / 1e9)
		}
		t.AddRow(spec.Kind.String(), fmt.Sprintf("%g", spec.Fault.Drop),
			rec.Makespan.String(), completion,
			fmt.Sprintf("%d", rs.Retransmits), fmt.Sprintf("%d", rs.Timeouts),
			fmt.Sprintf("%d", rs.Reclaims), goodput, bareStatus(bare))
	}
	t.AddNote("recovered cells use timeout/retransmit with the default budget (MaxRetries %d unless -retry-budget overrides)",
		defaultRetryBudget(o))
	t.AddNote("no-recovery column reruns the identical cell without the recovery layer; DEADLOCK means the motif never completed")
	t.AddNote("goodput counts application payload only (retransmitted bytes excluded) at link %s", stats.FormatGbps(o.LinkGbps[0]))
	return t
}

// bareStatus summarizes the no-recovery control cell: its makespan when it
// somehow completed, DEADLOCK when the lost packets wedged it, or the raw
// error otherwise.
func bareStatus(out cellOutput) string {
	if out.Err == nil {
		return out.Makespan.String()
	}
	if strings.Contains(out.Err.Error(), "deadlock") {
		return "DEADLOCK"
	}
	return "ERROR"
}

// defaultRetryBudget reports the retry budget the sweep's recovered cells
// actually use, for the table note.
func defaultRetryBudget(o Options) int {
	if o.RetryBudget > 0 {
		return o.RetryBudget
	}
	return recovery.DefaultConfig().MaxRetries
}
