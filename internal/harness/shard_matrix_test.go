package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/ledger"
	"rvma/internal/motif"
	"rvma/internal/topology"
)

// matrixOut is one transport's observable output from a matrix cell run.
type matrixOut struct {
	snapshot  []byte // makespan + metrics snapshot
	telemetry []byte // rendered time-series CSV
	chainHead string // canonical ledger chain head
	events    uint64 // canonical ledger event count
}

// runShardMatrix runs the Figure-7 determinism cell (dragonfly/adaptive,
// 5% loss with recovery) for both transports through the full harness
// cell pipeline — worker pool, per-shard telemetry, canonical ledger —
// and returns one matrixOut per transport.
func runShardMatrix(t *testing.T, shards, workers int) map[motif.TransportKind]matrixOut {
	t.Helper()
	o := DefaultOptions()
	o.Nodes = 32
	o.Shards = shards
	o.Workers = workers
	o.TelemetryDir = t.TempDir()
	o.LedgerDir = t.TempDir()
	nc := NetConfig{"dragonfly/adaptive", topology.KindDragonfly, fabric.RouteAdaptive}
	fault := faultSpec{Drop: 0.05, Recover: true}
	specs := []cellSpec{
		{M: MotifSweep3D, Kind: motif.KindRVMA, NC: nc, Gbps: 100, Fault: fault},
		{M: MotifSweep3D, Kind: motif.KindRDMA, NC: nc, Gbps: 100, Fault: fault},
	}
	outs := runCells(o, specs)
	res := make(map[motif.TransportKind]matrixOut, len(outs))
	for _, out := range outs {
		if out.Err != nil {
			t.Fatalf("shards=%d workers=%d %s: %v", shards, workers, out.Spec.Kind, out.Err)
		}
		var snap bytes.Buffer
		fmt.Fprintf(&snap, "makespan_ns=%v\n", out.Makespan.Nanoseconds())
		if err := out.Reg.WriteJSON(&snap, out.Makespan); err != nil {
			t.Fatal(err)
		}
		var led ledger.Ledger
		if err := json.Unmarshal(out.Ledger, &led); err != nil {
			t.Fatal(err)
		}
		if led.Mode != ledger.ModeCanonical {
			t.Fatalf("shards=%d: ledger mode %q, want %q", shards, led.Mode, ledger.ModeCanonical)
		}
		res[out.Spec.Kind] = matrixOut{
			snapshot:  snap.Bytes(),
			telemetry: out.Telemetry,
			chainHead: led.ChainHead,
			events:    led.Events,
		}
	}
	return res
}

// TestShardWorkerMatrix is the harness-level acceptance gate for the
// sharded engine: one Figure-7 cell (dragonfly/adaptive, 5% loss with
// recovery, both transports) must produce byte-identical metrics
// snapshots, telemetry CSVs and canonical-ledger chain heads at every
// shard count in {1, 2, 4, 8} and every worker-pool width in {1, 4}.
// Shard count partitions the simulation itself; worker count only
// schedules independent cells — neither may leak into the results.
func TestShardWorkerMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is 16 motif simulations; skipped in -short")
	}
	base := runShardMatrix(t, 1, 1)
	for kind, b := range base {
		if b.events == 0 {
			t.Fatalf("%s baseline ledger recorded no events", kind)
		}
		if len(b.telemetry) == 0 {
			t.Fatalf("%s baseline rendered no telemetry", kind)
		}
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, workers := range []int{1, 4} {
			if shards == 1 && workers == 1 {
				continue
			}
			got := runShardMatrix(t, shards, workers)
			for kind, b := range base {
				g := got[kind]
				label := fmt.Sprintf("shards=%d workers=%d %s", shards, workers, kind)
				if !bytes.Equal(g.snapshot, b.snapshot) {
					t.Errorf("%s: metrics snapshot diverged from baseline:\n%s", label,
						firstDiffContext(g.snapshot, b.snapshot))
				}
				if !bytes.Equal(g.telemetry, b.telemetry) {
					t.Errorf("%s: telemetry CSV diverged from baseline:\n%s", label,
						firstDiffContext(g.telemetry, b.telemetry))
				}
				if g.chainHead != b.chainHead {
					t.Errorf("%s: ledger chain head %s, baseline %s", label, g.chainHead, b.chainHead)
				}
				if g.events != b.events {
					t.Errorf("%s: ledger recorded %d events, baseline %d", label, g.events, b.events)
				}
			}
		}
	}
}
