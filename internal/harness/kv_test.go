package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/ledger"
	"rvma/internal/motif"
	"rvma/internal/topology"
)

// readDirBytes reads every file in dir into a name -> contents map.
func readDirBytes(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	files := make(map[string][]byte)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		files[ent.Name()] = data
	}
	return files
}

// kvTableArtifacts renders the KV dataplane table at a given worker and
// shard count and returns the table bytes plus the per-cell canonical
// ledgers (file name -> parsed ledger) when shards > 0.
func kvTableArtifacts(t *testing.T, workers, shards int) ([]byte, map[string]ledger.Ledger) {
	t.Helper()
	o := DefaultOptions()
	o.Nodes = 32
	o.Workers = workers
	o.Shards = shards
	if shards > 0 {
		o.LedgerDir = t.TempDir()
	}
	var buf bytes.Buffer
	KVTable(o).Fprint(&buf)
	if strings.Contains(buf.String(), "FAILED") {
		t.Fatalf("workers=%d shards=%d: KV table has failed cells:\n%s", workers, shards, buf.String())
	}
	ledgers := make(map[string]ledger.Ledger)
	if o.LedgerDir != "" {
		for name, data := range readDirBytes(t, o.LedgerDir) {
			var led ledger.Ledger
			if err := json.Unmarshal(data, &led); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			ledgers[name] = led
		}
	}
	return buf.Bytes(), ledgers
}

// TestKVTableSmoke pins the shape of the KV table on the single-heap
// path: every sweep row renders with real quantiles and goodput, the
// loss rows appear, and the population note reports the >= 2^20
// simulated-client fan-in.
func TestKVTableSmoke(t *testing.T) {
	table, _ := kvTableArtifacts(t, 1, 0)
	s := string(table)
	for _, want := range []string{"p99.9", "cas-fail", "simulated clients", "overload"} {
		if !strings.Contains(s, want) {
			t.Errorf("KV table missing %q:\n%s", want, s)
		}
	}
	rows := 0
	for _, line := range strings.Split(s, "\n") {
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "RVMA") || strings.HasPrefix(trimmed, "RDMA") {
			rows++
			if strings.Contains(line, " - ") {
				t.Errorf("row has blank cells: %q", line)
			}
		}
	}
	if want := len(kvSkews)*len(kvLoads)*2 + 2; rows != want {
		t.Errorf("KV table has %d data rows, want %d:\n%s", rows, want, s)
	}
}

// TestKVTableIdenticalAcrossWorkersAndShards is the acceptance gate for
// the KV dataplane figure: the rendered table must be byte-identical at
// worker counts {1, 4} and shard counts {1, 4}, and every cell's
// canonical-ledger chain head and event count must match across the
// whole matrix. This covers both transports, all skew/load points, and
// the 5% loss + recovery rows in one sweep.
func TestKVTableIdenticalAcrossWorkersAndShards(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix is 4 full KV sweeps; skipped in -short")
	}
	baseTable, baseLedgers := kvTableArtifacts(t, 1, 1)
	if len(baseLedgers) == 0 {
		t.Fatal("baseline wrote no ledgers")
	}
	for name, led := range baseLedgers {
		if led.Mode != ledger.ModeCanonical {
			t.Fatalf("%s: ledger mode %q, want %q", name, led.Mode, ledger.ModeCanonical)
		}
		if led.Events == 0 || led.ChainHead == "" {
			t.Fatalf("%s: empty canonical ledger (events=%d head=%q)", name, led.Events, led.ChainHead)
		}
		if led.Run == nil || led.Run.Motif != "kv" {
			t.Fatalf("%s: ledger run spec does not carry the kv motif: %+v", name, led.Run)
		}
	}
	for _, cfg := range []struct{ workers, shards int }{{4, 1}, {1, 4}, {4, 4}} {
		table, ledgers := kvTableArtifacts(t, cfg.workers, cfg.shards)
		if !bytes.Equal(baseTable, table) {
			t.Errorf("workers=%d shards=%d: table diverged from workers=1 shards=1:\n%s",
				cfg.workers, cfg.shards, firstDiffContext(baseTable, table))
		}
		if len(ledgers) != len(baseLedgers) {
			t.Fatalf("workers=%d shards=%d: %d ledgers, baseline %d",
				cfg.workers, cfg.shards, len(ledgers), len(baseLedgers))
		}
		for name, b := range baseLedgers {
			g, ok := ledgers[name]
			if !ok {
				t.Errorf("workers=%d shards=%d: missing ledger %s", cfg.workers, cfg.shards, name)
				continue
			}
			if g.ChainHead != b.ChainHead {
				t.Errorf("workers=%d shards=%d %s: chain head %s, baseline %s",
					cfg.workers, cfg.shards, name, g.ChainHead, b.ChainHead)
			}
			if g.Events != b.Events {
				t.Errorf("workers=%d shards=%d %s: %d events, baseline %d",
					cfg.workers, cfg.shards, name, g.Events, b.Events)
			}
		}
	}
}

// TestKVRunSpecRoundTrip checks runSpecFor/cellSpecFor are inverses for
// KV cells, including the resolved-default embedding: a cell that left
// every KVParams field zero except skew/gap must round-trip into a spec
// whose resolved config is unchanged.
func TestKVRunSpecRoundTrip(t *testing.T) {
	o := DefaultOptions()
	o.Nodes = 32
	o.Shards = 2
	nc := NetConfig{"dragonfly/adaptive", topology.KindDragonfly, fabric.RouteAdaptive}
	spec := cellSpec{M: MotifKV, Kind: motif.KindRVMA, NC: nc, Gbps: 100,
		KV:    KVParams{Skew: 1.2, GapNs: 500},
		Fault: faultSpec{Drop: 0.05, Recover: true, Budget: 6}}
	rs := runSpecFor(spec, o)
	if rs.Motif != "kv" || rs.KVSkew != 1.2 || rs.KVGapNs != 500 {
		t.Fatalf("run spec did not carry KV knobs: %+v", rs)
	}
	if rs.KVServers == 0 || rs.KVClients == 0 || rs.KVKeys == 0 || rs.KVOps == 0 || rs.KVWindow == 0 {
		t.Fatalf("run spec did not embed resolved defaults: %+v", rs)
	}
	back, err := cellSpecFor(rs)
	if err != nil {
		t.Fatal(err)
	}
	if back.M != MotifKV || back.Fault != spec.Fault {
		t.Fatalf("round trip lost cell identity: %+v", back)
	}
	// The original run resolves defaults against the topology-rounded rank
	// count, exactly as runSpecFor embeds them.
	topo, err := topology.ForNodeCount(nc.Kind, o.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	orig := spec.KV.Config(topo.NumNodes(), o.Seed)
	replay := back.KV.Config(topo.NumNodes(), o.Seed)
	if orig != replay {
		t.Fatalf("resolved configs differ:\n orig:   %+v\n replay: %+v", orig, replay)
	}
}
