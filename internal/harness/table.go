// Package harness regenerates every table and figure in the paper's
// evaluation section (§V): the Verbs and UCX latency comparisons
// (Figures 4, 5), the setup-amortization analysis (Figure 6), and the
// Sweep3D and Halo3D motif sweeps over topologies, routings and link
// speeds (Figures 7, 8), plus the summary claims (65.8% / 45.8% latency
// reductions, 3.56x / 1.57x average speedups, 4.4x best case) and the
// ablation studies DESIGN.md calls out.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result. Sections are subsidiary tables
// (e.g. a figure's latency-attribution breakdown) rendered after the main
// table by Fprint; CSV emits only the main table.
type Table struct {
	Title    string
	Header   []string
	Rows     [][]string
	Notes    []string
	Sections []*Table
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddNote appends an explanatory footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Header)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	for _, s := range t.Sections {
		s.Fprint(w)
	}
}

// CSV renders the table as comma-separated values (no notes).
func (t *Table) CSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Header))
	for i, h := range t.Header {
		cells[i] = esc(h)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}
