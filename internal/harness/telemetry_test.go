package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/metrics"
	"rvma/internal/motif"
	"rvma/internal/sim"
	"rvma/internal/telemetry"
	"rvma/internal/topology"
)

// telemetryTestNet is the Figure-7 cell the telemetry tests run: the
// adaptively routed dragonfly exercises the engine RNG (jitter, detours),
// the hardest case for sampler invisibility.
func telemetryTestNet() NetConfig {
	return NetConfig{"dragonfly/adaptive", topology.KindDragonfly, fabric.RouteAdaptive}
}

// TestSamplingPreservesDeterminism is the tentpole acceptance gate:
// attaching the in-sim sampler must not perturb the model. One Figure-7
// cell runs with sampling disabled and at two different cadences; the
// makespan and the full metrics snapshot must be byte-identical in all
// three configurations, for both transports.
func TestSamplingPreservesDeterminism(t *testing.T) {
	nc := telemetryTestNet()
	for _, kind := range []motif.TransportKind{motif.KindRVMA, motif.KindRDMA} {
		t.Run(kind.String(), func(t *testing.T) {
			run := func(interval sim.Time) []byte {
				reg := metrics.NewRegistry()
				reg.EnableSpans()
				inst := cellInstr{reg: reg}
				if interval > 0 {
					inst.sampler = telemetry.NewUnbound(interval)
				}
				mk, _, err := runMotifPoint(cellSpec{M: MotifSweep3D, Kind: kind, NC: nc, Gbps: 100}, 64, 42, &inst)
				if err != nil {
					t.Fatal(err)
				}
				if interval > 0 && inst.sampler.Samples() == 0 {
					t.Fatal("sampler attached but recorded no rows")
				}
				var buf bytes.Buffer
				fmt.Fprintf(&buf, "makespan_ns=%v\n", mk.Nanoseconds())
				if err := reg.WriteJSON(&buf, mk); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			unsampled := run(0)
			for _, interval := range []sim.Time{10 * sim.Microsecond, 3 * sim.Microsecond} {
				if got := run(interval); !bytes.Equal(unsampled, got) {
					t.Errorf("sampling at %v changed the run:\n--- unsampled ---\n%s\n--- sampled ---\n%s",
						interval, firstDiffContext(unsampled, got), firstDiffContext(got, unsampled))
				}
			}
		})
	}
}

// TestRunFigureCellWritesTimeseries checks the per-cell CSV emission the
// figure sweeps do under Options.TelemetryDir: the file exists, has the
// expected header shape with sorted columns, carries data rows, and two
// identical runs produce byte-identical files.
func TestRunFigureCellWritesTimeseries(t *testing.T) {
	o := DefaultOptions()
	o.Nodes = 64
	o.TelemetryDir = t.TempDir()
	nc := telemetryTestNet()

	runOnce := func() []byte {
		reg := newCellRegistry(0)
		if _, err := runFigureCell(o, MotifSweep3D, motif.KindRVMA, nc, 100, reg); err != nil {
			t.Fatal(err)
		}
		name := strings.NewReplacer("/", "-", "|", "_").
			Replace(cellName(MotifSweep3D, nc, motif.KindRVMA, 100)) + ".csv"
		data, err := os.ReadFile(filepath.Join(o.TelemetryDir, name))
		if err != nil {
			t.Fatalf("cell time-series not written: %v", err)
		}
		return data
	}

	first := runOnce()
	lines := strings.Split(strings.TrimRight(string(first), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("cell time-series has no data rows:\n%s", first)
	}
	cols := strings.Split(lines[0], ",")
	if cols[0] != "time_ns" {
		t.Fatalf("header starts with %q, want time_ns", cols[0])
	}
	for i := 2; i < len(cols); i++ {
		if cols[i-1] >= cols[i] {
			t.Fatalf("columns not sorted: %q before %q", cols[i-1], cols[i])
		}
	}
	for _, want := range []string{"fabric.util.sw", "rvma.posted_buffers_total", "sim.queue_depth"} {
		if !strings.Contains(lines[0], want) {
			t.Errorf("header missing probe %q:\n%s", want, lines[0])
		}
	}

	if second := runOnce(); !bytes.Equal(first, second) {
		t.Error("same-seed cell time-series differ between runs")
	}
}

// TestBenchLogRecordsCells checks the rvmabench -json-out plumbing: a cell
// run under Options.Bench appends one record with the cell label and
// plausible fields, and WriteJSON round-trips.
func TestBenchLogRecordsCells(t *testing.T) {
	o := DefaultOptions()
	o.Nodes = 64
	o.Bench = &BenchLog{}
	nc := telemetryTestNet()
	if _, err := runFigureCell(o, MotifSweep3D, motif.KindRVMA, nc, 100, newCellRegistry(0)); err != nil {
		t.Fatal(err)
	}
	if len(o.Bench.Records) != 1 {
		t.Fatalf("bench log has %d records, want 1", len(o.Bench.Records))
	}
	rec := o.Bench.Records[0]
	if want := cellName(MotifSweep3D, nc, motif.KindRVMA, 100); rec.Cell != want {
		t.Errorf("cell = %q, want %q", rec.Cell, want)
	}
	if rec.SimNS <= 0 || rec.Events == 0 || rec.EventsPerSec <= 0 {
		t.Errorf("implausible record: %+v", rec)
	}

	var buf bytes.Buffer
	if err := o.Bench.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Records []struct {
			Cell   string  `json:"cell"`
			SimNS  float64 `json:"sim_ns"`
			Events uint64  `json:"events"`
		} `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("bench JSON invalid: %v\n%s", err, buf.String())
	}
	if len(parsed.Records) != 1 || parsed.Records[0].Cell != rec.Cell ||
		parsed.Records[0].Events != rec.Events {
		t.Fatalf("bench JSON round-trip mismatch: %+v vs %+v", parsed.Records, rec)
	}
}
