package harness

import (
	"fmt"
	"time"

	"rvma/internal/attrib"
	"rvma/internal/fabric"
	"rvma/internal/ledger"
	"rvma/internal/metrics"
	"rvma/internal/motif"
	"rvma/internal/pcie"
	"rvma/internal/recovery"
	"rvma/internal/sim"
	"rvma/internal/stats"
	"rvma/internal/telemetry"
	"rvma/internal/topology"
)

// NetConfig is one (topology family, routing strategy) point of the
// Figure 7/8 sweeps — "a variety of different network topologies and
// routing strategies" (§V-B1).
type NetConfig struct {
	Name    string
	Kind    topology.Kind
	Routing fabric.RoutingMode
}

// motifNetworks lists the sweep points, including the two configurations
// the paper names explicitly: the adaptively routed dragonfly (Sweep3D
// best case) and HyperX with Dimension Order Routing (Halo3D best case).
func motifNetworks() []NetConfig {
	return []NetConfig{
		{"dragonfly/adaptive", topology.KindDragonfly, fabric.RouteAdaptive},
		{"dragonfly/valiant", topology.KindDragonfly, fabric.RouteValiant},
		{"dragonfly/minimal", topology.KindDragonfly, fabric.RouteStatic},
		{"fattree/static", topology.KindFatTree, fabric.RouteStatic},
		{"fattree/adaptive", topology.KindFatTree, fabric.RouteAdaptive},
		{"hyperx/DOR", topology.KindHyperX, fabric.RouteStatic},
		{"hyperx/adaptive", topology.KindHyperX, fabric.RouteAdaptive},
		{"torus3d/DOR", topology.KindTorus3D, fabric.RouteStatic},
		{"torus3d/adaptive", topology.KindTorus3D, fabric.RouteAdaptive},
	}
}

// MotifName selects a workload for RunMotifPoint.
type MotifName string

// Motifs runnable through the harness.
const (
	MotifSweep3D MotifName = "sweep3d"
	MotifHalo3D  MotifName = "halo3d"
	MotifIncast  MotifName = "incast"
	MotifKV      MotifName = "kv"
)

// RunMotifPoint runs one motif under one transport on one network
// configuration and returns the simulated makespan.
func RunMotifPoint(m MotifName, kind motif.TransportKind, nc NetConfig, nodes int, gbps float64, seed uint64) (sim.Time, error) {
	return RunMotifPointInstrumented(m, kind, nc, nodes, gbps, seed, nil)
}

// RunMotifPointInstrumented is RunMotifPoint with a metrics registry
// attached to every layer of the cluster before the run; the figure tables
// use it (one registry per experiment cell, spans enabled) to report tail
// latency next to the makespan. A nil registry runs uninstrumented.
func RunMotifPointInstrumented(m MotifName, kind motif.TransportKind, nc NetConfig, nodes int, gbps float64, seed uint64, reg *metrics.Registry) (sim.Time, error) {
	makespan, _, err := runMotifPoint(cellSpec{M: m, Kind: kind, NC: nc, Gbps: gbps}, nodes, seed, &cellInstr{reg: reg})
	return makespan, err
}

// cellInstr bundles the optional per-cell instrumentation runMotifPoint
// attaches before a run: a metrics registry, an in-sim sampler (already
// holding any extra probes; the cluster's are registered here), and a
// bench log for wall-clock throughput records. With shards > 0 the cell
// runs on a sim.ShardGroup: the sampler is replaced by a per-shard
// telemetry.ShardSet and the raw ledger recorder by the canonical one,
// both built inside runMotifPoint once the group exists.
type cellInstr struct {
	reg     *metrics.Registry
	sampler *telemetry.Sampler
	bench   *BenchLog
	attrib  *attrib.Collector
	ledger  *ledger.Recorder
	cell    string // bench/telemetry label: "motif|network|transport|gbps"

	// kvResult carries the application-level outcome of a KV cell back to
	// the caller (nil for every other motif, and on cluster-build errors).
	kvResult *motif.KVResult

	shards int // partition count; 0 = legacy single heap
	// unsafeScale, when != 0 and != 1, multiplies the shard group's
	// lookahead after construction — only replays of CI canary runs set it
	// (see ledger.RunSpec.UnsafeLookaheadScale).
	unsafeScale float64
	canon       *ledger.CanonicalRecorder
	// wantShardSet asks runMotifPoint to build and start a ShardSet on the
	// cluster's group; the set is left here for the caller to render.
	wantShardSet bool
	shardSet     *telemetry.ShardSet
}

// runMotifPoint is the shared cell runner behind the exported entry points
// and the figure sweeps. It returns the cluster alongside the makespan so
// callers can read recovery/fabric counters — including when the motif run
// itself errors (a deadlocked fault cell still reports what it managed);
// the cluster is nil only when it could not be built at all.
func runMotifPoint(spec cellSpec, nodes int, seed uint64, inst *cellInstr) (sim.Time, *motif.Cluster, error) {
	topo, err := topology.ForNodeCount(spec.NC.Kind, nodes)
	if err != nil {
		return 0, nil, err
	}
	cfg := motif.DefaultClusterConfig(topo, spec.Kind)
	cfg.Routing = spec.NC.Routing
	cfg.Seed = seed
	cfg.PCIe = pcie.Gen4x16()
	cfg.ApplyLinkSpeed(spec.Gbps)
	cfg.Shards = inst.shards
	if spec.Fault.Drop > 0 {
		cfg.Faults = &fabric.FaultPlan{DropRate: spec.Fault.Drop}
	}
	if spec.Fault.Recover {
		rc := recovery.DefaultConfig()
		if spec.Fault.Budget > 0 {
			rc.MaxRetries = spec.Fault.Budget
		}
		cfg.Recovery = &rc
	}
	c, err := motif.NewCluster(cfg)
	if err != nil {
		return 0, nil, err
	}
	if inst.unsafeScale != 0 && inst.unsafeScale != 1 && c.Group != nil {
		c.Group.UnsafeScaleLookahead(inst.unsafeScale)
	}
	if inst.ledger != nil {
		inst.ledger.Attach(c.Eng)
	}
	if inst.canon != nil {
		if c.Group != nil {
			inst.canon.AttachGroup(c.Group)
		} else {
			inst.canon.Attach(c.Eng)
		}
	}
	if inst.reg != nil {
		c.AttachShardMetrics(inst.reg)
		if inst.attrib != nil {
			c.AttachAttribution(inst.reg, inst.attrib)
		}
	}
	if inst.sampler != nil {
		c.RegisterTelemetry(inst.sampler)
		inst.sampler.Start()
	}
	if inst.wantShardSet {
		inst.shardSet = telemetry.NewShardSet(c.Group, cellSampleInterval)
		c.RegisterTelemetryShards(inst.shardSet)
		inst.shardSet.Start()
	}
	start := time.Now()
	var makespan sim.Time
	switch spec.M {
	case MotifSweep3D:
		makespan, err = motif.RunSweep3D(c, motif.DefaultSweep3DConfig(topo.NumNodes()))
	case MotifHalo3D:
		makespan, err = motif.RunHalo3D(c, motif.DefaultHalo3DConfig(topo.NumNodes()))
	case MotifIncast:
		makespan, err = motif.RunIncast(c, motif.DefaultIncastConfig())
	case MotifKV:
		var res *motif.KVResult
		makespan, res, err = motif.RunKV(c, spec.KV.Config(topo.NumNodes(), seed))
		inst.kvResult = res
		if res != nil && inst.reg != nil {
			foldKVResult(inst.reg, res)
		}
	default:
		return 0, c, fmt.Errorf("harness: unknown motif %q", spec.M)
	}
	if err != nil {
		return 0, c, err
	}
	c.FinishMetrics(inst.reg)
	if inst.bench != nil {
		inst.bench.Record(inst.cell, time.Since(start), makespan, c.EventsExecuted(), inst.shards)
	}
	return makespan, c, nil
}

// cellName labels one experiment cell for bench records and telemetry
// file names.
func cellName(m MotifName, nc NetConfig, kind motif.TransportKind, gbps float64) string {
	return fmt.Sprintf("%s|%s|%s|%gGbps", m, nc.Name, kind, gbps)
}

// newCellRegistry returns the per-cell registry the figure sweeps attach:
// spans enabled on the legacy single-heap path, plain counters/gauges on
// sharded cells (span instrumentation keys state across nodes, which
// would cross shard boundaries).
func newCellRegistry(shards int) *metrics.Registry {
	reg := metrics.NewRegistry()
	if shards == 0 {
		reg.EnableSpans()
	}
	return reg
}

// putP99 reads the 99th-percentile end-to-end put latency a cell registry
// accumulated ("-" when the transport recorded no puts).
func putP99(reg *metrics.Registry, kind motif.TransportKind) string {
	name := "span.rvma.put/total"
	if kind == motif.KindRDMA {
		name = "span.rdma.put/total"
	}
	h := reg.Histogram(name)
	if h.Count() == 0 {
		return "-"
	}
	return sim.FromNanos(h.Quantile(0.99)).String()
}

// cellSampleInterval is the sampling cadence for per-cell time-series in
// the figure sweeps (Options.TelemetryDir).
const cellSampleInterval = 10 * sim.Microsecond

// runFigureCell runs one (motif, network, transport, link-speed) cell with
// the figure instrumentation — span registry always, plus a buffered
// sampler and a bench record when the options ask for them — and then
// flushes the cell's telemetry file and bench record. It is the serial
// single-cell entry point; the sweeps batch cells through runCells and
// flush during their merge phase instead.
func runFigureCell(o Options, m MotifName, kind motif.TransportKind, nc NetConfig, gbps float64, reg *metrics.Registry) (sim.Time, error) {
	out := runOneCell(o, cellSpec{M: m, Kind: kind, NC: nc, Gbps: gbps}, reg)
	if err := flushCellOutput(o, out); err != nil {
		return 0, err
	}
	return out.Makespan, nil
}

// motifFigure is the shared implementation of Figures 7 and 8. Every
// (network, link speed, transport) cell is an independent simulation; they
// run on the worker pool and merge here in sweep order, so the table,
// bench log and telemetry files do not depend on Options.Workers.
func motifFigure(o Options, m MotifName, figure string) *Table {
	t := &Table{
		Title:  fmt.Sprintf("%s: RVMA vs RDMA using %s (%d+ nodes)", figure, m, o.Nodes),
		Header: []string{"network", "link", "RVMA", "put p99", "RDMA", "put p99", "speedup"},
	}
	var specs []cellSpec
	for _, nc := range motifNetworks() {
		for _, gbps := range o.LinkGbps {
			specs = append(specs,
				cellSpec{M: m, Kind: motif.KindRVMA, NC: nc, Gbps: gbps},
				cellSpec{M: m, Kind: motif.KindRDMA, NC: nc, Gbps: gbps})
		}
	}
	outs := runCells(o, specs)
	var speedups []float64
	best := 0.0
	bestAt := ""
	for i := 0; i < len(outs); i += 2 {
		rv, rd := outs[i], outs[i+1]
		nc, gbps := rv.Spec.NC, rv.Spec.Gbps
		if err := flushCellOutput(o, rv); err != nil {
			t.AddNote("SKIPPED %s @%s: %v", nc.Name, stats.FormatGbps(gbps), err)
			continue
		}
		if err := flushCellOutput(o, rd); err != nil {
			t.AddNote("SKIPPED %s @%s: %v", nc.Name, stats.FormatGbps(gbps), err)
			continue
		}
		sp := stats.Speedup(rd.Makespan.Seconds(), rv.Makespan.Seconds())
		speedups = append(speedups, sp)
		if sp > best {
			best = sp
			bestAt = fmt.Sprintf("%s @%s", nc.Name, stats.FormatGbps(gbps))
		}
		t.AddRow(nc.Name, stats.FormatGbps(gbps),
			rv.Makespan.String(), putP99(rv.Reg, motif.KindRVMA),
			rd.Makespan.String(), putP99(rd.Reg, motif.KindRDMA),
			fmt.Sprintf("%.2fx", sp))
	}
	if len(speedups) > 0 {
		sum := 0.0
		for _, s := range speedups {
			sum += s
		}
		t.AddNote("average speedup %.2fx over %d configurations; best %.2fx (%s)",
			sum/float64(len(speedups)), len(speedups), best, bestAt)
	}
	t.AddNote("RDMA is specification-compliant (trailing send/recv completion) under every routing mode, as in the paper's SST model")
	if sec := attributionSection(o, outs); sec != nil {
		t.Sections = append(t.Sections, sec)
	}
	return t
}

// attributionSection merges every successful cell's attribution collector —
// always in spec order, never completion order, so the section's bytes do
// not depend on Options.Workers — and renders the figure-level per-stage
// blame profile, one collector per transport.
func attributionSection(o Options, outs []cellOutput) *Table {
	rv := attrib.NewCollector(o.TailK)
	rd := attrib.NewCollector(o.TailK)
	for i := range outs {
		out := &outs[i]
		if out.Err != nil || out.Attrib == nil {
			continue
		}
		if out.Spec.Kind == motif.KindRVMA {
			rv.Merge(out.Attrib)
		} else {
			rd.Merge(out.Attrib)
		}
	}
	sec := &Table{
		Title: "Latency attribution (per-stage, wait vs service)",
		Header: []string{"transport", "stage", "count", "share", "wait%",
			"wait p99", "wait p99.9", "svc p99", "svc p99.9"},
	}
	ns := func(v float64) string { return sim.FromNanos(v).String() }
	addScopes := func(kind string, col *attrib.Collector) {
		for _, scope := range col.Scopes() {
			s := col.Summary(scope)
			for _, row := range col.Blame(scope) {
				sec.AddRow(kind, row.Stage, fmt.Sprintf("%d", row.Count),
					fmt.Sprintf("%.1f%%", row.Share*100),
					fmt.Sprintf("%.1f%%", row.WaitShare*100),
					ns(row.WaitP99Ns), ns(row.WaitP999Ns),
					ns(row.SvcP99Ns), ns(row.SvcP999Ns))
			}
			sec.AddNote("%s %s: %d messages (%d completed, %d nacked, %d abandoned, %d retried), e2e p50 %s p99 %s",
				kind, scope, s.Messages, s.Completed, s.Nacked, s.Abandoned, s.Retried,
				ns(s.TotalP50Ns), ns(s.TotalP99Ns))
		}
		if v := col.Violations(); v > 0 {
			sec.AddNote("WARNING: %s stage-conservation violations: %d", kind, v)
		}
	}
	addScopes("RVMA", rv)
	addScopes("RDMA", rd)
	if len(sec.Rows) == 0 {
		return nil
	}
	return sec
}

// Fig7 reproduces Figure 7: Sweep3D across topologies, routings and link
// speeds. Paper headlines: >= 2x at contemporary speeds, 4.4x at 2 Tbps on
// the adaptively routed dragonfly, 3.56x average.
func Fig7(o Options) *Table {
	return motifFigure(o, MotifSweep3D, "Figure 7")
}

// Fig8 reproduces Figure 8: Halo3D across the same sweep. Paper headlines:
// 1.57x average; HyperX DOR best case 1.64x at 400 Gbps, 1.89x at 2 Tbps.
func Fig8(o Options) *Table {
	return motifFigure(o, MotifHalo3D, "Figure 8")
}

// IncastTable runs the bonus many-to-one motif across link speeds on the
// adaptively routed dragonfly, quantifying the receiver-managed-resource
// scenario from the paper's introduction.
func IncastTable(o Options) *Table {
	t := &Table{
		Title:  "Incast (many-to-one) on dragonfly/adaptive",
		Header: []string{"link", "RVMA", "RDMA", "speedup"},
	}
	nc := NetConfig{"dragonfly/adaptive", topology.KindDragonfly, fabric.RouteAdaptive}
	var specs []cellSpec
	for _, gbps := range o.LinkGbps {
		specs = append(specs,
			cellSpec{M: MotifIncast, Kind: motif.KindRVMA, NC: nc, Gbps: gbps},
			cellSpec{M: MotifIncast, Kind: motif.KindRDMA, NC: nc, Gbps: gbps})
	}
	outs := runCells(o, specs)
	for i := 0; i < len(outs); i += 2 {
		rv, rd := outs[i], outs[i+1]
		gbps := rv.Spec.Gbps
		if err := flushCellOutput(o, rv); err != nil {
			t.AddNote("SKIPPED @%s: %v", stats.FormatGbps(gbps), err)
			continue
		}
		if err := flushCellOutput(o, rd); err != nil {
			t.AddNote("SKIPPED @%s: %v", stats.FormatGbps(gbps), err)
			continue
		}
		t.AddRow(stats.FormatGbps(gbps), rv.Makespan.String(), rd.Makespan.String(),
			fmt.Sprintf("%.2fx", stats.Speedup(rd.Makespan.Seconds(), rv.Makespan.Seconds())))
	}
	t.AddNote("every client needs a dedicated negotiated buffer under RDMA; RVMA steers all clients into receiver-managed mailboxes")
	return t
}

// RDMABuffersAblation quantifies how much of RVMA's motif advantage comes
// from receiver-managed buffering by giving the RDMA baseline more
// negotiated buffers (deeper credit pipelining) on the Sweep3D best case.
func RDMABuffersAblation(o Options) *Table {
	t := &Table{
		Title:  "Ablation: RDMA negotiated-buffer depth vs RVMA (sweep3d, dragonfly/adaptive, 400Gbps)",
		Header: []string{"config", "makespan", "speedup vs RDMA-1buf"},
	}
	nc := NetConfig{"dragonfly/adaptive", topology.KindDragonfly, fabric.RouteAdaptive}
	const gbps = 400
	baseline := sim.Time(0)
	for _, bufs := range []int{1, 2, 4} {
		topo, err := topology.ForNodeCount(nc.Kind, o.Nodes)
		if err != nil {
			t.AddNote("SKIPPED: %v", err)
			return t
		}
		cfg := motif.DefaultClusterConfig(topo, motif.KindRDMA)
		cfg.Routing = nc.Routing
		cfg.Seed = o.Seed
		cfg.RDMABuffers = bufs
		cfg.ApplyLinkSpeed(gbps)
		c, err := motif.NewCluster(cfg)
		if err != nil {
			t.AddNote("SKIPPED: %v", err)
			return t
		}
		tm, err := motif.RunSweep3D(c, motif.DefaultSweep3DConfig(topo.NumNodes()))
		if err != nil {
			t.AddNote("SKIPPED rdma-%dbuf: %v", bufs, err)
			continue
		}
		if bufs == 1 {
			baseline = tm
		}
		t.AddRow(fmt.Sprintf("RDMA %d buffer(s)/pair", bufs), tm.String(),
			fmt.Sprintf("%.2fx", stats.Speedup(baseline.Seconds(), tm.Seconds())))
	}
	rv, err := RunMotifPoint(MotifSweep3D, motif.KindRVMA, nc, o.Nodes, gbps, o.Seed)
	if err == nil {
		t.AddRow("RVMA (mailbox bucket)", rv.String(),
			fmt.Sprintf("%.2fx", stats.Speedup(baseline.Seconds(), rv.Seconds())))
	}
	t.AddNote("more negotiated buffers narrow but do not close the gap: the completion send and per-reuse credits remain")
	return t
}

// LastByteCheatAblation contrasts specification-compliant RDMA with the
// last-byte-polling idiom on a byte-ordered (DOR-routed) network — the
// "cheat" §V-A describes as popular on statically routed InfiniBand but
// impossible once routing goes adaptive.
func LastByteCheatAblation(o Options) *Table {
	t := &Table{
		Title:  "Ablation: spec-compliant RDMA vs last-byte polling (sweep3d, hyperx/DOR, 400Gbps)",
		Header: []string{"config", "makespan", "vs compliant"},
	}
	topo, err := topology.ForNodeCount(topology.KindHyperX, o.Nodes)
	if err != nil {
		t.AddNote("SKIPPED: %v", err)
		return t
	}
	run := func(kind motif.TransportKind, lastByte bool) (sim.Time, error) {
		cfg := motif.DefaultClusterConfig(topo, kind)
		cfg.Routing = fabric.RouteStatic
		cfg.Seed = o.Seed
		cfg.RDMALastBytePoll = lastByte
		cfg.ApplyLinkSpeed(400)
		c, err := motif.NewCluster(cfg)
		if err != nil {
			return 0, err
		}
		return motif.RunSweep3D(c, motif.DefaultSweep3DConfig(topo.NumNodes()))
	}
	compliant, err1 := run(motif.KindRDMA, false)
	cheat, err2 := run(motif.KindRDMA, true)
	rv, err3 := run(motif.KindRVMA, false)
	if err1 != nil || err2 != nil || err3 != nil {
		t.AddNote("SKIPPED: %v %v %v", err1, err2, err3)
		return t
	}
	t.AddRow("RDMA spec-compliant (send/recv fence)", compliant.String(), "1.00x")
	t.AddRow("RDMA last-byte poll (violates spec)", cheat.String(),
		fmt.Sprintf("%.2fx", stats.Speedup(compliant.Seconds(), cheat.Seconds())))
	t.AddRow("RVMA (threshold completion)", rv.String(),
		fmt.Sprintf("%.2fx", stats.Speedup(compliant.Seconds(), rv.Seconds())))
	t.AddNote("last-byte polling recovers much of the gap but only exists on byte-ordered networks — and RVMA still wins")
	return t
}

// MotifSummary condenses the motif figures into the paper's headline
// claims.
func MotifSummary(o Options) *Table {
	t := &Table{
		Title:  "Motif summary (paper §V-B headline claims)",
		Header: []string{"experiment", "paper", "this reproduction"},
	}
	type point struct {
		m     MotifName
		nc    NetConfig
		gbps  float64
		name  string
		paper string
	}
	pts := []point{
		{MotifSweep3D, NetConfig{"dragonfly/adaptive", topology.KindDragonfly, fabric.RouteAdaptive}, 2000,
			"Sweep3D best case (adaptive dragonfly, 2Tbps)", "4.4x"},
		{MotifHalo3D, NetConfig{"hyperx/DOR", topology.KindHyperX, fabric.RouteStatic}, 400,
			"Halo3D HyperX DOR @400Gbps", "1.64x"},
		{MotifHalo3D, NetConfig{"hyperx/DOR", topology.KindHyperX, fabric.RouteStatic}, 2000,
			"Halo3D HyperX DOR @2Tbps", "1.89x"},
	}
	var specs []cellSpec
	for _, p := range pts {
		specs = append(specs,
			cellSpec{M: p.m, Kind: motif.KindRVMA, NC: p.nc, Gbps: p.gbps},
			cellSpec{M: p.m, Kind: motif.KindRDMA, NC: p.nc, Gbps: p.gbps})
	}
	outs := runCells(o, specs)
	for i, p := range pts {
		rv, rd := outs[2*i], outs[2*i+1]
		if rv.Err != nil || rd.Err != nil {
			t.AddRow(p.name, p.paper, "SKIPPED")
			continue
		}
		t.AddRow(p.name, p.paper,
			fmt.Sprintf("%.2fx", stats.Speedup(rd.Makespan.Seconds(), rv.Makespan.Seconds())))
	}
	return t
}
