package harness

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/motif"
	"rvma/internal/topology"
)

// workerCounts is the cross-worker determinism matrix: serial, a fixed
// small pool, and one-per-CPU (deduplicated — on a single-core host
// NumCPU collapses into 1).
func workerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// figureArtifacts renders one figure sweep with full instrumentation at a
// given worker count and returns everything it produced: the table bytes,
// the telemetry files (name -> contents), and the bench records with the
// wall-clock fields zeroed (those legitimately vary run to run; the cell
// labels, simulated times and event counts must not).
func figureArtifacts(t *testing.T, fig func(Options) *Table, workers int) (table []byte, telemetry map[string][]byte, bench []BenchRecord) {
	t.Helper()
	o := DefaultOptions()
	o.Nodes = 64
	o.LinkGbps = []float64{100}
	o.Workers = workers
	o.TelemetryDir = t.TempDir()
	o.Bench = &BenchLog{}

	var buf bytes.Buffer
	fig(o).Fprint(&buf)

	telemetry = make(map[string][]byte)
	entries, err := os.ReadDir(o.TelemetryDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(o.TelemetryDir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		telemetry[ent.Name()] = data
	}

	bench = append([]BenchRecord(nil), o.Bench.Records...)
	for i := range bench {
		bench[i].WallMS = 0
		bench[i].EventsPerSec = 0
	}
	return buf.Bytes(), telemetry, bench
}

// TestFigureOutputIdenticalAcrossWorkers is the parallel-harness
// regression gate: a figure sweep must produce byte-identical tables,
// telemetry CSVs and bench-record sequences at every worker count. Any
// shared mutable state between cells, nondeterministic merge order, or
// worker-count-dependent seeding shows up here as a diff.
func TestFigureOutputIdenticalAcrossWorkers(t *testing.T) {
	figures := []struct {
		name string
		fn   func(Options) *Table
	}{{"fig7", Fig7}}
	if !testing.Short() {
		figures = append(figures, struct {
			name string
			fn   func(Options) *Table
		}{"fig8", Fig8})
	}
	for _, fig := range figures {
		t.Run(fig.name, func(t *testing.T) {
			refTable, refTel, refBench := figureArtifacts(t, fig.fn, 1)
			if len(refTel) == 0 {
				t.Fatal("serial run wrote no telemetry files")
			}
			if len(refBench) == 0 {
				t.Fatal("serial run recorded no bench records")
			}
			for _, workers := range workerCounts()[1:] {
				table, tel, bench := figureArtifacts(t, fig.fn, workers)
				if !bytes.Equal(refTable, table) {
					t.Errorf("workers=%d table differs from serial:\n--- serial ---\n%s\n--- workers=%d ---\n%s",
						workers, firstDiffContext(refTable, table), workers, firstDiffContext(table, refTable))
				}
				if len(tel) != len(refTel) {
					t.Errorf("workers=%d wrote %d telemetry files, serial wrote %d", workers, len(tel), len(refTel))
				}
				for name, want := range refTel {
					if got, ok := tel[name]; !ok {
						t.Errorf("workers=%d missing telemetry file %s", workers, name)
					} else if !bytes.Equal(want, got) {
						t.Errorf("workers=%d telemetry %s differs from serial:\n%s",
							workers, name, firstDiffContext(want, got))
					}
				}
				if len(bench) != len(refBench) {
					t.Fatalf("workers=%d has %d bench records, serial has %d", workers, len(bench), len(refBench))
				}
				for i := range bench {
					if bench[i] != refBench[i] {
						t.Errorf("workers=%d bench record %d = %+v, serial %+v", workers, i, bench[i], refBench[i])
					}
				}
			}
		})
	}
}

// TestRunCellsMetricsIdenticalAcrossWorkers drops below the table layer:
// the per-cell metrics registries coming out of the worker pool must
// snapshot byte-identically at every worker count. This is the strictest
// form of the one-engine-per-cell claim — every counter, gauge and span
// histogram in every cell, not just the columns a table happens to print.
func TestRunCellsMetricsIdenticalAcrossWorkers(t *testing.T) {
	nets := []NetConfig{
		{"dragonfly/adaptive", topology.KindDragonfly, fabric.RouteAdaptive},
		{"hyperx/DOR", topology.KindHyperX, fabric.RouteStatic},
	}
	var specs []cellSpec
	for _, nc := range nets {
		for _, kind := range []motif.TransportKind{motif.KindRVMA, motif.KindRDMA} {
			specs = append(specs, cellSpec{M: MotifSweep3D, Kind: kind, NC: nc, Gbps: 100})
		}
	}
	snapshot := func(workers int) [][]byte {
		o := DefaultOptions()
		o.Nodes = 64
		o.Workers = workers
		outs := runCells(o, specs)
		snaps := make([][]byte, len(outs))
		for i, out := range outs {
			if out.Err != nil {
				t.Fatalf("workers=%d cell %s: %v", workers, out.Spec.cellName(), out.Err)
			}
			var buf bytes.Buffer
			fmt.Fprintf(&buf, "makespan_ns=%v\n", out.Makespan.Nanoseconds())
			if err := out.Reg.WriteJSON(&buf, out.Makespan); err != nil {
				t.Fatal(err)
			}
			snaps[i] = buf.Bytes()
		}
		return snaps
	}
	ref := snapshot(1)
	for _, workers := range workerCounts()[1:] {
		got := snapshot(workers)
		for i := range ref {
			if !bytes.Equal(ref[i], got[i]) {
				t.Errorf("workers=%d cell %s metrics differ from serial:\n%s",
					workers, specs[i].cellName(), firstDiffContext(ref[i], got[i]))
			}
		}
	}
}

// TestConcurrentTelemetryWritesAreClean runs two cells concurrently with
// telemetry enabled and checks the resulting CSVs are non-corrupt (proper
// header, sorted columns, data rows) and byte-identical to a serial run —
// the io.Writer refactor's guarantee that cell execution never touches
// the filesystem, so concurrent cells cannot interleave writes.
func TestConcurrentTelemetryWritesAreClean(t *testing.T) {
	specs := []cellSpec{
		{M: MotifSweep3D, Kind: motif.KindRVMA, NC: telemetryTestNet(), Gbps: 100},
		{M: MotifSweep3D, Kind: motif.KindRDMA, NC: telemetryTestNet(), Gbps: 100},
	}
	run := func(workers int) map[string][]byte {
		o := DefaultOptions()
		o.Nodes = 64
		o.Workers = workers
		o.TelemetryDir = t.TempDir()
		for _, out := range runCells(o, specs) {
			if err := flushCellOutput(o, out); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
		}
		files := make(map[string][]byte)
		entries, err := os.ReadDir(o.TelemetryDir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range entries {
			data, err := os.ReadFile(filepath.Join(o.TelemetryDir, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[ent.Name()] = data
		}
		return files
	}

	concurrent := run(2)
	if len(concurrent) != len(specs) {
		t.Fatalf("concurrent run wrote %d files, want %d", len(concurrent), len(specs))
	}
	var names []string
	for name, data := range concurrent {
		names = append(names, name)
		lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
		if len(lines) < 2 {
			t.Fatalf("%s has no data rows", name)
		}
		cols := strings.Split(lines[0], ",")
		if cols[0] != "time_ns" {
			t.Errorf("%s header starts with %q, want time_ns", name, cols[0])
		}
		for i := 2; i < len(cols); i++ {
			if cols[i-1] >= cols[i] {
				t.Errorf("%s columns not sorted: %q before %q", name, cols[i-1], cols[i])
			}
		}
		want := len(cols)
		for ln, line := range lines[1:] {
			if got := strings.Count(line, ",") + 1; got != want {
				t.Fatalf("%s row %d has %d fields, header has %d (corrupt interleaved write?)",
					name, ln+1, got, want)
			}
		}
	}
	sort.Strings(names)

	serial := run(1)
	for _, name := range names {
		if !bytes.Equal(serial[name], concurrent[name]) {
			t.Errorf("telemetry %s differs between serial and concurrent runs:\n%s",
				name, firstDiffContext(serial[name], concurrent[name]))
		}
	}
}
