package harness

import (
	"fmt"

	"rvma/internal/fabric"
	"rvma/internal/metrics"
	"rvma/internal/motif"
	"rvma/internal/sim"
	"rvma/internal/stats"
	"rvma/internal/topology"
)

// KVParams is the harness-level parameterization of a KV dataplane cell.
// Skew is literal (0 means a uniform keyspace) and GapNs <= 0 falls back
// to the motif default; every other zero field falls back to
// motif.DefaultKVConfig for the cell's rank count. The sweeps always set
// Skew and GapNs explicitly, so cell names stay self-describing.
type KVParams struct {
	Skew    float64
	GapNs   float64
	Ops     int
	Servers int
	Clients int
	Keys    int
	Window  int
}

// config resolves the parameters into the motif config a cell runs.
func (kp KVParams) Config(ranks int, seed uint64) motif.KVConfig {
	cfg := motif.DefaultKVConfig(ranks)
	cfg.Seed = seed
	cfg.Skew = kp.Skew
	if kp.GapNs > 0 {
		cfg.Gap = sim.FromNanos(kp.GapNs)
	}
	if kp.Ops > 0 {
		cfg.OpsPerProxy = kp.Ops
	}
	if kp.Servers > 0 {
		cfg.Servers = kp.Servers
	}
	if kp.Clients > 0 {
		cfg.Clients = kp.Clients
	}
	if kp.Keys > 0 {
		cfg.Keys = kp.Keys
	}
	if kp.Window > 0 {
		cfg.Window = kp.Window
	}
	return cfg
}

// KVParamsFor inverts config: the resolved values a run actually used,
// for embedding into ledger RunSpecs so replays rebuild identical proxy
// plans. Always fully populated (no zero-means-default ambiguity except
// the literal Skew/Gap semantics the config carries anyway).
func KVParamsFor(cfg motif.KVConfig) KVParams {
	return KVParams{
		Skew:    cfg.Skew,
		GapNs:   cfg.Gap.Nanoseconds(),
		Ops:     cfg.OpsPerProxy,
		Servers: cfg.Servers,
		Clients: cfg.Clients,
		Keys:    cfg.Keys,
		Window:  cfg.Window,
	}
}

// foldKVResult folds a KV cell's application-level outcome into the
// cell's registry, so metrics snapshots and telemetry carry the kv.*
// series next to the substrate counters. The result is already merged in
// rank order, so the fold is byte-stable at any shard or worker count.
func foldKVResult(reg *metrics.Registry, res *motif.KVResult) {
	reg.Counter("kv.ops_issued").Add(res.Issued)
	reg.Counter("kv.ops_completed").Add(res.Completed)
	reg.Counter("kv.gets").Add(res.Gets)
	reg.Counter("kv.puts").Add(res.Puts)
	reg.Counter("kv.cas_ok").Add(res.CASOK)
	reg.Counter("kv.cas_fail").Add(res.CASFail)
	reg.Counter("kv.payload_bytes").Add(res.PayloadBytes)
	reg.Counter("kv.distinct_clients").Add(uint64(res.DistinctClients))
	reg.Histogram("kv.latency").Merge(res.Lat)
	reg.Histogram("kv.latency.get").Merge(res.GetLat)
	reg.Histogram("kv.latency.put").Merge(res.PutLat)
	reg.Histogram("kv.latency.cas").Merge(res.CASLat)
}

// kvSkews are the key-popularity exponents the KV table sweeps: uniform,
// the classic YCSB-like 0.99, and a hotter 1.2 tail.
var kvSkews = []float64{0, 0.99, 1.2}

// kvLoad is one offered-load point: the proxy inter-issue gap relative
// to the 2 µs default ("1x").
type kvLoad struct {
	label string
	gapNs float64
}

// kvLoads spans light load to 4x overload.
var kvLoads = []kvLoad{
	{"0.5x", 4000},
	{"1x", 2000},
	{"4x", 500},
}

// kvLossDrop is the loss regime appended to the sweep (at 0.99 skew, 1x
// load, recovery on): the FaultPlan rate CI's kv-smoke also pins.
const kvLossDrop = 0.05

// KVTable runs the KV dataplane motif — get/put/CAS from a ~10^6
// simulated-client population aggregated at edge proxies — across skew,
// offered load and transport, and reports tail latency (p99/p99.9),
// goodput, completion and CAS conflict rate. Two loss rows rerun the
// nominal point under 5% drop with the recovery layer. Cells run on the
// worker pool like every figure; the table is byte-identical at any
// worker and shard count.
func KVTable(o Options) *Table {
	t := &Table{
		Title: "KV dataplane: get/put/CAS tails under skew and load (dragonfly/adaptive)",
		Header: []string{"transport", "skew", "load", "drop", "p50", "p99", "p99.9",
			"goodput", "complete", "cas-fail", "rexmit"},
	}
	if len(o.LinkGbps) == 0 {
		o.LinkGbps = []float64{100}
	}
	nc := NetConfig{"dragonfly/adaptive", topology.KindDragonfly, fabric.RouteAdaptive}
	var specs []cellSpec
	for _, skew := range kvSkews {
		for _, load := range kvLoads {
			for _, kind := range []motif.TransportKind{motif.KindRVMA, motif.KindRDMA} {
				specs = append(specs, cellSpec{M: MotifKV, Kind: kind, NC: nc, Gbps: o.LinkGbps[0],
					KV: KVParams{Skew: skew, GapNs: load.gapNs}})
			}
		}
	}
	for _, kind := range []motif.TransportKind{motif.KindRVMA, motif.KindRDMA} {
		specs = append(specs, cellSpec{M: MotifKV, Kind: kind, NC: nc, Gbps: o.LinkGbps[0],
			KV:    KVParams{Skew: 0.99, GapNs: 2000},
			Fault: faultSpec{Drop: kvLossDrop, Recover: true, Budget: o.RetryBudget}})
	}
	outs := runCells(o, specs)
	var population *motif.KVResult
	for _, out := range outs {
		spec := out.Spec
		load := "-"
		for _, l := range kvLoads {
			if l.gapNs == spec.KV.GapNs {
				load = l.label
			}
		}
		drop := fmt.Sprintf("%g", spec.Fault.Drop)
		if err := flushCellOutput(o, out); err != nil {
			t.AddRow(spec.Kind.String(), fmt.Sprintf("%g", spec.KV.Skew), load, drop,
				"-", "-", "-", "-", kvCompletion(out.KV), "-", kvStatus(out))
			t.AddNote("FAILED %s: %v", spec.cellName(), err)
			continue
		}
		res := out.KV
		if res == nil {
			t.AddNote("FAILED %s: no KV result", spec.cellName())
			continue
		}
		population = res
		goodput := "-"
		if secs := out.Makespan.Seconds(); secs > 0 {
			goodput = stats.FormatGbps(float64(res.PayloadBytes) * 8 / secs / 1e9)
		}
		t.AddRow(spec.Kind.String(), fmt.Sprintf("%g", spec.KV.Skew), load, drop,
			sim.FromNanos(res.Lat.Quantile(0.50)).String(),
			sim.FromNanos(res.Lat.Quantile(0.99)).String(),
			sim.FromNanos(res.Lat.Quantile(0.999)).String(),
			goodput, kvCompletion(res), kvCASFail(res),
			fmt.Sprintf("%d", out.Recovery.Retransmits))
	}
	if population != nil {
		t.AddNote("population: %d simulated clients (%d per proxy across %d edge-aggregation proxies, %d touched), %d ops/proxy",
			population.SimulatedClients, population.ClientsPerProxy, population.Proxies,
			population.DistinctClients, population.Issued/uint64(population.Proxies))
	}
	t.AddNote("load is the inverse proxy issue gap relative to 2µs (1x); 4x is overload")
	t.AddNote("drop>0 rows rerun the nominal point under uniform loss with timeout/retransmit (budget %d)", defaultRetryBudget(o))
	t.AddNote("goodput counts application payload only (values and CAS words; headers, padding and retransmits excluded) at link %s",
		stats.FormatGbps(o.LinkGbps[0]))
	t.AddNote("cas-fail is the share of CAS ops rejected on a stale version — the hot-key contention signal")
	return t
}

// kvCompletion formats completed/issued as a percentage ("-" before any
// issue).
func kvCompletion(res *motif.KVResult) string {
	if res == nil || res.Issued == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(res.Completed)/float64(res.Issued))
}

// kvCASFail formats the CAS conflict rate ("-" when the mix had no CAS).
func kvCASFail(res *motif.KVResult) string {
	total := res.CASOK + res.CASFail
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(res.CASFail)/float64(total))
}

// kvStatus summarizes a failed KV cell like bareStatus does for fault
// controls.
func kvStatus(out cellOutput) string {
	return bareStatus(out)
}
