package harness

import (
	"fmt"
	"runtime"

	"rvma/internal/hostif"
	"rvma/internal/microbench"
	"rvma/internal/pcie"
	"rvma/internal/rvma"
	"rvma/internal/stats"
)

// Options scale the experiments. The paper's full runs (10 runs x 1,000 or
// 100,000 iterations; 8,192 nodes) regenerate with larger values; defaults
// finish in seconds on a laptop while preserving every trend.
type Options struct {
	// Sizes are the message sizes for the latency figures.
	Sizes []int
	// Iters is ping-pong iterations per run; Runs is independent runs.
	Iters, Runs int
	// Nodes is the motif system size (paper: 8,192).
	Nodes int
	// LinkGbps are the link speeds for the motif figures (paper: 100, 200,
	// 400, 2000).
	LinkGbps []float64
	// Seed makes everything reproducible.
	Seed uint64
	// RunNoise produces error bars (stddev of per-run overhead scale).
	RunNoise float64
	// TelemetryDir, when non-empty, makes the motif figures attach an
	// in-sim sampler to every report cell and write one time-series CSV
	// per cell into the directory (see internal/telemetry).
	TelemetryDir string
	// Bench, when non-nil, records wall time / simulated time / event
	// throughput for every motif cell run (rvmabench -json-out).
	Bench *BenchLog
	// Workers caps how many figure cells run concurrently; 0 means
	// runtime.NumCPU(). Each cell owns a private engine, metrics registry
	// and telemetry sampler, and results are merged in a fixed canonical
	// order, so output is byte-identical at any worker count.
	Workers int
	// FaultRates are the receiver-ingress drop probabilities for the
	// FaultSweep table; empty uses defaultFaultRates.
	FaultRates []float64
	// RetryBudget overrides the recovery layer's per-operation retransmit
	// budget in the FaultSweep (0 keeps recovery.DefaultConfig's).
	RetryBudget int
	// TailK is the worst-K depth of each cell's latency-attribution tail
	// exchange (0 keeps the attrib default of 8).
	TailK int
	// LedgerDir, when non-empty, attaches an execution-ledger recorder to
	// every motif cell's engine and writes one <cell>.ledger.json into the
	// directory during the serial merge phase (see internal/ledger). The
	// recorder only hashes fields every pop already carries, so results
	// stay byte-identical with or without it. Sharded cells (Shards > 0)
	// record the canonical partition-invariant chain; legacy cells record
	// the raw chain.
	LedgerDir string
	// Shards partitions every motif cell's simulation across that many
	// event heaps with conservative lookahead synchronization
	// (sim.ShardGroup); 0 keeps the legacy single-heap engine. Tables,
	// telemetry CSVs and ledger chain heads are byte-identical at every
	// positive shard count — Shards=1 is the baseline the matrix test
	// compares against. Sharded cells run without span instrumentation
	// (spans key state across nodes, which would cross shard boundaries),
	// so put-p99 columns read "-" and attribution sections are empty.
	Shards int
}

// workerCount resolves Options.Workers: 0 (the default) saturates the
// host.
func (o Options) workerCount() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// DefaultOptions returns the quick-turnaround configuration.
func DefaultOptions() Options {
	return Options{
		Sizes:    []int{2, 16, 64, 256, 1024, 4096, 16384, 65536},
		Iters:    200,
		Runs:     10,
		Nodes:    128,
		LinkGbps: []float64{100, 200, 400, 2000},
		Seed:     42,
		RunNoise: 0.02,
	}
}

// PaperOptions returns settings matching the paper's stated scales. The
// motif node count is the paper's 8,192; expect long runtimes.
func PaperOptions() Options {
	o := DefaultOptions()
	o.Iters = 1000
	o.Nodes = 8192
	return o
}

// latencyFigure is the shared implementation of Figures 4 and 5.
func latencyFigure(o Options, prof hostif.Profile, figure, system string) *Table {
	t := &Table{
		Title: fmt.Sprintf("%s: RVMA vs. RDMA latency (%s, %s)", figure, prof.Name, system),
		Header: []string{"size", "RVMA(ns)", "±", "RDMA-static(ns)", "±",
			"RDMA-adaptive(ns)", "±", "reduction"},
	}
	maxRed := 0.0
	for _, size := range o.Sizes {
		cfg := microbench.LatencyConfig{
			Profile: prof, Size: size, Iters: o.Iters, Runs: o.Runs,
			Seed: o.Seed, RunNoise: o.RunNoise,
		}
		rv := microbench.MeasureLatency(cfg, microbench.TransportRVMA)
		rs := microbench.MeasureLatency(cfg, microbench.TransportRDMAStatic)
		ra := microbench.MeasureLatency(cfg, microbench.TransportRDMAAdaptive)
		red := stats.Reduction(ra.Summary.Mean, rv.Summary.Mean)
		if red > maxRed {
			maxRed = red
		}
		t.AddRow(
			stats.FormatBytes(size),
			fmt.Sprintf("%.1f", rv.Summary.Mean), fmt.Sprintf("%.1f", rv.Summary.Stddev),
			fmt.Sprintf("%.1f", rs.Summary.Mean), fmt.Sprintf("%.1f", rs.Summary.Stddev),
			fmt.Sprintf("%.1f", ra.Summary.Mean), fmt.Sprintf("%.1f", ra.Summary.Stddev),
			fmt.Sprintf("%.1f%%", 100*red),
		)
	}
	t.AddNote("reduction = (RDMA-adaptive - RVMA) / RDMA-adaptive; max observed %.1f%%", 100*maxRed)
	t.AddNote("RDMA-adaptive adds the specification-required 1-byte send/recv after the put")
	t.AddNote("%d runs x %d iterations per point; ± is inter-run stddev", o.Runs, o.Iters)
	return t
}

// Fig4 reproduces Figure 4: Verbs-profile latency (OmniPath/Skylake-class
// testbed). Paper headline: up to 65.8% latency reduction.
func Fig4(o Options) *Table {
	return latencyFigure(o, hostif.Verbs(), "Figure 4", "OmniPath+Skylake class")
}

// Fig5 reproduces Figure 5: UCX-profile latency (ConnectX-5/ThunderX2
// class testbed). Paper headline: 45.8% latency reduction.
func Fig5(o Options) *Table {
	return latencyFigure(o, hostif.UCX(), "Figure 5", "ConnectX-5+ThunderX2 class")
}

// Fig6 reproduces Figure 6: the UCX amortization analysis — how many data
// exchanges amortize the RDMA buffer-setup handshake to within 3% of
// steady-state latency, for static- and adaptive-routing latencies.
func Fig6(o Options) *Table {
	prof := hostif.UCX()
	t := &Table{
		Title: "Figure 6: UCX amortization analysis (exchanges to amortize RDMA setup to 3%)",
		Header: []string{"size", "setup(ns)", "lat-static(ns)", "N-static",
			"lat-adaptive(ns)", "N-adaptive"},
	}
	const tolerance = 0.03
	for _, size := range o.Sizes {
		st := microbench.Amortization(prof, size, microbench.TransportRDMAStatic, tolerance, o.Seed)
		ad := microbench.Amortization(prof, size, microbench.TransportRDMAAdaptive, tolerance, o.Seed)
		t.AddRow(
			stats.FormatBytes(size),
			fmt.Sprintf("%.0f", st.SetupNanos),
			fmt.Sprintf("%.0f", st.LatencyNanos), fmt.Sprintf("%d", st.Exchanges),
			fmt.Sprintf("%.0f", ad.LatencyNanos), fmt.Sprintf("%d", ad.Exchanges),
		)
	}
	t.AddNote("N = smallest exchange count with (setup + N*lat)/(N*lat) <= 1.03")
	t.AddNote("RVMA needs no setup exchange at all: its amortization count is identically zero")
	return t
}

// MicroSummary condenses the latency figures into the paper's headline
// claims table.
func MicroSummary(o Options) *Table {
	t := &Table{
		Title:  "Microbenchmark summary (paper §V-A headline claims)",
		Header: []string{"experiment", "paper", "this reproduction"},
	}
	for _, row := range []struct {
		prof  hostif.Profile
		name  string
		paper string
	}{
		{hostif.Verbs(), "Verbs max latency reduction", "65.8%"},
		{hostif.UCX(), "UCX max latency reduction", "45.8%"},
	} {
		cfg := microbench.LatencyConfig{
			Profile: row.prof, Size: 2, Iters: o.Iters, Runs: o.Runs,
			Seed: o.Seed, RunNoise: o.RunNoise,
		}
		rv := microbench.MeasureLatency(cfg, microbench.TransportRVMA)
		ra := microbench.MeasureLatency(cfg, microbench.TransportRDMAAdaptive)
		t.AddRow(row.name, row.paper,
			fmt.Sprintf("%.1f%%", 100*stats.Reduction(ra.Summary.Mean, rv.Summary.Mean)))
	}
	return t
}

// NotifyAblation compares the completion-observation mechanisms of §IV-C:
// Monitor/MWait wake-on-write versus memory polling on the RVMA path.
func NotifyAblation(o Options) *Table {
	t := &Table{
		Title:  "Ablation: completion notification mechanism (RVMA, verbs profile)",
		Header: []string{"mechanism", "latency(ns)"},
	}
	prof := hostif.Verbs()
	cfg := microbench.LatencyConfig{
		Profile: prof, Size: 64, Iters: o.Iters, Runs: 1, Seed: o.Seed,
	}
	cfg.Notification = rvma.NotifyMWait
	mwait := microbench.MeasureLatency(cfg, microbench.TransportRVMA)
	t.AddRow("Monitor/MWait", fmt.Sprintf("%.1f", mwait.Summary.Mean))
	cfg.Notification = rvma.NotifyPoll
	poll := microbench.MeasureLatency(cfg, microbench.TransportRVMA)
	t.AddRow(fmt.Sprintf("polling @%v", prof.NIC.PollInterval), fmt.Sprintf("%.1f", poll.Summary.Mean))
	t.AddNote("MWait wakes within %v of the completion-pointer write (§IV-C)", prof.NIC.MWaitWake)
	return t
}

// PCIeAblation shows the counter-spill penalty under current and Gen 6
// buses (§III-B: "For PCIe Gen 6+ this performance penalty is minimal").
func PCIeAblation(o Options) *Table {
	t := &Table{
		Title:  "Ablation: RVMA counter spill penalty by PCIe generation",
		Header: []string{"bus", "bus latency", "spill penalty (per counter update)"},
	}
	for _, row := range []struct {
		name string
		cfg  pcie.Config
	}{
		{"Gen4/5 x16", pcie.Gen4x16()},
		{"Gen6 x16", pcie.Gen6x16()},
	} {
		t.AddRow(row.name, row.cfg.Latency.String(), (2 * row.cfg.Latency).String())
	}
	t.AddNote("penalty = one host-memory read-modify-write round trip (2x bus latency)")
	t.AddNote("avoided entirely while NIC hardware counters are available (§III-B)")
	return t
}
