package harness

import (
	"fmt"

	"rvma/internal/attrib"
	"rvma/internal/fabric"
	"rvma/internal/ledger"
	"rvma/internal/motif"
	"rvma/internal/topology"
)

// This file converts between the harness's in-memory cell specs and the
// ledger's serializable RunSpec, and provides the in-process replay entry
// point cmd/simdiff uses: given the RunSpec embedded in a ledger file, run
// the exact same simulation again with a full-resolution capture window
// armed around a divergent epoch.

// runSpecFor renders a cell spec into the serializable form embedded in
// ledger files.
func runSpecFor(spec cellSpec, o Options) ledger.RunSpec {
	rs := ledger.RunSpec{
		Motif:     string(spec.M),
		Transport: transportName(spec.Kind),
		Topology:  string(spec.NC.Kind),
		Routing:   spec.NC.Routing.String(),
		Network:   spec.NC.Name,
		Nodes:     o.Nodes,
		Gbps:      spec.Gbps,
		Seed:      o.Seed,
		Spans:     o.Shards == 0, // sharded cells run without span instrumentation
		Drop:      spec.Fault.Drop,
		Recover:   spec.Fault.Recover,
		Shards:    o.Shards,
	}
	if spec.Fault.Recover {
		rs.RetryBudget = spec.Fault.Budget
	}
	if spec.M == MotifKV {
		// Embed the fully resolved KV knobs — including defaults derived
		// from the topology-rounded rank count — so a replay rebuilds the
		// identical proxy plans even on a spec whose cell left them zero.
		ranks := o.Nodes
		if topo, err := topology.ForNodeCount(spec.NC.Kind, o.Nodes); err == nil {
			ranks = topo.NumNodes()
		}
		kp := KVParamsFor(spec.KV.Config(ranks, o.Seed))
		rs.KVSkew = kp.Skew
		rs.KVGapNs = kp.GapNs
		rs.KVOps = kp.Ops
		rs.KVServers = kp.Servers
		rs.KVClients = kp.Clients
		rs.KVKeys = kp.Keys
		rs.KVWindow = kp.Window
	}
	return rs
}

// transportName lowercases a TransportKind for the spec ("rvma"/"rdma").
func transportName(k motif.TransportKind) string {
	if k == motif.KindRDMA {
		return "rdma"
	}
	return "rvma"
}

// cellSpecFor is the inverse of runSpecFor: it rebuilds the harness cell
// spec (and node count / seed) a RunSpec describes.
func cellSpecFor(rs ledger.RunSpec) (cellSpec, error) {
	var spec cellSpec
	switch rs.Motif {
	case string(MotifSweep3D), string(MotifHalo3D), string(MotifIncast), string(MotifKV):
		spec.M = MotifName(rs.Motif)
	default:
		return spec, fmt.Errorf("harness: unknown motif %q in run spec", rs.Motif)
	}
	switch rs.Transport {
	case "rvma":
		spec.Kind = motif.KindRVMA
	case "rdma":
		spec.Kind = motif.KindRDMA
	default:
		return spec, fmt.Errorf("harness: unknown transport %q in run spec", rs.Transport)
	}
	var routing fabric.RoutingMode
	switch rs.Routing {
	case "static":
		routing = fabric.RouteStatic
	case "adaptive":
		routing = fabric.RouteAdaptive
	case "valiant":
		routing = fabric.RouteValiant
	default:
		return spec, fmt.Errorf("harness: unknown routing %q in run spec", rs.Routing)
	}
	kind := topology.Kind(rs.Topology)
	found := false
	for _, k := range topology.Kinds() {
		if k == kind {
			found = true
			break
		}
	}
	if !found {
		return spec, fmt.Errorf("harness: unknown topology %q in run spec", rs.Topology)
	}
	name := rs.Network
	if name == "" {
		name = fmt.Sprintf("%s/%s", rs.Topology, rs.Routing)
	}
	spec.NC = NetConfig{Name: name, Kind: kind, Routing: routing}
	spec.Gbps = rs.Gbps
	spec.Fault = faultSpec{Drop: rs.Drop, Recover: rs.Recover, Budget: rs.RetryBudget}
	if spec.M == MotifKV {
		spec.KV = KVParams{Skew: rs.KVSkew, GapNs: rs.KVGapNs, Ops: rs.KVOps,
			Servers: rs.KVServers, Clients: rs.KVClients, Keys: rs.KVKeys, Window: rs.KVWindow}
	}
	return spec, nil
}

// ReplayOptions configures ReplaySpec.
type ReplayOptions struct {
	// EpochEvents must match the original recording for the ledgers to be
	// comparable; 0 uses the ledger default.
	EpochEvents uint64
	// WindowFrom/WindowTo arm full-resolution capture over a pop range
	// (both zero disables capture).
	WindowFrom, WindowTo uint64
	// Profile enables the host-time profile on the replay.
	Profile bool
}

// ReplaySpec re-runs the simulation a RunSpec describes with a fresh
// execution-ledger recorder attached and returns the finalized ledger
// (including the captured window, when one was armed). Replay is exact:
// the cluster is built through the same code path as the original run —
// including the sharded pipeline when the spec carries Shards > 0, whose
// canonical ledger reproduces the original chain head at any shard count.
func ReplaySpec(rs ledger.RunSpec, ro ReplayOptions) (*ledger.Ledger, *ledger.ProfileReport, error) {
	spec, err := cellSpecFor(rs)
	if err != nil {
		return nil, nil, err
	}
	opts := ledger.Options{EpochEvents: ro.EpochEvents, Profile: ro.Profile, Run: &rs}
	inst := cellInstr{cell: spec.cellName(), shards: rs.Shards, unsafeScale: rs.UnsafeLookaheadScale}
	if rs.Shards > 0 {
		inst.canon = ledger.NewCanonicalRecorder(opts)
		if ro.WindowTo > 0 {
			inst.canon.SetWindow(ro.WindowFrom, ro.WindowTo)
		}
	} else {
		inst.ledger = ledger.NewRecorder(opts)
		if ro.WindowTo > 0 {
			inst.ledger.SetWindow(ro.WindowFrom, ro.WindowTo)
		}
	}
	if rs.Spans && rs.Shards == 0 {
		// Span instrumentation schedules extra model events, so the replay
		// must attach the same registry shape the original run had. Sharded
		// runs never have spans; a spec claiming both is ignored in favor of
		// the sharded pipeline's shape.
		inst.reg = newCellRegistry(0)
		inst.attrib = attrib.NewCollector(0)
	}
	if _, _, err := runMotifPoint(spec, rs.Nodes, rs.Seed, &inst); err != nil {
		return nil, nil, err
	}
	if inst.canon != nil {
		return inst.canon.Finalize(), inst.canon.Profile(), nil
	}
	return inst.ledger.Finalize(), inst.ledger.Profile(), nil
}
