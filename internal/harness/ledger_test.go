package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/ledger"
	"rvma/internal/motif"
	"rvma/internal/topology"
)

// ledgerTestOptions is the small fig7-style configuration the ledger
// determinism tests run: one network, one link speed, both transports.
func ledgerTestOptions(t *testing.T, workers int, telemetry bool) Options {
	t.Helper()
	o := DefaultOptions()
	o.Nodes = 64
	o.LinkGbps = []float64{100}
	o.Workers = workers
	o.LedgerDir = t.TempDir()
	if telemetry {
		o.TelemetryDir = t.TempDir()
	}
	return o
}

// ledgerCellSpecs is the two-cell sweep used by the ledger tests.
func ledgerCellSpecs() []cellSpec {
	nc := NetConfig{"dragonfly/adaptive", topology.KindDragonfly, fabric.RouteAdaptive}
	return []cellSpec{
		{M: MotifSweep3D, Kind: motif.KindRVMA, NC: nc, Gbps: 100},
		{M: MotifSweep3D, Kind: motif.KindRDMA, NC: nc, Gbps: 100},
	}
}

// runLedgerCells runs the test sweep and returns cell name -> ledger file
// bytes.
func runLedgerCells(t *testing.T, o Options) map[string][]byte {
	t.Helper()
	outs := runCells(o, ledgerCellSpecs())
	got := map[string][]byte{}
	for _, out := range outs {
		if out.Err != nil {
			t.Fatalf("cell %s: %v", out.Spec.cellName(), out.Err)
		}
		if err := flushCellOutput(o, out); err != nil {
			t.Fatal(err)
		}
		got[out.Spec.cellName()] = out.Ledger
	}
	entries, err := os.ReadDir(o.LedgerDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(got) {
		t.Fatalf("wrote %d ledger files, want %d", len(entries), len(got))
	}
	return got
}

// TestLedgerIdenticalAcrossWorkers is the workers-1-vs-N half of the
// determinism contract: per-cell ledgers must be byte-identical at any
// worker count.
func TestLedgerIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	base := runLedgerCells(t, ledgerTestOptions(t, 1, false))
	for _, workers := range workerCounts()[1:] {
		got := runLedgerCells(t, ledgerTestOptions(t, workers, false))
		for cell, want := range base {
			if string(got[cell]) != string(want) {
				t.Fatalf("workers=%d: ledger for %s differs from serial run", workers, cell)
			}
		}
	}
}

// TestLedgerInvariantUnderTelemetry checks attaching the telemetry sampler
// (daemon events) does not perturb the ledger chain.
func TestLedgerInvariantUnderTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run sweep")
	}
	plain := runLedgerCells(t, ledgerTestOptions(t, 1, false))
	sampled := runLedgerCells(t, ledgerTestOptions(t, 1, true))
	for cell, want := range plain {
		if string(sampled[cell]) != string(want) {
			t.Fatalf("telemetry sampling changed the ledger for %s", cell)
		}
	}
}

// TestLedgerRecorderDoesNotChangeResults runs the same cell with and
// without a ledger attached and compares the metric snapshots — the
// observer must be invisible to the model.
func TestLedgerRecorderDoesNotChangeResults(t *testing.T) {
	spec := ledgerCellSpecs()[0]
	o := DefaultOptions()
	o.Nodes = 64

	bare := runOneCell(o, spec, newCellRegistry(0))
	o.LedgerDir = t.TempDir()
	recorded := runOneCell(o, spec, newCellRegistry(0))
	if bare.Err != nil || recorded.Err != nil {
		t.Fatalf("cell errors: %v / %v", bare.Err, recorded.Err)
	}
	if bare.Makespan != recorded.Makespan {
		t.Fatalf("ledger recorder changed the makespan: %v vs %v", bare.Makespan, recorded.Makespan)
	}
	if recorded.Ledger == nil {
		t.Fatal("no ledger rendered")
	}
}

// TestReplayReproducesChainHead round-trips the RunSpec embedded in a cell
// ledger through ReplaySpec and checks the replay reaches the same chain
// head — the property simdiff's divergence replay stands on.
func TestReplayReproducesChainHead(t *testing.T) {
	o := ledgerTestOptions(t, 1, false)
	cells := runLedgerCells(t, o)
	for cell, raw := range cells {
		var l ledger.Ledger
		if err := json.Unmarshal(raw, &l); err != nil {
			t.Fatal(err)
		}
		if l.Run == nil {
			t.Fatalf("%s: ledger carries no run spec", cell)
		}
		replay, _, err := ReplaySpec(*l.Run, ReplayOptions{EpochEvents: l.EpochEvents})
		if err != nil {
			t.Fatalf("%s: replay: %v", cell, err)
		}
		if replay.ChainHead != l.ChainHead {
			t.Fatalf("%s: replay chain head %s != recorded %s", cell, replay.ChainHead, l.ChainHead)
		}
		if d := ledger.Compare(&l, replay); !d.Identical {
			t.Fatalf("%s: replay diverged: %+v", cell, d)
		}
		break // one transport suffices; the other is covered above
	}
}

// TestReplayWindowCapture arms a window on a replay and checks the records
// land in the requested pop range.
func TestReplayWindowCapture(t *testing.T) {
	o := ledgerTestOptions(t, 1, false)
	for _, raw := range runLedgerCells(t, o) {
		var l ledger.Ledger
		if err := json.Unmarshal(raw, &l); err != nil {
			t.Fatal(err)
		}
		replay, _, err := ReplaySpec(*l.Run, ReplayOptions{EpochEvents: l.EpochEvents, WindowFrom: 10, WindowTo: 20})
		if err != nil {
			t.Fatal(err)
		}
		w := replay.Window
		if w == nil || len(w.Records) != 10 {
			t.Fatalf("window capture: %+v", w)
		}
		if w.Records[0].Pop != 10 || w.Records[9].Pop != 19 {
			t.Fatalf("window range wrong: pops %d..%d", w.Records[0].Pop, w.Records[9].Pop)
		}
		break
	}
}

// TestRunSpecRoundTrip checks cellSpecFor inverts runSpecFor across the
// sweep grid, including fault cells.
func TestRunSpecRoundTrip(t *testing.T) {
	o := DefaultOptions()
	o.Nodes = 64
	specs := []cellSpec{}
	for _, nc := range motifNetworks() {
		specs = append(specs, cellSpec{M: MotifHalo3D, Kind: motif.KindRVMA, NC: nc, Gbps: 400})
	}
	specs = append(specs,
		cellSpec{M: MotifIncast, Kind: motif.KindRDMA, NC: motifNetworks()[0], Gbps: 100,
			Fault: faultSpec{Drop: 0.01, Recover: true, Budget: 3}})
	for _, spec := range specs {
		rs := runSpecFor(spec, o)
		got, err := cellSpecFor(rs)
		if err != nil {
			t.Fatalf("%s: %v", spec.cellName(), err)
		}
		if got != spec {
			t.Fatalf("round trip changed spec: %+v vs %+v", got, spec)
		}
	}
	if _, err := cellSpecFor(ledger.RunSpec{Motif: "nope"}); err == nil {
		t.Fatal("bad motif accepted")
	}
	if _, err := cellSpecFor(ledger.RunSpec{Motif: "sweep3d", Transport: "tcp"}); err == nil {
		t.Fatal("bad transport accepted")
	}
}

// TestLedgerFileName pins the cell-name flattening (the CI smoke job globs
// these names).
func TestLedgerFileName(t *testing.T) {
	got := ledgerFileName("sweep3d|dragonfly/adaptive|RVMA|100Gbps")
	want := "sweep3d_dragonfly-adaptive_RVMA_100Gbps.ledger.json"
	if got != want {
		t.Fatalf("ledgerFileName = %q, want %q", got, want)
	}
	if filepath.Ext(got) != ".json" {
		t.Fatal("not a .json name")
	}
}
