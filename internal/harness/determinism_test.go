package harness

import (
	"bytes"
	"fmt"
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/metrics"
	"rvma/internal/motif"
	"rvma/internal/topology"
)

// TestSameSeedSameMetrics is the determinism regression gate: running
// one Figure-7 cell twice with the same seed must produce byte-identical
// metrics snapshots. Anything that leaks wall-clock time, global
// randomness, or map iteration order into the simulation shows up here
// as a snapshot diff. The cell uses dragonfly/adaptive routing because
// adaptive routing exercises the engine RNG (jitter, detours) — the
// hardest case to keep reproducible. Both transports run: the RDMA path
// covers the sorted-drain fix in motif/transport_rdma.go.
func TestSameSeedSameMetrics(t *testing.T) {
	nc := NetConfig{"dragonfly/adaptive", topology.KindDragonfly, fabric.RouteAdaptive}
	for _, kind := range []motif.TransportKind{motif.KindRVMA, motif.KindRDMA} {
		t.Run(kind.String(), func(t *testing.T) {
			run := func() []byte {
				reg := metrics.NewRegistry()
				reg.EnableSpans()
				mk, err := RunMotifPointInstrumented(MotifSweep3D, kind, nc, 64, 100, 42, reg)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				fmt.Fprintf(&buf, "makespan_ns=%v\n", mk.Nanoseconds())
				if err := reg.WriteJSON(&buf, mk); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			first, second := run(), run()
			if !bytes.Equal(first, second) {
				t.Errorf("same seed produced different metrics snapshots:\n--- run 1 ---\n%s\n--- run 2 ---\n%s",
					firstDiffContext(first, second), firstDiffContext(second, first))
			}
		})
	}
}

// firstDiffContext returns a short window of a around its first
// difference from b, keeping failure output readable.
func firstDiffContext(a, b []byte) []byte {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo, hi := i-120, i+120
	if lo < 0 {
		lo = 0
	}
	if hi > len(a) {
		hi = len(a)
	}
	return a[lo:hi]
}
