package harness

import (
	"fmt"

	"rvma/internal/collective"
	"rvma/internal/fabric"
	"rvma/internal/matchengine"
	"rvma/internal/motif"
	"rvma/internal/sim"
	"rvma/internal/stats"
	"rvma/internal/topology"
)

// CollectivesTable is an extension experiment beyond the paper's motifs:
// latency-bound collective algorithms (dissemination barrier, recursive-
// doubling allreduce, binomial broadcast, ring allgather) over both
// transports on the adaptively routed dragonfly. Chains of small messages
// are where RVMA's completion model compounds.
func CollectivesTable(o Options) *Table {
	t := &Table{
		Title:  fmt.Sprintf("Extension: collectives, RVMA vs RDMA (dragonfly/adaptive, %d+ nodes, 100Gbps)", min(o.Nodes, 64)),
		Header: []string{"collective", "RVMA", "RDMA", "speedup"},
	}
	nodes := min(o.Nodes, 64) // all-to-all Prepare is O(n^2) handshakes for RDMA
	topo, err := topology.ForNodeCount(topology.KindDragonfly, nodes)
	if err != nil {
		t.AddNote("SKIPPED: %v", err)
		return t
	}
	run := func(kind motif.TransportKind, op collective.Op) (sim.Time, error) {
		cfg := motif.DefaultClusterConfig(topo, kind)
		cfg.Routing = fabric.RouteAdaptive
		cfg.Seed = o.Seed
		c, err := motif.NewCluster(cfg)
		if err != nil {
			return 0, err
		}
		return collective.RunCollective(c, collective.DefaultConfig(op))
	}
	for _, op := range []collective.Op{
		collective.OpBarrier, collective.OpAllreduce,
		collective.OpBroadcast, collective.OpAllgather,
	} {
		rv, err1 := run(motif.KindRVMA, op)
		rd, err2 := run(motif.KindRDMA, op)
		if err1 != nil || err2 != nil {
			t.AddNote("SKIPPED %s: %v %v", op, err1, err2)
			continue
		}
		t.AddRow(string(op), rv.String(), rd.String(),
			fmt.Sprintf("%.2fx", stats.Speedup(rd.Seconds(), rv.Seconds())))
	}
	t.AddNote("10 iterations each; allreduce = 256 x 8B elements, broadcast/allgather = 4KiB blocks")
	return t
}

// MatchEngineTable prices the two receive-side steering designs of
// §III-A/§IV-A with the NIC cost model: RVMA's single-lookup table is
// flat; a Portals-style match list walk grows with posted depth.
func MatchEngineTable(o Options) *Table {
	m := matchengine.DefaultCostModel()
	t := &Table{
		Title:  "Extension: receive-side steering cost (NIC cost model, §IV-A)",
		Header: []string{"posted entries", "RVMA LUT lookup", "match-list walk (avg hit at n/2)", "LUT NIC memory"},
	}
	for _, n := range []int{16, 256, 4096, 65536} {
		tab := matchengine.NewTable()
		for i := 0; i < n; i++ {
			tab.Install(uint64(i)*2654435761, i)
		}
		t.AddRow(
			fmt.Sprintf("%d", n),
			m.TableLookupTime().String(),
			m.ListMatchTime(n/2).String(),
			stats.FormatBytes(tab.BytesOnNIC()),
		)
	}
	t.AddNote("cost model: %v NIC clock, %d-cycle table lookup, %d cycle per list element",
		m.CycleTime, m.TableLookupCycles, m.ListElementCycles)
	t.AddNote("the paper's LUT entry is 24 bytes: mailbox address + buffer head + completion pointer")
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
