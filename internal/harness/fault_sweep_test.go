package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// faultSweepOptions is the quick-turnaround sweep the tests run: one loss
// rate (the 5% acceptance point), one link speed, a small dragonfly.
func faultSweepOptions() Options {
	o := DefaultOptions()
	o.Nodes = 64
	o.LinkGbps = []float64{100}
	o.FaultRates = []float64{0.05}
	return o
}

// TestFaultSweepAcceptance is the tentpole's headline check at the table
// layer: under 5% uniform loss both transports complete 100% of their
// operations within the retry budget, visibly did recovery work to get
// there, and the identical cell without the recovery layer deadlocks.
func TestFaultSweepAcceptance(t *testing.T) {
	tab := FaultSweep(faultSweepOptions())
	if len(tab.Rows) != 2 {
		var buf bytes.Buffer
		tab.Fprint(&buf)
		t.Fatalf("want 2 rows (RVMA, RDMA), got %d:\n%s", len(tab.Rows), buf.String())
	}
	seen := map[string]bool{}
	for _, row := range tab.Rows {
		transport := row[0]
		seen[transport] = true
		if row[3] != "100.0%" {
			t.Errorf("%s completion = %q, want 100.0%% at 5%% loss", transport, row[3])
		}
		if n, err := strconv.Atoi(row[4]); err != nil || n == 0 {
			t.Errorf("%s retransmits = %q, want nonzero", transport, row[4])
		}
		if row[8] != "DEADLOCK" {
			t.Errorf("%s no-recovery cell = %q, want DEADLOCK", transport, row[8])
		}
		if row[7] == "-" || !strings.Contains(row[7], "Gbps") {
			t.Errorf("%s goodput = %q, want a Gbps figure", transport, row[7])
		}
	}
	if !seen["RVMA"] || !seen["RDMA"] {
		t.Fatalf("rows missing a transport: %v", seen)
	}
}

// TestFaultSweepIdenticalAcrossWorkers extends the worker-pool determinism
// gate to the fault cells: a sweep full of RNG-driven drops, retry jitter
// and deadlocking control cells must still render byte-identically at
// every worker count.
func TestFaultSweepIdenticalAcrossWorkers(t *testing.T) {
	render := func(workers int) []byte {
		o := faultSweepOptions()
		o.Workers = workers
		var buf bytes.Buffer
		FaultSweep(o).Fprint(&buf)
		return buf.Bytes()
	}
	ref := render(1)
	for _, workers := range workerCounts()[1:] {
		if got := render(workers); !bytes.Equal(ref, got) {
			t.Errorf("workers=%d fault sweep differs from serial:\n%s",
				workers, firstDiffContext(ref, got))
		}
	}
}
