package harness

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"rvma/internal/sim"
)

// BenchRecord is one experiment cell's performance sample: how much
// simulated time the cell covered, how long it took on the wall clock, and
// the resulting event throughput. CI compares these against a saved
// BENCH_sim.json (scripts/check_bench_regression.py) to track simulator
// performance.
type BenchRecord struct {
	// Cell identifies the experiment point: "motif|network|transport|gbps".
	Cell string `json:"cell"`
	// WallMS is the host wall-clock run time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// SimNS is the simulated makespan in nanoseconds.
	SimNS float64 `json:"sim_ns"`
	// Events is the number of simulation events executed.
	Events uint64 `json:"events"`
	// EventsPerSec is Events divided by wall seconds. For a sharded cell
	// this is the aggregate across all shards — the number parallel
	// execution improves.
	EventsPerSec float64 `json:"events_per_sec"`
	// Shards is the cell's engine partition count (0 = single heap).
	// events_per_sec is only comparable between records with equal Shards;
	// Events must match regardless (the byte-identical guarantee).
	Shards int `json:"shards,omitempty"`
}

// BenchSummary aggregates a sweep. WallMSTotal sums the per-cell wall
// times — the regression-guard denominator. Per-cell wall time inflates
// when workers oversubscribe the host's cores (concurrent cells
// time-share), so throughput guards must compare runs at the same
// -workers setting; CI pins -workers 1. ElapsedMS is the sweep's
// start-to-finish wall time (what parallelism improves); Workers records
// the pool size.
type BenchSummary struct {
	Cells          int     `json:"cells"`
	WallMSTotal    float64 `json:"wall_ms_total"`
	ElapsedMS      float64 `json:"elapsed_ms,omitempty"`
	EventsTotal    uint64  `json:"events_total"`
	EventsPerSec   float64 `json:"events_per_sec_aggregate"`
	Workers        int     `json:"workers,omitempty"`
	SimNSTotal     float64 `json:"sim_ns_total"`
	SimNSPerWallMS float64 `json:"sim_ns_per_wall_ms"`
	// Shards is the sweep's engine partition count when every record agrees
	// on one (0 = single heap); omitted for mixed sweeps.
	Shards int `json:"shards,omitempty"`
}

// BenchLog accumulates BenchRecords across a harness invocation. The
// harness is host-side code (exempt from the determinism lint), so it may
// read the wall clock; records never feed back into any simulation. The
// log is safe for concurrent appends, although the worker-pool runner
// records into per-cell logs and merges serially so record order stays
// canonical.
type BenchLog struct {
	mu      sync.Mutex
	Records []BenchRecord

	// Workers and Elapsed are sweep-level metadata the CLI fills in
	// before WriteJSON.
	Workers int
	Elapsed time.Duration
}

// Record appends one cell sample. shards is the cell's engine partition
// count (0 = single heap).
func (b *BenchLog) Record(cell string, wall time.Duration, simT sim.Time, events uint64, shards int) {
	if b == nil {
		return
	}
	r := BenchRecord{
		Cell:   cell,
		WallMS: float64(wall.Nanoseconds()) / 1e6,
		SimNS:  simT.Nanoseconds(),
		Events: events,
		Shards: shards,
	}
	if secs := wall.Seconds(); secs > 0 {
		r.EventsPerSec = float64(events) / secs
	}
	b.Append(r)
}

// Append adds an already-built record (the worker-pool merge path).
func (b *BenchLog) Append(r BenchRecord) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.Records = append(b.Records, r)
	b.mu.Unlock()
}

// Summary aggregates the records collected so far.
func (b *BenchLog) Summary() BenchSummary {
	if b == nil {
		return BenchSummary{}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	s := BenchSummary{
		Cells:   len(b.Records),
		Workers: b.Workers,
	}
	if b.Elapsed > 0 {
		s.ElapsedMS = float64(b.Elapsed.Nanoseconds()) / 1e6
	}
	for i, r := range b.Records {
		s.WallMSTotal += r.WallMS
		s.EventsTotal += r.Events
		s.SimNSTotal += r.SimNS
		if i == 0 {
			s.Shards = r.Shards
		} else if r.Shards != s.Shards {
			s.Shards = 0 // mixed sweep: no single meaningful count
		}
	}
	if s.WallMSTotal > 0 {
		s.EventsPerSec = float64(s.EventsTotal) / (s.WallMSTotal / 1e3)
		s.SimNSPerWallMS = s.SimNSTotal / s.WallMSTotal
	}
	return s
}

// WriteJSON emits the log as indented JSON: {"records": [...], "summary":
// {...}}. The format is documented in EXPERIMENTS.md ("Simulator
// performance log").
func (b *BenchLog) WriteJSON(w io.Writer) error {
	summary := b.Summary()
	b.mu.Lock()
	defer b.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Records []BenchRecord `json:"records"`
		Summary BenchSummary  `json:"summary"`
	}{Records: b.Records, Summary: summary})
}
