package harness

import (
	"encoding/json"
	"io"
	"time"

	"rvma/internal/sim"
)

// BenchRecord is one experiment cell's performance sample: how much
// simulated time the cell covered, how long it took on the wall clock, and
// the resulting event throughput. Future PRs compare these against a saved
// BENCH_sim.json to track simulator performance.
type BenchRecord struct {
	// Cell identifies the experiment point: "motif|network|transport|gbps".
	Cell string `json:"cell"`
	// WallMS is the host wall-clock run time in milliseconds.
	WallMS float64 `json:"wall_ms"`
	// SimNS is the simulated makespan in nanoseconds.
	SimNS float64 `json:"sim_ns"`
	// Events is the number of simulation events executed.
	Events uint64 `json:"events"`
	// EventsPerSec is Events divided by wall seconds.
	EventsPerSec float64 `json:"events_per_sec"`
}

// BenchLog accumulates BenchRecords across a harness invocation. The
// harness is host-side code (exempt from the determinism lint), so it may
// read the wall clock; records never feed back into any simulation.
type BenchLog struct {
	Records []BenchRecord
}

// Record appends one cell sample.
func (b *BenchLog) Record(cell string, wall time.Duration, simT sim.Time, events uint64) {
	if b == nil {
		return
	}
	r := BenchRecord{
		Cell:   cell,
		WallMS: float64(wall.Nanoseconds()) / 1e6,
		SimNS:  simT.Nanoseconds(),
		Events: events,
	}
	if secs := wall.Seconds(); secs > 0 {
		r.EventsPerSec = float64(events) / secs
	}
	b.Records = append(b.Records, r)
}

// WriteJSON emits the log as indented JSON: {"records": [...]}. The format
// is documented in EXPERIMENTS.md ("Simulator performance log").
func (b *BenchLog) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Records []BenchRecord `json:"records"`
	}{Records: b.Records})
}
