package nic

// RangeAssembler is the duplicate-aware sibling of Assembler for reliable
// protocols that retransmit. The sum-based Assembler credits every arrived
// byte, so a retransmitted packet inflates the received count and can
// falsely complete a message that still has holes — exactly the corruption
// the recovery layer must not introduce. RangeAssembler instead tracks
// which packet offsets of each message have landed: message segmentation
// is deterministic (SendMessage cuts MTU-aligned chunks), so a retransmit
// reproduces the original offsets and duplicates are exact re-hits.
//
// Completed messages are remembered in a bounded FIFO ring so a straggler
// duplicate arriving after completion is recognized (and can be re-acked)
// instead of opening a phantom new reassembly. The ring is evicted in
// arrival order; its capacity is generous relative to in-flight message
// counts, and an eviction-defeating duplicate would need to arrive after
// doneRingCap newer messages completed — far outside any retry horizon the
// recovery layer configures.
type RangeAssembler struct {
	inflight map[MsgKey]*rangeState
	done     map[MsgKey]struct{}
	doneFIFO []MsgKey
	doneHead int
}

type rangeState struct {
	seen     map[int]struct{} // packet offsets that have landed
	received int
	total    int
}

// doneRingCap bounds the completed-message memory of a RangeAssembler.
const doneRingCap = 4096

// NewRangeAssembler returns an empty duplicate-aware assembler.
func NewRangeAssembler() *RangeAssembler {
	return &RangeAssembler{
		inflight: make(map[MsgKey]*rangeState),
		done:     make(map[MsgKey]struct{}),
	}
}

// Add records a packet carrying size bytes at byte offset within message
// key of the given total size. It returns the number of bytes that were
// new (0 for a duplicate), whether this packet completed the message, and
// whether the packet was a duplicate of one already received.
func (a *RangeAssembler) Add(key MsgKey, offset, size, total int) (newBytes int, completed, duplicate bool) {
	if _, ok := a.done[key]; ok {
		return 0, false, true
	}
	st, ok := a.inflight[key]
	if !ok {
		if size >= total {
			a.markDone(key)
			return size, true, false
		}
		st = &rangeState{seen: make(map[int]struct{}), total: total}
		a.inflight[key] = st
	}
	if _, dup := st.seen[offset]; dup {
		return 0, false, true
	}
	st.seen[offset] = struct{}{}
	st.received += size
	if st.received >= st.total {
		delete(a.inflight, key)
		a.markDone(key)
		return size, true, false
	}
	return size, false, false
}

// Done reports whether key completed reassembly and is still remembered.
func (a *RangeAssembler) Done(key MsgKey) bool {
	_, ok := a.done[key]
	return ok
}

// Drop forgets an incomplete message, returning how many bytes it had
// received. Receivers call this when a reclaim (epoch rewind) abandons a
// holed buffer; the message's retransmit then reassembles from scratch.
func (a *RangeAssembler) Drop(key MsgKey) int {
	st, ok := a.inflight[key]
	if !ok {
		return 0
	}
	delete(a.inflight, key)
	return st.received
}

// Pending returns the number of incomplete messages (for leak tests).
func (a *RangeAssembler) Pending() int { return len(a.inflight) }

func (a *RangeAssembler) markDone(key MsgKey) {
	if len(a.doneFIFO) < doneRingCap {
		a.doneFIFO = append(a.doneFIFO, key)
	} else {
		delete(a.done, a.doneFIFO[a.doneHead])
		a.doneFIFO[a.doneHead] = key
		a.doneHead = (a.doneHead + 1) % doneRingCap
	}
	a.done[key] = struct{}{}
}
