package nic

import (
	"testing"
	"testing/quick"

	"rvma/internal/fabric"
	"rvma/internal/pcie"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

func pairWithNICs(t *testing.T) (*sim.Engine, *NIC, *NIC) {
	t.Helper()
	eng := sim.NewEngine(1)
	net, err := fabric.New(eng, topology.NewSingleSwitch(2), fabric.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := New(eng, net, 0, pcie.Gen4x16(), DefaultProfile())
	b := New(eng, net, 1, pcie.Gen4x16(), DefaultProfile())
	return eng, a, b
}

type recorded struct {
	off, size int
	at        sim.Time
}

func TestSendMessageSegmentation(t *testing.T) {
	eng, a, b := pairWithNICs(t)
	a.SetHandler(func(pkt *fabric.Packet) {})
	var got []recorded
	b.SetHandler(func(pkt *fabric.Packet) {
		meta := pkt.Payload.([2]int)
		got = append(got, recorded{meta[0], meta[1], eng.Now()})
	})
	const total = 5000 // MTU 2048 -> packets of 2048, 2048, 904
	eng.Schedule(0, func() {
		a.SendMessage(1, total, func(off, size int) any { return [2]int{off, size} })
	})
	eng.Run()
	if len(got) != 3 {
		t.Fatalf("received %d packets, want 3", len(got))
	}
	wantSizes := []int{2048, 2048, 904}
	sum := 0
	for i, r := range got {
		if r.size != wantSizes[i] {
			t.Fatalf("packet %d size = %d, want %d", i, r.size, wantSizes[i])
		}
		sum += r.size
	}
	if sum != total {
		t.Fatalf("byte sum = %d, want %d", sum, total)
	}
	if a.PacketsSent != 3 || b.PacketsReceived != 3 || a.MessagesSent != 1 {
		t.Fatalf("stats: sent=%d recv=%d msgs=%d", a.PacketsSent, b.PacketsReceived, a.MessagesSent)
	}
}

func TestZeroByteMessage(t *testing.T) {
	eng, a, b := pairWithNICs(t)
	a.SetHandler(func(pkt *fabric.Packet) {})
	count := 0
	b.SetHandler(func(pkt *fabric.Packet) { count++ })
	eng.Schedule(0, func() {
		a.SendMessage(1, 0, func(off, size int) any { return nil })
	})
	eng.Run()
	if count != 1 {
		t.Fatalf("zero-byte message should still produce one (header-only) packet, got %d", count)
	}
}

func TestLocalCompletionAfterLastInjection(t *testing.T) {
	eng, a, b := pairWithNICs(t)
	a.SetHandler(func(pkt *fabric.Packet) {})
	var lastRecv sim.Time
	b.SetHandler(func(pkt *fabric.Packet) { lastRecv = eng.Now() })
	var localDone sim.Time
	eng.Schedule(0, func() {
		f := a.SendMessage(1, 8192, func(off, size int) any { return nil })
		f.OnComplete(func() { localDone = eng.Now() })
	})
	eng.Run()
	if localDone == 0 {
		t.Fatal("local completion never fired")
	}
	if localDone >= lastRecv {
		t.Fatalf("local completion %v should precede remote delivery %v", localDone, lastRecv)
	}
}

func TestRecvPipelineSerializes(t *testing.T) {
	eng, a, b := pairWithNICs(t)
	a.SetHandler(func(pkt *fabric.Packet) {})
	var times []sim.Time
	b.SetHandler(func(pkt *fabric.Packet) { times = append(times, eng.Now()) })
	eng.Schedule(0, func() {
		// Tiny packets arrive nearly back-to-back; the receive pipeline's
		// per-packet processing must keep handler invocations apart by at
		// least its processing time when arrivals are tighter than that.
		for i := 0; i < 5; i++ {
			a.SendMessage(1, 1, func(off, size int) any { return nil })
		}
	})
	eng.Run()
	prof := DefaultProfile()
	minGap := prof.RecvPacketProc + prof.LookupLatency
	ser := sim.SerializationTime(1+fabric.HeaderBytes, fabric.DefaultConfig().LinkGbps)
	if ser >= minGap {
		t.Skip("arrivals not tighter than pipeline; adjust test parameters")
	}
	for i := 1; i < len(times); i++ {
		if gap := times[i] - times[i-1]; gap < minGap {
			t.Fatalf("handler gap %d = %v, want >= %v", i, gap, minGap)
		}
	}
}

func TestSetHandlerTwicePanics(t *testing.T) {
	_, a, _ := pairWithNICs(t)
	a.SetHandler(func(pkt *fabric.Packet) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second SetHandler should panic")
		}
	}()
	a.SetHandler(func(pkt *fabric.Packet) {})
}

func TestRegistrationTime(t *testing.T) {
	p := DefaultProfile()
	if got := p.RegistrationTime(1); got != p.RegistrationBase+p.RegistrationPerPage {
		t.Fatalf("1-byte registration = %v", got)
	}
	if got := p.RegistrationTime(4096); got != p.RegistrationBase+p.RegistrationPerPage {
		t.Fatalf("one-page registration = %v", got)
	}
	if got := p.RegistrationTime(4097); got != p.RegistrationBase+2*p.RegistrationPerPage {
		t.Fatalf("two-page registration = %v", got)
	}
	if got := p.RegistrationTime(1 << 20); got != p.RegistrationBase+256*p.RegistrationPerPage {
		t.Fatalf("1 MiB registration = %v", got)
	}
}

func TestAssemblerSinglePacket(t *testing.T) {
	a := NewAssembler()
	if !a.Add(MsgKey{Src: 1, MsgID: 9}, 100, 100) {
		t.Fatal("single-packet message should complete on first Add")
	}
	if a.Pending() != 0 {
		t.Fatal("no state should linger for single-packet messages")
	}
}

func TestAssemblerMultiPacketAnyOrder(t *testing.T) {
	a := NewAssembler()
	k := MsgKey{Src: 2, MsgID: 5}
	if a.Add(k, 1000, 3000) {
		t.Fatal("incomplete message reported complete")
	}
	if a.Add(k, 1000, 3000) {
		t.Fatal("incomplete message reported complete")
	}
	if !a.Add(k, 1000, 3000) {
		t.Fatal("final chunk should complete the message")
	}
	if a.Pending() != 0 {
		t.Fatalf("pending = %d after completion", a.Pending())
	}
}

func TestAssemblerInterleavedMessages(t *testing.T) {
	a := NewAssembler()
	k1, k2 := MsgKey{Src: 1, MsgID: 1}, MsgKey{Src: 1, MsgID: 2}
	a.Add(k1, 10, 20)
	a.Add(k2, 10, 20)
	if a.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", a.Pending())
	}
	if !a.Add(k2, 10, 20) || !a.Add(k1, 10, 20) {
		t.Fatal("interleaved messages must complete independently")
	}
}

// Property: for any chunking of a message, the assembler completes exactly
// once, on the chunk that reaches the total.
func TestAssemblerProperty(t *testing.T) {
	f := func(chunksRaw []uint8) bool {
		chunks := make([]int, 0, len(chunksRaw))
		total := 0
		for _, c := range chunksRaw {
			v := int(c)%512 + 1
			chunks = append(chunks, v)
			total += v
		}
		if total == 0 {
			return true
		}
		a := NewAssembler()
		k := MsgKey{Src: 3, MsgID: 7}
		completions := 0
		for i, c := range chunks {
			if a.Add(k, c, total) {
				completions++
				if i != len(chunks)-1 {
					return false // completed before all chunks arrived
				}
			}
		}
		return completions == 1 && a.Pending() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSendThroughputRespectsLineRate(t *testing.T) {
	eng, a, b := pairWithNICs(t)
	a.SetHandler(func(pkt *fabric.Packet) {})
	var last sim.Time
	bytes := 0
	b.SetHandler(func(pkt *fabric.Packet) {
		last = eng.Now()
		bytes += pkt.Size
	})
	const total = 1 << 20
	eng.Schedule(0, func() {
		a.SendMessage(1, total, func(off, size int) any { return nil })
	})
	eng.Run()
	if bytes != total {
		t.Fatalf("delivered %d bytes, want %d", bytes, total)
	}
	// Effective rate must not exceed the link's 100 Gbps.
	gbps := float64(bytes) * 8 / last.Nanoseconds()
	if gbps > 100 {
		t.Fatalf("effective delivery rate %.1f Gbps exceeds line rate", gbps)
	}
	// And must achieve a decent fraction of it for a 1 MiB transfer.
	if gbps < 50 {
		t.Fatalf("effective delivery rate %.1f Gbps unreasonably low", gbps)
	}
}

func TestInjectControlSkipsBus(t *testing.T) {
	eng, a, b := pairWithNICs(t)
	a.SetHandler(func(pkt *fabric.Packet) {})
	var got any
	b.SetHandler(func(pkt *fabric.Packet) { got = pkt.Payload })
	busBefore := a.Bus().Transactions
	eng.Schedule(0, func() { a.InjectControl(1, "ack") })
	eng.Run()
	if got != "ack" {
		t.Fatalf("control payload = %v", got)
	}
	if a.Bus().Transactions != busBefore {
		t.Fatal("NIC-generated control packets must not cross the host bus")
	}
	if a.PacketsSent != 1 {
		t.Fatalf("packets sent = %d", a.PacketsSent)
	}
}
