// Package nic provides the NIC machinery shared by the RVMA and RDMA
// models: a timed send pipeline (doorbell, payload DMA, per-packet
// processing, injection), a timed receive pipeline, message segmentation
// and reassembly, and the timing profile abstraction the experiments
// parameterize ("verbs"-like and "ucx"-like host interfaces in the paper's
// Figures 4 and 5).
//
// Both protocol models sit on identical plumbing, which is the paper's
// methodological point: "The new RVMA and RDMA models ... both use the
// identical timing for non-RDMA related traffic considerations" (§V-B).
// Only the protocol state machines above this package differ.
package nic

import (
	"fmt"

	"rvma/internal/fabric"
	"rvma/internal/memory"
	"rvma/internal/metrics"
	"rvma/internal/pcie"
	"rvma/internal/sim"
	"rvma/internal/trace"
)

// Profile holds host-software and NIC-pipeline timing parameters. The
// microbenchmark host interfaces (Verbs, UCX) are Profiles; the motif
// transports reuse them.
type Profile struct {
	// Name labels the profile in reports.
	Name string
	// HostPostOverhead is the host CPU cost to build and post one work
	// request (ibv_post_send / ucp_put_nbx and friends).
	HostPostOverhead sim.Time
	// HostCompletionOverhead is the host CPU cost to observe and act on a
	// lightweight completion: a known memory location changing (RVMA's
	// completion pointer, RDMA's last-byte poll).
	HostCompletionOverhead sim.Time
	// CQProcessOverhead is the host CPU cost to reap one entry from a
	// shared completion queue through the runtime (CQ poll hit, entry
	// decode, tag match / callback dispatch). The paper's §IV-C argues
	// this path is inherently heavier than a per-buffer completion
	// pointer; UCX's progress engine makes it heavier still.
	CQProcessOverhead sim.Time
	// SendPacketProc is NIC per-packet send-side processing.
	SendPacketProc sim.Time
	// RecvPacketProc is NIC per-packet receive-side processing.
	RecvPacketProc sim.Time
	// LookupLatency is the receive-side steering lookup: the RVMA mailbox
	// LUT or the RDMA MR/QP validation. The paper argues both are small and
	// comparable (§IV-A); they default equal so neither model is favored.
	LookupLatency sim.Time
	// PollInterval is the host's completion polling cadence.
	PollInterval sim.Time
	// MWaitWake is the wake-from-MWait latency when a watched line is
	// written ("as little as one clock cycle", §IV-C).
	MWaitWake sim.Time
	// RegistrationBase is the fixed host cost of registering a memory
	// region (ibv_reg_mr syscall and setup).
	RegistrationBase sim.Time
	// RegistrationPerPage is the added pinning cost per 4 KiB page.
	RegistrationPerPage sim.Time
	// DoorbellBytes is the size of the MMIO doorbell write.
	DoorbellBytes int
}

// DefaultProfile returns a generic high-performance NIC profile used by
// tests; the experiment profiles live in package hostif.
func DefaultProfile() Profile {
	return Profile{
		Name:                   "default",
		HostPostOverhead:       100 * sim.Nanosecond,
		HostCompletionOverhead: 75 * sim.Nanosecond,
		CQProcessOverhead:      150 * sim.Nanosecond,
		SendPacketProc:         40 * sim.Nanosecond,
		RecvPacketProc:         40 * sim.Nanosecond,
		LookupLatency:          25 * sim.Nanosecond,
		PollInterval:           20 * sim.Nanosecond,
		MWaitWake:              5 * sim.Nanosecond,
		RegistrationBase:       900 * sim.Nanosecond,
		RegistrationPerPage:    15 * sim.Nanosecond,
		DoorbellBytes:          8,
	}
}

// RegistrationTime returns the modeled cost of registering size bytes.
func (p Profile) RegistrationTime(size int) sim.Time {
	pages := (size + 4095) / 4096
	return p.RegistrationBase + sim.Scale(pages, p.RegistrationPerPage)
}

// Handler consumes a protocol packet payload on the receive side, after the
// NIC receive pipeline has accounted its processing time.
type Handler func(pkt *fabric.Packet)

// NIC is one node's network interface: bus, pipelines and dispatch.
type NIC struct {
	node int
	eng  sim.Tagged
	net  *fabric.Network
	mem  *memory.Memory
	bus  *pcie.Bus
	prof Profile

	sendPipe *sim.Resource
	recvPipe *sim.Resource
	handler  Handler

	tracer *trace.Tracer

	// Metric handles (nil when no registry is attached).
	mMsgs     *metrics.Counter
	mPkts     *metrics.Counter
	mBytes    *metrics.Counter
	mCtrlPkts *metrics.Counter

	// Stats.
	MessagesSent    uint64
	PacketsSent     uint64
	PacketsReceived uint64
	BytesSent       uint64
}

// New attaches a NIC to node on net, with its own memory and bus.
func New(eng *sim.Engine, net *fabric.Network, node int, busCfg pcie.Config, prof Profile) *NIC {
	n := &NIC{
		node:     node,
		eng:      eng.Tag("nic"),
		net:      net,
		mem:      memory.New(),
		bus:      pcie.New(busCfg),
		prof:     prof,
		sendPipe: sim.NewResource(fmt.Sprintf("nic%d.send", node)),
		recvPipe: sim.NewResource(fmt.Sprintf("nic%d.recv", node)),
	}
	net.AttachHost(node, n.deliver)
	return n
}

// Node returns the attached node id.
func (n *NIC) Node() int { return n.node }

// Engine returns the simulation engine.
func (n *NIC) Engine() *sim.Engine { return n.eng.Engine }

// Memory returns the node's host memory.
func (n *NIC) Memory() *memory.Memory { return n.mem }

// Bus returns the node's PCIe bus model.
func (n *NIC) Bus() *pcie.Bus { return n.bus }

// Profile returns the timing profile.
func (n *NIC) Profile() Profile { return n.prof }

// Network returns the fabric this NIC injects into.
func (n *NIC) Network() *fabric.Network { return n.net }

// MTU returns the fabric's maximum payload per packet.
func (n *NIC) MTU() int { return n.net.MTU() }

// SetTracer attaches a tracer; send/receive pipeline activity goes to
// trace.CatNIC. A nil tracer detaches.
func (n *NIC) SetTracer(t *trace.Tracer) { n.tracer = t }

// SetMetrics attaches a metrics registry. Message/packet/byte counters are
// shared across every NIC on the registry; per-node pipeline occupancy is
// sampled by a collector. A nil registry detaches the counters.
func (n *NIC) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		n.mMsgs, n.mPkts, n.mBytes, n.mCtrlPkts = nil, nil, nil, nil
		return
	}
	n.mMsgs = reg.Counter("nic.messages_sent")
	n.mPkts = reg.Counter("nic.packets_sent")
	n.mBytes = reg.Counter("nic.bytes_sent")
	n.mCtrlPkts = reg.Counter("nic.control_packets_sent")
	reg.AddCollector(func() {
		reg.Gauge(fmt.Sprintf("nic%d.send_queue_ns", n.node)).Set(n.sendPipe.Backlog(n.eng.Engine).Nanoseconds())
		reg.Gauge(fmt.Sprintf("nic%d.recv_queue_ns", n.node)).Set(n.recvPipe.Backlog(n.eng.Engine).Nanoseconds())
	})
}

// SendBacklog returns how long a packet entering the send pipeline now
// would wait before processing starts (telemetry: NIC pipeline backlog).
func (n *NIC) SendBacklog() sim.Time { return n.sendPipe.Backlog(n.eng.Engine) }

// RecvBacklog returns how long a packet entering the receive pipeline now
// would wait before processing starts.
func (n *NIC) RecvBacklog() sim.Time { return n.recvPipe.Backlog(n.eng.Engine) }

// DMABacklog returns how long a DMA issued now would wait for the host
// bus data path (telemetry: in-flight DMA).
func (n *NIC) DMABacklog() sim.Time { return n.bus.Backlog(n.eng.Engine) }

// SetHandler installs the protocol's receive dispatch. Exactly one protocol
// owns a NIC.
func (n *NIC) SetHandler(h Handler) {
	if n.handler != nil {
		panic(fmt.Sprintf("nic: node %d handler set twice", n.node))
	}
	n.handler = h
}

// deliver is the fabric callback: account receive-pipeline time, then hand
// the packet to the protocol.
func (n *NIC) deliver(pkt *fabric.Packet) {
	n.PacketsReceived++
	if n.tracer != nil {
		n.tracer.Eventf(trace.CatNIC, "nic%d rx #%d from %d %dB", n.node, pkt.ID, pkt.Src, pkt.Size)
	}
	done := n.recvPipe.Acquire(n.eng.Engine, n.prof.RecvPacketProc+n.prof.LookupLatency)
	n.eng.At(done, func() {
		if n.handler == nil {
			panic(fmt.Sprintf("nic: node %d received packet with no protocol handler", n.node))
		}
		n.handler(pkt)
	})
}

// SendMessage segments a message of total payload bytes to dst and pushes
// it through the send pipeline: one doorbell write, then per packet a
// payload DMA read over the bus and NIC processing, then fabric injection.
// build constructs each packet's protocol payload given its (offset, size)
// within the message. The returned future completes when the last packet
// has been handed to the fabric (local send completion); remote delivery
// semantics belong to the protocols.
//
// The caller is responsible for modeling host software overhead
// (Profile.HostPostOverhead) before invoking SendMessage; the protocols do
// this so that zero-copy paths and doorbell batching can be modeled
// distinctly later.
func (n *NIC) SendMessage(dst, total int, build func(off, size int) any) *sim.Future {
	if total < 0 {
		panic("nic: negative message size")
	}
	n.MessagesSent++
	n.BytesSent += uint64(total)
	n.mMsgs.Add(1)
	n.mBytes.Add(uint64(total))
	if n.tracer != nil {
		n.tracer.Eventf(trace.CatNIC, "nic%d tx msg dst=%d %dB", n.node, dst, total)
	}
	f := sim.NewFuture()

	// Doorbell: a small MMIO write crossing the bus.
	doorbellDone := n.bus.TransferTime(n.eng.Engine, n.prof.DoorbellBytes)

	mtu := n.MTU()
	off := 0
	last := doorbellDone
	for {
		size := total - off
		if size > mtu {
			size = mtu
		}
		// Payload DMA read from host memory (serializes on the bus), then
		// per-packet send processing (serializes on the send pipeline).
		dmaDone := n.bus.TransferTime(n.eng.Engine, size)
		if dmaDone < doorbellDone {
			dmaDone = doorbellDone
		}
		procDone := n.sendPipe.AcquireAt(dmaDone, n.prof.SendPacketProc)
		pkt := &fabric.Packet{Src: n.node, Dst: dst, Size: size, Payload: build(off, size)}
		n.PacketsSent++
		n.mPkts.Add(1)
		n.eng.At(procDone, func() { n.net.Inject(pkt) })
		if procDone > last {
			last = procDone
		}
		off += size
		if off >= total {
			break
		}
	}
	n.eng.At(last, func() { f.Complete(n.eng.Engine, nil) })
	return f
}

// InjectControl sends a NIC-generated control packet (transport ACK, NACK)
// to dst. Control packets are fabricated by the NIC itself: they pay
// send-pipeline processing but never cross the host bus, unlike
// host-posted messages.
func (n *NIC) InjectControl(dst int, payload any) {
	n.PacketsSent++
	n.mPkts.Add(1)
	n.mCtrlPkts.Add(1)
	if n.tracer != nil {
		n.tracer.Eventf(trace.CatNIC, "nic%d ctrl dst=%d", n.node, dst)
	}
	done := n.sendPipe.Acquire(n.eng.Engine, n.prof.SendPacketProc)
	pkt := &fabric.Packet{Src: n.node, Dst: dst, Size: 0, Payload: payload}
	n.eng.At(done, func() { n.net.Inject(pkt) })
}

// MsgKey identifies an in-flight message for reassembly: source node plus
// the source's message id.
type MsgKey struct {
	Src   int
	MsgID uint64
}

// Assembler tracks partially received messages so a protocol can tell when
// every byte of a multi-packet message has arrived regardless of arrival
// order. RDMA's send/recv-fenced completion needs it to model transport
// resequencing; RVMA's EPOCH_OPS counting needs it to count an operation
// exactly once.
type Assembler struct {
	inflight map[MsgKey]*asmState
}

type asmState struct {
	received int
	total    int
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{inflight: make(map[MsgKey]*asmState)}
}

// Add records size arrived bytes for message key with the given total
// message size, returning true exactly once: when the message completes.
// Single-packet messages (size == total on first Add) complete immediately
// without map traffic.
func (a *Assembler) Add(key MsgKey, size, total int) bool {
	st, ok := a.inflight[key]
	if !ok {
		if size >= total {
			return true
		}
		a.inflight[key] = &asmState{received: size, total: total}
		return false
	}
	st.received += size
	if st.received >= st.total {
		delete(a.inflight, key)
		return true
	}
	return false
}

// Pending returns the number of incomplete messages (for leak tests).
func (a *Assembler) Pending() int { return len(a.inflight) }
