package nic

import "testing"

func TestRangeAssemblerBasicCompletion(t *testing.T) {
	a := NewRangeAssembler()
	key := MsgKey{Src: 3, MsgID: 7}
	if n, done, dup := a.Add(key, 0, 1024, 2048); n != 1024 || done || dup {
		t.Fatalf("first half: n=%d done=%v dup=%v", n, done, dup)
	}
	if a.Done(key) {
		t.Fatal("half-received message reported done")
	}
	if n, done, dup := a.Add(key, 1024, 1024, 2048); n != 1024 || !done || dup {
		t.Fatalf("second half: n=%d done=%v dup=%v", n, done, dup)
	}
	if !a.Done(key) {
		t.Fatal("completed message not done")
	}
	if a.Pending() != 0 {
		t.Fatalf("pending = %d after completion", a.Pending())
	}
}

func TestRangeAssemblerDuplicateOffsets(t *testing.T) {
	a := NewRangeAssembler()
	key := MsgKey{Src: 1, MsgID: 1}
	a.Add(key, 0, 1024, 2048)
	// Same offset again while inflight: duplicate, no new bytes.
	if n, done, dup := a.Add(key, 0, 1024, 2048); n != 0 || done || !dup {
		t.Fatalf("inflight dup: n=%d done=%v dup=%v", n, done, dup)
	}
	a.Add(key, 1024, 1024, 2048)
	// Any packet after completion: duplicate via the done ring.
	for _, off := range []int{0, 1024} {
		if n, done, dup := a.Add(key, off, 1024, 2048); n != 0 || done || !dup {
			t.Fatalf("post-done dup at %d: n=%d done=%v dup=%v", off, n, done, dup)
		}
	}
}

func TestRangeAssemblerSinglePacketMessage(t *testing.T) {
	a := NewRangeAssembler()
	key := MsgKey{Src: 2, MsgID: 9}
	if n, done, dup := a.Add(key, 0, 512, 512); n != 512 || !done || dup {
		t.Fatalf("single packet: n=%d done=%v dup=%v", n, done, dup)
	}
	if n, done, dup := a.Add(key, 0, 512, 512); n != 0 || done || !dup {
		t.Fatalf("retransmitted single packet: n=%d done=%v dup=%v", n, done, dup)
	}
}

func TestRangeAssemblerDropForgetsPartial(t *testing.T) {
	a := NewRangeAssembler()
	key := MsgKey{Src: 4, MsgID: 2}
	a.Add(key, 0, 1024, 4096)
	a.Add(key, 1024, 1024, 4096)
	if got := a.Drop(key); got != 2048 {
		t.Fatalf("dropped %d bytes, want 2048", got)
	}
	// After Drop the same offsets count fresh (a reclaim discarded them).
	if n, _, dup := a.Add(key, 0, 1024, 4096); n != 1024 || dup {
		t.Fatalf("post-drop add: n=%d dup=%v", n, dup)
	}
}

func TestRangeAssemblerDoneRingEviction(t *testing.T) {
	a := NewRangeAssembler()
	// Push doneRingCap+1 completed messages through; the first one's key
	// is evicted and a late duplicate of it counts as new again (the
	// documented, bounded-memory tradeoff).
	first := MsgKey{Src: 0, MsgID: 0}
	a.Add(first, 0, 8, 8)
	for i := 1; i <= doneRingCap; i++ {
		a.Add(MsgKey{Src: 0, MsgID: uint64(i)}, 0, 8, 8)
	}
	// first was pushed out by the last insert: the ring holds the most
	// recent doneRingCap keys, so its late duplicate now counts as new.
	if _, _, dup := a.Add(first, 0, 8, 8); dup {
		t.Fatal("evicted key still reported duplicate")
	}
	// A key still inside the ring keeps deduplicating.
	if _, _, dup := a.Add(MsgKey{Src: 0, MsgID: doneRingCap}, 0, 8, 8); !dup {
		t.Fatal("retained key lost its duplicate marker")
	}
}
