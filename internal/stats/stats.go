// Package stats provides the small statistical toolkit the experiment
// harness uses: summaries (mean, standard deviation, extrema), speedup
// helpers, and human-readable byte-size formatting for table axes.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero value.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = xs[0], xs[0]
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It panics on an empty sample.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: percentile of empty sample")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Speedup returns baseline/improved — the convention the paper uses
// ("RVMA outperforms ... by 4.4X" means tRDMA/tRVMA = 4.4).
func Speedup(baseline, improved float64) float64 {
	if improved == 0 {
		return math.Inf(1)
	}
	return baseline / improved
}

// Reduction returns the fractional latency reduction (baseline-improved)/
// baseline, the paper's "65.8% reduction in latency" metric.
func Reduction(baseline, improved float64) float64 {
	if baseline == 0 {
		return 0
	}
	return (baseline - improved) / baseline
}

// GeoMean returns the geometric mean of xs (all values must be positive).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic("stats: geomean of non-positive value")
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// FormatBytes renders a byte count with a binary-unit suffix (axis labels).
func FormatBytes(n int) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// FormatGbps renders a link speed the way the paper's figures label them.
func FormatGbps(gbps float64) string {
	if gbps >= 1000 {
		return fmt.Sprintf("%.3gTbps", gbps/1000)
	}
	return fmt.Sprintf("%.4gGbps", gbps)
}
