package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Mean != 5 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample stddev of this classic set is ~2.138.
	if !almostEqual(s.Stddev, 2.138, 0.01) {
		t.Fatalf("stddev = %v", s.Stddev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Stddev != 0 {
		t.Fatalf("singleton summary = %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 50); !almostEqual(p, 5.5, 1e-9) {
		t.Fatalf("p50 = %v", p)
	}
	if p := Percentile(xs, 90); !almostEqual(p, 9.1, 1e-9) {
		t.Fatalf("p90 = %v", p)
	}
	// Input must not be mutated (sorted copy).
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty percentile should panic")
		}
	}()
	Percentile(nil, 50)
}

func TestSpeedupAndReduction(t *testing.T) {
	if s := Speedup(4.4, 1.0); s != 4.4 {
		t.Fatalf("speedup = %v", s)
	}
	if !math.IsInf(Speedup(1, 0), 1) {
		t.Fatal("speedup over zero should be +Inf")
	}
	if r := Reduction(100, 34.2); !almostEqual(r, 0.658, 1e-9) {
		t.Fatalf("reduction = %v (the paper's 65.8%%)", r)
	}
	if Reduction(0, 5) != 0 {
		t.Fatal("reduction with zero baseline should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4, 16}); !almostEqual(g, 4, 1e-9) {
		t.Fatalf("geomean = %v", g)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
}

func TestGeoMeanNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive geomean should panic")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestFormatBytes(t *testing.T) {
	cases := map[int]string{
		2:       "2B",
		1023:    "1023B",
		1024:    "1KiB",
		65536:   "64KiB",
		1 << 20: "1MiB",
		1 << 30: "1GiB",
		1500:    "1500B",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatGbps(t *testing.T) {
	if got := FormatGbps(100); got != "100Gbps" {
		t.Errorf("got %q", got)
	}
	if got := FormatGbps(2000); got != "2Tbps" {
		t.Errorf("got %q", got)
	}
}

// Property: mean is bounded by min and max; stddev is non-negative.
func TestSummaryBoundsProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Stddev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: percentiles are monotone in p.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []int16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		a := float64(aRaw) / 255 * 100
		b := float64(bRaw) / 255 * 100
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
