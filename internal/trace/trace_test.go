package trace

import (
	"strings"
	"testing"

	"rvma/internal/sim"
)

func TestEventRecording(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng, 10)
	tr.Enable(CatPacket)
	eng.Schedule(sim.Microsecond, func() { tr.Eventf(CatPacket, "hello %d", 42) })
	eng.Schedule(sim.Microsecond, func() { tr.Eventf(CatNIC, "suppressed") })
	eng.Run()
	evs := tr.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1 (disabled category dropped)", len(evs))
	}
	if evs[0].At != sim.Microsecond || evs[0].Msg != "hello 42" || evs[0].Cat != CatPacket {
		t.Fatalf("event = %+v", evs[0])
	}
	if tr.Suppressed != 1 {
		t.Fatalf("suppressed = %d, want 1", tr.Suppressed)
	}
	if tr.Overwritten != 0 {
		t.Fatalf("overwritten = %d, want 0 (ring never filled)", tr.Overwritten)
	}
}

func TestEnableAll(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng, 4)
	tr.EnableAll()
	tr.Eventf(CatApp, "x")
	tr.Eventf(CatRVMA, "y")
	if len(tr.Events()) != 2 {
		t.Fatal("EnableAll should record every category")
	}
}

func TestRingWraps(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng, 3)
	tr.Enable(CatApp)
	for i := 0; i < 5; i++ {
		i := i
		eng.Schedule(sim.Time(i), func() { tr.Eventf(CatApp, "e%d", i) })
	}
	eng.Run()
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("ring should hold 3, got %d", len(evs))
	}
	// Oldest two dropped; order preserved.
	if evs[0].Msg != "e2" || evs[1].Msg != "e3" || evs[2].Msg != "e4" {
		t.Fatalf("wrapped order wrong: %v", evs)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("wrapped events out of chronological order: %v", evs)
		}
	}
	if tr.Overwritten != 2 {
		t.Fatalf("overwritten = %d, want 2", tr.Overwritten)
	}
	if tr.Suppressed != 0 {
		t.Fatalf("suppressed = %d, want 0", tr.Suppressed)
	}
}

func TestDumpReportsSuppressedAndOverwritten(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng, 2)
	tr.Enable(CatApp)
	tr.Eventf(CatNIC, "suppressed")
	for i := 0; i < 3; i++ {
		tr.Eventf(CatApp, "e%d", i)
	}
	var sb strings.Builder
	tr.Dump(&sb)
	out := sb.String()
	if !strings.Contains(out, "suppressed (category disabled): 1") ||
		!strings.Contains(out, "overwritten (ring full): 1") {
		t.Fatalf("dump missing loss accounting:\n%s", out)
	}
}

func TestCounters(t *testing.T) {
	tr := New(sim.NewEngine(1), 1)
	tr.Count("pkts", 3)
	tr.Count("pkts", 4)
	if tr.Counter("pkts") != 7 {
		t.Fatalf("counter = %d", tr.Counter("pkts"))
	}
	if tr.Counter("missing") != 0 {
		t.Fatal("missing counter should read 0")
	}
}

func TestSeries(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng, 1)
	tr.DefineSeries("bw", 10*sim.Microsecond)
	eng.Schedule(sim.Microsecond, func() { tr.Add("bw", 100) })
	eng.Schedule(5*sim.Microsecond, func() { tr.Add("bw", 50) })
	eng.Schedule(25*sim.Microsecond, func() { tr.Add("bw", 7) })
	eng.Schedule(0, func() { tr.Add("undefined", 1) }) // no-op
	eng.Run()
	sums := tr.SeriesSums("bw")
	if len(sums) != 3 || sums[0] != 150 || sums[1] != 0 || sums[2] != 7 {
		t.Fatalf("series = %v", sums)
	}
	if tr.SeriesSums("undefined") != nil {
		t.Fatal("undefined series should read nil")
	}
}

func TestSeriesBoundedDownsamples(t *testing.T) {
	s := &Series{Bucket: sim.Microsecond}
	const adds = 3 * maxSeriesBuckets
	for i := 0; i < adds; i++ {
		s.add(sim.Time(i)*sim.Microsecond, 1)
	}
	if len(s.Sums) > maxSeriesBuckets {
		t.Fatalf("series grew to %d buckets, cap is %d", len(s.Sums), maxSeriesBuckets)
	}
	if s.Bucket <= sim.Microsecond {
		t.Fatalf("bucket width %v should have doubled past the original", s.Bucket)
	}
	total := 0.0
	for _, v := range s.Sums {
		total += v
	}
	if total != adds {
		t.Fatalf("downsampling lost mass: total = %g, want %d", total, adds)
	}

	// A single add far in the future must compress until it fits, never
	// allocate past the cap.
	s.add(1000*maxSeriesBuckets*sim.Microsecond, 5)
	if len(s.Sums) > maxSeriesBuckets {
		t.Fatalf("far-future add grew series to %d buckets, cap is %d", len(s.Sums), maxSeriesBuckets)
	}
	total = 0
	for _, v := range s.Sums {
		total += v
	}
	if total != adds+5 {
		t.Fatalf("total after far-future add = %g, want %d", total, adds+5)
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Eventf(CatApp, "x")
	tr.Count("c", 1)
	tr.Add("s", 1)
	tr.Dump(&strings.Builder{})
	if tr.Counter("c") != 0 || tr.Events() != nil || tr.Enabled(CatApp) {
		t.Fatal("nil tracer must be inert")
	}
	if err := tr.WriteSeriesCSV(&strings.Builder{}, "s"); err == nil {
		t.Fatal("WriteSeriesCSV on nil tracer should return an error, not panic")
	}
}

func TestDumpAndCSV(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng, 4)
	tr.Enable(CatApp)
	tr.Count("n", 2)
	tr.DefineSeries("s", sim.Microsecond)
	eng.Schedule(0, func() { tr.Add("s", 5); tr.Eventf(CatApp, "mark") })
	eng.Run()
	var sb strings.Builder
	tr.Dump(&sb)
	out := sb.String()
	for _, want := range []string{"counters:", "n", "series s", "mark"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	sb.Reset()
	if err := tr.WriteSeriesCSV(&sb, "s"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "bucket_start_ns,value" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) != 2 || lines[1] != "0,5" {
		t.Fatalf("csv rows = %v", lines[1:])
	}
	if err := tr.WriteSeriesCSV(&sb, "nope"); err == nil {
		t.Fatal("unknown series should error")
	}
}

func TestWriteSeriesCSVMultiBucket(t *testing.T) {
	eng := sim.NewEngine(1)
	tr := New(eng, 1)
	tr.DefineSeries("bw", 10*sim.Microsecond)
	eng.Schedule(sim.Microsecond, func() { tr.Add("bw", 100) })
	eng.Schedule(25*sim.Microsecond, func() { tr.Add("bw", 7) })
	eng.Run()
	var sb strings.Builder
	if err := tr.WriteSeriesCSV(&sb, "bw"); err != nil {
		t.Fatal(err)
	}
	want := "bucket_start_ns,value\n0,100\n10000,0\n20000,7\n"
	if sb.String() != want {
		t.Fatalf("csv = %q, want %q", sb.String(), want)
	}
}
