// Package trace provides lightweight observability for simulation runs:
// categorized event logs (bounded ring), named counters, and time-bucketed
// series. The fabric and NIC models emit into a Tracer when one is
// attached; with no tracer attached the hooks cost one nil check.
//
// cmd/rvmasim -trace prints a run's trace summary; tests use tracers to
// assert on internal behavior (detour counts, drop reasons) without
// reaching into model state.
package trace

import (
	"fmt"
	"io"
	"sort"

	"rvma/internal/sim"
)

// Category tags an event stream.
type Category string

// Categories emitted by the built-in models.
const (
	CatPacket Category = "packet" // injection, delivery, detour
	CatNIC    Category = "nic"    // pipeline activity
	CatRVMA   Category = "rvma"   // window lifecycle, completions, NACKs
	CatRDMA   Category = "rdma"   // registration, fences, acks
	CatApp    Category = "app"    // application-level marks
)

// Event is one trace record.
type Event struct {
	At  sim.Time
	Cat Category
	Msg string
}

// maxSeriesBuckets bounds a Series' stored buckets. When an add would
// index past the cap, the series downsamples: adjacent bucket pairs are
// summed and the bucket width doubles, preserving totals while halving
// resolution — memory stays bounded for arbitrarily long runs.
const maxSeriesBuckets = 4096

// Series accumulates a value into fixed-width time buckets, producing a
// time series (e.g. delivered bytes per 10 µs window).
type Series struct {
	Bucket  sim.Time
	Sums    []float64
	started bool
}

// add accumulates v at time at.
func (s *Series) add(at sim.Time, v float64) {
	if s.Bucket <= 0 {
		return
	}
	idx := int(at / s.Bucket)
	for idx >= maxSeriesBuckets {
		s.compress()
		idx = int(at / s.Bucket)
	}
	for len(s.Sums) <= idx {
		s.Sums = append(s.Sums, 0)
	}
	s.Sums[idx] += v
	s.started = true
}

// compress doubles the bucket width, summing adjacent bucket pairs so the
// series keeps its totals at half the time resolution.
func (s *Series) compress() {
	keep := (len(s.Sums) + 1) / 2
	for i := 0; i < keep; i++ {
		v := s.Sums[2*i]
		if 2*i+1 < len(s.Sums) {
			v += s.Sums[2*i+1]
		}
		s.Sums[i] = v
	}
	s.Sums = s.Sums[:keep]
	s.Bucket *= 2
}

// Tracer collects events, counters and series for one simulation.
type Tracer struct {
	eng     *sim.Engine
	enabled map[Category]bool
	all     bool

	ring    []Event
	next    int
	wrapped bool

	// Suppressed counts events rejected because their category was
	// disabled; Overwritten counts events lost to ring wraparound. The
	// former is expected noise, the latter means the ring was too small
	// for the run.
	Suppressed  uint64
	Overwritten uint64

	counters map[string]uint64
	series   map[string]*Series
}

// New returns a tracer bound to the engine with a bounded event ring.
// No categories are enabled initially.
func New(eng *sim.Engine, capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{
		eng:      eng,
		enabled:  make(map[Category]bool),
		ring:     make([]Event, 0, capacity),
		counters: make(map[string]uint64),
		series:   make(map[string]*Series),
	}
}

// Enable turns on event recording for the categories (or EnableAll).
func (t *Tracer) Enable(cats ...Category) {
	for _, c := range cats {
		t.enabled[c] = true
	}
}

// EnableAll records every category.
func (t *Tracer) EnableAll() { t.all = true }

// Enabled reports whether a category records events.
func (t *Tracer) Enabled(c Category) bool { return t != nil && (t.all || t.enabled[c]) }

// Eventf records a formatted event at the current simulated time.
func (t *Tracer) Eventf(cat Category, format string, args ...any) {
	if t == nil {
		return
	}
	if !t.Enabled(cat) {
		t.Suppressed++
		return
	}
	ev := Event{At: t.eng.Now(), Cat: cat, Msg: fmt.Sprintf(format, args...)}
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, ev)
		return
	}
	t.ring[t.next] = ev
	t.next = (t.next + 1) % cap(t.ring)
	t.wrapped = true
	t.Overwritten++
}

// Count adds delta to a named counter. Counters always record, independent
// of category enablement — they are the cheap aggregate layer.
func (t *Tracer) Count(name string, delta uint64) {
	if t == nil {
		return
	}
	t.counters[name] += delta
}

// Counter returns a named counter's value.
func (t *Tracer) Counter(name string) uint64 {
	if t == nil {
		return 0
	}
	return t.counters[name]
}

// DefineSeries creates (or resets) a named time series with the given
// bucket width.
func (t *Tracer) DefineSeries(name string, bucket sim.Time) {
	if t == nil {
		return
	}
	t.series[name] = &Series{Bucket: bucket}
}

// Add accumulates v into a named series at the current simulated time.
// Adding to an undefined series is a no-op.
func (t *Tracer) Add(name string, v float64) {
	if t == nil {
		return
	}
	if s, ok := t.series[name]; ok {
		s.add(t.eng.Now(), v)
	}
}

// SeriesSums returns the bucket sums of a named series (nil if undefined).
func (t *Tracer) SeriesSums(name string) []float64 {
	if t == nil {
		return nil
	}
	if s, ok := t.series[name]; ok {
		return s.Sums
	}
	return nil
}

// Events returns the recorded events in chronological order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.wrapped {
		out := make([]Event, len(t.ring))
		copy(out, t.ring)
		return out
	}
	out := make([]Event, 0, cap(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Dump writes a human-readable summary: counters (sorted), series shapes,
// then the event log.
func (t *Tracer) Dump(w io.Writer) {
	if t == nil {
		return
	}
	names := make([]string, 0, len(t.counters))
	for n := range t.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, n := range names {
			fmt.Fprintf(w, "  %-32s %d\n", n, t.counters[n])
		}
	}
	snames := make([]string, 0, len(t.series))
	for n := range t.series {
		snames = append(snames, n)
	}
	sort.Strings(snames)
	for _, n := range snames {
		s := t.series[n]
		if !s.started {
			continue
		}
		fmt.Fprintf(w, "series %s (bucket %v): %d buckets, peak %.4g\n",
			n, s.Bucket, len(s.Sums), peak(s.Sums))
	}
	evs := t.Events()
	if len(evs) > 0 {
		fmt.Fprintf(w, "events (%d recorded%s):\n", len(evs), wrappedNote(t.wrapped))
		for _, e := range evs {
			fmt.Fprintf(w, "  [%v] %s: %s\n", e.At, e.Cat, e.Msg)
		}
	}
	if t.Suppressed > 0 || t.Overwritten > 0 {
		fmt.Fprintf(w, "suppressed (category disabled): %d, overwritten (ring full): %d\n",
			t.Suppressed, t.Overwritten)
	}
}

// WriteSeriesCSV emits a named series as (bucket_start_ns, value) rows.
func (t *Tracer) WriteSeriesCSV(w io.Writer, name string) error {
	if t == nil {
		return fmt.Errorf("trace: nil tracer")
	}
	s, ok := t.series[name]
	if !ok {
		return fmt.Errorf("trace: unknown series %q", name)
	}
	fmt.Fprintln(w, "bucket_start_ns,value")
	for i, v := range s.Sums {
		fmt.Fprintf(w, "%.0f,%g\n", (sim.Time(i) * s.Bucket).Nanoseconds(), v)
	}
	return nil
}

func peak(xs []float64) float64 {
	p := 0.0
	for _, x := range xs {
		if x > p {
			p = x
		}
	}
	return p
}

func wrappedNote(wrapped bool) string {
	if wrapped {
		return ", ring wrapped: oldest dropped"
	}
	return ""
}
