package attrib

import (
	"fmt"
	"io"
	"sort"

	"rvma/internal/sim"
)

// TailEntry is one operation in the worst-K tail exchange: the message's
// identity, how it ended, its full per-stage decomposition, and the
// causal-context probe values sampled the moment it ended.
type TailEntry struct {
	Node     int // initiating node (the span key's node)
	ID       uint64
	Scope    string
	Status   string
	Attempts int
	Start    sim.Time
	End      sim.Time
	Total    sim.Time
	Stages   []StageRec
	Context  []ContextSample
}

// tailLess orders tail entries: slowest first, ties broken by end time,
// then initiating node, then message id — a total order, so the exchange
// is deterministic and merges identically at any worker count.
func tailLess(a, b *TailEntry) bool {
	if a.Total != b.Total {
		return a.Total > b.Total
	}
	if a.End != b.End {
		return a.End < b.End
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.ID < b.ID
}

// offerTail considers a freshly ended operation for the exchange,
// snapshotting the context probes only if it qualifies (probes never run
// for the fast path).
func (c *Collector) offerTail(e TailEntry) {
	if len(c.tail) >= c.tailK && !tailLess(&e, &c.tail[len(c.tail)-1]) {
		return
	}
	e.Context = c.snapshotContext()
	c.insertTail(e)
}

// insertTail places e at its sorted position and trims to K entries.
func (c *Collector) insertTail(e TailEntry) {
	i := sort.Search(len(c.tail), func(i int) bool { return tailLess(&e, &c.tail[i]) })
	c.tail = append(c.tail, TailEntry{})
	copy(c.tail[i+1:], c.tail[i:])
	c.tail[i] = e
	if len(c.tail) > c.tailK {
		c.tail = c.tail[:c.tailK]
	}
}

// Tail returns the worst-K entries, slowest first.
func (c *Collector) Tail() []TailEntry {
	if c == nil {
		return nil
	}
	return c.tail
}

// FprintTail writes the tail exchange as a forensics report: one block per
// slow operation with its stage decomposition and sampled context.
func (c *Collector) FprintTail(w io.Writer) {
	if c == nil || len(c.tail) == 0 {
		return
	}
	fmt.Fprintf(w, "== tail exchange: worst %d ==\n", len(c.tail))
	for i := range c.tail {
		e := &c.tail[i]
		fmt.Fprintf(w, "#%d %s node %d msg %d: %s, %d attempt(s), total %s [%s .. %s]\n",
			i+1, e.Scope, e.Node, e.ID, e.Status, e.Attempts, e.Total, e.Start, e.End)
		for _, s := range e.Stages {
			tag := ""
			if s.Attempt > 0 {
				tag = fmt.Sprintf(" (attempt %d)", s.Attempt)
			}
			fmt.Fprintf(w, "    %-10s %12s  wait %12s  service %12s%s\n",
				s.Stage, s.Dur, s.Wait, s.Dur-s.Wait, tag)
		}
		if len(e.Context) > 0 {
			fmt.Fprintf(w, "    context:")
			for _, cs := range e.Context {
				fmt.Fprintf(w, " %s=%g", cs.Name, cs.Value)
			}
			fmt.Fprintln(w)
		}
	}
}
