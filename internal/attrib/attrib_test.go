package attrib

import (
	"bytes"
	"strings"
	"testing"

	"rvma/internal/metrics"
	"rvma/internal/sim"
)

// feedSpan plays one message through a span-enabled registry wired to the
// collector: stages are (name, endTime, wait) triples applied in order.
func feedSpan(reg *metrics.Registry, node int, id uint64, scope string, start sim.Time, stages []struct {
	name string
	at   sim.Time
	wait sim.Time
}, status string) {
	sp := reg.BeginSpan(start, metrics.SpanKey{Node: node, ID: id}, scope, node)
	last := len(stages) - 1
	for i, s := range stages {
		if i == last && status != "completed" {
			break
		}
		sp.StageWait(s.at, s.name, s.wait)
	}
	switch status {
	case "completed":
		sp.End(stages[last].at)
	case "nacked":
		sp.EndNacked(stages[last].at)
	case "abandoned":
		sp.EndAbandoned(stages[last].at)
	default:
		panic("feedSpan: unknown status " + status)
	}
}

// collectorWith returns a registry+collector pair wired together.
func collectorWith(k int) (*metrics.Registry, *Collector) {
	reg := metrics.NewRegistry()
	reg.EnableSpans()
	col := NewCollector(k)
	reg.SetSpanObserver(col)
	return reg, col
}

var pipelineStages = []struct {
	name string
	at   sim.Time
	wait sim.Time
}{
	{"host_post", 100, 0},
	{"nic_tx", 400, 200},
	{"wire", 2400, 1500},
	{"place", 2600, 50},
	{"complete", 2700, 0},
}

// TestConservationAndBlame checks the collector's core contract: per-stage
// durations sum to end-to-end for every message (zero violations), the
// blame profile's shares sum to one, and scope summaries count statuses.
func TestConservationAndBlame(t *testing.T) {
	reg, col := collectorWith(0)
	for id := uint64(0); id < 10; id++ {
		feedSpan(reg, 1, id, "rvma.put", 0, pipelineStages, "completed")
	}
	feedSpan(reg, 2, 100, "rvma.put", 0, pipelineStages, "nacked")
	feedSpan(reg, 2, 101, "rvma.put", 0, pipelineStages, "abandoned")

	if v := col.Violations(); v != 0 {
		t.Fatalf("Violations() = %d, want 0", v)
	}
	if open := col.Open(); open != 0 {
		t.Fatalf("Open() = %d, want 0", open)
	}
	sum := col.Summary("rvma.put")
	if sum.Messages != 12 || sum.Completed != 10 || sum.Nacked != 1 || sum.Abandoned != 1 {
		t.Fatalf("summary %+v, want 12 messages (10/1/1)", sum)
	}

	var share float64
	for _, row := range col.Blame("rvma.put") {
		share += row.Share
		if row.WaitShare < 0 || row.WaitShare > 1 {
			t.Errorf("stage %s: wait share %g outside [0, 1]", row.Stage, row.WaitShare)
		}
	}
	if share < 0.999 || share > 1.001 {
		t.Fatalf("blame shares sum to %g, want 1 (stages must cover the whole latency)", share)
	}

	// Pipeline ordering: host_post must lead, terminal statuses trail.
	rows := col.Blame("rvma.put")
	if rows[0].Stage != "host_post" {
		t.Fatalf("first blame row is %q, want host_post", rows[0].Stage)
	}
}

// TestConservationViolationCounted checks a broken call site (stage sum !=
// end-to-end) is detected and counted rather than silently aggregated.
func TestConservationViolationCounted(t *testing.T) {
	if sim.DebugEnabled {
		t.Skip("simdebug turns the violation counter into a hard assert")
	}
	col := NewCollector(0)
	key := metrics.SpanKey{Node: 1, ID: 1}
	col.SpanStage(key, "rvma.put", "host_post", 1, 0, 0, 100, 0)
	col.SpanEnd(key, "rvma.put", "completed", 1, 1, 0, 999) // stages say 100
	if v := col.Violations(); v != 1 {
		t.Fatalf("Violations() = %d, want 1", v)
	}
}

// TestMergeDeterministic checks the harness's merge path: folding per-cell
// collectors in a fixed order produces byte-identical JSON to feeding one
// collector serially — the property that makes blame tables identical at
// any worker count.
func TestMergeDeterministic(t *testing.T) {
	regAll, colAll := collectorWith(4)
	regA, colA := collectorWith(4)
	regB, colB := collectorWith(4)

	for id := uint64(0); id < 6; id++ {
		start := sim.Time(id) * 10
		stages := append([]struct {
			name string
			at   sim.Time
			wait sim.Time
		}(nil), pipelineStages...)
		for i := range stages {
			stages[i].at += start
		}
		feedSpan(regAll, 1, id, "rvma.put", start, stages, "completed")
		if id < 3 {
			feedSpan(regA, 1, id, "rvma.put", start, stages, "completed")
		} else {
			feedSpan(regB, 1, id, "rvma.put", start, stages, "completed")
		}
	}

	merged := NewCollector(4)
	merged.Merge(colA)
	merged.Merge(colB)

	var serial, viaMerge bytes.Buffer
	if err := colAll.WriteJSON(&serial); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSON(&viaMerge); err != nil {
		t.Fatal(err)
	}
	if serial.String() != viaMerge.String() {
		t.Fatalf("merged JSON differs from serial JSON:\n--- serial ---\n%s\n--- merged ---\n%s",
			serial.String(), viaMerge.String())
	}
}

// TestTailExchange checks the worst-K tail: slowest-first ordering,
// trimming to K, retained stage decomposition, and context probes sampled
// only for qualifying operations.
func TestTailExchange(t *testing.T) {
	reg, col := collectorWith(3)
	probes := 0
	col.AddContext("probe", func() float64 { probes++; return float64(probes) })

	totals := []sim.Time{500, 2700, 100, 9000, 1300, 60}
	for i, total := range totals {
		key := metrics.SpanKey{Node: i, ID: uint64(i)}
		sp := reg.BeginSpan(0, key, "rvma.put", i)
		sp.StageWait(total, "wire", total/2)
		sp.End(total)
	}

	tail := col.Tail()
	if len(tail) != 3 {
		t.Fatalf("tail has %d entries, want 3", len(tail))
	}
	want := []sim.Time{9000, 2700, 1300}
	for i, e := range tail {
		if e.Total != want[i] {
			t.Fatalf("tail[%d].Total = %d, want %d (slowest first)", i, e.Total, want[i])
		}
		if len(e.Stages) == 0 || e.Stages[0].Stage != "wire" {
			t.Fatalf("tail[%d] lost its stage decomposition: %+v", i, e.Stages)
		}
		if len(e.Context) != 1 {
			t.Fatalf("tail[%d] has %d context samples, want 1", i, len(e.Context))
		}
	}
	// Everything qualified while the exchange was filling or displacing
	// slower entries — except the final 60ps op, which arrived with three
	// slower entries already held and must not have run the probes.
	if probes != 5 {
		t.Fatalf("context probes ran %d times, want 5 (fast path must not sample)", probes)
	}

	var buf bytes.Buffer
	col.FprintTail(&buf)
	if !strings.Contains(buf.String(), "worst 3") {
		t.Fatalf("FprintTail output missing header:\n%s", buf.String())
	}
}

// TestWriteJSONShape spot-checks the export invariants external validators
// rely on: integer picosecond sums present and stage dur_ps summing to the
// scope total_ps.
func TestWriteJSONShape(t *testing.T) {
	reg, col := collectorWith(2)
	feedSpan(reg, 0, 1, "rvma.put", 0, pipelineStages, "completed")

	var buf bytes.Buffer
	if err := col.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"dur_ps"`, `"wait_ps"`, `"total_ps"`, `"violations": 0`, `"open": 0`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON export missing %s:\n%s", want, out)
		}
	}
}
