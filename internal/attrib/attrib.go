// Package attrib is the deterministic latency-attribution engine: it
// listens to the span layer (metrics.SpanObserver) and decomposes every
// message's end-to-end latency into per-stage wait vs service components,
// aggregates per-cell "blame" profiles (per stage, per transport scope),
// and keeps a worst-K tail exchange linking each of the slowest operations
// to its causal context (attempt count, NACK/rewind/retransmit totals,
// fabric congestion) sampled at the moment the operation ended.
//
// The engine is exact by construction: stage durations are integer
// picoseconds and every span's stage marks telescope — each mark closes at
// the time the next opens, and the ending mark closes at the span's end —
// so per-stage durations sum to the measured end-to-end latency for every
// message. SpanEnd checks that invariant per message (counting Violations,
// and asserting under simdebug); the JSON export carries integer _ps sums
// so external validators can re-check it without float rounding.
//
// All callbacks run synchronously on the engine goroutine in event order,
// and every map iteration goes through sorted keys, so two runs of the
// same cell — and merges of per-cell collectors in a fixed order — produce
// byte-identical output.
package attrib

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"rvma/internal/metrics"
	"rvma/internal/sim"
)

// StageRec is one closed pipeline stage of one message: dur is the stage's
// wall (simulated) duration, of which wait was spent queued or blocked and
// the remainder serviced. attempt tags which wire attempt of a
// retransmitted operation the stage belongs to (0 = first transmission).
type StageRec struct {
	Stage   string
	Attempt int
	Dur     sim.Time
	Wait    sim.Time
}

// ContextSample is one causal-context probe value snapshotted when a tail
// operation ended.
type ContextSample struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// msgState accumulates the stages of one in-flight message.
type msgState struct {
	node   int
	stages []StageRec
	sum    sim.Time
}

// stageAgg aggregates one stage name within one scope.
type stageAgg struct {
	count   uint64
	durSum  sim.Time
	waitSum sim.Time
	wait    *metrics.Histogram // wait component, ns
	service *metrics.Histogram // service component, ns
}

// scopeAgg aggregates one span scope (one transport's message family).
type scopeAgg struct {
	messages uint64
	statuses map[string]uint64
	attempts uint64 // total wire attempts across messages
	retried  uint64 // messages that needed more than one attempt
	totalSum sim.Time
	total    *metrics.Histogram
	stages   map[string]*stageAgg
}

type contextProbe struct {
	name string
	fn   func() float64
}

// Collector is the attribution engine for one cell (or, after Merge, one
// figure row). It implements metrics.SpanObserver.
type Collector struct {
	tailK      int
	inflight   map[metrics.SpanKey]*msgState
	scopes     map[string]*scopeAgg
	tail       []TailEntry
	probes     []contextProbe
	violations uint64
}

// NewCollector returns a collector keeping the k slowest operations in its
// tail exchange (k <= 0 selects the default of 8).
func NewCollector(k int) *Collector {
	if k <= 0 {
		k = 8
	}
	return &Collector{
		tailK:    k,
		inflight: make(map[metrics.SpanKey]*msgState),
		scopes:   make(map[string]*scopeAgg),
	}
}

// AddContext registers a causal-context probe sampled (in registration
// order) whenever an operation enters the tail exchange. Probes must be
// cheap and side-effect free; they run on the engine goroutine.
func (c *Collector) AddContext(name string, fn func() float64) {
	if c == nil || fn == nil {
		return
	}
	c.probes = append(c.probes, contextProbe{name: name, fn: fn})
}

// Violations returns how many messages ended with stage durations that did
// not sum to the measured end-to-end latency. Always zero unless a span
// call site breaks the telescoping contract.
func (c *Collector) Violations() uint64 {
	if c == nil {
		return 0
	}
	return c.violations
}

// Open returns the number of messages with recorded stages that have not
// ended yet (should be zero after a drained run).
func (c *Collector) Open() int {
	if c == nil {
		return 0
	}
	return len(c.inflight)
}

func (c *Collector) scope(name string) *scopeAgg {
	sa, ok := c.scopes[name]
	if !ok {
		sa = &scopeAgg{
			statuses: make(map[string]uint64),
			total:    new(metrics.Histogram),
			stages:   make(map[string]*stageAgg),
		}
		c.scopes[name] = sa
	}
	return sa
}

func (sa *scopeAgg) stage(name string) *stageAgg {
	g, ok := sa.stages[name]
	if !ok {
		g = &stageAgg{wait: new(metrics.Histogram), service: new(metrics.Histogram)}
		sa.stages[name] = g
	}
	return g
}

// SpanStage implements metrics.SpanObserver: it buffers the stage on the
// message's in-flight record (aggregation waits for SpanEnd so abandoned
// and completed messages attribute alike).
func (c *Collector) SpanStage(key metrics.SpanKey, scope, stage string, node, attempt int, from, dur, wait sim.Time) {
	if c == nil {
		return
	}
	st, ok := c.inflight[key]
	if !ok {
		st = &msgState{}
		c.inflight[key] = st
	}
	st.node = node
	st.stages = append(st.stages, StageRec{Stage: stage, Attempt: attempt, Dur: dur, Wait: wait})
	st.sum += dur
}

// SpanEnd implements metrics.SpanObserver: it checks stage conservation,
// folds the message into its scope's blame profile, and offers it to the
// tail exchange.
func (c *Collector) SpanEnd(key metrics.SpanKey, scope, status string, attempts, node int, start, end sim.Time) {
	if c == nil {
		return
	}
	st, ok := c.inflight[key]
	if ok {
		delete(c.inflight, key)
	} else {
		st = &msgState{node: node}
	}
	total := end - start
	if st.sum != total {
		c.violations++
		if sim.DebugEnabled {
			sim.Assertf(false,
				"attrib: span %s %d/%d stage sum %s != end-to-end %s (conservation violated)",
				scope, key.Node, key.ID, st.sum, total)
		}
	}

	sa := c.scope(scope)
	sa.messages++
	sa.statuses[status]++
	sa.attempts += uint64(attempts)
	if attempts > 1 {
		sa.retried++
	}
	sa.totalSum += total
	sa.total.ObserveTime(total)
	for i := range st.stages {
		r := &st.stages[i]
		g := sa.stage(r.Stage)
		g.count++
		g.durSum += r.Dur
		g.waitSum += r.Wait
		g.wait.ObserveTime(r.Wait)
		g.service.ObserveTime(r.Dur - r.Wait)
	}

	c.offerTail(TailEntry{
		Node: key.Node, ID: key.ID, Scope: scope, Status: status,
		Attempts: attempts, Start: start, End: end, Total: total,
		Stages: st.stages,
	})
}

// snapshotContext samples every registered probe, in registration order.
func (c *Collector) snapshotContext() []ContextSample {
	if len(c.probes) == 0 {
		return nil
	}
	out := make([]ContextSample, len(c.probes))
	for i, p := range c.probes {
		out[i] = ContextSample{Name: p.name, Value: p.fn()}
	}
	return out
}

// Merge folds every aggregate of o into c, iterating scopes, statuses and
// stages in sorted-key order so that merging per-cell collectors in a
// fixed canonical order yields byte-identical output at any worker count.
// Tail entries keep the context sampled in their original cell.
func (c *Collector) Merge(o *Collector) {
	if c == nil || o == nil {
		return
	}
	c.violations += o.violations
	for _, scope := range sortedKeys(o.scopes) {
		os := o.scopes[scope]
		sa := c.scope(scope)
		sa.messages += os.messages
		sa.attempts += os.attempts
		sa.retried += os.retried
		sa.totalSum += os.totalSum
		sa.total.Merge(os.total)
		for _, k := range sortedKeys(os.statuses) {
			sa.statuses[k] += os.statuses[k]
		}
		for _, name := range sortedKeys(os.stages) {
			og := os.stages[name]
			g := sa.stage(name)
			g.count += og.count
			g.durSum += og.durSum
			g.waitSum += og.waitSum
			g.wait.Merge(og.wait)
			g.service.Merge(og.service)
		}
	}
	for i := range o.tail {
		c.insertTail(o.tail[i])
	}
}

// sortedKeys returns m's keys in ascending order; every map iteration in
// this package goes through it to keep output deterministic.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// stageRank fixes the pipeline order for reports; unknown stages sort
// after the known ones, alphabetically.
var stageRank = map[string]int{
	"host_post":  0,
	"nic_tx":     1,
	"wire":       2,
	"place":      3,
	"complete":   4,
	"fence_hold": 5,
	"retry_wait": 6,
	"nack":       7,
	"abandon":    8,
}

// orderedStages returns the scope's stage names in pipeline order.
func orderedStages(sa *scopeAgg) []string {
	names := sortedKeys(sa.stages)
	sort.SliceStable(names, func(i, j int) bool {
		ri, iok := stageRank[names[i]]
		rj, jok := stageRank[names[j]]
		if !iok {
			ri = len(stageRank)
		}
		if !jok {
			rj = len(stageRank)
		}
		if ri != rj {
			return ri < rj
		}
		return names[i] < names[j]
	})
	return names
}

// Scopes returns the collector's scope names, sorted.
func (c *Collector) Scopes() []string {
	if c == nil {
		return nil
	}
	return sortedKeys(c.scopes)
}

// BlameRow is one stage's aggregate, exported for report builders.
type BlameRow struct {
	Stage      string
	Count      uint64
	Share      float64 // fraction of the scope's total end-to-end time
	WaitShare  float64 // fraction of the stage's time spent waiting
	WaitP50Ns  float64
	WaitP99Ns  float64
	WaitP999Ns float64
	SvcP50Ns   float64
	SvcP99Ns   float64
	SvcP999Ns  float64
}

// Blame returns the per-stage blame profile of one scope, in pipeline
// order (nil for an unknown scope).
func (c *Collector) Blame(scope string) []BlameRow {
	if c == nil {
		return nil
	}
	sa, ok := c.scopes[scope]
	if !ok {
		return nil
	}
	rows := make([]BlameRow, 0, len(sa.stages))
	for _, name := range orderedStages(sa) {
		g := sa.stages[name]
		row := BlameRow{
			Stage: name, Count: g.count,
			WaitP50Ns: g.wait.Quantile(0.50), WaitP99Ns: g.wait.Quantile(0.99), WaitP999Ns: g.wait.Quantile(0.999),
			SvcP50Ns: g.service.Quantile(0.50), SvcP99Ns: g.service.Quantile(0.99), SvcP999Ns: g.service.Quantile(0.999),
		}
		if sa.totalSum > 0 {
			row.Share = sim.Ratio(g.durSum, sa.totalSum)
		}
		if g.durSum > 0 {
			row.WaitShare = sim.Ratio(g.waitSum, g.durSum)
		}
		rows = append(rows, row)
	}
	return rows
}

// ScopeSummary is one scope's message-level aggregate.
type ScopeSummary struct {
	Messages   uint64
	Completed  uint64
	Nacked     uint64
	Abandoned  uint64
	Retried    uint64
	Attempts   uint64
	TotalP50Ns float64
	TotalP99Ns float64
}

// Summary returns scope-level counts and end-to-end quantiles.
func (c *Collector) Summary(scope string) ScopeSummary {
	if c == nil {
		return ScopeSummary{}
	}
	sa, ok := c.scopes[scope]
	if !ok {
		return ScopeSummary{}
	}
	return ScopeSummary{
		Messages:   sa.messages,
		Completed:  sa.statuses["completed"],
		Nacked:     sa.statuses["nacked"],
		Abandoned:  sa.statuses["abandoned"],
		Retried:    sa.retried,
		Attempts:   sa.attempts,
		TotalP50Ns: sa.total.Quantile(0.50),
		TotalP99Ns: sa.total.Quantile(0.99),
	}
}

// FprintBlame writes the per-stage blame tables, one per scope.
func (c *Collector) FprintBlame(w io.Writer) {
	if c == nil {
		return
	}
	for _, scope := range sortedKeys(c.scopes) {
		sa := c.scopes[scope]
		fmt.Fprintf(w, "== latency attribution: %s ==\n", scope)
		fmt.Fprintf(w, "messages %d", sa.messages)
		for _, st := range sortedKeys(sa.statuses) {
			fmt.Fprintf(w, "  %s %d", st, sa.statuses[st])
		}
		if sa.messages > 0 {
			fmt.Fprintf(w, "  retried %d  attempts/msg %.3f",
				sa.retried, float64(sa.attempts)/float64(sa.messages))
		}
		fmt.Fprintf(w, "\nend-to-end p50 %s  p99 %s  p99.9 %s\n",
			fmtNs(sa.total.Quantile(0.50)), fmtNs(sa.total.Quantile(0.99)), fmtNs(sa.total.Quantile(0.999)))
		fmt.Fprintf(w, "%-10s %9s %7s %7s %11s %11s %11s %11s %11s %11s\n",
			"stage", "count", "share", "wait%",
			"wait.p50", "wait.p99", "wait.p99.9", "svc.p50", "svc.p99", "svc.p99.9")
		for _, row := range c.Blame(scope) {
			fmt.Fprintf(w, "%-10s %9d %6.1f%% %6.1f%% %11s %11s %11s %11s %11s %11s\n",
				row.Stage, row.Count, row.Share*100, row.WaitShare*100,
				fmtNs(row.WaitP50Ns), fmtNs(row.WaitP99Ns), fmtNs(row.WaitP999Ns),
				fmtNs(row.SvcP50Ns), fmtNs(row.SvcP99Ns), fmtNs(row.SvcP999Ns))
		}
	}
}

// fmtNs renders a nanosecond value as a human-scale duration.
func fmtNs(ns float64) string { return sim.FromNanos(ns).String() }

// JSON export shapes. Time sums are integer picoseconds (exact — external
// validators re-check stage conservation on them); quantiles are float
// nanoseconds. All arrays are sorted, so output is byte-deterministic.

type stageJSON struct {
	Stage      string  `json:"stage"`
	Count      uint64  `json:"count"`
	DurPs      int64   `json:"dur_ps"`
	WaitPs     int64   `json:"wait_ps"`
	WaitP50Ns  float64 `json:"wait_p50_ns"`
	WaitP99Ns  float64 `json:"wait_p99_ns"`
	WaitP999Ns float64 `json:"wait_p999_ns"`
	SvcP50Ns   float64 `json:"service_p50_ns"`
	SvcP99Ns   float64 `json:"service_p99_ns"`
	SvcP999Ns  float64 `json:"service_p999_ns"`
}

type statusJSON struct {
	Status string `json:"status"`
	Count  uint64 `json:"count"`
}

type scopeJSON struct {
	Scope      string       `json:"scope"`
	Messages   uint64       `json:"messages"`
	Attempts   uint64       `json:"attempts"`
	Retried    uint64       `json:"retried"`
	Statuses   []statusJSON `json:"statuses"`
	TotalPs    int64        `json:"total_ps"`
	TotalP50Ns float64      `json:"total_p50_ns"`
	TotalP99Ns float64      `json:"total_p99_ns"`
	TotalP999  float64      `json:"total_p999_ns"`
	Stages     []stageJSON  `json:"stages"`
}

type tailStageJSON struct {
	Stage   string `json:"stage"`
	Attempt int    `json:"attempt"`
	DurPs   int64  `json:"dur_ps"`
	WaitPs  int64  `json:"wait_ps"`
}

type tailJSON struct {
	Node     int             `json:"node"`
	ID       uint64          `json:"id"`
	Scope    string          `json:"scope"`
	Status   string          `json:"status"`
	Attempts int             `json:"attempts"`
	StartPs  int64           `json:"start_ps"`
	EndPs    int64           `json:"end_ps"`
	TotalPs  int64           `json:"total_ps"`
	Stages   []tailStageJSON `json:"stages"`
	Context  []ContextSample `json:"context,omitempty"`
}

type attribJSON struct {
	Scopes     []scopeJSON `json:"scopes"`
	Tail       []tailJSON  `json:"tail"`
	Violations uint64      `json:"violations"`
	Open       int         `json:"open"`
}

// WriteJSON writes the full attribution state — blame profiles, tail
// exchange, conservation counters — as one indented JSON object.
func (c *Collector) WriteJSON(w io.Writer) error {
	if c == nil {
		return fmt.Errorf("attrib: nil collector")
	}
	out := attribJSON{
		Scopes:     make([]scopeJSON, 0, len(c.scopes)),
		Tail:       make([]tailJSON, 0, len(c.tail)),
		Violations: c.violations,
		Open:       len(c.inflight),
	}
	for _, scope := range sortedKeys(c.scopes) {
		sa := c.scopes[scope]
		sj := scopeJSON{
			Scope: scope, Messages: sa.messages, Attempts: sa.attempts, Retried: sa.retried,
			TotalPs:    int64(sa.totalSum),
			TotalP50Ns: sa.total.Quantile(0.50),
			TotalP99Ns: sa.total.Quantile(0.99),
			TotalP999:  sa.total.Quantile(0.999),
			Statuses:   make([]statusJSON, 0, len(sa.statuses)),
			Stages:     make([]stageJSON, 0, len(sa.stages)),
		}
		for _, st := range sortedKeys(sa.statuses) {
			sj.Statuses = append(sj.Statuses, statusJSON{Status: st, Count: sa.statuses[st]})
		}
		for _, name := range orderedStages(sa) {
			g := sa.stages[name]
			sj.Stages = append(sj.Stages, stageJSON{
				Stage: name, Count: g.count,
				DurPs: int64(g.durSum), WaitPs: int64(g.waitSum),
				WaitP50Ns: g.wait.Quantile(0.50), WaitP99Ns: g.wait.Quantile(0.99), WaitP999Ns: g.wait.Quantile(0.999),
				SvcP50Ns: g.service.Quantile(0.50), SvcP99Ns: g.service.Quantile(0.99), SvcP999Ns: g.service.Quantile(0.999),
			})
		}
		out.Scopes = append(out.Scopes, sj)
	}
	for i := range c.tail {
		e := &c.tail[i]
		tj := tailJSON{
			Node: e.Node, ID: e.ID, Scope: e.Scope, Status: e.Status, Attempts: e.Attempts,
			StartPs: int64(e.Start), EndPs: int64(e.End), TotalPs: int64(e.Total),
			Stages:  make([]tailStageJSON, 0, len(e.Stages)),
			Context: e.Context,
		}
		for _, s := range e.Stages {
			tj.Stages = append(tj.Stages, tailStageJSON{
				Stage: s.Stage, Attempt: s.Attempt, DurPs: int64(s.Dur), WaitPs: int64(s.Wait),
			})
		}
		out.Tail = append(out.Tail, tj)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
