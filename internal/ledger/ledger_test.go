package ledger

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"rvma/internal/sim"
)

// driveModel runs a small deterministic model: chained events across two
// tagged components plus a daemon rider, returning the engine.
func driveModel(t *testing.T, rec *Recorder, seed uint64, events int, daemons bool) *sim.Engine {
	t.Helper()
	eng := sim.NewEngine(seed)
	a := eng.Tag("alpha")
	b := eng.Tag("beta")
	if rec != nil {
		rec.Attach(eng)
	}
	var step func(i int)
	step = func(i int) {
		if i >= events {
			return
		}
		next := a
		if i%3 == 0 {
			next = b
		}
		next.ScheduleP(sim.Time(1+eng.RNG().Intn(5))*sim.Nanosecond, i%2, func() { step(i + 1) })
	}
	if daemons {
		var tick func()
		tick = func() { eng.ScheduleDaemonP(sim.Nanosecond, -1, tick) }
		tick()
	}
	eng.Schedule(0, func() { step(0) })
	eng.Run()
	return eng
}

func TestRecorderDeterministicChain(t *testing.T) {
	r1 := NewRecorder(Options{EpochEvents: 16})
	driveModel(t, r1, 7, 100, false)
	l1 := r1.Finalize()

	r2 := NewRecorder(Options{EpochEvents: 16})
	driveModel(t, r2, 7, 100, false)
	l2 := r2.Finalize()

	if l1.ChainHead != l2.ChainHead {
		t.Fatalf("same seed produced different chain heads: %s vs %s", l1.ChainHead, l2.ChainHead)
	}
	if l1.Events != l2.Events || l1.Events == 0 {
		t.Fatalf("event counts: %d vs %d", l1.Events, l2.Events)
	}
	d := Compare(l1, l2)
	if !d.Identical {
		t.Fatalf("identical runs reported divergent: %+v", d)
	}
}

func TestDaemonsInvisibleToLedger(t *testing.T) {
	r1 := NewRecorder(Options{EpochEvents: 16})
	driveModel(t, r1, 7, 100, false)
	r2 := NewRecorder(Options{EpochEvents: 16})
	driveModel(t, r2, 7, 100, true)
	l1, l2 := r1.Finalize(), r2.Finalize()
	if l1.ChainHead != l2.ChainHead {
		t.Fatalf("daemon riders changed the chain head: %s vs %s", l1.ChainHead, l2.ChainHead)
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	r1 := NewRecorder(Options{EpochEvents: 16})
	driveModel(t, r1, 7, 200, false)
	r2 := NewRecorder(Options{EpochEvents: 16})
	driveModel(t, r2, 8, 200, false)
	l1, l2 := r1.Finalize(), r2.Finalize()
	d := Compare(l1, l2)
	if d.Identical {
		t.Fatal("different seeds reported identical")
	}
	if !d.Comparable {
		t.Fatalf("expected comparable diff, got %+v", d)
	}
}

// TestEpochBinarySearchLocalization forces a divergence at a known pop and
// checks Compare finds exactly the containing epoch and CompareWindows the
// exact pop and seq.
func TestEpochBinarySearchLocalization(t *testing.T) {
	const epoch = 8
	const total = 100
	const divergeAt = 57 // pop index where run B goes off-script

	run := func(perturb bool, winFrom, winTo uint64) *Ledger {
		rec := NewRecorder(Options{EpochEvents: epoch})
		rec.SetWindow(winFrom, winTo)
		eng := sim.NewEngine(1)
		tag := eng.Tag("comp")
		var step func(i int)
		step = func(i int) {
			if i >= total {
				return
			}
			d := sim.Nanosecond
			if perturb && i == divergeAt {
				d = 2 * sim.Nanosecond // timestamp shifts from this pop on
			}
			tag.Schedule(d, func() { step(i + 1) })
		}
		rec.Attach(eng)
		eng.Schedule(0, func() { step(0) })
		eng.Run()
		return rec.Finalize()
	}

	la := run(false, 0, 0)
	lb := run(true, 0, 0)
	d := Compare(la, lb)
	if d.Identical {
		t.Fatal("perturbed run reported identical")
	}
	// Pop divergeAt+1 carries the shifted timestamp (the perturbed delay is
	// scheduled BY pop divergeAt); it lives in epoch (divergeAt+1)/epoch.
	wantEpoch := (divergeAt + 1) / epoch
	if d.FirstDivergentEpoch != wantEpoch {
		t.Fatalf("first divergent epoch = %d, want %d (reason %q)", d.FirstDivergentEpoch, wantEpoch, d.Reason)
	}
	if d.FromPop > divergeAt+1 || d.ToPop <= divergeAt+1 {
		t.Fatalf("window [%d,%d) does not cover divergent pop %d", d.FromPop, d.ToPop, divergeAt+1)
	}

	// Replay both runs with a window over the divergent epoch.
	wa := run(false, d.FromPop, d.ToPop)
	wb := run(true, d.FromPop, d.ToPop)
	div, err := CompareWindows(wa.Window, wb.Window)
	if err != nil {
		t.Fatal(err)
	}
	if div == nil {
		t.Fatal("window comparison found no divergence")
	}
	if div.Pop != divergeAt+1 {
		t.Fatalf("window pinned pop %d, want %d", div.Pop, divergeAt+1)
	}
	if div.A == nil || div.B == nil || div.A.TimePS == div.B.TimePS {
		t.Fatalf("expected differing timestamps at divergence, got %+v", div)
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	rec := NewRecorder(Options{EpochEvents: 16, Run: &RunSpec{Motif: "sweep3d", Transport: "rvma", Seed: 7}})
	rec.SetWindow(0, 4)
	driveModel(t, rec, 7, 50, false)
	l := rec.Finalize()

	path := filepath.Join(t.TempDir(), "run.ledger.json")
	if err := l.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.ChainHead != l.ChainHead || got.Events != l.Events {
		t.Fatalf("round trip changed ledger: %+v vs %+v", got, l)
	}
	if got.Run == nil || got.Run.Motif != "sweep3d" {
		t.Fatalf("run spec lost in round trip: %+v", got.Run)
	}
	if got.Window == nil || len(got.Window.Records) != 4 {
		t.Fatalf("window lost in round trip: %+v", got.Window)
	}
	if d := Compare(l, got); !d.Identical {
		t.Fatalf("round trip not identical: %+v", d)
	}
}

func TestLabelsRecorded(t *testing.T) {
	rec := NewRecorder(Options{EpochEvents: 16})
	driveModel(t, rec, 7, 20, false)
	l := rec.Finalize()
	joined := strings.Join(l.Labels, ",")
	if !strings.Contains(joined, "alpha") || !strings.Contains(joined, "beta") {
		t.Fatalf("labels table missing components: %v", l.Labels)
	}
}

func TestEpochSizeMismatchNotComparable(t *testing.T) {
	r1 := NewRecorder(Options{EpochEvents: 16})
	driveModel(t, r1, 7, 50, false)
	r2 := NewRecorder(Options{EpochEvents: 32})
	driveModel(t, r2, 7, 50, false)
	d := Compare(r1.Finalize(), r2.Finalize())
	if d.Comparable || d.Identical {
		t.Fatalf("mismatched epoch sizes must be incomparable: %+v", d)
	}
}

func TestTruncatedRunDivergesAtTail(t *testing.T) {
	r1 := NewRecorder(Options{EpochEvents: 8})
	driveModel(t, r1, 7, 100, false)
	r2 := NewRecorder(Options{EpochEvents: 8})
	driveModel(t, r2, 7, 60, false)
	l1, l2 := r1.Finalize(), r2.Finalize()
	d := Compare(l1, l2)
	if d.Identical {
		t.Fatal("truncated run reported identical")
	}
	// The shorter run's epochs are a prefix except its partial tail epoch,
	// whose digest differs from the full run's same-index epoch; either
	// way FromPop must be at or before the shorter run's event count.
	if d.FromPop > l2.Events {
		t.Fatalf("FromPop %d past shorter run end %d", d.FromPop, l2.Events)
	}
}

func TestProfileReport(t *testing.T) {
	rec := NewRecorder(Options{EpochEvents: 16, Profile: true})
	driveModel(t, rec, 7, 100, false)
	rec.Finalize()
	rep := rec.Profile()
	if rep == nil {
		t.Fatal("profile enabled but report nil")
	}
	if rep.TotalEvents == 0 {
		t.Fatal("profile counted no events")
	}
	var share float64
	seen := map[string]bool{}
	for _, c := range rep.Components {
		share += c.Share
		seen[c.Label] = true
	}
	if !seen["alpha"] || !seen["beta"] {
		t.Fatalf("profile missing components: %+v", rep.Components)
	}
	if rep.TotalHostNS > 0 && (share < 0.99 || share > 1.01) {
		t.Fatalf("shares sum to %f, want ~1", share)
	}
	var buf bytes.Buffer
	if err := rep.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "label,events,host_ns") {
		t.Fatalf("unexpected CSV header: %q", buf.String())
	}
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestProfileDoesNotChangeChain(t *testing.T) {
	r1 := NewRecorder(Options{EpochEvents: 16})
	driveModel(t, r1, 7, 100, false)
	r2 := NewRecorder(Options{EpochEvents: 16, Profile: true})
	driveModel(t, r2, 7, 100, false)
	if a, b := r1.Finalize().ChainHead, r2.Finalize().ChainHead; a != b {
		t.Fatalf("profiling changed the chain head: %s vs %s", a, b)
	}
}

// TestObserverOnOffByteIdentical checks the engine's own outputs are not
// perturbed by attaching a recorder.
func TestObserverOnOffByteIdentical(t *testing.T) {
	e1 := driveModel(t, nil, 7, 100, false)
	rec := NewRecorder(Options{})
	e2 := driveModel(t, rec, 7, 100, false)
	if e1.Now() != e2.Now() || e1.EventsExecuted() != e2.EventsExecuted() {
		t.Fatalf("observer changed run results: now %v vs %v, events %d vs %d",
			e1.Now(), e2.Now(), e1.EventsExecuted(), e2.EventsExecuted())
	}
	if rec.Events() != e2.EventsExecuted() {
		t.Fatalf("recorder saw %d pops, engine executed %d", rec.Events(), e2.EventsExecuted())
	}
}
