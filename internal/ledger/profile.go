package ledger

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"rvma/internal/sim"
)

// profiler accumulates per-label host time and event counts. Host time is
// measured as the delta between consecutive observer calls and attributed
// to the label of the *previous* pop — that interval covers the previous
// event's callback plus the engine's heap work for it, which is exactly
// the "where does host time go" question a shard planner asks. Nothing
// here ever feeds the ledger digests: the profile is a separate report,
// nondeterministic by nature, and excluding it by construction is what
// keeps ledger files comparable across machines.
type profiler struct {
	started   bool
	lastLabel sim.Label
	last      time.Time
	hostNS    []int64
	events    []uint64
}

func newProfiler() *profiler { return &profiler{} }

// observe charges the time since the previous pop to that pop's label.
func (p *profiler) observe(label sim.Label) {
	//rvmalint:allow wallclock -- host-time profile: measures real executor time per component; never enters sim state or ledger digests
	now := time.Now()
	if idx := int(label); idx >= len(p.events) {
		p.grow(idx + 1)
	}
	p.events[label]++
	if p.started {
		p.hostNS[p.lastLabel] += now.Sub(p.last).Nanoseconds()
	}
	p.started = true
	p.last = now
	p.lastLabel = label
}

// grow extends the per-label accumulators to n entries.
func (p *profiler) grow(n int) {
	for len(p.events) < n {
		p.events = append(p.events, 0)
		p.hostNS = append(p.hostNS, 0)
	}
}

// ProfileEntry is one component's share of the run's host time.
type ProfileEntry struct {
	Label        string  `json:"label"`
	Events       uint64  `json:"events"`
	HostNS       int64   `json:"host_ns"`
	EventsPerSec float64 `json:"events_per_sec"`
	Share        float64 `json:"share"`
}

// ProfileReport is the shard-planner report: per-component host time and
// event volume, sorted by host time descending so the first rows are the
// components worth sharding first.
type ProfileReport struct {
	TotalEvents uint64         `json:"total_events"`
	TotalHostNS int64          `json:"total_host_ns"`
	Components  []ProfileEntry `json:"components"`
}

// report snapshots the accumulators into a sorted report.
func (p *profiler) report(labels []string) *ProfileReport {
	rep := &ProfileReport{}
	var totalNS int64
	var totalEv uint64
	for i := range p.events {
		totalNS += p.hostNS[i]
		totalEv += p.events[i]
	}
	rep.TotalEvents = totalEv
	rep.TotalHostNS = totalNS
	for i := range p.events {
		if p.events[i] == 0 && p.hostNS[i] == 0 {
			continue
		}
		e := ProfileEntry{
			Label:  labelName(labels, sim.Label(i)),
			Events: p.events[i],
			HostNS: p.hostNS[i],
		}
		if e.HostNS > 0 {
			e.EventsPerSec = float64(e.Events) / (float64(e.HostNS) / 1e9)
		}
		if totalNS > 0 {
			e.Share = float64(e.HostNS) / float64(totalNS)
		}
		rep.Components = append(rep.Components, e)
	}
	sort.Slice(rep.Components, func(a, b int) bool {
		ca, cb := rep.Components[a], rep.Components[b]
		if ca.HostNS != cb.HostNS {
			return ca.HostNS > cb.HostNS
		}
		if ca.Events != cb.Events {
			return ca.Events > cb.Events
		}
		return ca.Label < cb.Label
	})
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r *ProfileReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// WriteCSV writes the report as a CSV table (one row per component).
func (r *ProfileReport) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "label,events,host_ns,events_per_sec,share"); err != nil {
		return err
	}
	for _, e := range r.Components {
		if _, err := fmt.Fprintf(w, "%s,%d,%d,%.1f,%.4f\n",
			e.Label, e.Events, e.HostNS, e.EventsPerSec, e.Share); err != nil {
			return err
		}
	}
	return nil
}
