package ledger

import (
	"fmt"
	"sort"
)

// Diff is the result of comparing two ledgers. When the runs diverged it
// carries the first divergent epoch and the pop window a replay should
// capture at full resolution to pin the exact event.
type Diff struct {
	Identical bool   `json:"identical"`
	Reason    string `json:"reason,omitempty"`
	// Comparable is false when the ledgers cannot be meaningfully diffed
	// (different epoch sizes or format versions).
	Comparable bool `json:"comparable"`
	// FirstDivergentEpoch is the index of the first epoch whose digest
	// differs; -1 when identical or not localizable.
	FirstDivergentEpoch int `json:"first_divergent_epoch"`
	// FromPop/ToPop bound the replay window covering the divergence.
	FromPop uint64 `json:"from_pop"`
	ToPop   uint64 `json:"to_pop"`
}

// Compare diffs two ledgers. The first divergent epoch is found by binary
// search over the chain values: Chain at epoch i folds every digest up to
// i, so equality at i certifies the whole prefix and the search is
// O(log epochs).
func Compare(a, b *Ledger) Diff {
	if a.Mode != b.Mode {
		return Diff{
			Reason:              fmt.Sprintf("ledger modes differ (%q vs %q); raw and canonical chains hash different record shapes and are never comparable", modeName(a.Mode), modeName(b.Mode)),
			FirstDivergentEpoch: -1,
		}
	}
	if a.EpochEvents != b.EpochEvents {
		return Diff{
			Reason:              fmt.Sprintf("epoch sizes differ (%d vs %d); ledgers not comparable", a.EpochEvents, b.EpochEvents),
			FirstDivergentEpoch: -1,
		}
	}
	if a.ChainHead == b.ChainHead && a.Events == b.Events {
		return Diff{Identical: true, Comparable: true, FirstDivergentEpoch: -1}
	}
	shared := len(a.Epochs)
	if len(b.Epochs) < shared {
		shared = len(b.Epochs)
	}
	// First index in [0, shared) where the chains disagree, if any.
	idx := sort.Search(shared, func(i int) bool {
		return a.Epochs[i].Chain != b.Epochs[i].Chain
	})
	if idx < shared {
		ep := a.Epochs[idx]
		return Diff{
			Comparable:          true,
			Reason:              fmt.Sprintf("epoch %d digest mismatch (%s vs %s)", idx, a.Epochs[idx].Digest, b.Epochs[idx].Digest),
			FirstDivergentEpoch: idx,
			FromPop:             ep.FirstPop,
			ToPop:               ep.FirstPop + a.EpochEvents,
		}
	}
	// All shared epochs agree: one run simply popped more events. The
	// divergence is the first pop past the shorter run's end.
	short := a.Events
	if b.Events < short {
		short = b.Events
	}
	return Diff{
		Comparable:          true,
		Reason:              fmt.Sprintf("event counts differ (%d vs %d); runs agree through pop %d", a.Events, b.Events, short),
		FirstDivergentEpoch: shared,
		FromPop:             short,
		ToPop:               short + a.EpochEvents,
	}
}

// modeName renders a ledger mode for diagnostics ("" is the raw chain).
func modeName(m string) string {
	if m == "" {
		return "raw"
	}
	return m
}

// WindowDivergence pins a divergence to one pop inside compared windows.
type WindowDivergence struct {
	// Pop is the first divergent pop index (execution order).
	Pop uint64 `json:"pop"`
	// SeqA/SeqB are the event sequence numbers the two runs executed at
	// that pop; -1 means the run had already drained.
	SeqA int64 `json:"seq_a"`
	SeqB int64 `json:"seq_b"`
	// A and B are the full records (nil when that run had drained).
	A *WindowRecord `json:"a,omitempty"`
	B *WindowRecord `json:"b,omitempty"`
}

// CompareWindows walks two full-resolution windows over the same pop range
// and returns the first divergent pop, or nil when the windows agree. Both
// windows must have been captured with the same FromPop.
func CompareWindows(a, b *Window) (*WindowDivergence, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("ledger: missing window capture")
	}
	if a.FromPop != b.FromPop {
		return nil, fmt.Errorf("ledger: window origins differ (%d vs %d)", a.FromPop, b.FromPop)
	}
	n := len(a.Records)
	if len(b.Records) < n {
		n = len(b.Records)
	}
	for i := 0; i < n; i++ {
		ra, rb := a.Records[i], b.Records[i]
		if ra != rb {
			return &WindowDivergence{
				Pop:  ra.Pop,
				SeqA: int64(ra.Seq),
				SeqB: int64(rb.Seq),
				A:    &ra,
				B:    &rb,
			}, nil
		}
	}
	if len(a.Records) != len(b.Records) {
		d := &WindowDivergence{SeqA: -1, SeqB: -1}
		if len(a.Records) > n {
			r := a.Records[n]
			d.Pop, d.SeqA, d.A = r.Pop, int64(r.Seq), &r
		} else {
			r := b.Records[n]
			d.Pop, d.SeqB, d.B = r.Pop, int64(r.Seq), &r
		}
		return d, nil
	}
	return nil, nil
}
