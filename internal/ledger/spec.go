package ledger

// RunSpec captures everything needed to rebuild and replay the run a
// ledger was recorded from — strings and numbers only, so it survives a
// round trip through the ledger file. The harness fills it when writing
// per-cell ledgers; cmd/simdiff hands it back to the harness's replay
// entry point when a divergence needs a full-resolution window.
type RunSpec struct {
	// Motif is the workload name: "sweep3d", "halo3d" or "incast".
	Motif string `json:"motif"`
	// Transport is "rvma" or "rdma".
	Transport string `json:"transport"`
	// Topology is the topology kind ("dragonfly", "fattree", ...).
	Topology string `json:"topology"`
	// Routing is the routing mode ("static", "adaptive", "valiant").
	Routing string `json:"routing"`
	// Network is the display name of the network config ("dragonfly/adaptive").
	Network string `json:"network"`
	// Nodes is the requested node count (topology rounding may exceed it,
	// exactly as in the original run).
	Nodes int `json:"nodes"`
	// Gbps is the link speed.
	Gbps float64 `json:"gbps"`
	// Seed is the engine RNG seed.
	Seed uint64 `json:"seed"`
	// Spans records whether a spans-enabled metrics registry was attached.
	// Span instrumentation schedules extra model events (e.g. the placed-
	// stage marker after a payload DMA), so a faithful replay must attach
	// the same instrumentation.
	Spans bool `json:"spans,omitempty"`
	// Drop is the fault-injection drop rate (0 = lossless).
	Drop float64 `json:"drop,omitempty"`
	// Recover enables the recovery layer.
	Recover bool `json:"recover,omitempty"`
	// RetryBudget overrides the recovery retry budget when > 0.
	RetryBudget int `json:"retry_budget,omitempty"`
	// KV parameters (set only when Motif is "kv"): the resolved workload
	// knobs of the KV dataplane cell. The harness embeds the values the
	// run actually used — not the CLI defaults — so a replay rebuilds the
	// identical proxy plans. KVSkew and KVGapNs are meaningful at zero
	// (uniform keys / no pacing) and are always applied on replay when
	// Motif is "kv"; the remaining fields fall back to the motif defaults
	// when zero.
	KVSkew    float64 `json:"kv_skew,omitempty"`
	KVGapNs   float64 `json:"kv_gap_ns,omitempty"`
	KVOps     int     `json:"kv_ops,omitempty"`
	KVServers int     `json:"kv_servers,omitempty"`
	KVClients int     `json:"kv_clients,omitempty"`
	KVKeys    int     `json:"kv_keys,omitempty"`
	KVWindow  int     `json:"kv_window,omitempty"`
	// Shards is the sharded-engine partition count the run used; 0 means
	// the legacy single-heap path. Any value >= 1 selects the sharded cell
	// pipeline (canonical ledger mode, spans disabled), so a replay must
	// match it for digests to line up.
	Shards int `json:"shards,omitempty"`
	// UnsafeLookaheadScale, when != 0 and != 1, records that the run
	// deliberately broke conservative synchronization by scaling the shard
	// lookahead (the CI divergence canary). Replays apply the same scale so
	// the broken run reproduces and simdiff can pin its first divergent
	// event.
	UnsafeLookaheadScale float64 `json:"unsafe_lookahead_scale,omitempty"`
}
