package ledger

import (
	"sort"

	"rvma/internal/sim"
)

// Canonical-mode ledger: a hash chain whose value is invariant under how
// the simulation was partitioned across shards.
//
// The raw Recorder hashes (seq, time, priority, label-id) in single-heap
// pop order. Neither seq nor label-id survives sharding — each shard
// engine assigns its own sequence numbers and interns its own label table
// — and the global pop order itself is only defined up to the event
// ordering the heaps agree on. What *is* partition-invariant is the
// multiset of (time, priority, label-name) tuples per timestamp, plus the
// total order (time, then priority) that the engine guarantees between
// them: the fabric stamps every cross-component event with a globally
// unique priority, and same-(time, priority) ties are node-local, so
// sorting each timestamp's records by (priority, label-hash) reconstructs
// one canonical global order from any sharding. Records with identical
// tuples are interchangeable under the fold, so even their order is
// irrelevant. The chain folds (time, priority, label-name-hash) per
// record in that canonical order; epochs close every EpochEvents records
// at deterministic canonical pop indices.
//
// A canonical ledger from a 1-shard run and an 8-shard run of the same
// model are byte-identical — that equality is the artifact the sharded
// engine's determinism contract is checked against.

// canonRec is one canonical ledger record.
type canonRec struct {
	at   sim.Time
	pri  int
	lh   uint64 // FNV-1a hash of the label *name* (ids are per-engine)
	name string // resolved name, for window capture and label union
}

// canonLess is the canonical order: time, then priority, then label hash
// (a tie-break that only matters for distinct same-priority labels; fully
// identical tuples fold to the same chain in any order).
func canonLess(a, b *canonRec) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.lh < b.lh
}

// hashName is FNV-1a over the label name.
func hashName(s string) uint64 {
	h := fnvOffset
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// labelCache resolves a shard engine's label ids to (hash, name) once.
type labelCache struct {
	eng     *sim.Engine
	entries []canonRec // at/pri unused; lh and name per label id
}

func (c *labelCache) resolve(l sim.Label) (uint64, string) {
	for int(l) >= len(c.entries) {
		name := c.eng.LabelName(sim.Label(len(c.entries)))
		c.entries = append(c.entries, canonRec{lh: hashName(name), name: name})
	}
	e := &c.entries[l]
	return e.lh, e.name
}

// CanonicalRecorder accumulates the canonical chain. Use Attach for a
// single-heap engine (records stream through a per-timestamp batch) or
// AttachGroup for a ShardGroup (per-shard buffers, merged and folded at
// every round barrier). Either attachment produces the same ledger for
// the same model.
type CanonicalRecorder struct {
	opts Options

	pops          uint64
	cur           uint64
	chain         uint64
	epochStartPop uint64
	epochs        []epochState

	winFrom uint64
	winTo   uint64
	winRecs []WindowRecord

	labels map[string]bool // union of label names across shards

	// Solo mode: one engine, per-timestamp batch.
	eng   *sim.Engine
	cache labelCache
	batch []canonRec
	prof  *profiler

	// Group mode: per-shard observers, folded at barriers.
	group  *sim.ShardGroup
	shards []*canonShardObs
	merged []canonRec // barrier merge scratch
}

// NewCanonicalRecorder returns a canonical recorder with the given
// options.
func NewCanonicalRecorder(opts Options) *CanonicalRecorder {
	if opts.EpochEvents == 0 {
		opts.EpochEvents = DefaultEpochEvents
	}
	return &CanonicalRecorder{
		opts:   opts,
		cur:    fnvOffset,
		chain:  fnvOffset,
		labels: map[string]bool{"-": true},
	}
}

// SetWindow arms full-resolution capture for canonical pop indices in
// [fromPop, toPop). Call before running.
func (r *CanonicalRecorder) SetWindow(fromPop, toPop uint64) {
	r.winFrom, r.winTo = fromPop, toPop
}

// Attach registers the recorder on a single-heap engine. The resulting
// ledger is identical to what AttachGroup yields for the same model at
// any shard count.
func (r *CanonicalRecorder) Attach(e *sim.Engine) {
	r.eng = e
	r.cache = labelCache{eng: e}
	if r.opts.Profile {
		r.prof = newProfiler()
	}
	e.SetExecObserver(r)
}

// ObserveExec implements sim.ExecObserver for solo mode: records buffer
// in a per-timestamp batch (model time never goes backward, so a new
// timestamp seals the previous batch for canonical sorting and folding).
func (r *CanonicalRecorder) ObserveExec(seq uint64, at sim.Time, priority int, label sim.Label) {
	if len(r.batch) > 0 && r.batch[0].at != at {
		r.flushBatch()
	}
	lh, name := r.cache.resolve(label)
	r.batch = append(r.batch, canonRec{at: at, pri: priority, lh: lh, name: name})
	if r.prof != nil {
		r.prof.observe(label)
	}
}

// flushBatch folds the pending timestamp's records in canonical order.
func (r *CanonicalRecorder) flushBatch() {
	b := r.batch
	sort.Slice(b, func(i, j int) bool { return canonLess(&b[i], &b[j]) })
	for i := range b {
		r.foldRec(&b[i])
	}
	r.batch = r.batch[:0]
}

// foldRec folds one record in canonical order into the chain, advancing
// the canonical pop index, epoch state, and window capture.
func (r *CanonicalRecorder) foldRec(rec *canonRec) {
	h := r.cur
	h = mix64(h, uint64(rec.at))
	h = mix64(h, uint64(int64(rec.pri)))
	h = mix64(h, rec.lh)
	r.cur = h

	pop := r.pops
	r.pops++
	r.labels[rec.name] = true
	if pop < r.winTo && pop >= r.winFrom {
		r.winRecs = append(r.winRecs, WindowRecord{
			Pop: pop, Seq: pop, TimePS: int64(rec.at), Pri: rec.pri, Label: rec.name,
		})
	}
	if r.pops-r.epochStartPop == r.opts.EpochEvents {
		r.closeEpoch()
	}
}

// closeEpoch seals the open epoch. Canonical mode has no engine seqs, so
// FirstSeq/LastSeq carry canonical pop indices.
func (r *CanonicalRecorder) closeEpoch() {
	digest := r.cur
	r.chain = mix64(r.chain, digest)
	r.epochs = append(r.epochs, epochState{
		events:   r.pops - r.epochStartPop,
		firstPop: r.epochStartPop,
		firstSeq: r.epochStartPop,
		lastSeq:  r.pops - 1,
		digest:   digest,
		chain:    r.chain,
	})
	r.cur = fnvOffset
	r.epochStartPop = r.pops
}

// canonShardObs is one shard's wiretap: it buffers records during a round
// window (single writer: the shard's worker) and hands them to the parent
// at the barrier.
type canonShardObs struct {
	parent *CanonicalRecorder
	cache  labelCache
	recs   []canonRec
	prof   *profiler
}

func (o *canonShardObs) ObserveExec(seq uint64, at sim.Time, priority int, label sim.Label) {
	lh, name := o.cache.resolve(label)
	o.recs = append(o.recs, canonRec{at: at, pri: priority, lh: lh, name: name})
	if o.prof != nil {
		o.prof.observe(label)
	}
}

// AttachGroup registers per-shard observers on every shard engine and a
// barrier hook that merges and folds each round's records. Rounds
// partition model pops into disjoint time ranges (a round executes
// everything below its horizon; later events sort at or above it), so
// folding round by round yields the same canonical order as a global
// sort.
func (r *CanonicalRecorder) AttachGroup(g *sim.ShardGroup) {
	r.group = g
	r.shards = make([]*canonShardObs, g.Shards())
	for i := range r.shards {
		o := &canonShardObs{parent: r, cache: labelCache{eng: g.Shard(i)}}
		if r.opts.Profile {
			o.prof = newProfiler()
		}
		r.shards[i] = o
		g.Shard(i).SetExecObserver(o)
	}
	g.OnBarrier(r.foldRound)
}

// foldRound merges all shards' round buffers into canonical order and
// folds them. Runs at the barrier with every shard quiescent.
func (r *CanonicalRecorder) foldRound() {
	all := r.merged[:0]
	for _, o := range r.shards {
		all = append(all, o.recs...)
		o.recs = o.recs[:0]
	}
	if len(all) == 0 {
		r.merged = all
		return
	}
	sort.Slice(all, func(i, j int) bool { return canonLess(&all[i], &all[j]) })
	for i := range all {
		r.foldRec(&all[i])
	}
	r.merged = all
}

// Events returns the number of canonical records folded so far.
func (r *CanonicalRecorder) Events() uint64 { return r.pops }

// Finalize seals the partial batch and tail epoch and returns the
// serializable ledger, marked Mode "canonical". Labels are the sorted
// union of label names across all shards, so the table is independent of
// per-engine interning order.
func (r *CanonicalRecorder) Finalize() *Ledger {
	if len(r.batch) > 0 {
		r.flushBatch()
	}
	if r.pops > r.epochStartPop {
		r.closeEpoch()
	}
	names := make([]string, 0, len(r.labels))
	for n := range r.labels {
		names = append(names, n)
	}
	sort.Strings(names)
	l := &Ledger{
		Version:     Version,
		Mode:        ModeCanonical,
		EpochEvents: r.opts.EpochEvents,
		Events:      r.pops,
		ChainHead:   hex64(r.chain),
		Run:         r.opts.Run,
		Labels:      names,
	}
	switch {
	case r.group != nil:
		l.FinalTimePS = int64(r.group.Shard(0).Now())
	case r.eng != nil:
		l.FinalTimePS = int64(r.eng.Now())
	}
	l.Epochs = make([]Epoch, len(r.epochs))
	for i, e := range r.epochs {
		l.Epochs[i] = Epoch{
			Epoch:    i,
			Events:   e.events,
			FirstPop: e.firstPop,
			FirstSeq: e.firstSeq,
			LastSeq:  e.lastSeq,
			Digest:   hex64(e.digest),
			Chain:    hex64(e.chain),
		}
	}
	if r.winTo > 0 {
		l.Window = &Window{FromPop: r.winFrom, ToPop: r.winTo, Records: r.winRecs}
	}
	return l
}

// Profile returns the host-time profile, or nil when profiling was not
// enabled. In group mode, per-shard profiles are merged by label name —
// host time is additive across workers, and the merged report answers
// the same shard-planner question the solo report does.
func (r *CanonicalRecorder) Profile() *ProfileReport {
	if r.group != nil {
		var reps []*ProfileReport
		for i, o := range r.shards {
			if o.prof == nil {
				return nil
			}
			reps = append(reps, o.prof.report(r.group.Shard(i).Labels()))
		}
		return mergeProfiles(reps)
	}
	if r.prof == nil {
		return nil
	}
	labels := []string{"-"}
	if r.eng != nil {
		labels = r.eng.Labels()
	}
	return r.prof.report(labels)
}

// mergeProfiles sums per-component host time and events across shard
// reports by label name.
func mergeProfiles(reps []*ProfileReport) *ProfileReport {
	byName := map[string]*ProfileEntry{}
	out := &ProfileReport{}
	for _, rep := range reps {
		out.TotalEvents += rep.TotalEvents
		out.TotalHostNS += rep.TotalHostNS
		for _, e := range rep.Components {
			m := byName[e.Label]
			if m == nil {
				m = &ProfileEntry{Label: e.Label}
				byName[e.Label] = m
			}
			m.Events += e.Events
			m.HostNS += e.HostNS
		}
	}
	names := make([]string, 0, len(byName))
	for name := range byName {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := byName[name]
		if e.HostNS > 0 {
			e.EventsPerSec = float64(e.Events) / (float64(e.HostNS) / 1e9)
		}
		if out.TotalHostNS > 0 {
			e.Share = float64(e.HostNS) / float64(out.TotalHostNS)
		}
		out.Components = append(out.Components, *e)
	}
	sort.Slice(out.Components, func(a, b int) bool {
		ca, cb := out.Components[a], out.Components[b]
		if ca.HostNS != cb.HostNS {
			return ca.HostNS > cb.HostNS
		}
		if ca.Events != cb.Events {
			return ca.Events > cb.Events
		}
		return ca.Label < cb.Label
	})
	return out
}
