package ledger

import (
	"testing"

	"rvma/internal/sim"
)

// canonRelay builds a small cross-shard relay (unique negative priorities
// from per-node counters, per-node RNG substreams, node-local work) on
// either a single-heap engine (shards <= 0) or a ShardGroup, and runs it
// to completion with the given recorder attached first.
func canonRelay(seed uint64, nodes, shards, hops int, attach func(eng *sim.Engine, g *sim.ShardGroup)) {
	const lookahead = sim.Time(40)
	var (
		eng  *sim.Engine
		g    *sim.ShardGroup
		tags []sim.Tagged
	)
	if shards <= 0 {
		eng = sim.NewEngine(seed)
		tags = []sim.Tagged{eng.Tag("relay")}
	} else {
		g = sim.NewShardGroup(seed, shards, lookahead)
		tags = make([]sim.Tagged, shards)
		for i := range tags {
			tags[i] = g.Shard(i).Tag("relay")
		}
	}
	attach(eng, g)

	shardOf := func(node int) int {
		if g == nil {
			return 0
		}
		return node * shards / nodes
	}
	seq := make([]int, nodes)
	pri := func(node int) int {
		p := -(1 + seq[node]*nodes + node)
		seq[node]++
		return p
	}
	rngs := make([]*sim.RNG, nodes)
	for n := range rngs {
		rngs[n] = sim.NewRNG(sim.SeedFor(seed, "node", n))
	}
	var recv func(node, hop int)
	send := func(src, dst int, at sim.Time, hop int) {
		p := pri(src)
		fn := func() { recv(dst, hop) }
		if g == nil {
			tags[0].AtP(at, p, fn)
			return
		}
		g.Post(shardOf(src), shardOf(dst), at, p, tags[shardOf(dst)].Label(), fn)
	}
	recv = func(node, hop int) {
		tag := tags[shardOf(node)]
		now := tag.Now()
		tag.AtP(now+2, pri(node), func() {})
		if hop <= 0 {
			return
		}
		r := rngs[node]
		send(node, r.Intn(nodes), now+lookahead+sim.Time(r.Intn(3))*7, hop-1)
	}
	for n := 0; n < nodes; n++ {
		send(n, (n*5+1)%nodes, sim.Time(50+n), hops)
	}
	if g == nil {
		eng.Run()
	} else {
		g.Run()
	}
}

// TestCanonicalChainShardInvariant is the ledger half of the determinism
// contract: the canonical chain head, epoch layout, event count, final
// time, label table, and full-resolution window must be identical whether
// the model ran on one heap or any number of shards.
func TestCanonicalChainShardInvariant(t *testing.T) {
	run := func(shards int) *Ledger {
		r := NewCanonicalRecorder(Options{EpochEvents: 64})
		r.SetWindow(10, 40)
		canonRelay(7, 20, shards, 30, func(eng *sim.Engine, g *sim.ShardGroup) {
			if g != nil {
				r.AttachGroup(g)
			} else {
				r.Attach(eng)
			}
		})
		return r.Finalize()
	}
	ref := run(0)
	if ref.Events == 0 {
		t.Fatal("reference run folded no records")
	}
	if len(ref.Epochs) < 2 {
		t.Fatalf("want multiple epochs to compare, got %d", len(ref.Epochs))
	}
	if ref.Mode != ModeCanonical {
		t.Fatalf("mode = %q, want %q", ref.Mode, ModeCanonical)
	}
	for _, shards := range []int{1, 2, 4, 5} {
		got := run(shards)
		if got.ChainHead != ref.ChainHead {
			t.Errorf("shards=%d: chain head %s, reference %s", shards, got.ChainHead, ref.ChainHead)
		}
		if got.Events != ref.Events {
			t.Errorf("shards=%d: %d events, reference %d", shards, got.Events, ref.Events)
		}
		if got.FinalTimePS != ref.FinalTimePS {
			t.Errorf("shards=%d: final time %d, reference %d", shards, got.FinalTimePS, ref.FinalTimePS)
		}
		ga, _ := got.Marshal()
		ra, _ := ref.Marshal()
		if string(ga) != string(ra) {
			t.Errorf("shards=%d: serialized ledger differs from reference", shards)
		}
		d := Compare(got, ref)
		if !d.Identical {
			t.Errorf("shards=%d: Compare reports divergence: %s", shards, d.Reason)
		}
	}
}

// TestCanonicalSeedSensitivity guards against a vacuous chain: different
// seeds must yield different chain heads.
func TestCanonicalSeedSensitivity(t *testing.T) {
	run := func(seed uint64) string {
		r := NewCanonicalRecorder(Options{})
		canonRelay(seed, 12, 3, 15, func(_ *sim.Engine, g *sim.ShardGroup) { r.AttachGroup(g) })
		return r.Finalize().ChainHead
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced the same canonical chain head")
	}
}

// TestCompareRefusesModeMismatch: a raw and a canonical ledger must never
// be diffed as if comparable.
func TestCompareRefusesModeMismatch(t *testing.T) {
	raw := NewRecorder(Options{}).Finalize()
	canon := NewCanonicalRecorder(Options{}).Finalize()
	d := Compare(raw, canon)
	if d.Identical || d.Comparable {
		t.Fatalf("raw vs canonical compared as %+v; want incomparable", d)
	}
}
