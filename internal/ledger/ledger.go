// Package ledger records a deterministic execution ledger: a hash chain
// over every model event the engine pops, folded into fixed-size epoch
// digests plus a final chain head.
//
// The ledger is the repo's instrument for the determinism contract that
// ROADMAP item 1 (sharded, lookahead-parallel engines) stands on: two runs
// that should be identical must pop the same events — same sequence
// numbers, same timestamps, same priorities, same component labels — in
// the same order. Comparing final tables only says *that* two runs
// diverged; comparing ledgers says *where*: epoch digests localize the
// first divergence to a 64k-event span in O(log n) chain comparisons, and
// a replay with a full-resolution window pins it to the exact pop.
//
// What is hashed: (seq, sim-time, priority, label-id) of every non-daemon
// pop, in execution order. What is deliberately not hashed: host
// wall-clock time (nondeterministic by nature — the per-component profile
// reports it separately), daemon pops (telemetry riders must not perturb
// the ledger, so sampling on/off yields the same chain), and event
// payloads (callbacks are closures; their identity is already pinned by
// seq and scheduling order).
package ledger

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"rvma/internal/sim"
)

// DefaultEpochEvents is the number of pops folded into one epoch digest.
// 64k events keeps the ledger file small (one record per epoch) while a
// divergence window stays cheap to replay at full resolution.
const DefaultEpochEvents = 65536

// Version identifies the ledger file format.
const Version = 1

// ModeCanonical marks a ledger whose chain is partition-invariant: records
// are (time, priority, label-name-hash) tuples folded in canonical
// (time, priority) order rather than raw engine pop order (see
// canonical.go). An empty Mode is the original raw chain. The two modes
// hash different record shapes, so their digests are never comparable.
const ModeCanonical = "canonical"

// FNV-1a 64-bit parameters. The chain needs speed and avalanche, not
// cryptographic strength: a divergent pop flips its epoch digest with
// probability 1 - 2^-64, which is all forensics requires.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// mix64 folds the 8 bytes of v into h, FNV-1a style (little-endian byte
// order). It is branch-free and allocation-free: the observer runs it four
// times per pop on the engine's hot path.
func mix64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= fnvPrime
		v >>= 8
	}
	return h
}

// Options configures a Recorder.
type Options struct {
	// EpochEvents is the epoch size in pops; 0 means DefaultEpochEvents.
	EpochEvents uint64
	// Profile enables the per-component host-time profile. It reads the
	// host clock once per pop, so it costs real time; the measurements
	// never enter the ledger digests, so enabling it cannot change the
	// chain head.
	Profile bool
	// Run, when non-nil, is embedded in the ledger file so a diff tool can
	// rebuild and replay the run.
	Run *RunSpec
}

// epochState is one closed epoch, pre-serialization.
type epochState struct {
	events   uint64
	firstPop uint64
	firstSeq uint64
	lastSeq  uint64
	digest   uint64
	chain    uint64
}

// windowRec is one full-resolution pop record captured inside the window.
type windowRec struct {
	pop   uint64
	seq   uint64
	at    sim.Time
	pri   int
	label sim.Label
}

// Recorder implements sim.ExecObserver: it hash-chains every model pop
// into epochs and optionally captures a full-resolution window and a
// host-time profile. Attach it with Attach (or sim.Engine.SetExecObserver
// directly), run the model, then Finalize.
type Recorder struct {
	eng  *sim.Engine
	opts Options

	pops          uint64 // model pops observed so far
	cur           uint64 // running FNV state of the open epoch
	chain         uint64 // chain value after the last closed epoch
	epochStartPop uint64
	firstSeq      uint64
	lastSeq       uint64
	epochs        []epochState

	// Window [winFrom, winTo) in pop indices; winTo == 0 disables capture.
	winFrom uint64
	winTo   uint64
	winRecs []windowRec

	prof *profiler
}

// NewRecorder returns a recorder with the given options.
func NewRecorder(opts Options) *Recorder {
	if opts.EpochEvents == 0 {
		opts.EpochEvents = DefaultEpochEvents
	}
	r := &Recorder{opts: opts, cur: fnvOffset, chain: fnvOffset}
	if opts.Profile {
		r.prof = newProfiler()
	}
	return r
}

// Attach registers the recorder as e's exec observer and remembers the
// engine so Finalize can snapshot its label table and final clock.
func (r *Recorder) Attach(e *sim.Engine) {
	r.eng = e
	e.SetExecObserver(r)
}

// SetWindow arms full-resolution capture for pops in [fromPop, toPop).
// Pop indices count model pops in execution order, starting at zero —
// the same coordinate epoch records use (FirstPop). Call before running.
func (r *Recorder) SetWindow(fromPop, toPop uint64) {
	r.winFrom, r.winTo = fromPop, toPop
}

// ObserveExec implements sim.ExecObserver. It must stay allocation-free on
// the steady path: per pop it runs four FNV folds and two compares; the
// appends below are amortized (one epoch record per 64k pops) or bounded
// (window capture, profile label table).
func (r *Recorder) ObserveExec(seq uint64, at sim.Time, priority int, label sim.Label) {
	h := r.cur
	h = mix64(h, seq)
	h = mix64(h, uint64(at))
	h = mix64(h, uint64(int64(priority)))
	h = mix64(h, uint64(label))
	r.cur = h

	pop := r.pops
	if pop == r.epochStartPop {
		r.firstSeq = seq
	}
	r.lastSeq = seq
	r.pops++

	if pop < r.winTo && pop >= r.winFrom {
		r.winRecs = append(r.winRecs, windowRec{pop: pop, seq: seq, at: at, pri: priority, label: label})
	}
	if r.pops-r.epochStartPop == r.opts.EpochEvents {
		r.closeEpoch()
	}
	if r.prof != nil {
		r.prof.observe(label)
	}
}

// closeEpoch seals the open epoch and folds its digest into the chain.
func (r *Recorder) closeEpoch() {
	digest := r.cur
	r.chain = mix64(r.chain, digest)
	r.epochs = append(r.epochs, epochState{
		events:   r.pops - r.epochStartPop,
		firstPop: r.epochStartPop,
		firstSeq: r.firstSeq,
		lastSeq:  r.lastSeq,
		digest:   digest,
		chain:    r.chain,
	})
	r.cur = fnvOffset
	r.epochStartPop = r.pops
}

// Events returns the number of model pops observed so far.
func (r *Recorder) Events() uint64 { return r.pops }

// Finalize seals any partial tail epoch and returns the serializable
// ledger. The recorder keeps accumulating if the engine runs further, but
// Finalize is normally called once, after the run completes.
func (r *Recorder) Finalize() *Ledger {
	if r.pops > r.epochStartPop {
		r.closeEpoch()
	}
	l := &Ledger{
		Version:     Version,
		EpochEvents: r.opts.EpochEvents,
		Events:      r.pops,
		ChainHead:   hex64(r.chain),
		Run:         r.opts.Run,
		Labels:      []string{"-"},
	}
	if r.eng != nil {
		l.Labels = r.eng.Labels()
		l.FinalTimePS = int64(r.eng.Now())
	}
	l.Epochs = make([]Epoch, len(r.epochs))
	for i, e := range r.epochs {
		l.Epochs[i] = Epoch{
			Epoch:    i,
			Events:   e.events,
			FirstPop: e.firstPop,
			FirstSeq: e.firstSeq,
			LastSeq:  e.lastSeq,
			Digest:   hex64(e.digest),
			Chain:    hex64(e.chain),
		}
	}
	if r.winTo > 0 {
		w := &Window{FromPop: r.winFrom, ToPop: r.winTo}
		w.Records = make([]WindowRecord, len(r.winRecs))
		for i, rec := range r.winRecs {
			w.Records[i] = WindowRecord{
				Pop:    rec.pop,
				Seq:    rec.seq,
				TimePS: int64(rec.at),
				Pri:    rec.pri,
				Label:  labelName(l.Labels, rec.label),
			}
		}
		l.Window = w
	}
	return l
}

// Profile returns the host-time profile report, or nil when profiling was
// not enabled. Labels are resolved against the attached engine.
func (r *Recorder) Profile() *ProfileReport {
	if r.prof == nil {
		return nil
	}
	labels := []string{"-"}
	if r.eng != nil {
		labels = r.eng.Labels()
	}
	return r.prof.report(labels)
}

func labelName(labels []string, l sim.Label) string {
	if int(l) < len(labels) {
		return labels[l]
	}
	return "-"
}

// Epoch is one serialized epoch record. Digest covers this epoch's pops
// only; Chain folds every digest up to and including this one, so two
// ledgers' chains agree at epoch i exactly when all pops before its end
// agree — the property the diff's binary search relies on.
type Epoch struct {
	Epoch    int    `json:"epoch"`
	Events   uint64 `json:"events"`
	FirstPop uint64 `json:"first_pop"`
	FirstSeq uint64 `json:"first_seq"`
	LastSeq  uint64 `json:"last_seq"`
	Digest   string `json:"digest"`
	Chain    string `json:"chain"`
}

// WindowRecord is one full-resolution pop inside a capture window.
type WindowRecord struct {
	Pop    uint64 `json:"pop"`
	Seq    uint64 `json:"seq"`
	TimePS int64  `json:"time_ps"`
	Pri    int    `json:"pri"`
	Label  string `json:"label"`
}

// Window is a full-resolution capture over a pop range.
type Window struct {
	FromPop uint64         `json:"from_pop"`
	ToPop   uint64         `json:"to_pop"`
	Records []WindowRecord `json:"records"`
}

// Ledger is the serialized execution ledger. It contains no host-time
// fields: everything in this file is a deterministic function of the run.
type Ledger struct {
	Version     int      `json:"version"`
	Mode        string   `json:"mode,omitempty"`
	EpochEvents uint64   `json:"epoch_events"`
	Events      uint64   `json:"events"`
	ChainHead   string   `json:"chain_head"`
	FinalTimePS int64    `json:"final_time_ps"`
	Labels      []string `json:"labels"`
	Run         *RunSpec `json:"run,omitempty"`
	Epochs      []Epoch  `json:"epochs"`
	Window      *Window  `json:"window,omitempty"`
}

// WriteJSON writes the ledger as indented JSON.
func (l *Ledger) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(l)
}

// Marshal renders the ledger to bytes (indented JSON).
func (l *Ledger) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(l, "", " ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the ledger to path.
func (l *Ledger) WriteFile(path string) error {
	b, err := l.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadFile loads a ledger file.
func ReadFile(path string) (*Ledger, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var l Ledger
	if err := json.Unmarshal(b, &l); err != nil {
		return nil, fmt.Errorf("ledger: parse %s: %w", path, err)
	}
	if l.Version != Version {
		return nil, fmt.Errorf("ledger: %s has version %d, want %d", path, l.Version, Version)
	}
	return &l, nil
}

// hex64 renders a digest as a fixed-width hex string (JSON cannot round-
// trip uint64 through float64 safely).
func hex64(v uint64) string { return fmt.Sprintf("%016x", v) }

// parseHex64 is the inverse of hex64.
func parseHex64(s string) (uint64, error) { return strconv.ParseUint(s, 16, 64) }
