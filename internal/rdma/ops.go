package rdma

import (
	"fmt"

	"rvma/internal/metrics"
	"rvma/internal/sim"
)

// RegOp tracks a buffer-negotiation handshake (Figure 1, steps 1-3).
type RegOp struct {
	// Done resolves with the RemoteBuffer once the target has allocated,
	// registered, and replied.
	Done *sim.Future
}

// RequestRemoteBuffer performs the RDMA setup handshake the paper's
// Figure 1 describes: ask dst for a buffer of the given size; the target
// allocates and registers it (paying registration cost) and replies with
// the (address, length, key) the initiator must retain. This round trip —
// absent in RVMA — is the setup cost Figure 6 amortizes.
func (ep *Endpoint) RequestRemoteBuffer(dst, size int) *RegOp {
	if size <= 0 {
		panic(fmt.Sprintf("rdma: remote buffer size %d", size))
	}
	op := &RegOp{Done: sim.NewFuture()}
	msgID := ep.nextMsgID
	ep.nextMsgID++
	ep.pendingRegs[msgID] = op

	eng := ep.eng
	if ep.mHandshake != nil {
		start := eng.Now()
		op.Done.OnComplete(func() { ep.mHandshake.ObserveTime(eng.Now() - start) })
	}
	eng.Schedule(ep.nic.Profile().HostPostOverhead, func() {
		ep.nic.SendMessage(dst, 0, func(off, n int) any {
			return &command{op: opRegRequest, msgID: msgID, size: size}
		})
	})
	return op
}

// PutOp tracks one initiated RDMA put.
type PutOp struct {
	// Local resolves when the last data packet (and the trailing fence
	// send, if any) has been handed to the fabric.
	Local *sim.Future
}

// Put writes data into the remote buffer at offset using the given
// target-side completion scheme. With CompleteSendRecv a 1-byte send is
// issued immediately after the put on the same (ordered) flow, which is
// what the paper's modified perftest does to be specification-compliant
// on adaptively routed networks (§V-A1).
func (ep *Endpoint) Put(rb RemoteBuffer, offset int, data []byte, scheme CompletionScheme) *PutOp {
	return ep.put(rb, offset, len(data), data, scheme)
}

// PutN is Put without payload bytes (timing-only, for motif scale).
func (ep *Endpoint) PutN(rb RemoteBuffer, offset, size int, scheme CompletionScheme) *PutOp {
	return ep.put(rb, offset, size, nil, scheme)
}

func (ep *Endpoint) put(rb RemoteBuffer, offset, size int, data []byte, scheme CompletionScheme) *PutOp {
	if offset < 0 || size < 0 || offset+size > rb.Size {
		panic(fmt.Sprintf("rdma: put [%d,%d) exceeds remote buffer of %d", offset, offset+size, rb.Size))
	}
	ep.Stats.PutsInitiated++
	op := &PutOp{Local: sim.NewFuture()}
	msgID := ep.nextMsgID
	ep.nextMsgID++

	eng := ep.eng
	prof := ep.nic.Profile()
	sp := ep.reg.BeginSpan(eng.Now(), metrics.SpanKey{Node: ep.Node(), ID: msgID}, "rdma.put", ep.Node())
	eng.Schedule(prof.HostPostOverhead, func() {
		sp.Stage(eng.Now(), "host_post")
		txWait := ep.nic.SendBacklog() + ep.nic.DMABacklog()
		wantAck := scheme == CompleteSendRecv && !ep.cfg.PipelinedFence
		dataF := ep.nic.SendMessage(rb.Node, size, func(off, n int) any {
			var chunk []byte
			if data != nil && ep.cfg.CarryData {
				chunk = data[off : off+n]
			}
			return &command{
				op:        opPutData,
				msgID:     msgID,
				rkey:      rb.RKey,
				msgOffset: offset,
				pktOffset: off,
				total:     size,
				data:      chunk,
				wantAck:   wantAck,
			}
		})
		ep.sentBytes[rb.Node] += uint64(size)
		dataF.OnComplete(func() { sp.StageWait(eng.Now(), "nic_tx", txWait) })
		if scheme != CompleteSendRecv {
			dataF.OnComplete(func() { op.Local.Complete(eng.Engine, nil) })
			return
		}
		fence := ep.sentBytes[rb.Node]
		postFenceSend := func() {
			sendID := ep.nextMsgID
			ep.nextMsgID++
			sendF := ep.nic.SendMessage(rb.Node, 1, func(off, n int) any {
				return &command{op: opSend, msgID: sendID, qp: FenceQP, total: 1, fenceBytes: fence}
			})
			sendF.OnComplete(func() { op.Local.Complete(eng.Engine, nil) })
		}
		if ep.cfg.PipelinedFence {
			// Aggressive runtime: post the send right behind the data (one
			// extra post) and let the target's transport hold it until the
			// put's bytes have all landed.
			eng.Schedule(prof.HostPostOverhead, postFenceSend)
			return
		}
		// Conservative (perftest-style) sequence on an unordered network:
		// reap the write's local completion — which for a reliable
		// transport means the responder's ACK has returned — and only then
		// post the 1-byte send. That is: ACK round trip + CQ poll + a
		// second post, all on the critical path.
		ep.pendingAcks[msgID] = func() {
			eng.Schedule(prof.PollInterval+prof.CQProcessOverhead+prof.HostPostOverhead, postFenceSend)
		}
	})
	return op
}

// PutWithImmediate is the special small-payload command that generates a
// target-side completion event directly (§I): a single-packet write that
// consumes a posted receive at the target. Payloads above MaxImmediate
// are rejected, matching the hardware limitation the paper describes.
func (ep *Endpoint) PutWithImmediate(rb RemoteBuffer, offset int, data []byte) (*PutOp, error) {
	size := len(data)
	if size > MaxImmediate {
		return nil, fmt.Errorf("%w: %d > %d", ErrTooLarge, size, MaxImmediate)
	}
	if offset < 0 || offset+size > rb.Size {
		return nil, fmt.Errorf("%w: [%d,%d) in %d", ErrOutOfBounds, offset, offset+size, rb.Size)
	}
	ep.Stats.PutsInitiated++
	op := &PutOp{Local: sim.NewFuture()}
	msgID := ep.nextMsgID
	ep.nextMsgID++
	eng := ep.eng
	eng.Schedule(ep.nic.Profile().HostPostOverhead, func() {
		var chunk []byte
		if ep.cfg.CarryData {
			chunk = data
		}
		f := ep.nic.SendMessage(rb.Node, size, func(off, n int) any {
			return &command{
				op:        opPutData,
				msgID:     msgID,
				rkey:      rb.RKey,
				msgOffset: offset,
				total:     size,
				data:      chunk,
				imm:       &immediateInfo{rkey: rb.RKey},
			}
		})
		ep.sentBytes[rb.Node] += uint64(size)
		f.OnComplete(func() { op.Local.Complete(eng.Engine, nil) })
	})
	return op, nil
}

// SendOp tracks a two-sided send.
type SendOp struct {
	Local *sim.Future
}

// Send issues a two-sided message of the given size to dst on the given
// QP index, consuming a posted receive there. Sends on the fence QP obey
// the fence rule: they are delivered only after all previously issued put
// bytes to that destination have landed (per-QP operation ordering).
// Control QPs (qp != FenceQP) carry no fence.
func (ep *Endpoint) Send(dst, qp, size int) *SendOp {
	op := &SendOp{Local: sim.NewFuture()}
	msgID := ep.nextMsgID
	ep.nextMsgID++
	eng := ep.eng
	eng.Schedule(ep.nic.Profile().HostPostOverhead, func() {
		var fence uint64
		if qp == FenceQP {
			fence = ep.sentBytes[dst]
		}
		f := ep.nic.SendMessage(dst, size, func(off, n int) any {
			return &command{op: opSend, msgID: msgID, qp: qp, pktOffset: off, total: size, fenceBytes: fence}
		})
		f.OnComplete(func() { op.Local.Complete(eng.Engine, nil) })
	})
	return op
}

// RecvOp tracks a posted receive. Done resolves (with the send's size)
// after the matching send is deliverable (fence satisfied), a CQ entry is
// generated, and host software reaps it at its polling cadence.
type RecvOp struct {
	Done *sim.Future
}

// PostRecv posts a receive for sends arriving from src on the given QP
// index; sends and receives match in FIFO order per queue pair.
func (ep *Endpoint) PostRecv(src, qp int) *RecvOp {
	op := &RecvOp{Done: sim.NewFuture()}
	k := qpKey{src: src, qp: qp}
	ep.recvQueues[k] = append(ep.recvQueues[k], op)
	ep.matchSends(k)
	return op
}

// byteWait is a cumulative-byte poll used by applications that reuse one
// registered buffer for a stream of transfers: "poll the last byte of the
// n-th message", expressed as "wait until target cumulative put bytes from
// src have landed". Like last-byte polling it is only sound when the
// network preserves byte order (static routing).
type byteWait struct {
	src    int
	target uint64
	done   *sim.Future
}

// WaitBytes returns a future that resolves (after a poll tick and host
// processing) once the cumulative put payload bytes received from src
// reach target. If they already have, it resolves after one poll tick.
func (ep *Endpoint) WaitBytes(src int, target uint64) *sim.Future {
	f := sim.NewFuture()
	w := &byteWait{src: src, target: target, done: f}
	eng := ep.eng
	prof := ep.nic.Profile()
	if ep.recvBytes[src] >= target {
		eng.Schedule(prof.PollInterval+prof.HostCompletionOverhead, func() {
			f.Complete(eng.Engine, nil)
		})
		return f
	}
	ep.byteWaits = append(ep.byteWaits, w)
	return f
}

// LastByteWait is target software polling the final byte of an expected
// transfer (the "cheat" completion valid only under static routing).
type LastByteWait struct {
	// Done resolves when the poll observes the last byte written. Its
	// value is a bool: whether the full span had actually arrived at that
	// moment. On byte-ordered networks it is always true; under adaptive
	// routing it can be false — the premature-completion data corruption
	// the paper warns about (§II, §IV-D).
	Done *sim.Future

	mr     *MemoryRegion
	length int
	fired  bool
}

// WaitLastByte arms a last-byte poll on mr for a transfer expected to fill
// length bytes from the region's start.
func (ep *Endpoint) WaitLastByte(mr *MemoryRegion, length int) *LastByteWait {
	if length <= 0 || length > mr.Region.Size() {
		panic(fmt.Sprintf("rdma: last-byte wait length %d in region %d", length, mr.Region.Size()))
	}
	w := &LastByteWait{Done: sim.NewFuture(), mr: mr, length: length}
	ep.lastByteWaits = append(ep.lastByteWaits, w)
	return w
}

// ReadOp tracks an RDMA read.
type ReadOp struct {
	// Done resolves with the fetched bytes (CarryData mode) when the full
	// reply has landed locally.
	Done *sim.Future
}

// Read fetches size bytes at offset from the remote buffer (RDMA read /
// get). Reads are initiator-completed: the paper notes RDMA gets don't
// help the target-side notification problem, but the verb exists and the
// baseline models it.
func (ep *Endpoint) Read(rb RemoteBuffer, offset, size int) *ReadOp {
	if offset < 0 || size <= 0 || offset+size > rb.Size {
		panic(fmt.Sprintf("rdma: read [%d,%d) exceeds remote buffer of %d", offset, offset+size, rb.Size))
	}
	op := &ReadOp{Done: sim.NewFuture()}
	msgID := ep.nextMsgID
	ep.nextMsgID++
	ep.pendingReads[msgID] = op
	eng := ep.eng
	eng.Schedule(ep.nic.Profile().HostPostOverhead, func() {
		ep.nic.SendMessage(rb.Node, 0, func(off, n int) any {
			return &command{op: opReadReq, msgID: msgID, rkey: rb.RKey, msgOffset: offset, size: size}
		})
	})
	return op
}
