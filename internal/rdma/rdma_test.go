package rdma

import (
	"bytes"
	"errors"
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/memory"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

// rdmaTestQP is the QP index tests exchange two-sided traffic on.
const rdmaTestQP = FenceQP

func pair(t *testing.T, cfg Config, fcfg fabric.Config, seed uint64) (*sim.Engine, *Endpoint, *Endpoint) {
	t.Helper()
	eng := sim.NewEngine(seed)
	net, err := fabric.New(eng, topology.NewSingleSwitch(2), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	prof := nic.DefaultProfile()
	a := NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), cfg)
	b := NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), cfg)
	return eng, a, b
}

func defaultPair(t *testing.T) (*sim.Engine, *Endpoint, *Endpoint) {
	return pair(t, DefaultConfig(), fabric.DefaultConfig(), 1)
}

// handshake performs the Figure 1 negotiation and returns the remote
// buffer handle once the simulation settles it.
func handshake(t *testing.T, eng *sim.Engine, initiator *Endpoint, dst, size int) RemoteBuffer {
	return remoteHandshake(t, eng, initiator, dst, size)
}

func remoteHandshake(t *testing.T, eng *sim.Engine, initiator *Endpoint, dst, size int) RemoteBuffer {
	t.Helper()
	var rb RemoteBuffer
	got := false
	eng.Schedule(0, func() {
		op := initiator.RequestRemoteBuffer(dst, size)
		op.Done.OnComplete(func() {
			rb = op.Done.Value().(RemoteBuffer)
			got = true
		})
	})
	eng.Run()
	if !got {
		t.Fatal("registration handshake never completed")
	}
	return rb
}

func TestRegistrationHandshake(t *testing.T) {
	eng, a, b := defaultPair(t)
	rb := handshake(t, eng, a, 1, 4096)
	if rb.Node != 1 || rb.Size != 4096 || rb.RKey == 0 {
		t.Fatalf("remote buffer = %+v", rb)
	}
	if b.Stats.Handshakes != 1 || b.Stats.Registrations != 1 {
		t.Fatalf("target stats: %+v", b.Stats)
	}
	// The handshake costs at least the registration time plus a round trip.
	if eng.Now() < nic.DefaultProfile().RegistrationTime(4096) {
		t.Fatalf("handshake finished implausibly fast: %v", eng.Now())
	}
}

func TestHandshakeCostExceedsRVMASetup(t *testing.T) {
	// RVMA needs no handshake at all; RDMA's setup is a full round trip
	// plus registration. This asymmetry is the core of Figure 6.
	eng, a, _ := defaultPair(t)
	start := eng.Now()
	handshake(t, eng, a, 1, 1<<20)
	elapsed := eng.Now() - start
	if elapsed < 2*sim.Microsecond {
		t.Fatalf("1 MiB handshake took only %v; expected microseconds", elapsed)
	}
}

func TestPutPlacesData(t *testing.T) {
	eng, a, b := defaultPair(t)
	rb := handshake(t, eng, a, 1, 8192)
	payload := make([]byte, 5000)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	eng.Schedule(0, func() { a.Put(rb, 100, payload, CompleteNone) })
	eng.Run()
	got := b.Memory().Read(rb.Addr+memory.Addr(100), 5000)
	if !bytes.Equal(got, payload) {
		t.Fatal("payload not placed at remote address")
	}
	if b.Stats.PutsPlaced != 1 || b.Stats.BytesPlaced != 5000 {
		t.Fatalf("target stats: %+v", b.Stats)
	}
}

func TestPutToRevokedRegionDrops(t *testing.T) {
	eng, a, b := defaultPair(t)
	rb := handshake(t, eng, a, 1, 1024)
	regions := make([]*MemoryRegion, 0, len(b.mrs))
	for _, mr := range b.mrs {
		regions = append(regions, mr)
	}
	for _, mr := range regions {
		b.Deregister(mr)
	}
	eng.Schedule(0, func() { a.Put(rb, 0, make([]byte, 64), CompleteNone) })
	eng.Run()
	if b.Stats.Drops == 0 {
		t.Fatal("put to revoked region should drop")
	}
}

func TestLastBytePollCompletesOnStatic(t *testing.T) {
	eng, a, b := defaultPair(t)
	rb := handshake(t, eng, a, 1, 64*1024)
	var mr *MemoryRegion
	for _, m := range b.mrs {
		mr = m
	}
	const total = 60000
	var complete bool
	var doneAt sim.Time
	eng.Schedule(0, func() {
		w := b.WaitLastByte(mr, total)
		w.Done.OnComplete(func() {
			complete = w.Done.Value().(bool)
			doneAt = eng.Now()
		})
		a.Put(rb, 0, make([]byte, total), CompleteLastByte)
	})
	eng.Run()
	if doneAt == 0 {
		t.Fatal("last-byte poll never completed")
	}
	if !complete {
		t.Fatal("on a statically routed network, last-byte completion must be sound")
	}
}

// multipathPair builds endpoints on the two most distant nodes of a small
// fat-tree, where adaptive routing has real alternative paths and can
// reorder data packets against each other.
func multipathPair(t *testing.T, cfg Config, fcfg fabric.Config, seed uint64) (*sim.Engine, *Endpoint, *Endpoint, int) {
	t.Helper()
	eng := sim.NewEngine(seed)
	topo := topology.NewFatTree(4)
	net, err := fabric.New(eng, topo, fcfg)
	if err != nil {
		t.Fatal(err)
	}
	prof := nic.DefaultProfile()
	a := NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), cfg)
	b := NewEndpoint(nic.New(eng, net, topo.NumNodes()-1, pcie.Gen4x16(), prof), cfg)
	return eng, a, b, topo.NumNodes() - 1
}

func TestLastBytePollPrematureOnAdaptive(t *testing.T) {
	// The §IV-D hazard: under adaptive routing the final byte can land
	// before earlier payload bytes, so polling it "completes" a buffer
	// that is still full of holes. At least one seed must exhibit it.
	sawPremature := false
	for seed := uint64(1); seed <= 30 && !sawPremature; seed++ {
		fcfg := fabric.DefaultConfig()
		fcfg.Routing = fabric.RouteAdaptive
		fcfg.AdaptiveJitter = 0.9
		fcfg.MTU = 256 // small packets arrive close together, maximizing reorder
		eng, a, b, dstNode := multipathPair(t, DefaultConfig(), fcfg, seed)
		rb := remoteHandshake(t, eng, a, dstNode, 256*1024)
		var mr *MemoryRegion
		for _, m := range b.mrs {
			mr = m
		}
		const total = 200 * 1024
		eng.Schedule(0, func() {
			w := b.WaitLastByte(mr, total)
			w.Done.OnComplete(func() {
				if !w.Done.Value().(bool) {
					sawPremature = true
				}
			})
			a.Put(rb, 0, make([]byte, total), CompleteLastByte)
		})
		eng.Run()
	}
	if !sawPremature {
		t.Fatal("adaptive routing never produced a premature last-byte completion in 30 seeds")
	}
}

func TestSendRecvFenceHoldsUntilDataLands(t *testing.T) {
	// The completion send must never be delivered before all put bytes,
	// even when adaptive routing delivers it early.
	for seed := uint64(1); seed <= 10; seed++ {
		fcfg := fabric.DefaultConfig()
		fcfg.Routing = fabric.RouteAdaptive
		fcfg.AdaptiveJitter = 0.9
		eng, a, b := pair(t, DefaultConfig(), fcfg, seed)
		rb := handshake(t, eng, a, 1, 256*1024)
		var mr *MemoryRegion
		for _, m := range b.mrs {
			mr = m
		}
		const total = 100 * 1024
		var bytesAtCompletion int
		eng.Schedule(0, func() {
			recv := b.PostRecv(0, rdmaTestQP)
			recv.Done.OnComplete(func() { bytesAtCompletion = mr.BytesReceived })
			a.Put(rb, 0, make([]byte, total), CompleteSendRecv)
		})
		eng.Run()
		if bytesAtCompletion < total {
			t.Fatalf("seed %d: recv completed with only %d/%d bytes landed", seed, bytesAtCompletion, total)
		}
	}
}

func TestSendRecvCostsMoreThanLastByte(t *testing.T) {
	// The measured penalty of Figures 4/5: specification-compliant
	// completion (trailing send/recv) is slower than last-byte polling.
	oneWay := func(scheme CompletionScheme) sim.Time {
		eng, a, b := defaultPair(t)
		rb := handshake(t, eng, a, 1, 4096)
		var mr *MemoryRegion
		for _, m := range b.mrs {
			mr = m
		}
		start := eng.Now()
		var done sim.Time
		eng.Schedule(0, func() {
			switch scheme {
			case CompleteLastByte:
				w := b.WaitLastByte(mr, 1024)
				w.Done.OnComplete(func() { done = eng.Now() })
			case CompleteSendRecv:
				r := b.PostRecv(0, rdmaTestQP)
				r.Done.OnComplete(func() { done = eng.Now() })
			}
			a.Put(rb, 0, make([]byte, 1024), scheme)
		})
		eng.Run()
		if done == 0 {
			t.Fatal("completion never observed")
		}
		return done - start
	}
	lb := oneWay(CompleteLastByte)
	sr := oneWay(CompleteSendRecv)
	if sr <= lb {
		t.Fatalf("send/recv completion (%v) must cost more than last-byte (%v)", sr, lb)
	}
}

func TestTwoSidedSendRecv(t *testing.T) {
	eng, a, b := defaultPair(t)
	var got int
	eng.Schedule(0, func() {
		r := b.PostRecv(0, rdmaTestQP)
		r.Done.OnComplete(func() { got = r.Done.Value().(int) })
		a.Send(1, rdmaTestQP, 3000)
	})
	eng.Run()
	if got != 3000 {
		t.Fatalf("recv completed with size %d, want 3000", got)
	}
	if b.Stats.SendsDelivered != 1 {
		t.Fatalf("stats: %+v", b.Stats)
	}
}

func TestSendWaitsForPostedRecv(t *testing.T) {
	eng, a, b := defaultPair(t)
	var doneAt sim.Time
	eng.Schedule(0, func() { a.Send(1, rdmaTestQP, 64) })
	// Post the receive long after the send arrives.
	eng.Schedule(sim.Millisecond, func() {
		r := b.PostRecv(0, rdmaTestQP)
		r.Done.OnComplete(func() { doneAt = eng.Now() })
	})
	eng.Run()
	if doneAt < sim.Millisecond {
		t.Fatalf("recv completed at %v, before it was posted", doneAt)
	}
}

func TestSendsMatchRecvsInOrder(t *testing.T) {
	eng, a, b := defaultPair(t)
	var order []int
	eng.Schedule(0, func() {
		for i := 1; i <= 3; i++ {
			i := i
			r := b.PostRecv(0, rdmaTestQP)
			r.Done.OnComplete(func() { order = append(order, i) })
		}
		a.Send(1, rdmaTestQP, 100)
		a.Send(1, rdmaTestQP, 200)
		a.Send(1, rdmaTestQP, 300)
	})
	eng.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("recv completion order = %v", order)
	}
}

func TestPutWithImmediate(t *testing.T) {
	eng, a, b := defaultPair(t)
	rb := handshake(t, eng, a, 1, 1024)
	var got int
	eng.Schedule(0, func() {
		r := b.PostRecv(0, rdmaTestQP)
		r.Done.OnComplete(func() { got = r.Done.Value().(int) })
		if _, err := a.PutWithImmediate(rb, 0, bytes.Repeat([]byte{7}, 48)); err != nil {
			t.Errorf("PutWithImmediate: %v", err)
		}
	})
	eng.Run()
	if got != 48 {
		t.Fatalf("immediate completion size = %d, want 48", got)
	}
	if b.Memory().Read(rb.Addr, 1)[0] != 7 {
		t.Fatal("immediate payload not placed")
	}
}

func TestPutWithImmediateTooLarge(t *testing.T) {
	eng, a, _ := defaultPair(t)
	rb := handshake(t, eng, a, 1, 1024)
	if _, err := a.PutWithImmediate(rb, 0, make([]byte, MaxImmediate+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized immediate: %v, want ErrTooLarge", err)
	}
	if _, err := a.PutWithImmediate(rb, 1000, make([]byte, 64)); !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("out-of-bounds immediate: %v, want ErrOutOfBounds", err)
	}
}

func TestRDMARead(t *testing.T) {
	eng, a, b := defaultPair(t)
	rb := handshake(t, eng, a, 1, 8192)
	content := make([]byte, 8192)
	for i := range content {
		content[i] = byte(i ^ 0x5A)
	}
	var got []byte
	eng.Schedule(0, func() {
		b.Memory().Write(rb.Addr, content)
		op := a.Read(rb, 512, 4096)
		op.Done.OnComplete(func() { got = op.Done.Value().([]byte) })
	})
	eng.Run()
	if got == nil {
		t.Fatal("read never completed")
	}
	if !bytes.Equal(got, content[512:512+4096]) {
		t.Fatal("read returned wrong bytes")
	}
	if b.Stats.ReadsServed != 1 {
		t.Fatalf("stats: %+v", b.Stats)
	}
}

func TestPutOutOfBoundsPanics(t *testing.T) {
	eng, a, _ := defaultPair(t)
	rb := handshake(t, eng, a, 1, 128)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-bounds put should panic")
		}
	}()
	a.Put(rb, 100, make([]byte, 64), CompleteNone)
}

func TestFenceStatsCount(t *testing.T) {
	// Under heavy jitter the fence should actually hold sends sometimes.
	held := uint64(0)
	cfg := DefaultConfig()
	cfg.PipelinedFence = true // only the pipelined path can race data
	for seed := uint64(1); seed <= 10; seed++ {
		fcfg := fabric.DefaultConfig()
		fcfg.Routing = fabric.RouteAdaptive
		fcfg.AdaptiveJitter = 0.9
		eng, a, b := pair(t, cfg, fcfg, seed)
		rb := handshake(t, eng, a, 1, 256*1024)
		eng.Schedule(0, func() {
			b.PostRecv(0, rdmaTestQP)
			a.Put(rb, 0, make([]byte, 128*1024), CompleteSendRecv)
		})
		eng.Run()
		held += b.Stats.FencesHeld
	}
	if held == 0 {
		t.Fatal("fence was never exercised across 10 jittered seeds")
	}
}

func TestTimingOnlyPut(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CarryData = false
	eng, a, b := pair(t, cfg, fabric.DefaultConfig(), 1)
	rb := handshake(t, eng, a, 1, 8192)
	completed := false
	eng.Schedule(0, func() {
		r := b.PostRecv(0, rdmaTestQP)
		r.Done.OnComplete(func() { completed = true })
		a.PutN(rb, 0, 8192, CompleteSendRecv)
	})
	eng.Run()
	if !completed {
		t.Fatal("timing-only put with fence never completed")
	}
}

// lossyHandshake retries the registration handshake until it survives the
// failure injection (request or reply packets can be dropped too).
func lossyHandshake(t *testing.T, eng *sim.Engine, initiator *Endpoint, dst, size int) (RemoteBuffer, bool) {
	t.Helper()
	for attempt := 0; attempt < 20; attempt++ {
		op := initiator.RequestRemoteBuffer(dst, size)
		eng.Run()
		if op.Done.Done() {
			return op.Done.Value().(RemoteBuffer), true
		}
	}
	return RemoteBuffer{}, false
}

func TestLastBytePollFalselyCompletesUnderDrops(t *testing.T) {
	// The failure-injection contrast to RVMA's hole-proof counting: if a
	// middle packet is lost but the final one lands, last-byte polling
	// reports completion over a holed buffer. At least one seed must show
	// it (and rvma's TestDropsNeverFalselyComplete shows RVMA never does).
	sawFalseComplete := false
	for seed := uint64(1); seed <= 40 && !sawFalseComplete; seed++ {
		fcfg := fabric.DefaultConfig()
		fcfg.DropRate = 0.15
		eng, a, b := pair(t, DefaultConfig(), fcfg, seed)
		rb, ok := lossyHandshake(t, eng, a, 1, 64*1024)
		if !ok {
			continue
		}
		mr := b.RegionByKey(rb.RKey)
		const total = 32 * 1024 // 16 packets
		eng.Schedule(0, func() {
			w := b.WaitLastByte(mr, total)
			w.Done.OnComplete(func() {
				if !w.Done.Value().(bool) {
					sawFalseComplete = true
				}
			})
			a.Put(rb, 0, make([]byte, total), CompleteLastByte)
		})
		eng.Run()
	}
	if !sawFalseComplete {
		t.Fatal("expected at least one false last-byte completion across 40 lossy seeds")
	}
}

func TestFenceSendNeverCompletesOnHoledBuffer(t *testing.T) {
	// Spec-compliant completion stays safe under loss: if any data packet
	// (or the fence itself) is dropped, the recv simply never completes —
	// detectable by timeout — rather than reporting a holed buffer done.
	for seed := uint64(1); seed <= 15; seed++ {
		fcfg := fabric.DefaultConfig()
		fcfg.DropRate = 0.1
		eng, a, b := pair(t, DefaultConfig(), fcfg, seed)
		rb, ok := lossyHandshake(t, eng, a, 1, 64*1024)
		if !ok {
			continue
		}
		mr := b.RegionByKey(rb.RKey)
		const total = 32 * 1024
		completedHoled := false
		eng.Schedule(0, func() {
			r := b.PostRecv(0, rdmaTestQP)
			r.Done.OnComplete(func() {
				if mr.BytesReceived < total {
					completedHoled = true
				}
			})
			a.Put(rb, 0, make([]byte, total), CompleteSendRecv)
		})
		eng.Run()
		if completedHoled {
			t.Fatalf("seed %d: fenced completion fired with a holed buffer", seed)
		}
	}
}
