package rdma

import (
	"fmt"

	"rvma/internal/metrics"
	"rvma/internal/sim"
)

// Reliable operations: the sender-side handles the recovery layer drives.
// RDMA recovery rides the protocol's existing acknowledgment machinery —
// the same NIC-generated opPutAck a non-pipelined fence waits for — so the
// comparison with RVMA stays fair: both transports detect loss by timeout
// on an ack future and retransmit with the same backoff policy, and each
// pays only its own protocol's wire costs. Retransmits reuse the message
// id, and the target deduplicates packets by offset, so an attempt's
// stragglers can never double-count bytes, falsely satisfy a fence, or
// deliver one send twice.

// Attempt is one wire attempt of a reliable operation.
type Attempt struct {
	// Local completes when the attempt's last packet reached the fabric.
	Local *sim.Future
	// Acked completes when the target acknowledged the full message (any
	// attempt's packets may have contributed).
	Acked *sim.Future
}

// reliableOp lets the ack dispatch resolve whichever attempt is current.
type reliableOp interface {
	currentAttempt() *Attempt
}

// ReliablePut is an acked one-sided put under recovery-layer control.
type ReliablePut struct {
	rb     RemoteBuffer
	offset int
	size   int
	msgID  uint64

	attempt *Attempt
}

func (rp *ReliablePut) currentAttempt() *Attempt { return rp.attempt }

// MsgID returns the operation's wire message id (stable across attempts).
func (rp *ReliablePut) MsgID() uint64 { return rp.msgID }

// PutNReliable initiates an acked put (timing-only payload, like PutN) and
// returns the operation handle plus its first attempt. Unlike PutN with
// CompleteSendRecv it posts no fence send — a transport that wants fence
// semantics issues its own (reliable) send after the ack.
func (ep *Endpoint) PutNReliable(rb RemoteBuffer, offset, size int) (*ReliablePut, *Attempt) {
	if offset < 0 || size < 0 || offset+size > rb.Size {
		panic(fmt.Sprintf("rdma: put [%d,%d) exceeds remote buffer of %d", offset, offset+size, rb.Size))
	}
	rp := &ReliablePut{rb: rb, offset: offset, size: size, msgID: ep.nextMsgID}
	ep.nextMsgID++
	ep.pendingRel[rp.msgID] = rp
	// Fence accounting counts the operation once: a retransmit re-sends
	// bytes the fence ledger already includes, and the target's dedup
	// keeps the receive side consistent with that.
	ep.sentBytes[rb.Node] += uint64(size)
	sp := ep.reg.BeginSpan(ep.Engine().Now(), metrics.SpanKey{Node: ep.Node(), ID: rp.msgID}, "rdma.put", ep.Node())
	return rp, ep.sendPutAttempt(rp, sp)
}

// RetransmitPut re-sends a reliable put that is still unacked, reusing its
// message id, and returns the fresh attempt. The attempt rides the
// message's existing span with an incremented attempt tag, so
// retransmitted operations never produce orphan spans.
func (ep *Endpoint) RetransmitPut(rp *ReliablePut) *Attempt {
	if _, ok := ep.pendingRel[rp.msgID]; !ok {
		panic(fmt.Sprintf("rdma: retransmit of put %d that is not pending", rp.msgID))
	}
	sp := ep.reg.Span(metrics.SpanKey{Node: ep.Node(), ID: rp.msgID})
	sp.NextAttempt(ep.Engine().Now())
	return ep.sendPutAttempt(rp, sp)
}

// AbandonReliable drops a reliable operation the recovery layer gave up
// on, so a straggler ack cannot resolve a retired handle. The operation's
// span (if still open) closes with status "abandoned" instead of leaking.
func (ep *Endpoint) AbandonReliable(msgID uint64) {
	delete(ep.pendingRel, msgID)
	ep.reg.Span(metrics.SpanKey{Node: ep.Node(), ID: msgID}).EndAbandoned(ep.Engine().Now())
}

func (ep *Endpoint) sendPutAttempt(rp *ReliablePut, sp *metrics.Span) *Attempt {
	ep.Stats.PutsInitiated++
	at := &Attempt{Local: sim.NewFuture(), Acked: sim.NewFuture()}
	rp.attempt = at
	eng := ep.eng
	eng.Schedule(ep.nic.Profile().HostPostOverhead, func() {
		sp.Stage(eng.Now(), "host_post")
		txWait := ep.nic.SendBacklog() + ep.nic.DMABacklog()
		f := ep.nic.SendMessage(rp.rb.Node, rp.size, func(off, n int) any {
			return &command{
				op:        opPutData,
				msgID:     rp.msgID,
				rkey:      rp.rb.RKey,
				msgOffset: rp.offset,
				pktOffset: off,
				total:     rp.size,
				wantAck:   true,
				reliable:  true,
			}
		})
		f.OnComplete(func() {
			sp.StageWait(eng.Now(), "nic_tx", txWait)
			at.Local.Complete(eng.Engine, nil)
		})
	})
	return at
}

// ReliableSend is an acked two-sided send under recovery-layer control.
// The ack fires when the target's NIC has fully reassembled the message
// (transport-level receipt), not when an application receive consumes it.
type ReliableSend struct {
	dst   int
	qp    int
	size  int
	fence uint64
	msgID uint64

	attempt *Attempt
}

func (rs *ReliableSend) currentAttempt() *Attempt { return rs.attempt }

// MsgID returns the operation's wire message id (stable across attempts).
func (rs *ReliableSend) MsgID() uint64 { return rs.msgID }

// SendReliable issues an acked send. Fence-QP sends capture the fence
// ledger once, at issue time, and every retransmit carries that same
// fence — the retransmitted send must wait for exactly the bytes the
// original did.
func (ep *Endpoint) SendReliable(dst, qp, size int) (*ReliableSend, *Attempt) {
	rs := &ReliableSend{dst: dst, qp: qp, size: size, msgID: ep.nextMsgID}
	ep.nextMsgID++
	if qp == FenceQP {
		rs.fence = ep.sentBytes[dst]
	}
	ep.pendingRel[rs.msgID] = rs
	return rs, ep.sendSendAttempt(rs)
}

// RetransmitSend re-sends a reliable send that is still unacked.
func (ep *Endpoint) RetransmitSend(rs *ReliableSend) *Attempt {
	if _, ok := ep.pendingRel[rs.msgID]; !ok {
		panic(fmt.Sprintf("rdma: retransmit of send %d that is not pending", rs.msgID))
	}
	return ep.sendSendAttempt(rs)
}

func (ep *Endpoint) sendSendAttempt(rs *ReliableSend) *Attempt {
	at := &Attempt{Local: sim.NewFuture(), Acked: sim.NewFuture()}
	rs.attempt = at
	eng := ep.eng
	eng.Schedule(ep.nic.Profile().HostPostOverhead, func() {
		f := ep.nic.SendMessage(rs.dst, rs.size, func(off, n int) any {
			return &command{
				op:         opSend,
				msgID:      rs.msgID,
				qp:         rs.qp,
				pktOffset:  off,
				total:      rs.size,
				fenceBytes: rs.fence,
				reliable:   true,
			}
		})
		f.OnComplete(func() { at.Local.Complete(eng.Engine, nil) })
	})
	return at
}
