package rdma

import (
	"bytes"
	"testing"
	"testing/quick"

	"rvma/internal/fabric"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

// TestPutPlacementMatchesOracle: any sequence of in-bounds RDMA puts lands
// exactly where the carried physical addresses say, under static routing.
func TestPutPlacementMatchesOracle(t *testing.T) {
	type putSpec struct {
		Off  uint16
		Len  uint8
		Seed uint8
	}
	f := func(specs []putSpec) bool {
		const regionSize = 8192
		eng := sim.NewEngine(3)
		net, err := fabric.New(eng, topology.NewSingleSwitch(2), fabric.DefaultConfig())
		if err != nil {
			return false
		}
		prof := nic.DefaultProfile()
		a := NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), DefaultConfig())
		b := NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), DefaultConfig())

		op := a.RequestRemoteBuffer(1, regionSize)
		eng.Run()
		if !op.Done.Done() {
			return false
		}
		rb := op.Done.Value().(RemoteBuffer)

		oracle := make([]byte, regionSize)
		eng.Schedule(0, func() {
			for _, s := range specs {
				off := int(s.Off) % (regionSize - 256)
				n := int(s.Len) + 1
				data := make([]byte, n)
				for i := range data {
					data[i] = byte(int(s.Seed) + i*3)
				}
				copy(oracle[off:], data)
				a.Put(rb, off, data, CompleteNone)
			}
		})
		eng.Run()
		return bytes.Equal(b.Memory().Read(rb.Addr, regionSize), oracle)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestFenceNeverEarlyProperty: for any message size and jitter seed, a
// fenced completion send is never delivered before its put's bytes —
// the transport-resequencing guarantee, exercised under reordering.
func TestFenceNeverEarlyProperty(t *testing.T) {
	f := func(seed uint16, sizeRaw uint16) bool {
		size := int(sizeRaw)%(96*1024) + 1024
		eng := sim.NewEngine(uint64(seed) + 1)
		fcfg := fabric.DefaultConfig()
		fcfg.Routing = fabric.RouteAdaptive
		fcfg.AdaptiveJitter = 0.9
		fcfg.MTU = 512
		topo := topology.NewFatTree(4)
		net, err := fabric.New(eng, topo, fcfg)
		if err != nil {
			return false
		}
		prof := nic.DefaultProfile()
		cfg := DefaultConfig()
		cfg.CarryData = false
		cfg.PipelinedFence = true // the racy variant; the fence must save it
		a := NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), cfg)
		b := NewEndpoint(nic.New(eng, net, topo.NumNodes()-1, pcie.Gen4x16(), prof), cfg)

		op := a.RequestRemoteBuffer(topo.NumNodes()-1, size)
		eng.Run()
		if !op.Done.Done() {
			return false
		}
		rb := op.Done.Value().(RemoteBuffer)
		mr := b.RegionByKey(rb.RKey)

		sound := true
		eng.Schedule(0, func() {
			recv := b.PostRecv(0, FenceQP)
			recv.Done.OnComplete(func() {
				if mr.BytesReceived < size {
					sound = false
				}
			})
			a.PutN(rb, 0, size, CompleteSendRecv)
		})
		eng.Run()
		return sound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestRegistrationCostMonotone: registering more bytes never costs less.
func TestRegistrationCostMonotone(t *testing.T) {
	prof := nic.DefaultProfile()
	f := func(aRaw, bRaw uint32) bool {
		x, y := int(aRaw%(1<<24)), int(bRaw%(1<<24))
		if x > y {
			x, y = y, x
		}
		return prof.RegistrationTime(x+1) <= prof.RegistrationTime(y+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkRegistrationHandshake measures the Figure 1 setup path.
func BenchmarkRegistrationHandshake(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(1)
		net, _ := fabric.New(eng, topology.NewSingleSwitch(2), fabric.DefaultConfig())
		prof := nic.DefaultProfile()
		a := NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), DefaultConfig())
		NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), DefaultConfig())
		a.RequestRemoteBuffer(1, 65536)
		eng.Run()
	}
}
