// Package rdma models traditional RDMA as the paper's baseline: physical-
// address windows owned by the initiator, a mandatory buffer-negotiation
// handshake before any transfer (Figure 1), and target-side completion
// that requires either byte-level network ordering (last-byte polling,
// valid only on statically routed networks) or an extra ordered send/recv
// after the data ("the InfiniBand specification states that no RDMA
// operation can be considered complete until a later send/recv operation
// has finished", §IV-D).
//
// The model runs on the same NIC/fabric/bus substrate as package rvma —
// the paper's methodology requires both models to share "identical timing
// for non-RDMA related traffic considerations" (§V-B) — so every
// performance difference between the two packages is structural: the
// handshake, the trailing completion message, and the receiver's inability
// to manage its own buffers.
package rdma

import (
	"errors"
	"fmt"

	"rvma/internal/memory"
	"rvma/internal/metrics"
	"rvma/internal/nic"
	"rvma/internal/sim"
	"rvma/internal/trace"
)

// Errors returned by the API.
var (
	ErrBadRKey     = errors.New("rdma: unknown or revoked rkey")
	ErrOutOfBounds = errors.New("rdma: access outside registered region")
	ErrTooLarge    = errors.New("rdma: payload exceeds immediate limit")
	ErrBadArgument = errors.New("rdma: invalid argument")
)

// MaxImmediate is the largest payload a write-with-immediate may carry.
// The paper notes such completion-generating commands have payloads
// "typically under 64 bytes in size" (§I).
const MaxImmediate = 64

// CompletionScheme selects how the *target* learns a put finished.
type CompletionScheme int

const (
	// CompleteNone delivers data with no target-side notification — the
	// raw RDMA semantic.
	CompleteNone CompletionScheme = iota
	// CompleteLastByte has target software poll the final byte of the
	// expected span. It is only correct on byte-ordered (statically
	// routed) networks; on adaptive networks the last byte can land
	// before earlier ones and the "completion" is premature (§IV-D).
	CompleteLastByte
	// CompleteSendRecv appends a 1-byte send after the put. Transport
	// ordering guarantees the send is delivered only after all prior put
	// bytes, making it the specification-compliant completion on
	// adaptively routed networks — at the cost of an extra message.
	CompleteSendRecv
)

// String returns the scheme's report name.
func (s CompletionScheme) String() string {
	switch s {
	case CompleteNone:
		return "none"
	case CompleteLastByte:
		return "last-byte-poll"
	case CompleteSendRecv:
		return "send-recv-fence"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// Config parameterizes an RDMA endpoint.
type Config struct {
	// CarryData moves real bytes (tests); when false only timing flows.
	CarryData bool
	// PipelinedFence changes CompleteSendRecv behavior: when true the
	// 1-byte completion send is posted immediately after the put and the
	// *target* holds it until every put byte has landed (what an
	// aggressive runtime like UCX's progress engine does); when false the
	// initiator conservatively reaps the write's local completion — the
	// responder ACK round trip — before posting the send (what a naive
	// perftest modification does). Both are specification-compliant.
	PipelinedFence bool
}

// DefaultConfig returns the configuration used by tests and benchmarks.
func DefaultConfig() Config { return Config{CarryData: true} }

// MemoryRegion is a locally registered, remotely accessible buffer.
type MemoryRegion struct {
	RKey   uint32
	Region *memory.Region
	// BytesReceived counts put payload bytes landed in this region (model
	// bookkeeping; a real NIC has no such counter, which is the paper's
	// entire point — see rvma).
	BytesReceived int
	revoked       bool
}

// RemoteBuffer is the initiator's handle to a remote registered region:
// exactly the (address, length, key) triple Figure 1's handshake ships
// back, which the initiator must retain for every subsequent operation.
type RemoteBuffer struct {
	Node int
	RKey uint32
	Addr memory.Addr
	Size int
}

// Stats aggregates endpoint counters.
type Stats struct {
	Handshakes     uint64 // buffer negotiations served (target side)
	AcksSent       uint64 // transport ACKs emitted (target side)
	Registrations  uint64
	PutsInitiated  uint64
	PutsPlaced     uint64 // messages fully landed (target side)
	BytesPlaced    uint64
	SendsDelivered uint64
	FencesHeld     uint64 // completion sends that had to wait for data
	Drops          uint64
	ReadsServed    uint64
	DupPackets     uint64 // retransmit duplicates discarded by the receiver
}

// Endpoint is one node's RDMA instance (host verbs library + NIC model).
type Endpoint struct {
	nic *nic.NIC
	eng sim.Tagged // engine handle stamping "rdma" on scheduled events
	cfg Config

	mrs      map[uint32]*MemoryRegion
	nextRKey uint32

	nextMsgID uint64

	// Initiator-side bookkeeping.
	pendingRegs  map[uint64]*RegOp
	pendingAcks  map[uint64]func()     // put msgID -> action on transport ACK
	pendingRel   map[uint64]reliableOp // msgID -> reliable op awaiting ack
	pendingReads map[uint64]*ReadOp
	readBuf      map[uint64][]byte
	readAsm      *nic.Assembler
	sentBytes    map[int]uint64 // per-destination cumulative put payload bytes

	// Target-side bookkeeping. Receive queues are per (source node, QP
	// index): InfiniBand receive queues belong to a queue pair, and
	// applications commonly run several QPs per peer (e.g. one for data
	// and fences, one for control credits).
	recvBytes     map[int]uint64 // per-source cumulative put payload bytes landed
	recvQueues    map[qpKey][]*RecvOp
	pendingSends  map[qpKey][]*pendingSend
	lastByteWaits []*LastByteWait
	byteWaits     []*byteWait
	asm           *nic.Assembler
	relAsm        *nic.RangeAssembler // duplicate-aware reassembly of reliable ops

	tracer *trace.Tracer
	reg    *metrics.Registry

	// Metric handles (nil when no registry is attached).
	mHandshakes *metrics.Counter
	mFencesHeld *metrics.Counter
	mDrops      *metrics.Counter
	mAcks       *metrics.Counter
	mHandshake  *metrics.Histogram // request -> RemoteBuffer in hand, ns
	mRegMR      *metrics.Histogram // memory-registration cost, ns
	mFenceHold  *metrics.Histogram // send enqueue -> fence satisfied, ns

	Stats Stats
}

// qpKey identifies one queue pair: the peer node and a small application-
// chosen QP index.
type qpKey struct {
	src int
	qp  int
}

// FenceQP is the QP index put completion sends and immediates arrive on.
const FenceQP = 0

// pendingSend is a send whose fence (prior put bytes) is not yet satisfied
// or which awaits a posted receive.
type pendingSend struct {
	src        int
	fenceBytes uint64
	size       int
	imm        *immediateInfo
	enq        sim.Time // when the send reached the target (fence-hold metric)
}

type immediateInfo struct {
	rkey uint32
}

// NewEndpoint attaches an RDMA endpoint to the NIC.
func NewEndpoint(n *nic.NIC, cfg Config) *Endpoint {
	ep := &Endpoint{
		nic:          n,
		eng:          n.Engine().Tag("rdma"),
		cfg:          cfg,
		mrs:          make(map[uint32]*MemoryRegion),
		nextRKey:     1,
		pendingRegs:  make(map[uint64]*RegOp),
		pendingAcks:  make(map[uint64]func()),
		pendingRel:   make(map[uint64]reliableOp),
		pendingReads: make(map[uint64]*ReadOp),
		readBuf:      make(map[uint64][]byte),
		readAsm:      nic.NewAssembler(),
		sentBytes:    make(map[int]uint64),
		recvBytes:    make(map[int]uint64),
		recvQueues:   make(map[qpKey][]*RecvOp),
		pendingSends: make(map[qpKey][]*pendingSend),
		asm:          nic.NewAssembler(),
		relAsm:       nic.NewRangeAssembler(),
	}
	n.SetHandler(ep.handlePacket)
	return ep
}

// SetTracer attaches a tracer; registration, fences and acks go to
// trace.CatRDMA. A nil tracer detaches.
func (ep *Endpoint) SetTracer(t *trace.Tracer) { ep.tracer = t }

// SetMetrics attaches a metrics registry: handshake and registration
// latency histograms, fence-hold distribution, drop/ack counters, and
// (when spans are enabled) a per-put host_post -> nic_tx -> wire -> place
// span mirroring the RVMA one, so the two transports' pipelines compare
// stage by stage. A nil registry detaches everything.
func (ep *Endpoint) SetMetrics(reg *metrics.Registry) {
	ep.reg = reg
	if reg == nil {
		ep.mHandshakes, ep.mFencesHeld, ep.mDrops, ep.mAcks = nil, nil, nil, nil
		ep.mHandshake, ep.mRegMR, ep.mFenceHold = nil, nil, nil
		return
	}
	ep.mHandshakes = reg.Counter("rdma.handshakes")
	ep.mFencesHeld = reg.Counter("rdma.fences_held")
	ep.mDrops = reg.Counter("rdma.drops")
	ep.mAcks = reg.Counter("rdma.acks_sent")
	// Named like span histograms so FprintSpans shows the setup path RVMA
	// does not have next to the per-put stages.
	ep.mHandshake = reg.Histogram("span.rdma.handshake/total")
	ep.mRegMR = reg.Histogram("span.rdma.registration/total")
	ep.mFenceHold = reg.Histogram("span.rdma.put/fence_hold")
	node := ep.Node()
	reg.AddCollector(func() {
		held, queued := 0, 0
		for _, ps := range ep.pendingSends {
			held += len(ps)
		}
		for _, rq := range ep.recvQueues {
			queued += len(rq)
		}
		reg.Gauge(fmt.Sprintf("rdma%d.pending_sends", node)).Set(float64(held))
		reg.Gauge(fmt.Sprintf("rdma%d.posted_recvs", node)).Set(float64(queued))
		reg.Gauge(fmt.Sprintf("rdma%d.pending_asm", node)).Set(float64(ep.asm.Pending()))
	})
}

// Node returns the endpoint's node id.
func (ep *Endpoint) Node() int { return ep.nic.Node() }

// PendingRegistrations returns the number of buffer-negotiation handshakes
// this endpoint has initiated that have not yet received their RemoteBuffer
// reply (telemetry probe: outstanding registrations).
func (ep *Endpoint) PendingRegistrations() int { return len(ep.pendingRegs) }

// PendingSendsHeld returns the number of target-side sends currently held
// for an unsatisfied fence or a missing posted receive.
func (ep *Endpoint) PendingSendsHeld() int {
	held := 0
	for _, ps := range ep.pendingSends {
		held += len(ps)
	}
	return held
}

// NIC returns the underlying NIC model.
func (ep *Endpoint) NIC() *nic.NIC { return ep.nic }

// Memory returns the node's host memory.
func (ep *Endpoint) Memory() *memory.Memory { return ep.nic.Memory() }

// Engine returns the simulation engine.
func (ep *Endpoint) Engine() *sim.Engine { return ep.nic.Engine() }

// RegisterBuffer allocates and registers a region of the given size,
// paying the profile's registration cost (syscall + page pinning). The
// future resolves with the *MemoryRegion when registration completes.
func (ep *Endpoint) RegisterBuffer(size int) *sim.Future {
	if size <= 0 {
		panic(fmt.Sprintf("rdma: register size %d", size))
	}
	f := sim.NewFuture()
	eng := ep.eng
	cost := ep.nic.Profile().RegistrationTime(size)
	ep.mRegMR.ObserveTime(cost)
	if ep.tracer != nil {
		ep.tracer.Eventf(trace.CatRDMA, "node %d register %dB (%v)", ep.Node(), size, cost)
	}
	eng.Schedule(cost, func() {
		mr := &MemoryRegion{RKey: ep.nextRKey, Region: ep.Memory().Alloc(size)}
		ep.nextRKey++
		ep.mrs[mr.RKey] = mr
		ep.Stats.Registrations++
		f.Complete(eng.Engine, mr)
	})
	return f
}

// RegionByKey returns the locally registered region with the given rkey,
// or nil. Targets use it to find the region a negotiated handle refers to.
func (ep *Endpoint) RegionByKey(rkey uint32) *MemoryRegion { return ep.mrs[rkey] }

// Deregister revokes a region; subsequent remote accesses are dropped.
// This is the "binary" resource control the paper critiques: a region is
// either remotely accessible or not (§II).
func (ep *Endpoint) Deregister(mr *MemoryRegion) {
	mr.revoked = true
	delete(ep.mrs, mr.RKey)
}

// wire opcodes.
type opcode int

const (
	opRegRequest opcode = iota
	opRegReply
	opPutData
	opPutAck
	opSend
	opReadReq
	opReadReply
)

// command is the wire payload.
type command struct {
	op    opcode
	msgID uint64

	// registration
	size int
	rb   RemoteBuffer

	// put
	rkey      uint32
	msgOffset int
	pktOffset int
	total     int
	data      []byte
	// wantAck asks the target NIC to emit a transport acknowledgment when
	// the whole message has landed (RC write completion semantics).
	wantAck bool
	// reliable marks packets of a recovery-layer operation: the target
	// deduplicates them by offset (retransmits reuse the msgID) and counts
	// only unique bytes, so retransmitted packets can never falsely
	// satisfy a fence or double-deliver a send.
	reliable bool

	// qp is the queue-pair index a send belongs to.
	qp int
	// send fence: cumulative put bytes sent on this (src,dst) pair before
	// this send was issued; the target may not deliver the send until that
	// many bytes have landed (transport resequencing).
	fenceBytes uint64
	imm        *immediateInfo
}
