// Package collective implements the classic latency-bound collective
// algorithms — barrier and allreduce by recursive doubling, broadcast by
// binomial tree, allgather by ring — over the motif Transport interface,
// so they run unchanged on RVMA and on baseline RDMA.
//
// Collectives are an extension experiment beyond the paper's Sweep3D and
// Halo3D: their critical paths are chains of small messages, which is
// precisely where RVMA's completion model (no trailing send/recv, no
// per-reuse credits) pays off. cmd/rvmabench's "collectives" table and
// the CollectiveLatency benchmarks quantify it.
package collective

import (
	"fmt"

	"rvma/internal/motif"
	"rvma/internal/sim"
)

// ceilPow2 returns the smallest power of two >= n.
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Barrier synchronizes all ranks using dissemination: at round k each
// rank sends a token to (rank + 2^k) mod n and waits for one from
// (rank - 2^k) mod n; ceil(log2 n) rounds. Call from each rank's process.
func Barrier(p *sim.Process, tp motif.Transport) {
	n := tp.Ranks()
	if n <= 1 {
		return
	}
	me := tp.Rank()
	const tokenBytes = 8
	for step := 1; step < n; step <<= 1 {
		to := (me + step) % n
		from := (me - step + n) % n
		tp.Send(to, tokenBytes)
		p.Wait(tp.Recv(from, tokenBytes))
	}
}

// Allreduce performs a recursive-doubling allreduce of a vector of
// elemBytes*elems bytes. Non-power-of-two rank counts use the standard
// fold: extras send their contribution to a partner first and receive the
// result last. Only timing flows; the reduction itself is a modeled
// compute delay per element.
func Allreduce(p *sim.Process, tp motif.Transport, elems, elemBytes int, reduceTimePerElem sim.Time) {
	n := tp.Ranks()
	if n <= 1 || elems <= 0 {
		return
	}
	me := tp.Rank()
	msg := elems * elemBytes
	pow2 := 1
	for pow2*2 <= n {
		pow2 *= 2
	}
	rem := n - pow2

	compute := func() {
		if reduceTimePerElem > 0 {
			p.Sleep(sim.Scale(elems, reduceTimePerElem))
		}
	}

	// Fold extras into the power-of-two core.
	inCore := me < pow2
	if me >= pow2 { // extra: contribute, then wait for the result
		partner := me - pow2
		tp.Send(partner, msg)
		p.Wait(tp.Recv(partner, msg))
		return
	}
	if me < rem { // core rank paired with an extra
		p.Wait(tp.Recv(me+pow2, msg))
		compute()
	}

	if inCore {
		for mask := 1; mask < pow2; mask <<= 1 {
			partner := me ^ mask
			tp.Send(partner, msg)
			p.Wait(tp.Recv(partner, msg))
			compute()
		}
	}

	if me < rem { // return the result to the extra
		tp.Send(me+pow2, msg)
	}
}

// Broadcast sends size bytes from root to every rank along a binomial
// tree (the MPICH algorithm): ceil(log2 n) rounds on the critical path.
func Broadcast(p *sim.Process, tp motif.Transport, root, size int) {
	n := tp.Ranks()
	if n <= 1 {
		return
	}
	// Rotate so the root is virtual rank 0.
	me := (tp.Rank() - root + n) % n
	unrotate := func(v int) int { return (v + root) % n }

	// Receive phase: scan masks upward; the lowest set bit of my virtual
	// rank identifies my parent.
	mask := 1
	for mask < ceilPow2(n) {
		if me&mask != 0 {
			p.Wait(tp.Recv(unrotate(me-mask), size))
			break
		}
		mask <<= 1
	}
	// Forward phase: relay to children at decreasing masks.
	mask >>= 1
	for mask > 0 {
		if me+mask < n {
			tp.Send(unrotate(me+mask), size)
		}
		mask >>= 1
	}
}

// Allgather rotates each rank's size-byte block around a ring: n-1 steps,
// bandwidth-optimal for large blocks.
func Allgather(p *sim.Process, tp motif.Transport, size int) {
	n := tp.Ranks()
	if n <= 1 {
		return
	}
	me := tp.Rank()
	right := (me + 1) % n
	left := (me - 1 + n) % n
	for step := 0; step < n-1; step++ {
		tp.Send(right, size)
		p.Wait(tp.Recv(left, size))
	}
}

// neighborsAll returns every rank except self (collectives over a
// dissemination/hypercube pattern can talk to any rank).
func neighborsAll(tp motif.Transport) []int {
	out := make([]int, 0, tp.Ranks()-1)
	for r := 0; r < tp.Ranks(); r++ {
		if r != tp.Rank() {
			out = append(out, r)
		}
	}
	return out
}

// Op names a collective for RunCollective.
type Op string

// Supported collectives.
const (
	OpBarrier   Op = "barrier"
	OpAllreduce Op = "allreduce"
	OpBroadcast Op = "broadcast"
	OpAllgather Op = "allgather"
)

// Config parameterizes RunCollective.
type Config struct {
	Op         Op
	Iterations int
	// Elems/ElemBytes size the allreduce vector; Size sizes broadcast and
	// allgather blocks.
	Elems, ElemBytes int
	Size             int
	ReducePerElem    sim.Time
}

// DefaultConfig returns a small-message, latency-bound configuration.
func DefaultConfig(op Op) Config {
	return Config{
		Op:            op,
		Iterations:    10,
		Elems:         256,
		ElemBytes:     8,
		Size:          4096,
		ReducePerElem: sim.Nanosecond / 2,
	}
}

// RunCollective executes cfg.Iterations of the collective on every rank
// of the cluster and returns the simulated makespan.
func RunCollective(c *motif.Cluster, cfg Config) (sim.Time, error) {
	n := len(c.Transports)
	if n < 2 {
		return 0, fmt.Errorf("collective: need at least 2 ranks")
	}
	if cfg.Iterations <= 0 {
		return 0, fmt.Errorf("collective: non-positive iterations")
	}
	maxMsg := cfg.Size
	if v := cfg.Elems * cfg.ElemBytes; v > maxMsg {
		maxMsg = v
	}
	if maxMsg < 8 {
		maxMsg = 8
	}

	var finished sim.Time
	done := sim.NewGate(c.Eng, n)
	done.Future().OnComplete(func() { finished = c.Eng.Now() })

	tag := c.Tag.Retag("collective")
	for rank := 0; rank < n; rank++ {
		tp := c.Transports[rank]
		tag.Spawn(fmt.Sprintf("coll-r%d", rank), func(p *sim.Process) {
			peers := neighborsAll(tp)
			p.Wait(tp.Prepare(peers, peers, maxMsg))
			for i := 0; i < cfg.Iterations; i++ {
				switch cfg.Op {
				case OpBarrier:
					Barrier(p, tp)
				case OpAllreduce:
					Allreduce(p, tp, cfg.Elems, cfg.ElemBytes, cfg.ReducePerElem)
				case OpBroadcast:
					Broadcast(p, tp, 0, cfg.Size)
					// A barrier keeps iterations from overlapping, so the
					// measured time is per-broadcast, not pipelined.
					Barrier(p, tp)
				case OpAllgather:
					Allgather(p, tp, cfg.Size)
				default:
					panic(fmt.Sprintf("collective: unknown op %q", cfg.Op))
				}
			}
			done.Arrive(c.Eng)
		})
	}
	c.Eng.Run()
	if !done.Future().Done() {
		return 0, fmt.Errorf("collective %s: deadlock", cfg.Op)
	}
	return finished, nil
}
