package collective

import (
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/motif"
	"rvma/internal/sim"
	"rvma/internal/stats"
	"rvma/internal/topology"
)

// run executes a collective on a fresh cluster and returns the makespan.
func run(t *testing.T, kind motif.TransportKind, op Op, ranks int) sim.Time {
	t.Helper()
	topo := topology.NewSingleSwitch(ranks)
	cfg := motif.DefaultClusterConfig(topo, kind)
	cfg.Routing = fabric.RouteAdaptive
	c, err := motif.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tm, err := RunCollective(c, DefaultConfig(op))
	if err != nil {
		t.Fatalf("%s/%v: %v", op, kind, err)
	}
	return tm
}

func TestAllCollectivesCompleteBothTransports(t *testing.T) {
	for _, op := range []Op{OpBarrier, OpAllreduce, OpBroadcast, OpAllgather} {
		for _, kind := range []motif.TransportKind{motif.KindRVMA, motif.KindRDMA} {
			for _, ranks := range []int{2, 7, 8, 16} { // includes non-power-of-two
				if tm := run(t, kind, op, ranks); tm <= 0 {
					t.Fatalf("%s/%v/%d ranks: zero makespan", op, kind, ranks)
				}
			}
		}
	}
}

func TestRVMAWinsCollectives(t *testing.T) {
	for _, op := range []Op{OpBarrier, OpAllreduce, OpBroadcast} {
		rv := run(t, motif.KindRVMA, op, 16)
		rd := run(t, motif.KindRDMA, op, 16)
		sp := stats.Speedup(rd.Seconds(), rv.Seconds())
		if sp <= 1.0 {
			t.Fatalf("%s: RVMA speedup %.2f, want > 1 (latency-bound chains of small messages)", op, sp)
		}
	}
}

func TestBarrierScalesLogarithmically(t *testing.T) {
	// Dissemination barrier rounds grow as ceil(log2 n): time at 16 ranks
	// must be well under 4x the time at 2 ranks (2 ranks = 1 round,
	// 16 ranks = 4 rounds, contention aside).
	t2 := run(t, motif.KindRVMA, OpBarrier, 2)
	t16 := run(t, motif.KindRVMA, OpBarrier, 16)
	if t16 >= 8*t2 {
		t.Fatalf("barrier(16) = %v vs barrier(2) = %v: worse than linear in rounds", t16, t2)
	}
}

func TestSingleRankCollectivesAreFree(t *testing.T) {
	// The collective primitives must no-op at n=1 (RunCollective itself
	// requires 2+, so call the primitives directly).
	topo := topology.NewSingleSwitch(1)
	cfg := motif.DefaultClusterConfig(topo, motif.KindRVMA)
	c, err := motif.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tp := c.Transports[0]
	ran := false
	c.Eng.Spawn("solo", func(p *sim.Process) {
		Barrier(p, tp)
		Allreduce(p, tp, 16, 8, 0)
		Broadcast(p, tp, 0, 64)
		Allgather(p, tp, 64)
		ran = true
	})
	c.Eng.Run()
	if !ran {
		t.Fatal("single-rank collectives blocked")
	}
}

func TestRunCollectiveValidation(t *testing.T) {
	topo := topology.NewSingleSwitch(1)
	c, err := motif.NewCluster(motif.DefaultClusterConfig(topo, motif.KindRVMA))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCollective(c, DefaultConfig(OpBarrier)); err == nil {
		t.Fatal("single-rank RunCollective should error")
	}
	topo2 := topology.NewSingleSwitch(4)
	c2, _ := motif.NewCluster(motif.DefaultClusterConfig(topo2, motif.KindRVMA))
	bad := DefaultConfig(OpBarrier)
	bad.Iterations = 0
	if _, err := RunCollective(c2, bad); err == nil {
		t.Fatal("zero iterations should error")
	}
}

func TestBroadcastNonZeroRoot(t *testing.T) {
	topo := topology.NewSingleSwitch(6)
	cfg := motif.DefaultClusterConfig(topo, motif.KindRVMA)
	c, err := motif.NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	for rank := 0; rank < 6; rank++ {
		tp := c.Transports[rank]
		c.Eng.Spawn("r", func(p *sim.Process) {
			peers := neighborsAll(tp)
			p.Wait(tp.Prepare(peers, peers, 4096))
			Broadcast(p, tp, 3, 4096) // root 3
			done++
		})
	}
	c.Eng.Run()
	if done != 6 {
		t.Fatalf("only %d ranks finished broadcast from root 3", done)
	}
}
