// Package fabric turns a topology into a timed packet network: links with
// bandwidth and latency, switches with finite crossbar bandwidth and
// per-output-port queues, and static, adaptive or Valiant routing.
//
// The model follows the paper's simulation setup (§V-B): switch crossbar
// bandwidth is scaled with link bandwidth ("crossbar bandwidth is always
// 50% greater than link bandwidth"), host injection always keeps the NIC
// fed at line rate, and queue depths are ample so full-queue stalls never
// constrain results. Adaptive routing chooses the least-backlogged
// candidate output port; on dragonfly it may additionally take a one-shot
// Valiant detour when minimal queues are congested (UGAL-style), after
// which the packet routes minimally. Because different packets of one
// message can take different paths, adaptive routing reorders packet
// arrivals — exactly the property that breaks last-byte polling for RDMA
// and that RVMA's offset placement plus threshold counting tolerates.
package fabric

import (
	"fmt"

	"rvma/internal/metrics"
	"rvma/internal/sim"
	"rvma/internal/telemetry"
	"rvma/internal/topology"
	"rvma/internal/trace"
)

// RoutingMode selects how the fabric picks among candidate output ports.
type RoutingMode int

const (
	// RouteStatic always takes the deterministic first candidate. Packet
	// order between one source and destination is preserved end to end,
	// which is the property last-byte polling depends on.
	RouteStatic RoutingMode = iota
	// RouteAdaptive picks the least-backlogged candidate, with a one-shot
	// Valiant detour on topologies that support it. Delivery order is not
	// guaranteed.
	RouteAdaptive
	// RouteValiant always detours through a random intermediate group/path
	// when the topology supports it, then routes minimally.
	RouteValiant
)

// String returns the mode's report name.
func (m RoutingMode) String() string {
	switch m {
	case RouteStatic:
		return "static"
	case RouteAdaptive:
		return "adaptive"
	case RouteValiant:
		return "valiant"
	default:
		return fmt.Sprintf("routing(%d)", int(m))
	}
}

// Ordered reports whether the mode preserves per-flow packet order.
func (m RoutingMode) Ordered() bool { return m == RouteStatic }

// HeaderBytes is the per-packet wire header (route, transport and RVMA/RDMA
// command fields). 64 bytes is in line with Portals/IB header budgets and
// with the paper's observation that an RVMA LUT entry needs 24 bytes of
// addressing state carried per command.
const HeaderBytes = 64

// Config sets the fabric's timing parameters.
type Config struct {
	// LinkGbps is the link data rate in gigabits per second. The paper
	// sweeps 100, 200, 400 and 2000 Gbps.
	LinkGbps float64
	// LinkLatency is the propagation delay of one cable (time of flight +
	// SerDes). ~50 ns for short copper/optical at these scales.
	LinkLatency sim.Time
	// SwitchLatency is the pipeline latency of one switch traversal
	// (arbitration + lookup), paid per hop in addition to crossbar time.
	SwitchLatency sim.Time
	// XbarFactor scales crossbar bandwidth relative to link bandwidth; the
	// paper fixes this at 1.5.
	XbarFactor float64
	// MTU is the maximum packet payload size in bytes.
	MTU int
	// Routing selects static/adaptive/valiant port selection.
	Routing RoutingMode
	// AdaptiveJitter, when positive under non-static routing, scales link
	// latency by a random factor in [1-j, 1+j] to model path-length and
	// congestion variation between alternative routes. It makes packet
	// reordering observable even on lightly loaded networks.
	AdaptiveJitter float64
	// ValiantBias is the backlog advantage (in time) a non-minimal path
	// must offer before an adaptive packet detours. Zero uses one MTU
	// serialization time.
	ValiantBias sim.Time
	// DropRate is a per-packet loss probability in [0, 1] (failure
	// injection; 1 is a total blackout). Real HPC fabrics are lossless in
	// steady state, but the paper's fault-tolerance argument (§IV-F) is
	// about exactly the moments they are not; tests use this to show
	// RVMA's threshold counting never falsely completes a holed buffer,
	// while last-byte polling does. Loss fires at destination ingress
	// after the packet has paid its full path cost (see fault.go), and
	// the drop decision draws from a dedicated RNG stream so routing
	// choices stay identical packet-for-packet whether or not faults are
	// enabled.
	DropRate float64
	// Faults layers burst loss and per-link degradation windows on top of
	// DropRate (the two uniform rates combine by max). Nil injects only
	// DropRate.
	Faults *FaultPlan
}

// DefaultConfig returns the baseline used across experiments: 100 Gbps
// links, 50 ns cables, 100 ns switch pipeline, 1.5x crossbar, 2 KiB MTU.
func DefaultConfig() Config {
	return Config{
		LinkGbps:      100,
		LinkLatency:   50 * sim.Nanosecond,
		SwitchLatency: 100 * sim.Nanosecond,
		XbarFactor:    1.5,
		MTU:           2048,
		Routing:       RouteStatic,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.LinkGbps <= 0 {
		return fmt.Errorf("fabric: link bandwidth must be positive, got %v", c.LinkGbps)
	}
	if c.MTU <= 0 {
		return fmt.Errorf("fabric: MTU must be positive, got %d", c.MTU)
	}
	if c.XbarFactor <= 0 {
		return fmt.Errorf("fabric: crossbar factor must be positive, got %v", c.XbarFactor)
	}
	if c.LinkLatency < 0 || c.SwitchLatency < 0 {
		return fmt.Errorf("fabric: negative latency")
	}
	if c.DropRate < 0 || c.DropRate > 1 {
		return fmt.Errorf("fabric: drop rate %v outside [0, 1]", c.DropRate)
	}
	if err := c.Faults.Validate(); err != nil {
		return err
	}
	return nil
}

// Packet is one wire packet. Payload semantics belong to the NIC protocol
// layers; the fabric only reads Size (payload bytes, excluding header) and
// the addressing fields.
type Packet struct {
	ID      uint64
	Src     int
	Dst     int
	Size    int // payload bytes; HeaderBytes is added on the wire
	Payload any

	// Bookkeeping maintained by the fabric.
	Injected sim.Time
	Hops     int
	// QueueWait accumulates the time this packet spent queued for
	// contended resources (host injection link, switch crossbars, output
	// ports) rather than being serialized or on a cable. The receiving
	// protocol layer reads it to attribute the wire stage's wait
	// component.
	QueueWait sim.Time
	misrouted bool
}

// WireSize returns payload plus header bytes.
func (p *Packet) WireSize() int { return p.Size + HeaderBytes }

// DeliverFunc receives a packet at its destination node at the current
// simulated time.
type DeliverFunc func(pkt *Packet)

// Stats aggregates fabric-level counters for experiment reports.
type Stats struct {
	PacketsInjected  uint64
	PacketsDelivered uint64
	PacketsDropped   uint64
	BytesDelivered   uint64
	BytesDropped     uint64
	TotalHops        uint64
	TotalLatency     sim.Time
	ValiantDetours   uint64
}

// Network is an instantiated fabric over a topology.
type Network struct {
	eng   sim.Tagged
	topo  topology.Topology
	cfg   Config
	hosts []DeliverFunc

	outPorts [][]*sim.Resource // per switch, per port: link transmitter
	xbars    []*sim.Resource   // per switch crossbar
	hostTx   []*sim.Resource   // per node injection link

	nonMin topology.NonMinimalRouter // nil if unsupported

	// Failure injection (see fault.go). faultRNG is a dedicated stream —
	// nil when the effective plan cannot drop — so drop draws never
	// perturb the shared routing/jitter stream. burstLeft counts the
	// remaining forced drops of an in-progress burst, per destination.
	faults    FaultPlan
	faultRNG  *sim.RNG
	burstLeft []int

	nextID uint64
	Stats  Stats
	tracer *trace.Tracer

	// Metric handles, resolved once at SetMetrics; all nil when no registry
	// is attached, so the hot path pays one nil check per hook.
	mLatency  *metrics.Histogram // injection-to-delivery, ns
	mHops     *metrics.Histogram // switch hops per delivered packet
	mDrops    *metrics.Counter
	mDetours  *metrics.Counter
	mTimeline *metrics.Timeline

	// Sharded execution (see shard.go). group == nil is the legacy
	// single-heap mode; everything below is only populated by NewSharded.
	// Per-locus state (a locus is one node or one switch) is written only
	// by the shard that owns the locus, which is what makes the sharded hot
	// path race-free without locks.
	group     *sim.ShardGroup
	tags      []sim.Tagged // per-shard "fabric" tag
	nodeShard []int        // owning shard per node
	swShard   []int        // owning shard per switch
	numLoci   int          // nodes + switches; priority stride
	priCount  []uint64     // events scheduled per locus (unique priorities)
	nextIDs   []uint64     // per-source packet IDs
	swRNG     []*sim.RNG   // per-switch routing/jitter substreams
	hostRNG   []*sim.RNG   // per-node injection-jitter substreams
	faultSh   []*sim.RNG   // per-destination fault substreams
	statsSh   []Stats      // per-shard counters; TotalStats sums them
	msh       []fabMetrics // per-shard metric handles
}

// SetTracer attaches a tracer; packet-level events go to trace.CatPacket
// and aggregate counters/series are kept regardless of enablement. A nil
// tracer detaches.
func (n *Network) SetTracer(t *trace.Tracer) {
	if t != nil && n.group != nil {
		panic("fabric: packet tracing is not supported on a sharded network (trace buffers are single-writer)")
	}
	n.tracer = t
	if t != nil {
		t.DefineSeries("fabric.delivered_bytes", 10*sim.Microsecond)
	}
}

// maxPerSwitchGauges caps per-switch gauge fan-out: beyond this many
// switches the collector only keeps fabric-wide aggregates, so metrics on
// a large topology don't drown the snapshot in per-switch series.
const maxPerSwitchGauges = 64

// SetMetrics attaches a metrics registry. Packet latency and hop-count
// histograms plus drop/detour counters update per event; queue occupancy
// and link utilization are sampled by a collector at snapshot time. A nil
// registry detaches every hook.
func (n *Network) SetMetrics(reg *metrics.Registry) {
	if reg != nil && n.group != nil {
		panic("fabric: use SetMetricsSharded on a sharded network")
	}
	if reg == nil {
		n.mLatency, n.mHops, n.mDrops, n.mDetours, n.mTimeline = nil, nil, nil, nil, nil
		return
	}
	n.mLatency = reg.Histogram("fabric.packet_latency_ns")
	n.mHops = reg.Histogram("fabric.packet_hops")
	n.mDrops = reg.Counter("fabric.packets_dropped")
	n.mDetours = reg.Counter("fabric.valiant_detours")
	n.mTimeline = reg.Timeline()

	perSwitch := n.topo.NumSwitches() <= maxPerSwitchGauges
	reg.AddCollector(func() {
		var busy, uses float64
		var util, maxUtil float64
		links := 0
		for sw := range n.outPorts {
			var backlog sim.Time
			for _, p := range n.outPorts[sw] {
				backlog += p.Backlog(n.eng.Engine)
				u := p.Utilization(n.eng.Engine)
				util += u
				if u > maxUtil {
					maxUtil = u
				}
				busy += p.BusyTime().Nanoseconds()
				uses += float64(p.Uses())
				links++
			}
			if perSwitch {
				reg.Gauge(fmt.Sprintf("fabric.sw%d.queue_ns", sw)).Set(backlog.Nanoseconds())
			}
		}
		if links > 0 {
			reg.Gauge("fabric.link_util_mean").Set(util / float64(links))
			reg.Gauge("fabric.link_util_max").Set(maxUtil)
			reg.Gauge("fabric.link_busy_ns_total").Set(busy)
			reg.Gauge("fabric.link_uses_total").Set(uses)
		}
		var hostUtil float64
		for _, h := range n.hostTx {
			hostUtil += h.Utilization(n.eng.Engine)
		}
		if len(n.hostTx) > 0 {
			reg.Gauge("fabric.host_tx_util_mean").Set(hostUtil / float64(len(n.hostTx)))
		}
	})
}

// TelemetryHeatmapPrefix selects the per-switch utilization columns the
// congestion heatmap is built from (Sampler.WriteHeatmapCSV prefix).
const TelemetryHeatmapPrefix = "fabric.util.sw"

// RegisterTelemetry registers the fabric's time-series probes on s:
// fabric-wide output-queue depth and link-utilization aggregates always,
// plus — up to the same per-switch cap the metrics collector uses — one
// windowed-utilization and one queue-depth column per switch. Per-switch
// utilization is computed over the sample window (busy-time delta divided
// by elapsed time, averaged over the switch's ports), which is what a
// congestion heatmap wants; the window state lives in the probe closures,
// never in model state.
func (n *Network) RegisterTelemetry(s *telemetry.Sampler) {
	if s == nil {
		return
	}
	if n.group != nil {
		panic("fabric: use RegisterTelemetrySharded on a sharded network")
	}
	s.Register("fabric.queue_ns_total", func() float64 {
		var backlog sim.Time
		for sw := range n.outPorts {
			for _, p := range n.outPorts[sw] {
				backlog += p.Backlog(n.eng.Engine)
			}
		}
		return backlog.Nanoseconds()
	})
	s.Register("fabric.queue_ns_max", func() float64 {
		var worst sim.Time
		for sw := range n.outPorts {
			for _, p := range n.outPorts[sw] {
				if b := p.Backlog(n.eng.Engine); b > worst {
					worst = b
				}
			}
		}
		return worst.Nanoseconds()
	})
	s.Register("fabric.packets_delivered", func() float64 {
		return float64(n.Stats.PacketsDelivered)
	})
	s.Register("fabric.valiant_detours", func() float64 {
		return float64(n.Stats.ValiantDetours)
	})
	if len(n.outPorts) > maxPerSwitchGauges {
		return
	}
	for sw := range n.outPorts {
		ports := n.outPorts[sw]
		s.Register(fmt.Sprintf("fabric.queue_ns.sw%03d", sw), func() float64 {
			var backlog sim.Time
			for _, p := range ports {
				backlog += p.Backlog(n.eng.Engine)
			}
			return backlog.Nanoseconds()
		})
		var prevBusy, prevAt sim.Time
		s.Register(fmt.Sprintf("%s%03d", TelemetryHeatmapPrefix, sw), func() float64 {
			var busy sim.Time
			for _, p := range ports {
				busy += p.BusyTime()
			}
			now := n.eng.Now()
			dt, db := now-prevAt, busy-prevBusy
			prevBusy, prevAt = busy, now
			if dt <= 0 || len(ports) == 0 {
				return 0
			}
			return sim.Ratio(db, dt) / float64(len(ports))
		})
	}
}

// New builds a network over topo with the given config.
func New(eng *sim.Engine, topo topology.Topology, cfg Config) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := &Network{
		eng:   eng.Tag("fabric"),
		topo:  topo,
		cfg:   cfg,
		hosts: make([]DeliverFunc, topo.NumNodes()),
	}
	n.outPorts = make([][]*sim.Resource, topo.NumSwitches())
	n.xbars = make([]*sim.Resource, topo.NumSwitches())
	for sw := 0; sw < topo.NumSwitches(); sw++ {
		ports := topo.Ports(sw)
		n.outPorts[sw] = make([]*sim.Resource, len(ports))
		for pi := range ports {
			n.outPorts[sw][pi] = sim.NewResource(fmt.Sprintf("sw%d.p%d", sw, pi))
		}
		n.xbars[sw] = sim.NewResource(fmt.Sprintf("sw%d.xbar", sw))
	}
	n.hostTx = make([]*sim.Resource, topo.NumNodes())
	for i := range n.hostTx {
		n.hostTx[i] = sim.NewResource(fmt.Sprintf("host%d.tx", i))
	}
	n.nonMin, _ = topo.(topology.NonMinimalRouter)
	n.faults = cfg.effectivePlan()
	if n.faults.Enabled() {
		// Seed the fault stream with one draw from the shared stream:
		// deterministic for a given engine seed, and fault-free runs stay
		// byte-identical with builds that predate fault injection.
		n.faultRNG = sim.NewRNG(eng.RNG().Uint64())
		n.burstLeft = make([]int, topo.NumNodes())
	}
	return n, nil
}

// Engine returns the engine the network runs on.
func (n *Network) Engine() *sim.Engine { return n.eng.Engine }

// Topology returns the underlying topology.
func (n *Network) Topology() topology.Topology { return n.topo }

// Config returns the fabric configuration.
func (n *Network) Config() Config { return n.cfg }

// MTU returns the maximum payload per packet.
func (n *Network) MTU() int { return n.cfg.MTU }

// AttachHost registers the delivery callback for node's NIC. Each node must
// attach exactly once before receiving traffic.
func (n *Network) AttachHost(node int, fn DeliverFunc) {
	if n.hosts[node] != nil {
		panic(fmt.Sprintf("fabric: node %d attached twice", node))
	}
	n.hosts[node] = fn
}

// Inject hands a packet to node src's injection link at the current time.
// The packet serializes onto the host link (which always runs at line rate,
// per the paper's host-bus assumption), then traverses the fabric. In
// sharded mode the caller must be executing on the source node's shard
// (NICs are constructed on their node's shard engine, so this holds by
// construction).
func (n *Network) Inject(pkt *Packet) {
	if pkt.Src < 0 || pkt.Src >= len(n.hostTx) || pkt.Dst < 0 || pkt.Dst >= len(n.hosts) {
		panic(fmt.Sprintf("fabric: inject with bad endpoints src=%d dst=%d", pkt.Src, pkt.Dst))
	}
	e, shard := n.nodeCtx(pkt.Src)
	rng := n.eng.RNG()
	if n.group != nil {
		// Per-source IDs and a per-node jitter substream keep both a pure
		// function of the node's own history, independent of partitioning.
		pkt.ID = n.nextIDs[pkt.Src]
		n.nextIDs[pkt.Src]++
		rng = n.hostRNG[pkt.Src]
	} else {
		pkt.ID = n.nextID
		n.nextID++
	}
	now := e.Now()
	pkt.Injected = now
	n.statsAt(shard).PacketsInjected++
	if n.tracer != nil {
		n.tracer.Count("fabric.packets_injected", 1)
		n.tracer.Eventf(trace.CatPacket, "inject #%d %d->%d %dB", pkt.ID, pkt.Src, pkt.Dst, pkt.Size)
	}

	ser := sim.SerializationTime(pkt.WireSize(), n.cfg.LinkGbps)
	txDone := n.hostTx[pkt.Src].AcquireAt(now, ser)
	pkt.QueueWait += txDone - now - ser
	arrive := txDone + n.linkDelayFrom(rng)
	sw, _ := n.topo.HostPort(pkt.Src)
	n.sched(shard, n.nodeLocus(pkt.Src), n.switchShard(sw), arrive, func() { n.atSwitch(sw, pkt) })
}

// MaxQueueBacklog returns the largest backlog any switch output port
// holds at the current time — the attribution layer samples it as the
// "switch congestion right now" context for tail operations.
func (n *Network) MaxQueueBacklog() sim.Time {
	var max sim.Time
	for _, ports := range n.outPorts {
		for _, p := range ports {
			if b := p.Backlog(n.eng.Engine); b > max {
				max = b
			}
		}
	}
	return max
}

// linkDelayFrom returns the (possibly jittered) cable latency for one hop,
// drawing from rng — the shared engine stream in legacy mode, the sending
// locus's substream in sharded mode.
func (n *Network) linkDelayFrom(rng *sim.RNG) sim.Time {
	d := n.cfg.LinkLatency
	if n.cfg.AdaptiveJitter > 0 && n.cfg.Routing != RouteStatic {
		d = rng.Jitter(d, n.cfg.AdaptiveJitter)
	}
	return d
}

// atSwitch processes a packet's arrival at switch sw at the current time:
// route selection, crossbar transit, output serialization, link traversal.
// In sharded mode it executes on the switch's owning shard.
func (n *Network) atSwitch(sw int, pkt *Packet) {
	e, shard := n.swCtx(sw)
	pkt.Hops++
	if sim.DebugEnabled {
		n.debugCheckHop(e, sw, pkt)
	}
	rng := n.eng.RNG()
	if n.group != nil {
		rng = n.swRNG[sw]
	}
	outPort := n.selectPort(e, shard, rng, sw, pkt)
	ports := n.topo.Ports(sw)
	port := ports[outPort]

	now := e.Now()
	xbarHold := sim.SerializationTime(pkt.WireSize(), n.cfg.LinkGbps*n.cfg.XbarFactor)
	xbarDone := n.xbars[sw].AcquireAt(now, xbarHold)
	ser := sim.SerializationTime(pkt.WireSize(), n.cfg.LinkGbps)
	txDone := n.outPorts[sw][outPort].AcquireAt(xbarDone+n.cfg.SwitchLatency, ser)
	pkt.QueueWait += (xbarDone - now - xbarHold) + (txDone - xbarDone - n.cfg.SwitchLatency - ser)
	arrive := txDone + n.linkDelayFrom(rng)

	switch port.Kind {
	case topology.HostPort:
		n.sched(shard, n.switchLocus(sw), n.nodeShardOf(port.Node), arrive, func() { n.deliver(port.Node, pkt) })
	case topology.SwitchPort:
		peer := port.PeerSwitch
		n.sched(shard, n.switchLocus(sw), n.switchShard(peer), arrive, func() { n.atSwitch(peer, pkt) })
	default:
		panic(fmt.Sprintf("fabric: routed to unused port %d of switch %d", outPort, sw))
	}
}

// selectPort applies the routing mode to the candidate set. e is the
// engine executing switch sw and rng the stream routing draws come from.
func (n *Network) selectPort(e *sim.Engine, shard int, rng *sim.RNG, sw int, pkt *Packet) int {
	cands := n.topo.Candidates(sw, pkt.Dst, nil)
	if len(cands) == 0 {
		panic(fmt.Sprintf("fabric: no route from switch %d to node %d", sw, pkt.Dst))
	}
	switch n.cfg.Routing {
	case RouteStatic:
		return cands[0]
	case RouteValiant:
		if !pkt.misrouted && n.nonMin != nil {
			if nm := n.nonMin.NonMinimalCandidates(sw, pkt.Dst, nil); len(nm) > 0 {
				pkt.misrouted = true
				n.statsAt(shard).ValiantDetours++
				n.detoursAt(shard).Add(1)
				return nm[rng.Intn(len(nm))]
			}
		}
		pkt.misrouted = true // minimal from here on
		return n.leastBacklogged(e, sw, cands)
	case RouteAdaptive:
		best := n.leastBacklogged(e, sw, cands)
		if !pkt.misrouted && n.nonMin != nil {
			bias := n.cfg.ValiantBias
			if bias == 0 {
				bias = sim.SerializationTime(n.cfg.MTU+HeaderBytes, n.cfg.LinkGbps)
			}
			minBacklog := n.outPorts[sw][best].Backlog(e)
			if minBacklog > bias {
				if nm := n.nonMin.NonMinimalCandidates(sw, pkt.Dst, nil); len(nm) > 0 {
					alt := n.leastBacklogged(e, sw, nm)
					// UGAL: detour when twice the non-minimal backlog still
					// beats the minimal backlog.
					if 2*n.outPorts[sw][alt].Backlog(e)+bias < minBacklog {
						pkt.misrouted = true
						n.statsAt(shard).ValiantDetours++
						n.detoursAt(shard).Add(1)
						n.mTimeline.Instant(pkt.Src, "fabric", "detour", e.Now())
						if n.tracer != nil {
							n.tracer.Count("fabric.valiant_detours", 1)
							n.tracer.Eventf(trace.CatPacket, "detour #%d at sw%d", pkt.ID, sw)
						}
						return alt
					}
				}
			}
		}
		return best
	default:
		panic("fabric: unknown routing mode")
	}
}

// leastBacklogged returns the candidate whose output queue frees soonest,
// breaking ties in favor of the earliest candidate (keeping selection
// deterministic for a given simulation state).
func (n *Network) leastBacklogged(e *sim.Engine, sw int, cands []int) int {
	best := cands[0]
	bestBacklog := n.outPorts[sw][best].Backlog(e)
	for _, c := range cands[1:] {
		if b := n.outPorts[sw][c].Backlog(e); b < bestBacklog {
			best, bestBacklog = c, b
		}
	}
	return best
}

// deliver hands the packet to the destination host at the current time,
// unless failure injection claims it. Drops fire here — at destination
// ingress, after the packet consumed its full path budget of injection
// serialization, crossbar time, output queues and link hops — modeling a
// receiver-side CRC discard. A dropped packet therefore still congests
// the fabric and still influences adaptive-routing backlogs exactly as a
// delivered one; what changed from earlier builds is that the drop draw
// comes from the dedicated fault stream, so loss sweeps no longer shift
// the routing RNG and skew detour decisions for surviving packets.
func (n *Network) deliver(node int, pkt *Packet) {
	e, shard := n.nodeCtx(node)
	fn := n.hosts[node]
	if fn == nil {
		panic(fmt.Sprintf("fabric: packet for unattached node %d", node))
	}
	fRNG := n.faultRNG
	if n.group != nil && n.faultSh != nil {
		fRNG = n.faultSh[node]
	}
	st := n.statsAt(shard)
	if fRNG != nil && n.dropPacket(node, e, fRNG) {
		st.PacketsDropped++
		st.BytesDropped += uint64(pkt.Size)
		n.dropsAt(shard).Add(1)
		n.mTimeline.Instant(node, "fabric", "drop", e.Now())
		if n.tracer != nil {
			n.tracer.Count("fabric.packets_dropped", 1)
			n.tracer.Eventf(trace.CatPacket, "DROP #%d for node %d", pkt.ID, node)
		}
		return
	}
	st.PacketsDelivered++
	st.BytesDelivered += uint64(pkt.Size)
	if sim.DebugEnabled {
		n.debugCheckDeliver(e, pkt)
	}
	st.TotalHops += uint64(pkt.Hops)
	st.TotalLatency += e.Now() - pkt.Injected
	mm := n.metricsAt(shard)
	mm.latency.ObserveTime(e.Now() - pkt.Injected)
	mm.hops.Observe(float64(pkt.Hops))
	if n.tracer != nil {
		n.tracer.Count("fabric.packets_delivered", 1)
		n.tracer.Add("fabric.delivered_bytes", float64(pkt.Size))
		n.tracer.Eventf(trace.CatPacket, "deliver #%d at node %d after %d hops", pkt.ID, node, pkt.Hops)
	}
	fn(pkt)
}

// MeanPacketLatency returns the average injection-to-delivery latency.
func (n *Network) MeanPacketLatency() sim.Time {
	s := n.TotalStats()
	if s.PacketsDelivered == 0 {
		return 0
	}
	return s.TotalLatency / sim.Time(s.PacketsDelivered)
}

// MeanHops returns the average switch hops per delivered packet.
func (n *Network) MeanHops() float64 {
	s := n.TotalStats()
	if s.PacketsDelivered == 0 {
		return 0
	}
	return float64(s.TotalHops) / float64(s.PacketsDelivered)
}
