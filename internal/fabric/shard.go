// Sharded fabric construction: the same packet network, partitioned
// across a sim.ShardGroup so independent regions of the topology execute
// concurrently.
//
// The partitioning rules exist to keep the sharded run byte-identical to
// its shards=1 twin:
//
//   - Every locus (one node or one switch) is owned by exactly one shard,
//     and every piece of mutable fabric state — resource queues, RNG
//     substreams, priority counters, packet-ID counters, per-shard stats —
//     is touched only by its owner's window. No locks, no atomics, no
//     races.
//   - Every fabric-scheduled event carries a priority unique to its
//     sending locus (pri = -(1 + count*numLoci + locus)), so cross-shard
//     handoffs can never tie with any other event at the same timestamp:
//     heap order, and therefore execution order, is a pure function of
//     model state, independent of the shard count.
//   - Random draws come from per-locus substreams derived with
//     sim.SeedFor, so a switch's jitter sequence depends on the packets
//     that switch saw, not on global execution order.
//
// Cross-shard posts are always at least one link delay in the future,
// which is exactly the group's lookahead (LookaheadFor), so conservative
// synchronization never stalls a legal event.
package fabric

import (
	"fmt"

	"rvma/internal/metrics"
	"rvma/internal/sim"
	"rvma/internal/telemetry"
	"rvma/internal/topology"
)

// fabMetrics is one shard's set of per-event metric handles. All handles
// are nil-safe, so an unattached registry costs one nil check per hook,
// same as the legacy path.
type fabMetrics struct {
	latency *metrics.Histogram
	hops    *metrics.Histogram
	drops   *metrics.Counter
	detours *metrics.Counter
}

// LookaheadFor returns the minimum simulated time any packet spends on a
// cable under cfg — the conservative synchronization window a sharded run
// of this fabric can use. Static routing never jitters, so the window is
// the full link latency; jittered routing can shrink a hop to
// ScaleF(latency, 1-jitter) (the exact floor of sim.RNG.Jitter). An error
// means the configuration leaves no usable window (e.g. jitter >= 1).
func LookaheadFor(cfg Config) (sim.Time, error) {
	la := cfg.LinkLatency
	if cfg.AdaptiveJitter > 0 && cfg.Routing != RouteStatic {
		la = sim.ScaleF(cfg.LinkLatency, 1-cfg.AdaptiveJitter)
	}
	if la < 1 {
		return 0, fmt.Errorf("fabric: config leaves no sharding lookahead (link latency %v, jitter %v); need a positive minimum link delay",
			cfg.LinkLatency, cfg.AdaptiveJitter)
	}
	return la, nil
}

// NewSharded builds a network over topo that executes on the shard group
// g. seed feeds the per-locus RNG substreams (pass the same model seed the
// group was built from; the substreams are derived, never shared, so the
// draw sequences are identical at any shard count). The group's lookahead
// must not exceed LookaheadFor(cfg), or conservative synchronization would
// be unsound.
func NewSharded(g *sim.ShardGroup, topo topology.Topology, cfg Config, seed uint64) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	la, err := LookaheadFor(cfg)
	if err != nil {
		return nil, err
	}
	if g.Lookahead() > la {
		return nil, fmt.Errorf("fabric: shard group lookahead %v exceeds minimum link delay %v", g.Lookahead(), la)
	}
	nodes, switches := topo.NumNodes(), topo.NumSwitches()
	n := &Network{
		eng:   g.Shard(0).Tag("fabric"),
		topo:  topo,
		cfg:   cfg,
		hosts: make([]DeliverFunc, nodes),
		group: g,
	}
	n.outPorts = make([][]*sim.Resource, switches)
	n.xbars = make([]*sim.Resource, switches)
	for sw := 0; sw < switches; sw++ {
		ports := topo.Ports(sw)
		n.outPorts[sw] = make([]*sim.Resource, len(ports))
		for pi := range ports {
			n.outPorts[sw][pi] = sim.NewResource(fmt.Sprintf("sw%d.p%d", sw, pi))
		}
		n.xbars[sw] = sim.NewResource(fmt.Sprintf("sw%d.xbar", sw))
	}
	n.hostTx = make([]*sim.Resource, nodes)
	for i := range n.hostTx {
		n.hostTx[i] = sim.NewResource(fmt.Sprintf("host%d.tx", i))
	}
	n.nonMin, _ = topo.(topology.NonMinimalRouter)

	n.tags = make([]sim.Tagged, g.Shards())
	for i := range n.tags {
		n.tags[i] = g.Shard(i).Tag("fabric")
	}
	n.nodeShard, n.swShard = shardPlan(topo, g.Shards())
	n.numLoci = nodes + switches
	n.priCount = make([]uint64, n.numLoci)
	n.nextIDs = make([]uint64, nodes)

	n.swRNG = make([]*sim.RNG, switches)
	for sw := range n.swRNG {
		n.swRNG[sw] = sim.NewRNG(sim.SeedFor(seed, "fabric-switch", sw))
	}
	n.hostRNG = make([]*sim.RNG, nodes)
	for i := range n.hostRNG {
		n.hostRNG[i] = sim.NewRNG(sim.SeedFor(seed, "fabric-host", i))
	}
	n.faults = cfg.effectivePlan()
	if n.faults.Enabled() {
		n.faultSh = make([]*sim.RNG, nodes)
		for i := range n.faultSh {
			n.faultSh[i] = sim.NewRNG(sim.SeedFor(seed, "fabric-fault", i))
		}
		n.burstLeft = make([]int, nodes)
	}
	n.statsSh = make([]Stats, g.Shards())
	return n, nil
}

// shardPlan assigns loci to shards: nodes in contiguous rank blocks
// (node*k/nodes, matching how motifs lay communication out), and each
// switch with attached hosts to the shard of its lowest-numbered host —
// keeping a node's first/last hop on its own shard so only inter-switch
// hops cross. Hostless (spine) switches spread evenly.
func shardPlan(topo topology.Topology, k int) (nodeShard, swShard []int) {
	nodes, switches := topo.NumNodes(), topo.NumSwitches()
	nodeShard = make([]int, nodes)
	for i := range nodeShard {
		nodeShard[i] = i * k / nodes
	}
	swShard = make([]int, switches)
	for sw := 0; sw < switches; sw++ {
		host := -1
		for _, p := range topo.Ports(sw) {
			if p.Kind == topology.HostPort && (host == -1 || p.Node < host) {
				host = p.Node
			}
		}
		if host >= 0 {
			swShard[sw] = nodeShard[host]
		} else {
			swShard[sw] = sw * k / switches
		}
	}
	return nodeShard, swShard
}

// Sharded reports whether the network executes on a shard group.
func (n *Network) Sharded() bool { return n.group != nil }

// Group returns the shard group, or nil in legacy single-heap mode.
func (n *Network) Group() *sim.ShardGroup { return n.group }

// NodeShard returns the shard owning node's locus (0 in legacy mode).
// Higher layers use it to place per-node components (NIC, endpoints) on
// the engine that will execute their events.
func (n *Network) NodeShard(node int) int {
	if n.group == nil {
		return 0
	}
	return n.nodeShard[node]
}

// nodeCtx returns the engine and shard executing node-side events.
func (n *Network) nodeCtx(node int) (*sim.Engine, int) {
	if n.group == nil {
		return n.eng.Engine, 0
	}
	s := n.nodeShard[node]
	return n.group.Shard(s), s
}

// swCtx returns the engine and shard executing switch sw's events.
func (n *Network) swCtx(sw int) (*sim.Engine, int) {
	if n.group == nil {
		return n.eng.Engine, 0
	}
	s := n.swShard[sw]
	return n.group.Shard(s), s
}

func (n *Network) nodeShardOf(node int) int {
	if n.group == nil {
		return 0
	}
	return n.nodeShard[node]
}

func (n *Network) switchShard(sw int) int {
	if n.group == nil {
		return 0
	}
	return n.swShard[sw]
}

// nodeLocus and switchLocus map components onto the unique-priority index
// space: nodes first, then switches.
func (n *Network) nodeLocus(node int) int { return node }
func (n *Network) switchLocus(sw int) int { return len(n.hosts) + sw }

// sched books fn at absolute time at on dstShard, on behalf of srcLocus
// (whose owner srcShard must be the currently executing shard). Legacy
// mode schedules on the single engine with default priority — unchanged
// event stream. Sharded mode allocates a locus-unique negative priority so
// the event can never tie with another at the same timestamp, which is
// what makes the merged execution order independent of the shard count.
func (n *Network) sched(srcShard, srcLocus, dstShard int, at sim.Time, fn func()) {
	if n.group == nil {
		n.eng.At(at, fn)
		return
	}
	pri := -(1 + int(n.priCount[srcLocus])*n.numLoci + srcLocus)
	n.priCount[srcLocus]++
	if srcShard == dstShard {
		n.tags[dstShard].AtP(at, pri, fn)
		return
	}
	n.group.Post(srcShard, dstShard, at, pri, n.tags[dstShard].Label(), fn)
}

// statsAt returns the counter block the given shard may write.
func (n *Network) statsAt(shard int) *Stats {
	if n.group == nil {
		return &n.Stats
	}
	return &n.statsSh[shard]
}

// TotalStats aggregates fabric counters across shards; in legacy mode it
// returns the single Stats block. In sharded mode call it only while the
// group is quiescent (before Run or after it returns).
func (n *Network) TotalStats() Stats {
	if n.group == nil {
		return n.Stats
	}
	var t Stats
	for i := range n.statsSh {
		s := &n.statsSh[i]
		t.PacketsInjected += s.PacketsInjected
		t.PacketsDelivered += s.PacketsDelivered
		t.PacketsDropped += s.PacketsDropped
		t.BytesDelivered += s.BytesDelivered
		t.BytesDropped += s.BytesDropped
		t.TotalHops += s.TotalHops
		t.TotalLatency += s.TotalLatency
		t.ValiantDetours += s.ValiantDetours
	}
	return t
}

func (n *Network) metricsAt(shard int) fabMetrics {
	if n.msh == nil {
		return fabMetrics{latency: n.mLatency, hops: n.mHops, drops: n.mDrops, detours: n.mDetours}
	}
	return n.msh[shard]
}

func (n *Network) dropsAt(shard int) *metrics.Counter {
	if n.msh == nil {
		return n.mDrops
	}
	return n.msh[shard].drops
}

func (n *Network) detoursAt(shard int) *metrics.Counter {
	if n.msh == nil {
		return n.mDetours
	}
	return n.msh[shard].detours
}

// SetMetricsSharded attaches per-shard registries for the per-event
// handles (latency/hops histograms, drop/detour counters — each shard
// writes only its own, and the harness merges registries after the run)
// plus snapshot-time aggregate collectors on primary. The aggregate
// collectors read resource state directly, which is only safe while the
// group is quiescent — exactly when metrics snapshots are taken.
func (n *Network) SetMetricsSharded(primary *metrics.Registry, shards []*metrics.Registry) {
	if n.group == nil {
		panic("fabric: SetMetricsSharded on a single-heap network")
	}
	if len(shards) != n.group.Shards() {
		panic(fmt.Sprintf("fabric: %d shard registries for %d shards", len(shards), n.group.Shards()))
	}
	n.msh = make([]fabMetrics, len(shards))
	for i, reg := range shards {
		n.msh[i] = fabMetrics{
			latency: reg.Histogram("fabric.packet_latency_ns"),
			hops:    reg.Histogram("fabric.packet_hops"),
			drops:   reg.Counter("fabric.packets_dropped"),
			detours: reg.Counter("fabric.valiant_detours"),
		}
	}
	e := n.eng.Engine // clocks are synchronized whenever collectors run
	perSwitch := n.topo.NumSwitches() <= maxPerSwitchGauges
	primary.AddCollector(func() {
		var busy, uses float64
		var util, maxUtil float64
		links := 0
		for sw := range n.outPorts {
			var backlog sim.Time
			for _, p := range n.outPorts[sw] {
				backlog += p.Backlog(e)
				u := p.Utilization(e)
				util += u
				if u > maxUtil {
					maxUtil = u
				}
				busy += p.BusyTime().Nanoseconds()
				uses += float64(p.Uses())
				links++
			}
			if perSwitch {
				primary.Gauge(fmt.Sprintf("fabric.sw%d.queue_ns", sw)).Set(backlog.Nanoseconds())
			}
		}
		if links > 0 {
			primary.Gauge("fabric.link_util_mean").Set(util / float64(links))
			primary.Gauge("fabric.link_util_max").Set(maxUtil)
			primary.Gauge("fabric.link_busy_ns_total").Set(busy)
			primary.Gauge("fabric.link_uses_total").Set(uses)
		}
		var hostUtil float64
		for _, h := range n.hostTx {
			hostUtil += h.Utilization(e)
		}
		if len(n.hostTx) > 0 {
			primary.Gauge("fabric.host_tx_util_mean").Set(hostUtil / float64(len(n.hostTx)))
		}
	})
}

// RegisterTelemetrySharded registers the fabric's probes on a shard set.
// Cross-shard columns are declared with a merge kind (integer-sum in
// picoseconds for backlog, plain sum for counters, max for the worst
// queue) so the merged CSV is byte-identical to what a shards=1 run
// writes; per-switch columns live on the switch's owning shard only.
func (n *Network) RegisterTelemetrySharded(ss *telemetry.ShardSet) {
	if n.group == nil {
		panic("fabric: RegisterTelemetrySharded on a single-heap network")
	}
	if ss == nil {
		return
	}
	swByShard := make([][]int, n.group.Shards())
	for sw, s := range n.swShard {
		swByShard[s] = append(swByShard[s], sw)
	}
	ss.Register("fabric.queue_ns_total", telemetry.KindSumPS, func(shard int) float64 {
		e := n.group.Shard(shard)
		var backlog sim.Time
		for _, sw := range swByShard[shard] {
			for _, p := range n.outPorts[sw] {
				backlog += p.Backlog(e)
			}
		}
		return backlog.Picoseconds()
	})
	ss.Register("fabric.queue_ns_max", telemetry.KindMax, func(shard int) float64 {
		e := n.group.Shard(shard)
		var worst sim.Time
		for _, sw := range swByShard[shard] {
			for _, p := range n.outPorts[sw] {
				if b := p.Backlog(e); b > worst {
					worst = b
				}
			}
		}
		return worst.Nanoseconds()
	})
	ss.Register("fabric.packets_delivered", telemetry.KindSum, func(shard int) float64 {
		return float64(n.statsSh[shard].PacketsDelivered)
	})
	ss.Register("fabric.valiant_detours", telemetry.KindSum, func(shard int) float64 {
		return float64(n.statsSh[shard].ValiantDetours)
	})
	if n.topo.NumSwitches() > maxPerSwitchGauges {
		return
	}
	for sw := range n.outPorts {
		sw := sw
		ports := n.outPorts[sw]
		owner := n.swShard[sw]
		e := n.group.Shard(owner)
		ss.RegisterLocal(fmt.Sprintf("fabric.queue_ns.sw%03d", sw), owner, func() float64 {
			var backlog sim.Time
			for _, p := range ports {
				backlog += p.Backlog(e)
			}
			return backlog.Nanoseconds()
		})
		var prevBusy, prevAt sim.Time
		ss.RegisterLocal(fmt.Sprintf("%s%03d", TelemetryHeatmapPrefix, sw), owner, func() float64 {
			var busy sim.Time
			for _, p := range ports {
				busy += p.BusyTime()
			}
			now := e.Now()
			dt, db := now-prevAt, busy-prevBusy
			prevBusy, prevAt = busy, now
			if dt <= 0 || len(ports) == 0 {
				return 0
			}
			return sim.Ratio(db, dt) / float64(len(ports))
		})
	}
}
