package fabric

import (
	"testing"

	"rvma/internal/sim"
	"rvma/internal/topology"
)

func TestParseFaultPlan(t *testing.T) {
	cases := []struct {
		in   string
		want FaultPlan
	}{
		{"drop=0.05", FaultPlan{DropRate: 0.05}},
		{"drop=0.1,burst=4", FaultPlan{DropRate: 0.1, BurstLen: 4}},
		{"window=3:10us:20us:0.5", FaultPlan{
			Windows: []FaultWindow{{Node: 3, From: 10 * sim.Microsecond, To: 20 * sim.Microsecond, DropRate: 0.5}},
		}},
		{"drop=0.01,window=all:1ms:2ms:1", FaultPlan{
			DropRate: 0.01,
			Windows:  []FaultWindow{{Node: -1, From: sim.Millisecond, To: 2 * sim.Millisecond, DropRate: 1}},
		}},
	}
	for _, c := range cases {
		got, err := ParseFaultPlan(c.in)
		if err != nil {
			t.Fatalf("%q: %v", c.in, err)
		}
		if got.DropRate != c.want.DropRate || got.BurstLen != c.want.BurstLen ||
			len(got.Windows) != len(c.want.Windows) {
			t.Fatalf("%q -> %+v, want %+v", c.in, got, c.want)
		}
		for i, w := range got.Windows {
			if w != c.want.Windows[i] {
				t.Fatalf("%q window %d = %+v, want %+v", c.in, i, w, c.want.Windows[i])
			}
		}
	}
	if p, err := ParseFaultPlan(""); err != nil || p != nil {
		t.Fatalf("empty spec -> (%v, %v), want (nil, nil)", p, err)
	}
	for _, bad := range []string{"drop=1.5", "drop=x", "burst=-1", "window=3:10us:5us:0.5", "window=3:10us", "frob=1"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Fatalf("%q parsed without error", bad)
		}
	}
}

func TestFaultPlanValidate(t *testing.T) {
	good := []*FaultPlan{
		nil,
		{},
		{DropRate: 1}, // total blackout is a legal plan
		{DropRate: 0.5, BurstLen: 3},
		{Windows: []FaultWindow{{Node: -1, From: 0, To: sim.Second, DropRate: 1}}},
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
	}
	bad := []*FaultPlan{
		{DropRate: -0.1},
		{DropRate: 1.1},
		{BurstLen: -1},
		{Windows: []FaultWindow{{Node: -2, DropRate: 0.5}}},
		{Windows: []FaultWindow{{Node: 0, From: 2, To: 1, DropRate: 0.5}}},
		{Windows: []FaultWindow{{Node: 0, From: 0, To: 1, DropRate: 2}}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("%+v validated", p)
		}
	}
}

// sendPackets pushes n single-packet messages 0 -> 1 and returns the
// network after the run.
func sendPackets(t *testing.T, cfg Config, n int, seed uint64) *Network {
	t.Helper()
	eng := sim.NewEngine(seed)
	net, err := New(eng, topology.NewSingleSwitch(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	net.AttachHost(0, func(*Packet) {})
	net.AttachHost(1, func(*Packet) {})
	for i := 0; i < n; i++ {
		pkt := &Packet{Src: 0, Dst: 1, Size: 256}
		eng.Schedule(sim.Time(i)*sim.Microsecond, func() { net.Inject(pkt) })
	}
	eng.Run()
	return net
}

func TestBlackoutDropsEverything(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = &FaultPlan{DropRate: 1}
	net := sendPackets(t, cfg, 50, 1)
	if net.Stats.PacketsDropped != 50 {
		t.Fatalf("dropped %d of 50 under blackout", net.Stats.PacketsDropped)
	}
	if net.Stats.BytesDropped != 50*256 {
		t.Fatalf("bytes dropped = %d, want %d", net.Stats.BytesDropped, 50*256)
	}
}

func TestBurstLossDropsRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = &FaultPlan{DropRate: 0.05, BurstLen: 4}
	net := sendPackets(t, cfg, 400, 3)
	d := net.Stats.PacketsDropped
	if d == 0 {
		t.Fatal("burst plan dropped nothing")
	}
	// Every loss event consumes a whole burst (no later draw can cut one
	// short on a steady single-destination stream), so the drop count is a
	// multiple of the burst length.
	if d%4 != 0 {
		t.Fatalf("dropped %d, want a multiple of burst length 4", d)
	}
}

func TestDegradationWindowOnlyDropsInside(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = &FaultPlan{Windows: []FaultWindow{{
		Node: 1, From: 100 * sim.Microsecond, To: 200 * sim.Microsecond, DropRate: 1,
	}}}
	// 400 packets injected 1 us apart: those delivered inside the window
	// all die, everything outside survives.
	net := sendPackets(t, cfg, 400, 1)
	d := net.Stats.PacketsDropped
	if d == 0 || d > 110 {
		t.Fatalf("dropped %d, want roughly the ~100 packets delivered inside the window", d)
	}
}

func TestWindowOnOtherNodeIsHarmless(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = &FaultPlan{Windows: []FaultWindow{{
		Node: 0, From: 0, To: sim.Second, DropRate: 1, // traffic goes to node 1
	}}}
	net := sendPackets(t, cfg, 100, 1)
	if net.Stats.PacketsDropped != 0 {
		t.Fatalf("dropped %d packets destined to an unaffected node", net.Stats.PacketsDropped)
	}
}

// TestFaultFreeRunsUnperturbed: enabling the faults plumbing with an
// all-zero plan must not consume engine RNG draws or change delivery.
func TestFaultFreeRunsUnperturbed(t *testing.T) {
	base := sendPackets(t, DefaultConfig(), 200, 9)
	cfg := DefaultConfig()
	cfg.Faults = &FaultPlan{} // present but inert
	with := sendPackets(t, cfg, 200, 9)
	if base.Stats.PacketsDelivered != with.Stats.PacketsDelivered ||
		with.Stats.PacketsDropped != 0 {
		t.Fatalf("inert plan perturbed the run: %+v vs %+v", base.Stats, with.Stats)
	}
}
