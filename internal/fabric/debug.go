package fabric

import "rvma/internal/sim"

// This file is the fabric's simdebug invariant layer; every call site is
// guarded by `if sim.DebugEnabled`, so normal builds pay nothing.

// debugCheckHop bounds a packet's switch-hop count. Minimal routes visit
// at most every switch once and Valiant misrouting adds at most one more
// traversal, so exceeding twice the switch count (plus injection slack)
// means the routing function is cycling — a livelock that would
// otherwise only show up as a simulation that never terminates.
func (n *Network) debugCheckHop(e *sim.Engine, sw int, pkt *Packet) {
	limit := 2*len(n.xbars) + 2
	sim.Assertf(pkt.Hops <= limit,
		"fabric: packet #%d (%d->%d) reached %d hops at sw%d, limit %d — routing cycle?",
		pkt.ID, pkt.Src, pkt.Dst, pkt.Hops, sw, limit)
	sim.Assertf(pkt.Injected <= e.Now(),
		"fabric: packet #%d at sw%d before its injection time (%v > %v)",
		pkt.ID, sw, pkt.Injected, e.Now())
}

// debugCheckDeliver asserts packet conservation at the delivery point:
// the fabric never delivers or drops more packets than were injected,
// and no packet arrives before it was sent.
func (n *Network) debugCheckDeliver(e *sim.Engine, pkt *Packet) {
	if n.group == nil {
		// Conservation only holds globally; per-shard counters see
		// deliveries before the matching injection counter is visible.
		sim.Assertf(n.Stats.PacketsDelivered+n.Stats.PacketsDropped <= n.Stats.PacketsInjected,
			"fabric: delivered %d + dropped %d exceeds injected %d",
			n.Stats.PacketsDelivered, n.Stats.PacketsDropped, n.Stats.PacketsInjected)
	}
	sim.Assertf(e.Now() >= pkt.Injected,
		"fabric: packet #%d delivered at %v before injection at %v",
		pkt.ID, e.Now(), pkt.Injected)
}
