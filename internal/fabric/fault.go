// Fault injection: a FaultPlan describes when the fabric loses packets.
//
// Loss is modeled at destination ingress (see Network.deliver): the packet
// pays every upstream cost — injection serialization, crossbar and output
// queues, link traversal, and any adaptive-routing state it perturbed —
// and is then discarded before the host callback, like a CRC failure
// detected at the receiving NIC. A dropped packet therefore never stops
// costing time mid-pipeline; it stops existing only after the full path
// cost was paid. Drop decisions draw from a dedicated RNG stream, never
// the engine's shared stream, so enabling faults does not perturb routing
// jitter or Valiant detour choices for the packets that survive.
package fabric

import (
	"fmt"
	"strconv"
	"strings"

	"rvma/internal/sim"
)

// FaultPlan describes deterministic failure injection for a fabric run.
// The zero value injects nothing.
type FaultPlan struct {
	// DropRate is a uniform per-packet loss probability in [0, 1]. It
	// combines with Config.DropRate by max, and 1 is a legal total
	// blackout.
	DropRate float64
	// BurstLen, when greater than 1, turns every random drop into a burst:
	// the next BurstLen-1 packets arriving at the same destination are
	// also dropped, modeling correlated loss (a link hiccup kills the
	// whole train, not one packet).
	BurstLen int
	// Windows are per-link degradation intervals layered on top of the
	// uniform rate.
	Windows []FaultWindow
}

// FaultWindow degrades delivery to one destination (or all) for a span of
// simulated time. Within [From, To) the effective drop probability is the
// max of the window's rate and the uniform rate.
type FaultWindow struct {
	// Node is the destination whose ingress degrades; -1 means every node.
	Node int
	// From and To bound the window as half-open simulated time [From, To).
	From, To sim.Time
	// DropRate is the per-packet loss probability inside the window.
	DropRate float64
}

// Enabled reports whether the plan can ever drop a packet.
func (p *FaultPlan) Enabled() bool {
	if p == nil {
		return false
	}
	if p.DropRate > 0 {
		return true
	}
	for _, w := range p.Windows {
		if w.DropRate > 0 {
			return true
		}
	}
	return false
}

// Validate reports plan configuration errors.
func (p *FaultPlan) Validate() error {
	if p == nil {
		return nil
	}
	if p.DropRate < 0 || p.DropRate > 1 {
		return fmt.Errorf("fabric: fault drop rate %v outside [0, 1]", p.DropRate)
	}
	if p.BurstLen < 0 {
		return fmt.Errorf("fabric: fault burst length %d negative", p.BurstLen)
	}
	for i, w := range p.Windows {
		if w.DropRate < 0 || w.DropRate > 1 {
			return fmt.Errorf("fabric: fault window %d drop rate %v outside [0, 1]", i, w.DropRate)
		}
		if w.Node < -1 {
			return fmt.Errorf("fabric: fault window %d node %d invalid (use -1 for all nodes)", i, w.Node)
		}
		if w.From < 0 || w.To < w.From {
			return fmt.Errorf("fabric: fault window %d has bad span [%v, %v)", i, w.From, w.To)
		}
	}
	return nil
}

// rateAt returns the effective drop probability for a packet reaching
// node's ingress at time now.
func (p *FaultPlan) rateAt(node int, now sim.Time) float64 {
	rate := p.DropRate
	for _, w := range p.Windows {
		if w.DropRate > rate && (w.Node == -1 || w.Node == node) &&
			now >= w.From && now < w.To {
			rate = w.DropRate
		}
	}
	return rate
}

// ParseFaultPlan parses the CLI fault-plan syntax: comma-separated clauses
//
//	drop=RATE                    uniform per-packet loss probability
//	burst=N                      burst length per random drop
//	window=NODE:FROM:TO:RATE     degradation window (NODE may be "all";
//	                             FROM/TO take ns/us/ms/s suffixes)
//
// e.g. "drop=0.05,burst=4,window=3:10us:20us:0.5". An empty string yields
// a nil plan.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	p := &FaultPlan{}
	for _, clause := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(clause), "=")
		if !ok {
			return nil, fmt.Errorf("fabric: fault clause %q is not key=value", clause)
		}
		switch key {
		case "drop":
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("fabric: fault drop rate %q: %v", val, err)
			}
			p.DropRate = rate
		case "burst":
			b, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("fabric: fault burst %q: %v", val, err)
			}
			p.BurstLen = b
		case "window":
			parts := strings.Split(val, ":")
			if len(parts) != 4 {
				return nil, fmt.Errorf("fabric: fault window %q wants NODE:FROM:TO:RATE", val)
			}
			var w FaultWindow
			if parts[0] == "all" {
				w.Node = -1
			} else {
				node, err := strconv.Atoi(parts[0])
				if err != nil {
					return nil, fmt.Errorf("fabric: fault window node %q: %v", parts[0], err)
				}
				w.Node = node
			}
			var err error
			if w.From, err = parseSimTime(parts[1]); err != nil {
				return nil, err
			}
			if w.To, err = parseSimTime(parts[2]); err != nil {
				return nil, err
			}
			if w.DropRate, err = strconv.ParseFloat(parts[3], 64); err != nil {
				return nil, fmt.Errorf("fabric: fault window rate %q: %v", parts[3], err)
			}
			p.Windows = append(p.Windows, w)
		default:
			return nil, fmt.Errorf("fabric: unknown fault clause %q (want drop/burst/window)", key)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// parseSimTime parses "50ns", "10us", "1.5ms" or "2s" into simulated time.
func parseSimTime(s string) (sim.Time, error) {
	units := []struct {
		suffix string
		scale  sim.Time
	}{
		{"ns", sim.Nanosecond},
		{"us", sim.Microsecond},
		{"ms", sim.Millisecond},
		{"s", sim.Second},
	}
	for _, u := range units {
		if num, ok := strings.CutSuffix(s, u.suffix); ok {
			v, err := strconv.ParseFloat(num, 64)
			if err != nil || v < 0 {
				return 0, fmt.Errorf("fabric: bad time %q", s)
			}
			return sim.ScaleF(u.scale, v), nil
		}
	}
	return 0, fmt.Errorf("fabric: time %q needs a ns/us/ms/s suffix", s)
}

// effectivePlan folds Config.DropRate into Config.Faults so the delivery
// path consults one plan.
func (c Config) effectivePlan() FaultPlan {
	plan := FaultPlan{DropRate: c.DropRate}
	if c.Faults != nil {
		if c.Faults.DropRate > plan.DropRate {
			plan.DropRate = c.Faults.DropRate
		}
		plan.BurstLen = c.Faults.BurstLen
		plan.Windows = c.Faults.Windows
	}
	return plan
}

// dropPacket decides, at delivery time, whether failure injection claims
// the packet arriving at node. Burst state is per destination so one
// flow's bad luck cannot leak drops onto an unrelated link. e is the
// engine executing the delivery and rng the fault stream to draw from —
// the shared fault stream in legacy mode, the destination's substream in
// sharded mode (per-destination streams make the drop sequence a function
// of the flow's own arrivals, so it survives repartitioning).
func (n *Network) dropPacket(node int, e *sim.Engine, rng *sim.RNG) bool {
	if n.burstLeft[node] > 0 {
		n.burstLeft[node]--
		return true
	}
	rate := n.faults.rateAt(node, e.Now())
	if rate <= 0 || rng.Float64() >= rate {
		return false
	}
	if n.faults.BurstLen > 1 {
		n.burstLeft[node] = n.faults.BurstLen - 1
	}
	return true
}
