package fabric

import (
	"testing"
	"testing/quick"

	"rvma/internal/sim"
	"rvma/internal/topology"
	"rvma/internal/trace"
)

// twoNodeNet builds the microbenchmark network: two nodes, one switch.
func twoNodeNet(t *testing.T, cfg Config) (*sim.Engine, *Network) {
	t.Helper()
	eng := sim.NewEngine(1)
	net, err := New(eng, topology.NewSingleSwitch(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, net
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{LinkGbps: 0, MTU: 1, XbarFactor: 1},
		{LinkGbps: 1, MTU: 0, XbarFactor: 1},
		{LinkGbps: 1, MTU: 1, XbarFactor: 0},
		{LinkGbps: 1, MTU: 1, XbarFactor: 1, LinkLatency: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestSingleHopLatency(t *testing.T) {
	cfg := DefaultConfig()
	eng, net := twoNodeNet(t, cfg)
	var arrived sim.Time
	net.AttachHost(0, func(pkt *Packet) {})
	net.AttachHost(1, func(pkt *Packet) { arrived = eng.Now() })
	pkt := &Packet{Src: 0, Dst: 1, Size: 1024}
	eng.Schedule(0, func() { net.Inject(pkt) })
	eng.Run()

	// Expected: host serialization + link + (xbar + switch pipeline +
	// output serialization) + link.
	wire := pkt.WireSize()
	ser := sim.SerializationTime(wire, cfg.LinkGbps)
	xbar := sim.SerializationTime(wire, cfg.LinkGbps*cfg.XbarFactor)
	want := ser + cfg.LinkLatency + xbar + cfg.SwitchLatency + ser + cfg.LinkLatency
	if arrived != want {
		t.Fatalf("arrival = %v, want %v", arrived, want)
	}
	if pkt.Hops != 1 {
		t.Fatalf("hops = %d, want 1", pkt.Hops)
	}
}

func TestBandwidthSerializesBackToBack(t *testing.T) {
	cfg := DefaultConfig()
	eng, net := twoNodeNet(t, cfg)
	var arrivals []sim.Time
	net.AttachHost(0, func(pkt *Packet) {})
	net.AttachHost(1, func(pkt *Packet) { arrivals = append(arrivals, eng.Now()) })
	eng.Schedule(0, func() {
		for i := 0; i < 4; i++ {
			net.Inject(&Packet{Src: 0, Dst: 1, Size: 2048})
		}
	})
	eng.Run()
	if len(arrivals) != 4 {
		t.Fatalf("delivered %d packets, want 4", len(arrivals))
	}
	ser := sim.SerializationTime(2048+HeaderBytes, cfg.LinkGbps)
	for i := 1; i < len(arrivals); i++ {
		gap := arrivals[i] - arrivals[i-1]
		if gap != ser {
			t.Fatalf("inter-arrival gap %d = %v, want one serialization time %v", i, gap, ser)
		}
	}
}

func TestStaticRoutingPreservesOrder(t *testing.T) {
	topo := topology.NewFatTree(4)
	cfg := DefaultConfig()
	cfg.Routing = RouteStatic
	eng := sim.NewEngine(7)
	net, err := New(eng, topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got []uint64
	for n := 0; n < topo.NumNodes(); n++ {
		n := n
		net.AttachHost(n, func(pkt *Packet) {
			if n == 15 {
				got = append(got, pkt.ID)
			}
		})
	}
	eng.Schedule(0, func() {
		for i := 0; i < 50; i++ {
			net.Inject(&Packet{Src: 0, Dst: 15, Size: 1500})
		}
	})
	eng.Run()
	if len(got) != 50 {
		t.Fatalf("delivered %d, want 50", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("static routing reordered packets: %v", got)
		}
	}
}

func TestAdaptiveRoutingCanReorder(t *testing.T) {
	// Adaptive routing spreads a burst over alternative paths whose
	// latencies vary (jitter models path-length and congestion variation),
	// so some seed must exhibit reordering; static routing never may.
	reorderedForSeed := func(seed uint64, mode RoutingMode) bool {
		topo := topology.NewFatTree(4)
		cfg := DefaultConfig()
		cfg.Routing = mode
		cfg.AdaptiveJitter = 0.9
		eng := sim.NewEngine(seed)
		net, err := New(eng, topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var got []uint64
		for n := 0; n < topo.NumNodes(); n++ {
			n := n
			net.AttachHost(n, func(pkt *Packet) {
				if n == 15 {
					got = append(got, pkt.ID)
				}
			})
		}
		eng.Schedule(0, func() {
			for i := 0; i < 200; i++ {
				net.Inject(&Packet{Src: 0, Dst: 15, Size: 1500})
			}
		})
		eng.Run()
		if len(got) != 200 {
			t.Fatalf("delivered %d, want 200", len(got))
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				return true
			}
		}
		return false
	}
	anyReorder := false
	for seed := uint64(1); seed <= 20; seed++ {
		if reorderedForSeed(seed, RouteAdaptive) {
			anyReorder = true
			break
		}
	}
	if !anyReorder {
		t.Fatal("adaptive routing with jitter never reordered across 20 seeds")
	}
	for seed := uint64(1); seed <= 5; seed++ {
		if reorderedForSeed(seed, RouteStatic) {
			t.Fatal("static routing must never reorder")
		}
	}
}

func TestAllModesDeliverEverything(t *testing.T) {
	topos := []topology.Topology{
		topology.NewDragonfly(4, 2, 2),
		topology.NewFatTree(4),
		topology.NewHyperX(4, 4, 2),
		topology.NewTorus3D(4, 4, 2, 2),
	}
	for _, topo := range topos {
		for _, mode := range []RoutingMode{RouteStatic, RouteAdaptive, RouteValiant} {
			cfg := DefaultConfig()
			cfg.Routing = mode
			eng := sim.NewEngine(3)
			net, err := New(eng, topo, cfg)
			if err != nil {
				t.Fatal(err)
			}
			delivered := 0
			for n := 0; n < topo.NumNodes(); n++ {
				net.AttachHost(n, func(pkt *Packet) { delivered++ })
			}
			want := 0
			eng.Schedule(0, func() {
				for s := 0; s < topo.NumNodes(); s++ {
					for d := 0; d < topo.NumNodes(); d += 3 {
						if s == d {
							continue
						}
						net.Inject(&Packet{Src: s, Dst: d, Size: 512})
						want++
					}
				}
			})
			eng.Run()
			if delivered != want {
				t.Fatalf("%s/%s: delivered %d of %d", topo.Name(), mode, delivered, want)
			}
			if net.Stats.PacketsDelivered != uint64(want) {
				t.Fatalf("%s/%s: stats mismatch", topo.Name(), mode)
			}
		}
	}
}

func TestValiantDetoursHappenOnDragonfly(t *testing.T) {
	topo := topology.NewDragonfly(4, 2, 2)
	cfg := DefaultConfig()
	cfg.Routing = RouteValiant
	eng := sim.NewEngine(5)
	net, err := New(eng, topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < topo.NumNodes(); n++ {
		net.AttachHost(n, func(pkt *Packet) {})
	}
	eng.Schedule(0, func() {
		// Cross-group traffic only.
		net.Inject(&Packet{Src: 0, Dst: topo.NumNodes() - 1, Size: 512})
	})
	eng.Run()
	if net.Stats.ValiantDetours == 0 {
		t.Fatal("valiant mode took no detours on cross-group dragonfly traffic")
	}
}

func TestAdaptiveAvoidsCongestedPort(t *testing.T) {
	// On a fat-tree, saturate one up-path then check the adaptive router
	// spreads subsequent packets onto others, reducing mean latency
	// versus static routing under the same load.
	run := func(mode RoutingMode) sim.Time {
		topo := topology.NewFatTree(4)
		cfg := DefaultConfig()
		cfg.Routing = mode
		eng := sim.NewEngine(9)
		net, err := New(eng, topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for n := 0; n < topo.NumNodes(); n++ {
			net.AttachHost(n, func(pkt *Packet) {})
		}
		eng.Schedule(0, func() {
			// Two sources on the same edge switch send to destinations whose
			// static hashes collide on one up port; adaptive routing should
			// move the second flow to the idle up port.
			for i := 0; i < 32; i++ {
				net.Inject(&Packet{Src: 0, Dst: 12, Size: 2048})
				net.Inject(&Packet{Src: 1, Dst: 14, Size: 2048})
			}
		})
		eng.Run()
		return net.MeanPacketLatency()
	}
	static := run(RouteStatic)
	adaptive := run(RouteAdaptive)
	if adaptive >= static {
		t.Fatalf("adaptive mean latency %v should beat static %v under burst load", adaptive, static)
	}
}

func TestDoubleAttachPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	net, _ := New(eng, topology.NewSingleSwitch(2), DefaultConfig())
	net.AttachHost(0, func(*Packet) {})
	defer func() {
		if recover() == nil {
			t.Fatal("double attach should panic")
		}
	}()
	net.AttachHost(0, func(*Packet) {})
}

func TestInjectBadEndpointPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	net, _ := New(eng, topology.NewSingleSwitch(2), DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("bad endpoint should panic")
		}
	}()
	net.Inject(&Packet{Src: 0, Dst: 9, Size: 1})
}

// Property: delivery latency scales inversely with link bandwidth for a
// fixed payload (higher Gbps never increases latency).
func TestBandwidthMonotonicityProperty(t *testing.T) {
	oneShot := func(gbps float64) sim.Time {
		eng := sim.NewEngine(1)
		cfg := DefaultConfig()
		cfg.LinkGbps = gbps
		net, _ := New(eng, topology.NewSingleSwitch(2), cfg)
		var at sim.Time
		net.AttachHost(0, func(*Packet) {})
		net.AttachHost(1, func(*Packet) { at = eng.Now() })
		eng.Schedule(0, func() { net.Inject(&Packet{Src: 0, Dst: 1, Size: 65536}) })
		eng.Run()
		return at
	}
	f := func(raw uint8) bool {
		g1 := float64(raw%100) + 10
		g2 := g1 * 2
		return oneShot(g2) <= oneShot(g1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the 2 Tbps configuration's latency is dominated by fixed
// overheads: quadrupling a small payload barely moves delivery time.
func TestFixedOverheadDominanceAtHighSpeed(t *testing.T) {
	oneShot := func(size int) sim.Time {
		eng := sim.NewEngine(1)
		cfg := DefaultConfig()
		cfg.LinkGbps = 2000
		net, _ := New(eng, topology.NewSingleSwitch(2), cfg)
		var at sim.Time
		net.AttachHost(0, func(*Packet) {})
		net.AttachHost(1, func(*Packet) { at = eng.Now() })
		eng.Schedule(0, func() { net.Inject(&Packet{Src: 0, Dst: 1, Size: size}) })
		eng.Run()
		return at
	}
	small, big := oneShot(64), oneShot(256)
	if big*100 > small*102 {
		t.Fatalf("at 2 Tbps, 64B->256B grew latency %v -> %v (>2%%)", small, big)
	}
}

func TestTracerIntegration(t *testing.T) {
	eng := sim.NewEngine(1)
	net, err := New(eng, topology.NewSingleSwitch(2), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(eng, 64)
	tr.Enable(trace.CatPacket)
	net.SetTracer(tr)
	net.AttachHost(0, func(*Packet) {})
	net.AttachHost(1, func(*Packet) {})
	eng.Schedule(0, func() {
		net.Inject(&Packet{Src: 0, Dst: 1, Size: 100})
	})
	eng.Run()
	if tr.Counter("fabric.packets_injected") != 1 || tr.Counter("fabric.packets_delivered") != 1 {
		t.Fatalf("tracer counters: inj=%d del=%d",
			tr.Counter("fabric.packets_injected"), tr.Counter("fabric.packets_delivered"))
	}
	if len(tr.Events()) != 2 {
		t.Fatalf("events = %d, want inject+deliver", len(tr.Events()))
	}
	if sums := tr.SeriesSums("fabric.delivered_bytes"); len(sums) == 0 || sums[0] != 100 {
		t.Fatalf("series = %v", sums)
	}
	net.SetTracer(nil) // detach is safe
	eng.Schedule(0, func() { net.Inject(&Packet{Src: 0, Dst: 1, Size: 1}) })
	eng.Run()
}
