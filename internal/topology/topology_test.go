package topology

import (
	"testing"
	"testing/quick"

	"rvma/internal/sim"
)

// allTestTopologies returns a representative instance of every family.
func allTestTopologies() []Topology {
	return []Topology{
		NewSingleSwitch(2),
		NewSingleSwitch(16),
		NewTorus3D(4, 4, 4, 2),
		NewTorus3D(2, 3, 1, 4), // exercises size-2 and size-1 dimensions
		NewFatTree(4),
		NewFatTree(8),
		NewDragonfly(4, 2, 2),
		NewDragonfly(8, 4, 4),
		NewHyperX(4, 4, 2),
		NewHyperX(3, 5, 1),
	}
}

func TestValidateAll(t *testing.T) {
	for _, topo := range allTestTopologies() {
		if err := Validate(topo); err != nil {
			t.Errorf("%s: %v", topo.Name(), err)
		}
	}
}

func TestAllPairsDeterministicRoutesDeliver(t *testing.T) {
	for _, topo := range allTestTopologies() {
		n := topo.NumNodes()
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				if _, err := TraceRoute(topo, s, d, 32); err != nil {
					t.Fatalf("%s: %v", topo.Name(), err)
				}
			}
		}
	}
}

// Property: every candidate port (not just the first) makes progress — a
// greedy walk that always picks the *last* candidate still delivers.
func TestAdaptiveCandidatesDeliver(t *testing.T) {
	for _, topo := range allTestTopologies() {
		n := topo.NumNodes()
		var buf []int
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s == d {
					continue
				}
				sw, _ := topo.HostPort(s)
				for hops := 0; ; hops++ {
					if hops > 64 {
						t.Fatalf("%s: worst-candidate walk %d->%d looped", topo.Name(), s, d)
					}
					buf = topo.Candidates(sw, d, buf[:0])
					if len(buf) == 0 {
						t.Fatalf("%s: no candidates at switch %d for dst %d", topo.Name(), sw, d)
					}
					p := topo.Ports(sw)[buf[len(buf)-1]]
					if p.Kind == HostPort {
						if p.Node != d {
							t.Fatalf("%s: delivered to %d, want %d", topo.Name(), p.Node, d)
						}
						break
					}
					sw = p.PeerSwitch
				}
			}
		}
	}
}

func TestTorusDimensionOrderPathLength(t *testing.T) {
	topo := NewTorus3D(4, 4, 4, 1)
	// node 0 at switch (0,0,0); destination switch (2,3,1) = node index:
	dst := topo.switchAt(2, 3, 1)
	path, err := TraceRoute(topo, 0, dst, 32)
	if err != nil {
		t.Fatal(err)
	}
	// Shortest hops: x: 2 (forward), y: 1 (backward wrap), z: 1 => 4 switch-
	// to-switch hops => path visits 5 switches.
	if len(path) != 5 {
		t.Fatalf("path %v has %d switches, want 5", path, len(path))
	}
}

func TestTorusWrapsShorterDirection(t *testing.T) {
	topo := NewTorus3D(8, 1, 1, 1)
	// From x=0 to x=6: backward wrap (2 hops) beats forward (6 hops).
	path, err := TraceRoute(topo, 0, 6, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("wrap route %v has %d switches, want 3", path, len(path))
	}
}

func TestFatTreeStructure(t *testing.T) {
	ft := NewFatTree(4)
	if ft.NumNodes() != 16 {
		t.Fatalf("k=4 fat-tree nodes = %d, want 16", ft.NumNodes())
	}
	if ft.NumSwitches() != 20 { // 8 edge + 8 agg + 4 core
		t.Fatalf("k=4 fat-tree switches = %d, want 20", ft.NumSwitches())
	}
	// Same-edge traffic stays on one switch.
	path, err := TraceRoute(ft, 0, 1, 8)
	if err != nil || len(path) != 1 {
		t.Fatalf("same-edge path = %v (err %v), want single switch", path, err)
	}
	// Cross-pod traffic takes edge-agg-core-agg-edge: 5 switches.
	path, err = TraceRoute(ft, 0, 15, 8)
	if err != nil || len(path) != 5 {
		t.Fatalf("cross-pod path = %v (err %v), want 5 switches", path, err)
	}
}

func TestFatTreeUpPathSpread(t *testing.T) {
	// Different destinations should hash onto different up ports at the edge.
	ft := NewFatTree(8)
	var buf []int
	seen := map[int]bool{}
	sw, _ := ft.HostPort(0)
	for d := ft.NumNodes() / 2; d < ft.NumNodes(); d++ {
		buf = ft.Candidates(sw, d, buf[:0])
		seen[buf[0]] = true
	}
	if len(seen) != 4 { // k/2 = 4 up ports
		t.Fatalf("deterministic up-path spread = %d ports, want 4", len(seen))
	}
}

func TestDragonflyStructure(t *testing.T) {
	d := NewDragonfly(4, 2, 2)
	if d.G != 9 {
		t.Fatalf("groups = %d, want 9", d.G)
	}
	if d.NumNodes() != 9*4*2 {
		t.Fatalf("nodes = %d, want 72", d.NumNodes())
	}
	// Each switch has p + (a-1) + h = 2 + 3 + 2 = 7 ports.
	if got := len(d.Ports(0)); got != 7 {
		t.Fatalf("ports per switch = %d, want 7", got)
	}
}

func TestDragonflyMinimalHops(t *testing.T) {
	d := NewDragonfly(4, 2, 2)
	// Max minimal path: local + global + local = 3 switch hops (4 switches).
	diam, err := Diameter(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diam > 3 {
		t.Fatalf("dragonfly minimal diameter = %d switch-hops, want <= 3", diam)
	}
}

func TestDragonflyGlobalChannelsOnePerGroupPair(t *testing.T) {
	d := NewDragonfly(4, 2, 2)
	// Count global channels between each pair of groups; must be exactly 1.
	count := map[[2]int]int{}
	for sw := 0; sw < d.NumSwitches(); sw++ {
		g := d.group(sw)
		for _, p := range d.Ports(sw) {
			if p.Kind != SwitchPort {
				continue
			}
			pg := d.group(p.PeerSwitch)
			if pg == g {
				continue
			}
			key := [2]int{min(g, pg), max(g, pg)}
			count[key]++
		}
	}
	want := d.G * (d.G - 1) / 2
	if len(count) != want {
		t.Fatalf("connected group pairs = %d, want %d", len(count), want)
	}
	for pair, c := range count {
		if c != 2 { // counted once from each end
			t.Fatalf("group pair %v has %d channel endpoints, want 2", pair, c)
		}
	}
}

func TestDragonflyNonMinimalCandidates(t *testing.T) {
	d := NewDragonfly(4, 2, 2)
	src, dst := 0, d.NumNodes()-1
	sw, _ := d.HostPort(src)
	var buf []int
	nm := d.NonMinimalCandidates(sw, dst, buf)
	// Router 0 owns h=2 global channels; at most one leads to the dest
	// group, so at least one detour candidate must exist.
	if len(nm) == 0 {
		t.Fatal("expected non-minimal candidates from source group")
	}
	// All candidates must be global ports leading to a non-destination group.
	dsw, _ := d.HostPort(dst)
	for _, pi := range nm {
		p := d.Ports(sw)[pi]
		if p.Kind != SwitchPort {
			t.Fatal("non-minimal candidate is not a switch port")
		}
		if d.group(p.PeerSwitch) == d.group(dsw) || d.group(p.PeerSwitch) == d.group(sw) {
			t.Fatal("non-minimal candidate is not a detour")
		}
	}
	// In-group destinations have no detours.
	if got := d.NonMinimalCandidates(sw, 1, buf[:0]); len(got) != 0 {
		t.Fatalf("same-group non-minimal candidates = %v, want none", got)
	}
}

// A Valiant detour followed by minimal routing must still deliver.
func TestDragonflyValiantDelivers(t *testing.T) {
	d := NewDragonfly(4, 2, 2)
	var buf []int
	for src := 0; src < d.NumNodes(); src += 7 {
		for dst := 0; dst < d.NumNodes(); dst += 5 {
			if src == dst {
				continue
			}
			sw, _ := d.HostPort(src)
			nm := d.NonMinimalCandidates(sw, dst, buf[:0])
			if len(nm) == 0 {
				continue
			}
			// Take the detour, then route minimally.
			sw2 := d.Ports(sw)[nm[0]].PeerSwitch
			hops := 1
			for {
				if hops > 16 {
					t.Fatalf("valiant walk %d->%d looped", src, dst)
				}
				cands := d.Candidates(sw2, dst, nil)
				p := d.Ports(sw2)[cands[0]]
				if p.Kind == HostPort {
					if p.Node != dst {
						t.Fatalf("valiant delivered to %d, want %d", p.Node, dst)
					}
					break
				}
				sw2 = p.PeerSwitch
				hops++
			}
		}
	}
}

func TestHyperXDiameterTwo(t *testing.T) {
	h := NewHyperX(4, 4, 2)
	diam, err := Diameter(h, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diam > 2 {
		t.Fatalf("hyperx diameter = %d, want <= 2", diam)
	}
}

func TestHyperXDOROrdersDim1First(t *testing.T) {
	h := NewHyperX(4, 4, 1)
	// src switch (0,0) = node 0; dst switch (2,3) = node 11.
	path, err := TraceRoute(h, 0, 11, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 3 {
		t.Fatalf("path %v length = %d switches, want 3", path, len(path))
	}
	// DOR corrects dimension 1 first: intermediate switch is (2, 0) = 8.
	if path[1] != 8 {
		t.Fatalf("DOR intermediate = switch %d, want 8 (row corrected first)", path[1])
	}
}

func TestHyperXAdaptiveHasTwoChoicesOffAxis(t *testing.T) {
	h := NewHyperX(4, 4, 1)
	sw, _ := h.HostPort(0)
	cands := h.Candidates(sw, 11, nil)
	if len(cands) != 2 {
		t.Fatalf("off-axis candidates = %d, want 2", len(cands))
	}
	cands = h.Candidates(sw, 3, nil) // same row: single choice
	if len(cands) != 1 {
		t.Fatalf("same-row candidates = %d, want 1", len(cands))
	}
}

func TestForNodeCount(t *testing.T) {
	for _, kind := range Kinds() {
		for _, n := range []int{1, 8, 100, 1024} {
			topo, err := ForNodeCount(kind, n)
			if err != nil {
				t.Fatalf("%s/%d: %v", kind, n, err)
			}
			if topo.NumNodes() < n {
				t.Fatalf("%s: ForNodeCount(%d) built only %d nodes", kind, n, topo.NumNodes())
			}
			if err := Validate(topo); err != nil {
				t.Fatalf("%s/%d: %v", kind, n, err)
			}
		}
	}
	if _, err := ForNodeCount("nosuch", 4); err == nil {
		t.Fatal("unknown kind should error")
	}
	if _, err := ForNodeCount(KindFatTree, 0); err == nil {
		t.Fatal("zero nodes should error")
	}
}

// Property: for random (small) dragonfly parameters, validation passes and
// random pairs route within 3 switch-hops.
func TestDragonflyProperty(t *testing.T) {
	f := func(aRaw, pRaw, hRaw uint8) bool {
		a := int(aRaw)%4 + 2
		p := int(pRaw)%3 + 1
		h := int(hRaw)%3 + 1
		d := NewDragonfly(a, p, h)
		if Validate(d) != nil {
			return false
		}
		rng := sim.NewRNG(uint64(a*100 + p*10 + h))
		for i := 0; i < 20; i++ {
			s, dd := rng.Intn(d.NumNodes()), rng.Intn(d.NumNodes())
			if s == dd {
				continue
			}
			path, err := TraceRoute(d, s, dd, 8)
			if err != nil || len(path)-1 > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
