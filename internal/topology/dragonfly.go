package topology

import "fmt"

// Dragonfly is the Kim/Dally dragonfly used by Cray Aries (the XC systems
// the paper ran its SST simulations on) and most modern adaptive networks.
// Groups of A routers are internally fully connected; each router carries P
// terminal nodes and H global channels, giving G = A*H + 1 groups with
// exactly one global channel between every pair of groups.
//
// Minimal routing is local -> global -> local (at most 3 switch-to-switch
// hops). Non-minimal (Valiant) routing detours through a random
// intermediate group and is what adaptive (UGAL-style) selection falls
// back to under congestion; it is exposed via NonMinimalCandidates.
type Dragonfly struct {
	A, P, H int // routers/group, hosts/router, global channels/router
	G       int // number of groups = A*H + 1
	ports   [][]Port
}

// NewDragonfly builds a balanced dragonfly. All parameters must be >= 1.
func NewDragonfly(a, p, h int) *Dragonfly {
	if a < 1 || p < 1 || h < 1 {
		panic("topology: invalid dragonfly parameters")
	}
	d := &Dragonfly{A: a, P: p, H: h, G: a*h + 1}
	nsw := d.G * a
	d.ports = make([][]Port, nsw)
	for g := 0; g < d.G; g++ {
		for r := 0; r < a; r++ {
			sw := g*a + r
			ports := make([]Port, p+(a-1)+h)
			for i := 0; i < p; i++ {
				ports[i] = Port{Kind: HostPort, Node: sw*p + i}
			}
			// Local full mesh: port p+idx reaches router r2 (skipping self).
			for r2 := 0; r2 < a; r2++ {
				if r2 == r {
					continue
				}
				idx := r2
				if r2 > r {
					idx--
				}
				back := r
				if r > r2 {
					back--
				}
				ports[p+idx] = Port{Kind: SwitchPort, PeerSwitch: g*a + r2, PeerPort: p + back}
			}
			// Global channels: this router owns channels gc = r*h .. r*h+h-1
			// of its group. Channel gc of group g connects to group
			// dg = gc (if gc < g) else gc+1; the far side uses its channel
			// gc' = g (if g < dg) else g-1, owned by router gc'/h at
			// sub-index gc'%h.
			for j := 0; j < h; j++ {
				gc := r*h + j
				dg := gc
				if gc >= g {
					dg = gc + 1
				}
				gcBack := g
				if g > dg {
					gcBack = g - 1
				}
				peerRouter := gcBack / h
				peerSub := gcBack % h
				ports[p+(a-1)+j] = Port{
					Kind:       SwitchPort,
					PeerSwitch: dg*a + peerRouter,
					PeerPort:   p + (a - 1) + peerSub,
				}
			}
			d.ports[sw] = ports
		}
	}
	return d
}

// Name implements Topology.
func (d *Dragonfly) Name() string {
	return fmt.Sprintf("dragonfly(a=%d,p=%d,h=%d,g=%d)", d.A, d.P, d.H, d.G)
}

// NumNodes implements Topology.
func (d *Dragonfly) NumNodes() int { return d.G * d.A * d.P }

// NumSwitches implements Topology.
func (d *Dragonfly) NumSwitches() int { return d.G * d.A }

// Ports implements Topology.
func (d *Dragonfly) Ports(sw int) []Port { return d.ports[sw] }

// HostPort implements Topology.
func (d *Dragonfly) HostPort(node int) (sw, port int) {
	return node / d.P, node % d.P
}

// group and router decompose a switch id.
func (d *Dragonfly) group(sw int) int  { return sw / d.A }
func (d *Dragonfly) router(sw int) int { return sw % d.A }

// localPort returns the port index on router r toward router r2 (same group).
func (d *Dragonfly) localPort(r, r2 int) int {
	idx := r2
	if r2 > r {
		idx--
	}
	return d.P + idx
}

// globalOwner returns, for a source group g targeting group dg, the router
// index owning the g<->dg channel and that channel's port index.
func (d *Dragonfly) globalOwner(g, dg int) (router, port int) {
	gc := dg
	if dg > g {
		gc = dg - 1
	}
	return gc / d.H, d.P + (d.A - 1) + gc%d.H
}

// Candidates implements Topology with minimal local->global->local routing.
func (d *Dragonfly) Candidates(sw, dst int, buf []int) []int {
	dsw, hport := d.HostPort(dst)
	if dsw == sw {
		return append(buf, hport)
	}
	g, r := d.group(sw), d.router(sw)
	dg, dr := d.group(dsw), d.router(dsw)
	if g == dg {
		return append(buf, d.localPort(r, dr))
	}
	owner, gport := d.globalOwner(g, dg)
	if owner == r {
		return append(buf, gport)
	}
	return append(buf, d.localPort(r, owner))
}

// NonMinimalCandidates implements NonMinimalRouter: ports that begin a
// Valiant detour. From the source group these are this router's own global
// channels to groups other than the destination (one hop starts the
// detour); the fabric marks the packet as misrouted afterward so it
// finishes minimally from the intermediate group.
func (d *Dragonfly) NonMinimalCandidates(sw, dst int, buf []int) []int {
	dsw, _ := d.HostPort(dst)
	g := d.group(sw)
	dg := d.group(dsw)
	if g == dg {
		return buf // already in destination group: no useful detour
	}
	base := d.P + (d.A - 1)
	for j := 0; j < d.H; j++ {
		port := d.ports[sw][base+j]
		if port.Kind != SwitchPort {
			continue
		}
		if d.group(port.PeerSwitch) == dg {
			continue // that's the minimal channel, not a detour
		}
		buf = append(buf, base+j)
	}
	return buf
}
