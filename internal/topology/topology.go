// Package topology describes the switch/link graphs the simulated network
// runs over, together with their routing functions.
//
// The RVMA paper evaluates Sweep3D and Halo3D over "a variety of different
// network topologies and routing strategies" (Figures 7 and 8), naming
// adaptively routed dragonfly and HyperX with Dimension Order Routing
// explicitly. This package provides dragonfly, three-level fat-tree,
// 2-D HyperX and 3-D torus, plus a single-switch topology for the
// two-node microbenchmarks, all behind one interface.
//
// A Topology is pure structure: switches, ports, and a routing oracle that
// lists candidate output ports toward a destination. Queueing, bandwidth
// and adaptive port *selection* live in package fabric; this split keeps
// routing algorithms independently testable.
package topology

import "fmt"

// PortKind discriminates what a switch port attaches to.
type PortKind int

const (
	// Unused marks a port with no attachment (e.g. a torus dimension of
	// size 1). Packets are never routed to unused ports.
	Unused PortKind = iota
	// HostPort attaches a terminal node (a NIC).
	HostPort
	// SwitchPort attaches another switch.
	SwitchPort
)

// Port describes one switch port.
type Port struct {
	Kind PortKind
	// Node is the attached terminal, valid when Kind == HostPort.
	Node int
	// PeerSwitch/PeerPort identify the far end, valid when Kind == SwitchPort.
	PeerSwitch int
	PeerPort   int
}

// Topology is a switch graph with an attached-routing oracle.
type Topology interface {
	// Name identifies the topology (and its parameters) in reports.
	Name() string
	// NumNodes returns the number of terminal nodes.
	NumNodes() int
	// NumSwitches returns the number of switches.
	NumSwitches() int
	// Ports returns switch sw's port table. Callers must not mutate it.
	Ports(sw int) []Port
	// HostPort returns the switch and port a node attaches to.
	HostPort(node int) (sw, port int)
	// Candidates appends to buf the output ports at switch sw that make
	// minimal progress toward node dst and returns the result. The first
	// candidate is the deterministic (static-routing) choice; the rest are
	// equal-cost alternatives an adaptive router may pick instead. When dst
	// attaches to sw the sole candidate is its host port.
	Candidates(sw, dst int, buf []int) []int
}

// NonMinimalRouter is implemented by topologies that support Valiant-style
// misrouting (dragonfly). NonMinimalCandidates appends output ports that
// begin a non-minimal path toward dst; the fabric may take one when minimal
// queues are congested, after which the packet must route minimally.
type NonMinimalRouter interface {
	NonMinimalCandidates(sw, dst int, buf []int) []int
}

// Validate checks structural invariants every topology must satisfy:
// bidirectional port symmetry, host-port consistency, and in-range
// candidates. It is used by the test suite over every topology.
func Validate(t Topology) error {
	for sw := 0; sw < t.NumSwitches(); sw++ {
		ports := t.Ports(sw)
		for pi, p := range ports {
			switch p.Kind {
			case SwitchPort:
				if p.PeerSwitch < 0 || p.PeerSwitch >= t.NumSwitches() {
					return fmt.Errorf("%s: switch %d port %d peers out-of-range switch %d",
						t.Name(), sw, pi, p.PeerSwitch)
				}
				peer := t.Ports(p.PeerSwitch)
				if p.PeerPort < 0 || p.PeerPort >= len(peer) {
					return fmt.Errorf("%s: switch %d port %d peers out-of-range port %d of switch %d",
						t.Name(), sw, pi, p.PeerPort, p.PeerSwitch)
				}
				back := peer[p.PeerPort]
				if back.Kind != SwitchPort || back.PeerSwitch != sw || back.PeerPort != pi {
					return fmt.Errorf("%s: link asymmetry: switch %d port %d -> switch %d port %d -> switch %d port %d",
						t.Name(), sw, pi, p.PeerSwitch, p.PeerPort, back.PeerSwitch, back.PeerPort)
				}
			case HostPort:
				hsw, hport := t.HostPort(p.Node)
				if hsw != sw || hport != pi {
					return fmt.Errorf("%s: node %d host-port mismatch: attached at (%d,%d), HostPort says (%d,%d)",
						t.Name(), p.Node, sw, pi, hsw, hport)
				}
			}
		}
	}
	for n := 0; n < t.NumNodes(); n++ {
		sw, port := t.HostPort(n)
		ports := t.Ports(sw)
		if port < 0 || port >= len(ports) || ports[port].Kind != HostPort || ports[port].Node != n {
			return fmt.Errorf("%s: node %d HostPort (%d,%d) does not attach it", t.Name(), n, sw, port)
		}
	}
	return nil
}

// TraceRoute follows the deterministic (first-candidate) route from node
// src to node dst and returns the sequence of switches visited. It errors
// if the route exceeds maxHops, which would indicate a routing loop.
func TraceRoute(t Topology, src, dst, maxHops int) ([]int, error) {
	sw, _ := t.HostPort(src)
	path := []int{sw}
	var buf []int
	for hops := 0; ; hops++ {
		if hops > maxHops {
			return path, fmt.Errorf("%s: route %d->%d exceeded %d hops (loop?)", t.Name(), src, dst, maxHops)
		}
		buf = t.Candidates(sw, dst, buf[:0])
		if len(buf) == 0 {
			return path, fmt.Errorf("%s: no candidates at switch %d toward node %d", t.Name(), sw, dst)
		}
		p := t.Ports(sw)[buf[0]]
		switch p.Kind {
		case HostPort:
			if p.Node != dst {
				return path, fmt.Errorf("%s: route %d->%d exited at node %d", t.Name(), src, dst, p.Node)
			}
			return path, nil
		case SwitchPort:
			sw = p.PeerSwitch
			path = append(path, sw)
		default:
			return path, fmt.Errorf("%s: candidate is an unused port", t.Name())
		}
	}
}

// Diameter returns the maximum deterministic-route switch-hop count over a
// sample of node pairs (all pairs when the node count is small). It is a
// test/diagnostic helper.
func Diameter(t Topology, maxPairs int) (int, error) {
	n := t.NumNodes()
	max := 0
	step := 1
	if n*n > maxPairs && maxPairs > 0 {
		step = n * n / maxPairs
		if step == 0 {
			step = 1
		}
	}
	idx := 0
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			idx++
			if s == d || idx%step != 0 {
				continue
			}
			path, err := TraceRoute(t, s, d, 64)
			if err != nil {
				return 0, err
			}
			if h := len(path) - 1; h > max {
				max = h
			}
		}
	}
	return max, nil
}
