package topology

import "fmt"

// FatTree is the classic three-level k-ary fat-tree (Clos) with k pods,
// k/2 edge and k/2 aggregation switches per pod, and (k/2)^2 core
// switches, supporting k^3/4 terminal nodes at full bisection bandwidth.
//
// Deterministic routing hashes the destination onto a single up-path
// (ECMP-style static routing); adaptive routing may choose any up port,
// which is where fat-trees benefit from adaptivity. Down-paths are unique
// and therefore always deterministic.
type FatTree struct {
	K     int // switch radix; must be even
	half  int // k/2
	ports [][]Port
}

// Switch id layout: edges [0, k*h), aggs [k*h, 2*k*h), cores [2*k*h, 2*k*h+h*h),
// where h = k/2. Edge e of pod p is p*h+e; agg a of pod p is k*h + p*h+a;
// core (i,j) is 2*k*h + i*h + j and connects to agg i of every pod via its
// up-port j.

// NewFatTree builds a k-ary fat-tree. k must be even and >= 2.
func NewFatTree(k int) *FatTree {
	if k < 2 || k%2 != 0 {
		panic("topology: fat-tree arity must be even and >= 2")
	}
	h := k / 2
	t := &FatTree{K: k, half: h}
	nEdges := k * h
	nAggs := k * h
	nCores := h * h
	t.ports = make([][]Port, nEdges+nAggs+nCores)

	for p := 0; p < k; p++ {
		for e := 0; e < h; e++ {
			sw := p*h + e
			ports := make([]Port, k)
			for i := 0; i < h; i++ { // down: hosts
				ports[i] = Port{Kind: HostPort, Node: sw*h + i}
			}
			for a := 0; a < h; a++ { // up: aggs in same pod
				ports[h+a] = Port{Kind: SwitchPort, PeerSwitch: nEdges + p*h + a, PeerPort: e}
			}
			t.ports[sw] = ports
		}
		for a := 0; a < h; a++ {
			sw := nEdges + p*h + a
			ports := make([]Port, k)
			for e := 0; e < h; e++ { // down: edges in same pod
				ports[e] = Port{Kind: SwitchPort, PeerSwitch: p*h + e, PeerPort: h + a}
			}
			for j := 0; j < h; j++ { // up: core (a, j), whose port p faces this pod
				ports[h+j] = Port{Kind: SwitchPort, PeerSwitch: nEdges + nAggs + a*h + j, PeerPort: p}
			}
			t.ports[sw] = ports
		}
	}
	for i := 0; i < h; i++ {
		for j := 0; j < h; j++ {
			sw := nEdges + nAggs + i*h + j
			ports := make([]Port, k)
			for p := 0; p < k; p++ { // one port per pod, down to agg i
				ports[p] = Port{Kind: SwitchPort, PeerSwitch: nEdges + p*h + i, PeerPort: h + j}
			}
			t.ports[sw] = ports
		}
	}
	return t
}

// Name implements Topology.
func (t *FatTree) Name() string { return fmt.Sprintf("fattree(k=%d)", t.K) }

// NumNodes implements Topology.
func (t *FatTree) NumNodes() int { return t.K * t.half * t.half }

// NumSwitches implements Topology.
func (t *FatTree) NumSwitches() int { return 2*t.K*t.half + t.half*t.half }

// Ports implements Topology.
func (t *FatTree) Ports(sw int) []Port { return t.ports[sw] }

// HostPort implements Topology.
func (t *FatTree) HostPort(node int) (sw, port int) {
	return node / t.half, node % t.half
}

// level classifies a switch id as edge (0), agg (1) or core (2).
func (t *FatTree) level(sw int) int {
	kh := t.K * t.half
	switch {
	case sw < kh:
		return 0
	case sw < 2*kh:
		return 1
	default:
		return 2
	}
}

// Candidates implements Topology. Up-path candidates are all up ports with
// the deterministic hash choice first; down paths have a single candidate.
func (t *FatTree) Candidates(sw, dst int, buf []int) []int {
	h := t.half
	kh := t.K * h
	dstEdge := dst / h
	dstPod := dstEdge / h
	switch t.level(sw) {
	case 0: // edge
		if sw == dstEdge {
			return append(buf, dst%h)
		}
		pick := h + dst%h // hash destination across up ports
		buf = append(buf, pick)
		for a := 0; a < h; a++ {
			if h+a != pick {
				buf = append(buf, h+a)
			}
		}
		return buf
	case 1: // agg
		pod := (sw - kh) / h
		if pod == dstPod {
			return append(buf, dstEdge%h)
		}
		pick := h + (dst/h)%h // hash across core up-ports
		buf = append(buf, pick)
		for j := 0; j < h; j++ {
			if h+j != pick {
				buf = append(buf, h+j)
			}
		}
		return buf
	default: // core: unique down port per pod
		return append(buf, dstPod)
	}
}
