package topology

import "fmt"

// Kind names a topology family for registry construction.
type Kind string

// Topology families available to experiments and the CLI.
const (
	KindSingleSwitch Kind = "single"
	KindTorus3D      Kind = "torus3d"
	KindFatTree      Kind = "fattree"
	KindDragonfly    Kind = "dragonfly"
	KindHyperX       Kind = "hyperx"
)

// Kinds lists the registered families in a stable order.
func Kinds() []Kind {
	return []Kind{KindSingleSwitch, KindTorus3D, KindFatTree, KindDragonfly, KindHyperX}
}

// ForNodeCount constructs a topology of the given family sized to carry at
// least n terminal nodes, scaling the family's natural parameters. It is
// how the experiment harness sizes systems: the paper uses 8,192 nodes; the
// benchmarks default smaller but use identical construction rules.
func ForNodeCount(kind Kind, n int) (Topology, error) {
	if n < 1 {
		return nil, fmt.Errorf("topology: need at least one node, got %d", n)
	}
	switch kind {
	case KindSingleSwitch:
		return NewSingleSwitch(n), nil
	case KindTorus3D:
		// Grow a near-cubic torus with 4 hosts per switch.
		const p = 4
		dx, dy, dz := 1, 1, 1
		for dx*dy*dz*p < n {
			// Grow the smallest dimension to stay near-cubic.
			switch {
			case dx <= dy && dx <= dz:
				dx *= 2
			case dy <= dz:
				dy *= 2
			default:
				dz *= 2
			}
		}
		return NewTorus3D(dx, dy, dz, p), nil
	case KindFatTree:
		k := 2
		for k*k*k/4 < n {
			k += 2
		}
		return NewFatTree(k), nil
	case KindDragonfly:
		// Balanced dragonfly guideline: a = 2p = 2h. Grow p until it fits.
		p := 1
		for {
			a, h := 2*p, p
			g := a*h + 1
			if g*a*p >= n {
				return NewDragonfly(a, p, h), nil
			}
			p++
		}
	case KindHyperX:
		// Square-ish HyperX with 4 hosts per switch.
		const p = 4
		n1, n2 := 1, 1
		for n1*n2*p < n {
			if n1 <= n2 {
				n1 *= 2
			} else {
				n2 *= 2
			}
		}
		return NewHyperX(n1, n2, p), nil
	default:
		return nil, fmt.Errorf("topology: unknown kind %q", kind)
	}
}
