package topology

import "fmt"

// SingleSwitch is the degenerate topology used by the paper's two-node
// microbenchmark reproductions (Figures 4-6): every node hangs off one
// switch, so end-to-end latency is NIC + link + switch crossing + link +
// NIC, with no topology effects.
type SingleSwitch struct {
	ports []Port
}

// NewSingleSwitch returns a one-switch network with n attached nodes.
func NewSingleSwitch(n int) *SingleSwitch {
	if n < 1 {
		panic("topology: SingleSwitch needs at least one node")
	}
	s := &SingleSwitch{ports: make([]Port, n)}
	for i := 0; i < n; i++ {
		s.ports[i] = Port{Kind: HostPort, Node: i}
	}
	return s
}

// Name implements Topology.
func (s *SingleSwitch) Name() string { return fmt.Sprintf("single-switch(n=%d)", len(s.ports)) }

// NumNodes implements Topology.
func (s *SingleSwitch) NumNodes() int { return len(s.ports) }

// NumSwitches implements Topology.
func (s *SingleSwitch) NumSwitches() int { return 1 }

// Ports implements Topology.
func (s *SingleSwitch) Ports(sw int) []Port { return s.ports }

// HostPort implements Topology.
func (s *SingleSwitch) HostPort(node int) (sw, port int) { return 0, node }

// Candidates implements Topology.
func (s *SingleSwitch) Candidates(sw, dst int, buf []int) []int {
	return append(buf, dst)
}
