package topology

import "fmt"

// Torus3D is a 3-D torus (the Cray XC predecessor topology and the classic
// statically routed HPC network). Switches form a DX x DY x DZ grid with
// wraparound links in each dimension; each switch hosts HostsPerSwitch
// terminal nodes.
//
// Deterministic routing is dimension-order (X then Y then Z) along the
// shorter wrap direction; minimal-adaptive routing may correct any
// still-offending dimension first.
type Torus3D struct {
	DX, DY, DZ     int
	HostsPerSwitch int
	ports          [][]Port
}

// Torus port layout: hosts first, then +x,-x,+y,-y,+z,-z.
const (
	torusXPlus = iota
	torusXMinus
	torusYPlus
	torusYMinus
	torusZPlus
	torusZMinus
)

// NewTorus3D constructs a torus. Dimensions must be >= 1; a dimension of
// size 1 has its links marked Unused.
func NewTorus3D(dx, dy, dz, hostsPerSwitch int) *Torus3D {
	if dx < 1 || dy < 1 || dz < 1 || hostsPerSwitch < 1 {
		panic("topology: invalid torus parameters")
	}
	t := &Torus3D{DX: dx, DY: dy, DZ: dz, HostsPerSwitch: hostsPerSwitch}
	nsw := dx * dy * dz
	t.ports = make([][]Port, nsw)
	for sw := 0; sw < nsw; sw++ {
		x, y, z := t.coords(sw)
		ports := make([]Port, hostsPerSwitch+6)
		for i := 0; i < hostsPerSwitch; i++ {
			ports[i] = Port{Kind: HostPort, Node: sw*hostsPerSwitch + i}
		}
		link := func(slot int, nx, ny, nz int, backSlot int) {
			peer := t.switchAt(nx, ny, nz)
			if peer == sw {
				ports[hostsPerSwitch+slot] = Port{Kind: Unused}
				return
			}
			ports[hostsPerSwitch+slot] = Port{
				Kind:       SwitchPort,
				PeerSwitch: peer,
				PeerPort:   hostsPerSwitch + backSlot,
			}
		}
		link(torusXPlus, (x+1)%dx, y, z, torusXMinus)
		link(torusXMinus, (x-1+dx)%dx, y, z, torusXPlus)
		link(torusYPlus, x, (y+1)%dy, z, torusYMinus)
		link(torusYMinus, x, (y-1+dy)%dy, z, torusYPlus)
		link(torusZPlus, x, y, (z+1)%dz, torusZMinus)
		link(torusZMinus, x, y, (z-1+dz)%dz, torusZPlus)
		t.ports[sw] = ports
	}
	// Dimension-of-size-2 special case: +d and -d reach the same switch; the
	// construction above would give both endpoints' +/- ports inconsistent
	// back-references. Rebuild those as paired parallel links.
	t.fixSize2Dims()
	return t
}

// fixSize2Dims repairs back-port references for dimensions of size 2,
// where both wrap directions lead to the same neighbor. We keep both ports
// as parallel links: switch A's plus-port pairs with B's minus-port and
// vice versa, preserving port symmetry.
func (t *Torus3D) fixSize2Dims() {
	fix := func(plusSlot, minusSlot int, size int) {
		if size != 2 {
			return
		}
		for sw := range t.ports {
			h := t.HostsPerSwitch
			plus := &t.ports[sw][h+plusSlot]
			minus := &t.ports[sw][h+minusSlot]
			if plus.Kind == SwitchPort {
				plus.PeerPort = h + minusSlot
			}
			if minus.Kind == SwitchPort {
				minus.PeerPort = h + plusSlot
			}
		}
	}
	fix(torusXPlus, torusXMinus, t.DX)
	fix(torusYPlus, torusYMinus, t.DY)
	fix(torusZPlus, torusZMinus, t.DZ)
}

func (t *Torus3D) coords(sw int) (x, y, z int) {
	x = sw % t.DX
	y = (sw / t.DX) % t.DY
	z = sw / (t.DX * t.DY)
	return
}

func (t *Torus3D) switchAt(x, y, z int) int { return x + t.DX*(y+t.DY*z) }

// Name implements Topology.
func (t *Torus3D) Name() string {
	return fmt.Sprintf("torus3d(%dx%dx%d,p=%d)", t.DX, t.DY, t.DZ, t.HostsPerSwitch)
}

// NumNodes implements Topology.
func (t *Torus3D) NumNodes() int { return t.DX * t.DY * t.DZ * t.HostsPerSwitch }

// NumSwitches implements Topology.
func (t *Torus3D) NumSwitches() int { return t.DX * t.DY * t.DZ }

// Ports implements Topology.
func (t *Torus3D) Ports(sw int) []Port { return t.ports[sw] }

// HostPort implements Topology.
func (t *Torus3D) HostPort(node int) (sw, port int) {
	return node / t.HostsPerSwitch, node % t.HostsPerSwitch
}

// dirPort returns the port slot moving coordinate cur toward want in a
// dimension of the given size, following the shorter wrap (ties go to the
// plus direction), or -1 if the coordinate already matches.
func dirPort(cur, want, size, plusSlot, minusSlot int) int {
	if cur == want {
		return -1
	}
	fwd := (want - cur + size) % size
	bwd := (cur - want + size) % size
	if fwd <= bwd {
		return plusSlot
	}
	return minusSlot
}

// Candidates implements Topology: dimension-order first candidate, then
// any other productive dimension for minimal-adaptive selection.
func (t *Torus3D) Candidates(sw, dst int, buf []int) []int {
	dsw, hport := t.HostPort(dst)
	if dsw == sw {
		return append(buf, hport)
	}
	x, y, z := t.coords(sw)
	dx, dy, dz := t.coords(dsw)
	h := t.HostsPerSwitch
	if p := dirPort(x, dx, t.DX, torusXPlus, torusXMinus); p >= 0 {
		buf = append(buf, h+p)
	}
	if p := dirPort(y, dy, t.DY, torusYPlus, torusYMinus); p >= 0 {
		buf = append(buf, h+p)
	}
	if p := dirPort(z, dz, t.DZ, torusZPlus, torusZMinus); p >= 0 {
		buf = append(buf, h+p)
	}
	return buf
}
