package topology

import "fmt"

// HyperX is a 2-D HyperX: switches sit on an N1 x N2 grid and every switch
// links directly to all switches sharing either coordinate (each dimension
// is a clique). The paper's Figure 8 calls out "HyperX Dimension Order
// Routing" as the best Halo3D configuration, so DOR (dimension 1 then
// dimension 2) is the deterministic route; minimal-adaptive may correct
// either offending dimension first.
type HyperX struct {
	N1, N2         int
	HostsPerSwitch int
	ports          [][]Port
}

// NewHyperX builds an N1 x N2 HyperX with p hosts per switch.
func NewHyperX(n1, n2, p int) *HyperX {
	if n1 < 1 || n2 < 1 || p < 1 {
		panic("topology: invalid hyperx parameters")
	}
	t := &HyperX{N1: n1, N2: n2, HostsPerSwitch: p}
	nsw := n1 * n2
	t.ports = make([][]Port, nsw)
	for i := 0; i < n1; i++ {
		for j := 0; j < n2; j++ {
			sw := i*n2 + j
			ports := make([]Port, p+(n1-1)+(n2-1))
			for hp := 0; hp < p; hp++ {
				ports[hp] = Port{Kind: HostPort, Node: sw*p + hp}
			}
			for i2 := 0; i2 < n1; i2++ { // dimension-1 clique (vary i)
				if i2 == i {
					continue
				}
				idx := i2
				if i2 > i {
					idx--
				}
				back := i
				if i > i2 {
					back--
				}
				ports[p+idx] = Port{Kind: SwitchPort, PeerSwitch: i2*n2 + j, PeerPort: p + back}
			}
			for j2 := 0; j2 < n2; j2++ { // dimension-2 clique (vary j)
				if j2 == j {
					continue
				}
				idx := j2
				if j2 > j {
					idx--
				}
				back := j
				if j > j2 {
					back--
				}
				ports[p+(n1-1)+idx] = Port{Kind: SwitchPort, PeerSwitch: i*n2 + j2, PeerPort: p + (n1 - 1) + back}
			}
			t.ports[sw] = ports
		}
	}
	return t
}

// Name implements Topology.
func (t *HyperX) Name() string {
	return fmt.Sprintf("hyperx(%dx%d,p=%d)", t.N1, t.N2, t.HostsPerSwitch)
}

// NumNodes implements Topology.
func (t *HyperX) NumNodes() int { return t.N1 * t.N2 * t.HostsPerSwitch }

// NumSwitches implements Topology.
func (t *HyperX) NumSwitches() int { return t.N1 * t.N2 }

// Ports implements Topology.
func (t *HyperX) Ports(sw int) []Port { return t.ports[sw] }

// HostPort implements Topology.
func (t *HyperX) HostPort(node int) (sw, port int) {
	return node / t.HostsPerSwitch, node % t.HostsPerSwitch
}

// dim1Port returns the port index from row i toward row i2.
func (t *HyperX) dim1Port(i, i2 int) int {
	idx := i2
	if i2 > i {
		idx--
	}
	return t.HostsPerSwitch + idx
}

// dim2Port returns the port index from column j toward column j2.
func (t *HyperX) dim2Port(j, j2 int) int {
	idx := j2
	if j2 > j {
		idx--
	}
	return t.HostsPerSwitch + (t.N1 - 1) + idx
}

// Candidates implements Topology: DOR candidate first (correct dimension 1,
// then dimension 2), with the other offending dimension as the adaptive
// alternative.
func (t *HyperX) Candidates(sw, dst int, buf []int) []int {
	dsw, hport := t.HostPort(dst)
	if dsw == sw {
		return append(buf, hport)
	}
	i, j := sw/t.N2, sw%t.N2
	di, dj := dsw/t.N2, dsw%t.N2
	if i != di {
		buf = append(buf, t.dim1Port(i, di))
	}
	if j != dj {
		buf = append(buf, t.dim2Port(j, dj))
	}
	return buf
}
