package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// FixturePkgPath is the import path fixtures are type-checked as. It
// lies under rvma/internal/ so the analyzers treat fixture code exactly
// like model code.
const FixturePkgPath = "rvma/internal/lintfixture"

// wantRE extracts the quoted regexes from a "// want `...`" comment.
// Like analysistest, a line may carry several expectations:
//
//	time.Now() // want `wall clock` `second pattern`
var wantRE = regexp.MustCompile("`([^`]*)`")

// expectation is one // want annotation: a pattern that must be matched
// by a diagnostic on its line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// RunFixture type-checks the fixture directory and applies the
// analyzers, then verifies the diagnostics against the fixture's
// // want annotations. It returns an error per mismatch: a diagnostic
// with no matching annotation, or an annotation no diagnostic matched.
// Allow directives are honored, so fixtures can exercise them too.
func RunFixture(dir string, analyzers []*Analyzer) []error {
	deps, err := fixtureDeps(dir)
	if err != nil {
		return []error{err}
	}
	pkg, err := LoadDir(dir, FixturePkgPath, deps...)
	if err != nil {
		return []error{err}
	}
	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		return []error{err}
	}
	wants, err := parseWants(dir)
	if err != nil {
		return []error{err}
	}

	var errs []error
	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		found := false
		for _, w := range wants {
			if w.file == base && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			errs = append(errs, fmt.Errorf("unexpected diagnostic at %s:%d: %s [%s]",
				base, d.Pos.Line, d.Message, d.Analyzer))
		}
	}
	for _, w := range wants {
		if !w.matched {
			errs = append(errs, fmt.Errorf("%s:%d: expected diagnostic matching %q, got none",
				w.file, w.line, w.pattern))
		}
	}
	return errs
}

// fixtureDeps lists the unique import paths of the fixture's files so
// LoadDir can resolve their export data.
func fixtureDeps(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	seen := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				seen[path] = true
			}
		}
	}
	deps := make([]string, 0, len(seen))
	for p := range seen {
		deps = append(deps, p)
	}
	sort.Strings(deps)
	return deps, nil
}

// parseWants scans the fixture files for // want annotations.
func parseWants(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			for _, m := range wantRE.FindAllStringSubmatch(line[idx:], -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", e.Name(), i+1, m[1], err)
				}
				wants = append(wants, &expectation{file: e.Name(), line: i + 1, pattern: re})
			}
		}
	}
	return wants, nil
}
