package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	PkgPath   string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` on the patterns and decodes
// the JSON stream. -export compiles export data for every package into
// the build cache, which is what lets the type checker resolve imports
// without golang.org/x/tools: the stdlib gc importer reads those files
// directly.
func goList(dir string, patterns ...string) ([]*listedPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// exportLookup builds the importer lookup function over the listed
// packages' export files, honoring per-package vendor import maps.
func exportLookup(pkgs []*listedPackage) func(path string) (io.ReadCloser, error) {
	byPath := make(map[string]*listedPackage, len(pkgs))
	importMap := make(map[string]string)
	for _, p := range pkgs {
		byPath[p.ImportPath] = p
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
	}
	return func(path string) (io.ReadCloser, error) {
		if real, ok := importMap[path]; ok {
			path = real
		}
		p := byPath[path]
		if p == nil || p.Export == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(p.Export)
	}
}

// Load type-checks the packages matched by patterns (relative to dir;
// empty dir means the current directory) and returns them ready for
// analysis. Standard-library packages and pure dependencies are consumed
// as export data only, never re-parsed.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(listed))
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := typeCheck(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadDir type-checks a single directory of Go files as the given import
// path, resolving imports against the export data of deps (additional
// `go list` patterns, typically "std"-ish paths plus rvma/...). The
// fixture test harness uses it for testdata packages that `go list`
// cannot see.
func LoadDir(dir, asPath string, deps ...string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, e.Name())
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	listed, err := goList(dir, deps...)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(listed))
	return typeCheck(fset, imp, asPath, dir, files)
}

// CheckFiles type-checks an explicit file list using caller-supplied
// import and export-file maps. This is the vet-tool path: the go command
// hands the tool exactly one package unit per invocation, with export
// data for every dependency already built.
func CheckFiles(pkgPath, dir string, goFiles []string, importMap, packageFile map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		if real, ok := importMap[path]; ok {
			path = real
		}
		file := packageFile[path]
		if file == "" {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)
	var names []string
	for _, f := range goFiles {
		if filepath.IsAbs(f) {
			rel, err := filepath.Rel(dir, f)
			if err != nil {
				return nil, err
			}
			f = rel
		}
		names = append(names, f)
	}
	return typeCheck(fset, imp, pkgPath, dir, names)
}

// typeCheck parses and type-checks one package's files.
func typeCheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath:   pkgPath,
		Fset:      fset,
		Files:     files,
		Types:     tpkg,
		TypesInfo: info,
	}, nil
}
