package lint

import (
	"go/ast"
	"go/types"
)

// simPkgPath is where the deterministic kernel lives; the analyzers
// recognize its Engine and Time types by identity, not by name matching,
// so aliasing or shadowing cannot fool them.
const simPkgPath = "rvma/internal/sim"

// modelPathPrefix marks packages whose functions run on the engine; any
// call into them can schedule events or mutate simulation state.
const modelPathPrefix = "rvma/"

// calleeFunc resolves a call expression to the function or method it
// invokes, or nil for builtins, conversions and indirect calls through
// function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// isNamed reports whether t (after pointer unwrapping) is the named type
// pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isEngineMethod reports whether f is one of the named methods on
// sim.Engine.
func isEngineMethod(f *types.Func, names ...string) bool {
	if f == nil {
		return false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	if !isNamed(sig.Recv().Type(), simPkgPath, "Engine") {
		return false
	}
	for _, n := range names {
		if f.Name() == n {
			return true
		}
	}
	return false
}

// funcPkgPath returns the import path of the package f is declared in,
// or "" when unknown.
func funcPkgPath(f *types.Func) string {
	if f == nil || f.Pkg() == nil {
		return ""
	}
	return f.Pkg().Path()
}

// pkgNameOf resolves an identifier to the package it names (for
// selector expressions like time.Now), or nil.
func pkgNameOf(info *types.Info, x ast.Expr) *types.PkgName {
	id, ok := ast.Unparen(x).(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}
