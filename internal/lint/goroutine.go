package lint

import (
	"go/ast"
)

// Goroutine flags go statements in model packages. The kernel guarantees
// that exactly one goroutine — the engine loop or one cooperatively
// scheduled process — is runnable at any instant; a raw go statement
// races the engine, and the Go scheduler's interleaving is not
// reproducible across runs. The single legitimate use is the kernel's
// own process machinery (internal/sim/process.go), which carries an
// allow directive.
var Goroutine = &Analyzer{
	Name: "goroutine",
	Doc: "forbid go statements in model packages; all model code must run on the engine " +
		"goroutine (use Engine.Spawn for process-style concurrency)",
	Run: runGoroutine,
}

func runGoroutine(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"go statement escapes the engine goroutine; model code must use Engine.Spawn (kernel-internal uses carry an allow directive)")
			}
			return true
		})
	}
	return nil
}
