package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"rvma/internal/lint/flow"
)

// PSUnits enforces unit safety for the integer-picosecond clock.
var PSUnits = &Analyzer{
	Name: "psunits",
	Doc: "unit-safety for integer-picosecond time: flags float conversions of " +
		"sim.Time outside Time's own accessor methods (precision loss breaks " +
		"reproducibility across FPUs), integers carrying nanoseconds (from " +
		"time.Duration) mixed or converted into picosecond values, and unguarded " +
		"sim.Time multiplications that can overflow int64 at 8k-node scale — " +
		"use sim.Scale / sim.ScaleF for checked arithmetic",
	Run: runPSUnits,
}

// unit tags for integer values whose unit is known.
const (
	unitNS = "nanoseconds (via time.Duration)"
	unitPS = "picoseconds (via sim.Time)"
)

func isSimTime(t types.Type) bool  { return t != nil && isNamed(t, simPkgPath, "Time") }
func isDuration(t types.Type) bool { return t != nil && isNamed(t, "time", "Duration") }
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func runPSUnits(pass *Pass) error {
	info := pass.TypesInfo

	// Syntactic checks: float boundary crossings and unguarded
	// multiplications. Time's own accessor methods are the sanctioned
	// int->float boundary and are exempt.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if timeReceiverMethod(info, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkFloatBoundary(pass, info, n)
				case *ast.BinaryExpr:
					checkOverflowProneMul(pass, info, n)
				}
				return true
			})
		}
	}

	// Flow check: integer variables that carry a unit (extracted from a
	// Duration or a Time) must not mix or cross back without conversion.
	ctx := pass.fl
	if ctx == nil {
		return nil
	}
	for _, fi := range ctx.funcs {
		checkUnitFlow(pass, info, fi)
	}
	return nil
}

// timeReceiverMethod reports whether fd is a method on sim.Time (or, in
// the fixture/sim package itself, on the local Time type): those
// accessors are the one place int->float conversion is sanctioned.
func timeReceiverMethod(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	if tv, ok := info.Types[fd.Recv.List[0].Type]; ok {
		return isSimTime(tv.Type)
	}
	return false
}

// checkFloatBoundary flags conversions between sim.Time and floats.
func checkFloatBoundary(pass *Pass, info *types.Info, call *ast.CallExpr) {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	argT := info.Types[call.Args[0]].Type
	if argT == nil {
		return
	}
	if isFloat(tv.Type) && isSimTime(argT) {
		pass.Reportf(call.Pos(),
			"float conversion of sim.Time loses picosecond precision and varies across FPUs; "+
				"use Time's accessor methods (Seconds/Nanoseconds) at the edge, never in model arithmetic")
	}
	if isSimTime(tv.Type) && isFloat(argT) {
		pass.Reportf(call.Pos(),
			"sim.Time built from a float rounds implicitly; use sim.FromNanos/sim.ScaleF, "+
				"which own the rounding, or integer arithmetic via sim.Scale")
	}
}

// checkOverflowProneMul flags a multiplication producing sim.Time where
// neither operand is a compile-time constant: at 8k-node scale a
// payload-size times per-byte-cost product overflows int64 picoseconds
// silently. sim.Scale performs the same multiply with an overflow check.
func checkOverflowProneMul(pass *Pass, info *types.Info, bin *ast.BinaryExpr) {
	if bin.Op != token.MUL {
		return
	}
	tv, ok := info.Types[bin]
	if !ok || !isSimTime(tv.Type) {
		return
	}
	if info.Types[bin.X].Value != nil || info.Types[bin.Y].Value != nil {
		return // a constant factor is bounded and auditable
	}
	pass.Reportf(bin.Pos(),
		"unguarded sim.Time multiplication can overflow int64 picoseconds at scale; "+
			"use sim.Scale(n, per), which panics on overflow instead of wrapping")
}

// unitState tags integer variables with the time unit they carry.
type unitState map[types.Object]string

var unitLattice = flow.Lattice[unitState]{
	Bottom: func() unitState { return unitState{} },
	Clone: func(s unitState) unitState {
		out := make(unitState, len(s))
		for k, v := range s {
			out[k] = v
		}
		return out
	},
	Join: func(dst, src unitState) bool {
		changed := false
		for k, v := range src {
			if cur, ok := dst[k]; !ok {
				dst[k] = v
				changed = true
			} else if cur != v && cur != "" {
				// Conflicting units on merging paths: drop to unknown rather
				// than guessing (the mixing point itself was already flagged).
				dst[k] = ""
				changed = true
			}
		}
		return changed
	},
}

// checkUnitFlow runs the unit-tag dataflow over one function body and
// reports mixing and unconverted crossings in a final pass.
func checkUnitFlow(pass *Pass, info *types.Info, fi *funcInfo) {
	eval := &unitEval{info: info}
	transfer := func(b *flow.Block, in unitState) unitState {
		eval.state = in
		eval.apply(b, nil)
		return in
	}
	in := flow.Forward(fi.graph, unitLattice, unitState{}, transfer)
	for _, b := range fi.graph.Blocks {
		if !b.Live {
			continue
		}
		st, ok := in[b]
		if !ok {
			continue
		}
		eval.state = unitLattice.Clone(st)
		eval.apply(b, pass)
	}
}

type unitEval struct {
	info  *types.Info
	state unitState
}

// apply runs one block's transfer; with a non-nil pass it also reports.
func (ev *unitEval) apply(b *flow.Block, pass *Pass) {
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						obj := ev.info.Defs[id]
						if obj == nil {
							obj = ev.info.Uses[id]
						}
						if obj != nil {
							if u := ev.unitOf(n.Rhs[i]); u != "" {
								ev.state[obj] = u
							} else {
								delete(ev.state, obj)
							}
						}
					}
				}
			}
		}
		if pass != nil {
			ev.report(n, pass)
		}
	}
}

// unitOf evaluates the unit tag of an integer expression.
func (ev *unitEval) unitOf(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := ev.info.Uses[e]; obj != nil {
			return ev.state[obj]
		}
	case *ast.CallExpr:
		// Integer conversion of a unit-bearing value mints the tag.
		if tv, ok := ev.info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			if isInteger(tv.Type) && !isSimTime(tv.Type) && !isDuration(tv.Type) {
				argT := ev.info.Types[e.Args[0]].Type
				if isDuration(argT) {
					return unitNS
				}
				if isSimTime(argT) {
					return unitPS
				}
				return ev.unitOf(e.Args[0])
			}
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.REM:
			ux, uy := ev.unitOf(e.X), ev.unitOf(e.Y)
			if ux != "" {
				return ux
			}
			return uy
		case token.MUL, token.QUO:
			ux, uy := ev.unitOf(e.X), ev.unitOf(e.Y)
			if ux != "" {
				return ux
			}
			return uy
		}
	}
	return ""
}

// report flags unit violations inside one node.
func (ev *unitEval) report(n ast.Node, pass *Pass) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.BinaryExpr:
			switch x.Op {
			case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				ux, uy := ev.unitOf(x.X), ev.unitOf(x.Y)
				if ux != "" && uy != "" && ux != uy {
					pass.Reportf(x.OpPos,
						"mixing %s with %s in one expression; convert explicitly (1 ns = 1000 ps) before combining", ux, uy)
				}
			}
		case *ast.CallExpr:
			tv, ok := ev.info.Types[x.Fun]
			if !ok || !tv.IsType() || len(x.Args) != 1 {
				return true
			}
			if isSimTime(tv.Type) {
				if u := ev.unitOf(x.Args[0]); u == unitNS {
					pass.Reportf(x.Pos(),
						"integer carrying %s converted to sim.Time without a unit conversion; multiply by sim.Nanosecond first", unitNS)
				}
			}
			if isDuration(tv.Type) {
				if u := ev.unitOf(x.Args[0]); u == unitPS {
					pass.Reportf(x.Pos(),
						"integer carrying %s converted to time.Duration without a unit conversion; divide by sim.Nanosecond first", unitPS)
				}
			}
		}
		return true
	})
}
