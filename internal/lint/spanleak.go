package lint

import (
	"go/ast"
	"go/types"

	"rvma/internal/lint/flow"
)

// SpanLeak is the static twin of the simdebug span-conservation assert:
// a span held in a local must reach a terminal on every path.
var SpanLeak = &Analyzer{
	Name: "spanleak",
	Doc: "prove every metrics span started and kept in a local reaches exactly one " +
		"terminal (End/EndNacked/EndAbandoned) on all paths, including early returns " +
		"and error branches. A span that escapes — captured by a closure, passed to a " +
		"callee, returned, or stored in a field — transfers ownership and is the new " +
		"owner's responsibility; panic paths are exempt (the run is already dead)",
	Run: runSpanLeak,
}

const metricsPkgPath = "rvma/internal/metrics"

// spanTerminals are the Span methods that close a span's lifecycle.
var spanTerminals = map[string]bool{
	"End":          true,
	"EndNacked":    true,
	"EndAbandoned": true,
}

// isBeginSpan reports whether the call starts a span on a metrics
// registry.
func isBeginSpan(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	return f != nil && f.Name() == "BeginSpan" && funcPkgPath(f) == metricsPkgPath
}

// terminalOn reports whether node n contains a terminal call on the
// variable v (sp.End(...), sp.EndNacked(...), sp.EndAbandoned(...)).
func terminalOn(info *types.Info, n ast.Node, v types.Object) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || !spanTerminals[sel.Sel.Name] {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == v {
			f := calleeFunc(info, call)
			if f != nil && funcPkgPath(f) == metricsPkgPath {
				found = true
			}
		}
		return !found
	})
	return found
}

func runSpanLeak(pass *Pass) error {
	ctx := pass.fl
	if ctx == nil {
		return nil
	}
	for _, fi := range ctx.funcs {
		checkSpansIn(pass, ctx, fi)
	}
	return nil
}

// tracked is one span-holding local under analysis.
type tracked struct {
	v     types.Object
	begin *ast.CallExpr
	// block and node index of the BeginSpan assignment.
	block *flow.Block
	nodeI int
}

func checkSpansIn(pass *Pass, ctx *flowCtx, fi *funcInfo) {
	info := ctx.pkg.TypesInfo
	var spans []tracked

	for _, b := range fi.graph.Blocks {
		if !b.Live {
			continue
		}
		for i, n := range b.Nodes {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isBeginSpan(info, call) {
					pass.Reportf(call.Pos(),
						"BeginSpan result discarded: the span can never reach a terminal and will leak")
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
					continue
				}
				call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
				if !ok || !isBeginSpan(info, call) {
					continue
				}
				id, ok := n.Lhs[0].(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil {
					spans = append(spans, tracked{v: obj, begin: call, block: b, nodeI: i})
				}
			}
		}
	}
	if len(spans) == 0 {
		return
	}

	for _, sp := range spans {
		if escapes(info, fi.body(), sp.v) {
			continue // ownership transferred; the receiver closes it
		}
		checkSpanPaths(pass, info, fi, sp)
	}
}

// escapes reports whether v's value leaves the function's hands: used as
// a call argument, returned, assigned anywhere, captured by a function
// literal, put in a composite literal, or address-taken. Method calls on
// v (sp.Stage, sp.End) are uses, not escapes.
func escapes(info *types.Info, body *ast.BlockStmt, v types.Object) bool {
	esc := false
	isV := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && info.Uses[id] == v
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if esc {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok && info.Uses[id] == v {
					esc = true
				}
				return !esc
			})
			return false
		case *ast.CallExpr:
			for _, a := range n.Args {
				if isV(a) {
					esc = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if isV(r) {
					esc = true
				}
			}
		case *ast.AssignStmt:
			for _, r := range n.Rhs {
				// Reassigning the variable from BeginSpan again is handled as
				// its own tracked span; any other appearance of v on a RHS
				// hands the pointer to something else.
				if isV(r) {
					esc = true
				}
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if isV(el) {
					esc = true
				}
			}
		case *ast.UnaryExpr:
			if isV(n.X) {
				esc = true // address taken or channel receive misuse
			}
		case *ast.SendStmt:
			if isV(n.Value) {
				esc = true
			}
		case *ast.IndexExpr:
			if isV(n.Index) {
				esc = true
			}
		}
		return !esc
	}
	ast.Inspect(body, walk)
	return esc
}

// boolLattice is a must-analysis domain: true means "guaranteed", joins
// are conjunctions, and the optimistic bottom is true so the fixpoint
// descends toward false only where a path disproves the guarantee.
var boolLattice = flow.Lattice[*bool]{
	Bottom: func() *bool { b := true; return &b },
	Clone:  func(s *bool) *bool { b := *s; return &b },
	Join: func(dst, src *bool) bool {
		if *dst && !*src {
			*dst = false
			return true
		}
		return false
	},
}

// checkSpanPaths verifies one non-escaping span local: every path from
// its BeginSpan to the function exit must execute a terminal (leak
// check), and no path may execute a second terminal after one already
// ran on every route there (double-terminal check).
func checkSpanPaths(pass *Pass, info *types.Info, fi *funcInfo, sp tracked) {
	g := fi.graph

	// A deferred terminal covers every exit at once.
	for _, d := range g.Defers {
		if terminalOn(info, d, sp.v) {
			return
		}
	}

	// Backward must-reach-terminal: state[b] answers "is a terminal
	// guaranteed between the end of b and the exit".
	f := false
	reach := flow.Backward(g, boolLattice, &f, func(b *flow.Block, out *bool) *bool {
		if b.Panics {
			t := true
			return &t
		}
		for _, n := range b.Nodes {
			if terminalOn(info, n, sp.v) {
				t := true
				return &t
			}
		}
		return out
	})

	// Covered if a terminal runs later in the begin block itself, or is
	// guaranteed from the block's end onward.
	for i := sp.nodeI + 1; i < len(sp.block.Nodes); i++ {
		if terminalOn(info, sp.block.Nodes[i], sp.v) {
			goto closed
		}
	}
	if r, ok := reach[sp.block]; !ok || !*r {
		pass.Reportf(sp.begin.Pos(),
			"span does not reach End/EndNacked/EndAbandoned on every path from here; "+
				"a missed branch leaks the span and skews stage attribution")
		return
	}

closed:
	// Forward must-closed: state[b] answers "has a terminal definitely
	// run before the start of b". A terminal executing under
	// must-closed is a double close.
	f2 := false
	closedIn := flow.Forward(g, boolLattice, &f2, func(b *flow.Block, in *bool) *bool {
		closed := *in
		for _, n := range b.Nodes {
			if terminalOn(info, n, sp.v) {
				closed = true
			}
		}
		return &closed
	})
	for _, b := range g.Blocks {
		if !b.Live || b.Panics {
			continue
		}
		in, ok := closedIn[b]
		if !ok {
			continue
		}
		closed := *in
		nodes := b.Nodes
		if b == sp.block {
			// In the block that begins the span, the incoming state
			// describes a previous binding of the variable (or nothing);
			// the new span starts open at the node after BeginSpan.
			closed = false
			nodes = b.Nodes[sp.nodeI+1:]
		}
		for _, n := range nodes {
			if terminalOn(info, n, sp.v) {
				if closed {
					pass.Reportf(n.Pos(),
						"span already reached a terminal on every path here; second End call is dead")
				}
				closed = true
			}
		}
	}
}
