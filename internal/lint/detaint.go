package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"rvma/internal/lint/flow"
)

// Detaint tracks nondeterminism from its sources to the places where it
// would corrupt reproducibility.
var Detaint = &Analyzer{
	Name: "detaint",
	Doc: "taint analysis from nondeterminism sources (wall clock, global rand, map " +
		"iteration order, pointer formatting, unsafe pointers) through assignments, " +
		"returns and call summaries into sinks: event scheduling, metrics/attrib " +
		"recording, and printed output. Catches laundering the syntactic bans " +
		"(wallclock, maprange) cannot see, e.g. a map key stored in a local and " +
		"scheduled three statements later",
	Run: runDetaint,
}

// Taint causes, joined to the lexicographic minimum. The strings appear
// verbatim in diagnostics.
const (
	causeMapOrder = "map iteration order"
	causePointer  = "pointer identity"
	causeRand     = "unseeded global randomness"
	causeWall     = "wall-clock time"
)

// taintState maps variables (and named-result objects) to their taint.
type taintState map[types.Object]flow.Taint

var taintLattice = flow.Lattice[taintState]{
	Bottom: func() taintState { return taintState{} },
	Clone: func(s taintState) taintState {
		out := make(taintState, len(s))
		for k, v := range s {
			out[k] = v
		}
		return out
	},
	Join: func(dst, src taintState) bool {
		changed := false
		for k, v := range src {
			merged := flow.JoinTaint(dst[k], v)
			if merged != dst[k] {
				dst[k] = merged
				changed = true
			}
		}
		return changed
	},
}

// taintFinding is one deferred detaint diagnostic, recorded during
// summary construction and replayed when the analyzer runs.
type taintFinding struct {
	pos token.Pos
	msg string
}

// computeTaintSummary runs the taint fixpoint over one function body,
// fills in the function's call summary (result causes, param-to-result
// flow, param sinks), and records diagnostics for cause-tainted values
// reaching sinks. Called once per function in bottom-up order.
func computeTaintSummary(ctx *flowCtx, fi *funcInfo) {
	info := ctx.pkg.TypesInfo
	ev := &taintEval{ctx: ctx, info: info}

	// Seed parameters (receiver first) with their bit so flows into
	// returns and sinks are attributed to the right parameter.
	boundary := taintState{}
	var paramObjs []types.Object
	if sig := fi.sig(info); sig != nil {
		if sig.Recv() != nil {
			paramObjs = append(paramObjs, sig.Recv())
		}
		for i := 0; i < sig.Params().Len(); i++ {
			paramObjs = append(paramObjs, sig.Params().At(i))
		}
	}
	for i, obj := range paramObjs {
		if i < 64 {
			boundary[obj] = flow.Taint{Params: 1 << i}
		}
	}

	var sum *flow.Summary
	if fi.obj != nil {
		sum = ctx.sums.GetOrCreate(fi.obj)
		// Recompute idempotently: a package analyzed twice (tests) must
		// not accumulate stale flow bits.
		sum.ResultCause = ""
		for i := range sum.ParamToResult {
			sum.ParamToResult[i] = false
			sum.ParamSink[i] = ""
		}
	}

	transfer := func(b *flow.Block, in taintState) taintState {
		ev.state = in
		ev.transferBlock(b, nil, nil)
		return in
	}
	in := flow.Forward(fi.graph, taintLattice, boundary, transfer)

	// Final pass: re-apply the transfer over each live block from its
	// fixpoint IN state, this time collecting sink hits and return flows.
	for _, b := range fi.graph.Blocks {
		if !b.Live {
			continue
		}
		st, ok := in[b]
		if !ok {
			continue
		}
		ev.state = taintLattice.Clone(st)
		ev.transferBlock(b, sum, func(pos token.Pos, msg string) {
			ctx.taintFindings = append(ctx.taintFindings, taintFinding{pos: pos, msg: msg})
		})
		// Return flows into the summary.
		if sum != nil {
			for _, n := range b.Nodes {
				ret, ok := n.(*ast.ReturnStmt)
				if !ok {
					continue
				}
				var t flow.Taint
				if len(ret.Results) == 0 {
					// Naked return: named results carry the flow.
					if sig := fi.sig(info); sig != nil {
						for i := 0; i < sig.Results().Len(); i++ {
							t = flow.JoinTaint(t, ev.state[sig.Results().At(i)])
						}
					}
				}
				for _, r := range ret.Results {
					t = flow.JoinTaint(t, ev.taintOf(r))
				}
				if t.Cause != "" {
					sum.ResultCause = flow.JoinTaint(flow.Taint{Cause: sum.ResultCause}, flow.Taint{Cause: t.Cause}).Cause
				}
				for i := range sum.ParamToResult {
					if t.Params&(1<<i) != 0 {
						sum.ParamToResult[i] = true
					}
				}
			}
		}
	}
}

// runDetaint replays the findings recorded while building the package's
// flow context.
func runDetaint(pass *Pass) error {
	ctx := pass.fl
	if ctx == nil {
		return nil
	}
	for _, f := range ctx.taintFindings {
		pass.Reportf(f.pos, "%s", f.msg)
	}
	return nil
}

// taintEval evaluates expression taint against a state and applies
// statement transfer functions.
type taintEval struct {
	ctx   *flowCtx
	info  *types.Info
	state taintState
}

// transferBlock applies every node of a block to the state. When report
// is non-nil, sink hits are emitted and (when sum is non-nil) parameter
// sinks are recorded; the extra work only happens in the final pass.
func (ev *taintEval) transferBlock(b *flow.Block, sum *flow.Summary, report func(token.Pos, string)) {
	if b.Range != nil {
		ev.transferRange(b.Range)
	}
	for _, n := range b.Nodes {
		switch n := n.(type) {
		case *ast.AssignStmt:
			ev.transferAssign(n)
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						ev.transferValueSpec(vs)
					}
				}
			}
		case *ast.ExprStmt:
			ev.transferCallStmt(n.X)
		}
		// Sinks can appear in any expression position (a scheduled call in
		// a condition, a defer, a return value).
		if report != nil && !b.Panics {
			ev.checkSinks(n, sum, report)
		}
	}
}

// transferRange applies a range clause: map iteration taints the
// iteration variables with the map-order cause; other range kinds
// propagate the operand's taint to the value variable.
func (ev *taintEval) transferRange(r *ast.RangeStmt) {
	xt := ev.taintOf(r.X)
	isMap := false
	if tv, ok := ev.info.Types[r.X]; ok && tv.Type != nil {
		_, isMap = tv.Type.Underlying().(*types.Map)
	}
	set := func(e ast.Expr, t flow.Taint) {
		if e == nil {
			return
		}
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := ev.info.Defs[id]
		if obj == nil {
			obj = ev.info.Uses[id]
		}
		if obj != nil {
			ev.state[obj] = t
		}
	}
	if isMap {
		t := flow.JoinTaint(xt, flow.Taint{Cause: causeMapOrder})
		set(r.Key, t)
		set(r.Value, t)
	} else {
		set(r.Key, flow.Taint{})
		set(r.Value, xt)
	}
}

// commutativeOps are the compound-assignment operators under which
// map-iteration order cannot be observed: accumulating with them over a
// map range yields the same result in any order, so the map-order cause
// is dropped (other causes still propagate — summing wall-clock samples
// is still nondeterministic).
var commutativeOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.AND_ASSIGN: true,
	token.OR_ASSIGN:  true,
	token.XOR_ASSIGN: true,
}

func (ev *taintEval) transferAssign(as *ast.AssignStmt) {
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		// Compound assignment: join RHS into LHS.
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		rt := ev.taintOf(as.Rhs[0])
		if commutativeOps[as.Tok] && rt.Cause == causeMapOrder {
			rt.Cause = ""
		}
		ev.assignTo(as.Lhs[0], flow.JoinTaint(ev.taintOfLHS(as.Lhs[0]), rt), false)
		return
	}
	if len(as.Lhs) == len(as.Rhs) {
		// Evaluate all RHS first (Go semantics), then assign.
		ts := make([]flow.Taint, len(as.Rhs))
		for i, r := range as.Rhs {
			ts[i] = ev.taintOf(r)
		}
		for i, l := range as.Lhs {
			ev.assignTo(l, ts[i], true)
		}
		return
	}
	// Tuple assignment from a single multi-value expression.
	if len(as.Rhs) == 1 {
		t := ev.taintOf(as.Rhs[0])
		for _, l := range as.Lhs {
			ev.assignTo(l, t, true)
		}
	}
}

func (ev *taintEval) transferValueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) == 0 {
		return
	}
	if len(vs.Values) == len(vs.Names) {
		for i, name := range vs.Names {
			if obj := ev.info.Defs[name]; obj != nil {
				ev.state[obj] = ev.taintOf(vs.Values[i])
			}
		}
		return
	}
	t := ev.taintOf(vs.Values[0])
	for _, name := range vs.Names {
		if obj := ev.info.Defs[name]; obj != nil {
			ev.state[obj] = t
		}
	}
}

// transferCallStmt handles statement-position calls with sanitizing
// side effects: sorting a slice destroys any iteration-order taint it
// carried, which is exactly the repository's sanctioned laundering
// pattern (collect map keys, sort, then iterate the slice).
func (ev *taintEval) transferCallStmt(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	callee := calleeFunc(ev.info, call)
	if callee == nil {
		return
	}
	pkg := funcPkgPath(callee)
	if pkg != "sort" && pkg != "slices" {
		return
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
			if obj := ev.info.Uses[id]; obj != nil {
				delete(ev.state, obj)
			}
		}
	}
}

// assignTo writes taint t through an assignment target. strong reports
// whether the write overwrites (plain assignment to an identifier) or
// must join (element and field stores). Stores into a map or slice
// element do not taint the container: element order inside a map is not
// observable until iteration, which transferRange re-taints.
func (ev *taintEval) assignTo(lhs ast.Expr, t flow.Taint, strong bool) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := ev.info.Defs[l]
		if obj == nil {
			obj = ev.info.Uses[l]
		}
		if obj == nil {
			return
		}
		if strong {
			if t.IsZero() {
				delete(ev.state, obj)
			} else {
				ev.state[obj] = t
			}
		} else {
			ev.state[obj] = flow.JoinTaint(ev.state[obj], t)
		}
	case *ast.SelectorExpr:
		// x.f = v: the struct now carries v's taint.
		if base := rootIdent(l.X); base != nil {
			if obj := ev.info.Uses[base]; obj != nil {
				ev.state[obj] = flow.JoinTaint(ev.state[obj], t)
			}
		}
	case *ast.StarExpr:
		ev.assignTo(l.X, t, false)
	case *ast.IndexExpr:
		// m[k] = v / s[i] = v: keyed stores are order-insensitive.
	}
}

// taintOfLHS reads the current taint of an assignment target.
func (ev *taintEval) taintOfLHS(lhs ast.Expr) flow.Taint {
	return ev.taintOf(lhs)
}

// rootIdent unwraps selectors, indexes, stars and parens to the leftmost
// identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// taintOf evaluates the taint of an expression under the current state.
func (ev *taintEval) taintOf(e ast.Expr) flow.Taint {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := ev.info.Uses[e]; obj != nil {
			return ev.state[obj]
		}
		if obj := ev.info.Defs[e]; obj != nil {
			return ev.state[obj]
		}
		return flow.Taint{}
	case *ast.SelectorExpr:
		// Field read: the container's taint. Package selectors resolve to
		// an object with no tracked state and contribute nothing.
		if pkgNameOf(ev.info, e.X) != nil {
			return flow.Taint{}
		}
		t := ev.taintOf(e.X)
		if obj := ev.info.Uses[e.Sel]; obj != nil {
			t = flow.JoinTaint(t, ev.state[obj])
		}
		return t
	case *ast.CallExpr:
		return ev.taintOfCall(e)
	case *ast.BinaryExpr:
		return flow.JoinTaint(ev.taintOf(e.X), ev.taintOf(e.Y))
	case *ast.UnaryExpr:
		return ev.taintOf(e.X)
	case *ast.StarExpr:
		return ev.taintOf(e.X)
	case *ast.IndexExpr:
		return ev.taintOf(e.X)
	case *ast.SliceExpr:
		return ev.taintOf(e.X)
	case *ast.TypeAssertExpr:
		return ev.taintOf(e.X)
	case *ast.CompositeLit:
		var t flow.Taint
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			t = flow.JoinTaint(t, ev.taintOf(el))
		}
		return t
	}
	return flow.Taint{}
}

// taintOfCall evaluates calls: conversions, nondeterminism sources,
// summarized callees, and the conservative default.
func (ev *taintEval) taintOfCall(call *ast.CallExpr) flow.Taint {
	// Type conversion.
	if tv, ok := ev.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		t := ev.taintOf(call.Args[0])
		if cause := conversionCause(ev.info, tv.Type, call.Args[0]); cause != "" {
			t = flow.JoinTaint(t, flow.Taint{Cause: cause})
		}
		return t
	}

	callee := calleeFunc(ev.info, call)

	// Builtins: len and cap of anything are deterministic counts; the
	// rest propagate their arguments.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && callee == nil {
		if _, isBuiltin := ev.info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap", "make", "new":
				return flow.Taint{}
			}
			var t flow.Taint
			for _, a := range call.Args {
				t = flow.JoinTaint(t, ev.taintOf(a))
			}
			return t
		}
	}

	if cause := sourceCause(ev.info, call, callee); cause != "" {
		return flow.Taint{Cause: cause}
	}

	// fmt formatting returns a string derived from its inputs; %p (or an
	// unsafe.Pointer argument) injects address nondeterminism.
	if pkg := funcPkgPath(callee); pkg == "fmt" && callee != nil {
		name := callee.Name()
		if strings.HasPrefix(name, "Sprint") || name == "Errorf" || strings.HasPrefix(name, "Append") {
			t := ev.taintOfArgs(call)
			if cause := formatPointerCause(ev.info, call); cause != "" {
				t = flow.JoinTaint(t, flow.Taint{Cause: cause})
			}
			return t
		}
	}

	// Summarized callee: precise flow.
	if sum := ev.ctx.sums.Get(callee); sum != nil {
		t := flow.Taint{Cause: sum.ResultCause}
		for i, arg := range callArgs(ev.info, call, callee) {
			if i < len(sum.ParamToResult) && sum.ParamToResult[i] {
				t = flow.JoinTaint(t, ev.taintOf(arg))
			}
		}
		return t
	}

	// Unknown callee: assume arguments and receiver can flow to results.
	return ev.taintOfArgs(call)
}

// taintOfArgs joins the taints of a call's receiver and arguments.
func (ev *taintEval) taintOfArgs(call *ast.CallExpr) flow.Taint {
	var t flow.Taint
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && pkgNameOf(ev.info, sel.X) == nil {
		t = flow.JoinTaint(t, ev.taintOf(sel.X))
	}
	for _, a := range call.Args {
		t = flow.JoinTaint(t, ev.taintOf(a))
	}
	return t
}

// callArgs returns the call's effective argument list aligned with the
// callee's summary slots: the receiver (for method values invoked via a
// selector) followed by the ordinary arguments.
func callArgs(info *types.Info, call *ast.CallExpr, callee *types.Func) []ast.Expr {
	var args []ast.Expr
	if callee != nil {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				args = append(args, sel.X)
			} else {
				args = append(args, nil) // method expression: receiver is args[0]... keep slots aligned
			}
		}
	}
	return append(args, call.Args...)
}

// sourceCause recognizes calls that mint nondeterminism.
func sourceCause(info *types.Info, call *ast.CallExpr, callee *types.Func) string {
	if callee == nil {
		return ""
	}
	switch funcPkgPath(callee) {
	case "time":
		switch callee.Name() {
		case "Now", "Since", "Until":
			return causeWall
		}
	case "math/rand", "math/rand/v2", "crypto/rand":
		// Any call into the global-rand packages (top-level funcs or
		// methods of a source the caller seeded ambiently).
		return causeRand
	case "os":
		if callee.Name() == "Getpid" {
			return causePointer
		}
	}
	return ""
}

// conversionCause flags conversions that expose address bits: a pointer
// (or unsafe.Pointer) converted to uintptr, or anything converted to
// unsafe.Pointer.
func conversionCause(info *types.Info, target types.Type, arg ast.Expr) string {
	tb, _ := target.Underlying().(*types.Basic)
	argType := info.Types[arg].Type
	if argType == nil {
		return ""
	}
	if tb != nil && tb.Kind() == types.Uintptr {
		switch argType.Underlying().(type) {
		case *types.Pointer:
			return causePointer
		case *types.Basic:
			if argType.Underlying().(*types.Basic).Kind() == types.UnsafePointer {
				return causePointer
			}
		}
	}
	if tb != nil && tb.Kind() == types.UnsafePointer {
		return causePointer
	}
	return ""
}

// formatPointerCause flags %p verbs in a constant format string and
// unsafe.Pointer arguments to fmt calls.
func formatPointerCause(info *types.Info, call *ast.CallExpr) string {
	for _, a := range call.Args {
		if tv, ok := info.Types[a]; ok {
			if tv.Value != nil && tv.Value.Kind() == constant.String {
				if strings.Contains(constant.StringVal(tv.Value), "%p") {
					return causePointer
				}
			}
			if tv.Type != nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
					return causePointer
				}
			}
		}
	}
	return ""
}

// checkSinks inspects every call under n for tainted arguments reaching
// a sink, reporting cause taints and recording parameter taints into the
// function's summary.
func (ev *taintEval) checkSinks(n ast.Node, sum *flow.Summary, report func(token.Pos, string)) {
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false // literal bodies are analyzed as their own functions
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(ev.info, call)
		sink := sinkName(callee)
		args := callArgs(ev.info, call, callee)
		if sink != "" {
			// Skip the receiver slot: field stores taint whole objects
			// (assignTo is field-insensitive), so receiver taint mostly
			// means "some field of this struct is tainted", not that the
			// scheduling decision itself depends on the cause.
			sinkArgs := args
			if callee != nil {
				if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
					sinkArgs = args[1:]
				}
			}
			for _, arg := range sinkArgs {
				if arg == nil {
					continue
				}
				t := ev.taintOf(arg)
				if t.Cause != "" {
					report(arg.Pos(), "value derived from "+t.Cause+" reaches "+sink+
						"; determinism requires this input to be seed-derived or sorted first")
					break
				}
				if sum != nil {
					for i := range sum.ParamSink {
						if t.Params&(1<<i) != 0 && sum.ParamSink[i] == "" {
							sum.ParamSink[i] = sink
						}
					}
				}
			}
			return true
		}
		// Calls into summarized functions that sink one of their
		// parameters: the caller passing a cause-tainted argument owns
		// the diagnostic.
		if cs := ev.ctx.sums.Get(callee); cs != nil {
			for i, arg := range args {
				if arg == nil || i >= len(cs.ParamSink) || cs.ParamSink[i] == "" {
					continue
				}
				t := ev.taintOf(arg)
				if t.Cause != "" {
					report(arg.Pos(), "value derived from "+t.Cause+" flows into "+
						callee.Name()+", which passes it to "+cs.ParamSink[i])
					break
				}
				if sum != nil {
					for j := range sum.ParamSink {
						if t.Params&(1<<j) != 0 && sum.ParamSink[j] == "" {
							sum.ParamSink[j] = cs.ParamSink[i]
						}
					}
				}
			}
		}
		return true
	})
}

// sinkName classifies a callee as a determinism-critical sink.
func sinkName(callee *types.Func) string {
	if callee == nil {
		return ""
	}
	if isEngineMethod(callee, "Schedule", "ScheduleP", "ScheduleDaemonP", "At") {
		return "event scheduling (sim.Engine." + callee.Name() + ")"
	}
	switch funcPkgPath(callee) {
	case "rvma/internal/metrics":
		return "metrics recording (metrics." + callee.Name() + ")"
	case "rvma/internal/attrib":
		return "latency attribution (attrib." + callee.Name() + ")"
	case "fmt":
		switch callee.Name() {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return "printed output (fmt." + callee.Name() + ")"
		}
	}
	return ""
}
