// Package fixture seeds sim-time hygiene violations for the analyzer
// test.
package fixture

import (
	"time"

	"rvma/internal/sim"
)

func schedule(e *sim.Engine, deadline sim.Time) {
	e.Schedule(-5*sim.Nanosecond, func() {}) // want `constant negative delay`
	e.ScheduleP(-1, 3, func() {})            // want `constant negative delay`
	e.Schedule(deadline-e.Now(), func() {})  // want `bare subtraction that can underflow`

	// Non-negative constants and additive expressions are fine.
	e.Schedule(0, func() {})
	e.Schedule(2*sim.Microsecond, func() {})
	e.Schedule(deadline+sim.Nanosecond, func() {})
	// Absolute-time scheduling is the approved fix for deadlines.
	e.At(deadline, func() {})
	// A clamped difference is fine too (not a bare subtraction).
	d := deadline - e.Now()
	if d < 0 {
		d = 0
	}
	e.Schedule(d, func() {})
}

func convert(d time.Duration, t sim.Time) {
	_ = sim.Time(d)       // want `converting time.Duration \(nanoseconds\) directly to sim.Time`
	_ = time.Duration(t)  // want `converting sim.Time \(picoseconds\) directly to time.Duration`
	_ = sim.Time(d) * 1   // want `converting time.Duration \(nanoseconds\) directly to sim.Time`
	_ = sim.FromNanos(float64(d.Nanoseconds())) // the approved conversion path
}
