// Package fixture seeds integer-picosecond unit hazards for the
// psunits analyzer test: float round-trips of sim time, ns/ps values
// laundered through plain integers (where the simtime analyzer's
// direct-conversion check cannot see them), and unguarded sim.Time
// multiplications that can overflow at scale.
package fixture

import (
	"time"

	"rvma/internal/sim"
)

// floats exercises the float boundary in both directions.
func floats(t sim.Time, f float64) {
	_ = float64(t)  // want `float conversion of sim.Time loses picosecond precision`
	_ = sim.Time(f) // want `sim.Time built from a float rounds implicitly`
	// The approved edges: accessor methods and the owning helpers.
	_ = t.Seconds()
	_ = sim.FromNanos(f)
	_ = sim.ScaleF(t, f)
}

// laundered tags integers by what they were converted from, so a
// nanosecond count and a picosecond count cannot meet, and neither can
// cross back into the wrong wrapper type unscaled. simtime only flags
// the direct sim.Time(d) conversion; this is the two-step version.
func laundered(d time.Duration, t sim.Time) {
	ns := int64(d)
	ps := int64(t)
	_ = ns + ps           // want `mixing nanoseconds \(via time.Duration\) with picoseconds \(via sim.Time\)`
	_ = ps > ns           // want `mixing picoseconds \(via sim.Time\) with nanoseconds \(via time.Duration\)`
	_ = sim.Time(ns)      // want `integer carrying nanoseconds \(via time.Duration\) converted to sim.Time`
	_ = time.Duration(ps) // want `integer carrying picoseconds \(via sim.Time\) converted to time.Duration`
	// Same-unit arithmetic and explicitly scaled crossings are fine.
	_ = ps + ps
	_ = sim.Time(ns) * sim.Nanosecond //rvmalint:allow psunits -- fixture: the multiply right here is the unit conversion
}

// overflow shows the unguarded product of two run-time values: at 8k
// nodes a bytes*perByte product wraps int64 picoseconds silently.
func overflow(n int, per sim.Time) sim.Time {
	bad := sim.Time(n) * per // want `unguarded sim.Time multiplication can overflow`
	_ = bad
	// sim.Scale is the checked form; constant factors are auditable.
	_ = sim.Scale(n, per)
	_ = 2 * per
	return sim.Scale(n, per)
}

// allowed suppresses a deliberate unchecked multiply (e.g. operands
// proven small by construction).
func allowed(n int, per sim.Time) sim.Time {
	//rvmalint:allow psunits -- fixture: n is a port index < 64, cannot overflow
	return sim.Time(n) * per
}
