// Package fixture is the negative control: idiomatic model code that
// must produce zero diagnostics from every analyzer.
package fixture

import (
	"fmt"
	"sort"

	"rvma/internal/sim"
)

type model struct {
	eng   *sim.Engine
	boxes map[int]*box
}

type box struct{ depth int }

func (m *model) step() {
	// Commutative map aggregation: no calls, no escaping appends.
	total := 0
	for _, b := range m.boxes {
		total += b.depth
	}

	// Ordered iteration: collect, sort, then do order-sensitive work.
	ids := make([]int, 0, len(m.boxes))
	for id := range m.boxes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		b := m.boxes[id]
		m.eng.Schedule(sim.Time(b.depth)*sim.Nanosecond, func() {})
	}

	// Jitter from the engine's seeded RNG, never the global source.
	d := m.eng.RNG().Jitter(5*sim.Microsecond, 0.1)
	m.eng.Schedule(d, func() {})

	// Process-style concurrency through the kernel.
	m.eng.Spawn(fmt.Sprintf("rank%d", total), func(p *sim.Process) {
		p.Sleep(sim.Nanosecond)
	})
}
