// Package fixture seeds map-iteration-order hazards for the analyzer
// test.
package fixture

import (
	"fmt"
	"os"
	"sort"

	"rvma/internal/sim"
)

// Exported accumulates results; appending to it in map order leaks the
// randomized order to callers.
var Exported []int

type comp struct {
	eng  *sim.Engine
	done []int
}

// kick stands in for any model-package helper: the analyzer cannot see
// whether it schedules, so calling it per map entry is order-sensitive.
func (c *comp) kick(int) {}

func (c *comp) bad(m map[int]int) {
	for k, v := range m {
		c.eng.Schedule(sim.Nanosecond, func() {}) // want `Engine.Schedule inside a map-range body`
		c.eng.Spawn("p", func(p *sim.Process) {}) // want `Engine.Spawn inside a map-range body`
		c.kick(k)                                 // want `call to kick inside a map-range body`
		fmt.Println(k)                            // want `fmt.Println inside a map-range body` `map iteration order reaches printed output`
		fmt.Fprintf(os.Stderr, "%d", v)           // want `fmt.Fprintf inside a map-range body` `map iteration order reaches printed output`
		Exported = append(Exported, v)            // want `append to "Exported" inside a map-range body`
		c.done = append(c.done, v)                // want `append to "done" inside a map-range body`
	}
}

// deferredClosure shows the hazard surviving inside a function literal:
// the Schedule still runs per map entry.
func (c *comp) deferredClosure(m map[int]int) {
	for range m {
		func() {
			c.eng.Schedule(0, func() {}) // want `Engine.Schedule inside a map-range body`
		}()
	}
}

// good is the approved shape: commutative accumulation, or collect into
// a local slice and sort before doing ordered work.
func (c *comp) good(m map[int]int) {
	total := 0
	keys := make([]int, 0, len(m))
	for k, v := range m {
		total += v
		keys = append(keys, k) // local lowercase slice: the sort below fixes the order
	}
	sort.Ints(keys)
	for _, k := range keys {
		c.kick(k)
		c.eng.Schedule(sim.Nanosecond, func() {})
	}
	_ = total
}

// allowed demonstrates suppression for a commutative call the analyzer
// cannot prove safe.
func (c *comp) allowed(m map[int]int) {
	for k := range m {
		//rvmalint:allow maprange -- fixture: kick is known commutative here
		c.kick(k)
	}
}

// allowedBlock demonstrates block-extent suppression: a directive placed
// directly above a range statement covers the entire loop body. It names
// both analyzers that fire here: the syntactic ban and the taint track.
func (c *comp) allowedBlock(m map[int]int) {
	//rvmalint:allow maprange,detaint -- fixture: order-independent diagnostics only
	for k, v := range m {
		c.kick(k)
		c.kick(v)
		fmt.Println(k)
	}
}
