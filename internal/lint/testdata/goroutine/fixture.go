// Package fixture seeds goroutine-escape violations for the analyzer
// test.
package fixture

import "rvma/internal/sim"

func escape(e *sim.Engine, ch chan int) {
	go func() { ch <- 1 }() // want `go statement escapes the engine goroutine`
	go helper(ch)           // want `go statement escapes the engine goroutine`

	// Engine.Spawn is the approved construct.
	e.Spawn("worker", func(p *sim.Process) { p.Sleep(sim.Nanosecond) })

	//rvmalint:allow goroutine -- fixture: exercising the allow directive
	go helper(ch)
}

func helper(ch chan int) { ch <- 2 }
