// Package fixture seeds taint flows from nondeterminism sources to
// determinism-critical sinks for the detaint analyzer test. The shapes
// here are exactly the ones the syntactic analyzers (wallclock,
// maprange) cannot see: the tainted value is laundered through locals,
// helpers, and returns before it reaches the sink.
package fixture

import (
	"fmt"
	"sort"

	"rvma/internal/sim"
)

type comp struct {
	eng *sim.Engine
}

// delay launders an int through a helper: the call summary must carry
// the parameter's taint to the result.
func delay(k int) sim.Time {
	return sim.Time(k) * sim.Nanosecond
}

// fire sinks its parameter: the summary records the parameter sink, and
// the caller passing a tainted argument owns the diagnostic.
func (c *comp) fire(t sim.Time) {
	c.eng.Schedule(t, func() {})
}

// laundered is the motivating case: the map key is stored in a local
// and only reaches the scheduler after the loop, where maprange cannot
// see it.
func (c *comp) laundered(m map[int]int) {
	last := 0
	for k := range m {
		last = k
	}
	c.eng.Schedule(delay(last), func() {})    // want `map iteration order reaches event scheduling`
	c.eng.Schedule(sim.Time(last), func() {}) // want `map iteration order reaches event scheduling`
	c.fire(sim.Time(last))                    // want `flows into fire, which passes it to event scheduling`
}

// printed covers the output sink and the pointer-identity source: %p of
// a heap object differs run to run even under a fixed seed.
func (c *comp) printed(b *comp) {
	id := fmt.Sprintf("%p", b)
	fmt.Println(id) // want `pointer identity reaches printed output`
}

// sorted is the approved laundering: sort.Ints is a sanitizer, so the
// key reaching the scheduler afterwards is deterministic.
func (c *comp) sorted(m map[int]int) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		c.eng.Schedule(delay(k), func() {})
	}
}

// commutative shows the += exemption: summing over a map is order
// independent, so the total is clean when it reaches the scheduler.
func (c *comp) commutative(m map[int]int) {
	total := 0
	for _, v := range m {
		total += v
	}
	c.eng.Schedule(delay(total), func() {})
}

// allowed demonstrates suppression where the flow is intentional (e.g.
// a diagnostic dump whose order genuinely does not matter).
func (c *comp) allowed(m map[int]int) {
	last := 0
	for k := range m {
		last = k
	}
	//rvmalint:allow detaint -- fixture: debug-only output, order is irrelevant
	c.eng.Schedule(delay(last), func() {})
}
