// Package fixture seeds span lifecycle violations for the spanleak
// analyzer test: spans that can leak on a branch, spans ended twice,
// and discarded BeginSpan results, next to the ownership-transfer
// shapes the analyzer must stay silent on.
package fixture

import (
	"rvma/internal/metrics"
	"rvma/internal/sim"
)

type host struct {
	eng *sim.Engine
	reg *metrics.Registry
}

// leaky ends the span on only one branch: the else path drops it.
func (h *host) leaky(key metrics.SpanKey, ok bool) {
	sp := h.reg.BeginSpan(h.eng.Now(), key, "put", 0) // want `span does not reach End/EndNacked/EndAbandoned on every path`
	if ok {
		sp.End(h.eng.Now())
	}
}

// discarded never binds the span at all, so no path can terminate it.
func (h *host) discarded(key metrics.SpanKey) {
	h.reg.BeginSpan(h.eng.Now(), key, "put", 0) // want `BeginSpan result discarded`
}

// doubled ends the span twice on the same path: the second terminal is
// dead and would double-count the ending in the registry.
func (h *host) doubled(key metrics.SpanKey) {
	sp := h.reg.BeginSpan(h.eng.Now(), key, "put", 0)
	sp.End(h.eng.Now())
	sp.EndNacked(h.eng.Now()) // want `second End call is dead`
}

// branches is the approved multi-outcome shape: every path reaches
// exactly one terminal, each a different ending.
func (h *host) branches(key metrics.SpanKey, nacked, dead bool) {
	sp := h.reg.BeginSpan(h.eng.Now(), key, "put", 0)
	sp.Stage(h.eng.Now(), "inject")
	if nacked {
		sp.EndNacked(h.eng.Now())
		return
	}
	if dead {
		sp.EndAbandoned(h.eng.Now())
		return
	}
	sp.End(h.eng.Now())
}

// deferred closes via defer, which satisfies every exit path at once.
func (h *host) deferred(key metrics.SpanKey, work func()) {
	sp := h.reg.BeginSpan(h.eng.Now(), key, "put", 0)
	defer sp.End(h.eng.Now())
	work()
}

// panics may leak on the panic path: crash diagnostics outrank span
// accounting, so the analyzer exempts panic-terminated blocks.
func (h *host) panics(key metrics.SpanKey, ok bool) {
	sp := h.reg.BeginSpan(h.eng.Now(), key, "put", 0)
	if !ok {
		panic("fixture: bad state")
	}
	sp.End(h.eng.Now())
}

// handoff transfers ownership: once the span escapes into a callback or
// a helper, the terminal obligation moves with it and this function is
// no longer accountable.
func (h *host) handoff(key metrics.SpanKey) {
	sp := h.reg.BeginSpan(h.eng.Now(), key, "put", 0)
	h.eng.Schedule(sim.Nanosecond, func() {
		sp.End(h.eng.Now())
	})

	sp2 := h.reg.BeginSpan(h.eng.Now(), key, "get", 0)
	h.finish(sp2)
}

func (h *host) finish(sp *metrics.Span) {
	sp.End(h.eng.Now())
}

// allowed suppresses a deliberate leak (e.g. a span intentionally held
// open across a fault-injection window the test tears down wholesale).
func (h *host) allowed(key metrics.SpanKey, ok bool) {
	//rvmalint:allow spanleak -- fixture: the fault harness abandons open spans in bulk
	sp := h.reg.BeginSpan(h.eng.Now(), key, "put", 0)
	if ok {
		sp.End(h.eng.Now())
	}
}
