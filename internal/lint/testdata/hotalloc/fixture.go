// Package fixture seeds hot-path allocations for the hotalloc analyzer
// test. It models the real engine's shape: a //rvmalint:hot root set on
// the scheduling entry points, helpers reachable from them, and the
// exemptions (panic paths, build-time-pruned debug branches, code only
// reachable outside the root set).
package fixture

// debugEnabled mirrors sim.DebugEnabled: constant false in normal
// builds, so guarded blocks are pruned before the analysis runs.
const debugEnabled = false

type event struct {
	at int64
	fn func()
}

// Engine is a mock of the simulation kernel's event loop.
type Engine struct {
	queue   []*event
	free    []*event
	pending int64
	sink    interface{}
}

// Schedule is the hot entry point; the closure below is the seeded
// violation: it captures e and at, so every call allocates.
//
//rvmalint:hot
func (e *Engine) Schedule(at int64, fn func()) {
	e.pending++
	cb := func() { // want `closure capturing outer variables allocates on the hot path`
		e.pending--
		fn()
	}
	e.push(at, cb)
}

// push is not marked hot itself: it must be reported because it is
// reachable from Schedule.
func (e *Engine) push(at int64, fn func()) {
	ev := e.alloc()
	ev.at = at
	ev.fn = fn
	e.queue = append(e.queue, ev) //rvmalint:allow hotalloc -- fixture: amortized heap growth, mirrors the real queue
}

// alloc is two hops from the root; the pool-miss allocation is the
// diagnostic, attributed back to the hot entry point.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free = e.free[:n-1]
		return ev
	}
	return &event{} // want `&composite literal allocates on the hot path in Engine.alloc \(reachable from Engine.Schedule\)`
}

// Pop drains one event. The debug branch allocates, but debugEnabled is
// a build-time constant false, so the block is pruned, not reported.
// The panic path's boxing is likewise exempt: crash diagnostics are
// allowed to allocate.
//
//rvmalint:hot
func (e *Engine) Pop() {
	if len(e.queue) == 0 {
		panic(e.describe("pop on empty queue"))
	}
	if debugEnabled {
		audit := make([]int64, 0, len(e.queue))
		for _, ev := range e.queue {
			audit = append(audit, ev.at)
		}
		e.sink = audit
	}
	ev := e.queue[len(e.queue)-1]
	e.queue = e.queue[:len(e.queue)-1]
	e.trace(ev.at)
	ev.fn()
}

// trace boxes its argument into an interface parameter — invisible in
// the source, one heap allocation per event at run time.
func (e *Engine) trace(at int64) {
	e.record(at) // want `interface boxing of int64 argument to record`
}

func (e *Engine) record(v interface{}) {
	e.sink = v
}

// describe is only called from a panic path, so its allocations are
// exempt even though it is reachable from a hot root.
func (e *Engine) describe(msg string) string {
	return msg
}

// Report runs outside the hot set: identical allocations draw no
// diagnostics because no //rvmalint:hot root reaches them.
func (e *Engine) Report() []int64 {
	out := make([]int64, 0, len(e.queue))
	for _, ev := range e.queue {
		out = append(out, ev.at)
	}
	return out
}
