// Package fixture seeds wallclock violations for the analyzer test.
package fixture

import (
	_ "crypto/rand" // want `import of "crypto/rand" is forbidden in model packages`
	"math/rand"     // want `import of "math/rand" is forbidden in model packages`
	"time"

	"rvma/internal/sim"
)

// clock exercises the banned time functions. Benign uses of package time
// (the Duration type, unit constants) are deliberately present and must
// not be flagged.
func clock(e *sim.Engine) time.Time {
	time.Sleep(time.Millisecond) // want `time.Sleep reads the host wall clock`
	var d time.Duration = time.Microsecond
	_ = d
	_ = e.Now()
	return time.Now() // want `time.Now reads the host wall clock`
}

// elapsed exercises time.Since and a reference (not a call) to time.Now.
func elapsed(start time.Time) time.Duration {
	f := time.Now // want `time.Now reads the host wall clock`
	_ = f
	return time.Since(start) // want `time.Since reads the host wall clock`
}

// roll exercises the global math/rand source; the import diagnostic
// covers it, calls are not re-flagged.
func roll() int { return rand.Intn(6) }

// allowedBenchmark shows the escape hatch: a directive on the preceding
// line suppresses the diagnostic.
func allowedBenchmark() time.Time {
	//rvmalint:allow wallclock -- fixture: exercising the allow directive
	return time.Now()
}
