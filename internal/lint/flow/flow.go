// Package flow is the dataflow layer under rvmalint: an intraprocedural
// control-flow graph built from go/ast, a generic forward/backward
// worklist solver over it, and per-function call summaries that let the
// analyzers reason across function boundaries bottom-up.
//
// The first generation of rvmalint analyzers (wallclock, maprange,
// simtime, goroutine) are single-pass AST pattern matchers: they catch a
// banned construct where it is written. The properties PR 7 promotes to
// compile time — "no nondeterministic value reaches a scheduling or
// recording sink", "every span reaches a terminal on every path", "the
// event hot path allocates nothing", "picosecond integers never mix
// with nanosecond integers" — are path and flow properties. They need a
// CFG (so an early return or an error branch is a distinct path), a
// fixpoint solver (so loops converge), and summaries (so a value
// laundered through a helper is still tracked).
//
// Everything here is standard library only, mirroring the structure of
// golang.org/x/tools/go/cfg and go/analysis closely enough that a
// mechanical rehost is possible, without taking the dependency.
//
// # CFG shape
//
// New lowers one function body to basic blocks of leaf statements and
// condition expressions. Compound statements never appear inside a
// block's node list: an if contributes its condition expression, a
// range loop contributes a head block whose Range field carries the
// range clause, a switch contributes its tag plus one block per case.
// Defer is special: deferred calls run at every function exit, so they
// are collected on Graph.Defers (in source order) and also appear as
// ordinary nodes for argument-evaluation purposes.
//
// Conditions that are compile-time constants prune their dead edge.
// This is what makes `if sim.DebugEnabled { ... }` free for the
// hot-path analyzer: under the default build DebugEnabled is the
// constant false, the guarded block is never linked into the graph,
// and nothing inside it is analyzed — exactly matching the compiler,
// which deletes the branch.
//
// Blocks whose terminator is a call to panic are marked Panics. The
// analyzers treat panic paths as cold: an allocation feeding a panic
// message does not count against a hot path, and a span abandoned by a
// panic is not a leak (the run is already dead).
package flow

import (
	"go/ast"
	"go/types"
)

// StaticCallee resolves a call expression to the function or method it
// statically invokes, or nil for builtins, conversions and calls
// through function values.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// Taint is one abstract value of the taint lattice: which real-world
// nondeterminism source reaches a value (Cause, "" when none) and which
// of the enclosing function's parameters flow into it (Params, a
// bitmask over receiver-then-parameter indices). Param bits are how
// summaries are built: analyzing a function with parameter i seeded as
// bit i reveals, at each return and each sink, which parameters the
// function launders where.
type Taint struct {
	Cause  string
	Params uint64
}

// IsZero reports whether the taint carries no information.
func (t Taint) IsZero() bool { return t.Cause == "" && t.Params == 0 }

// JoinTaint merges two taints. Causes join to the lexicographically
// smallest non-empty cause so the merge is deterministic and reaches a
// fixpoint (the set of causes is finite and the pick only ever
// decreases).
func JoinTaint(a, b Taint) Taint {
	out := Taint{Cause: a.Cause, Params: a.Params | b.Params}
	if out.Cause == "" || (b.Cause != "" && b.Cause < out.Cause) {
		if b.Cause != "" {
			out.Cause = b.Cause
		}
	}
	return out
}

// Summary is the bottom-up call summary of one function: what a caller
// must know without re-analyzing the body. Summaries are computed when
// a package is analyzed and consulted by every later package in the
// load order; `go list -deps` order guarantees callees' packages are
// analyzed before their callers' in a whole-repository run. In vet-tool
// mode each package unit is a separate process, so cross-package
// summaries are unavailable and the analyzers fall back to their
// conservative defaults — within-package flow, the common case, is
// identical in both modes.
type Summary struct {
	// Params is the tracked parameter count: the receiver (when the
	// function is a method) followed by the signature parameters.
	Params int
	// ResultCause is the nondeterminism cause each call to this function
	// imports into its results regardless of arguments ("" = clean).
	ResultCause string
	// ParamToResult[i] reports whether parameter i's value can flow into
	// a result.
	ParamToResult []bool
	// ParamSink[i] names the sink parameter i's value can reach inside
	// the callee (transitively), "" when none. A caller passing a
	// tainted argument for such a parameter owns the diagnostic.
	ParamSink []string
	// Allocates reports whether the function's non-panic paths contain a
	// heap allocation (directly or via an intra-package callee);
	// AllocWhat describes the first one for diagnostics.
	Allocates bool
	AllocWhat string
}

// Store holds summaries keyed by the type-checker's function objects.
// Within one load (one importer and file set) dependency packages share
// their *types.Func objects with every importer, so a single store
// spans the whole repository run; separate loads (fixture tests) get
// disjoint keys and cannot contaminate each other.
type Store map[*types.Func]*Summary

// Get returns the summary for f, or nil when f is unknown.
func (s Store) Get(f *types.Func) *Summary {
	if f == nil {
		return nil
	}
	return s[f]
}

// GetOrCreate returns the summary for f, creating an empty one sized to
// f's receiver+parameter count on first use.
func (s Store) GetOrCreate(f *types.Func) *Summary {
	if sum := s[f]; sum != nil {
		return sum
	}
	sig, _ := f.Type().(*types.Signature)
	n := 0
	if sig != nil {
		n = sig.Params().Len()
		if sig.Recv() != nil {
			n++
		}
	}
	sum := &Summary{
		Params:        n,
		ParamToResult: make([]bool, n),
		ParamSink:     make([]string, n),
	}
	s[f] = sum
	return sum
}
