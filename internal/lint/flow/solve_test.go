package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// varSet is a tiny powerset lattice over variable names used to
// exercise the solver directly.
type varSet map[string]bool

var varLattice = Lattice[varSet]{
	Bottom: func() varSet { return varSet{} },
	Clone: func(s varSet) varSet {
		out := make(varSet, len(s))
		for k := range s {
			out[k] = true
		}
		return out
	},
	Join: func(dst, src varSet) bool {
		changed := false
		for k := range src {
			if !dst[k] {
				dst[k] = true
				changed = true
			}
		}
		return changed
	},
}

// forwardTaintedVars runs a toy gen-only forward analysis: any variable
// assigned from a call to dirty() becomes tainted, and taint propagates
// through simple ident-to-ident assignments.
func forwardTaintedVars(t *testing.T, src string) (fixture, map[*Block]varSet) {
	t.Helper()
	fx := parseFunc(t, src)
	transfer := func(b *Block, in varSet) varSet {
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			lhs, ok := as.Lhs[0].(*ast.Ident)
			if !ok {
				continue
			}
			switch rhs := as.Rhs[0].(type) {
			case *ast.CallExpr:
				if id, ok := rhs.Fun.(*ast.Ident); ok && id.Name == "dirty" {
					in[lhs.Name] = true
				} else {
					delete(in, lhs.Name)
				}
			case *ast.Ident:
				if in[rhs.Name] {
					in[lhs.Name] = true
				} else {
					delete(in, lhs.Name)
				}
			default:
				delete(in, lhs.Name)
			}
		}
		return in
	}
	return fx, Forward(fx.g, varLattice, varSet{}, transfer)
}

const taintSrc = `
func dirty() int { return 42 }

func f(a int) int {
	x := 0
	y := 0
	if a > 0 {
		x = dirty()
	} else {
		x = 1
	}
	y = x
	if a > 1 {
		y = 2
	}
	return y
}`

func TestForwardJoinsBranches(t *testing.T) {
	fx, in := forwardTaintedVars(t, taintSrc)
	// At the block containing `y = x`, the IN state is the join of the
	// two if arms: x tainted on one path, clean on the other, so the
	// may-analysis must report x tainted.
	join := fx.blockAt(t, "y = x")
	if join == nil {
		t.Fatal("join block missing")
	}
	if !in[join]["x"] {
		t.Error("x must be may-tainted at the join of the two branches")
	}
	// At the return, y was reassigned to a clean constant on one path
	// but carries x's taint on the other: still may-tainted.
	ret := fx.blockAt(t, "return y")
	if ret == nil {
		t.Fatal("return block missing")
	}
	if !in[ret]["y"] {
		t.Error("y must be may-tainted at the return")
	}
}

func TestForwardLoopConverges(t *testing.T) {
	fx, in := forwardTaintedVars(t, `
func dirty() int { return 42 }

func f(n int) int {
	x := 0
	y := 0
	for i := 0; i < n; i++ {
		y = x
		x = dirty()
	}
	return y
}`)
	// Taint flows x -> y only on the second loop iteration; a solver
	// without a fixpoint loop would miss it.
	ret := fx.blockAt(t, "return y")
	if ret == nil {
		t.Fatal("return block missing")
	}
	if !in[ret]["y"] {
		t.Error("loop-carried taint x->y not found; solver did not iterate to fixpoint")
	}
}

func TestForwardSkipsDeadBranch(t *testing.T) {
	fx, in := forwardTaintedVars(t, `
const debug = false

func dirty() int { return 42 }

func f() int {
	x := 0
	if debug {
		x = dirty()
	}
	return x
}`)
	ret := fx.blockAt(t, "return x")
	if ret == nil {
		t.Fatal("return block missing")
	}
	if in[ret]["x"] {
		t.Error("taint leaked out of a constant-false dead branch")
	}
}

func TestBackwardLiveness(t *testing.T) {
	fx := parseFunc(t, `
func g(int) {}

func f(a, b int) {
	x := a
	if a > 0 {
		g(x)
		return
	}
	x = b
	g(x)
}`)
	// Backward "will-be-used" analysis: a variable is live-out of a block
	// if some path from the block's end uses it before reassigning it.
	transfer := func(b *Block, out varSet) varSet {
		// Walk the block's nodes in reverse: uses gen, assignments kill.
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			switch n := b.Nodes[i].(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					for _, arg := range call.Args {
						if id, ok := arg.(*ast.Ident); ok {
							out[id.Name] = true
						}
					}
				}
			case *ast.AssignStmt:
				if id, ok := n.Lhs[0].(*ast.Ident); ok {
					delete(out, id.Name)
					if rid, ok := n.Rhs[0].(*ast.Ident); ok {
						out[rid.Name] = true
					}
				}
			}
		}
		return out
	}
	out := Backward(fx.g, varLattice, varSet{}, transfer)
	// OUT of the condition block: on the then-path x is used by g(x); on
	// the else-path x is reassigned from b before use. x live, b live.
	cond := fx.blockAt(t, "a > 0")
	if cond == nil {
		t.Fatal("condition block missing")
	}
	// The solver stores the propagated IN states on predecessors as
	// their OUT: check the block holding `x := a` sees x's use.
	def := fx.blockAt(t, "x := a")
	if def == nil {
		t.Fatal("def block missing")
	}
	_ = cond
	if !out[def]["b"] {
		t.Error("b must be live out of the entry block (used on the else path)")
	}
}

func TestJoinTaintDeterministic(t *testing.T) {
	a := Taint{Cause: "wallclock", Params: 1}
	b := Taint{Cause: "map-order", Params: 2}
	ab := JoinTaint(a, b)
	ba := JoinTaint(b, a)
	if ab != ba {
		t.Errorf("JoinTaint not commutative: %+v vs %+v", ab, ba)
	}
	if ab.Cause != "map-order" {
		t.Errorf("cause = %q, want lexicographic min %q", ab.Cause, "map-order")
	}
	if ab.Params != 3 {
		t.Errorf("params = %b, want union 11", ab.Params)
	}
	if got := JoinTaint(Taint{}, a); got != a {
		t.Errorf("join with zero changed taint: %+v", got)
	}
}

func TestStoreGetOrCreateSizesToSignature(t *testing.T) {
	pkg, info := typeCheckSrc(t, `
package p

type T struct{}

func (T) m(a, b int) int { return a + b }

func free(x string) {}
`)
	s := Store{}
	if s.Get(nil) != nil {
		t.Error("Get(nil) must be nil")
	}
	tObj := pkg.Scope().Lookup("T")
	var m *types.Func
	for sel := types.NewMethodSet(tObj.Type()); m == nil; {
		for i := 0; i < sel.Len(); i++ {
			if f, ok := sel.At(i).Obj().(*types.Func); ok && f.Name() == "m" {
				m = f
			}
		}
		break
	}
	if m == nil {
		t.Fatal("method m not found")
	}
	sum := s.GetOrCreate(m)
	if sum.Params != 3 {
		t.Errorf("method summary sized to %d slots, want 3 (receiver + 2 params)", sum.Params)
	}
	free, _ := pkg.Scope().Lookup("free").(*types.Func)
	if free == nil {
		t.Fatal("func free not found")
	}
	if got := s.GetOrCreate(free).Params; got != 1 {
		t.Errorf("free summary sized to %d slots, want 1", got)
	}
	if s.GetOrCreate(m) != sum {
		t.Error("GetOrCreate did not return the cached summary")
	}
	_ = info
}

// typeCheckSrc type-checks a whole file and returns its package.
func typeCheckSrc(t *testing.T, src string) (*types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "s.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return pkg, info
}
