package flow

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// fixture couples a parsed function's CFG with its source text so tests
// can locate blocks by source substring instead of hardcoded lines.
type fixture struct {
	g    *Graph
	fset *token.FileSet
	src  string
}

// parseFunc type-checks one function body and returns its CFG pieces.
func parseFunc(t *testing.T, src string) fixture {
	t.Helper()
	fset := token.NewFileSet()
	file := fmt.Sprintf("package p\n\n%s\n", src)
	f, err := parser.ParseFile(fset, "t.go", file, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	var target *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			if target == nil || fd.Name.Name == "f" {
				target = fd
			}
		}
	}
	if target == nil {
		t.Fatal("no function found")
	}
	return fixture{g: New(target.Body, info), fset: fset, src: file}
}

// lineOf returns the 1-based line of the first occurrence of marker in
// the fixture's source text.
func (fx fixture) lineOf(t *testing.T, marker string) int {
	t.Helper()
	idx := strings.Index(fx.src, marker)
	if idx < 0 {
		t.Fatalf("marker %q not in source", marker)
	}
	return 1 + strings.Count(fx.src[:idx], "\n")
}

// blockAt finds the block (live or dead) containing a node that starts
// on the line of marker.
func (fx fixture) blockAt(t *testing.T, marker string) *Block {
	t.Helper()
	line := fx.lineOf(t, marker)
	for _, b := range fx.g.Blocks {
		for _, n := range b.Nodes {
			if fx.fset.Position(n.Pos()).Line == line {
				return b
			}
		}
		if b.Range != nil && fx.fset.Position(b.Range.Pos()).Line == line {
			return b
		}
	}
	return nil
}

// canReach reports whether from can reach to along successor edges.
func canReach(from, to *Block) bool {
	seen := make(map[*Block]bool)
	var walk func(*Block) bool
	walk = func(x *Block) bool {
		if x == to {
			return true
		}
		if seen[x] {
			return false
		}
		seen[x] = true
		for _, s := range x.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestIfElseShape(t *testing.T) {
	fx := parseFunc(t, `
func f(a int) int {
	x := 0
	if a > 0 {
		x = 1
	} else {
		x = 2
	}
	return x
}`)
	if !fx.g.Exit.Live {
		t.Fatal("exit unreachable")
	}
	then := fx.blockAt(t, "x = 1")
	els := fx.blockAt(t, "x = 2")
	ret := fx.blockAt(t, "return x")
	if then == nil || els == nil || ret == nil {
		t.Fatal("arm blocks missing")
	}
	if then == els {
		t.Fatal("then and else arms share a block")
	}
	for _, arm := range []*Block{then, els} {
		if !arm.Live || !canReach(arm, ret) {
			t.Errorf("arm %d: live=%v, reaches return=%v", arm.Index, arm.Live, canReach(arm, ret))
		}
	}
}

func TestConstantConditionPrunes(t *testing.T) {
	fx := parseFunc(t, `
const debug = false

func f(a int) int {
	if debug {
		a = a * 2
	}
	return a
}`)
	dead := fx.blockAt(t, "a = a * 2")
	if dead == nil {
		t.Fatal("guarded statement not placed in any block")
	}
	if dead.Live {
		t.Error("block guarded by constant-false condition must be dead")
	}
	ret := fx.blockAt(t, "return a")
	if ret == nil || !ret.Live {
		t.Error("fallthrough return must stay live")
	}
}

func TestConstantTrueKeepsBranchElidesElse(t *testing.T) {
	fx := parseFunc(t, `
const on = true

func f(a int) int {
	if on {
		a++
	} else {
		a--
	}
	return a
}`)
	kept := fx.blockAt(t, "a++")
	elided := fx.blockAt(t, "a--")
	if kept == nil || !kept.Live {
		t.Error("constant-true branch must stay live")
	}
	if elided != nil && elided.Live {
		t.Error("else arm of constant-true condition must be dead")
	}
}

func TestPanicBlockTerminates(t *testing.T) {
	fx := parseFunc(t, `
func f(a int) int {
	if a < 0 {
		panic("negative")
	}
	return a
}`)
	pb := fx.blockAt(t, `panic("negative")`)
	if pb == nil {
		t.Fatal("panic statement not placed in any block")
	}
	if !pb.Panics {
		t.Error("panic block not marked Panics")
	}
}

func TestDeferCollected(t *testing.T) {
	fx := parseFunc(t, `
func f() {
	defer println("a")
	defer println("b")
	println("body")
}`)
	if len(fx.g.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(fx.g.Defers))
	}
}

func TestGotoForwardAndBackward(t *testing.T) {
	fx := parseFunc(t, `
func f(a int) int {
	i := 0
loop:
	i++
	if i < a {
		goto loop
	}
	if a == 7 {
		goto done
	}
	i *= 2
done:
	return i
}`)
	inc := fx.blockAt(t, "i++")
	if inc == nil || !inc.Live {
		t.Fatal("i++ block missing or dead")
	}
	if !canReach(inc, inc) {
		// canReach walks successors; a self-cycle through the goto means
		// inc reaches itself again.
		t.Error("backward goto did not form a cycle")
	}
	dbl := fx.blockAt(t, "i *= 2")
	if dbl == nil || !dbl.Live {
		t.Fatal("i *= 2 block missing or dead")
	}
	if !canReach(dbl, fx.g.Exit) {
		t.Error("fallthrough path lost")
	}
	// The forward goto must provide a path from the condition to the
	// return that bypasses the doubling.
	ret := fx.blockAt(t, "return i")
	if ret == nil {
		t.Fatal("return block missing")
	}
	if len(ret.Preds) < 2 {
		t.Errorf("return has %d preds, want >=2 (goto + fallthrough)", len(ret.Preds))
	}
}

func TestLabeledBreakAndContinue(t *testing.T) {
	fx := parseFunc(t, `
func f(m [][]int) int {
	total := 0
outer:
	for i := 0; i < len(m); i++ {
		for j := 0; j < len(m[i]); j++ {
			if m[i][j] < 0 {
				break outer
			}
			if m[i][j] == 0 {
				continue outer
			}
			total += m[i][j]
		}
	}
	return total
}`)
	ret := fx.blockAt(t, "return total")
	acc := fx.blockAt(t, "total += m[i][j]")
	if ret == nil || acc == nil {
		t.Fatal("return or accumulation block missing")
	}
	// break outer exits both loops: the inner condition block that
	// branches to it must reach the return without passing through the
	// accumulation. Check via the branch structure: the accumulation's
	// block must not appear on every path from the break's source.
	inner := fx.blockAt(t, "m[i][j] < 0")
	if inner == nil || !inner.Live {
		t.Fatal("inner condition block missing")
	}
	if !canReach(inner, ret) {
		t.Error("labeled break cannot reach exit")
	}
	// continue outer must re-enter the outer loop and be able to run the
	// accumulation on a later iteration.
	contCond := fx.blockAt(t, "m[i][j] == 0")
	if contCond == nil || !contCond.Live {
		t.Fatal("continue condition block missing")
	}
	if !canReach(contCond, acc) {
		t.Error("continue outer cannot re-reach the loop body")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	fx := parseFunc(t, `
func f(a int) int {
	x := 0
	switch a {
	case 1:
		x = 1
		fallthrough
	case 2:
		x += 2
	default:
		x = 9
	}
	return x
}`)
	c1 := fx.blockAt(t, "x = 1")
	c2 := fx.blockAt(t, "x += 2")
	if c1 == nil || c2 == nil {
		t.Fatal("case blocks missing")
	}
	direct := false
	for _, s := range c1.Succs {
		if s == c2 {
			direct = true
		}
	}
	if !direct {
		t.Error("fallthrough edge from case 1 to case 2 missing")
	}
}

func TestRangeHeadCarriesClause(t *testing.T) {
	fx := parseFunc(t, `
func f(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}`)
	var head *Block
	for _, b := range fx.g.Blocks {
		if b.Range != nil {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no range head block")
	}
	if !head.Live || len(head.Succs) != 2 {
		t.Errorf("range head: live=%v succs=%d, want live with 2 succs", head.Live, len(head.Succs))
	}
	body := fx.blockAt(t, "total += v")
	if body == nil || !canReach(body, head) {
		t.Error("loop body does not cycle back to the range head")
	}
}

func TestUnreachableAfterGoto(t *testing.T) {
	fx := parseFunc(t, `
func f() int {
	goto end
	println("dead")
end:
	return 1
}`)
	dead := fx.blockAt(t, `println("dead")`)
	if dead == nil {
		t.Fatal("dead statement not placed in any block")
	}
	if dead.Live {
		t.Error("statement jumped over by goto must be dead")
	}
}

func TestInfiniteLoopHasNoExit(t *testing.T) {
	fx := parseFunc(t, `
func f() {
	for {
		println("spin")
	}
}`)
	if fx.g.Exit.Live {
		t.Error("exit of an infinite loop must be unreachable")
	}
}
