package flow

// Lattice describes one dataflow domain for the worklist solver: how to
// make the bottom element, copy a state, and join another state into an
// existing one. Join mutates dst in place and reports whether anything
// changed; the solver stops when no join changes anything.
type Lattice[S any] struct {
	Bottom func() S
	Clone  func(S) S
	Join   func(dst, src S) bool
}

// Forward solves a forward dataflow problem to fixpoint and returns the
// IN state of every reachable block. boundary is the entry block's IN
// state; transfer maps a block's IN state to its OUT state (it may
// mutate and return its argument — the solver passes a private clone).
// Dead blocks never appear in the result.
//
// The worklist is FIFO with membership dedup, seeded in block-index
// order, so iteration order — and therefore any deterministic tie-break
// inside Join — is reproducible run to run.
func Forward[S any](g *Graph, lat Lattice[S], boundary S, transfer func(*Block, S) S) map[*Block]S {
	in := map[*Block]S{g.Entry: boundary}
	return solve(g, lat, in, transfer, func(b *Block) []*Block { return b.Succs })
}

// Backward solves a backward dataflow problem to fixpoint and returns
// the OUT state of every reachable block. boundary is the exit block's
// OUT state; transfer maps a block's OUT state to its IN state, which
// propagates to the block's predecessors.
func Backward[S any](g *Graph, lat Lattice[S], boundary S, transfer func(*Block, S) S) map[*Block]S {
	out := map[*Block]S{g.Exit: boundary}
	return solve(g, lat, out, transfer, func(b *Block) []*Block { return b.Preds })
}

func solve[S any](g *Graph, lat Lattice[S], state map[*Block]S, transfer func(*Block, S) S, next func(*Block) []*Block) map[*Block]S {
	queue := make([]*Block, 0, len(g.Blocks))
	queued := make([]bool, len(g.Blocks))
	push := func(b *Block) {
		if !queued[b.Index] {
			queued[b.Index] = true
			queue = append(queue, b)
		}
	}
	for _, b := range g.Blocks {
		if b.Live {
			if _, seeded := state[b]; seeded {
				push(b)
			}
		}
	}
	for len(queue) > 0 {
		b := queue[0]
		queue = queue[1:]
		queued[b.Index] = false
		res := transfer(b, lat.Clone(state[b]))
		for _, n := range next(b) {
			if !n.Live {
				continue
			}
			cur, ok := state[n]
			if !ok {
				cur = lat.Bottom()
				state[n] = cur
			}
			if lat.Join(cur, res) || !ok {
				push(n)
			}
		}
	}
	return state
}
