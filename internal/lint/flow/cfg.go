package flow

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Block is one basic block: a maximal straight-line sequence of leaf
// statements and condition expressions, ended by a branch, a loop edge,
// a return, or a panic.
type Block struct {
	// Index is the creation order, which for structured code is close to
	// a topological order; the solver's worklist uses it for
	// deterministic iteration.
	Index int
	// Nodes are the block's statements and condition expressions in
	// execution order. Compound statements never appear: their leaves are
	// distributed into blocks, their conditions appear as expressions,
	// and range clauses live on Range.
	Nodes []ast.Node
	// Range is non-nil on the head block of a range loop: the analyzers
	// read its Key/Value/X; the body statements live in successor blocks.
	Range *ast.RangeStmt
	// Succs and Preds are the control-flow edges.
	Succs, Preds []*Block
	// Panics marks a block whose terminator is a call to panic: a cold
	// path that cannot reach a normal return.
	Panics bool
	// Live reports reachability from the entry block. Dead blocks (after
	// an unconditional return, or pruned by a constant condition) are
	// kept for position queries but skipped by the solver.
	Live bool
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	Blocks []*Block
	// Entry is the first block; Exit is the single synthetic exit every
	// return, fallen-off-the-end path and panic edge leads to.
	Entry, Exit *Block
	// Defers are the function's defer statements in source order; their
	// calls conceptually run at every exit edge.
	Defers []*ast.DeferStmt
}

// New builds the CFG of one function body. info may be nil; when
// present it is used to prune branches on compile-time-constant
// conditions (the `if sim.DebugEnabled` pattern).
func New(body *ast.BlockStmt, info *types.Info) *Graph {
	g := &Graph{}
	b := &builder{
		g:          g,
		info:       info,
		labelBreak: make(map[string]*Block),
		labelCont:  make(map[string]*Block),
		gotoTarget: make(map[string]*Block),
	}
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		addEdge(b.cur, g.Exit)
	}
	g.markLive()
	return g
}

// markLive flags every block reachable from the entry.
func (g *Graph) markLive() {
	stack := []*Block{g.Entry}
	g.Entry.Live = true
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range blk.Succs {
			if !s.Live {
				s.Live = true
				stack = append(stack, s)
			}
		}
	}
}

type builder struct {
	g    *Graph
	info *types.Info
	cur  *Block // nil after a terminator; addNode revives into a dead block

	// break/continue targets, innermost last. contPushed records, per
	// break frame, whether a continue target was pushed with it (loops
	// yes, switches/selects no).
	breaks, conts []*Block
	contPushed    []bool
	labelBreak    map[string]*Block
	labelCont     map[string]*Block
	gotoTarget    map[string]*Block
	// pendingLabel is set between a labeled statement and the loop or
	// switch it labels, so labeled break/continue resolve to the right
	// join blocks.
	pendingLabel string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func addEdge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// addNode appends a leaf node to the current block, reviving a dead
// (unreachable) block after a terminator so later statements still have
// a home for position queries.
func (b *builder) addNode(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// ensure returns the current block, reviving a dead one.
func (b *builder) ensure() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

// constBool evaluates e as a compile-time boolean constant.
func (b *builder) constBool(e ast.Expr) (val, isConst bool) {
	if b.info == nil {
		return false, false
	}
	tv, ok := b.info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Bool {
		return false, false
	}
	return constant.BoolVal(tv.Value), true
}

// isPanic reports whether e is a call to the predeclared panic.
func (b *builder) isPanic(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	if b.info != nil {
		_, isBuiltin := b.info.Uses[id].(*types.Builtin)
		return isBuiltin
	}
	return true
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the loop/switch that owns it
// and returns it.
func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmt(s ast.Stmt) {
	// Any statement other than a loop or switch consumes a pending
	// label as a plain goto target (already wired by LabeledStmt).
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.pendingLabel = ""
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.pendingLabel = ""
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.addNode(s.Cond)
		head := b.cur
		val, isConst := b.constBool(s.Cond)
		thenB := b.newBlock()
		join := b.newBlock()
		if !isConst || val {
			addEdge(head, thenB)
		}
		var elseB *Block
		if s.Else != nil {
			elseB = b.newBlock()
			if !isConst || !val {
				addEdge(head, elseB)
			}
		} else if !isConst || !val {
			addEdge(head, join)
		}
		b.cur = thenB
		b.stmt(s.Body)
		if b.cur != nil {
			addEdge(b.cur, join)
		}
		if s.Else != nil {
			b.cur = elseB
			b.stmt(s.Else)
			if b.cur != nil {
				addEdge(b.cur, join)
			}
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		addEdge(b.ensure(), head)
		b.cur = head
		val, isConst := true, s.Cond == nil
		if s.Cond != nil {
			b.addNode(s.Cond)
			val, isConst = b.constBool(s.Cond)
		}
		body := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		join := b.newBlock()
		if !isConst || val {
			addEdge(head, body)
		}
		if !isConst || !val {
			addEdge(head, join)
		}
		b.pushLoop(label, join, post)
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			addEdge(b.cur, post)
		}
		if s.Post != nil {
			b.cur = post
			b.stmt(s.Post)
			if b.cur != nil {
				addEdge(b.cur, head)
			}
		}
		b.popLoop(label)
		b.cur = join

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		addEdge(b.ensure(), head)
		head.Range = s
		body := b.newBlock()
		join := b.newBlock()
		addEdge(head, body)
		addEdge(head, join)
		b.pushLoop(label, join, head)
		b.cur = body
		b.stmt(s.Body)
		if b.cur != nil {
			addEdge(b.cur, head)
		}
		b.popLoop(label)
		b.cur = join

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.addNode(s.Tag)
		}
		b.switchClauses(label, s.Body.List, func(c ast.Stmt) ([]ast.Node, []ast.Stmt) {
			cc := c.(*ast.CaseClause)
			var exprs []ast.Node
			for _, e := range cc.List {
				exprs = append(exprs, e)
			}
			return exprs, cc.Body
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.addNode(s.Assign)
		b.switchClauses(label, s.Body.List, func(c ast.Stmt) ([]ast.Node, []ast.Stmt) {
			cc := c.(*ast.CaseClause)
			return nil, cc.Body
		})

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.ensure()
		join := b.newBlock()
		b.pushLoop(label, join, nil)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			cb := b.newBlock()
			addEdge(head, cb)
			b.cur = cb
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				addEdge(b.cur, join)
			}
		}
		if len(s.Body.List) == 0 {
			// An empty select blocks forever: no edge to join.
			b.cur = nil
		}
		b.popLoop(label)
		b.cur = join

	case *ast.LabeledStmt:
		// The label is a goto target; a loop/switch directly under it
		// additionally registers labeled break/continue joins.
		target, ok := b.gotoTarget[s.Label.Name]
		if !ok {
			target = b.newBlock()
			b.gotoTarget[s.Label.Name] = target
		}
		if b.cur != nil {
			addEdge(b.cur, target)
		}
		b.cur = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.pendingLabel = ""
		switch s.Tok {
		case token.BREAK:
			if tgt := b.breakTarget(s.Label); tgt != nil {
				b.addNode(s)
				addEdge(b.cur, tgt)
			}
			b.cur = nil
		case token.CONTINUE:
			if tgt := b.contTarget(s.Label); tgt != nil {
				b.addNode(s)
				addEdge(b.cur, tgt)
			}
			b.cur = nil
		case token.GOTO:
			target, ok := b.gotoTarget[s.Label.Name]
			if !ok {
				target = b.newBlock()
				b.gotoTarget[s.Label.Name] = target
			}
			b.addNode(s)
			addEdge(b.cur, target)
			b.cur = nil
		case token.FALLTHROUGH:
			// Handled by switchClauses; a stray one is a compile error.
		}

	case *ast.ReturnStmt:
		b.pendingLabel = ""
		b.addNode(s)
		addEdge(b.cur, b.g.Exit)
		b.cur = nil

	case *ast.ExprStmt:
		b.pendingLabel = ""
		b.addNode(s)
		if b.isPanic(s.X) {
			b.cur.Panics = true
			addEdge(b.cur, b.g.Exit)
			b.cur = nil
		}

	case *ast.DeferStmt:
		b.pendingLabel = ""
		b.g.Defers = append(b.g.Defers, s)
		b.addNode(s)

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, IncDecStmt, GoStmt, SendStmt, ...
		b.pendingLabel = ""
		b.addNode(s)
	}
}

// switchClauses lowers the clause list of a switch or type switch.
// split extracts each clause's guard expressions and body.
func (b *builder) switchClauses(label string, clauses []ast.Stmt, split func(ast.Stmt) ([]ast.Node, []ast.Stmt)) {
	head := b.ensure()
	join := b.newBlock()
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		addEdge(head, blocks[i])
		if exprs, _ := split(c); len(exprs) == 0 {
			hasDefault = true
		}
	}
	if !hasDefault {
		addEdge(head, join)
	}
	b.pushLoop(label, join, nil)
	for i, c := range clauses {
		exprs, body := split(c)
		b.cur = blocks[i]
		for _, e := range exprs {
			b.addNode(e)
		}
		// A trailing fallthrough transfers into the next clause body.
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		b.stmtList(body)
		if b.cur != nil {
			if fallsThrough && i+1 < len(blocks) {
				addEdge(b.cur, blocks[i+1])
			} else {
				addEdge(b.cur, join)
			}
		}
	}
	b.popLoop(label)
	b.cur = join
}

// pushLoop registers break/continue targets (cont == nil for switches
// and selects, whose continue belongs to an enclosing loop).
func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, brk)
	b.contPushed = append(b.contPushed, cont != nil)
	if cont != nil {
		b.conts = append(b.conts, cont)
	}
	if label != "" {
		b.labelBreak[label] = brk
		if cont != nil {
			b.labelCont[label] = cont
		}
	}
}

func (b *builder) popLoop(label string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	if b.contPushed[len(b.contPushed)-1] {
		b.conts = b.conts[:len(b.conts)-1]
	}
	b.contPushed = b.contPushed[:len(b.contPushed)-1]
	if label != "" {
		delete(b.labelBreak, label)
		delete(b.labelCont, label)
	}
}

func (b *builder) breakTarget(label *ast.Ident) *Block {
	b.ensure()
	if label != nil {
		return b.labelBreak[label.Name]
	}
	if n := len(b.breaks); n > 0 {
		return b.breaks[n-1]
	}
	return nil
}

func (b *builder) contTarget(label *ast.Ident) *Block {
	b.ensure()
	if label != nil {
		return b.labelCont[label.Name]
	}
	if n := len(b.conts); n > 0 {
		return b.conts[n-1]
	}
	return nil
}
