package lint

import (
	"fmt"
	"go/ast"
	"go/types"

	"rvma/internal/lint/flow"
)

// funcInfo is one analyzed function body: a declared function or method,
// or a function literal (analyzed standalone so sources and sinks that
// live entirely inside a scheduled closure are still connected).
type funcInfo struct {
	// decl is nil for function literals.
	decl *ast.FuncDecl
	// lit is nil for declared functions.
	lit *ast.FuncLit
	// obj is the type-checker object for declared functions, nil for lits.
	obj *types.Func
	// name renders the function for diagnostics ("Engine.Schedule",
	// "Put.func1").
	name string
	// graph is the function body's control-flow graph.
	graph *flow.Graph
	// callees are the intra-package declared functions this body calls
	// statically (used for bottom-up ordering and hot-path reachability).
	callees []*funcInfo
	// allocs and hotCalls are the allocation and static-call sites on
	// live non-panic paths, cached by computeAllocSummary.
	allocs   []allocSite
	hotCalls []callSite
}

// sig returns the function's signature, or nil for literals whose type
// could not be resolved.
func (fi *funcInfo) sig(info *types.Info) *types.Signature {
	if fi.obj != nil {
		s, _ := fi.obj.Type().(*types.Signature)
		return s
	}
	if fi.lit != nil {
		if tv, ok := info.Types[fi.lit]; ok {
			s, _ := tv.Type.(*types.Signature)
			return s
		}
	}
	return nil
}

// body returns the function's statement list.
func (fi *funcInfo) body() *ast.BlockStmt {
	if fi.decl != nil {
		return fi.decl.Body
	}
	return fi.lit.Body
}

// flowCtx is the dataflow view of one package shared by the flow-based
// analyzers: every function body's CFG, a bottom-up analysis order, and
// the call-summary store.
type flowCtx struct {
	pkg *Package
	// funcs is every analyzed body in bottom-up order: intra-package
	// callees come before their callers, so summaries exist before use.
	funcs []*funcInfo
	// byObj maps declared functions to their info.
	byObj map[*types.Func]*funcInfo
	// sums is the summary store. It is shared process-wide: `go list
	// -deps` order guarantees a dependency package is analyzed before its
	// importers within one standalone run, so cross-package summaries are
	// already present when a caller is reached. Store keys are the type
	// checker's *types.Func objects, which separate loads never share, so
	// fixture runs cannot contaminate a repository run.
	sums flow.Store
	// taintFindings are detaint diagnostics recorded while summaries were
	// computed, replayed when the analyzer runs.
	taintFindings []taintFinding
}

// sharedSummaries persists function summaries across the packages of one
// process so later packages see their dependencies' summaries.
var sharedSummaries = flow.Store{}

// buildFlowCtx lowers every function body in the package to a CFG,
// orders bodies bottom-up over the intra-package call graph, and
// computes call summaries in that order.
func buildFlowCtx(pkg *Package) *flowCtx {
	ctx := &flowCtx{
		pkg:   pkg,
		byObj: make(map[*types.Func]*funcInfo),
		sums:  sharedSummaries,
	}

	// Collect declared functions and methods in source order, then the
	// function literals inside each (named after their host declaration).
	var source []*funcInfo
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
			fi := &funcInfo{decl: fd, obj: obj, name: declName(fd)}
			fi.graph = flow.New(fd.Body, pkg.TypesInfo)
			source = append(source, fi)
			if obj != nil {
				ctx.byObj[obj] = fi
			}
			litIndex := 0
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				lit, ok := n.(*ast.FuncLit)
				if !ok {
					return true
				}
				litIndex++
				li := &funcInfo{
					lit:  lit,
					name: fmt.Sprintf("%s.func%d", fi.name, litIndex),
				}
				li.graph = flow.New(lit.Body, pkg.TypesInfo)
				source = append(source, li)
				// Keep descending: nested literals get their own entry;
				// analyzing an inner body twice (once nested, once standalone)
				// is avoided because the CFG of the outer literal treats the
				// inner literal as an opaque expression.
				return true
			})
		}
	}

	// Resolve intra-package call edges.
	for _, fi := range source {
		seen := make(map[*funcInfo]bool)
		ast.Inspect(fi.body(), func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if callee := calleeFunc(pkg.TypesInfo, call); callee != nil {
					if ci := ctx.byObj[callee]; ci != nil && ci != fi && !seen[ci] {
						seen[ci] = true
						fi.callees = append(fi.callees, ci)
					}
				}
			}
			return true
		})
	}

	// Bottom-up order: DFS postorder over the call graph, roots in
	// source order. Recursion cycles break at the back edge; members of a
	// cycle get summaries computed with whatever is known so far, which
	// is conservative (an absent summary means "unknown callee").
	visited := make(map[*funcInfo]bool)
	var visit func(fi *funcInfo)
	visit = func(fi *funcInfo) {
		if visited[fi] {
			return
		}
		visited[fi] = true
		for _, c := range fi.callees {
			visit(c)
		}
		ctx.funcs = append(ctx.funcs, fi)
	}
	for _, fi := range source {
		visit(fi)
	}

	for _, fi := range ctx.funcs {
		computeTaintSummary(ctx, fi)
		computeAllocSummary(ctx, fi)
	}
	return ctx
}

// declName renders a FuncDecl for diagnostics as Recv.Name or Name.
func declName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
		if idx, ok := t.(*ast.IndexExpr); ok {
			if id, ok := idx.X.(*ast.Ident); ok {
				return id.Name + "." + fd.Name.Name
			}
		}
	}
	return fd.Name.Name
}
