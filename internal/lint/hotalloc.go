package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc structurally guards the event hot path's zero-allocation
// property (the runtime bench gate only catches a regression when the
// benchmark runs; this proves it for every build).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid heap allocations (capturing closures, map/slice literals, make/new, " +
		"append growth, interface boxing) in functions reachable from a //rvmalint:hot " +
		"root, seeded with sim.Engine's schedule/pop path. Panic-only paths and " +
		"branches pruned by build-time constants (if sim.DebugEnabled) are exempt",
	Run: runHotAlloc,
}

// allocSite is one potential heap allocation inside a function.
type allocSite struct {
	pos  token.Pos
	what string
}

// callSite is one static call on a non-panic live path.
type callSite struct {
	pos    token.Pos
	callee *types.Func
}

// computeAllocSummary scans the function's live, non-panic blocks for
// allocation sites and static calls, caches them on the funcInfo, and
// folds the result into the function's call summary. Runs bottom-up, so
// intra-package callee summaries are already final.
func computeAllocSummary(ctx *flowCtx, fi *funcInfo) {
	info := ctx.pkg.TypesInfo
	for _, b := range fi.graph.Blocks {
		if !b.Live || b.Panics {
			continue
		}
		for _, n := range b.Nodes {
			scanAllocs(info, n, &fi.allocs, &fi.hotCalls)
		}
	}
	if fi.obj == nil {
		return
	}
	sum := ctx.sums.GetOrCreate(fi.obj)
	sum.Allocates = false
	sum.AllocWhat = ""
	if len(fi.allocs) > 0 {
		sum.Allocates = true
		sum.AllocWhat = fi.allocs[0].what
	}
	for _, c := range fi.hotCalls {
		if cs := ctx.sums.Get(c.callee); cs != nil && cs.Allocates && !sum.Allocates {
			sum.Allocates = true
			sum.AllocWhat = "call to " + c.callee.Name() + " (" + cs.AllocWhat + ")"
		}
	}
}

// scanAllocs walks one CFG node recording allocation sites and static
// calls. Function-literal bodies are skipped — a closure's body runs
// when the closure is invoked, not where it is written — but the
// literal itself is an allocation when it captures variables.
func scanAllocs(info *types.Info, n ast.Node, allocs *[]allocSite, calls *[]callSite) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if capturesVariables(info, x) {
				*allocs = append(*allocs, allocSite{x.Pos(), "closure capturing outer variables"})
			}
			return false
		case *ast.CompositeLit:
			if tv := info.Types[x]; tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Map:
					*allocs = append(*allocs, allocSite{x.Pos(), "map literal"})
				case *types.Slice:
					*allocs = append(*allocs, allocSite{x.Pos(), "slice literal"})
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					*allocs = append(*allocs, allocSite{x.Pos(), "&composite literal"})
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					switch id.Name {
					case "make":
						*allocs = append(*allocs, allocSite{x.Pos(), "make"})
					case "new":
						*allocs = append(*allocs, allocSite{x.Pos(), "new"})
					case "append":
						*allocs = append(*allocs, allocSite{x.Pos(), "append (may grow the backing array)"})
					}
					return true
				}
			}
			if callee := calleeFunc(info, x); callee != nil {
				*calls = append(*calls, callSite{x.Pos(), callee})
				if site := boxingSite(info, x, callee); site != nil {
					*allocs = append(*allocs, *site)
				}
			}
		}
		return true
	})
}

// boxingSite reports an interface-boxing allocation: a non-constant
// concrete value passed where the callee takes an interface (including
// the hidden slice of a variadic any call).
func boxingSite(info *types.Info, call *ast.CallExpr, callee *types.Func) *allocSite {
	sig, ok := callee.Type().(*types.Signature)
	if !ok {
		return nil
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv := info.Types[arg]
		if tv.Value != nil || tv.Type == nil {
			continue // constants are boxed at compile time into static data
		}
		switch tv.Type.Underlying().(type) {
		case *types.Interface, *types.Pointer:
			continue // already an interface, or a pointer (boxes without copying)
		}
		return &allocSite{arg.Pos(), "interface boxing of " + tv.Type.String() + " argument to " + callee.Name()}
	}
	return nil
}

// capturesVariables reports whether the literal references variables
// declared outside its own body (package-level state excluded: it needs
// no capture slot).
func capturesVariables(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package scope
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

// runHotAlloc computes the hot set — functions whose doc comment carries
// //rvmalint:hot plus everything they statically call within the package
// on live non-panic paths — and reports every allocation site inside it,
// plus calls that leave the package into a summarized allocating callee.
func runHotAlloc(pass *Pass) error {
	ctx := pass.fl
	if ctx == nil {
		return nil
	}

	roots := make(map[*funcInfo]string)
	for _, fi := range ctx.funcs {
		if fi.decl != nil && fi.decl.Doc != nil {
			for _, c := range fi.decl.Doc.List {
				// Exact directive form only: prose that merely mentions
				// the marker must not turn a function into a root.
				if rest, ok := strings.CutPrefix(c.Text, "//rvmalint:hot"); ok &&
					(rest == "" || rest[0] == ' ' || rest[0] == '\t') {
					roots[fi] = fi.name
				}
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}

	// Reachability: breadth-first over static calls, tracking which root
	// each function was reached from for the diagnostic.
	rootOf := make(map[*funcInfo]string)
	var queue []*funcInfo
	for _, fi := range ctx.funcs { // ctx.funcs order keeps output deterministic
		if name, ok := roots[fi]; ok {
			rootOf[fi] = name
			queue = append(queue, fi)
		}
	}
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		for _, c := range fi.hotCalls {
			if ci := ctx.byObj[c.callee]; ci != nil {
				if _, seen := rootOf[ci]; !seen {
					rootOf[ci] = rootOf[fi]
					queue = append(queue, ci)
				}
			}
		}
	}

	for _, fi := range ctx.funcs {
		root, hot := rootOf[fi]
		if !hot {
			continue
		}
		via := ""
		if fi.name != root {
			via = " (reachable from " + root + ")"
		}
		for _, a := range fi.allocs {
			pass.Reportf(a.pos, "%s allocates on the hot path in %s%s; the event loop must stay 0-alloc",
				a.what, fi.name, via)
		}
		for _, c := range fi.hotCalls {
			if ctx.byObj[c.callee] != nil {
				continue // in-package: reported at its own sites
			}
			if cs := ctx.sums.Get(c.callee); cs != nil && cs.Allocates {
				pass.Reportf(c.pos, "call to %s allocates (%s) on the hot path in %s%s",
					c.callee.Name(), cs.AllocWhat, fi.name, via)
			}
		}
	}
	return nil
}
