package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// fixtureCases pairs each analyzer with its seeded-violation fixture.
// Every fixture runs under ALL analyzers so a check firing outside its
// own fixture (a cross-analyzer false positive) fails the test too.
var fixtureCases = []struct {
	name string
	dir  string
}{
	{"wallclock", "wallclock"},
	{"maprange", "maprange"},
	{"simtime", "simtime"},
	{"goroutine", "goroutine"},
	{"clean", "clean"},
}

func TestFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.dir)
			for _, err := range RunFixture(dir, All()) {
				t.Error(err)
			}
		})
	}
}

// TestRepositoryIsClean is the acceptance gate: every model package in
// this repository must produce zero diagnostics. CI additionally runs
// cmd/rvmalint, but keeping the gate in `go test` means a violation
// fails the ordinary test suite even where CI is not wired up.
func TestRepositoryIsClean(t *testing.T) {
	pkgs, err := Load("..", "rvma/...")
	if err != nil {
		t.Fatalf("loading repository packages: %v", err)
	}
	checked := 0
	for _, pkg := range pkgs {
		if !IsModelPackage(pkg.PkgPath) {
			continue
		}
		checked++
		diags, err := RunAnalyzers(pkg, All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
	if checked != len(ModelPackages) {
		t.Errorf("checked %d model packages, expected %d — did a package move without updating lint.ModelPackages?",
			checked, len(ModelPackages))
	}
}

// TestDirectiveRequiresAnalyzerName guards the directive parser: a
// directive names specific analyzers, and an unknown name suppresses
// nothing.
func TestDirectiveMatchesOnlyNamedAnalyzer(t *testing.T) {
	dir := filepath.Join("testdata", "wallclock")
	// Running only the wallclock analyzer must still satisfy that
	// fixture's wallclock expectations.
	var errs []error
	for _, err := range RunFixture(dir, []*Analyzer{Wallclock}) {
		errs = append(errs, err)
	}
	for _, err := range errs {
		t.Error(err)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "wallclock", Message: "m"}
	d.Pos.Filename = "f.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "f.go:3:7: m [wallclock]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestModelPackageSet(t *testing.T) {
	for path := range ModelPackages {
		if !strings.HasPrefix(path, "rvma/internal/") {
			t.Errorf("model package %q outside rvma/internal/", path)
		}
	}
	if IsModelPackage("rvma/internal/harness") {
		t.Error("harness must stay host-side (it may time real executions)")
	}
}
