package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureCases pairs each analyzer with its seeded-violation fixture.
// Every fixture runs under ALL analyzers so a check firing outside its
// own fixture (a cross-analyzer false positive) fails the test too.
var fixtureCases = []struct {
	name string
	dir  string
}{
	{"wallclock", "wallclock"},
	{"maprange", "maprange"},
	{"simtime", "simtime"},
	{"goroutine", "goroutine"},
	{"detaint", "detaint"},
	{"spanleak", "spanleak"},
	{"hotalloc", "hotalloc"},
	{"psunits", "psunits"},
	{"clean", "clean"},
}

func TestFixtures(t *testing.T) {
	for _, tc := range fixtureCases {
		t.Run(tc.name, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.dir)
			for _, err := range RunFixture(dir, All()) {
				t.Error(err)
			}
		})
	}
}

// TestRepositoryIsClean is the acceptance gate: every model package in
// this repository must produce zero diagnostics. CI additionally runs
// cmd/rvmalint, but keeping the gate in `go test` means a violation
// fails the ordinary test suite even where CI is not wired up.
func TestRepositoryIsClean(t *testing.T) {
	pkgs, err := Load("..", "rvma/...")
	if err != nil {
		t.Fatalf("loading repository packages: %v", err)
	}
	checked := 0
	for _, pkg := range pkgs {
		if !IsModelPackage(pkg.PkgPath) {
			continue
		}
		checked++
		diags, err := RunAnalyzers(pkg, All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.PkgPath, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
	if checked != len(ModelPackages) {
		t.Errorf("checked %d model packages, expected %d — did a package move without updating lint.ModelPackages?",
			checked, len(ModelPackages))
	}
}

// TestDirectiveRequiresAnalyzerName guards the directive parser: a
// directive names specific analyzers, and an unknown name suppresses
// nothing.
func TestDirectiveMatchesOnlyNamedAnalyzer(t *testing.T) {
	dir := filepath.Join("testdata", "wallclock")
	// Running only the wallclock analyzer must still satisfy that
	// fixture's wallclock expectations.
	var errs []error
	for _, err := range RunFixture(dir, []*Analyzer{Wallclock}) {
		errs = append(errs, err)
	}
	for _, err := range errs {
		t.Error(err)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "wallclock", Message: "m"}
	d.Pos.Filename = "f.go"
	d.Pos.Line = 3
	d.Pos.Column = 7
	if got, want := d.String(), "f.go:3:7: m [wallclock]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestModelPackageSet(t *testing.T) {
	for path := range ModelPackages {
		if !strings.HasPrefix(path, "rvma/internal/") {
			t.Errorf("model package %q outside rvma/internal/", path)
		}
	}
	if IsModelPackage("rvma/internal/harness") {
		t.Error("harness must stay host-side (it may time real executions)")
	}
}

// hostSidePackages are the internal packages deliberately outside the
// determinism rules, each with the reason it is exempt. A package must
// appear here or in ModelPackages: TestModelPackagesCoverInternalTree
// fails on any unaccounted directory, so adding a package forces an
// explicit classification decision.
var hostSidePackages = map[string]string{
	"rvma/internal/harness":     "times real executions of the binary under test",
	"rvma/internal/lint":        "the linter itself; runs at build time, not sim time",
	"rvma/internal/matchengine": "offline figure matcher; compares CSVs after runs finish",
	"rvma/internal/metrics":     "recording substrate; sinks for model data, runs no model logic",
	"rvma/internal/microbench":  "host-side wall-clock benchmarking of the simulator",
	"rvma/internal/rstream":     "offline result-stream codec for harness artifacts",
	"rvma/internal/stats":       "pure math over finished samples; no engine interaction",
	"rvma/internal/trace":       "trace file writer; consumes events after the fact",
}

// TestModelPackagesCoverInternalTree keeps lint.ModelPackages in sync
// with the directory tree: every package under internal/ holding Go
// files must be classified, and every classified path must still exist.
func TestModelPackagesCoverInternalTree(t *testing.T) {
	root := filepath.Join("..") // internal/
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatalf("reading internal/: %v", err)
	}
	onDisk := make(map[string]bool)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sub, err := os.ReadDir(filepath.Join(root, e.Name()))
		if err != nil {
			t.Fatalf("reading internal/%s: %v", e.Name(), err)
		}
		hasGo := false
		for _, f := range sub {
			if !f.IsDir() && strings.HasSuffix(f.Name(), ".go") {
				hasGo = true
				break
			}
		}
		if !hasGo {
			continue
		}
		path := "rvma/internal/" + e.Name()
		onDisk[path] = true
		model, host := ModelPackages[path], hostSidePackages[path] != ""
		switch {
		case model && host:
			t.Errorf("%s is listed both as a model package and as host-side", path)
		case !model && !host:
			t.Errorf("%s is unclassified: add it to lint.ModelPackages (determinism rules apply) or to hostSidePackages with a reason", path)
		}
	}
	for path := range ModelPackages {
		if !onDisk[path] {
			t.Errorf("ModelPackages lists %s, which no longer exists under internal/", path)
		}
	}
	for path := range hostSidePackages {
		if !onDisk[path] {
			t.Errorf("hostSidePackages lists %s, which no longer exists under internal/", path)
		}
	}
}
