package lint

import (
	"go/ast"
	"strconv"
)

// bannedTimeFuncs are the package-level functions of "time" that read or
// block on the host's wall clock. Referencing one from model code makes
// behavior depend on when and where the simulation runs; model code must
// use sim.Time and the engine's clock exclusively. (Pure types and
// constants like time.Duration or time.Nanosecond are not banned — the
// simtime analyzer separately flags mixing them with sim.Time.)
var bannedTimeFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// bannedImports are packages model code may never import: any use of the
// global math/rand source (seeded or not) or crypto/rand breaks seeded
// reproducibility. The engine's RNG (sim.RNG) is the only permitted
// randomness.
var bannedImports = map[string]string{
	"math/rand":    "use the engine's deterministic RNG (sim.Engine.RNG) instead",
	"math/rand/v2": "use the engine's deterministic RNG (sim.Engine.RNG) instead",
	"crypto/rand":  "cryptographic randomness is never deterministic; use sim.Engine.RNG",
}

// Wallclock bans wall-clock time and ambient randomness in model packages.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Sleep/Since and math/rand / crypto/rand in model packages; " +
		"simulated components must take time from sim.Engine and randomness from sim.RNG " +
		"so that a seed reproduces a run exactly",
	Run: runWallclock,
}

func runWallclock(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, banned := bannedImports[path]; banned {
				pass.Reportf(imp.Pos(), "import of %q is forbidden in model packages: %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pkgNameOf(pass.TypesInfo, sel.X)
			if pn == nil || pn.Imported().Path() != "time" {
				return true
			}
			if bannedTimeFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the host wall clock; model code must use the engine's simulated clock (sim.Engine.Now)",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
