package lint

import (
	"go/ast"
	"go/types"
)

// MapRange flags range statements over maps whose bodies do order-
// sensitive work. Go randomizes map iteration order on purpose; when a
// map-range body schedules events, calls into model code (which may
// schedule or mutate simulation state), appends to a slice that outlives
// the loop, or writes output, the result depends on that random order
// and same-seed runs diverge. Commutative bodies (summing into a local,
// counting) are fine and are not flagged.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "forbid order-sensitive work (event scheduling, model-code calls, exported-slice " +
		"appends, output writes) inside range-over-map bodies, whose iteration order is " +
		"randomized per run",
	Run: runMapRange,
}

// outputWriters are fmt functions that emit bytes; emitting them in map
// order makes reports and exported files differ run to run.
var outputWriters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMapRange(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, rs)
			return true
		})
	}
	return nil
}

// checkMapRangeBody walks one map-range body (including nested function
// literals, whose closures capture loop variables in map order) and
// reports order-sensitive operations.
func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			checkMapRangeCall(pass, call, rs)
		}
		return true
	})
}

// declaredWithin reports whether obj is declared inside the loop (its
// key/value bindings or the body): appends into such slices restart each
// iteration and cannot leak map order out of the loop.
func declaredWithin(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() >= rs.Pos() && obj.Pos() <= rs.Body.End()
}

func checkMapRangeCall(pass *Pass, call *ast.CallExpr, rs *ast.RangeStmt) {
	// append to a slice that escapes the function (an exported name, a
	// package-level var, or a struct field): the elements accumulate in
	// map order and that order leaks into results and reports. A local
	// lowercase slice is exempt — the standard fix (collect keys, sort,
	// iterate) depends on exactly that pattern.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			if _, isBuiltin := obj.(*types.Builtin); isBuiltin && len(call.Args) > 0 {
				if target := appendTargetObject(pass, call.Args[0]); target != nil &&
					!declaredWithin(target, rs) && escapesFunction(target) {
					pass.Reportf(call.Pos(),
						"append to %q inside a map-range body accumulates elements in randomized map order; iterate sorted keys instead",
						target.Name())
				}
			}
		}
		return
	}

	f := calleeFunc(pass.TypesInfo, call)
	if f == nil {
		return // builtin, conversion, or dynamic call through a value
	}

	switch {
	case isEngineMethod(f, "Schedule", "ScheduleP", "At", "Spawn"):
		pass.Reportf(call.Pos(),
			"Engine.%s inside a map-range body assigns event sequence numbers in randomized map order; iterate sorted keys instead",
			f.Name())
	case funcPkgPath(f) == "fmt" && outputWriters[f.Name()]:
		pass.Reportf(call.Pos(),
			"fmt.%s inside a map-range body emits output in randomized map order; collect and sort first",
			f.Name())
	case isModelCall(pass, f):
		pass.Reportf(call.Pos(),
			"call to %s inside a map-range body may schedule events or mutate simulation state in randomized map order; iterate sorted keys instead",
			f.Name())
	}
}

// isModelCall reports whether f is declared in a model package (this one
// or another rvma/ package). Model functions may schedule events or
// mutate shared simulation state, so invoking them in map order is
// order-sensitive even when this package cannot see the scheduling.
func isModelCall(pass *Pass, f *types.Func) bool {
	path := funcPkgPath(f)
	if path == pass.Pkg.Path() {
		return true
	}
	return len(path) >= len(modelPathPrefix) && path[:len(modelPathPrefix)] == modelPathPrefix
}

// escapesFunction reports whether the append target outlives the
// enclosing function: an exported name, a struct field, or a
// package-level variable.
func escapesFunction(obj types.Object) bool {
	if obj.Exported() {
		return true
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return true
	}
	// Package-level variable: its parent scope is the package scope.
	return obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// appendTargetObject resolves append's first argument to the object it
// names: the identifier itself, or the root of a selector chain (a field
// append mutates state reachable after the loop).
func appendTargetObject(pass *Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		// x.f or pkg.Var: report against the field/var being appended to.
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}
