package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// SimTime enforces sim-time hygiene around the scheduling API:
//
//   - scheduling at a constant negative delay (the engine panics at run
//     time; the linter catches it at review time);
//   - delay expressions built from a bare subtraction, which underflow
//     below zero the moment the minuend falls behind — use Engine.At
//     with an absolute time, or clamp explicitly;
//   - converting between sim.Time (picoseconds) and time.Duration
//     (nanoseconds), or comparing the two: the 1000x unit mismatch
//     silently corrupts every latency it touches.
var SimTime = &Analyzer{
	Name: "simtime",
	Doc: "flag negative or underflow-prone delays passed to Engine.Schedule/ScheduleP/At " +
		"and unit-unsafe mixing of sim.Time (ps) with time.Duration (ns)",
	Run: runSimTime,
}

func runSimTime(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkScheduleDelay(pass, n)
				checkTimeConversion(pass, n)
			case *ast.BinaryExpr:
				checkTimeComparison(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkScheduleDelay inspects the delay argument of the scheduling
// methods.
func checkScheduleDelay(pass *Pass, call *ast.CallExpr) {
	f := calleeFunc(pass.TypesInfo, call)
	if !isEngineMethod(f, "Schedule", "ScheduleP", "At") || len(call.Args) == 0 {
		return
	}
	arg := ast.Unparen(call.Args[0])

	// Constant negative delay: always a bug (the engine panics).
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
		if constant.Sign(tv.Value) < 0 {
			pass.Reportf(arg.Pos(),
				"Engine.%s with constant negative delay %s; causality only moves forward",
				f.Name(), tv.Value.ExactString())
		}
		return // a non-negative constant cannot underflow
	}

	// At takes an absolute time; subtraction there is not a delay and is
	// routinely legitimate (e.g. deadline arithmetic feeding assertions).
	if f.Name() == "At" {
		return
	}

	// A top-level subtraction of non-constants: the canonical underflow,
	// e.g. Schedule(deadline - eng.Now(), ...) after the deadline passed.
	if bin, ok := arg.(*ast.BinaryExpr); ok && bin.Op == token.SUB {
		pass.Reportf(arg.Pos(),
			"delay passed to Engine.%s is a bare subtraction that can underflow below zero; use Engine.At with an absolute time or clamp the difference first",
			f.Name())
	}
}

// checkTimeConversion flags sim.Time <-> time.Duration conversions.
func checkTimeConversion(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := tv.Type
	src := pass.TypesInfo.TypeOf(call.Args[0])
	if src == nil {
		return
	}
	switch {
	case isNamed(dst, simPkgPath, "Time") && isNamed(src, "time", "Duration"):
		pass.Reportf(call.Pos(),
			"converting time.Duration (nanoseconds) directly to sim.Time (picoseconds) drops the 1000x unit factor; scale via sim.Nanosecond")
	case isNamed(dst, "time", "Duration") && isNamed(src, simPkgPath, "Time"):
		pass.Reportf(call.Pos(),
			"converting sim.Time (picoseconds) directly to time.Duration (nanoseconds) drops the 1000x unit factor; scale via sim.Nanosecond")
	}
}

// comparisonOps are the operators whose operands must share units.
var comparisonOps = map[token.Token]bool{
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.GTR: true,
	token.LEQ: true, token.GEQ: true,
}

// checkTimeComparison flags comparisons whose operands mix sim.Time and
// time.Duration after integer laundering (e.g. int64(a) < int64(b) never
// reaches here, but a direct mix — legal only through untyped constants
// or conversion chains — does).
func checkTimeComparison(pass *Pass, bin *ast.BinaryExpr) {
	if !comparisonOps[bin.Op] {
		return
	}
	xt := pass.TypesInfo.TypeOf(bin.X)
	yt := pass.TypesInfo.TypeOf(bin.Y)
	if xt == nil || yt == nil {
		return
	}
	mixed := (isNamed(xt, simPkgPath, "Time") && isNamed(yt, "time", "Duration")) ||
		(isNamed(xt, "time", "Duration") && isNamed(yt, simPkgPath, "Time"))
	if mixed {
		pass.Reportf(bin.Pos(),
			"comparing sim.Time (picoseconds) against time.Duration (nanoseconds); the units differ by 1000x")
	}
}
