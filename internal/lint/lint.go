// Package lint implements rvmalint, the repository's determinism and
// protocol-invariant linter.
//
// The simulation kernel's whole value is that a given seed reproduces a
// run exactly (DESIGN.md §1): event order is (time, priority, sequence)
// and the only randomness is the engine's seeded RNG. Nothing in the Go
// language enforces those rules — one stray time.Now, one global
// math/rand call, or one map iteration that schedules events silently
// destroys run-to-run reproducibility of every figure. This package
// machine-checks the rules statically; the simdebug build tag (see
// internal/sim) covers the residue that only shows up at runtime.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) so the analyzers could be rehosted on the real framework
// mechanically, but it is built entirely on the standard library: type
// information comes from export data produced by `go list -export`, so
// the linter needs no dependencies beyond the Go toolchain itself.
//
// Violations that are intentional are suppressed with a directive
// comment on the same line or the line above:
//
//	//rvmalint:allow wallclock -- host-side benchmarking, not model time
//
// The directive names one or more analyzers (comma-separated); anything
// after " -- " is a human-readable justification and is required by
// convention, not by the parser. A directive placed directly above a
// statement covers the statement's whole extent, so a single directive
// suppresses every finding inside a loop or block.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check, in the image of analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects one package through pass and reports findings.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// fl is the package's dataflow context (CFGs, bottom-up order, call
	// summaries), shared by the flow-based analyzers.
	fl    *flowCtx
	diags *[]Diagnostic
}

// Diagnostic is one finding: a position, the analyzer that produced it,
// and the message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]",
		d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns every analyzer in the suite, in stable order: the four
// syntactic checks first (wallclock, maprange, simtime, goroutine), then
// the four dataflow checks built on internal/lint/flow (detaint,
// spanleak, hotalloc, psunits).
func All() []*Analyzer {
	return []*Analyzer{Wallclock, MapRange, SimTime, Goroutine, Detaint, SpanLeak, HotAlloc, PSUnits}
}

// ModelPackages are the import paths whose code runs on the simulation
// engine and therefore must obey the determinism rules. cmd/ and the
// harness are host-side and exempt: the harness times real executions
// and runs its worker-pool cell runner on goroutines — legal precisely
// because each cell owns a private engine that no other goroutine can
// reach, so the one-goroutine rule still holds per engine. Goroutines
// remain banned inside every package listed here.
var ModelPackages = map[string]bool{
	"rvma/internal/sim":        true,
	"rvma/internal/fabric":     true,
	"rvma/internal/nic":        true,
	"rvma/internal/rvma":       true,
	"rvma/internal/rdma":       true,
	"rvma/internal/mpirma":     true,
	"rvma/internal/motif":      true,
	"rvma/internal/topology":   true,
	"rvma/internal/memory":     true,
	"rvma/internal/pcie":       true,
	"rvma/internal/hostif":     true,
	"rvma/internal/collective": true,
	// recovery schedules retry timers and jitter draws on the engine, so
	// its determinism matters as much as the transports it guards.
	"rvma/internal/recovery": true,
	// kv's store Apply runs inside server-side engine events and its zipf
	// sampler feeds seeded substreams, so both are model code.
	"rvma/internal/kv": true,
	// telemetry schedules its sampler ticks on the engine, so it must obey
	// the same determinism rules as the models it observes.
	"rvma/internal/telemetry": true,
	// attrib consumes span-observer callbacks fired from model code, so its
	// aggregation must be just as deterministic (sorted iteration, no clocks).
	"rvma/internal/attrib": true,
	// ledger's ObserveExec runs inside the engine's pop loop, so its hash
	// chain must be a pure function of the pop stream; only the host-time
	// profiler may read wall clocks, under an explicit allow directive.
	"rvma/internal/ledger": true,
}

// IsModelPackage reports whether the import path is subject to the
// determinism rules.
func IsModelPackage(path string) bool { return ModelPackages[path] }

// RunAnalyzers applies every analyzer to the package and returns the
// findings that survive allow-directive filtering, sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	fl := buildFlowCtx(pkg)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
			fl:        fl,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	diags = filterAllowed(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}

// allowDirective matches "//rvmalint:allow name1,name2 -- reason".
var allowDirective = regexp.MustCompile(`^//rvmalint:allow\s+([a-z,]+)`)

// filterAllowed drops diagnostics covered by an allow directive. A
// directive covers its own line and the following line, and when a
// statement or declaration begins on a covered line, the directive
// extends over that node's entire extent — so one directive above a
// range statement covers the whole loop body.
func filterAllowed(pkg *Package, diags []Diagnostic) []Diagnostic {
	// allowed[file][line] -> set of analyzer names.
	allowed := make(map[string]map[int]map[string]bool)
	record := func(file string, from, to int, names []string) {
		byLine := allowed[file]
		if byLine == nil {
			byLine = make(map[int]map[string]bool)
			allowed[file] = byLine
		}
		for l := from; l <= to; l++ {
			set := byLine[l]
			if set == nil {
				set = make(map[string]bool)
				byLine[l] = set
			}
			for _, n := range names {
				set[n] = true
			}
		}
	}
	for _, f := range pkg.Files {
		// spanEnd[startLine] is the last line of the outermost statement or
		// declaration beginning on that line.
		spanEnd := make(map[int]int)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case ast.Stmt, ast.Decl:
				start := pkg.Fset.Position(n.Pos()).Line
				end := pkg.Fset.Position(n.End()).Line
				if end > spanEnd[start] {
					spanEnd[start] = end
				}
			}
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowDirective.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				to := pos.Line + 1
				for _, l := range []int{pos.Line, pos.Line + 1} {
					if spanEnd[l] > to {
						to = spanEnd[l]
					}
				}
				record(pos.Filename, pos.Line, to, strings.Split(m[1], ","))
			}
		}
	}
	if len(allowed) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if set := allowed[d.Pos.Filename][d.Pos.Line]; set[d.Analyzer] || set["all"] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}
