package metrics

import (
	"bytes"
	"strings"
	"testing"

	"rvma/internal/sim"
)

// stageEvent / endEvent record SpanObserver callbacks for inspection.
type stageEvent struct {
	key       SpanKey
	scope     string
	stage     string
	node      int
	attempt   int
	dur, wait sim.Time
}

type endEvent struct {
	key        SpanKey
	scope      string
	status     string
	attempts   int
	start, end sim.Time
}

type recordingObserver struct {
	stages []stageEvent
	ends   []endEvent
}

func (r *recordingObserver) SpanStage(key SpanKey, scope, stage string, node, attempt int, from, dur, wait sim.Time) {
	r.stages = append(r.stages, stageEvent{key: key, scope: scope, stage: stage, node: node, attempt: attempt, dur: dur, wait: wait})
}

func (r *recordingObserver) SpanEnd(key SpanKey, scope, status string, attempts, node int, start, end sim.Time) {
	r.ends = append(r.ends, endEvent{key: key, scope: scope, status: status, attempts: attempts, start: start, end: end})
}

// TestSpanAttemptTaggingAndConservation drives a span through a retransmit
// and checks the observer sees attempt-tagged stages whose durations
// telescope exactly to the end-to-end latency.
func TestSpanAttemptTaggingAndConservation(t *testing.T) {
	reg := NewRegistry()
	reg.EnableSpans()
	obs := &recordingObserver{}
	reg.SetSpanObserver(obs)

	key := SpanKey{Node: 3, ID: 7}
	sp := reg.BeginSpan(100, key, "rvma.put", 3)
	sp.Stage(150, "host_post")
	sp.StageWait(450, "nic_tx", 120)
	sp.NextAttempt(2450) // timeout fired, retransmitting
	if got := sp.Attempt(); got != 1 {
		t.Fatalf("Attempt() = %d after one retransmit, want 1", got)
	}
	sp.StageWait(2700, "nic_tx", 90)
	sp.StageWait(4000, "wire", 1000)
	sp.StageService(4200, "place", 150)
	sp.End(4200)

	if open := reg.OpenSpans(); open != 0 {
		t.Fatalf("OpenSpans() = %d after End, want 0", open)
	}
	if len(obs.ends) != 1 {
		t.Fatalf("observer saw %d span endings, want 1", len(obs.ends))
	}
	end := obs.ends[0]
	if end.status != "completed" || end.attempts != 2 {
		t.Fatalf("SpanEnd status %q attempts %d, want completed / 2", end.status, end.attempts)
	}

	var sum sim.Time
	attempts := map[string]int{}
	for _, s := range obs.stages {
		sum += s.dur
		attempts[s.stage] = s.attempt
		if s.wait < 0 || s.wait > s.dur {
			t.Errorf("stage %s: wait %d outside [0, %d]", s.stage, s.wait, s.dur)
		}
	}
	if total := end.end - end.start; sum != total {
		t.Fatalf("stage durations sum to %d, end-to-end is %d (conservation broken)", sum, total)
	}
	if attempts["host_post"] != 0 || attempts["retry_wait"] != 0 {
		t.Errorf("first-attempt stages tagged %d/%d, want 0", attempts["host_post"], attempts["retry_wait"])
	}
	if attempts["wire"] != 1 || attempts["place"] != 1 {
		t.Errorf("post-retransmit stages tagged %d/%d, want 1", attempts["wire"], attempts["place"])
	}
}

// TestSpanEndsExactlyOnce checks the terminal flag: after End, every
// mutation — including a racing abandon or duplicate completion — is a
// no-op, and the observer sees exactly one ending.
func TestSpanEndsExactlyOnce(t *testing.T) {
	reg := NewRegistry()
	reg.EnableSpans()
	obs := &recordingObserver{}
	reg.SetSpanObserver(obs)

	sp := reg.BeginSpan(0, SpanKey{Node: 1, ID: 1}, "rvma.put", 1)
	sp.Stage(10, "host_post")
	sp.End(10)

	// A straggler path trying to mutate the ended span must change nothing.
	sp.Stage(20, "wire")
	sp.NextAttempt(30)
	sp.SetNode(9)
	sp.End(40)
	sp.EndAbandoned(50)
	sp.EndNacked(60)

	if len(obs.ends) != 1 {
		t.Fatalf("observer saw %d endings, want exactly 1", len(obs.ends))
	}
	if len(obs.stages) != 1 {
		t.Fatalf("observer saw %d stages, want 1 (post-end marks must be no-ops)", len(obs.stages))
	}
	if got := reg.Counter("span.rvma.put/abandoned").Value(); got != 0 {
		t.Fatalf("abandoned counter = %d after completed span, want 0", got)
	}
	if got := reg.Histogram("span.rvma.put/total").Count(); got != 1 {
		t.Fatalf("total histogram count = %d, want 1", got)
	}
}

// TestSpanEndAbandoned checks the abandoned ending: the open interval
// closes as an all-wait "abandon" stage, the status counter increments and
// the observer sees status "abandoned".
func TestSpanEndAbandoned(t *testing.T) {
	reg := NewRegistry()
	reg.EnableSpans()
	obs := &recordingObserver{}
	reg.SetSpanObserver(obs)

	sp := reg.BeginSpan(0, SpanKey{Node: 2, ID: 5}, "rdma.put", 2)
	sp.Stage(100, "host_post")
	sp.EndAbandoned(900)

	if got := reg.Counter("span.rdma.put/abandoned").Value(); got != 1 {
		t.Fatalf("abandoned counter = %d, want 1", got)
	}
	if len(obs.ends) != 1 || obs.ends[0].status != "abandoned" {
		t.Fatalf("observer endings %+v, want one abandoned", obs.ends)
	}
	last := obs.stages[len(obs.stages)-1]
	if last.stage != "abandon" || last.dur != 800 || last.wait != 800 {
		t.Fatalf("final stage %+v, want all-wait abandon of 800ps", last)
	}
	if open := reg.OpenSpans(); open != 0 {
		t.Fatalf("OpenSpans() = %d, want 0", open)
	}
}

// TestSpanRetryFlowEvents checks NextAttempt chains attempts on the
// Perfetto timeline with flow begin/end events.
func TestSpanRetryFlowEvents(t *testing.T) {
	reg := NewRegistry()
	reg.EnableSpans()
	reg.EnableTimeline(0)

	sp := reg.BeginSpan(0, SpanKey{Node: 4, ID: 9}, "rvma.put", 4)
	sp.Stage(50, "host_post")
	sp.NextAttempt(1000)
	sp.Stage(1200, "nic_tx")
	sp.End(1200)

	var buf bytes.Buffer
	if err := reg.Timeline().WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"ph":"s"`, `"ph":"f"`, `"bp":"e"`, `"nic_tx#1"`, `"retry_wait"`} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %s:\n%s", want, out)
		}
	}
}

// TestHistogramMerge checks Merge adds counts and buckets and widens the
// extrema — the primitive the harness's deterministic per-cell merge
// builds on.
func TestHistogramMerge(t *testing.T) {
	a, b := new(Histogram), new(Histogram)
	for _, v := range []float64{10, 20, 30} {
		a.Observe(v)
	}
	for _, v := range []float64{5, 500} {
		b.Observe(v)
	}
	a.Merge(b)
	if a.Count() != 5 {
		t.Fatalf("merged count = %d, want 5", a.Count())
	}
	if a.Min() != 5 || a.Max() != 500 {
		t.Fatalf("merged extrema [%g, %g], want [5, 500]", a.Min(), a.Max())
	}

	// Merging into an empty histogram reproduces the source.
	c := new(Histogram)
	c.Merge(b)
	if c.Count() != 2 || c.Min() != 5 || c.Max() != 500 {
		t.Fatalf("merge into empty: count %d extrema [%g, %g]", c.Count(), c.Min(), c.Max())
	}
	// Nil and empty sources are no-ops.
	c.Merge(nil)
	c.Merge(new(Histogram))
	if c.Count() != 2 {
		t.Fatalf("no-op merges changed count to %d", c.Count())
	}
}
