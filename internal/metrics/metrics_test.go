package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"rvma/internal/sim"
)

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(1)
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(5)
	r.AddCollector(func() { t.Fatal("collector on nil registry ran") })
	r.Collect()
	r.EnableSpans()
	r.EnableTimeline(10)
	sp := r.BeginSpan(0, SpanKey{}, "x", 0)
	if sp != nil {
		t.Fatalf("BeginSpan on nil registry = %v, want nil", sp)
	}
	sp.Stage(1, "a")
	sp.End(2)
	if err := r.WriteJSON(&bytes.Buffer{}, 0); err == nil {
		t.Fatal("WriteJSON on nil registry should error")
	}
	var tl *Timeline
	tl.Slice(0, "s", "n", 0, 1)
	tl.Counter(0, "c", 0, 1)
	tl.Instant(0, "s", "n", 0)
	if err := tl.WritePerfetto(&bytes.Buffer{}); err == nil {
		t.Fatal("WritePerfetto on nil timeline should error")
	}
}

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("sent")
	c.Add(2)
	c.Add(3)
	if got := r.Counter("sent").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("depth")
	g.Set(4)
	g.Add(-1)
	g.Add(10)
	g.Set(2)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge value = %v, want 2", got)
	}
	if got := g.Max(); got != 13 {
		t.Fatalf("gauge max = %v, want 13", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram stats should all be zero")
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(700)
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 700 {
			t.Fatalf("single-sample Quantile(%v) = %v, want 700", q, got)
		}
	}
	if h.Mean() != 700 || h.Min() != 700 || h.Max() != 700 {
		t.Fatalf("single-sample stats = mean %v min %v max %v, want 700",
			h.Mean(), h.Min(), h.Max())
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	big := overflowBound * 8
	h.Observe(big)
	h.Observe(big * 2)
	if got := h.Quantile(0.99); got < big || got > big*2 {
		t.Fatalf("overflow Quantile(0.99) = %v, want within [%v, %v] (clamped to observed range)", got, big, big*2)
	}
	if got := h.Quantile(1); got != big*2 {
		t.Fatalf("overflow Quantile(1) = %v, want exact max %v", got, big*2)
	}
	if got := h.Quantile(0.25); got < big || got > big*2 {
		t.Fatalf("overflow Quantile(0.25) = %v, want within [%v, %v]", got, big, big*2)
	}
	if h.Max() != big*2 {
		t.Fatalf("overflow max = %v, want %v", h.Max(), big*2)
	}
}

func TestHistogramNegativeClamps(t *testing.T) {
	var h Histogram
	h.Observe(-5)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative sample should clamp to 0, got min %v max %v", h.Min(), h.Max())
	}
}

func TestHistogramQuantilesMonotone(t *testing.T) {
	var h Histogram
	for v := 1.0; v <= 4096; v *= 2 {
		for i := 0; i < 10; i++ {
			h.Observe(v)
		}
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%v) = %v < previous %v; quantiles must be monotone", q, got, prev)
		}
		if got < h.Min() || got > h.Max() {
			t.Fatalf("Quantile(%v) = %v outside [min=%v, max=%v]", q, got, h.Min(), h.Max())
		}
		prev = got
	}
	if med := h.Quantile(0.5); med < 32 || med > 128 {
		t.Fatalf("median of geometric samples = %v, want within [32, 128]", med)
	}
}

// TestBucketIndexBoundaries pins the sample-to-bucket invariant that
// Quantile interpolation relies on: every sample lands in a bucket whose
// bounds contain it. Values one ulp below a power of two are the
// adversarial case — math.Log2 rounds them up to the exact exponent once
// the exponent is large enough, which used to file them one bucket high.
func TestBucketIndexBoundaries(t *testing.T) {
	for e := 1; e < histBuckets-2; e++ {
		exact := math.Exp2(float64(e))
		for _, v := range []float64{exact, math.Nextafter(exact, 0), math.Nextafter(exact, math.Inf(1))} {
			if v >= overflowBound {
				continue
			}
			i := bucketIndex(v)
			lo, hi := bucketBounds(i)
			if v < lo || v >= hi {
				t.Fatalf("bucketIndex(%v) = %d with bounds [%v, %v); sample outside its bucket", v, i, lo, hi)
			}
		}
	}
}

// TestHistogramSparseTailQuantilesMonotone is the regression test for the
// p99.9-on-sparse-tail bug: a dense low bucket plus a single far-tail
// sample one ulp below a power of two. The tail sample used to be filed
// above its covering bucket, so interpolating a quantile inside the tail
// bucket returned the bucket's lower bound — a value above the observed
// max, making Quantile(0.999) > Quantile(1).
func TestHistogramSparseTailQuantilesMonotone(t *testing.T) {
	adversarial := [][]float64{
		{math.Nextafter(1<<40, 0)},
		{math.Nextafter(1<<35, 0), math.Nextafter(1<<40, 0)},
		{1<<20 + 1, math.Nextafter(1<<41, 0)},
	}
	for _, tail := range adversarial {
		var h Histogram
		for i := 0; i < 500; i++ {
			h.Observe(3)
		}
		for _, v := range tail {
			h.Observe(v)
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.995, 0.998, 0.999, 0.9995, 0.9999, 1} {
			got := h.Quantile(q)
			if got < prev {
				t.Fatalf("tail %v: Quantile(%v) = %v < previous %v; quantiles must be monotone", tail, q, got, prev)
			}
			if got < h.Min() || got > h.Max() {
				t.Fatalf("tail %v: Quantile(%v) = %v outside [min=%v, max=%v]", tail, q, got, h.Min(), h.Max())
			}
			prev = got
		}
		if got := h.Quantile(1); got != h.Max() {
			t.Fatalf("tail %v: Quantile(1) = %v, want exact max %v", tail, got, h.Max())
		}
	}
}

func TestSpanStages(t *testing.T) {
	r := NewRegistry()
	r.EnableSpans()
	key := SpanKey{Node: 3, ID: 7}
	sp := r.BeginSpan(sim.FromNanos(100), key, "rvma.put", 3)
	if sp == nil {
		t.Fatal("BeginSpan returned nil with spans enabled")
	}
	if r.Span(key) != sp {
		t.Fatal("Span lookup did not find the open span")
	}
	if r.OpenSpans() != 1 {
		t.Fatalf("OpenSpans = %d, want 1", r.OpenSpans())
	}
	sp.Stage(sim.FromNanos(150), "host_post")
	sp.SetNode(5)
	sp.Stage(sim.FromNanos(400), "wire")
	sp.End(sim.FromNanos(400))
	if r.OpenSpans() != 0 {
		t.Fatalf("OpenSpans after End = %d, want 0", r.OpenSpans())
	}
	if r.Span(key) != nil {
		t.Fatal("Span lookup after End should be nil")
	}
	if got := r.Histogram("span.rvma.put/host_post").Mean(); got != 50 {
		t.Fatalf("host_post mean = %v ns, want 50", got)
	}
	if got := r.Histogram("span.rvma.put/wire").Mean(); got != 250 {
		t.Fatalf("wire mean = %v ns, want 250", got)
	}
	if got := r.Histogram("span.rvma.put/total").Mean(); got != 300 {
		t.Fatalf("total mean = %v ns, want 300", got)
	}

	var buf bytes.Buffer
	r.FprintSpans(&buf)
	out := buf.String()
	for _, want := range []string{"span.rvma.put/host_post", "span.rvma.put/total", "p50", "p99"} {
		if !strings.Contains(out, want) {
			t.Fatalf("FprintSpans output missing %q:\n%s", want, out)
		}
	}
}

func TestSpansDisabledByDefault(t *testing.T) {
	r := NewRegistry()
	if r.SpansEnabled() {
		t.Fatal("spans should be disabled by default")
	}
	if sp := r.BeginSpan(0, SpanKey{ID: 1}, "x", 0); sp != nil {
		t.Fatal("BeginSpan should return nil with spans disabled")
	}
}

func TestWriteJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("fabric.drops").Add(2)
	r.Gauge("nic.occupancy").Set(1.5)
	h := r.Histogram("lat")
	h.Observe(10)
	h.Observe(30)
	collected := false
	r.AddCollector(func() { collected = true; r.Gauge("sampled").Set(9) })

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, sim.FromNanos(500)); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !collected {
		t.Fatal("WriteJSON did not run collectors")
	}
	var snap struct {
		SimTimeNs  float64                                 `json:"sim_time_ns"`
		Counters   map[string]uint64                       `json:"counters"`
		Gauges     map[string]struct{ Value, Max float64 } `json:"gauges"`
		Histograms map[string]struct {
			Count    uint64
			Mean     float64
			P50, P99 float64
			Min, Max float64
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if snap.SimTimeNs != 500 {
		t.Fatalf("sim_time_ns = %v, want 500", snap.SimTimeNs)
	}
	if snap.Counters["fabric.drops"] != 2 {
		t.Fatalf("counters = %v, want fabric.drops=2", snap.Counters)
	}
	if snap.Gauges["sampled"].Value != 9 {
		t.Fatalf("sampled gauge = %v, want 9", snap.Gauges["sampled"])
	}
	lat := snap.Histograms["lat"]
	if lat.Count != 2 || lat.Mean != 20 || lat.Min != 10 || lat.Max != 30 {
		t.Fatalf("lat histogram = %+v", lat)
	}
}

func TestTimelinePerfetto(t *testing.T) {
	r := NewRegistry()
	r.EnableSpans()
	r.EnableTimeline(0)
	sp := r.BeginSpan(sim.FromMicros(1), SpanKey{Node: 0, ID: 1}, "rvma.put", 0)
	sp.Stage(sim.FromMicros(2), "host_post")
	sp.SetNode(1)
	sp.Stage(sim.FromMicros(5), "wire")
	sp.End(sim.FromMicros(5))
	r.Timeline().Counter(0, "queue_depth", sim.FromMicros(3), 4)
	r.Timeline().Instant(1, "fabric", "drop", sim.FromMicros(4))

	var buf bytes.Buffer
	if err := r.Timeline().WritePerfetto(&buf); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var f struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("perfetto output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("traceEvents is empty")
	}
	var slices, meta, counters, instants int
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "X":
			slices++
			if ev.Name == "host_post" {
				if ev.TS != 1 || ev.Dur != 1 || ev.PID != 0 {
					t.Fatalf("host_post slice = %+v, want ts=1 dur=1 pid=0", ev)
				}
			}
			if ev.Name == "wire" && ev.PID != 1 {
				t.Fatalf("wire slice pid = %d, want 1 (after SetNode)", ev.PID)
			}
		case "M":
			meta++
		case "C":
			counters++
		case "i":
			instants++
		}
	}
	if slices != 2 || counters != 1 || instants != 1 || meta == 0 {
		t.Fatalf("event mix: slices=%d meta=%d counters=%d instants=%d", slices, meta, counters, instants)
	}
}

func TestTimelineCapDrops(t *testing.T) {
	r := NewRegistry()
	r.EnableTimeline(3)
	tl := r.Timeline()
	for i := 0; i < 10; i++ {
		tl.Counter(0, "x", sim.Time(i), float64(i))
	}
	rec, dropped := tl.Events()
	if rec != 3 {
		t.Fatalf("recorded = %d, want cap of 3", rec)
	}
	if dropped != 7 {
		t.Fatalf("dropped = %d, want 7", dropped)
	}
}

// TestWriteJSONSortedStable pins the exporter's byte-stability contract:
// keys appear in ascending order regardless of insertion order, and two
// writes of the same registry produce identical bytes. The same-seed
// determinism test in internal/harness compares snapshots verbatim, so
// this ordering is load-bearing, not cosmetic.
func TestWriteJSONSortedStable(t *testing.T) {
	r := NewRegistry()
	// Scrambled insertion order on purpose.
	r.Counter("zeta").Add(1)
	r.Counter("alpha").Add(2)
	r.Counter("mid").Add(3)
	r.Gauge("z.g").Set(1)
	r.Gauge("a.g").Set(2)
	r.Histogram("z.h").Observe(5)
	r.Histogram("a.h").Observe(7)

	var first, second bytes.Buffer
	if err := r.WriteJSON(&first, sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&second, sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("two snapshots of the same registry differ")
	}

	out := first.String()
	for _, ordered := range [][2]string{
		{`"alpha"`, `"mid"`}, {`"mid"`, `"zeta"`},
		{`"a.g"`, `"z.g"`}, {`"a.h"`, `"z.h"`},
	} {
		if strings.Index(out, ordered[0]) >= strings.Index(out, ordered[1]) {
			t.Errorf("%s should appear before %s in snapshot:\n%s", ordered[0], ordered[1], out)
		}
	}

	// The export must remain parseable JSON with the documented sections.
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(first.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	for _, key := range []string{"sim_time_ns", "counters", "gauges", "histograms", "spans_open"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("snapshot missing %q section", key)
		}
	}
}

// TestHistogramSnapshotRoundTrip observes a known distribution — including
// a sample past the overflow bucket's lower bound — exports a JSON
// snapshot, parses it back, and checks every exported field against the
// live histogram, with Quantile(0)/Quantile(1) pinned to exact min/max.
func TestHistogramSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("rt")
	samples := []float64{0.25, 3, 70, 900, overflowBound * 4}
	sum := 0.0
	for _, v := range samples {
		h.Observe(v)
		sum += v
	}
	if got := h.Quantile(0); got != 0.25 {
		t.Fatalf("Quantile(0) = %v, want exact min 0.25", got)
	}
	if got := h.Quantile(1); got != overflowBound*4 {
		t.Fatalf("Quantile(1) = %v, want exact max %v", got, overflowBound*4)
	}
	if h.buckets[histBuckets-1] != 1 {
		t.Fatalf("overflow bucket count = %d, want 1", h.buckets[histBuckets-1])
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, 7*sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Histograms map[string]struct {
			Count uint64  `json:"count"`
			Mean  float64 `json:"mean"`
			P50   float64 `json:"p50"`
			P90   float64 `json:"p90"`
			P99   float64 `json:"p99"`
			Min   float64 `json:"min"`
			Max   float64 `json:"max"`
			Sum   float64 `json:"sum"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	got, ok := snap.Histograms["rt"]
	if !ok {
		t.Fatalf("snapshot missing histogram %q:\n%s", "rt", buf.String())
	}
	if got.Count != uint64(len(samples)) {
		t.Errorf("count = %d, want %d", got.Count, len(samples))
	}
	if got.Min != 0.25 || got.Max != overflowBound*4 {
		t.Errorf("min/max = %v/%v, want 0.25/%v", got.Min, got.Max, overflowBound*4)
	}
	if got.Sum != sum {
		t.Errorf("sum = %v, want %v", got.Sum, sum)
	}
	if math.Abs(got.Mean-sum/float64(len(samples))) > 1e-9 {
		t.Errorf("mean = %v, want %v", got.Mean, sum/float64(len(samples)))
	}
	if got.P50 != h.Quantile(0.50) || got.P90 != h.Quantile(0.90) || got.P99 != h.Quantile(0.99) {
		t.Errorf("exported quantiles %v/%v/%v differ from live %v/%v/%v",
			got.P50, got.P90, got.P99,
			h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99))
	}
	// Overflow-bucket quantile queries must stay inside the observed range
	// even though the bucket itself is unbounded above.
	if got.P99 < 0.25 || got.P99 > overflowBound*4 {
		t.Errorf("p99 = %v escapes observed range [0.25, %v]", got.P99, overflowBound*4)
	}
}

// TestPerfettoZeroSpans asserts a run that recorded nothing still exports
// a valid trace: "traceEvents" must be an empty array, never null —
// ui.perfetto.dev rejects a null array.
func TestPerfettoZeroSpans(t *testing.T) {
	r := NewRegistry()
	r.EnableSpans()
	r.EnableTimeline(16)
	var buf bytes.Buffer
	if err := r.Timeline().WritePerfetto(&buf); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Fatalf("zero-span trace should serialize traceEvents as [], got:\n%s", buf.String())
	}
	var f struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("zero-span trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if f.TraceEvents == nil {
		t.Fatal("traceEvents unmarshals to nil, want empty array")
	}
	if len(f.TraceEvents) != 0 {
		t.Fatalf("traceEvents has %d records, want 0", len(f.TraceEvents))
	}
}

// TestPerfettoOnlySuppressed asserts a run whose every event was dropped
// at the cap exports the same valid empty-array trace, with the drops
// accounted in otherData.
func TestPerfettoOnlySuppressed(t *testing.T) {
	tl := &Timeline{cap: 0, tids: make(map[tidKey]int), nextTID: 1}
	tl.Slice(3, "rvma.put", "wire", sim.Microsecond, sim.Microsecond)
	tl.Instant(3, "rvma.put", "nack", 2*sim.Microsecond)
	tl.Counter(3, "queue", 3*sim.Microsecond, 7)
	if rec, drop := tl.Events(); rec != 0 || drop != 3 {
		t.Fatalf("recorded/dropped = %d/%d, want 0/3", rec, drop)
	}
	var buf bytes.Buffer
	if err := tl.WritePerfetto(&buf); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var f struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
		OtherData   struct {
			Dropped uint64 `json:"dropped_events"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("only-suppressed trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if f.TraceEvents == nil || len(f.TraceEvents) != 0 {
		t.Fatalf("traceEvents = %v, want empty array", f.TraceEvents)
	}
	if f.OtherData.Dropped != 3 {
		t.Fatalf("dropped_events = %d, want 3", f.OtherData.Dropped)
	}
}
