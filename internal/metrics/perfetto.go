package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"rvma/internal/sim"
)

// Timeline accumulates Chrome trace-event records ("traceEvents" JSON, the
// format ui.perfetto.dev and chrome://tracing open) so one simulation run
// renders as a per-node timeline: each simulated node is a Perfetto
// process, each span scope a thread, each pipeline stage a slice, and
// sampled values (event-queue depth, delivered bytes) counter tracks.
//
// Simulated picosecond time maps to trace microseconds; sub-microsecond
// stages keep resolution because ts/dur are written as fractional µs.
type Timeline struct {
	events []traceEvent
	cap    int
	drops  uint64

	tids    map[tidKey]int
	nextTID int
}

type tidKey struct {
	pid   int
	track string
}

// traceEvent is one Chrome trace-event record. Only the fields the
// timeline emits are declared.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   uint64         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// EnableTimeline attaches a Perfetto timeline holding at most maxEvents
// records (excess events are counted as dropped, not recorded). Zero or
// negative maxEvents selects the default of 1<<20.
func (r *Registry) EnableTimeline(maxEvents int) {
	if r == nil {
		return
	}
	if maxEvents <= 0 {
		maxEvents = 1 << 20
	}
	r.timeline = &Timeline{cap: maxEvents, tids: make(map[tidKey]int), nextTID: 1}
}

// Timeline returns the attached timeline (nil when disabled or when the
// registry itself is nil).
func (r *Registry) Timeline() *Timeline {
	if r == nil {
		return nil
	}
	return r.timeline
}

// tid returns the stable thread id for a (pid, track) pair, emitting the
// thread_name metadata record on first use.
func (t *Timeline) tid(pid int, track string) int {
	k := tidKey{pid: pid, track: track}
	if id, ok := t.tids[k]; ok {
		return id
	}
	id := t.nextTID
	t.nextTID++
	t.tids[k] = id
	t.events = append(t.events, traceEvent{
		Name: "thread_name", Ph: "M", PID: pid, TID: id,
		Args: map[string]any{"name": track},
	})
	t.events = append(t.events, traceEvent{
		Name: "process_name", Ph: "M", PID: pid, TID: id,
		Args: map[string]any{"name": fmt.Sprintf("node %d", pid)},
	})
	return id
}

// slice emits one complete ("X") event of duration d starting at from on
// the node's track for the given scope. Nil-safe: a registry without a
// timeline reaches here with t == nil.
func (t *Timeline) slice(node int, scope, name string, from sim.Time, d sim.Time) {
	if t == nil {
		return
	}
	if len(t.events) >= t.cap {
		t.drops++
		return
	}
	t.events = append(t.events, traceEvent{
		Name: name, Cat: scope, Ph: "X",
		TS: from.Microseconds(), Dur: d.Microseconds(),
		PID: node, TID: t.tid(node, scope),
	})
}

// Slice records an explicit complete event; components use it for
// activity that is not part of a message span (e.g. NIC pipeline busy
// periods, fence waits).
func (t *Timeline) Slice(node int, scope, name string, from, d sim.Time) {
	t.slice(node, scope, name, from, d)
}

// Instant records a zero-duration instant ("i") event — drops, NACKs,
// detours.
func (t *Timeline) Instant(node int, scope, name string, at sim.Time) {
	if t == nil {
		return
	}
	if len(t.events) >= t.cap {
		t.drops++
		return
	}
	t.events = append(t.events, traceEvent{
		Name: name, Cat: scope, Ph: "i",
		TS:  at.Microseconds(),
		PID: node, TID: t.tid(node, scope),
		Args: map[string]any{"s": "t"}, // thread-scoped instant
	})
}

// FlowBegin starts a flow ("s") event: an arrow Perfetto draws from the
// enclosing slice at the given time to the matching FlowEnd. The retry
// chain of a retransmitted operation uses one flow per attempt, with an id
// derived deterministically from the span key.
func (t *Timeline) FlowBegin(node int, scope, name string, id uint64, at sim.Time) {
	t.flow(node, scope, name, "s", "", id, at)
}

// FlowEnd terminates a flow ("f" with bp="e"): the arrow lands on the
// slice enclosing the given time.
func (t *Timeline) FlowEnd(node int, scope, name string, id uint64, at sim.Time) {
	t.flow(node, scope, name, "f", "e", id, at)
}

func (t *Timeline) flow(node int, scope, name, ph, bp string, id uint64, at sim.Time) {
	if t == nil {
		return
	}
	if len(t.events) >= t.cap {
		t.drops++
		return
	}
	t.events = append(t.events, traceEvent{
		Name: name, Cat: scope, Ph: ph,
		TS:  at.Microseconds(),
		PID: node, TID: t.tid(node, scope),
		ID: id, BP: bp,
	})
}

// Counter records a counter ("C") sample, rendered by Perfetto as a
// stacked-area counter track on the node's process.
func (t *Timeline) Counter(node int, name string, at sim.Time, value float64) {
	if t == nil {
		return
	}
	if len(t.events) >= t.cap {
		t.drops++
		return
	}
	t.events = append(t.events, traceEvent{
		Name: name, Ph: "C",
		TS:  at.Microseconds(),
		PID: node, TID: 0,
		Args: map[string]any{"value": value},
	})
}

// Events returns the number of recorded events and how many were dropped
// at the cap.
func (t *Timeline) Events() (recorded int, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	return len(t.events), t.drops
}

// perfettoFile is the JSON object trace format: a traceEvents array plus
// free-form metadata.
type perfettoFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WritePerfetto writes the timeline as Chrome trace-event JSON, sorted by
// timestamp (metadata first) as the JSON object-format spec recommends.
func (t *Timeline) WritePerfetto(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("metrics: no timeline enabled")
	}
	evs := make([]traceEvent, len(t.events))
	copy(evs, t.events)
	sort.SliceStable(evs, func(i, j int) bool {
		mi, mj := evs[i].Ph == "M", evs[j].Ph == "M"
		if mi != mj {
			return mi
		}
		return evs[i].TS < evs[j].TS
	})
	f := perfettoFile{
		TraceEvents:     evs,
		DisplayTimeUnit: "ns",
		OtherData: map[string]any{
			"source":         "rvmasim",
			"dropped_events": t.drops,
		},
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
