// Package metrics provides the typed observability registry for simulation
// runs: named counters, gauges and log-bucketed latency histograms, a span
// layer that follows each message through its pipeline stages, and two
// exporters — a JSON snapshot and a Chrome/Perfetto trace-event timeline.
//
// The registry complements package trace: trace holds the bounded event
// log and time series a human reads after one run; metrics holds the
// distributions (p50/p90/p99/max) the experiment harness needs to explain
// *why* a motif run is slow rather than just *that* it is.
//
// Every hook in the models follows the nil-receiver convention: methods on
// a nil *Registry, *Counter, *Gauge, *Histogram or *Span are no-ops, so a
// component with no registry attached pays exactly one nil check on the
// hot path. The simulation is single-goroutine (all model code runs on the
// engine), so the registry needs no locking.
package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"rvma/internal/sim"
)

// Registry collects metrics for one simulation (typically one experiment
// cell: a motif x transport x network point).
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	// collectors are sampling callbacks (link utilization, queue depths)
	// run by Collect before a snapshot is exported.
	collectors []func()

	spans        map[SpanKey]*Span
	spansEnabled bool
	spansOpened  uint64
	spansClosed  uint64
	spanObs      SpanObserver

	timeline *Timeline
}

// NewRegistry returns an empty registry with spans and timeline disabled.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		spans:    make(map[SpanKey]*Span),
	}
}

// Counter returns (creating if needed) the named monotonic counter.
// A nil registry returns a nil *Counter, whose methods are no-ops.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// AddCollector registers a sampling callback run by Collect. Components
// use collectors for state that is cheap to read on demand but expensive
// to track per event (resource utilization, queue depths).
func (r *Registry) AddCollector(fn func()) {
	if r == nil {
		return
	}
	r.collectors = append(r.collectors, fn)
}

// Collect runs every registered collector, refreshing sampled gauges.
func (r *Registry) Collect() {
	if r == nil {
		return
	}
	for _, fn := range r.collectors {
		fn()
	}
}

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v uint64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.v += delta
}

// Value returns the counter's current value.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time float64 metric that also tracks its maximum.
type Gauge struct {
	v   float64
	max float64
	set bool
}

// Set records the gauge's current value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
	if !g.set || v > g.max {
		g.max = v
	}
	g.set = true
}

// Add adjusts the gauge by delta (occupancy-style up/down tracking).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	g.Set(g.v + delta)
}

// Value returns the gauge's current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Max returns the largest value the gauge has held.
func (g *Gauge) Max() float64 {
	if g == nil {
		return 0
	}
	return g.max
}

// histBuckets is the bucket count: bucket 0 holds values < 1, buckets
// 1..histBuckets-2 hold [2^(i-1), 2^i), and the last bucket is the
// overflow for everything >= 2^(histBuckets-3).
const histBuckets = 44

// overflowBound is the lower bound of the overflow bucket. With values in
// nanoseconds this is ~2^42 ns (about 73 simulated minutes) — far beyond
// any latency in this repository, so the overflow bucket only fills when a
// caller records something pathological (which the tests exercise).
const overflowBound = float64(1 << (histBuckets - 3))

// Histogram is a log-bucketed distribution with exact count/sum/min/max.
// Latency histograms record nanoseconds; depth histograms record counts.
//
// Durations recorded via ObserveTime accumulate in sumPS, an integer
// picosecond sum, rather than the float sum: integer addition is
// associative, so the total — and every snapshot value derived from it —
// is identical no matter how samples were partitioned across shards and
// merged back. Observe keeps the float sum for dimensionless samples
// (hop counts, depths), which are whole numbers in practice and therefore
// also order-exact.
type Histogram struct {
	count   uint64
	sum     float64
	sumPS   int64
	min     float64
	max     float64
	buckets [histBuckets]uint64
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[bucketIndex(v)]++
}

// ObserveTime records a simulated duration in nanoseconds. The duration
// accumulates into the integer picosecond sum (see the type comment), so
// time totals survive any merge order exactly.
func (h *Histogram) ObserveTime(d sim.Time) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	v := d.Nanoseconds()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sumPS += int64(d)
	h.buckets[bucketIndex(v)]++
}

// total returns the combined sample sum in nanoseconds (float samples plus
// the integer picosecond accumulator).
func (h *Histogram) total() float64 { return h.sum + float64(h.sumPS)/1000 }

// Merge folds every sample of o into h. Buckets, counts and sums add;
// min/max widen. The harness merges per-worker-cell histograms in a fixed
// canonical order, so merged sums (floating point, order-sensitive) are
// byte-identical at any worker count; duration sums are integer
// picoseconds and exact in any order.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	h.sumPS += o.sumPS
	for i := range o.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// bucketIndex maps a sample to its bucket. Log2 of a value one ulp below
// an exact power of two can round up to the integer exponent (the log's
// relative error exceeds the float spacing once the exponent is large
// enough), which would file the sample one bucket high — a bucket whose
// lower bound exceeds the sample. Quantile interpolation assumes every
// sample lies inside its bucket's bounds, so the index is pinned back to
// the covering bucket before use.
func bucketIndex(v float64) int {
	if v < 1 {
		return 0
	}
	if v >= overflowBound {
		return histBuckets - 1
	}
	i := 1 + int(math.Floor(math.Log2(v)))
	if i >= histBuckets-1 {
		i = histBuckets - 2
	}
	if lo, _ := bucketBounds(i); v < lo {
		i--
	} else if _, hi := bucketBounds(i); v >= hi && i < histBuckets-2 {
		i++
	}
	return i
}

// bucketBounds returns the value range bucket i covers.
func bucketBounds(i int) (lo, hi float64) {
	switch {
	case i == 0:
		return 0, 1
	case i >= histBuckets-1:
		return overflowBound, overflowBound
	default:
		return math.Exp2(float64(i - 1)), math.Exp2(float64(i))
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Mean returns the arithmetic mean of the samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.total() / float64(h.count)
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() float64 {
	if h == nil {
		return 0
	}
	return h.min
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Quantile returns the q-th quantile (0..1) estimated by linear
// interpolation within the matching log bucket, clamped to the observed
// min/max so single-sample and overflow-bucket queries stay exact.
// An empty histogram returns 0.
//
// Monotonicity contract: Quantile(q1) <= Quantile(q2) for q1 < q2. Every
// bucket's interpolation interval is clamped into [min, max], which keeps
// the per-bucket intervals ordered (bucket bounds are ordered and the
// clamp is monotone), and interpolation within a bucket is increasing in
// the rank — so a higher quantile can never resolve to a smaller value,
// even when the tail bucket holds a single sample far below its upper
// bound (the p99.9-on-sparse-tail case).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := q * float64(h.count)
	cum := 0.0
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum >= rank {
			lo, hi := bucketBounds(i)
			if lo < h.min {
				lo = h.min
			}
			if hi > h.max || i == histBuckets-1 {
				hi = h.max
			}
			if hi < lo {
				hi = lo
			}
			frac := (rank - prev) / float64(c)
			v := lo + (hi-lo)*frac
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// snapshot is the JSON export shape. The name-keyed sections are
// pre-marshaled with explicitly sorted keys: snapshot bytes are compared
// verbatim by the same-seed determinism regression test, so stable
// ordering is a guarantee of this exporter, not an accident of how
// encoding/json happens to serialize maps.
type snapshot struct {
	SimTimeNs  float64         `json:"sim_time_ns"`
	Counters   json.RawMessage `json:"counters"`
	Gauges     json.RawMessage `json:"gauges"`
	Histograms json.RawMessage `json:"histograms"`
	SpansOpen  uint64          `json:"spans_open"`
}

// sortedObject marshals m as a JSON object with its keys in ascending
// order.
func sortedObject[V any](m map[string]V) (json.RawMessage, error) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			buf.WriteByte(',')
		}
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		buf.Write(kb)
		buf.WriteByte(':')
		vb, err := json.Marshal(m[k])
		if err != nil {
			return nil, err
		}
		buf.Write(vb)
	}
	buf.WriteByte('}')
	return buf.Bytes(), nil
}

type gaugeJSON struct {
	Value float64 `json:"value"`
	Max   float64 `json:"max"`
}

type histogramJSON struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
}

// WriteJSON runs the collectors and writes the full registry state as one
// indented JSON object. now is the simulated time of the snapshot.
func (r *Registry) WriteJSON(w io.Writer, now sim.Time) error {
	if r == nil {
		return fmt.Errorf("metrics: nil registry")
	}
	r.Collect()
	counters := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]gaugeJSON, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = gaugeJSON{Value: g.Value(), Max: g.Max()}
	}
	hists := make(map[string]histogramJSON, len(r.hists))
	for name, h := range r.hists {
		hists[name] = histogramJSON{
			Count: h.Count(), Mean: h.Mean(),
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
			P999: h.Quantile(0.999),
			Min:  h.Min(), Max: h.Max(), Sum: h.total(),
		}
	}
	s := snapshot{
		SimTimeNs: now.Nanoseconds(),
		SpansOpen: r.spansOpened - r.spansClosed,
	}
	var err error
	if s.Counters, err = sortedObject(counters); err != nil {
		return err
	}
	if s.Gauges, err = sortedObject(gauges); err != nil {
		return err
	}
	if s.Histograms, err = sortedObject(hists); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// MergeFrom folds every counter, histogram and gauge of o into r. The
// sharded harness gives each shard its own registry (single-writer during
// the run) and folds them into the primary in shard order afterwards;
// with integer counter/picosecond sums and commutative min/max widening,
// the merged registry is byte-identical at any shard count. Span state is
// not merged — spans are disabled on sharded runs.
func (r *Registry) MergeFrom(o *Registry) {
	if r == nil || o == nil {
		return
	}
	for name, c := range o.counters {
		r.Counter(name).Add(c.Value())
	}
	for name, h := range o.hists {
		r.Histogram(name).Merge(h)
	}
	for name, g := range o.gauges {
		if !g.set {
			continue
		}
		dst := r.Gauge(name)
		dst.Set(g.v)
		if g.max > dst.max {
			dst.max = g.max
		}
	}
}

// HistogramNames returns the sorted names of all histograms with samples.
func (r *Registry) HistogramNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.hists))
	for n, h := range r.hists {
		if h.count > 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// FprintHistograms writes a human-readable latency table of every
// histogram whose name starts with prefix: count, mean, p50, p99, p99.9
// and max, formatted as durations (histogram values are nanoseconds).
func (r *Registry) FprintHistograms(w io.Writer, prefix string) {
	if r == nil {
		return
	}
	names := r.HistogramNames()
	rows := 0
	for _, n := range names {
		if len(n) >= len(prefix) && n[:len(prefix)] == prefix {
			rows++
		}
	}
	if rows == 0 {
		return
	}
	fmt.Fprintf(w, "%-36s %9s %12s %12s %12s %12s %12s\n",
		"stage", "count", "mean", "p50", "p99", "p99.9", "max")
	for _, n := range names {
		if len(n) < len(prefix) || n[:len(prefix)] != prefix {
			continue
		}
		h := r.hists[n]
		fmt.Fprintf(w, "%-36s %9d %12s %12s %12s %12s %12s\n",
			n, h.Count(),
			fmtNanos(h.Mean()), fmtNanos(h.Quantile(0.5)),
			fmtNanos(h.Quantile(0.99)), fmtNanos(h.Quantile(0.999)),
			fmtNanos(h.Max()))
	}
}

// fmtNanos renders a nanosecond value as a human-scale duration.
func fmtNanos(ns float64) string {
	return sim.FromNanos(ns).String()
}
