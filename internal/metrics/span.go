package metrics

import (
	"fmt"
	"io"

	"rvma/internal/sim"
)

// SpanKey identifies an in-flight message span across endpoints: the
// initiating node plus the initiator's message id. All endpoints of one
// cluster share one registry, so the target side of a transfer finds the
// span its initiator opened.
type SpanKey struct {
	Node int
	ID   uint64
}

// SpanObserver receives every stage mark and span ending as it happens.
// The attribution engine (internal/attrib) implements it to decompose
// end-to-end latency without the registry having to know about it.
// Callbacks run synchronously on the engine goroutine in deterministic
// event order.
type SpanObserver interface {
	// SpanStage reports one closed stage: it covered [from, from+dur) on
	// the given node's track, during the given wire attempt (0 = first
	// transmission), of which wait was spent queued rather than serviced
	// (0 <= wait <= dur).
	SpanStage(key SpanKey, scope, stage string, node, attempt int, from, dur, wait sim.Time)
	// SpanEnd reports the span's ending: status is "completed", "nacked"
	// or "abandoned"; attempts is the total number of wire attempts.
	SpanEnd(key SpanKey, scope, status string, attempts, node int, start, end sim.Time)
}

// SetSpanObserver attaches obs to the registry; every subsequent stage
// mark and span ending is forwarded to it. A nil obs detaches.
func (r *Registry) SetSpanObserver(obs SpanObserver) {
	if r == nil {
		return
	}
	r.spanObs = obs
}

// Span follows one message through its pipeline stages. Each stage mark
// closes the stage that began at the previous mark, feeding the per-stage
// latency histogram "span.<scope>/<stage>" and (when the timeline is
// enabled) emitting one Perfetto slice on the node's track. End closes the
// span and records "span.<scope>/total".
//
// Stages for the two transports:
//
//	rvma.put: host_post -> nic_tx -> wire -> place -> complete
//	rdma.put: host_post -> nic_tx -> wire [-> fence_hold at the target]
//
// plus the standalone rdma.handshake and rdma.registration spans for the
// setup path RVMA does not have.
//
// Retransmitted operations ride the same span: NextAttempt closes the gap
// since the last mark as an all-wait "retry_wait" stage and increments the
// attempt tag carried by subsequent stage marks. Spans end exactly once —
// End, EndNacked and EndAbandoned set a terminal flag and every later
// mutation is a no-op, so a straggler completion racing an abandon (or a
// duplicate ack after a retransmit) cannot corrupt or double-count a span.
type Span struct {
	reg     *Registry
	key     SpanKey
	scope   string
	node    int // node whose track current stages render on
	start   sim.Time
	last    sim.Time
	attempt int
	ended   bool
}

// EnableSpans turns on span tracking. With spans disabled BeginSpan
// returns nil, so the per-message map traffic is only paid when asked for.
func (r *Registry) EnableSpans() {
	if r == nil {
		return
	}
	r.spansEnabled = true
}

// SpansEnabled reports whether BeginSpan records anything.
func (r *Registry) SpansEnabled() bool { return r != nil && r.spansEnabled }

// BeginSpan opens a span for the message identified by key at time now.
// scope names the histogram family (e.g. "rvma.put"); node is the
// initiating node (the Perfetto track the first stages render on).
// Returns nil when the registry is nil or spans are disabled.
func (r *Registry) BeginSpan(now sim.Time, key SpanKey, scope string, node int) *Span {
	if r == nil || !r.spansEnabled {
		return nil
	}
	sp := &Span{reg: r, key: key, scope: scope, node: node, start: now, last: now}
	r.spans[key] = sp
	r.spansOpened++
	return sp
}

// Span returns the open span for key, or nil if none (spans disabled, or
// the message was never opened / already ended).
func (r *Registry) Span(key SpanKey) *Span {
	if r == nil || !r.spansEnabled {
		return nil
	}
	return r.spans[key]
}

// OpenSpans returns the number of spans begun but not yet ended.
func (r *Registry) OpenSpans() uint64 {
	if r == nil {
		return 0
	}
	return r.spansOpened - r.spansClosed
}

// Stage closes the stage that began at the previous mark, recording its
// latency under "span.<scope>/<stage>". The whole stage counts as service
// time; use StageWait or StageService when part of it was queueing.
func (sp *Span) Stage(now sim.Time, stage string) {
	sp.mark(now, stage, 0)
}

// StageWait closes the stage like Stage, additionally attributing wait of
// its duration to queueing (clamped to [0, stage duration]). The remainder
// is service time.
func (sp *Span) StageWait(now sim.Time, stage string, wait sim.Time) {
	sp.mark(now, stage, wait)
}

// StageService closes the stage like Stage, attributing service of its
// duration to useful work; the remainder (clamped to >= 0) is wait. Used
// when the service time is the directly measurable part — e.g. the
// completion-pointer write — and the wait is everything that delayed it.
func (sp *Span) StageService(now sim.Time, stage string, service sim.Time) {
	if sp == nil || sp.ended {
		return
	}
	sp.mark(now, stage, now-sp.last-service)
}

// mark closes the stage begun at the previous mark. wait is clamped to
// [0, dur]; the observer sees the clamped value, so per-stage wait+service
// always telescopes exactly to the stage duration.
func (sp *Span) mark(now sim.Time, stage string, wait sim.Time) {
	if sp == nil || sp.ended {
		return
	}
	d := now - sp.last
	if wait < 0 {
		wait = 0
	}
	if wait > d {
		wait = d
	}
	sp.reg.Histogram("span." + sp.scope + "/" + stage).ObserveTime(d)
	name := stage
	if sp.attempt > 0 {
		name = fmt.Sprintf("%s#%d", stage, sp.attempt)
	}
	sp.reg.timeline.slice(sp.node, sp.scope, name, sp.last, d)
	if sp.reg.spanObs != nil {
		sp.reg.spanObs.SpanStage(sp.key, sp.scope, stage, sp.node, sp.attempt, sp.last, d, wait)
	}
	sp.last = now
}

// NextAttempt records that the operation is being retransmitted: the gap
// since the last mark becomes an all-wait "retry_wait" stage (timeout arm
// time, NACK backoff), a Perfetto flow event chains the attempts on the
// trace, and subsequent stage marks carry the incremented attempt tag.
func (sp *Span) NextAttempt(now sim.Time) {
	if sp == nil || sp.ended {
		return
	}
	flowFrom := sp.last
	sp.mark(now, "retry_wait", now-sp.last)
	sp.attempt++
	id := flowID(sp.key, sp.attempt)
	sp.reg.timeline.FlowBegin(sp.node, sp.scope, "retry", id, flowFrom)
	sp.reg.timeline.FlowEnd(sp.node, sp.scope, "retry", id, now)
}

// Attempt returns the current wire attempt (0 = first transmission).
func (sp *Span) Attempt() int {
	if sp == nil {
		return 0
	}
	return sp.attempt
}

// flowID derives a deterministic Perfetto flow-event id from the span key
// and attempt number.
func flowID(key SpanKey, attempt int) uint64 {
	return uint64(key.Node)<<48 ^ key.ID<<8 ^ uint64(attempt)&0xff
}

// SetNode moves the span onto another node's Perfetto track — called when
// a message crosses from initiator to target.
func (sp *Span) SetNode(node int) {
	if sp == nil || sp.ended {
		return
	}
	sp.node = node
}

// End closes the span as completed: records "span.<scope>/total" from the
// span's start and removes it from the in-flight table. Calling a stage
// mark first to close the final stage is the caller's job.
func (sp *Span) End(now sim.Time) {
	sp.endWith(now, "completed")
}

// EndNacked closes the span as rejected by the target: the interval since
// the last mark becomes an all-wait "nack" stage and the span ends with
// status "nacked".
func (sp *Span) EndNacked(now sim.Time) {
	if sp == nil || sp.ended {
		return
	}
	sp.mark(now, "nack", now-sp.last)
	sp.endWith(now, "nacked")
}

// EndAbandoned closes the span of an operation the recovery layer gave up
// on: the interval since the last mark becomes an all-wait "abandon" stage
// and the span ends with status "abandoned" instead of leaking open.
func (sp *Span) EndAbandoned(now sim.Time) {
	if sp == nil || sp.ended {
		return
	}
	sp.mark(now, "abandon", now-sp.last)
	sp.endWith(now, "abandoned")
}

// endWith terminally closes the span. Every ending path must leave
// sp.last == now (the last stage mark closes at the ending time), which is
// exactly the stage-conservation invariant: per-stage durations telescope
// to end - start.
func (sp *Span) endWith(now sim.Time, status string) {
	if sp == nil || sp.ended {
		return
	}
	if sim.DebugEnabled {
		sim.Assertf(now == sp.last,
			"span %s %d/%d ended with %s at %s but last stage mark was %s: unattributed tail",
			sp.scope, sp.key.Node, sp.key.ID, status, now, sp.last)
	}
	sp.ended = true
	sp.reg.Histogram("span." + sp.scope + "/total").ObserveTime(now - sp.start)
	if status != "completed" {
		sp.reg.Counter("span." + sp.scope + "/" + status).Add(1)
	}
	if sp.reg.spanObs != nil {
		sp.reg.spanObs.SpanEnd(sp.key, sp.scope, status, sp.attempt+1, sp.node, sp.start, now)
	}
	delete(sp.reg.spans, sp.key)
	sp.reg.spansClosed++
}

// FprintSpans writes the per-stage latency breakdown of every span
// histogram (names under "span.") as a table.
func (r *Registry) FprintSpans(w io.Writer) {
	r.FprintHistograms(w, "span.")
}
