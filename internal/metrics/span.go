package metrics

import (
	"io"

	"rvma/internal/sim"
)

// SpanKey identifies an in-flight message span across endpoints: the
// initiating node plus the initiator's message id. All endpoints of one
// cluster share one registry, so the target side of a transfer finds the
// span its initiator opened.
type SpanKey struct {
	Node int
	ID   uint64
}

// Span follows one message through its pipeline stages. Each Stage call
// closes the stage that began at the previous mark, feeding the per-stage
// latency histogram "span.<scope>/<stage>" and (when the timeline is
// enabled) emitting one Perfetto slice on the node's track. End closes the
// span and records "span.<scope>/total".
//
// Stages for the two transports:
//
//	rvma.put: host_post -> nic_tx -> wire -> place -> complete
//	rdma.put: host_post -> nic_tx -> wire [-> fence_hold at the target]
//
// plus the standalone rdma.handshake and rdma.registration spans for the
// setup path RVMA does not have.
type Span struct {
	reg   *Registry
	key   SpanKey
	scope string
	node  int // node whose track current stages render on
	start sim.Time
	last  sim.Time
}

// EnableSpans turns on span tracking. With spans disabled BeginSpan
// returns nil, so the per-message map traffic is only paid when asked for.
func (r *Registry) EnableSpans() {
	if r == nil {
		return
	}
	r.spansEnabled = true
}

// SpansEnabled reports whether BeginSpan records anything.
func (r *Registry) SpansEnabled() bool { return r != nil && r.spansEnabled }

// BeginSpan opens a span for the message identified by key at time now.
// scope names the histogram family (e.g. "rvma.put"); node is the
// initiating node (the Perfetto track the first stages render on).
// Returns nil when the registry is nil or spans are disabled.
func (r *Registry) BeginSpan(now sim.Time, key SpanKey, scope string, node int) *Span {
	if r == nil || !r.spansEnabled {
		return nil
	}
	sp := &Span{reg: r, key: key, scope: scope, node: node, start: now, last: now}
	r.spans[key] = sp
	r.spansOpened++
	return sp
}

// Span returns the open span for key, or nil if none (spans disabled, or
// the message was never opened / already ended).
func (r *Registry) Span(key SpanKey) *Span {
	if r == nil || !r.spansEnabled {
		return nil
	}
	return r.spans[key]
}

// OpenSpans returns the number of spans begun but not yet ended.
func (r *Registry) OpenSpans() uint64 {
	if r == nil {
		return 0
	}
	return r.spansOpened - r.spansClosed
}

// Stage closes the stage that began at the previous mark, recording its
// latency under "span.<scope>/<stage>".
func (sp *Span) Stage(now sim.Time, stage string) {
	if sp == nil {
		return
	}
	d := now - sp.last
	sp.reg.Histogram("span." + sp.scope + "/" + stage).ObserveTime(d)
	sp.reg.timeline.slice(sp.node, sp.scope, stage, sp.last, d)
	sp.last = now
}

// SetNode moves the span onto another node's Perfetto track — called when
// a message crosses from initiator to target.
func (sp *Span) SetNode(node int) {
	if sp == nil {
		return
	}
	sp.node = node
}

// End closes the span: records "span.<scope>/total" from the span's start
// and removes it from the in-flight table. Calling Stage first to close
// the final stage is the caller's job.
func (sp *Span) End(now sim.Time) {
	if sp == nil {
		return
	}
	sp.reg.Histogram("span." + sp.scope + "/total").ObserveTime(now - sp.start)
	delete(sp.reg.spans, sp.key)
	sp.reg.spansClosed++
}

// FprintSpans writes the per-stage latency breakdown of every span
// histogram (names under "span.") as a table.
func (r *Registry) FprintSpans(w io.Writer) {
	r.FprintHistograms(w, "span.")
}
