package rstream

import (
	"bytes"
	"fmt"
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/rvma"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

// cluster builds n endpoints over a static-routed single switch.
func cluster(t *testing.T, n int) (*sim.Engine, []*rvma.Endpoint) {
	t.Helper()
	eng := sim.NewEngine(17)
	fcfg := fabric.DefaultConfig()
	fcfg.Routing = fabric.RouteStatic
	net, err := fabric.New(eng, topology.NewSingleSwitch(n), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	prof := nic.DefaultProfile()
	eps := make([]*rvma.Endpoint, n)
	for i := range eps {
		eps[i] = rvma.NewEndpoint(nic.New(eng, net, i, pcie.Gen4x16(), prof), rvma.DefaultConfig())
	}
	return eng, eps
}

func TestDialAcceptEcho(t *testing.T) {
	eng, eps := cluster(t, 2)
	lis, err := Listen(eps[1], 80, Config{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("hello over receiver-managed rvma")
	var echoed []byte
	eng.Spawn("client", func(p *sim.Process) {
		f, err := Dial(eps[0], 1, 80, Config{SegmentBytes: 512})
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(f)
		conn, ok := f.Value().(*Conn)
		if !ok {
			t.Errorf("dial resolved with %v", f.Value())
			return
		}
		conn.Write(msg)
		rf, _ := conn.Read(len(msg))
		p.Wait(rf)
		echoed = rf.Value().([]byte)
	})
	eng.Spawn("server", func(p *sim.Process) {
		af := lis.Accept()
		p.Wait(af)
		conn := af.Value().(*Conn)
		rf, _ := conn.Read(len(msg))
		p.Wait(rf)
		conn.Write(rf.Value().([]byte))
	})
	eng.Run()
	if !bytes.Equal(echoed, msg) {
		t.Fatalf("echo = %q", echoed)
	}
}

func TestManyClientsOneListener(t *testing.T) {
	// The many-to-one scenario: one listener serves every client with no
	// per-client negotiated buffers.
	const clients = 8
	eng, eps := cluster(t, clients+1)
	lis, err := Listen(eps[clients], 443, Config{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	served := 0
	eng.Spawn("server", func(p *sim.Process) {
		for i := 0; i < clients; i++ {
			af := lis.Accept()
			p.Wait(af)
			conn := af.Value().(*Conn)
			rf, _ := conn.Read(8)
			p.Wait(rf)
			conn.Write(append([]byte("ok:"), rf.Value().([]byte)...))
			served++
		}
	})
	okCount := 0
	for c := 0; c < clients; c++ {
		c := c
		eng.Spawn(fmt.Sprintf("client%d", c), func(p *sim.Process) {
			f, err := Dial(eps[c], clients, 443, Config{SegmentBytes: 256})
			if err != nil {
				t.Error(err)
				return
			}
			p.Wait(f)
			conn := f.Value().(*Conn)
			req := []byte(fmt.Sprintf("req-%04d", c))
			conn.Write(req)
			rf, _ := conn.Read(11)
			p.Wait(rf)
			if bytes.Equal(rf.Value().([]byte), append([]byte("ok:"), req...)) {
				okCount++
			}
		})
	}
	eng.Run()
	if served != clients || okCount != clients {
		t.Fatalf("served %d, ok %d, want %d", served, okCount, clients)
	}
}

func TestDialRefusedAfterClose(t *testing.T) {
	eng, eps := cluster(t, 2)
	lis, err := Listen(eps[1], 8080, Config{})
	if err != nil {
		t.Fatal(err)
	}
	lis.Close()
	var result any
	eng.Spawn("client", func(p *sim.Process) {
		f, err := Dial(eps[0], 1, 8080, Config{})
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(f)
		result = f.Value()
	})
	eng.Run()
	if _, isErr := result.(error); !isErr {
		t.Fatalf("dial to closed listener resolved with %v, want error", result)
	}
}

func TestAcceptBeforeDial(t *testing.T) {
	eng, eps := cluster(t, 2)
	lis, err := Listen(eps[1], 9, Config{})
	if err != nil {
		t.Fatal(err)
	}
	accepted := false
	eng.Spawn("server", func(p *sim.Process) {
		af := lis.Accept() // blocks until a client arrives
		p.Wait(af)
		if _, ok := af.Value().(*Conn); ok {
			accepted = true
		}
	})
	eng.Spawn("client", func(p *sim.Process) {
		p.Sleep(10 * sim.Microsecond)
		f, _ := Dial(eps[0], 1, 9, Config{})
		p.Wait(f)
	})
	eng.Run()
	if !accepted {
		t.Fatal("accept posted before dial never resolved")
	}
}

func TestListenRequiresOrderedNetwork(t *testing.T) {
	eng := sim.NewEngine(1)
	fcfg := fabric.DefaultConfig()
	fcfg.Routing = fabric.RouteAdaptive
	net, _ := fabric.New(eng, topology.NewSingleSwitch(2), fcfg)
	ep := rvma.NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), nic.DefaultProfile()), rvma.DefaultConfig())
	if _, err := Listen(ep, 1, Config{}); err == nil {
		t.Fatal("listen on adaptive network should fail")
	}
	if _, err := Dial(ep, 1, 1, Config{}); err == nil {
		t.Fatal("dial on adaptive network should fail")
	}
}
