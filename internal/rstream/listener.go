package rstream

import (
	"encoding/binary"
	"fmt"

	"rvma/internal/rvma"
	"rvma/internal/sim"
)

// Connection establishment over bare mailboxes. A server Listens on a
// port — a well-known mailbox — and clients Dial it:
//
//  1. the client picks a globally unique connection id, opens its receive
//     window and an accept-notification window, and puts a 16-byte
//     connect request (client node, conn id) to the server's listen
//     mailbox;
//  2. the listener's completion handler opens the server-side receive
//     window and puts an 8-byte accept notification back;
//  3. the client's Dial future resolves when the notification window
//     completes.
//
// No physical addresses, registration keys, or per-client negotiated
// buffers appear anywhere — the many-to-one resource property the paper's
// abstract highlights. The listen mailbox itself is an ordinary RVMA
// window with an 16-byte threshold and a repost loop.

// mailbox-space layout for connection establishment.
const (
	listenBase rvma.VAddr = 0x11_0000_0000_0000
	acceptBase rvma.VAddr = 0x22_0000_0000_0000
)

// Listener accepts stream connections on a port.
type Listener struct {
	ep   *rvma.Endpoint
	port uint64
	cfg  Config
	win  *rvma.Window

	ready   []*Conn
	waiters []*sim.Future
	closed  bool
}

// Listen opens a listener on (ep's node, port).
func Listen(ep *rvma.Endpoint, port uint64, cfg Config) (*Listener, error) {
	if err := RequireOrdered(ep.NIC().Network().Config().Routing); err != nil {
		return nil, err
	}
	if cfg.SegmentBytes == 0 {
		cfg.SegmentBytes = 8 * 1024
	}
	if cfg.Depth == 0 {
		cfg.Depth = 4
	}
	win, err := ep.InitWindow(listenBase|rvma.VAddr(port), 16, rvma.EpochBytes)
	if err != nil {
		return nil, err
	}
	l := &Listener{ep: ep, port: port, cfg: cfg, win: win}
	for i := 0; i < 8; i++ {
		if _, err := win.PostBuffer(16); err != nil {
			return nil, err
		}
	}
	win.SetCompletionHandler(func(buf *rvma.Buffer) {
		if l.closed {
			return
		}
		if _, err := win.PostBuffer(16); err != nil {
			panic(err)
		}
		req := ep.Memory().Read(buf.Region.Base, 16)
		clientNode := int(binary.LittleEndian.Uint64(req[0:8]))
		connID := binary.LittleEndian.Uint64(req[8:16])
		l.handleConnect(clientNode, connID)
	})
	return l, nil
}

// handleConnect opens the server-side conn and notifies the client.
func (l *Listener) handleConnect(clientNode int, connID uint64) {
	serverConn, err := newConn(l.ep, clientNode,
		streamMbox(connID, false), // server sends on the b->a direction
		streamMbox(connID, true),  // and receives the a->b direction
		l.cfg)
	if err != nil {
		// Duplicate or exhausted id: drop the request; the client's Dial
		// never resolves, like an unanswered SYN.
		return
	}
	var ok [8]byte
	binary.LittleEndian.PutUint64(ok[:], connID)
	l.ep.Put(clientNode, acceptBase|rvma.VAddr(connID), 0, ok[:])

	if len(l.waiters) > 0 {
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		w.Complete(l.ep.Engine(), serverConn)
		return
	}
	l.ready = append(l.ready, serverConn)
}

// Accept resolves with the next established *Conn.
func (l *Listener) Accept() *sim.Future {
	f := sim.NewFuture()
	if l.closed {
		f.Complete(l.ep.Engine(), nil)
		return f
	}
	if len(l.ready) > 0 {
		c := l.ready[0]
		l.ready = l.ready[1:]
		f.Complete(l.ep.Engine(), c)
		return f
	}
	l.waiters = append(l.waiters, f)
	return f
}

// Close stops accepting; connect requests to the port are NACKed.
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	l.win.Close()
	for _, w := range l.waiters {
		if !w.Done() {
			w.Complete(l.ep.Engine(), nil)
		}
	}
	l.waiters = nil
}

// streamMbox derives the two per-connection stream mailboxes.
func streamMbox(connID uint64, clientToServer bool) rvma.VAddr {
	m := rvma.VAddr(0x57_0000_0000_0000) | rvma.VAddr(connID<<1)
	if !clientToServer {
		m |= 1
	}
	return m
}

// connIDs allocates unique connection ids per endpoint.
var connSeq uint64

// Dial connects ep to a listener at (serverNode, port). The returned
// future resolves with the client-side *Conn once the listener accepted.
// Both sides must use the same Config geometry.
func Dial(ep *rvma.Endpoint, serverNode int, port uint64, cfg Config) (*sim.Future, error) {
	if err := RequireOrdered(ep.NIC().Network().Config().Routing); err != nil {
		return nil, err
	}
	if cfg.SegmentBytes == 0 {
		cfg.SegmentBytes = 8 * 1024
	}
	if cfg.Depth == 0 {
		cfg.Depth = 4
	}
	connSeq++
	connID := uint64(ep.Node())<<24 | connSeq

	// Client side of the stream, receiving the server->client direction.
	clientConn, err := newConn(ep, serverNode,
		streamMbox(connID, true),
		streamMbox(connID, false),
		cfg)
	if err != nil {
		return nil, err
	}

	// Accept-notification window: one 8-byte completion.
	acceptWin, err := ep.InitWindow(acceptBase|rvma.VAddr(connID), 8, rvma.EpochBytes)
	if err != nil {
		return nil, err
	}
	if _, err := acceptWin.PostBuffer(8); err != nil {
		return nil, err
	}

	f := sim.NewFuture()
	eng := ep.Engine()
	acceptWin.NextCompletion().OnComplete(func() {
		acceptWin.Close()
		f.Complete(eng, clientConn)
	})

	var req [16]byte
	binary.LittleEndian.PutUint64(req[0:8], uint64(ep.Node()))
	binary.LittleEndian.PutUint64(req[8:16], connID)
	op := ep.Put(serverNode, listenBase|rvma.VAddr(port), 0, req[:])
	op.Nack.OnComplete(func() {
		if !f.Done() {
			f.Complete(eng, fmt.Errorf("rstream: connection refused by node %d port %d", serverNode, port))
		}
	})
	return f, nil
}
