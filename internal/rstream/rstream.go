// Package rstream provides byte-stream (sockets-like) communication over
// Receiver-Managed RVMA, the paper's §IV-B alternative mode: "It is
// possible to design a network that also counts received bytes and places
// incoming packets for a given buffer consecutively in memory. RVMA was
// designed to support this alternative mode to match the semantics of
// socket network interfaces. This allows RVMA to efficiently support
// sockets-based network code with very minimal middleware support".
//
// A Conn is one direction-pair of a connected stream. The receive side is
// a Managed-mode RVMA window whose NIC appends arriving bytes at the fill
// pointer; segments complete at the window's byte threshold, and a reader
// that needs data sooner claims the partial segment with IncEpoch — the
// exact use case §III-C gives for RVMA_Win_inc_epoch ("stream-like
// semantics where it is desirable to process all messages that have
// arrived so far").
//
// Managed placement preserves arrival order, so — like TCP over a single
// path — streams require an order-preserving network: connections refuse
// to open over adaptively routed fabrics. (Steered RVMA exists precisely
// to lift that restriction for record-oriented traffic.)
package rstream

import (
	"errors"
	"fmt"

	"rvma/internal/fabric"
	"rvma/internal/rvma"
	"rvma/internal/sim"
)

// Errors returned by the stream API.
var (
	ErrUnordered = errors.New("rstream: managed-mode streams require an order-preserving (static-routed) network")
	ErrClosed    = errors.New("rstream: connection closed")
)

// Config parameterizes a connection pair.
type Config struct {
	// SegmentBytes is the receive segment size: the Managed window's byte
	// threshold and buffer size. Defaults to 8 KiB.
	SegmentBytes int
	// Depth is how many receive segments stay posted. Defaults to 4.
	Depth int
}

// Conn is one endpoint of a bidirectional byte stream.
type Conn struct {
	ep   *rvma.Endpoint
	peer int
	cfg  Config

	sendMbox rvma.VAddr
	recvWin  *rvma.Window

	// Completed segments not yet fully consumed, in completion order.
	segments []segment
	buffered int
	waiters  []*waiter
	closed   bool
	polling  bool // a blocked reader's arrival poll is running
	claiming bool // an IncEpoch partial claim is in flight

	// Stats.
	BytesSent     uint64
	BytesConsumed uint64
	EarlyClaims   uint64 // IncEpoch partial-segment claims
}

type segment struct {
	data []byte
	pos  int
}

type waiter struct {
	n int
	f *sim.Future
}

// Pair connects two endpoints as a full-duplex stream, like a pair of
// connected sockets. The mailbox addresses derive from a connection id so
// multiple pairs can coexist.
func Pair(a, b *rvma.Endpoint, connID uint64, cfg Config) (*Conn, *Conn, error) {
	if a.Engine() != b.Engine() {
		return nil, nil, fmt.Errorf("rstream: endpoints on different engines")
	}
	if !a.NIC().Network().Config().Routing.Ordered() {
		return nil, nil, ErrUnordered
	}
	if !a.Config().CarryData || !b.Config().CarryData {
		return nil, nil, fmt.Errorf("rstream: endpoints must carry data")
	}
	if cfg.SegmentBytes == 0 {
		cfg.SegmentBytes = 8 * 1024
	}
	if cfg.Depth == 0 {
		cfg.Depth = 4
	}
	if cfg.SegmentBytes < 1 || cfg.Depth < 1 {
		return nil, nil, fmt.Errorf("rstream: invalid config %+v", cfg)
	}

	mboxAB := rvma.VAddr(0x57_0000_0000 | connID<<1)     // a -> b
	mboxBA := rvma.VAddr(0x57_0000_0000 | connID<<1 | 1) // b -> a

	ca, err := newConn(a, b.Node(), mboxAB, mboxBA, cfg)
	if err != nil {
		return nil, nil, err
	}
	cb, err := newConn(b, a.Node(), mboxBA, mboxAB, cfg)
	if err != nil {
		return nil, nil, err
	}
	return ca, cb, nil
}

// newConn opens the receive window (on recvMbox) and records the send
// mailbox.
func newConn(ep *rvma.Endpoint, peer int, sendMbox, recvMbox rvma.VAddr, cfg Config) (*Conn, error) {
	win, err := ep.InitWindowMode(recvMbox, int64(cfg.SegmentBytes), rvma.EpochBytes, rvma.Managed)
	if err != nil {
		return nil, err
	}
	c := &Conn{ep: ep, peer: peer, cfg: cfg, sendMbox: sendMbox, recvWin: win}
	for i := 0; i < cfg.Depth; i++ {
		if _, err := win.PostBuffer(cfg.SegmentBytes); err != nil {
			return nil, err
		}
	}
	win.SetCompletionHandler(func(buf *rvma.Buffer) {
		// Repost to hold depth, then bank the completed segment's bytes.
		c.claiming = false
		if !c.closed {
			if _, err := win.PostBuffer(cfg.SegmentBytes); err != nil {
				panic(err)
			}
		}
		_, length := buf.Cell.Get()
		if length == 0 {
			c.serveWaiters()
			return
		}
		data := c.ep.Memory().Read(buf.Region.Base, length)
		c.segments = append(c.segments, segment{data: data})
		c.buffered += length
		c.serveWaiters()
	})
	return c, nil
}

// Peer returns the remote node id.
func (c *Conn) Peer() int { return c.peer }

// Buffered returns the number of completed, unread bytes.
func (c *Conn) Buffered() int { return c.buffered }

// Write streams p to the peer. It is nonblocking: the returned future
// resolves at local send completion. Like a socket write, the byte stream
// has no message boundaries — the peer's reads see only bytes.
func (c *Conn) Write(p []byte) (*sim.Future, error) {
	if c.closed {
		return nil, ErrClosed
	}
	if len(p) == 0 {
		f := sim.NewFuture()
		f.Complete(c.ep.Engine(), nil)
		return f, nil
	}
	c.BytesSent += uint64(len(p))
	// Managed mode ignores offsets; send in segment-sized puts so no
	// single put can overrun a receive segment boundary... the NIC splits
	// across segments anyway, but bounding puts keeps each put's bytes in
	// at most two segments.
	var last *rvma.PutOp
	for off := 0; off < len(p); off += c.cfg.SegmentBytes {
		end := off + c.cfg.SegmentBytes
		if end > len(p) {
			end = len(p)
		}
		last = c.ep.Put(c.peer, c.sendMbox, 0, p[off:end])
	}
	return last.Local, nil
}

// Read returns a future resolving with exactly n bytes once they are
// available. If the stream has some bytes buffered in the NIC's partially
// filled segment but not enough completed, the reader claims the partial
// segment with IncEpoch (the §III-C stream-semantics path) rather than
// waiting for the threshold.
func (c *Conn) Read(n int) (*sim.Future, error) {
	if c.closed {
		return nil, ErrClosed
	}
	if n <= 0 {
		return nil, fmt.Errorf("rstream: read of %d bytes", n)
	}
	f := sim.NewFuture()
	if c.buffered >= n {
		f.Complete(c.ep.Engine(), c.take(n))
		return f, nil
	}
	c.waiters = append(c.waiters, &waiter{n: n, f: f})
	c.ensurePoll()
	return f, nil
}

// ensurePoll runs a host-side arrival poll while a reader is blocked: a
// blocking socket read spins (or sleeps on MWait) until enough bytes are
// in, claiming partial segments as they become useful.
func (c *Conn) ensurePoll() {
	if c.polling || len(c.waiters) == 0 || c.closed {
		return
	}
	c.polling = true
	interval := c.ep.NIC().Profile().PollInterval
	eng := c.ep.Engine()
	var tick func()
	tick = func() {
		if c.closed || len(c.waiters) == 0 {
			c.polling = false
			return
		}
		c.claimPartial()
		eng.Schedule(interval, tick)
	}
	eng.Schedule(interval, tick)
}

// take consumes n buffered bytes (caller guarantees availability).
func (c *Conn) take(n int) []byte {
	c.BytesConsumed += uint64(n)
	out := make([]byte, 0, n)
	for n > 0 {
		seg := &c.segments[0]
		take := len(seg.data) - seg.pos
		if take > n {
			take = n
		}
		out = append(out, seg.data[seg.pos:seg.pos+take]...)
		seg.pos += take
		n -= take
		c.buffered -= take
		if seg.pos == len(seg.data) {
			c.segments = c.segments[1:]
		}
	}
	return out
}

// serveWaiters resolves readers whose demands are now satisfiable.
func (c *Conn) serveWaiters() {
	for len(c.waiters) > 0 && c.buffered >= c.waiters[0].n {
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		w.f.Complete(c.ep.Engine(), c.take(w.n))
	}
}

// claimPartial hands the active segment to software early when the head
// buffer already holds bytes a blocked reader needs — the §III-C
// stream-semantics use of RVMA_Win_inc_epoch.
func (c *Conn) claimPartial() {
	if c.claiming {
		return // one claim at a time; its completion re-evaluates
	}
	head := c.recvWin.Head()
	if head == nil || head.Fill == 0 {
		return // nothing has arrived; keep polling
	}
	if len(c.waiters) == 0 || c.buffered+head.Fill < c.waiters[0].n {
		return // even the partial bytes wouldn't satisfy the reader
	}
	c.EarlyClaims++
	c.claiming = true
	if _, err := c.recvWin.IncEpoch(); err != nil && !errors.Is(err, rvma.ErrNoBuffer) {
		panic(err)
	}
}

// Close shuts the receive window; further operations fail and in-flight
// peer writes are NACKed by the NIC.
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.recvWin.Close()
	for _, w := range c.waiters {
		if !w.f.Done() {
			w.f.Complete(c.ep.Engine(), nil)
		}
	}
	c.waiters = nil
}

// RequireOrdered double-checks a network's routing mode supports streams;
// exported for callers that construct fabrics dynamically.
func RequireOrdered(mode fabric.RoutingMode) error {
	if !mode.Ordered() {
		return ErrUnordered
	}
	return nil
}
