package rstream

import (
	"bytes"
	"errors"
	"testing"

	"rvma/internal/fabric"
	"rvma/internal/nic"
	"rvma/internal/pcie"
	"rvma/internal/rvma"
	"rvma/internal/sim"
	"rvma/internal/topology"
)

// streamPair wires two endpoints over a static-routed single switch.
func streamPair(t *testing.T, cfg Config) (*sim.Engine, *Conn, *Conn) {
	t.Helper()
	eng := sim.NewEngine(1)
	fcfg := fabric.DefaultConfig()
	fcfg.Routing = fabric.RouteStatic
	net, err := fabric.New(eng, topology.NewSingleSwitch(2), fcfg)
	if err != nil {
		t.Fatal(err)
	}
	prof := nic.DefaultProfile()
	a := rvma.NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), rvma.DefaultConfig())
	b := rvma.NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), rvma.DefaultConfig())
	ca, cb, err := Pair(a, b, 1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, ca, cb
}

// pattern fabricates a deterministic byte stream.
func pattern(n, seed int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i*7 + seed)
	}
	return out
}

func TestWholeSegmentTransfer(t *testing.T) {
	eng, ca, cb := streamPair(t, Config{SegmentBytes: 1024})
	msg := pattern(1024, 1)
	var got []byte
	eng.Spawn("writer", func(p *sim.Process) {
		f, err := ca.Write(msg)
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(f)
	})
	eng.Spawn("reader", func(p *sim.Process) {
		f, err := cb.Read(1024)
		if err != nil {
			t.Error(err)
			return
		}
		p.Wait(f)
		got = f.Value().([]byte)
	})
	eng.Run()
	if !bytes.Equal(got, msg) {
		t.Fatal("stream corrupted")
	}
	if cb.EarlyClaims != 0 {
		t.Fatalf("full segment should complete by threshold, not IncEpoch (claims=%d)", cb.EarlyClaims)
	}
}

func TestPartialSegmentClaimedByReader(t *testing.T) {
	// The §III-C stream case: writer sends fewer bytes than the segment
	// threshold; the blocked reader must claim the partial segment with
	// IncEpoch rather than hanging.
	eng, ca, cb := streamPair(t, Config{SegmentBytes: 4096})
	msg := pattern(100, 2)
	var got []byte
	eng.Spawn("writer", func(p *sim.Process) {
		ca.Write(msg)
	})
	eng.Spawn("reader", func(p *sim.Process) {
		f, _ := cb.Read(100)
		p.Wait(f)
		got = f.Value().([]byte)
	})
	eng.Run()
	if !bytes.Equal(got, msg) {
		t.Fatal("partial-segment read corrupted")
	}
	if cb.EarlyClaims == 0 {
		t.Fatal("reader should have claimed the partial segment via IncEpoch")
	}
}

func TestStreamHasNoMessageBoundaries(t *testing.T) {
	// Several writes, consumed by reads of unrelated sizes.
	eng, ca, cb := streamPair(t, Config{SegmentBytes: 512})
	full := pattern(3000, 3)
	var got []byte
	eng.Spawn("writer", func(p *sim.Process) {
		for off := 0; off < len(full); off += 700 {
			end := off + 700
			if end > len(full) {
				end = len(full)
			}
			ca.Write(full[off:end])
			p.Sleep(2 * sim.Microsecond)
		}
	})
	eng.Spawn("reader", func(p *sim.Process) {
		for len(got) < len(full) {
			n := 450
			if rem := len(full) - len(got); n > rem {
				n = rem
			}
			f, err := cb.Read(n)
			if err != nil {
				t.Error(err)
				return
			}
			p.Wait(f)
			got = append(got, f.Value().([]byte)...)
		}
	})
	eng.Run()
	if !bytes.Equal(got, full) {
		t.Fatal("reassembled stream differs from written stream")
	}
	if cb.BytesConsumed != uint64(len(full)) {
		t.Fatalf("consumed %d bytes, want %d", cb.BytesConsumed, len(full))
	}
}

func TestFullDuplex(t *testing.T) {
	eng, ca, cb := streamPair(t, Config{SegmentBytes: 256})
	ping := pattern(256, 4)
	pong := pattern(256, 5)
	okA, okB := false, false
	eng.Spawn("a", func(p *sim.Process) {
		ca.Write(ping)
		f, _ := ca.Read(256)
		p.Wait(f)
		okA = bytes.Equal(f.Value().([]byte), pong)
	})
	eng.Spawn("b", func(p *sim.Process) {
		f, _ := cb.Read(256)
		p.Wait(f)
		okB = bytes.Equal(f.Value().([]byte), ping)
		cb.Write(pong)
	})
	eng.Run()
	if !okA || !okB {
		t.Fatalf("full duplex exchange failed: a=%v b=%v", okA, okB)
	}
}

func TestLargeTransferSpansSegments(t *testing.T) {
	eng, ca, cb := streamPair(t, Config{SegmentBytes: 1024, Depth: 8})
	big := pattern(64*1024, 6)
	var got []byte
	eng.Spawn("writer", func(p *sim.Process) { ca.Write(big) })
	eng.Spawn("reader", func(p *sim.Process) {
		f, _ := cb.Read(len(big))
		p.Wait(f)
		got = f.Value().([]byte)
	})
	eng.Run()
	if !bytes.Equal(got, big) {
		t.Fatal("64 KiB stream corrupted across segments")
	}
}

func TestBufferedAndImmediateRead(t *testing.T) {
	eng, ca, cb := streamPair(t, Config{SegmentBytes: 128})
	msg := pattern(256, 7)
	eng.Spawn("writer", func(p *sim.Process) { ca.Write(msg) })
	eng.Run()
	if cb.Buffered() != 256 {
		t.Fatalf("buffered = %d, want 256 (two completed segments)", cb.Buffered())
	}
	// A read of already-buffered bytes resolves synchronously.
	f, err := cb.Read(256)
	if err != nil || !f.Done() {
		t.Fatalf("buffered read should resolve immediately: %v", err)
	}
	if !bytes.Equal(f.Value().([]byte), msg) {
		t.Fatal("buffered read corrupted")
	}
}

func TestPairRefusesAdaptiveRouting(t *testing.T) {
	eng := sim.NewEngine(1)
	fcfg := fabric.DefaultConfig()
	fcfg.Routing = fabric.RouteAdaptive
	net, _ := fabric.New(eng, topology.NewSingleSwitch(2), fcfg)
	prof := nic.DefaultProfile()
	a := rvma.NewEndpoint(nic.New(eng, net, 0, pcie.Gen4x16(), prof), rvma.DefaultConfig())
	b := rvma.NewEndpoint(nic.New(eng, net, 1, pcie.Gen4x16(), prof), rvma.DefaultConfig())
	if _, _, err := Pair(a, b, 1, Config{}); !errors.Is(err, ErrUnordered) {
		t.Fatalf("adaptive-routed pair: %v, want ErrUnordered", err)
	}
	if err := RequireOrdered(fabric.RouteAdaptive); !errors.Is(err, ErrUnordered) {
		t.Fatal("RequireOrdered(adaptive) should fail")
	}
	if err := RequireOrdered(fabric.RouteStatic); err != nil {
		t.Fatal("RequireOrdered(static) should pass")
	}
}

func TestCloseSemantics(t *testing.T) {
	eng, ca, cb := streamPair(t, Config{SegmentBytes: 128})
	cb.Close()
	cb.Close() // idempotent
	if _, err := cb.Read(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("read after close: %v", err)
	}
	if _, err := cb.Write(nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
	// The unclosed end keeps its own API available.
	if _, err := ca.Write(nil); err != nil {
		t.Fatalf("peer connection should remain usable: %v", err)
	}
	// Writes toward the closed end are NACKed by the receiver NIC.
	nacked := false
	eng.Schedule(0, func() {
		op := ca.ep.Put(cb.ep.Node(), ca.sendMbox, 0, make([]byte, 16))
		op.Nack.OnComplete(func() { nacked = true })
	})
	eng.Run()
	if !nacked {
		t.Fatal("write to closed stream should NACK")
	}
}

func TestZeroLengthWrite(t *testing.T) {
	_, ca, _ := streamPair(t, Config{})
	f, err := ca.Write(nil)
	if err != nil || !f.Done() {
		t.Fatalf("zero write: %v", err)
	}
	if _, err := ca.Read(0); err == nil {
		t.Fatal("zero read should error")
	}
}
