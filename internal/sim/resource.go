package sim

// Resource models a serially reusable hardware unit — a link transmitter, a
// switch crossbar, a DMA engine — using next-free-time semantics: each
// acquisition occupies the resource for a holding time, and requests that
// arrive while it is busy queue up in FIFO order without any explicit queue
// data structure.
//
// Acquire returns the time at which the caller's occupancy *ends*, which is
// when the modeled unit has finished serving it. This is the standard
// latency-rate server used by network simulators for store-and-forward
// pipes.
type Resource struct {
	name     string
	freeAt   Time
	busyTime Time   // accumulated occupied time, for utilization reports
	uses     uint64 // number of acquisitions
}

// NewResource returns an idle resource.
func NewResource(name string) *Resource { return &Resource{name: name} }

// Name returns the resource's diagnostic name.
func (r *Resource) Name() string { return r.name }

// Acquire occupies the resource for hold starting no earlier than the
// current time, and returns the completion time (start + hold). If the
// resource is busy the start is deferred until it frees.
func (r *Resource) Acquire(e *Engine, hold Time) Time {
	if hold < 0 {
		panic("sim: negative hold time")
	}
	start := e.Now()
	if r.freeAt > start {
		start = r.freeAt
	}
	end := start + hold
	r.freeAt = end
	r.busyTime += hold
	r.uses++
	return end
}

// AcquireAt is like Acquire but with an explicit earliest start time, for
// callers that model a request arriving in the future (e.g. a packet that
// reaches the switch after a link delay).
func (r *Resource) AcquireAt(earliest Time, hold Time) Time {
	if hold < 0 {
		panic("sim: negative hold time")
	}
	start := earliest
	if r.freeAt > start {
		start = r.freeAt
	}
	end := start + hold
	r.freeAt = end
	r.busyTime += hold
	r.uses++
	return end
}

// FreeAt returns the time at which the resource next becomes idle.
func (r *Resource) FreeAt() Time { return r.freeAt }

// Backlog returns how long a request issued now would wait before starting.
func (r *Resource) Backlog(e *Engine) Time {
	if r.freeAt <= e.Now() {
		return 0
	}
	return r.freeAt - e.Now()
}

// BusyTime returns the total occupied time accumulated so far.
func (r *Resource) BusyTime() Time { return r.busyTime }

// Uses returns the number of acquisitions.
func (r *Resource) Uses() uint64 { return r.uses }

// Utilization returns busy time as a fraction of the elapsed time now.
func (r *Resource) Utilization(e *Engine) float64 {
	if e.Now() == 0 {
		return 0
	}
	return Ratio(r.busyTime, e.Now())
}
