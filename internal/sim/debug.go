package sim

import "fmt"

// This file holds the simdebug invariant helpers. The functions exist in
// every build; callers guard them with `if DebugEnabled { ... }` so the
// checks (and their argument evaluation) vanish from normal builds.

// invariantHook, when set, observes the message of a failing Assertf
// before the panic unwinds. The telemetry flight recorder installs one so
// an invariant violation dumps the last-N-events history alongside the
// panic instead of dying bare.
var invariantHook func(msg string)

// SetInvariantHook installs fn to be called with the formatted message of
// every failing Assertf, before the panic. Pass nil to clear. The engine
// is single-threaded, so installing a hook from model setup code is safe;
// the hook must not schedule events or touch model state.
func SetInvariantHook(fn func(msg string)) { invariantHook = fn }

// Assertf panics with a simdebug-prefixed message when cond is false.
// Model packages use it for their own invariants (conservation laws,
// non-negative resources) so every violation reports uniformly.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		msg := fmt.Sprintf(format, args...)
		if invariantHook != nil {
			invariantHook(msg)
		}
		panic("simdebug: invariant violated: " + msg)
	}
}

// debugHeapCheckEvery bounds the cost of full heap verification: the
// cheap per-pop checks run on every event, the O(n) structural sweep
// only once per this many executed events.
const debugHeapCheckEvery = 1 << 10

// debugCheckPop validates the event-ordering and pool invariants the
// whole simulation rests on, at the moment an event is popped for
// execution:
//
//  1. Monotonic clock: the popped event's timestamp is never earlier
//     than the current simulated time.
//  2. Heap order: the new head (the next event to run) does not sort
//     before the event just popped under (time, priority, seq) order.
//  3. Pool lifecycle: the popped event is live (not a recycled object the
//     queue somehow still references) and was never canceled — Cancel
//     removes events from the queue eagerly.
func (e *Engine) debugCheckPop(ev *Event) {
	Assertf(ev.at >= e.now,
		"event time %v precedes engine clock %v (causality runs backward)", ev.at, e.now)
	Assertf(ev.state == evQueued,
		"popped event (t=%v seq=%d) is not live: pool state %d (use-after-free)", ev.at, ev.seq, ev.state)
	Assertf(!ev.canceled,
		"popped event (t=%v seq=%d) was canceled but still queued", ev.at, ev.seq)
	if len(e.queue) > 0 {
		head := e.queue[0]
		Assertf(!eventLess(head, ev),
			"heap order: next event (t=%v pri=%d seq=%d) sorts before popped event (t=%v pri=%d seq=%d)",
			head.at, head.priority, head.seq, ev.at, ev.priority, ev.seq)
	}
	if e.executed%debugHeapCheckEvery == 0 {
		e.debugVerifyHeap()
	}
}

// debugVerifyHeap sweeps the whole queue checking the heapArity-ary heap
// property under the event ordering, index bookkeeping, and that queue
// and free list never share an object.
func (e *Engine) debugVerifyHeap() {
	for i := range e.queue {
		Assertf(e.queue[i].index == i,
			"heap index bookkeeping: queue[%d].index = %d", i, e.queue[i].index)
		Assertf(e.queue[i].state == evQueued,
			"queued event at %d has pool state %d (freed object still in queue)", i, e.queue[i].state)
		for c := heapArity*i + 1; c <= heapArity*i+heapArity && c < len(e.queue); c++ {
			Assertf(!eventLess(e.queue[c], e.queue[i]),
				"heap property violated at parent %d / child %d", i, c)
		}
	}
	for i, ev := range e.free {
		Assertf(ev.state == evFree,
			"free list entry %d has pool state %d (live event in the pool)", i, ev.state)
	}
}

// eventLess mirrors eventHeap.Less on event values so the debug checks
// compare with exactly the ordering the queue uses.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}
