package sim

import "fmt"

// This file holds the simdebug invariant helpers. The functions exist in
// every build; callers guard them with `if DebugEnabled { ... }` so the
// checks (and their argument evaluation) vanish from normal builds.

// invariantHook, when set, observes the message of a failing Assertf
// before the panic unwinds. The telemetry flight recorder installs one so
// an invariant violation dumps the last-N-events history alongside the
// panic instead of dying bare.
var invariantHook func(msg string)

// SetInvariantHook installs fn to be called with the formatted message of
// every failing Assertf, before the panic. Pass nil to clear. The engine
// is single-threaded, so installing a hook from model setup code is safe;
// the hook must not schedule events or touch model state.
func SetInvariantHook(fn func(msg string)) { invariantHook = fn }

// Assertf panics with a simdebug-prefixed message when cond is false.
// Model packages use it for their own invariants (conservation laws,
// non-negative resources) so every violation reports uniformly.
func Assertf(cond bool, format string, args ...any) {
	if !cond {
		msg := fmt.Sprintf(format, args...)
		if invariantHook != nil {
			invariantHook(msg)
		}
		panic("simdebug: invariant violated: " + msg)
	}
}

// debugHeapCheckEvery bounds the cost of full heap verification: the
// cheap per-pop checks run on every event, the O(n) structural sweep
// only once per this many executed events.
const debugHeapCheckEvery = 1 << 10

// debugCheckPop validates the two event-ordering invariants the whole
// simulation rests on, at the moment an event is popped for execution:
//
//  1. Monotonic clock: the popped event's timestamp is never earlier
//     than the current simulated time.
//  2. Heap order: the new head (the next event to run) does not sort
//     before the event just popped under (time, priority, seq) order.
func (e *Engine) debugCheckPop(ev *Event) {
	Assertf(ev.at >= e.now,
		"event time %v precedes engine clock %v (causality runs backward)", ev.at, e.now)
	if len(e.queue) > 0 {
		head := e.queue[0]
		Assertf(!eventLess(head, ev),
			"heap order: next event (t=%v pri=%d seq=%d) sorts before popped event (t=%v pri=%d seq=%d)",
			head.at, head.priority, head.seq, ev.at, ev.priority, ev.seq)
	}
	if e.executed%debugHeapCheckEvery == 0 {
		e.debugVerifyHeap()
	}
}

// debugVerifyHeap sweeps the whole queue checking the binary-heap
// property under the event ordering, plus index bookkeeping.
func (e *Engine) debugVerifyHeap() {
	for i := range e.queue {
		Assertf(e.queue[i].index == i,
			"heap index bookkeeping: queue[%d].index = %d", i, e.queue[i].index)
		for _, child := range []int{2*i + 1, 2*i + 2} {
			if child < len(e.queue) {
				Assertf(!eventLess(e.queue[child], e.queue[i]),
					"heap property violated at parent %d / child %d", i, child)
			}
		}
	}
}

// eventLess mirrors eventHeap.Less on event values so the debug checks
// compare with exactly the ordering the queue uses.
func eventLess(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.priority != b.priority {
		return a.priority < b.priority
	}
	return a.seq < b.seq
}
