package sim

import "sort"

// This file implements conservative lookahead-parallel execution: one
// logical simulation partitioned across several Engines ("shards"), each
// with its own event heap, synchronized in rounds. The classic PDES
// argument applies directly to our fixed-latency fabric: if every
// cross-shard interaction takes at least `lookahead` simulated time, then
// any event with timestamp below (global lower bound + lookahead) cannot
// be affected by an event another shard has yet to execute, so all shards
// may execute their windows concurrently without ever seeing an event out
// of order.
//
// Determinism is the design constraint that shapes everything here:
//
//   - Cross-shard handoffs are buffered in per-sender outboxes during a
//     round and delivered at the barrier in a stable (time, priority,
//     sender, emission-index) order, so destination-heap contents — and
//     therefore destination seq assignment — are a pure function of model
//     state, independent of host scheduling.
//   - Daemon events (telemetry ticks) interleave with model events up to
//     each round's window limit, unconditionally. Rounds partition
//     simulated time into disjoint ascending windows, so a tick at time t
//     runs in the unique round covering t — before any later barrier
//     delivery reaches its heap — and therefore observes an exact
//     consistent cut of the model at every shard count. The window-limit
//     sequence itself depends only on event times, never on placement, so
//     the tick grid is identical at any shard count (see Run for the one
//     bounded difference versus a single heap).
//   - Each shard's RNG is seeded via SeedFor(seed, "shard", i), so a
//     component's draws depend on its own history, not on how work was
//     partitioned.
//
// The single-heap Engine remains the shards=1 fast path; none of this
// machinery touches RunUntil.

// xpost is one cross-shard event handoff, parked in the sender's outbox
// until the round barrier.
type xpost struct {
	src, dst int
	at       Time
	priority int
	label    Label
	fn       func()
	idx      int // per-sender emission index within the round (sort tie-break)
}

// ShardGroup runs a simulation partitioned across n shard Engines with a
// conservative lookahead window. Construct the model by scheduling onto
// the individual shard engines (Shard(i)); route every cross-shard
// interaction through Post. ShardGroup methods other than Post are not
// safe for concurrent use; Post is safe only from the goroutine currently
// executing the named sender shard's window (the single-writer rule the
// outboxes rely on).
type ShardGroup struct {
	shards    []*Engine
	lookahead Time
	outbox    [][]xpost
	xbuf      []xpost // flattened delivery scratch, reused across rounds
	onBarrier []func()

	// Worker machinery: one persistent goroutine per shard, fed one round
	// window at a time. Lazily started on the first round with 2+ active
	// shards, stopped when Run returns.
	cmd      []chan shardWindow
	done     chan struct{}
	panicVal []any
	started  bool
}

// shardWindow is one round's execution bound for a shard worker.
type shardWindow struct {
	limit Time
}

// NewShardGroup returns a group of n shard engines with the given
// lookahead window (the minimum simulated time any cross-shard handoff
// takes; must be positive). Shard i's engine is seeded deterministically
// from (seed, i), so the same seed yields the same per-shard draw
// sequences regardless of how many other shards exist.
func NewShardGroup(seed uint64, n int, lookahead Time) *ShardGroup {
	if n < 1 {
		panic("sim: ShardGroup needs at least one shard")
	}
	if lookahead < 1 {
		panic("sim: ShardGroup lookahead must be positive")
	}
	g := &ShardGroup{
		shards:    make([]*Engine, n),
		lookahead: lookahead,
		outbox:    make([][]xpost, n),
		panicVal:  make([]any, n),
	}
	for i := range g.shards {
		g.shards[i] = NewEngine(SeedFor(seed, "shard", i))
	}
	return g
}

// Shards returns the number of shards in the group.
func (g *ShardGroup) Shards() int { return len(g.shards) }

// Shard returns shard i's engine. Model construction schedules directly
// onto it; during Run it must only be touched by its own window.
func (g *ShardGroup) Shard(i int) *Engine { return g.shards[i] }

// Lookahead returns the group's synchronization window.
func (g *ShardGroup) Lookahead() Time { return g.lookahead }

// UnsafeScaleLookahead multiplies the lookahead by factor. It exists only
// so tests and the CI canary can deliberately break conservatism: a
// factor > 1 claims a wider safe window than cross-shard latencies
// justify, which lets a shard run past a handoff it has not yet received
// — simdebug builds trip a causality invariant, release builds silently
// diverge from the single-heap reference (which is exactly what the
// canary demonstrates the ledger catching).
func (g *ShardGroup) UnsafeScaleLookahead(factor float64) {
	g.lookahead = ScaleF(g.lookahead, factor)
	if g.lookahead < 1 {
		g.lookahead = 1
	}
}

// OnBarrier registers fn to run (on the Run goroutine, with all shards
// quiescent) after every round's windows complete. The canonical ledger
// uses it to fold the round's records into the chain in merged order.
func (g *ShardGroup) OnBarrier(fn func()) {
	g.onBarrier = append(g.onBarrier, fn)
}

// Post schedules fn at absolute time at on shard dst, on behalf of shard
// src. Same-shard posts schedule immediately; cross-shard posts are
// buffered and delivered at the next round barrier in a deterministic
// order. The label must be one interned on the destination shard's
// engine (components tag every shard engine at construction, so the
// handle for the destination is always at hand).
//
// Conservative correctness requires at >= sender now + lookahead for
// cross-shard posts; simdebug builds assert it.
func (g *ShardGroup) Post(src, dst int, at Time, priority int, label Label, fn func()) {
	if DebugEnabled {
		Assertf(src >= 0 && src < len(g.shards) && dst >= 0 && dst < len(g.shards),
			"cross-shard post with bad shard ids src=%d dst=%d (have %d shards)", src, dst, len(g.shards))
	}
	if src == dst {
		e := g.shards[src]
		if DebugEnabled {
			Assertf(at >= e.now, "same-shard post at %v before shard %d clock %v", at, src, e.now)
		}
		e.at(at, priority, label, fn)
		return
	}
	if DebugEnabled {
		Assertf(at >= g.shards[src].now+g.lookahead,
			"cross-shard handoff at %v violates lookahead: sender shard %d is at %v, window %v (lookahead too large for the real link latency?)",
			at, src, g.shards[src].now, g.lookahead)
	}
	box := g.outbox[src]
	g.outbox[src] = append(box, xpost{
		src: src, dst: dst, at: at, priority: priority, label: label, fn: fn, idx: len(box),
	})
}

// deliver flushes all outboxes into the destination heaps in stable
// (time, priority, sender, emission-index) order. Runs between rounds,
// single-threaded.
func (g *ShardGroup) deliver() {
	total := 0
	for _, box := range g.outbox {
		total += len(box)
	}
	if total == 0 {
		return
	}
	all := g.xbuf[:0]
	for i, box := range g.outbox {
		all = append(all, box...)
		g.outbox[i] = box[:0]
	}
	sort.Slice(all, func(a, b int) bool {
		x, y := &all[a], &all[b]
		if x.at != y.at {
			return x.at < y.at
		}
		if x.priority != y.priority {
			return x.priority < y.priority
		}
		if x.src != y.src {
			return x.src < y.src
		}
		return x.idx < y.idx
	})
	for i := range all {
		p := &all[i]
		dst := g.shards[p.dst]
		if DebugEnabled {
			Assertf(p.at >= dst.now,
				"cross-shard handoff at %v arrives behind destination shard %d clock %v (causality violated; lookahead too large?)",
				p.at, p.dst, dst.now)
		}
		dst.at(p.at, p.priority, p.label, p.fn)
		p.fn = nil // don't pin callbacks in the reused scratch buffer
	}
	g.xbuf = all
}

// Run executes the partitioned simulation to completion and returns the
// time of the last model event (the same value a single-heap run of the
// same model returns). Every shard's clock is left synchronized to that
// time. Daemon events (ticks) are deterministic and identical at every
// shard count; the one difference versus a single heap is bounded and
// one-sided: because the final round's window may extend up to lookahead
// past the last model event, ticks can additionally fire at times
// strictly within (final, final + lookahead). Every tick before the final
// model time executes, exactly as on a single heap.
func (g *ShardGroup) Run() Time {
	defer g.stopWorkers()
	for {
		g.deliver()
		pending := 0
		for _, e := range g.shards {
			pending += e.Pending()
		}
		if pending == 0 {
			break
		}
		// The lower bound on any future model event. Shards whose model
		// has locally drained contribute nothing: their remaining daemon
		// events are read-only riders that can neither post handoffs nor
		// schedule model work, so they never constrain another shard's
		// safety — and excluding them keeps a long-idle shard's pending
		// telemetry ticks from freezing the horizon. Note Pending() counts
		// model events only, so lbts is placement-invariant: it depends on
		// event times alone, which keeps the round (and therefore tick)
		// schedule identical at every shard count.
		lbts := MaxTime
		for _, e := range g.shards {
			if e.Pending() > 0 {
				if t := e.NextEventTime(); t < lbts {
					lbts = t
				}
			}
		}
		horizon := lbts + g.lookahead
		if horizon < lbts { // overflow clamp
			horizon = MaxTime
		}
		g.runRound(horizon - 1)
		if DebugEnabled {
			// Safe-horizon invariant: after a regular round no shard's clock
			// may pass the window limit — an event popped beyond it could have
			// been affected by a handoff another shard has not delivered yet.
			// (Regular windows ascend, so this holds for idle shards too; the
			// final drain pass below is exempt because its limit can be
			// narrower than the last regular window.)
			for i, e := range g.shards {
				Assertf(e.now <= horizon-1,
					"shard %d clock %v ran past round limit %v (safe-horizon violation)", i, e.now, horizon-1)
			}
		}
		for _, fn := range g.onBarrier {
			fn()
		}
	}
	// Model drained everywhere. One final daemon pass bounded by the exact
	// global last model time guarantees the single-heap inclusion side of
	// the contract: every tick strictly before the final model event has
	// executed. (Usually a no-op — the last regular round's window already
	// reached at least this far.)
	var last Time
	for _, e := range g.shards {
		if e.lastModelAt > last {
			last = e.lastModelAt
		}
	}
	g.runRound(last - 1)
	for _, e := range g.shards {
		e.syncClock(last)
	}
	return last
}

// runRound executes one window on every shard whose next event (model or
// daemon) falls inside it. Shards run concurrently on persistent workers
// when two or more are active; a lone active shard runs inline to skip
// the handoff latency.
func (g *ShardGroup) runRound(limit Time) {
	active := 0
	lone := -1
	for i, e := range g.shards {
		if e.NextEventTime() <= limit {
			active++
			lone = i
		}
	}
	switch {
	case active == 0:
		// Nothing to run, but fall through to the horizon check: a clock
		// sitting past the limit is corrupt whether or not it has work.
	case active == 1:
		g.shards[lone].runShardWindow(limit)
	default:
		g.startWorkers()
		launched := 0
		for i, e := range g.shards {
			if e.NextEventTime() <= limit {
				g.cmd[i] <- shardWindow{limit}
				launched++
			}
		}
		for i := 0; i < launched; i++ {
			<-g.done
		}
		for i, p := range g.panicVal {
			if p != nil {
				g.panicVal[i] = nil
				panic(p)
			}
		}
	}
}

// startWorkers lazily spins up one goroutine per shard. Workers block on
// their command channel between rounds; a recovered panic is parked and
// re-raised on the Run goroutine once the round's barrier completes, so a
// model panic in any shard surfaces exactly like it would single-heap.
func (g *ShardGroup) startWorkers() {
	if g.started {
		return
	}
	g.started = true
	g.cmd = make([]chan shardWindow, len(g.shards))
	g.done = make(chan struct{}, len(g.shards))
	for i := range g.shards {
		g.cmd[i] = make(chan shardWindow)
		//rvmalint:allow goroutine -- kernel-internal shard worker; barriers keep exactly one goroutine per heap
		go g.worker(i, g.cmd[i], g.done)
	}
}

// worker receives its channels as parameters rather than re-reading the
// group's fields: stopWorkers nils g.cmd after closing the channels, and
// a worker goroutine that the host scheduler starts late must not race
// that write.
func (g *ShardGroup) worker(i int, cmd <-chan shardWindow, done chan<- struct{}) {
	for w := range cmd {
		func() {
			defer func() {
				if r := recover(); r != nil {
					g.panicVal[i] = r
				}
				done <- struct{}{}
			}()
			g.shards[i].runShardWindow(w.limit)
		}()
	}
}

func (g *ShardGroup) stopWorkers() {
	if !g.started {
		return
	}
	for i := range g.cmd {
		close(g.cmd[i])
	}
	g.started = false
	g.cmd = nil
}

// OutboxCount returns the number of cross-shard handoffs shard src has
// buffered but not yet delivered. Safe from the goroutine executing shard
// src's window (single-writer, same rule as Post); used by telemetry
// probes so per-shard queue-depth samples sum to the single-heap value —
// an in-flight handoff is pending work that the destination heap cannot
// see yet.
func (g *ShardGroup) OutboxCount(src int) int { return len(g.outbox[src]) }

// TotalPending sums model events pending across all shards.
func (g *ShardGroup) TotalPending() int {
	n := 0
	for _, e := range g.shards {
		n += e.Pending()
	}
	return n
}

// TotalExecuted sums model events executed across all shards.
func (g *ShardGroup) TotalExecuted() uint64 {
	var n uint64
	for _, e := range g.shards {
		n += e.executed
	}
	return n
}

// TotalScheduled sums model events scheduled across all shards.
func (g *ShardGroup) TotalScheduled() uint64 {
	var n uint64
	for _, e := range g.shards {
		n += e.scheduled
	}
	return n
}
