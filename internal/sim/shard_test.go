package sim

import (
	"fmt"
	"sort"
	"testing"
)

// The sharded engine's contract is byte-identical execution: the same
// model partitioned K ways must pop the same (time, priority) event
// stream as the single-heap reference, finish at the same time, fold the
// same model-state checksum, and run identical daemon ticks at every
// shard count (versus the single heap, ticks may additionally fire only
// within one lookahead window past the final model event). These tests
// drive a synthetic relay model that exercises every mechanism the real
// fabric uses: globally unique (negative) event priorities, per-component
// RNG substreams, cross-shard handoffs at >= lookahead, local events,
// cancels, and telemetry-style daemon ticks.

// relayLookahead is the minimum cross-node latency in the test model.
const relayLookahead = Time(40)

// relayTickPri mirrors the telemetry sampler's daemon priority: daemons
// sort after model events at equal timestamps, so a tick at t observes
// every model event at t already applied — on a single heap and in every
// sharded round alike.
const relayTickPri = 1 << 20

// popRec is one observed model pop.
type popRec struct {
	at  Time
	pri int
}

// popLog collects a shard's execution stream via the exec observer.
type popLog struct {
	recs []popRec
}

func (l *popLog) ObserveExec(seq uint64, at Time, priority int, label Label) {
	l.recs = append(l.recs, popRec{at, priority})
}

// relayModel is the synthetic workload: nodes fire messages that hop
// between pseudo-random nodes, every message event carrying a globally
// unique negative priority packed from (node, per-node emission counter)
// — the same scheme the fabric uses, and the property that makes the
// cross-shard pop order a pure function of (time, priority).
type relayModel struct {
	nodes int
	group *ShardGroup // nil => single-heap reference
	eng   *Engine     // reference engine when group == nil
	tags  []Tagged    // per-shard (or single) scheduling handle
	seq   []int       // per-node emission counters for unique priorities
	rngs  []*RNG      // per-node RNG substreams (never the engine's)
	hops  int
	// sums holds one checksum accumulator per shard (single-writer, so
	// workers never race); terms are hashed and summed, a commutative
	// fold, so the combined value is independent of the partitioning.
	sums []uint64
}

func newRelayModel(seed uint64, nodes, shards, hops int) *relayModel {
	m := &relayModel{
		nodes: nodes,
		seq:   make([]int, nodes),
		rngs:  make([]*RNG, nodes),
		hops:  hops,
	}
	for n := 0; n < nodes; n++ {
		m.rngs[n] = NewRNG(SeedFor(seed, "node", n))
	}
	if shards <= 0 {
		m.eng = NewEngine(seed)
		m.tags = []Tagged{m.eng.Tag("relay")}
		m.sums = make([]uint64, 1)
	} else {
		m.sums = make([]uint64, shards)
		m.group = NewShardGroup(seed, shards, relayLookahead)
		m.tags = make([]Tagged, shards)
		for i := 0; i < shards; i++ {
			m.tags[i] = m.group.Shard(i).Tag("relay")
		}
	}
	return m
}

func (m *relayModel) engines() []*Engine {
	if m.group == nil {
		return []*Engine{m.eng}
	}
	out := make([]*Engine, m.group.Shards())
	for i := range out {
		out[i] = m.group.Shard(i)
	}
	return out
}

// shardOf maps a node to its contiguous block shard.
func (m *relayModel) shardOf(node int) int {
	if m.group == nil {
		return 0
	}
	return node * m.group.Shards() / m.nodes
}

// uniquePri packs (node, per-node counter) into a globally unique
// negative priority, mirroring the fabric's scheme.
func (m *relayModel) uniquePri(node int) int {
	p := -(1 + m.seq[node]*m.nodes + node)
	m.seq[node]++
	return p
}

// send schedules a receive at node dst at absolute time at, routed
// through the shard group when the sender and receiver live on
// different shards.
func (m *relayModel) send(src, dst int, at Time, hops int) {
	pri := m.uniquePri(src)
	fn := func() { m.receive(dst, hops) }
	if m.group == nil {
		m.tags[0].AtP(at, pri, fn)
		return
	}
	ss, ds := m.shardOf(src), m.shardOf(dst)
	m.group.Post(ss, ds, at, pri, m.tags[ds].Label(), fn)
}

// receive is the per-hop callback: fold model state, do some local work
// (including a schedule-then-cancel), and relay onward.
func (m *relayModel) receive(node, hops int) {
	eng := m.engineFor(node)
	now := eng.Now()
	shard := m.shardOf(node)
	m.sums[shard] += (uint64(now) + 1) * 0x9E3779B97F4A7C15 * uint64(node+1)
	tag := m.tags[shard]
	// Local work at the same node: unique priorities keep the global
	// (time, priority) order total even across shard boundaries.
	ev := tag.AtP(now+1000, m.uniquePri(node), func() {})
	eng.Cancel(ev)
	if hops%3 == 0 {
		tag.AtP(now+3, m.uniquePri(node), func() {
			m.sums[shard] += uint64(node+1) * 0xBF58476D1CE4E5B9
		})
	}
	if hops <= 0 {
		return
	}
	r := m.rngs[node]
	dst := r.Intn(m.nodes)
	lat := relayLookahead + Time(r.Intn(4))*10
	m.send(node, dst, now+lat, hops-1)
}

func (m *relayModel) engineFor(node int) *Engine {
	if m.group == nil {
		return m.eng
	}
	return m.group.Shard(m.shardOf(node))
}

// start injects the initial messages (pre-run, so same-shard direct
// scheduling is fine everywhere).
func (m *relayModel) start() {
	for n := 0; n < m.nodes; n++ {
		m.send(n, (n*7+3)%m.nodes, Time(100+n), m.hops)
	}
}

// relayResult is everything the equivalence check compares.
type relayResult struct {
	final    Time
	pops     []popRec // merged across shards, sorted by (time, priority)
	ticks    []Time   // distinct daemon tick times, sorted
	executed uint64
	sum      uint64
}

// runRelay builds, instruments, and runs the relay model; shards <= 0
// runs the single-heap reference.
func runRelay(t *testing.T, seed uint64, nodes, shards, hops int) relayResult {
	t.Helper()
	m := newRelayModel(seed, nodes, shards, hops)

	engines := m.engines()
	logs := make([]*popLog, len(engines))
	tickLogs := make([][]Time, len(engines))
	for i, e := range engines {
		logs[i] = &popLog{}
		e.SetExecObserver(logs[i])
		eng, slot := e, i
		var tick func()
		tick = func() {
			tickLogs[slot] = append(tickLogs[slot], eng.Now())
			eng.ScheduleDaemonP(50, relayTickPri, tick)
		}
		eng.ScheduleDaemonP(50, relayTickPri, tick)
	}

	m.start()
	var res relayResult
	if m.group == nil {
		res.final = m.eng.Run()
		res.executed = m.eng.EventsExecuted()
	} else {
		res.final = m.group.Run()
		res.executed = m.group.TotalExecuted()
		for i, e := range engines {
			if got := e.Now(); got != res.final {
				t.Fatalf("shards=%d: shard %d clock %v not synced to final time %v", shards, i, got, res.final)
			}
		}
	}
	for _, s := range m.sums {
		res.sum += s
	}

	for _, l := range logs {
		res.pops = append(res.pops, l.recs...)
	}
	sort.Slice(res.pops, func(a, b int) bool {
		if res.pops[a].at != res.pops[b].at {
			return res.pops[a].at < res.pops[b].at
		}
		return res.pops[a].pri < res.pops[b].pri
	})

	seen := map[Time]bool{}
	for _, tl := range tickLogs {
		for _, tt := range tl {
			if seen[tt] {
				continue
			}
			seen[tt] = true
			res.ticks = append(res.ticks, tt)
		}
	}
	sort.Slice(res.ticks, func(a, b int) bool { return res.ticks[a] < res.ticks[b] })
	return res
}

func checkRelayEqual(t *testing.T, shards int, ref, got relayResult) {
	t.Helper()
	if got.final != ref.final {
		t.Errorf("shards=%d: final time %v, reference %v", shards, got.final, ref.final)
	}
	if got.executed != ref.executed {
		t.Errorf("shards=%d: executed %d events, reference %d", shards, got.executed, ref.executed)
	}
	if got.sum != ref.sum {
		t.Errorf("shards=%d: model checksum %#x, reference %#x", shards, got.sum, ref.sum)
	}
	if len(got.pops) != len(ref.pops) {
		t.Fatalf("shards=%d: %d pops, reference %d", shards, len(got.pops), len(ref.pops))
	}
	for i := range got.pops {
		if got.pops[i] != ref.pops[i] {
			t.Fatalf("shards=%d: pop %d = %+v, reference %+v", shards, i, got.pops[i], ref.pops[i])
		}
	}
}

// checkTicksExact asserts two runs executed exactly the same daemon tick
// times — the contract between any two shard counts: the round schedule
// is a pure function of event times, so the tick sets match bytewise.
func checkTicksExact(t *testing.T, shards int, ref, got relayResult) {
	t.Helper()
	if len(got.ticks) != len(ref.ticks) {
		t.Fatalf("shards=%d: %d distinct tick times, shards=1 has %d", shards, len(got.ticks), len(ref.ticks))
	}
	for i := range got.ticks {
		if got.ticks[i] != ref.ticks[i] {
			t.Fatalf("shards=%d: tick %d at %v, shards=1 has %v", shards, i, got.ticks[i], ref.ticks[i])
		}
	}
}

// checkTicksVsSingleHeap asserts the bounded one-sided tick contract a
// sharded run holds against the single-heap reference: every reference
// tick executes at the same time, and any extras fall strictly within
// one lookahead window past the reference's final model event (the last
// round's window may extend that far; see ShardGroup.Run).
func checkTicksVsSingleHeap(t *testing.T, shards int, ref, got relayResult) {
	t.Helper()
	if len(got.ticks) < len(ref.ticks) {
		t.Fatalf("shards=%d: %d distinct tick times, single-heap reference has %d", shards, len(got.ticks), len(ref.ticks))
	}
	for i := range ref.ticks {
		if got.ticks[i] != ref.ticks[i] {
			t.Fatalf("shards=%d: tick %d at %v, single-heap reference %v", shards, i, got.ticks[i], ref.ticks[i])
		}
	}
	for _, tt := range got.ticks[len(ref.ticks):] {
		if tt <= ref.final || tt >= ref.final+relayLookahead {
			t.Fatalf("shards=%d: extra tick at %v outside (%v, %v)", shards, tt, ref.final, ref.final+relayLookahead)
		}
	}
}

// TestShardGroupMatchesSingleHeap is the core determinism contract: the
// same model at any shard count pops the same (time, priority) stream as
// the single-heap engine and finishes at the same time with every shard
// clock synchronized. Daemon ticks are exactly identical between any two
// shard counts; against the single heap they may additionally fire within
// one lookahead window past the final model event, and nowhere else.
func TestShardGroupMatchesSingleHeap(t *testing.T) {
	const (
		seed  = 42
		nodes = 24
		hops  = 40
	)
	ref := runRelay(t, seed, nodes, 0, hops)
	if len(ref.pops) == 0 {
		t.Fatal("reference run executed no events; the model is broken")
	}
	if len(ref.ticks) == 0 {
		t.Fatal("reference run executed no daemon ticks; tick setup is broken")
	}
	base := runRelay(t, seed, nodes, 1, hops)
	checkRelayEqual(t, 1, ref, base)
	checkTicksVsSingleHeap(t, 1, ref, base)
	for _, shards := range []int{2, 3, 4, 8} {
		got := runRelay(t, seed, nodes, shards, hops)
		checkRelayEqual(t, shards, ref, got)
		checkTicksExact(t, shards, base, got)
		checkTicksVsSingleHeap(t, shards, ref, got)
	}
}

// TestShardGroupSeedSensitivity guards against the comparison being
// vacuous: different seeds must produce different streams.
func TestShardGroupSeedSensitivity(t *testing.T) {
	a := runRelay(t, 1, 16, 2, 20)
	b := runRelay(t, 2, 16, 2, 20)
	if a.sum == b.sum {
		t.Fatal("different seeds produced identical checksums; model ignores its RNG")
	}
}

// TestShardGroupPanicPropagates: a model panic on any shard must surface
// from Run on the caller goroutine, exactly like single-heap execution.
func TestShardGroupPanicPropagates(t *testing.T) {
	g := NewShardGroup(7, 4, relayLookahead)
	tagA := g.Shard(0).Tag("a")
	tagB := g.Shard(3).Tag("b")
	// Enough cross-shard traffic to keep 2+ shards active (worker path).
	for i := 0; i < 8; i++ {
		at := Time(10 + i)
		g.Post(0, 3, at+relayLookahead, -(i + 1), tagB.Label(), func() {})
		tagA.AtP(at, 0, func() {})
	}
	g.Shard(3).Tag("boom").AtP(relayLookahead+12, 5, func() { panic("boom") })
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected model panic to propagate out of ShardGroup.Run")
		}
		if s, ok := r.(string); !ok || s != "boom" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	g.Run()
}

// TestShardGroupEmptyRun: a group with no model events returns time zero
// without executing held-back daemons.
func TestShardGroupEmptyRun(t *testing.T) {
	g := NewShardGroup(1, 3, relayLookahead)
	ticked := false
	g.Shard(1).ScheduleDaemonP(5, relayTickPri, func() { ticked = true })
	if got := g.Run(); got != 0 {
		t.Fatalf("empty run returned %v, want 0", got)
	}
	if ticked {
		t.Fatal("daemon executed in a run with no model events")
	}
}

// BenchmarkShardedEngine measures aggregate model events/sec of the
// partitioned engine against the single-heap reference on a fig7-regime
// workload: thousands of nodes, mostly node-local events, periodic
// cross-shard relays, and a large standing population of parked
// timeout-style events (NIC retry timers at scale), which is what makes
// the single heap deep. Sharding wins twice: windows run concurrently on
// multi-core hosts, and each shard's shallower heap does fewer, more
// cache-local sift levels per operation — the second effect is visible
// even on one core. The CI shard-smoke job tabulates the speedup from
// these sub-benchmarks.
func BenchmarkShardedEngine(b *testing.B) {
	for _, shards := range []int{0, 1, 2, 4, 8} {
		name := "single-heap"
		if shards > 0 {
			name = fmt.Sprintf("shards=%d", shards)
		}
		b.Run(name, func(b *testing.B) {
			var events uint64
			for i := 0; i < b.N; i++ {
				events += benchRelayOnce(shards)
			}
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// benchRelayOnce runs one bench-scale relay and returns executed events.
func benchRelayOnce(shards int) uint64 {
	const (
		nodes     = 4096
		parked    = 24 // standing far-future timers per node (heap depth)
		localWork = 12 // local events per hop: keeps rounds compute-bound
		hops      = 10
		parkAt    = Time(1 << 40)
	)
	m := newRelayModel(99, nodes, shards, 0)
	for n := 0; n < nodes; n++ {
		tag := m.tags[m.shardOf(n)]
		for i := 0; i < parked; i++ {
			tag.AtP(parkAt+Time(i), m.uniquePri(n), func() {})
		}
	}
	var relay func(node, hop int)
	relay = func(node, hop int) {
		eng := m.engineFor(node)
		now := eng.Now()
		tag := m.tags[m.shardOf(node)]
		for i := 0; i < localWork; i++ {
			tag.AtP(now+Time(1+i), m.uniquePri(node), func() {})
		}
		if hop <= 0 {
			return
		}
		dst := m.rngs[node].Intn(nodes)
		m.sendFn(node, dst, now+relayLookahead, func() { relay(dst, hop-1) })
	}
	for n := 0; n < nodes; n++ {
		node := n
		m.tags[m.shardOf(node)].AtP(Time(1+n%37), m.uniquePri(node), func() { relay(node, hops) })
	}
	if m.group == nil {
		m.eng.Run()
		return m.eng.EventsExecuted()
	}
	m.group.Run()
	return m.group.TotalExecuted()
}

// sendFn posts an arbitrary callback to dst's shard at time at, with a
// fresh unique priority drawn from src's counter.
func (m *relayModel) sendFn(src, dst int, at Time, fn func()) {
	pri := m.uniquePri(src)
	if m.group == nil {
		m.tags[0].AtP(at, pri, fn)
		return
	}
	ss, ds := m.shardOf(src), m.shardOf(dst)
	m.group.Post(ss, ds, at, pri, m.tags[ds].Label(), fn)
}
