package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are ordered by time, then priority
// (lower runs first), then by the sequence number assigned at scheduling
// time, which makes execution order fully deterministic.
type Event struct {
	at       Time
	priority int
	seq      uint64
	fn       func()
	index    int // heap index; -1 when not queued
	canceled bool
	daemon   bool
}

// Canceled reports whether the event was canceled before it ran.
func (e *Event) Canceled() bool { return e.canceled }

// Time returns the simulated time the event is (or was) scheduled for.
func (e *Event) Time() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return eventLess(h[i], h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event simulator. It is not safe for
// concurrent use; all model code runs on the engine goroutine (process
// bodies spawned via Spawn are cooperatively scheduled so that exactly one
// goroutine is ever runnable).
type Engine struct {
	now       Time
	queue     eventHeap
	seq       uint64
	executed  uint64
	scheduled uint64
	daemons   int // queued (non-canceled) daemon events
	stopped   bool
	rng       *RNG
	running   bool
	procs     int // live processes, for leak diagnostics

	hbEvery uint64 // heartbeat period in executed events; 0 = disabled
	hbFn    func()
}

// NewEngine returns an engine at time zero with a deterministic RNG seeded
// by seed. Two engines built with the same seed and fed the same model run
// identically.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random number generator. Model
// components must use this generator (never the global math/rand) so runs
// stay reproducible.
func (e *Engine) RNG() *RNG { return e.rng }

// EventsExecuted returns the number of model events the engine has run
// (daemon events are not counted).
func (e *Engine) EventsExecuted() uint64 { return e.executed }

// EventsScheduled returns the number of model events scheduled so far
// (daemon events are not counted).
func (e *Engine) EventsScheduled() uint64 { return e.scheduled }

// SetHeartbeat calls fn after every `every` executed events — the hook the
// observability layer uses to sample queue depth and wall-clock event
// rate without polluting model code. every == 0 (or fn == nil) disables
// the heartbeat; the disabled hot path costs one comparison per event.
// The callback runs on the engine goroutine and may read engine state but
// must not call Run.
func (e *Engine) SetHeartbeat(every uint64, fn func()) {
	if every == 0 || fn == nil {
		e.hbEvery, e.hbFn = 0, nil
		return
	}
	e.hbEvery, e.hbFn = every, fn
}

// Schedule runs fn after delay d. A negative delay panics: causality in a
// discrete-event simulation only moves forward.
func (e *Engine) Schedule(d Time, fn func()) *Event {
	return e.ScheduleP(d, 0, fn)
}

// ScheduleP runs fn after delay d with an explicit priority; among events
// at the same timestamp, lower priorities run first. Priorities let models
// enforce intra-timestep ordering (e.g. "deliver before poll").
func (e *Engine) ScheduleP(d Time, priority int, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.at(e.now+d, priority, fn)
}

// At runs fn at absolute time t, which must not be in the past.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	return e.at(t, 0, fn)
}

func (e *Engine) at(t Time, priority int, fn func()) *Event {
	ev := &Event{at: t, priority: priority, seq: e.seq, fn: fn, index: -1}
	e.seq++
	e.scheduled++
	heap.Push(&e.queue, ev)
	return ev
}

// ScheduleDaemonP runs fn after delay d at the given priority as a daemon
// event. Daemons are instrumentation riders (the telemetry sampler's
// ticks): they never keep a run alive — when only daemon events remain
// queued, Run returns at the time of the last model event without
// executing them — and they are invisible to the model-facing counters
// (EventsScheduled, EventsExecuted, Pending) and to the heartbeat, so a
// run's externally observable results are byte-identical with or without
// daemons attached. Daemon callbacks must be pure readers of the model:
// no model-event scheduling, no RNG draws, no state mutation.
func (e *Engine) ScheduleDaemonP(d Time, priority int, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	ev := &Event{at: e.now + d, priority: priority, seq: e.seq, fn: fn, index: -1, daemon: true}
	e.seq++
	e.daemons++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a pending event so it never runs. Canceling an event that
// already ran (or was already canceled) is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
	if ev.daemon {
		e.daemons--
	}
}

// Stop makes Run return after the current event completes. Pending events
// remain queued; Run may be called again to continue.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. It returns
// the final simulated time.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= limit (or until Stop). The
// clock is left at min(limit, time of last executed event's successor).
func (e *Engine) RunUntil(limit Time) Time {
	if e.running {
		panic("sim: Run re-entered from within an event")
	}
	e.running = true
	defer func() { e.running = false }()
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		// Only daemon events left: the model has drained. Return at the
		// last model event's time without executing them, so attached
		// instrumentation can never extend a run or advance its clock.
		if e.daemons == len(e.queue) {
			break
		}
		ev := e.queue[0]
		if ev.at > limit {
			e.now = limit
			return e.now
		}
		heap.Pop(&e.queue)
		if ev.canceled {
			continue
		}
		if ev.daemon {
			e.daemons--
		}
		if DebugEnabled {
			e.debugCheckPop(ev)
		}
		e.now = ev.at
		if ev.daemon {
			ev.fn()
			continue
		}
		e.executed++
		ev.fn()
		if e.hbEvery != 0 && e.executed%e.hbEvery == 0 {
			e.hbFn()
		}
	}
	return e.now
}

// Step executes exactly one pending event and returns true, or returns
// false if the queue is empty. It is intended for tests and debuggers.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		if ev.daemon {
			e.daemons--
		}
		if DebugEnabled {
			e.debugCheckPop(ev)
		}
		e.now = ev.at
		if ev.daemon {
			ev.fn()
			return true
		}
		e.executed++
		ev.fn()
		if e.hbEvery != 0 && e.executed%e.hbEvery == 0 {
			e.hbFn()
		}
		return true
	}
	return false
}

// Pending returns the number of model events waiting in the queue. Daemon
// events are excluded: they are instrumentation, not workload.
func (e *Engine) Pending() int { return len(e.queue) - e.daemons }

// NextEventTime returns the timestamp of the earliest pending event, or
// MaxTime if the queue is empty.
func (e *Engine) NextEventTime() Time {
	for len(e.queue) > 0 {
		if !e.queue[0].canceled {
			return e.queue[0].at
		}
		heap.Pop(&e.queue)
	}
	return MaxTime
}
