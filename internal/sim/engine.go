package sim

import (
	"fmt"
)

// Event is a scheduled callback. Events are ordered by time, then priority
// (lower runs first), then by the sequence number assigned at scheduling
// time, which makes execution order fully deterministic.
//
// Event objects are pooled: the engine recycles an Event as soon as it has
// executed or been canceled, so the handle returned by Schedule/ScheduleP/At
// is only valid until the event runs or is canceled. Holding a handle past
// that point — in particular calling Cancel on an event that may already
// have fired — is a use-after-free bug; simdebug builds detect it (see
// debug.go). Model code that needs "cancel unless already fired" semantics
// should track its own state (see memory.Poller for the idiom).
type Event struct {
	at       Time
	priority int
	seq      uint64
	fn       func()
	index    int   // position in the engine queue; -1 when not queued
	label    Label // component identity stamped by Tagged handles; 0 = unlabeled
	canceled bool
	daemon   bool
	state    uint8 // pool lifecycle: evFree / evQueued (simdebug checks)
}

// Event pool lifecycle states. The zero value is evFree so a freshly
// allocated Event is indistinguishable from a pooled one until the engine
// hands it out.
const (
	evFree   uint8 = iota // in the engine free list (or never allocated)
	evQueued              // live: scheduled and present in the queue
)

// Canceled reports whether the event was canceled before it ran. It is
// only meaningful while the handle is valid (see the type comment).
func (e *Event) Canceled() bool { return e.canceled }

// Time returns the simulated time the event is scheduled for. It is only
// meaningful while the handle is valid (see the type comment).
func (e *Event) Time() Time { return e.at }

// eventQueue is a 4-ary min-heap over (time, priority, seq), implemented
// directly on the slice so hot-path pushes and pops never cross a
// heap.Interface boundary (no interface conversions, no indirect method
// calls). A 4-ary heap has half the levels of a binary heap: sift-up — the
// dominant cost of the schedule-heavy simulation workload — does half the
// comparisons, and the four children of a node share a cache line of
// pointers on the way down.
type eventQueue []*Event

// heapArity is the heap branching factor. Children of node i live at
// heapArity*i+1 .. heapArity*i+heapArity; the parent of i is (i-1)/heapArity.
const heapArity = 4

// push inserts ev and records its queue index.
func (q *eventQueue) push(ev *Event) {
	//rvmalint:allow hotalloc -- heap growth is amortized O(1); the backing array stabilizes at peak occupancy
	*q = append(*q, ev)
	q.siftUp(len(*q) - 1)
}

// pop removes and returns the minimum event. The caller must ensure the
// queue is non-empty.
func (q *eventQueue) pop() *Event {
	h := *q
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	if n > 0 {
		h[0] = last
		last.index = 0
		h.siftDown(0)
	}
	top.index = -1
	return top
}

// remove deletes the event at queue index i (Cancel's path).
func (q *eventQueue) remove(i int) {
	h := *q
	n := len(h) - 1
	ev := h[i]
	last := h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	if i != n {
		h[i] = last
		last.index = i
		if !h.siftDown(i) {
			h.siftUp(i)
		}
	}
	ev.index = -1
}

// siftUp restores the heap property from index i toward the root.
func (q eventQueue) siftUp(i int) {
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		p := q[parent]
		if !eventLess(ev, p) {
			break
		}
		q[i] = p
		p.index = i
		i = parent
	}
	q[i] = ev
	ev.index = i
}

// siftDown restores the heap property from index i toward the leaves and
// reports whether the element moved.
func (q eventQueue) siftDown(i int) bool {
	ev := q[i]
	start := i
	n := len(q)
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		min := first
		end := first + heapArity
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventLess(q[c], q[min]) {
				min = c
			}
		}
		if !eventLess(q[min], ev) {
			break
		}
		q[i] = q[min]
		q[i].index = i
		i = min
	}
	q[i] = ev
	ev.index = i
	return i != start
}

// Engine is a deterministic discrete-event simulator. It is not safe for
// concurrent use; all model code runs on the engine goroutine (process
// bodies spawned via Spawn are cooperatively scheduled so that exactly one
// goroutine is ever runnable). Concurrency lives one level up: independent
// engines — one per experiment cell — may run in parallel on separate
// goroutines because an engine shares no mutable state with any other.
type Engine struct {
	now       Time
	queue     eventQueue
	free      []*Event // recycled Event objects; see alloc/release
	seq       uint64   // model scheduling counter; events carry 2*seq
	dseq      uint64   // daemon scheduling counter; daemons carry 2*dseq+1
	executed  uint64
	scheduled uint64
	daemons   int // queued (non-canceled) daemon events
	stopped   bool
	rng       *RNG
	running   bool
	procs     int // live processes, for leak diagnostics

	hbEvery uint64 // heartbeat period in executed events; 0 = disabled
	hbFn    func()

	// execObs, when non-nil, is called once per executed model event (see
	// SetExecObserver). Disabled cost: one nil-check per pop.
	execObs ExecObserver

	// labels is the interned component-label table (index = Label); labelIDs
	// maps names back to ids. Both are nil until the first Tag call, so an
	// untagged engine pays nothing.
	labels   []string
	labelIDs map[string]Label

	// lastModelAt is the timestamp of the most recent model pop, tracked
	// by the sharded round executor (see shard.go) so the group can
	// recover the exact global final time once every shard's model has
	// drained. The single-heap RunUntil hot loop never touches it.
	lastModelAt Time
}

// NewEngine returns an engine at time zero with a deterministic RNG seeded
// by seed. Two engines built with the same seed and fed the same model run
// identically.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random number generator. Model
// components must use this generator (never the global math/rand) so runs
// stay reproducible.
func (e *Engine) RNG() *RNG { return e.rng }

// EventsExecuted returns the number of model events the engine has run
// (daemon events are not counted).
func (e *Engine) EventsExecuted() uint64 { return e.executed }

// EventsScheduled returns the number of model events scheduled so far
// (daemon events are not counted).
func (e *Engine) EventsScheduled() uint64 { return e.scheduled }

// SetHeartbeat calls fn after every `every` executed events — the hook the
// observability layer uses to sample queue depth and wall-clock event
// rate without polluting model code. every == 0 (or fn == nil) disables
// the heartbeat; the disabled hot path costs one comparison per event.
// The callback runs on the engine goroutine and may read engine state but
// must not call Run.
func (e *Engine) SetHeartbeat(every uint64, fn func()) {
	if every == 0 || fn == nil {
		e.hbEvery, e.hbFn = 0, nil
		return
	}
	e.hbEvery, e.hbFn = every, fn
}

// alloc hands out an Event, reusing a recycled one when the free list has
// stock. Every field is (re)initialized here, so a pooled object carries
// nothing over from its previous life.
func (e *Engine) alloc(at Time, priority int, label Label, fn func(), daemon bool) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		//rvmalint:allow hotalloc -- pool miss: the free list feeds steady state, so this runs O(peak concurrency) times, not per event
		ev = &Event{}
	}
	ev.at = at
	ev.priority = priority
	// Model and daemon events draw from disjoint seq spaces (even/odd), so
	// attaching instrumentation daemons never shifts a model event's
	// identity — the execution ledger hashes these seqs, and its chain
	// must be invariant under telemetry on/off.
	if daemon {
		ev.seq = 2*e.dseq + 1
		e.dseq++
	} else {
		ev.seq = 2 * e.seq
		e.seq++
	}
	ev.fn = fn
	ev.index = -1
	ev.label = label
	ev.canceled = false
	ev.daemon = daemon
	ev.state = evQueued
	return ev
}

// release returns an executed or canceled event to the free list. The
// callback is dropped immediately so the pool never pins captured state;
// canceled stays set so a just-canceled handle still answers Canceled()
// truthfully until the object is reused.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	ev.state = evFree
	//rvmalint:allow hotalloc -- free-list growth is amortized; capacity stabilizes at peak event population
	e.free = append(e.free, ev)
}

// Schedule runs fn after delay d. A negative delay panics: causality in a
// discrete-event simulation only moves forward.
//
//rvmalint:hot
func (e *Engine) Schedule(d Time, fn func()) *Event {
	return e.ScheduleP(d, 0, fn)
}

// ScheduleP runs fn after delay d with an explicit priority; among events
// at the same timestamp, lower priorities run first. Priorities let models
// enforce intra-timestep ordering (e.g. "deliver before poll").
//
//rvmalint:hot
func (e *Engine) ScheduleP(d Time, priority int, fn func()) *Event {
	return e.schedule(d, priority, NoLabel, fn)
}

// schedule is the shared relative-delay entry point behind ScheduleP and
// Tagged.Schedule*.
//
//rvmalint:hot
func (e *Engine) schedule(d Time, priority int, label Label, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	return e.at(e.now+d, priority, label, fn)
}

// At runs fn at absolute time t, which must not be in the past.
//
//rvmalint:hot
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	return e.at(t, 0, NoLabel, fn)
}

func (e *Engine) at(t Time, priority int, label Label, fn func()) *Event {
	ev := e.alloc(t, priority, label, fn, false)
	e.scheduled++
	e.queue.push(ev)
	return ev
}

// ScheduleDaemonP runs fn after delay d at the given priority as a daemon
// event. Daemons are instrumentation riders (the telemetry sampler's
// ticks): they never keep a run alive — when only daemon events remain
// queued, Run returns at the time of the last model event without
// executing them — and they are invisible to the model-facing counters
// (EventsScheduled, EventsExecuted, Pending) and to the heartbeat, so a
// run's externally observable results are byte-identical with or without
// daemons attached. Daemon callbacks must be pure readers of the model:
// no model-event scheduling, no RNG draws, no state mutation.
//
//rvmalint:hot
func (e *Engine) ScheduleDaemonP(d Time, priority int, fn func()) *Event {
	return e.scheduleDaemonP(d, priority, fn)
}

//rvmalint:hot
func (e *Engine) scheduleDaemonP(d Time, priority int, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	ev := e.alloc(e.now+d, priority, NoLabel, fn, true)
	e.daemons++
	e.queue.push(ev)
	return ev
}

// Cancel removes a pending event so it never runs and recycles it. The
// handle is dead afterwards. Canceling nil or an already-canceled event is
// a no-op; canceling an event that already ran is a use-after-free (the
// object may already back a different scheduled event) and trips a
// simdebug invariant when the misuse is detectable.
//
//rvmalint:hot
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	if ev.index < 0 {
		if DebugEnabled {
			Assertf(ev.state != evFree,
				"Cancel of a recycled event handle (event already ran; use-after-free)")
		}
		return
	}
	ev.canceled = true
	e.queue.remove(ev.index)
	if ev.daemon {
		e.daemons--
	}
	e.release(ev)
}

// Stop makes Run return after the current event completes. Pending events
// remain queued; Run may be called again to continue.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue drains or Stop is called. It returns
// the final simulated time.
func (e *Engine) Run() Time { return e.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= limit (or until Stop). The
// clock is left at min(limit, time of last executed event's successor).
//
//rvmalint:hot
func (e *Engine) RunUntil(limit Time) Time {
	if e.running {
		panic("sim: Run re-entered from within an event")
	}
	e.running = true
	//rvmalint:allow hotalloc -- one closure per Run call, not per event; the re-entrancy guard must survive callback panics
	defer func() { e.running = false }()
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		// Only daemon events left: the model has drained. Return at the
		// last model event's time without executing them, so attached
		// instrumentation can never extend a run or advance its clock.
		if e.daemons == len(e.queue) {
			break
		}
		ev := e.queue[0]
		if ev.at > limit {
			e.now = limit
			return e.now
		}
		e.queue.pop()
		if ev.daemon {
			e.daemons--
		}
		if DebugEnabled {
			e.debugCheckPop(ev)
		}
		e.now = ev.at
		// Recycle before invoking: the callback's own re-scheduling (the
		// self-ticking pattern every model here uses) then reuses the same
		// hot object instead of allocating.
		fn := ev.fn
		e.release(ev)
		if ev.daemon {
			fn()
			continue
		}
		e.executed++
		// The exec observer sees every model pop before its callback runs;
		// the event's scalar fields are still intact after release (release
		// clears only fn and state), and the object cannot be reallocated
		// until fn schedules something.
		if e.execObs != nil {
			e.execObs.ObserveExec(ev.seq, ev.at, ev.priority, ev.label)
		}
		fn()
		if e.hbEvery != 0 && e.executed%e.hbEvery == 0 {
			e.hbFn()
		}
	}
	return e.now
}

// runShardWindow is the round executor the sharded engine drives (see
// shard.go): it executes every event with at <= limit in heap order,
// models and daemons interleaved exactly as RunUntil would. Daemons run
// unconditionally up to the window limit — no local stall rule. That
// keeps every round's cut consistent: a daemon at time t executes in the
// one round whose window covers t, before any later barrier delivery can
// land in this heap, so what it observes is a pure function of the model
// regardless of how components were partitioned. The price is bounded
// and documented on ShardGroup.Run: relative to a single heap, daemons
// may additionally tick at times strictly within one lookahead window
// past the final model event.
//
// This is a separate loop from RunUntil on purpose: the single-heap fast
// path stays untouched.
func (e *Engine) runShardWindow(limit Time) {
	if e.running {
		panic("sim: Run re-entered from within an event")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if ev.at > limit {
			break
		}
		e.queue.pop()
		if ev.daemon {
			e.daemons--
		}
		if DebugEnabled {
			e.debugCheckPop(ev)
		}
		e.now = ev.at
		fn := ev.fn
		e.release(ev)
		if ev.daemon {
			fn()
			continue
		}
		e.lastModelAt = ev.at
		e.executed++
		if e.execObs != nil {
			e.execObs.ObserveExec(ev.seq, ev.at, ev.priority, ev.label)
		}
		fn()
		if e.hbEvery != 0 && e.executed%e.hbEvery == 0 {
			e.hbFn()
		}
	}
}

// syncClock sets the engine clock to t without executing anything. The
// shard group aligns every shard to the global final model time so
// post-run state reads (resource utilization denominators, snapshot
// timestamps) see one consistent clock, exactly as a single-heap run
// would. This can move the clock backward: the final round's window may
// have run daemon ticks up to lookahead past the last model event, but a
// single-heap run's clock ends at the last model event, and that is the
// value post-run readers must see. Safe because everything still queued
// lies strictly beyond the final window limit, which is >= t.
func (e *Engine) syncClock(t Time) {
	e.now = t
}

// Step executes exactly one pending event and returns true, or returns
// false if the queue is empty. It is intended for tests and debuggers.
//
//rvmalint:hot
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := e.queue.pop()
	if ev.daemon {
		e.daemons--
	}
	if DebugEnabled {
		e.debugCheckPop(ev)
	}
	e.now = ev.at
	fn := ev.fn
	e.release(ev)
	if ev.daemon {
		fn()
		return true
	}
	e.executed++
	if e.execObs != nil {
		e.execObs.ObserveExec(ev.seq, ev.at, ev.priority, ev.label)
	}
	fn()
	if e.hbEvery != 0 && e.executed%e.hbEvery == 0 {
		e.hbFn()
	}
	return true
}

// Pending returns the number of model events waiting in the queue. Daemon
// events are excluded: they are instrumentation, not workload.
func (e *Engine) Pending() int { return len(e.queue) - e.daemons }

// NextEventTime returns the timestamp of the earliest pending event, or
// MaxTime if the queue is empty. (Canceled events are removed from the
// queue eagerly, so the head is always live.)
func (e *Engine) NextEventTime() Time {
	if len(e.queue) > 0 {
		return e.queue[0].at
	}
	return MaxTime
}

// PoolFree returns the number of recycled Event objects currently waiting
// in the free list, for tests and diagnostics of the pooling layer.
func (e *Engine) PoolFree() int { return len(e.free) }
