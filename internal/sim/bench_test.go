package sim

import "testing"

// BenchmarkEngineEventThroughput measures raw kernel speed: schedule +
// execute of self-rescheduling events (the inner loop of every simulation
// here). The regression gate for the event pool: steady state must stay at
// 0 allocs/op (the container/heap + per-Schedule-allocation kernel spent
// 1 alloc and 48 B per event).
func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.Schedule(Nanosecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(0, tick)
	e.Run()
}

// BenchmarkEngineHeapChurn measures scheduling with a deep queue: 4096
// pending events at all times, executing and replacing — the 4-ary heap's
// sift costs under realistic queue depth.
func BenchmarkEngineHeapChurn(b *testing.B) {
	e := NewEngine(1)
	const depth = 4096
	executed := 0
	var reload func()
	reload = func() {
		executed++
		if executed < b.N {
			e.Schedule(Time(executed%977)*Nanosecond, reload)
		}
	}
	for i := 0; i < depth; i++ {
		e.Schedule(Time(i)*Nanosecond, reload)
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Run()
}

// BenchmarkEngineScheduleCancel measures the schedule-then-cancel pattern
// (timeouts that almost always get canceled): both halves should recycle
// through the pool without allocating.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine(1)
	driven := 0
	var drive func()
	drive = func() {
		driven++
		ev := e.Schedule(100*Nanosecond, func() {})
		e.Cancel(ev)
		if driven < b.N {
			e.Schedule(Nanosecond, drive)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(0, drive)
	e.Run()
}

// BenchmarkEngineDaemonOverhead measures a model tick with a daemon rider
// at one-tenth the cadence, the telemetry sampler's shape.
func BenchmarkEngineDaemonOverhead(b *testing.B) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.Schedule(Nanosecond, tick)
		}
	}
	var daemon func()
	daemon = func() { e.ScheduleDaemonP(10*Nanosecond, 1<<20, daemon) }
	e.ScheduleDaemonP(10*Nanosecond, 1<<20, daemon)
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(0, tick)
	e.Run()
}

// chainObserver is a minimal ledger-shaped ExecObserver: it folds every
// pop's scalars into a running hash, the same work per pop the execution
// ledger does, without the epoch bookkeeping.
type chainObserver struct{ h uint64 }

func (o *chainObserver) ObserveExec(seq uint64, at Time, priority int, label Label) {
	h := o.h ^ seq
	h *= 1099511628211
	h ^= uint64(at)
	h *= 1099511628211
	h ^= uint64(int64(priority))
	h *= 1099511628211
	h ^= uint64(label)
	h *= 1099511628211
	o.h = h
}

// BenchmarkEngineObserverOverhead is BenchmarkEngineEventThroughput with an
// exec observer attached: the cost of recording an execution ledger. The
// disabled path (observer nil) is guarded by BenchmarkEngineEventThroughput
// staying at its baseline; this one bounds the enabled path and must also
// stay at 0 allocs/op.
func BenchmarkEngineObserverOverhead(b *testing.B) {
	e := NewEngine(1)
	obs := &chainObserver{}
	e.SetExecObserver(obs)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.Schedule(Nanosecond, tick)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	e.Schedule(0, tick)
	e.Run()
	if obs.h == 0 && b.N > 1 {
		b.Fatal("observer never fired")
	}
}

// BenchmarkProcessContextSwitch measures the cooperative handoff cost of
// the process API (one Sleep per iteration).
func BenchmarkProcessContextSwitch(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("bench", func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Nanosecond)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkResourceAcquire measures the latency-rate server primitive.
func BenchmarkResourceAcquire(b *testing.B) {
	e := NewEngine(1)
	r := NewResource("bench")
	e.Schedule(0, func() {
		for i := 0; i < b.N; i++ {
			r.Acquire(e, Nanosecond)
		}
	})
	e.Run()
}

// BenchmarkRNG measures the deterministic generator.
func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
