package sim

import "testing"

// BenchmarkEventThroughput measures raw kernel speed: schedule+execute of
// self-rescheduling events (the inner loop of every simulation here).
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			e.Schedule(Nanosecond, tick)
		}
	}
	b.ResetTimer()
	e.Schedule(0, tick)
	e.Run()
}

// BenchmarkHeapChurn measures scheduling with a deep queue: N pending
// events at all times, executing and replacing.
func BenchmarkHeapChurn(b *testing.B) {
	e := NewEngine(1)
	const depth = 4096
	executed := 0
	var reload func()
	reload = func() {
		executed++
		if executed < b.N {
			e.Schedule(Time(executed%977)*Nanosecond, reload)
		}
	}
	for i := 0; i < depth; i++ {
		e.Schedule(Time(i)*Nanosecond, reload)
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkProcessContextSwitch measures the cooperative handoff cost of
// the process API (one Sleep per iteration).
func BenchmarkProcessContextSwitch(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("bench", func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Nanosecond)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkResourceAcquire measures the latency-rate server primitive.
func BenchmarkResourceAcquire(b *testing.B) {
	e := NewEngine(1)
	r := NewResource("bench")
	e.Schedule(0, func() {
		for i := 0; i < b.N; i++ {
			r.Acquire(e, Nanosecond)
		}
	})
	e.Run()
}

// BenchmarkRNG measures the deterministic generator.
func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
