package sim_test

import (
	"testing"

	"rvma/internal/ledger"
	"rvma/internal/sim"
)

// FuzzShardedEngine cross-checks the lookahead-parallel engine against
// the single-heap reference under fuzzed workloads: the same relay model
// (per-node RNG substreams, globally unique negative priorities,
// cross-shard handoffs at >= lookahead, local schedule-and-cancel) runs
// once on one heap and once partitioned, each with a canonical execution
// ledger attached. The canonical chain head hashes every model pop's
// (time, priority, label) in partition-invariant order, so any divergence
// in pop order, count, or timing — however deep in the run — collapses
// into a one-line digest mismatch. This file lives in package sim_test so
// it can import the ledger without a cycle.
func FuzzShardedEngine(f *testing.F) {
	f.Add(uint64(42), byte(24), byte(4), byte(30))
	f.Add(uint64(7), byte(2), byte(2), byte(1))
	f.Add(uint64(1), byte(13), byte(8), byte(17))
	f.Add(uint64(99), byte(5), byte(3), byte(0))

	f.Fuzz(func(t *testing.T, seed uint64, nodesB, shardsB, hopsB byte) {
		nodes := 2 + int(nodesB)%23  // 2..24
		shards := 1 + int(shardsB)%8 // 1..8
		hops := int(hopsB) % 32

		ref, refLed := fuzzRelay(seed, nodes, 0, hops)
		got, gotLed := fuzzRelay(seed, nodes, shards, hops)
		if gotLed.ChainHead != refLed.ChainHead {
			t.Fatalf("seed=%d nodes=%d shards=%d hops=%d: chain head %s, single-heap %s",
				seed, nodes, shards, hops, gotLed.ChainHead, refLed.ChainHead)
		}
		if gotLed.Events != refLed.Events {
			t.Fatalf("ledger recorded %d events, single-heap %d", gotLed.Events, refLed.Events)
		}
		if got != ref {
			t.Fatalf("final time %v, single-heap %v", got, ref)
		}
		if gotLed.FinalTimePS != refLed.FinalTimePS {
			t.Fatalf("ledger final time %d, single-heap %d", gotLed.FinalTimePS, refLed.FinalTimePS)
		}
	})
}

// fzLookahead is the minimum cross-node latency of the fuzz relay.
const fzLookahead = sim.Time(40)

// fzModel is a minimal relay over the public API: messages hop between
// pseudo-random nodes, each event carrying a globally unique negative
// priority packed from (node, per-node counter) — the fabric's scheme.
type fzModel struct {
	nodes  int
	shards int
	group  *sim.ShardGroup // nil => single heap
	eng    *sim.Engine
	tags   []sim.Tagged
	seq    []int
	rngs   []*sim.RNG
}

func (m *fzModel) shardOf(node int) int {
	if m.group == nil {
		return 0
	}
	return node * m.shards / m.nodes
}

func (m *fzModel) engineFor(node int) *sim.Engine {
	if m.group == nil {
		return m.eng
	}
	return m.group.Shard(m.shardOf(node))
}

func (m *fzModel) pri(node int) int {
	p := -(1 + m.seq[node]*m.nodes + node)
	m.seq[node]++
	return p
}

func (m *fzModel) send(src, dst int, at sim.Time, hops int) {
	pri := m.pri(src)
	fn := func() { m.receive(dst, hops) }
	if m.group == nil {
		m.tags[0].AtP(at, pri, fn)
		return
	}
	m.group.Post(m.shardOf(src), m.shardOf(dst), at, pri, m.tags[m.shardOf(dst)].Label(), fn)
}

func (m *fzModel) receive(node, hops int) {
	eng := m.engineFor(node)
	now := eng.Now()
	tag := m.tags[m.shardOf(node)]
	// Same-node churn: a canceled event and, every third hop, a local
	// follow-up — both with unique priorities so ties never exist.
	ev := tag.AtP(now+500, m.pri(node), func() {})
	eng.Cancel(ev)
	if hops%3 == 0 {
		tag.AtP(now+2, m.pri(node), func() {})
	}
	if hops <= 0 {
		return
	}
	r := m.rngs[node]
	dst := r.Intn(m.nodes)
	m.send(node, dst, now+fzLookahead+sim.Time(r.Intn(5))*7, hops-1)
}

// fuzzRelay builds and runs the relay at the given shard count (0 =
// single heap) with a canonical ledger attached, returning the final
// model time and the finalized ledger.
func fuzzRelay(seed uint64, nodes, shards, hops int) (sim.Time, *ledger.Ledger) {
	m := &fzModel{
		nodes:  nodes,
		shards: shards,
		seq:    make([]int, nodes),
		rngs:   make([]*sim.RNG, nodes),
	}
	for n := 0; n < nodes; n++ {
		m.rngs[n] = sim.NewRNG(sim.SeedFor(seed, "node", n))
	}
	rec := ledger.NewCanonicalRecorder(ledger.Options{})
	var final sim.Time
	if shards <= 0 {
		m.eng = sim.NewEngine(seed)
		m.tags = []sim.Tagged{m.eng.Tag("relay")}
		rec.Attach(m.eng)
	} else {
		m.group = sim.NewShardGroup(seed, shards, fzLookahead)
		m.tags = make([]sim.Tagged, shards)
		for i := range m.tags {
			m.tags[i] = m.group.Shard(i).Tag("relay")
		}
		rec.AttachGroup(m.group)
	}
	for n := 0; n < nodes; n++ {
		m.send(n, (n*5+1)%nodes, sim.Time(50+n), hops)
	}
	if m.group == nil {
		final = m.eng.Run()
	} else {
		final = m.group.Run()
	}
	return final, rec.Finalize()
}
