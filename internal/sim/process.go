package sim

import "fmt"

// Process is a cooperatively scheduled simulation actor, in the style of
// process-oriented kernels (SimPy, OMNeT++ activities). A process body runs
// on its own goroutine, but the engine guarantees that exactly one
// goroutine — either the engine loop or one process — is runnable at any
// instant, so process code needs no locking and the simulation stays
// deterministic.
//
// Processes make protocol code read sequentially: a motif rank can write
// "put; wait for completion; compute; next iteration" instead of a hand-
// rolled state machine.
type Process struct {
	eng    *Engine
	name   string
	label  Label         // stamped on spawn/Sleep/resume events (Tagged.Spawn)
	run    chan struct{} // engine -> process: resume
	parked chan struct{} // process -> engine: parked or finished
	done   bool
	err    any // panic value captured from the body, re-raised on the engine
}

// Spawn starts a new process executing body at the current simulated time.
// The body begins running when the engine reaches the spawn event; Spawn
// itself returns immediately.
func (e *Engine) Spawn(name string, body func(p *Process)) *Process {
	return e.spawn(name, NoLabel, body)
}

func (e *Engine) spawn(name string, label Label, body func(p *Process)) *Process {
	p := &Process{
		eng:    e,
		name:   name,
		label:  label,
		run:    make(chan struct{}),
		parked: make(chan struct{}),
	}
	e.procs++
	// The process body runs on its own goroutine, but only ever while the
	// engine goroutine is parked on the run/parked channel handshake, so
	// simulated time stays sequential.
	//rvmalint:allow goroutine -- kernel-internal coroutine handshake
	go func() {
		<-p.run // wait for first activation
		func() {
			defer func() {
				if r := recover(); r != nil {
					p.err = r
				}
			}()
			body(p)
		}()
		p.done = true
		p.eng.procs--
		p.parked <- struct{}{}
	}()
	e.schedule(0, 0, label, func() { p.resume() })
	return p
}

// resume hands control to the process goroutine and blocks the engine until
// the process parks again (or finishes). It must only be called from the
// engine goroutine, i.e. from inside an event.
func (p *Process) resume() {
	if p.done {
		return
	}
	p.run <- struct{}{}
	<-p.parked
	if p.err != nil {
		panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, p.err))
	}
}

// park suspends the process and returns control to the engine. The caller
// must have arranged for a future event to call resume.
func (p *Process) park() {
	p.parked <- struct{}{}
	<-p.run
}

// Name returns the name given at Spawn time, for diagnostics.
func (p *Process) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Process) Now() Time { return p.eng.Now() }

// Sleep suspends the process for d simulated time.
func (p *Process) Sleep(d Time) {
	p.eng.schedule(d, 0, p.label, func() { p.resume() })
	p.park()
}

// Wait suspends the process until the future completes. If the future is
// already complete it returns immediately without yielding.
func (p *Process) Wait(f *Future) {
	if f.Done() {
		return
	}
	f.OnComplete(func() { p.resume() })
	p.park()
}

// WaitAll suspends the process until every future completes.
func (p *Process) WaitAll(fs ...*Future) {
	for _, f := range fs {
		p.Wait(f)
	}
}

// Future is a one-shot completion handle: it transitions from pending to
// done exactly once and then invokes every registered callback, at the
// simulated time of completion. Futures are how the NIC models hand
// asynchronous completions (DMA done, message delivered, threshold reached)
// back to host-side code.
type Future struct {
	done      bool
	at        Time
	value     any
	callbacks []func()
}

// NewFuture returns a pending future.
func NewFuture() *Future { return &Future{} }

// Done reports whether the future has completed.
func (f *Future) Done() bool { return f.done }

// Value returns the value passed to Complete, or nil while pending.
func (f *Future) Value() any { return f.value }

// CompletedAt returns the simulated time Complete was called. It is only
// meaningful once Done reports true.
func (f *Future) CompletedAt() Time { return f.at }

// Complete marks the future done with the given value and runs callbacks
// synchronously (in registration order) at the current simulated time.
// Completing an already-complete future panics: completions in the models
// represent unique hardware events.
func (f *Future) Complete(e *Engine, value any) {
	if f.done {
		panic("sim: Future completed twice")
	}
	f.done = true
	f.value = value
	f.at = e.Now()
	cbs := f.callbacks
	f.callbacks = nil
	for _, cb := range cbs {
		cb()
	}
}

// OnComplete registers a callback to run when the future completes. If the
// future is already done the callback runs immediately.
func (f *Future) OnComplete(cb func()) {
	if f.done {
		cb()
		return
	}
	f.callbacks = append(f.callbacks, cb)
}

// Gate is a counting barrier: it opens (completing its future) when Arrive
// has been called count times. Motifs use gates to wait for "all neighbor
// messages of this wavefront step".
type Gate struct {
	remaining int
	f         *Future
}

// NewGate returns a gate expecting count arrivals. A gate with count <= 0
// is already open.
func NewGate(e *Engine, count int) *Gate {
	g := &Gate{remaining: count, f: NewFuture()}
	if count <= 0 {
		g.f.Complete(e, nil)
	}
	return g
}

// Arrive records one arrival; the count-th arrival opens the gate.
func (g *Gate) Arrive(e *Engine) {
	if g.remaining <= 0 {
		panic("sim: Gate.Arrive after gate opened")
	}
	g.remaining--
	if g.remaining == 0 {
		g.f.Complete(e, nil)
	}
}

// Future returns the future that completes when the gate opens.
func (g *Gate) Future() *Future { return g.f }
